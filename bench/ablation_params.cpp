//===- bench/ablation_params.cpp - design-parameter ablations -------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation sweeps over AdaptiveTC's two magic numbers (DESIGN.md,
/// "Key design decisions"):
///
///  * the initial cut-off (paper default: log2 N) — sweeps 0..8, showing
///    why log2 N balances initial task supply against task-creation
///    overhead;
///  * max_stolen_num (paper default: 20) — the failed-steal threshold
///    that arms need_task; too small publishes specials for transient
///    idleness, too large starves thieves.
///
/// Simulated on the Figure 8 tree at 8 workers.
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "sim/SimEngine.h"
#include "sim/TreeGen.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>

using namespace atc;

int main(int argc, char **argv) {
  long long Scale = 1'000'000;
  std::string CsvPath;
  OptionSet Opts("Ablations: cut-off depth and max_stolen_num");
  Opts.addInt("scale", &Scale, "tree size in nodes");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  Opts.parse(argc, argv);

  SimTree Tree(SimTree::preset("fig8", Scale));
  CostModel Costs;
  TextTable Csv;
  Csv.setHeader({"sweep", "value", "speedup", "tasks", "specials", "steals"});

  std::printf("=== Ablation: AdaptiveTC initial cut-off (8 workers; paper "
              "default log2(8) = 3) ===\n");
  {
    TextTable Table;
    Table.setHeader({"cutoff", "speedup", "tasks", "specials", "steals",
                     "deque-high-water"});
    for (int Cutoff = 0; Cutoff <= 8; ++Cutoff) {
      SimOptions SimOpts;
      SimOpts.Kind = SchedulerKind::AdaptiveTC;
      SimOpts.NumWorkers = 8;
      SimOpts.Cutoff = Cutoff;
      SimReport R = simulate(Tree, SimOpts, Costs);
      Table.addRow({std::to_string(Cutoff), TextTable::fmt(R.speedup(), 2),
                    TextTable::fmt(static_cast<long long>(R.TasksCreated)),
                    TextTable::fmt(static_cast<long long>(R.SpecialTasks)),
                    TextTable::fmt(static_cast<long long>(R.Steals)),
                    std::to_string(R.MaxStealableFrames)});
      Csv.addRow({"cutoff", std::to_string(Cutoff),
                  TextTable::fmt(R.speedup(), 4),
                  TextTable::fmt(static_cast<long long>(R.TasksCreated)),
                  TextTable::fmt(static_cast<long long>(R.SpecialTasks)),
                  TextTable::fmt(static_cast<long long>(R.Steals))});
    }
    Table.print();
  }

  std::printf("\n=== Ablation: max_stolen_num (8 workers; paper default 20) "
              "===\n");
  {
    TextTable Table;
    Table.setHeader({"max_stolen_num", "speedup", "specials", "steals",
                     "steal-fails"});
    for (int Max : {1, 5, 10, 20, 50, 100, 500}) {
      SimOptions SimOpts;
      SimOpts.Kind = SchedulerKind::AdaptiveTC;
      SimOpts.NumWorkers = 8;
      SimOpts.MaxStolenNum = Max;
      SimReport R = simulate(Tree, SimOpts, Costs);
      Table.addRow({std::to_string(Max), TextTable::fmt(R.speedup(), 2),
                    TextTable::fmt(static_cast<long long>(R.SpecialTasks)),
                    TextTable::fmt(static_cast<long long>(R.Steals)),
                    TextTable::fmt(static_cast<long long>(R.StealFails))});
      Csv.addRow({"max_stolen_num", std::to_string(Max),
                  TextTable::fmt(R.speedup(), 4), "",
                  TextTable::fmt(static_cast<long long>(R.SpecialTasks)),
                  TextTable::fmt(static_cast<long long>(R.Steals))});
    }
    Table.print();
  }

  atc::bench::maybeWriteCsv(CsvPath, Csv.renderCsv());
  return 0;
}
