//===- bench/ablation_tuning.cpp - online tuning vs static grid -----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closing ablation for the online tuning layer (docs/TUNING.md):
/// does a controller that *starts* from the paper defaults and adapts its
/// knobs online reach the neighbourhood of the best statically-chosen
/// point — without the offline grid search that found that point?
///
/// The evaluation models the serving regime the controller exists for
/// (src/server: a persistent pool where jobs of the same family arrive
/// repeatedly): each family is run SettleRuns times back to back, the
/// converged cut-off / max_stolen_num knobs carrying over between runs
/// exactly as a pool worker's controller carries state between jobs. The
/// backoff bound deliberately does NOT carry: it tracks instantaneous
/// contention, not a property of the workload. The record keeps both the
/// cold first run (the transient the controller pays while learning —
/// dominated by the initial expansion at the default cut-off, which no
/// online policy can redo) and the settled run (the regime the gate
/// scores).
///
/// For each tree family (the Figure 8 nqueens-like tree and the Figure 10
/// unbalanced families) the harness sweeps a static (cutoff x
/// max_stolen_num) grid with AdaptiveTC at 8 simulated workers, then runs
/// the settle sequence from the defaults, and reports
/// settled-makespan / best-static-makespan. Virtual time makes every cell
/// deterministic and host-independent, so the committed record
/// (BENCH_tuning.json) is exactly reproducible and CI gates on the ratio
/// directly (tools/bench_compare.py --tuning-json).
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "sim/SimEngine.h"
#include "sim/TreeGen.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace atc;

namespace {

/// Length of the knob carry-over sequence per family. Convergence is
/// typically done after two runs; the tail confirms the knobs are a
/// fixed point rather than an oscillation.
constexpr int SettleRuns = 5;

struct FamilyResult {
  std::string Name;
  double ColdNs = 0;    ///< first tuned run, knobs still at the defaults
  double SettledNs = 0; ///< last run of the settle sequence
  double BestStaticNs = 0;
  double WorstStaticNs = 0;
  double DefaultStaticNs = 0; ///< paper defaults: cutoff log2(N), max 20
  int BestCutoff = 0;
  int BestMaxStolen = 0;
  std::uint64_t TunedAdjustments = 0; ///< across the whole settle sequence
  std::uint64_t TunedWindows = 0;
  int FinalCutoff = 0;
  int FinalMaxStolen = 0;
  int FinalBackoffShift = 0;
  long long Nodes = 0;

  double ratio() const { return SettledNs / BestStaticNs; }
  double coldRatio() const { return ColdNs / BestStaticNs; }
};

/// Development aid: ATC_TUNE_<FIELD> environment overrides for the rule
/// constants, so the rule space can be swept without rebuilding. The
/// committed record always uses the shipped defaults (no variables set).
TuningLimits limitsFromEnv() {
  TuningLimits L;
  auto OvI = [](const char *Name, auto &Field) {
    if (const char *V = std::getenv(Name))
      Field = static_cast<std::remove_reference_t<decltype(Field)>>(
          std::atoll(V));
  };
  auto OvD = [](const char *Name, double &Field) {
    if (const char *V = std::getenv(Name))
      Field = std::atof(V);
  };
  OvI("ATC_TUNE_WINDOW_NS", L.WindowNs);
  OvI("ATC_TUNE_RAISE", L.MaxCutoffRaise);
  OvI("ATC_TUNE_MMIN", L.MinMaxStolen);
  OvI("ATC_TUNE_MMAX", L.MaxMaxStolen);
  OvI("ATC_TUNE_MSTEP", L.MaxStolenStep);
  OvI("ATC_TUNE_BMIN", L.MinBackoffShift);
  OvI("ATC_TUNE_BMAX", L.MaxBackoffShift);
  OvD("ATC_TUNE_SUCCHI", L.StealSuccHigh);
  OvD("ATC_TUNE_SUCCLO", L.StealSuccLow);
  OvI("ATC_TUNE_MINATT", L.MinStealAttempts);
  OvI("ATC_TUNE_HOT", L.ReseedHotCount);
  OvI("ATC_TUNE_QUIET", L.ReseedQuietWindows);
  OvI("ATC_TUNE_HOLD", L.HoldWindows);
  return L;
}

SimReport runCell(const SimTree &Tree, const CostModel &Costs, int Cutoff,
                  int MaxStolen, bool Tuning) {
  SimOptions Opts;
  Opts.Kind = SchedulerKind::AdaptiveTC;
  Opts.NumWorkers = 8;
  Opts.Cutoff = Cutoff;
  Opts.MaxStolenNum = MaxStolen;
  Opts.Tuning = Tuning;
  if (Tuning)
    Opts.Tune = limitsFromEnv();
  return simulate(Tree, Opts, Costs);
}

FamilyResult sweepFamily(const std::string &Preset, long long Scale,
                         bool Verbose) {
  SimTree Tree(SimTree::preset(Preset, Scale));
  CostModel Costs;
  FamilyResult FR;
  FR.Name = Preset;
  FR.Nodes = Tree.spec().TotalNodes;

  TextTable Grid;
  Grid.setHeader({"cutoff", "max_stolen", "speedup", "makespan-ms"});
  for (int Cutoff = 1; Cutoff <= 6; ++Cutoff)
    for (int Max : {5, 10, 20, 50, 100}) {
      SimReport R = runCell(Tree, Costs, Cutoff, Max, /*Tuning=*/false);
      if (FR.BestStaticNs == 0 || R.MakespanNs < FR.BestStaticNs) {
        FR.BestStaticNs = R.MakespanNs;
        FR.BestCutoff = Cutoff;
        FR.BestMaxStolen = Max;
      }
      if (R.MakespanNs > FR.WorstStaticNs)
        FR.WorstStaticNs = R.MakespanNs;
      if (Cutoff == 3 && Max == 20)
        FR.DefaultStaticNs = R.MakespanNs;
      if (Verbose)
        Grid.addRow({std::to_string(Cutoff), std::to_string(Max),
                     TextTable::fmt(R.speedup(), 2),
                     TextTable::fmt(R.MakespanNs / 1e6, 2)});
    }
  if (Verbose)
    Grid.print();

  // The settle sequence starts from the paper defaults (cutoff -1 =
  // log2(8), max_stolen_num 20) and must find its own way; converged
  // knobs carry into the next run as in a persistent pool worker.
  int Cutoff = -1, MaxStolen = 20;
  SimReport T;
  for (int Run = 0; Run < SettleRuns; ++Run) {
    T = runCell(Tree, Costs, Cutoff, MaxStolen, /*Tuning=*/true);
    if (Run == 0)
      FR.ColdNs = T.MakespanNs;
    FR.TunedAdjustments += T.TuneAdjustments;
    FR.TunedWindows += T.TuneWindows;
    Cutoff = T.FinalCutoff;
    MaxStolen = T.FinalMaxStolen;
  }
  FR.SettledNs = T.MakespanNs;
  FR.FinalCutoff = T.FinalCutoff;
  FR.FinalMaxStolen = T.FinalMaxStolen;
  FR.FinalBackoffShift = T.FinalBackoffShift;
  return FR;
}

} // namespace

int main(int argc, char **argv) {
  long long Scale = 1'000'000;
  std::string JsonPath;
  bool Verbose = false;
  OptionSet Opts("Ablation: online tuning vs the best static grid point");
  Opts.addInt("scale", &Scale, "tree size in nodes per family");
  Opts.addString("json", &JsonPath,
                 "write the machine-readable record (BENCH_tuning.json "
                 "schema) to this file");
  Opts.addFlag("grid", &Verbose, "print every grid cell, not just summaries");
  Opts.parse(argc, argv);

  // fig8 is the paper's nqueens-like tree; tree3l / input2 are Figure 10
  // unbalanced families (deep left spine / random imbalance).
  const char *Families[] = {"fig8", "tree3l", "input2"};

  std::vector<FamilyResult> Results;
  for (const char *F : Families)
    Results.push_back(sweepFamily(F, Scale, Verbose));

  TextTable Summary;
  Summary.setHeader({"family", "best-static", "cold-ms", "settled-ms",
                     "best-ms", "default-ms", "settled/best", "cold/best",
                     "adjusts", "final-knobs"});
  for (const FamilyResult &R : Results) {
    char Best[32], Final[48];
    std::snprintf(Best, sizeof(Best), "c=%d m=%d", R.BestCutoff,
                  R.BestMaxStolen);
    std::snprintf(Final, sizeof(Final), "c=%d m=%d b=%d", R.FinalCutoff,
                  R.FinalMaxStolen, R.FinalBackoffShift);
    Summary.addRow({R.Name, Best, TextTable::fmt(R.ColdNs / 1e6, 2),
                    TextTable::fmt(R.SettledNs / 1e6, 2),
                    TextTable::fmt(R.BestStaticNs / 1e6, 2),
                    TextTable::fmt(R.DefaultStaticNs / 1e6, 2),
                    TextTable::fmt(R.ratio(), 3),
                    TextTable::fmt(R.coldRatio(), 3),
                    std::to_string(R.TunedAdjustments), Final});
  }
  std::printf("=== Online tuning (settled over %d runs) vs static "
              "(cutoff x max_stolen_num) grid, AdaptiveTC, 8 workers ===\n",
              SettleRuns);
  Summary.print();

  if (!JsonPath.empty()) {
    FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "{\n \"scale\": %lld,\n \"workers\": 8,\n"
                    " \"settle_runs\": %d,\n \"families\": {\n",
                 Scale, SettleRuns);
    for (std::size_t I = 0; I < Results.size(); ++I) {
      const FamilyResult &R = Results[I];
      std::fprintf(
          F,
          "  \"%s\": {\n"
          "   \"nodes\": %lld,\n"
          "   \"tuned_cold_ns\": %.1f,\n"
          "   \"tuned_settled_ns\": %.1f,\n"
          "   \"best_static_ns\": %.1f,\n"
          "   \"default_static_ns\": %.1f,\n"
          "   \"worst_static_ns\": %.1f,\n"
          "   \"best_static\": {\"cutoff\": %d, \"max_stolen_num\": %d},\n"
          "   \"settled_over_best\": %.4f,\n"
          "   \"cold_over_best\": %.4f,\n"
          "   \"tuned_adjustments\": %llu,\n"
          "   \"tuned_windows\": %llu,\n"
          "   \"final\": {\"cutoff\": %d, \"max_stolen_num\": %d, "
          "\"backoff_shift\": %d}\n"
          "  }%s\n",
          R.Name.c_str(), R.Nodes, R.ColdNs, R.SettledNs, R.BestStaticNs,
          R.DefaultStaticNs, R.WorstStaticNs, R.BestCutoff, R.BestMaxStolen,
          R.ratio(), R.coldRatio(),
          static_cast<unsigned long long>(R.TunedAdjustments),
          static_cast<unsigned long long>(R.TunedWindows), R.FinalCutoff,
          R.FinalMaxStolen, R.FinalBackoffShift,
          I + 1 < Results.size() ? "," : "");
    }
    std::fprintf(F, " }\n}\n");
    std::fclose(F);
  }

  // Self-gate: the settled controller must reach within 5% of the best
  // static point on every family (the acceptance bar; CI reruns this).
  bool Ok = true;
  for (const FamilyResult &R : Results)
    if (R.ratio() > 1.05) {
      std::fprintf(stderr,
                   "FAILED: %s settled/best = %.3f exceeds 1.05\n",
                   R.Name.c_str(), R.ratio());
      Ok = false;
    }
  return Ok ? 0 : 1;
}
