//===- bench/common/BenchCommon.cpp - Shared harness pieces ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"

#include "problems/FibComp.h"
#include "problems/KnightsTour.h"
#include "problems/NQueens.h"
#include "problems/Pentomino.h"
#include "problems/Strimko.h"
#include "problems/Sudoku.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace atc;
using namespace atc::bench;

namespace {

/// Builds the three closures of a Benchmark for problem \p Prob (held by
/// shared_ptr so the closures share one instance) and root \p Root.
template <typename P>
Benchmark makeBenchmark(std::string Name, std::string PaperName,
                        bool HasTaskprivate, std::shared_ptr<P> Prob,
                        typename P::State Root) {
  Benchmark B;
  B.Name = std::move(Name);
  B.PaperName = std::move(PaperName);
  B.HasTaskprivate = HasTaskprivate;

  B.RunSequential = [Prob, Root]() {
    RealRun R;
    typename P::State S = Root;
    R.Seconds = timeSeconds([&] { R.Value = runSequential(*Prob, S); });
    return R;
  };

  B.Run = [Prob, Root](const SchedulerConfig &Cfg) {
    RealRun R;
    R.Seconds = timeSeconds([&] {
      auto Out = runProblem(*Prob, Root, Cfg);
      R.Value = Out.Value;
      R.Stats = Out.Stats;
    });
    return R;
  };

  B.Profile = [Prob, Root]() {
    WorkloadProfile W;
    TreeProfile T;
    typename P::State S = Root;
    profileTree(*Prob, S, T);
    // Per-node work from the plain sequential program. Small inputs run
    // in well under a millisecond, so repeat until enough time has
    // accumulated and take the fastest run (least interference).
    double SeqSeconds;
    {
      double Best = 1e99;
      double Accumulated = 0;
      int Reps = 0;
      while ((Accumulated < 0.05 || Reps < 3) && Reps < 1000) {
        typename P::State S2 = Root;
        double Sec = timeSeconds([&] { (void)runSequential(*Prob, S2); });
        Best = std::min(Best, Sec);
        Accumulated += Sec;
        ++Reps;
      }
      SeqSeconds = Best;
    }
    W.Nodes = T.Nodes;
    W.MaxDepth = T.MaxDepth;
    long long Internal = T.Nodes - T.Leaves;
    W.AvgFanout = Internal > 0 ? static_cast<double>(T.Nodes - 1) /
                                     static_cast<double>(Internal)
                               : 0.0;
    W.NodeWorkNs = 1e9 * SeqSeconds / static_cast<double>(T.Nodes);
    W.StateBytes = static_cast<int>(sizeof(typename P::State));
    return W;
  };

  return B;
}

} // namespace

std::vector<Benchmark> atc::bench::benchmarkSuite(bool PaperScale) {
  std::vector<Benchmark> Suite;

  // Nqueen-array / Nqueen-compute. Paper: n = 16. Scaled: n = 11 keeps
  // the run in tens of milliseconds with the same branching structure.
  int QueensN = PaperScale ? 16 : 11;
  {
    auto Prob = std::make_shared<NQueensArray>();
    Suite.push_back(makeBenchmark<NQueensArray>(
        "Nqueen-array(" + std::to_string(QueensN) + ")", "Nqueen-array(16)",
        /*HasTaskprivate=*/true, Prob, NQueensArray::makeRoot(QueensN)));
  }
  {
    auto Prob = std::make_shared<NQueensCompute>();
    Suite.push_back(makeBenchmark<NQueensCompute>(
        "Nqueen-compute(" + std::to_string(QueensN) + ")",
        "Nqueen-compute(16)", /*HasTaskprivate=*/true, Prob,
        NQueensCompute::makeRoot(QueensN)));
  }

  // Strimko: the paper uses a 7x7 puzzle. Scaled: order 5 — broken-
  // diagonal stream layouts only admit solutions when the order is
  // coprime to 6, so 5 is the natural scaled sibling of 7.
  {
    int N = PaperScale ? 7 : 5;
    auto Prob = std::make_shared<Strimko>();
    Suite.push_back(makeBenchmark<Strimko>(
        "Strimko(" + std::to_string(N) + ")", "Strimko(7x7)",
        /*HasTaskprivate=*/true, Prob, Strimko::makeRoot(N)));
  }

  // Knight's Tour: paper 6x6; scaled 5x5 (the classic 304-tour corner
  // instance).
  {
    int N = PaperScale ? 6 : 5;
    auto Prob = std::make_shared<KnightsTour>();
    Suite.push_back(makeBenchmark<KnightsTour>(
        "Knights-Tour(" + std::to_string(N) + "x" + std::to_string(N) + ")",
        "Knights-Tour(6x6)", /*HasTaskprivate=*/true, Prob,
        KnightsTour::makeRoot(N, 0, 0)));
  }

  // Sudoku on the balanced instance (Figure 4e uses input_balance).
  {
    const char *Inst = PaperScale ? "balance-large" : "balance";
    auto Prob = std::make_shared<Sudoku>();
    Suite.push_back(makeBenchmark<Sudoku>(
        std::string("Sudoku(") + Inst + ")", "Sudoku(balance)",
        /*HasTaskprivate=*/true, Prob, Sudoku::makeInstance(Inst)));
  }

  // Pentomino: paper n = 13 (expanded board); scaled n = 6 on a 5x6
  // board.
  {
    int N = PaperScale ? 13 : 6;
    int Width = PaperScale ? 13 : 6;
    auto Prob = std::make_shared<Pentomino>(Width, 5, N);
    Suite.push_back(makeBenchmark<Pentomino>(
        "Pentomino(" + std::to_string(N) + ")", "Pentomino(13)",
        /*HasTaskprivate=*/true, Prob, Prob->makeRoot()));
  }

  // Fib: paper 45; scaled 27.
  {
    int N = PaperScale ? 45 : 27;
    auto Prob = std::make_shared<FibProblem>();
    Suite.push_back(makeBenchmark<FibProblem>(
        "Fib(" + std::to_string(N) + ")", "Fib(45)",
        /*HasTaskprivate=*/false, Prob, FibProblem::makeRoot(N)));
  }

  // Comp: paper 60000; scaled 6000.
  {
    int N = PaperScale ? 60000 : 6000;
    auto Prob = std::make_shared<CompProblem>(N);
    Suite.push_back(makeBenchmark<CompProblem>(
        "Comp(" + std::to_string(N) + ")", "Comp(60000)",
        /*HasTaskprivate=*/false, Prob, Prob->makeRoot()));
  }

  return Suite;
}

SimWorkload atc::bench::makeSimWorkload(const WorkloadProfile &Profile,
                                        long long MaxSimNodes,
                                        long long MinSimNodes) {
  SimWorkload W;
  long long Nodes = Profile.Nodes;
  double NodeWork = Profile.NodeWorkNs;
  if (Nodes > MaxSimNodes) {
    // Preserve total work: fewer, proportionally heavier nodes.
    NodeWork *= static_cast<double>(Nodes) /
                static_cast<double>(MaxSimNodes);
    Nodes = MaxSimNodes;
  }
  if (Nodes < MinSimNodes)
    Nodes = MinSimNodes; // re-expand toward the published input scale
  // Floor the grain at a plausible compiled-C recursion step: the
  // template interpreter's fib node underruns what the paper's gcc -O3
  // fib costs, which would inflate every relative overhead.
  NodeWork = std::max(NodeWork, 5.0);
  W.Tree.TotalNodes = std::max<long long>(Nodes, 64);
  W.Tree.EvenSplit = true; // Figure 4 inputs are the balanced workloads
  int Fan = static_cast<int>(Profile.AvgFanout + 0.5);
  W.Tree.MinFanout = std::max(2, Fan - 1);
  W.Tree.MaxFanout = std::max(W.Tree.MinFanout, Fan + 1);
  W.Tree.Seed = 0xF16'4 + static_cast<std::uint64_t>(Profile.Nodes);

  // Calibrate the scheduling-operation costs against this host once, so
  // the simulated figures are consistent with the real single-thread
  // measurements (Table 2) taken on the same machine.
  static const CostModel Calibrated = CostModel::calibrate();
  W.Costs = Calibrated;
  W.Costs.NodeWorkNs = std::max(NodeWork, 1.0);
  W.Costs.StateBytes = Profile.StateBytes;
  return W;
}

SimReport atc::bench::simulateWorkload(const SimWorkload &Workload,
                                       SchedulerKind Kind, int Workers,
                                       int Cutoff) {
  SimTree Tree(Workload.Tree);
  SimOptions Opts;
  Opts.Kind = Kind;
  Opts.NumWorkers = Workers;
  Opts.Cutoff = Cutoff;
  return simulate(Tree, Opts, Workload.Costs);
}

std::vector<SchedulerKind>
atc::bench::figureSystems(bool HasTaskprivate) {
  // "Fib and Comp don't have taskprivate variables, therefore the
  // speedup ... are against Cilk and Tascell only."
  if (!HasTaskprivate)
    return {SchedulerKind::Cilk, SchedulerKind::Tascell,
            SchedulerKind::AdaptiveTC};
  return {SchedulerKind::Cilk, SchedulerKind::CilkSynched,
          SchedulerKind::Tascell, SchedulerKind::AdaptiveTC};
}

void atc::bench::maybeWriteCsv(const std::string &Path,
                               const std::string &Csv) {
  if (Path.empty())
    return;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    reportWarning("cannot write CSV to " + Path);
    return;
  }
  std::fwrite(Csv.data(), 1, Csv.size(), F);
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}
