//===- bench/common/BenchCommon.h - Shared harness pieces -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared infrastructure for the figure/table harnesses: the Table-1
/// benchmark registry (scaled and paper-scale inputs), real-runtime
/// runners, and workload profiles that feed the simulator for the
/// multi-thread figures.
///
/// Each harness binary prints the rows/series of one table or figure of
/// the paper, as a text table and optionally CSV (--csv).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_BENCH_COMMON_BENCHCOMMON_H
#define ATC_BENCH_COMMON_BENCHCOMMON_H

#include "core/Problem.h"
#include "core/Runtime.h"
#include "sim/CostModel.h"
#include "sim/SimEngine.h"

#include <functional>
#include <string>
#include <vector>

namespace atc {
namespace bench {

/// Outcome of one real-runtime execution.
struct RealRun {
  long long Value = 0;
  double Seconds = 0;
  SchedulerStats Stats;
};

/// Workload shape measured from a real benchmark, used to parameterize
/// the simulator for the multi-thread figures.
struct WorkloadProfile {
  long long Nodes = 0;
  int MaxDepth = 0;
  double AvgFanout = 0;   ///< Children per internal node.
  double NodeWorkNs = 0;  ///< Sequential seconds / nodes.
  int StateBytes = 0;     ///< sizeof(State) — the taskprivate footprint.
  bool HasTaskprivate = true;
};

/// One Table-1 benchmark with scaled / paper-scale inputs.
struct Benchmark {
  std::string Name;       ///< e.g. "Nqueen-array(12)".
  std::string PaperName;  ///< e.g. "Nqueen-array(16)".
  bool HasTaskprivate = true;

  /// Runs the reference sequential program, returning value + seconds.
  std::function<RealRun()> RunSequential;

  /// Runs under the given scheduler configuration (real threads).
  std::function<RealRun(const SchedulerConfig &)> Run;

  /// Profiles the computation tree + per-node work (sequential).
  std::function<WorkloadProfile()> Profile;
};

/// The Table-1 benchmark suite. \p PaperScale selects the published input
/// sizes (16-queens, Fib(45), ... — minutes to hours of single-core
/// time); the default uses scaled inputs that preserve tree shape.
std::vector<Benchmark> benchmarkSuite(bool PaperScale);

/// Builds a simulator tree spec + cost model matched to \p Profile.
///
/// Node counts above \p MaxSimNodes are capped with the per-node work
/// scaled up correspondingly (total work preserved). Node counts below
/// \p MinSimNodes are expanded at unchanged per-node work: the scaled
/// benchmark inputs shrink the tree relative to the published inputs
/// (which have 1e8..1e9 nodes), and a multi-thread scheduling experiment
/// on a sub-millisecond workload would measure only startup latencies.
struct SimWorkload {
  TreeSpec Tree;
  CostModel Costs;
};
SimWorkload makeSimWorkload(const WorkloadProfile &Profile,
                            long long MaxSimNodes = 2'000'000,
                            long long MinSimNodes = 500'000);

/// Runs the simulator for \p Kind / \p Workers over \p Workload.
SimReport simulateWorkload(const SimWorkload &Workload, SchedulerKind Kind,
                           int Workers, int Cutoff = -1);

/// The four systems of Figures 4/5 (order matters for the tables).
std::vector<SchedulerKind> figureSystems(bool HasTaskprivate);

/// Writes \p Csv to \p Path (under the current directory) when non-empty.
void maybeWriteCsv(const std::string &Path, const std::string &Csv);

} // namespace bench
} // namespace atc

#endif // ATC_BENCH_COMMON_BENCHCOMMON_H
