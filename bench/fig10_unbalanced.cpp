//===- bench/fig10_unbalanced.cpp - Figure 10: unbalanced trees -----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 10 (a-d): speedups of Cilk-SYNCHED, Tascell and
/// AdaptiveTC on the unbalanced trees — Sudoku input1/input2 (the Fig. 8
/// tree and its mirror) and the Table-3 trees Tree1L/R .. Tree3L/R — for
/// 1..8 threads. Also prints the Section 5.3.2 waiting diagnostics
/// (Tascell waits 8.08% on Tree3L vs 51.99% on Tree3R; AdaptiveTC's
/// Tree3L steal-fail starvation).
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "sim/SimEngine.h"
#include "sim/TreeGen.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/Table.h"
#include "trace/TraceJson.h"

#include <cstdio>

using namespace atc;

int main(int argc, char **argv) {
  long long Scale = 2'000'000;
  std::string CsvPath;
  bool Quick = false;
  std::string TracePath;
  std::string TraceTree = "tree3r";
  std::string TraceSystem = "adaptivetc";
  long long TraceThreads = 8;
  std::string Deque = "the";
  std::string StealPol = "one";
  std::string Victim = "random";
  long long VictimGroup = 4;
  OptionSet Opts("Figure 10: speedup on unbalanced trees");
  Opts.addInt("scale", &Scale, "tree size in nodes");
  Opts.addFlag("quick", &Quick, "thread counts {1,2,4,8} only");
  Opts.addString("deque", &Deque,
                 "modelled ready-deque: the (lock round trip per steal), "
                 "atomic or chaselev (lock-free CAS claim)");
  Opts.addString("steal-policy", &StealPol,
                 "one continuation per raid (one) or batch up to half the "
                 "victim's stealable frames (half)");
  Opts.addString("victim", &Victim,
                 "victim ordering: random (the sim's historical default), "
                 "affinity, or partitioned");
  Opts.addInt("victim-group", &VictimGroup,
              "group width for --victim partitioned (default 4)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  Opts.addString("trace", &TracePath,
                 "also record one run's virtual-time event trace to this "
                 "file (Chrome/Perfetto trace.json); selected by "
                 "--trace-tree/--trace-system/--trace-threads");
  Opts.addString("trace-tree", &TraceTree,
                 "tree preset the trace records (default tree3r)");
  Opts.addString("trace-system", &TraceSystem,
                 "system the trace records (default adaptivetc)");
  Opts.addInt("trace-threads", &TraceThreads,
              "worker count the trace records (default 8)");
  Opts.parse(argc, argv);

  DequeKind DQ;
  StealPolicy SP;
  VictimPolicy VP;
  if (!parseDequeKind(Deque, DQ))
    reportFatalError("unknown deque kind '" + Deque + "'");
  if (!parseStealPolicy(StealPol, SP))
    reportFatalError("unknown steal policy '" + StealPol + "'");
  if (!parseVictimPolicy(Victim, VP))
    reportFatalError("unknown victim policy '" + Victim + "'");
  // Applied to every simulated configuration below (tables, diagnostics,
  // and the optional traced replay).
  auto applyPolicies = [&](SimOptions &O) {
    O.Deque = DQ;
    O.Steal = SP;
    O.Victim = VP;
    O.VictimGroupSize = static_cast<int>(VictimGroup);
  };

  struct Panel {
    const char *Title;
    const char *Left;
    const char *Right;
  };
  const Panel Panels[] = {
      {"(a) Sudoku input1 / input2", "input1", "input2"},
      {"(b) Random unbalanced tree1L / tree1R", "tree1l", "tree1r"},
      {"(c) Random unbalanced tree2L / tree2R", "tree2l", "tree2r"},
      {"(d) Random unbalanced tree3L / tree3R", "tree3l", "tree3r"},
  };
  const SchedulerKind Systems[] = {SchedulerKind::CilkSynched,
                                   SchedulerKind::Tascell,
                                   SchedulerKind::AdaptiveTC};

  TextTable Csv;
  Csv.setHeader({"panel", "tree", "system", "threads", "speedup",
                 "wait_children_pct", "idle_pct"});

  for (const Panel &P : Panels) {
    std::printf("=== Figure 10 %s ===\n", P.Title);
    TextTable Table;
    {
      std::vector<std::string> Header = {"threads"};
      for (SchedulerKind K : Systems) {
        Header.push_back(std::string(schedulerKindName(K)) + "_" + P.Left);
        Header.push_back(std::string(schedulerKindName(K)) + "_" + P.Right);
      }
      Table.setHeader(Header);
    }

    for (int T = 1; T <= 8; ++T) {
      if (Quick && T != 1 && T != 2 && T != 4 && T != 8)
        continue;
      std::vector<std::string> Row = {std::to_string(T)};
      for (SchedulerKind K : Systems) {
        for (const char *TreeName : {P.Left, P.Right}) {
          SimTree Tree(SimTree::preset(TreeName, Scale));
          SimOptions SimOpts;
          SimOpts.Kind = K;
          SimOpts.NumWorkers = T;
          applyPolicies(SimOpts);
          CostModel Costs;
          SimReport R = simulate(Tree, SimOpts, Costs);
          Row.push_back(TextTable::fmt(R.speedup(), 2));
          double Busy = R.Total.totalNs();
          Csv.addRow({P.Title, TreeName, schedulerKindName(K),
                      std::to_string(T), TextTable::fmt(R.speedup(), 4),
                      TextTable::fmt(100.0 * R.Total.WaitChildrenNs / Busy, 2),
                      TextTable::fmt(100.0 * R.Total.IdleNs / Busy, 2)});
        }
      }
      Table.addRow(Row);
    }
    Table.print();
    std::printf("\n");
  }

  // Section 5.3.2 diagnostics at 8 threads on Tree3.
  std::printf("=== Section 5.3.2: waiting diagnostics on Tree3 (8 threads) "
              "===\n");
  for (const char *TreeName : {"tree3l", "tree3r"}) {
    SimTree Tree(SimTree::preset(TreeName, Scale));
    for (SchedulerKind K :
         {SchedulerKind::Tascell, SchedulerKind::AdaptiveTC}) {
      SimOptions SimOpts;
      SimOpts.Kind = K;
      SimOpts.NumWorkers = 8;
      applyPolicies(SimOpts);
      CostModel Costs;
      SimReport R = simulate(Tree, SimOpts, Costs);
      double Busy = R.Total.totalNs();
      std::printf("%-10s %-11s wait_children=%5.2f%%  steal-fail idle="
                  "%5.2f%%  speedup=%.2f\n",
                  schedulerKindName(K), TreeName,
                  100.0 * R.Total.WaitChildrenNs / Busy,
                  100.0 * R.Total.IdleNs / Busy, R.speedup());
    }
  }

  // Optional: replay one selected configuration with a trace log attached
  // (the simulator is deterministic, so this is exactly the run the
  // tables above measured) and export it for Perfetto.
  if (!TracePath.empty()) {
    SimOptions SimOpts;
    if (!parseSchedulerKind(TraceSystem, SimOpts.Kind))
      reportFatalError("unknown scheduler '" + TraceSystem + "'");
    SimOpts.NumWorkers = static_cast<int>(TraceThreads);
    applyPolicies(SimOpts);
    SimTree Tree(SimTree::preset(TraceTree, Scale));
    CostModel Costs;
    TraceLog Log(SimOpts.NumWorkers, 1u << 20);
    simulate(Tree, SimOpts, Costs, &Log);
    Log.Meta.Workload = TraceTree;
    if (writeChromeTraceFile(Log, TracePath))
      std::printf("\ntrace: wrote %s (%s on %s, %lld virtual workers)\n",
                  TracePath.c_str(), schedulerKindName(SimOpts.Kind),
                  TraceTree.c_str(), TraceThreads);
    else
      std::fprintf(stderr, "fig10_unbalanced: cannot write trace to "
                           "'%s'\n",
                   TracePath.c_str());
  }

  atc::bench::maybeWriteCsv(CsvPath, Csv.renderCsv());
  return 0;
}
