//===- bench/fig4_speedup.cpp - Figure 4: speedup vs. threads -------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 4 (a-h): speedup over the sequential program for
/// each Table-1 benchmark under Cilk, Cilk-SYNCHED, Tascell, and
/// AdaptiveTC with 1..8 threads.
///
/// The host has a single core, so the multi-thread points are produced by
/// the virtual-time simulator parameterized with each benchmark's
/// measured tree shape, per-node work, and workspace size (see DESIGN.md
/// "Substitutions"). The 1-thread points of the real runtime are reported
/// by table2_overhead1t.
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>

using namespace atc;
using namespace atc::bench;

int main(int argc, char **argv) {
  bool PaperScale = false;
  bool Quick = false;
  long long MaxThreads = 8;
  std::string CsvPath;
  OptionSet Opts("Figure 4: speedup vs. thread count, all benchmarks");
  Opts.addFlag("paper-scale", &PaperScale,
               "use the published input sizes (slow)");
  Opts.addFlag("quick", &Quick, "thread counts {1,2,4,8} only");
  Opts.addInt("max-threads", &MaxThreads, "largest thread count (default 8)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  Opts.parse(argc, argv);

  TextTable Csv;
  Csv.setHeader({"benchmark", "system", "threads", "speedup"});

  std::vector<int> Threads;
  for (int T = 1; T <= MaxThreads; ++T)
    if (!Quick || T == 1 || T == 2 || T == 4 || T == 8)
      Threads.push_back(T);

  for (const Benchmark &B : benchmarkSuite(PaperScale)) {
    std::printf("=== Figure 4: %s (paper: %s) ===\n", B.Name.c_str(),
                B.PaperName.c_str());
    WorkloadProfile P = B.Profile();
    std::printf("workload: %lld nodes, depth %d, fanout %.2f, "
                "%.1f ns/node, state %d B\n",
                P.Nodes, P.MaxDepth, P.AvgFanout, P.NodeWorkNs,
                P.StateBytes);
    SimWorkload W = makeSimWorkload(P);

    TextTable Table;
    std::vector<std::string> Header = {"threads"};
    std::vector<SchedulerKind> Systems = figureSystems(B.HasTaskprivate);
    for (SchedulerKind K : Systems)
      Header.push_back(schedulerKindName(K));
    Table.setHeader(Header);

    for (int T : Threads) {
      std::vector<std::string> Row = {std::to_string(T)};
      for (SchedulerKind K : Systems) {
        SimReport R = simulateWorkload(W, K, T);
        Row.push_back(TextTable::fmt(R.speedup(), 2));
        Csv.addRow({B.Name, schedulerKindName(K), std::to_string(T),
                    TextTable::fmt(R.speedup(), 4)});
      }
      Table.addRow(Row);
    }
    Table.print();
    std::printf("\n");
  }

  maybeWriteCsv(CsvPath, Csv.renderCsv());
  return 0;
}
