//===- bench/fig5_speedup8.cpp - Figure 5: 8-thread speedup vs. Cilk ------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 5: speedup with 8 threads, baseline is Cilk's
/// execution time ("The results ... show a significant performance
/// improvement of the AdaptiveTC over Cilk in the range of 1.15x to 2.78x
/// using 8 threads").
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>

using namespace atc;
using namespace atc::bench;

int main(int argc, char **argv) {
  bool PaperScale = false;
  std::string CsvPath;
  OptionSet Opts("Figure 5: 8-thread speedup relative to Cilk");
  Opts.addFlag("paper-scale", &PaperScale,
               "use the published input sizes (slow)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  Opts.parse(argc, argv);

  constexpr int Threads = 8;
  TextTable Table;
  Table.setHeader({"benchmark", "Cilk", "Cilk-SYNCHED", "Tascell",
                   "AdaptiveTC", "AdaptiveTC/Cilk"});
  TextTable Csv;
  Csv.setHeader({"benchmark", "system", "speedup_vs_cilk"});

  for (const Benchmark &B : benchmarkSuite(PaperScale)) {
    SimWorkload W = makeSimWorkload(B.Profile());
    double CilkNs =
        simulateWorkload(W, SchedulerKind::Cilk, Threads).MakespanNs;

    std::vector<std::string> Row = {B.Name};
    double AtcRatio = 0;
    for (SchedulerKind K :
         {SchedulerKind::Cilk, SchedulerKind::CilkSynched,
          SchedulerKind::Tascell, SchedulerKind::AdaptiveTC}) {
      if (K == SchedulerKind::CilkSynched && !B.HasTaskprivate) {
        Row.push_back("-");
        continue;
      }
      SimReport R = simulateWorkload(W, K, Threads);
      double Ratio = CilkNs / R.MakespanNs;
      if (K == SchedulerKind::AdaptiveTC)
        AtcRatio = Ratio;
      Row.push_back(TextTable::fmt(Ratio, 2));
      Csv.addRow({B.Name, schedulerKindName(K), TextTable::fmt(Ratio, 4)});
    }
    Row.push_back(TextTable::fmt(AtcRatio, 2));
    Table.addRow(Row);
  }

  std::printf("=== Figure 5: speedup with 8 threads, baseline Cilk ===\n");
  Table.print();
  maybeWriteCsv(CsvPath, Csv.renderCsv());
  return 0;
}
