//===- bench/fig6_breakdown1t.cpp - Figure 6: 1-thread breakdown ----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 6: breakdown of the single-thread overheads of
/// Tascell, Cilk, Cilk-SYNCHED and AdaptiveTC into "working",
/// "taskprivate variable" (workspace copying) and "deque / nested
/// function" shares, for Nqueen-array, Nqueen-compute and Fib.
///
/// Method: the total 1-thread time and the sequential time are measured
/// directly (real runs). The workspace-copy share is attributed from the
/// instrumented copy counters times a live-calibrated memcpy cost; the
/// remaining overhead is deque management / task creation (Cilk kinds),
/// or nested-function management / polling (Tascell, AdaptiveTC).
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace atc;
using namespace atc::bench;

int main(int argc, char **argv) {
  bool PaperScale = false;
  long long Repeats = 3;
  std::string CsvPath;
  OptionSet Opts("Figure 6: breakdown of overheads with one thread");
  Opts.addFlag("paper-scale", &PaperScale,
               "use the published input sizes (slow)");
  Opts.addInt("repeats", &Repeats, "runs per configuration (median)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  std::string Deque = "the";
  Opts.addString("deque", &Deque,
                 "ready-deque implementation: the (mutex, paper-fidelity), "
                 "atomic (lock-free CAS), or chaselev (lock-free, "
                 "growable ring)");
  Opts.parse(argc, argv);
  DequeKind DQ;
  if (!parseDequeKind(Deque, DQ))
    reportFatalError("unknown deque kind '" + Deque + "'");

  // Figure 6 uses these three benchmarks.
  const char *Wanted[] = {"Nqueen-array", "Nqueen-compute", "Fib"};

  CostModel Calibrated = CostModel::calibrate();
  std::printf("calibrated unit costs: %s\n\n", Calibrated.describe().c_str());

  TextTable Csv;
  Csv.setHeader({"benchmark", "system", "working_pct", "taskprivate_pct",
                 "deque_or_nested_pct"});

  for (const Benchmark &B : benchmarkSuite(PaperScale)) {
    bool Selected = false;
    for (const char *Prefix : Wanted)
      if (B.Name.rfind(Prefix, 0) == 0)
        Selected = true;
    if (!Selected)
      continue;

    std::vector<double> SeqTimes;
    for (int I = 0; I < Repeats; ++I)
      SeqTimes.push_back(B.RunSequential().Seconds);
    double SeqSec = median(SeqTimes);

    std::printf("=== Figure 6: overhead breakdown of %s (1 thread) ===\n",
                B.Name.c_str());
    TextTable Table;
    Table.setHeader({"system", "working", "taskprivate/copy",
                     "deque/nested-fn"});

    for (SchedulerKind K :
         {SchedulerKind::Tascell, SchedulerKind::Cilk,
          SchedulerKind::CilkSynched, SchedulerKind::AdaptiveTC}) {
      if (K == SchedulerKind::CilkSynched && !B.HasTaskprivate)
        continue;
      SchedulerConfig Cfg;
      Cfg.Kind = K;
      Cfg.Deque = DQ;
      Cfg.NumWorkers = 1;
      std::vector<double> Times;
      SchedulerStats Stats;
      for (int I = 0; I < Repeats; ++I) {
        RealRun R = B.Run(Cfg);
        Times.push_back(R.Seconds);
        Stats = R.Stats;
      }
      double Sec = median(Times);

      // Workspace (taskprivate) share: the memcpy bytes plus, for plain
      // Cilk, the fresh per-child allocation that SYNCHED/taskprivate
      // elide.
      double CopySec =
          1e-9 * Calibrated.CopyNsPerByte *
          static_cast<double>(Stats.CopiedBytes);
      if (K == SchedulerKind::Cilk)
        CopySec += 1e-9 * Calibrated.AllocNs *
                   static_cast<double>(Stats.WorkspaceCopies);
      double Working = SeqSec;
      double Overhead = std::max(Sec - SeqSec, 0.0);
      CopySec = std::min(CopySec, Overhead);
      double Other = Overhead - CopySec;

      double Total = Working + CopySec + Other;
      auto Pct = [Total](double X) {
        return TextTable::fmt(100.0 * X / Total, 1) + "%";
      };
      Table.addRow({schedulerKindName(K), Pct(Working), Pct(CopySec),
                    Pct(Other)});
      Csv.addRow({B.Name, schedulerKindName(K),
                  TextTable::fmt(100.0 * Working / Total, 2),
                  TextTable::fmt(100.0 * CopySec / Total, 2),
                  TextTable::fmt(100.0 * Other / Total, 2)});
    }
    Table.print();
    std::printf("\n");
  }

  maybeWriteCsv(CsvPath, Csv.renderCsv());
  return 0;
}
