//===- bench/fig7_tascell_breakdown.cpp - Figure 7: Tascell waits ---------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 7: breakdown of Tascell's multi-thread overheads
/// into working / polling / wait_children at 2, 4 and 8 threads for
/// Nqueen-array, Nqueen-compute and Fib. The paper measures
/// wait_children at 16.73%, 20.84% and 11.31% respectively with 8
/// threads. Simulated (multi-thread shape experiment; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>

using namespace atc;
using namespace atc::bench;

int main(int argc, char **argv) {
  bool PaperScale = false;
  std::string CsvPath;
  OptionSet Opts("Figure 7: Tascell overhead breakdown, multiple threads");
  Opts.addFlag("paper-scale", &PaperScale,
               "use the published input sizes (slow)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  Opts.parse(argc, argv);

  const char *Wanted[] = {"Nqueen-array", "Nqueen-compute", "Fib"};

  TextTable Csv;
  Csv.setHeader({"benchmark", "threads", "working_pct", "polling_pct",
                 "wait_children_pct"});

  for (const Benchmark &B : benchmarkSuite(PaperScale)) {
    bool Selected = false;
    for (const char *Prefix : Wanted)
      if (B.Name.rfind(Prefix, 0) == 0)
        Selected = true;
    if (!Selected)
      continue;

    SimWorkload W = makeSimWorkload(B.Profile());
    std::printf("=== Figure 7: Tascell overhead breakdown of %s ===\n",
                B.Name.c_str());
    TextTable Table;
    Table.setHeader({"threads", "working", "polling", "wait_children"});
    for (int T : {2, 4, 8}) {
      SimReport R = simulateWorkload(W, SchedulerKind::Tascell, T);
      // The paper's three-way split: working subsumes overheads other
      // than polling and waiting.
      double Working =
          R.Total.WorkNs + R.Total.OverheadNs + R.Total.IdleNs;
      double Poll = R.Total.PollNs;
      double Wait = R.Total.WaitChildrenNs;
      double Total = Working + Poll + Wait;
      auto Pct = [Total](double X) {
        return TextTable::fmt(100.0 * X / Total, 2) + "%";
      };
      Table.addRow({std::to_string(T), Pct(Working), Pct(Poll), Pct(Wait)});
      Csv.addRow({B.Name, std::to_string(T),
                  TextTable::fmt(100.0 * Working / Total, 2),
                  TextTable::fmt(100.0 * Poll / Total, 2),
                  TextTable::fmt(100.0 * Wait / Total, 2)});
    }
    Table.print();
    std::printf("\n");
  }

  maybeWriteCsv(CsvPath, Csv.renderCsv());
  return 0;
}
