//===- bench/fig8_table3_trees.cpp - Figure 8 / Table 3 tree stats --------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8 and Table 3: the unbalanced experiment trees.
/// For each preset it regenerates the tree at the chosen scale and prints
/// the published columns — size, leaf count, depth, and the depth-1
/// subtree percentages (Table 3's "percent numbers") — plus Figure 8's
/// nested heavy-path percentages.
///
//===----------------------------------------------------------------------===//

#include "sim/TreeGen.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

using namespace atc;

int main(int argc, char **argv) {
  long long Scale = 2'000'000;
  std::string CsvPath;
  OptionSet Opts("Figure 8 / Table 3: unbalanced tree statistics");
  Opts.addInt("scale", &Scale,
              "tree size in nodes (paper: 1,961,025,791 for Table 3)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  Opts.parse(argc, argv);

  std::printf("=== Table 3: randomly generated unbalanced trees "
              "(scale %lld nodes; paper scale 1,961,025,791) ===\n",
              Scale);
  TextTable Table;
  Table.setHeader({"input", "size", "leaves", "depth", "depth-1 shares (%)"});

  for (const char *Name : {"tree1l", "tree1r", "tree2l", "tree2r", "tree3l",
                           "tree3r"}) {
    SimTree Tree(SimTree::preset(Name, Scale));
    auto Stats = Tree.walk();
    std::string Shares;
    for (double S : Tree.depth1SharePercent()) {
      if (!Shares.empty())
        Shares += ", ";
      Shares += TextTable::fmt(S, 3);
    }
    Table.addRow({Name, TextTable::fmt(static_cast<long long>(Stats.Nodes)),
                  TextTable::fmt(static_cast<long long>(Stats.Leaves)),
                  std::to_string(Stats.MaxDepth), Shares});
  }
  Table.print();

  std::printf("\n=== Figure 8: the Sudoku-derived unbalanced tree (input1) "
              "===\n");
  SimTree Fig8(SimTree::preset("fig8", Scale));
  auto Stats = Fig8.walk();
  std::printf("size=%lld; depth=%d; leaves=%lld\n", Stats.Nodes,
              Stats.MaxDepth, Stats.Leaves);
  std::printf("heavy-path subtree share per depth (paper: 61.04%%, 46.2%%, "
              "22.6%%, 17.74%% ...):\n");
  SimTreeNode Node = Fig8.root();
  std::vector<SimTreeNode> Kids;
  for (int Depth = 1; Depth <= 6; ++Depth) {
    Fig8.children(Node, Kids);
    if (Kids.empty())
      break;
    SimTreeNode Heavy = Kids[0];
    for (const SimTreeNode &K : Kids)
      if (K.Size > Heavy.Size)
        Heavy = K;
    std::printf("  depth%d  %.2f%%\n", Depth,
                100.0 * static_cast<double>(Heavy.Size) /
                    static_cast<double>(Stats.Nodes));
    Node = Heavy;
  }
  return 0;
}
