//===- bench/fig9_cutoff.cpp - Figure 9: cut-off strategies ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 9: speedup of Sudoku (input1, the Figure 8 tree)
/// under Cilk, Tascell, AdaptiveTC, Cutoff-programmer and Cutoff-library
/// for 1..8 threads. The paper's finding: "In both Cutoff-programmer and
/// Cutoff-library, some threads are in starvation when the numbers of
/// threads are larger than 4 ... AdaptiveTC gets a better speedup in an
/// unbalanced tree than the other two strategies."
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "sim/SimEngine.h"
#include "sim/TreeGen.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>

using namespace atc;

int main(int argc, char **argv) {
  long long Scale = 2'000'000;
  long long CutoffProgrammer = 3;
  long long Seeds = 3;
  std::string CsvPath;
  OptionSet Opts("Figure 9: Sudoku(input1) under cut-off strategies");
  Opts.addInt("scale", &Scale, "tree size in nodes");
  Opts.addInt("cutoff", &CutoffProgrammer,
              "Cutoff-programmer depth (default 3)");
  Opts.addInt("seeds", &Seeds,
              "average speedups over this many scheduler seeds (the "
              "adaptive dynamics are chaotic on a single run)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  Opts.parse(argc, argv);

  SimTree Tree(SimTree::preset("fig8", Scale));
  CostModel Costs;
  // Sudoku's workspace is the paper's Status_t (4 x 81 bytes).
  Costs.StateBytes = 324;

  struct System {
    const char *Name;
    SchedulerKind Kind;
    int Cutoff;
    bool CopiesEverywhere;
  };
  const System Systems[] = {
      {"Cilk", SchedulerKind::Cilk, -1, false},
      {"Tascell", SchedulerKind::Tascell, -1, false},
      {"AdaptiveTC", SchedulerKind::AdaptiveTC, -1, false},
      {"Cutoff-programmer", SchedulerKind::Cutoff,
       static_cast<int>(CutoffProgrammer), false},
      {"Cutoff-library", SchedulerKind::Cutoff, -1, true},
  };

  TextTable Table;
  {
    std::vector<std::string> Header = {"threads"};
    for (const System &S : Systems)
      Header.push_back(S.Name);
    Table.setHeader(Header);
  }
  TextTable Csv;
  Csv.setHeader({"system", "threads", "speedup"});

  for (int T = 1; T <= 8; ++T) {
    std::vector<std::string> Row = {std::to_string(T)};
    for (const System &S : Systems) {
      double Sum = 0;
      for (int Seed = 0; Seed < Seeds; ++Seed) {
        SimOptions SimOpts;
        SimOpts.Kind = S.Kind;
        SimOpts.NumWorkers = T;
        SimOpts.Cutoff = S.Cutoff;
        SimOpts.CutoffCopiesEverywhere = S.CopiesEverywhere;
        SimOpts.Seed = 0x51D + static_cast<std::uint64_t>(Seed) * 7919;
        Sum += simulate(Tree, SimOpts, Costs).speedup();
      }
      double Speedup = Sum / static_cast<double>(Seeds);
      Row.push_back(TextTable::fmt(Speedup, 2));
      Csv.addRow({S.Name, std::to_string(T), TextTable::fmt(Speedup, 4)});
    }
    Table.addRow(Row);
  }

  std::printf("=== Figure 9: speedup of Sudoku (input1) ===\n");
  Table.print();
  atc::bench::maybeWriteCsv(CsvPath, Csv.renderCsv());
  return 0;
}
