//===- bench/micro_deque.cpp - deque micro-benchmarks ---------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-benchmarks of the deque implementations: the
/// fixed-array THE-protocol deque (Cilk 5.4.6 / AdaptiveTC), the
/// lock-free special-task AtomicDeque (SchedulerConfig::Deque = atomic),
/// and the growable lock-free ChaseLevDeque (SchedulerConfig::Deque =
/// chaselev — same protocol, overflow-free). The single-thread benches
/// are the unit costs the simulator's CostModel is calibrated against;
/// the Contended* benches measure steal throughput with 1/2/4/8 thief
/// threads hammering one owner — the scenario the lock-free steal path
/// exists for; the BatchSteal* benches are the per-frame claim cost of a
/// steal-half batch (SchedulerConfig::Steal = half).
///
//===----------------------------------------------------------------------===//

#include "deque/AtomicDeque.h"
#include "deque/ChaseLevDeque.h"
#include "deque/TheDeque.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

using namespace atc;

static void BM_TheDequePushPop(benchmark::State &State) {
  TheDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    D.tryPush(&Dummy);
    benchmark::DoNotOptimize(D.pop());
  }
}
BENCHMARK(BM_TheDequePushPop);

static void BM_TheDequePushStealBatch(benchmark::State &State) {
  TheDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    for (int I = 0; I < 64; ++I)
      D.tryPush(&Dummy);
    for (int I = 0; I < 64; ++I)
      benchmark::DoNotOptimize(D.steal());
    D.reset();
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_TheDequePushStealBatch);

static void BM_TheDequeSpecialRoundTrip(benchmark::State &State) {
  // The AdaptiveTC check-version pattern: push special, push child, steal
  // child via H += 2, pop special (failure path with H = T reset).
  TheDeque D(1024);
  int Special = 0, Child = 0;
  for (auto _ : State) {
    D.tryPush(&Special, /*Special=*/true);
    D.tryPush(&Child);
    benchmark::DoNotOptimize(D.steal());
    benchmark::DoNotOptimize(D.pop());
    benchmark::DoNotOptimize(D.popSpecial());
    D.reset();
  }
}
BENCHMARK(BM_TheDequeSpecialRoundTrip);

static void BM_AtomicDequePushPop(benchmark::State &State) {
  AtomicDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    D.tryPush(&Dummy);
    benchmark::DoNotOptimize(D.pop());
  }
}
BENCHMARK(BM_AtomicDequePushPop);

static void BM_AtomicDequePushStealBatch(benchmark::State &State) {
  AtomicDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    for (int I = 0; I < 64; ++I)
      D.tryPush(&Dummy);
    for (int I = 0; I < 64; ++I)
      benchmark::DoNotOptimize(D.steal());
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_AtomicDequePushStealBatch);

static void BM_AtomicDequeSpecialRoundTrip(benchmark::State &State) {
  // Same protocol round-trip as BM_TheDequeSpecialRoundTrip: push special,
  // push child, steal child via the Head += 2 jump, fail the child pop,
  // fail the special pop (Tail restored to Head).
  AtomicDeque D(1024);
  int Special = 0, Child = 0;
  for (auto _ : State) {
    D.tryPush(&Special, /*Special=*/true);
    D.tryPush(&Child);
    benchmark::DoNotOptimize(D.steal());
    benchmark::DoNotOptimize(D.pop());
    benchmark::DoNotOptimize(D.popSpecial());
  }
}
BENCHMARK(BM_AtomicDequeSpecialRoundTrip);

/// Contended steal throughput: \p NumThieves thief threads spin on
/// steal() while the owner (the benchmark thread) keeps the deque
/// supplied with batches of 64 entries and pops back whatever the thieves
/// leave. Items processed = successful steals, so items_per_second is the
/// steal throughput under contention. With the mutex THE deque every
/// steal attempt serializes on the victim's lock (and on an
/// oversubscribed host a preempted lock holder stalls every other thief);
/// the CAS path stays wait-free for the winner.
template <typename DequeT>
static void contendedSteal(benchmark::State &State) {
  const int NumThieves = static_cast<int>(State.range(0));
  DequeT D(4096);
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Stolen{0};
  int Dummy = 0;

  std::vector<std::thread> Thieves;
  Thieves.reserve(static_cast<std::size_t>(NumThieves));
  for (int I = 0; I < NumThieves; ++I)
    Thieves.emplace_back([&D, &Stop, &Stolen] {
      std::uint64_t N = 0;
      while (!Stop.load(std::memory_order_relaxed))
        if (D.steal().Status == StealResult::Status::Success)
          ++N;
      Stolen.fetch_add(N, std::memory_order_relaxed);
    });

  for (auto _ : State) {
    for (int I = 0; I < 64; ++I)
      if (!D.tryPush(&Dummy)) {
        // TheDeque indices are absolute: after enough steals they reach
        // the array end regardless of occupancy. Drain and rewind (the
        // owner-side recovery a real scheduler performs between runs).
        while (D.pop() == PopResult::Success) {
        }
        D.reset();
        break;
      }
    while (D.pop() == PopResult::Success) {
    }
  }

  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Thieves)
    T.join();
  State.SetItemsProcessed(
      static_cast<std::int64_t>(Stolen.load(std::memory_order_relaxed)));
}

static void BM_ContendedStealThe(benchmark::State &State) {
  contendedSteal<TheDeque>(State);
}
BENCHMARK(BM_ContendedStealThe)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

static void BM_ContendedStealAtomic(benchmark::State &State) {
  contendedSteal<AtomicDeque>(State);
}
BENCHMARK(BM_ContendedStealAtomic)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

/// Pure thief-side contention: \p NumThieves drain a pre-filled deque
/// with no owner interference, so items_per_second is the aggregate
/// contended steal throughput. This is the benchmark that isolates the
/// lock-vs-CAS difference even on a single-core host: every contended
/// mutex acquisition pays futex traffic, while a lost CAS just retries.
/// (The Contended* benches above measure the owner-active scenario, which
/// on an oversubscribed host is dominated by preemption timing.)
template <typename DequeT>
static void drainSteal(benchmark::State &State) {
  const int NumThieves = static_cast<int>(State.range(0));
  constexpr int Items = 200000;
  int Dummy = 0;
  for (auto _ : State) {
    DequeT D(Items + 8);
    for (int I = 0; I < Items; ++I)
      D.tryPush(&Dummy);
    std::atomic<int> Left{Items};
    auto T0 = std::chrono::steady_clock::now();
    std::vector<std::thread> Thieves;
    Thieves.reserve(static_cast<std::size_t>(NumThieves));
    for (int I = 0; I < NumThieves; ++I)
      Thieves.emplace_back([&D, &Left] {
        while (Left.load(std::memory_order_relaxed) > 0)
          if (D.steal().Status == StealResult::Status::Success)
            Left.fetch_sub(1, std::memory_order_relaxed);
      });
    for (std::thread &T : Thieves)
      T.join();
    auto T1 = std::chrono::steady_clock::now();
    State.SetIterationTime(
        std::chrono::duration<double>(T1 - T0).count());
  }
  State.SetItemsProcessed(State.iterations() * Items);
}

static void BM_DrainStealThe(benchmark::State &State) {
  drainSteal<TheDeque>(State);
}
BENCHMARK(BM_DrainStealThe)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

static void BM_DrainStealAtomic(benchmark::State &State) {
  drainSteal<AtomicDeque>(State);
}
BENCHMARK(BM_DrainStealAtomic)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

/// The emptiness probe: thieves hammering an empty deque. This is the
/// dominant steal-path operation for AdaptiveTC (a victim busy in fake
/// tasks has an empty deque) — the lock-free pre-check answers it without
/// a lock acquisition on either deque kind.
template <typename DequeT>
static void emptyProbe(benchmark::State &State) {
  DequeT D(1024);
  for (auto _ : State)
    benchmark::DoNotOptimize(D.steal());
}

static void BM_EmptyProbeThe(benchmark::State &State) {
  emptyProbe<TheDeque>(State);
}
BENCHMARK(BM_EmptyProbeThe);

static void BM_EmptyProbeAtomic(benchmark::State &State) {
  emptyProbe<AtomicDeque>(State);
}
BENCHMARK(BM_EmptyProbeAtomic);

static void BM_EmptyProbeChaseLev(benchmark::State &State) {
  emptyProbe<ChaseLevDeque>(State);
}
BENCHMARK(BM_EmptyProbeChaseLev);

static void BM_ChaseLevPushPop(benchmark::State &State) {
  ChaseLevDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    D.tryPush(&Dummy);
    benchmark::DoNotOptimize(D.pop());
  }
}
BENCHMARK(BM_ChaseLevPushPop);

static void BM_ChaseLevPushStealBatch(benchmark::State &State) {
  ChaseLevDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    for (int I = 0; I < 64; ++I)
      D.tryPush(&Dummy);
    for (int I = 0; I < 64; ++I)
      benchmark::DoNotOptimize(D.steal());
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_ChaseLevPushStealBatch);

static void BM_ChaseLevSpecialRoundTrip(benchmark::State &State) {
  // Same protocol round-trip as the The/Atomic variants: push special,
  // push child, steal child via the Head += 2 jump, fail the child pop,
  // fail the special pop (Tail restored to Head).
  ChaseLevDeque D(1024);
  int Special = 0, Child = 0;
  for (auto _ : State) {
    D.tryPush(&Special, /*Special=*/true);
    D.tryPush(&Child);
    benchmark::DoNotOptimize(D.steal());
    benchmark::DoNotOptimize(D.pop());
    benchmark::DoNotOptimize(D.popSpecial());
  }
}
BENCHMARK(BM_ChaseLevSpecialRoundTrip);

static void BM_ContendedStealChaseLev(benchmark::State &State) {
  contendedSteal<ChaseLevDeque>(State);
}
BENCHMARK(BM_ContendedStealChaseLev)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

static void BM_DrainStealChaseLev(benchmark::State &State) {
  drainSteal<ChaseLevDeque>(State);
}
BENCHMARK(BM_DrainStealChaseLev)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

static void BM_ChaseLevGrowth(benchmark::State &State) {
  // Overflow behaviour: the Chase-Lev deque grows instead of rejecting.
  int Dummy = 0;
  for (auto _ : State) {
    ChaseLevDeque D(4);
    for (int I = 0; I < 512; ++I)
      D.tryPush(&Dummy);
    benchmark::DoNotOptimize(D.growCount());
  }
  State.SetItemsProcessed(State.iterations() * 512);
}
BENCHMARK(BM_ChaseLevGrowth);

/// The steal-half claim loop (FramePolicy::stealExtra): one thief claims
/// a 16-frame batch from a 64-deep victim, one steal() round per frame.
/// Items processed = frames claimed, so items_per_second is the batch
/// acquisition bandwidth — the cost steal-half pays per extra frame,
/// which the lock-free kinds answer with one uncontended CAS and
/// TheDeque with a mutex round.
template <typename DequeT>
static void batchSteal(benchmark::State &State) {
  constexpr int Depth = 64, Batch = 16;
  DequeT D(4096);
  int Dummy = 0;
  for (auto _ : State) {
    for (int I = 0; I < Depth; ++I)
      D.tryPush(&Dummy);
    for (int I = 0; I < Batch; ++I)
      benchmark::DoNotOptimize(D.steal());
    while (D.pop() == PopResult::Success) {
    }
    D.reset();
  }
  State.SetItemsProcessed(State.iterations() * Batch);
}

static void BM_BatchStealThe(benchmark::State &State) {
  batchSteal<TheDeque>(State);
}
BENCHMARK(BM_BatchStealThe);

static void BM_BatchStealAtomic(benchmark::State &State) {
  batchSteal<AtomicDeque>(State);
}
BENCHMARK(BM_BatchStealAtomic);

static void BM_BatchStealChaseLev(benchmark::State &State) {
  batchSteal<ChaseLevDeque>(State);
}
BENCHMARK(BM_BatchStealChaseLev);

BENCHMARK_MAIN();
