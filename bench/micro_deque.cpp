//===- bench/micro_deque.cpp - deque micro-benchmarks ---------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-benchmarks of the two deque implementations:
/// the fixed-array THE-protocol deque (Cilk 5.4.6 / AdaptiveTC) and the
/// growable lock-free Chase-Lev deque (the related-work overflow-free
/// alternative). These are the unit costs the simulator's CostModel is
/// calibrated against.
///
//===----------------------------------------------------------------------===//

#include "deque/ChaseLevDeque.h"
#include "deque/TheDeque.h"

#include <benchmark/benchmark.h>

using namespace atc;

static void BM_TheDequePushPop(benchmark::State &State) {
  TheDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    D.tryPush(&Dummy);
    benchmark::DoNotOptimize(D.pop());
  }
}
BENCHMARK(BM_TheDequePushPop);

static void BM_TheDequePushStealBatch(benchmark::State &State) {
  TheDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    for (int I = 0; I < 64; ++I)
      D.tryPush(&Dummy);
    for (int I = 0; I < 64; ++I)
      benchmark::DoNotOptimize(D.steal());
    D.reset();
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_TheDequePushStealBatch);

static void BM_TheDequeSpecialRoundTrip(benchmark::State &State) {
  // The AdaptiveTC check-version pattern: push special, push child, steal
  // child via H += 2, pop special (failure path with H = T reset).
  TheDeque D(1024);
  int Special = 0, Child = 0;
  for (auto _ : State) {
    D.tryPush(&Special, /*Special=*/true);
    D.tryPush(&Child);
    benchmark::DoNotOptimize(D.steal());
    benchmark::DoNotOptimize(D.pop());
    benchmark::DoNotOptimize(D.popSpecial());
    D.reset();
  }
}
BENCHMARK(BM_TheDequeSpecialRoundTrip);

static void BM_ChaseLevPushPop(benchmark::State &State) {
  ChaseLevDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    D.push(&Dummy);
    benchmark::DoNotOptimize(D.pop());
  }
}
BENCHMARK(BM_ChaseLevPushPop);

static void BM_ChaseLevPushStealBatch(benchmark::State &State) {
  ChaseLevDeque D(1024);
  int Dummy = 0;
  for (auto _ : State) {
    for (int I = 0; I < 64; ++I)
      D.push(&Dummy);
    for (int I = 0; I < 64; ++I)
      benchmark::DoNotOptimize(D.steal());
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_ChaseLevPushStealBatch);

static void BM_ChaseLevGrowth(benchmark::State &State) {
  // Overflow behaviour: the Chase-Lev deque grows instead of rejecting.
  int Dummy = 0;
  for (auto _ : State) {
    ChaseLevDeque D(4);
    for (int I = 0; I < 512; ++I)
      D.push(&Dummy);
    benchmark::DoNotOptimize(D.growCount());
  }
  State.SetItemsProcessed(State.iterations() * 512);
}
BENCHMARK(BM_ChaseLevGrowth);

BENCHMARK_MAIN();
