//===- bench/micro_spawn.cpp - per-spawn overhead micro-benchmarks --------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark measurement of the per-node scheduling overhead of
/// each system with one worker, using Fib — the paper's task-overhead
/// stress test ("in fib, there is almost no actual computation workload
/// in each function. Hence, it increases the proportion of task creations
/// and the d-e-que management cost substantially").
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "problems/FibComp.h"
#include "problems/NQueens.h"

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstring>

using namespace atc;

namespace {

constexpr int FibN = 20;

/// Workspace-heavy n-queens: NQueensArray semantics (identical counts)
/// with a large per-row annotation trail appended to the workspace, so
/// the State is ~1 KiB — the "Nqueen-array-like" spawn-path stress case.
/// Only Trail rows 0..Depth are live at a node, which is exactly the
/// bounded-copy case the liveBytes hint expresses.
class NQueensBigWorkspace {
public:
  static constexpr int MaxN = 16;
  static constexpr int RowBytes = 64;

  struct State {
    int N;
    signed char Col[MaxN];
    signed char ColUsed[MaxN];
    signed char Diag1[2 * MaxN];
    signed char Diag2[2 * MaxN];
    signed char Trail[MaxN * RowBytes]; ///< Per-row annotations (0..Depth live).
  };
  using Result = long long;

  static State makeRoot(int N) {
    State S;
    std::memset(&S, 0, sizeof(S));
    S.N = N;
    return S;
  }

  bool isLeaf(const State &S, int Depth) const { return Depth == S.N; }
  Result leafResult(const State &, int) const { return 1; }
  int numChoices(const State &S, int) const { return S.N; }

  bool applyChoice(State &S, int Depth, int K) const {
    if (S.ColUsed[K] || S.Diag1[Depth + K] || S.Diag2[Depth - K + S.N - 1])
      return false;
    S.ColUsed[K] = 1;
    S.Diag1[Depth + K] = 1;
    S.Diag2[Depth - K + S.N - 1] = 1;
    S.Col[Depth] = static_cast<signed char>(K);
    std::memset(S.Trail + Depth * RowBytes, K + 1, RowBytes);
    return true;
  }

  void undoChoice(State &S, int Depth, int K) const {
    S.ColUsed[K] = 0;
    S.Diag1[Depth + K] = 0;
    S.Diag2[Depth - K + S.N - 1] = 0;
  }

  /// Live workspace prefix at \p Depth: everything before Trail plus the
  /// rows written by the node's ancestors.
  std::size_t liveBytes(const State &, int Depth) const {
    return offsetof(State, Trail) +
           static_cast<std::size_t>(Depth) * RowBytes;
  }
};

/// Reports the run's owner-side per-spawn counters so per-spawn cost can
/// be derived from the committed JSON ((T_kind - T_seq) / spawns).
template <typename P>
void reportSpawnCounters(benchmark::State &State, P &Prob,
                         const typename P::State &Root,
                         const SchedulerConfig &Cfg) {
  auto R = runProblem(Prob, Root, Cfg);
  State.counters["spawns"] =
      benchmark::Counter(static_cast<double>(R.Stats.Spawns));
  State.counters["copied_bytes"] =
      benchmark::Counter(static_cast<double>(R.Stats.CopiedBytes));
}

template <SchedulerKind Kind, DequeKind Deque = DequeKind::The>
void BM_Fib1Thread(benchmark::State &State) {
  FibProblem Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.Deque = Deque;
  Cfg.NumWorkers = 1;
  long long Expected = FibProblem::fibValue(FibN);
  for (auto _ : State) {
    auto R = runProblem(Prob, FibProblem::makeRoot(FibN), Cfg);
    if (R.Value != Expected)
      State.SkipWithError("wrong fib value");
    benchmark::DoNotOptimize(R.Value);
  }
  reportSpawnCounters(State, Prob, FibProblem::makeRoot(FibN), Cfg);
}

template <SchedulerKind Kind, DequeKind Deque = DequeKind::The>
void BM_NQueens1Thread(benchmark::State &State) {
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.Deque = Deque;
  Cfg.NumWorkers = 1;
  for (auto _ : State) {
    auto R = runProblem(Prob, NQueensArray::makeRoot(9), Cfg);
    if (R.Value != 352)
      State.SkipWithError("wrong queens count");
    benchmark::DoNotOptimize(R.Value);
  }
  reportSpawnCounters(State, Prob, NQueensArray::makeRoot(9), Cfg);
}

template <SchedulerKind Kind, DequeKind Deque = DequeKind::The>
void BM_BigWorkspace1Thread(benchmark::State &State) {
  NQueensBigWorkspace Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.Deque = Deque;
  Cfg.NumWorkers = 1;
  for (auto _ : State) {
    auto R = runProblem(Prob, NQueensBigWorkspace::makeRoot(9), Cfg);
    if (R.Value != 352)
      State.SkipWithError("wrong queens count");
    benchmark::DoNotOptimize(R.Value);
  }
  reportSpawnCounters(State, Prob, NQueensBigWorkspace::makeRoot(9), Cfg);
}

} // namespace

BENCHMARK(BM_Fib1Thread<SchedulerKind::Sequential>)->Name("Fib20/Sequential");
BENCHMARK(BM_Fib1Thread<SchedulerKind::Cilk>)->Name("Fib20/Cilk");
BENCHMARK(BM_Fib1Thread<SchedulerKind::CilkSynched>)
    ->Name("Fib20/Cilk-SYNCHED");
BENCHMARK(BM_Fib1Thread<SchedulerKind::Tascell>)->Name("Fib20/Tascell");
BENCHMARK(BM_Fib1Thread<SchedulerKind::AdaptiveTC>)->Name("Fib20/AdaptiveTC");

// Owner-side cost of the lock-free deque relative to the THE deque (the
// steal-path benefits need thieves; see micro_deque for those).
BENCHMARK(BM_Fib1Thread<SchedulerKind::Cilk, DequeKind::Atomic>)
    ->Name("Fib20/Cilk-atomic-deque");
BENCHMARK(BM_Fib1Thread<SchedulerKind::AdaptiveTC, DequeKind::Atomic>)
    ->Name("Fib20/AdaptiveTC-atomic-deque");

BENCHMARK(BM_NQueens1Thread<SchedulerKind::Sequential>)
    ->Name("NQueens9/Sequential");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::Cilk>)->Name("NQueens9/Cilk");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::CilkSynched>)
    ->Name("NQueens9/Cilk-SYNCHED");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::Tascell>)
    ->Name("NQueens9/Tascell");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::AdaptiveTC>)
    ->Name("NQueens9/AdaptiveTC");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::CilkSynched, DequeKind::Atomic>)
    ->Name("NQueens9/Cilk-SYNCHED-atomic-deque");

// Workspace-heavy spawn path (~1 KiB Nqueen-array-like State): the
// owner-side cost here is dominated by the per-spawn workspace copy and
// the frame/workspace allocator; Cilk-SYNCHED spawns a real task per
// viable node, so its delta to Sequential is the per-spawn owner cost.
BENCHMARK(BM_BigWorkspace1Thread<SchedulerKind::Sequential>)
    ->Name("BigWorkspace9/Sequential");
BENCHMARK(BM_BigWorkspace1Thread<SchedulerKind::Cilk>)
    ->Name("BigWorkspace9/Cilk");
BENCHMARK(BM_BigWorkspace1Thread<SchedulerKind::CilkSynched>)
    ->Name("BigWorkspace9/Cilk-SYNCHED");
BENCHMARK(BM_BigWorkspace1Thread<SchedulerKind::AdaptiveTC>)
    ->Name("BigWorkspace9/AdaptiveTC");
BENCHMARK(BM_BigWorkspace1Thread<SchedulerKind::Tascell>)
    ->Name("BigWorkspace9/Tascell");
BENCHMARK(BM_BigWorkspace1Thread<SchedulerKind::CilkSynched,
                                 DequeKind::Atomic>)
    ->Name("BigWorkspace9/Cilk-SYNCHED-atomic-deque");
BENCHMARK(BM_BigWorkspace1Thread<SchedulerKind::AdaptiveTC,
                                 DequeKind::Atomic>)
    ->Name("BigWorkspace9/AdaptiveTC-atomic-deque");

BENCHMARK_MAIN();
