//===- bench/micro_spawn.cpp - per-spawn overhead micro-benchmarks --------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark measurement of the per-node scheduling overhead of
/// each system with one worker, using Fib — the paper's task-overhead
/// stress test ("in fib, there is almost no actual computation workload
/// in each function. Hence, it increases the proportion of task creations
/// and the d-e-que management cost substantially").
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "problems/FibComp.h"
#include "problems/NQueens.h"

#include <benchmark/benchmark.h>

using namespace atc;

namespace {

constexpr int FibN = 20;

template <SchedulerKind Kind, DequeKind Deque = DequeKind::The>
void BM_Fib1Thread(benchmark::State &State) {
  FibProblem Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.Deque = Deque;
  Cfg.NumWorkers = 1;
  long long Expected = FibProblem::fibValue(FibN);
  for (auto _ : State) {
    auto R = runProblem(Prob, FibProblem::makeRoot(FibN), Cfg);
    if (R.Value != Expected)
      State.SkipWithError("wrong fib value");
    benchmark::DoNotOptimize(R.Value);
  }
}

template <SchedulerKind Kind>
void BM_NQueens1Thread(benchmark::State &State) {
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.NumWorkers = 1;
  for (auto _ : State) {
    auto R = runProblem(Prob, NQueensArray::makeRoot(9), Cfg);
    if (R.Value != 352)
      State.SkipWithError("wrong queens count");
    benchmark::DoNotOptimize(R.Value);
  }
}

} // namespace

BENCHMARK(BM_Fib1Thread<SchedulerKind::Sequential>)->Name("Fib20/Sequential");
BENCHMARK(BM_Fib1Thread<SchedulerKind::Cilk>)->Name("Fib20/Cilk");
BENCHMARK(BM_Fib1Thread<SchedulerKind::CilkSynched>)
    ->Name("Fib20/Cilk-SYNCHED");
BENCHMARK(BM_Fib1Thread<SchedulerKind::Tascell>)->Name("Fib20/Tascell");
BENCHMARK(BM_Fib1Thread<SchedulerKind::AdaptiveTC>)->Name("Fib20/AdaptiveTC");

// Owner-side cost of the lock-free deque relative to the THE deque (the
// steal-path benefits need thieves; see micro_deque for those).
BENCHMARK(BM_Fib1Thread<SchedulerKind::Cilk, DequeKind::Atomic>)
    ->Name("Fib20/Cilk-atomic-deque");
BENCHMARK(BM_Fib1Thread<SchedulerKind::AdaptiveTC, DequeKind::Atomic>)
    ->Name("Fib20/AdaptiveTC-atomic-deque");

BENCHMARK(BM_NQueens1Thread<SchedulerKind::Sequential>)
    ->Name("NQueens9/Sequential");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::Cilk>)->Name("NQueens9/Cilk");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::CilkSynched>)
    ->Name("NQueens9/Cilk-SYNCHED");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::Tascell>)
    ->Name("NQueens9/Tascell");
BENCHMARK(BM_NQueens1Thread<SchedulerKind::AdaptiveTC>)
    ->Name("NQueens9/AdaptiveTC");

BENCHMARK_MAIN();
