//===- bench/table2_overhead1t.cpp - Table 2: 1-thread overheads ----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 2: execution time (and relative time to the
/// sequential C program) with one thread for Tascell, Cilk, Cilk-SYNCHED
/// and AdaptiveTC. These are *real measurements* of this repository's
/// runtime — the single-thread overhead experiments are the ones the
/// single-core host can reproduce natively.
///
/// Paper reference ratios (to sequential): Cilk 1.21-4.01x, Cilk-SYNCHED
/// 1.19-3.09x, Tascell 1.01-1.61x, AdaptiveTC 0.92-1.52x.
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>

using namespace atc;
using namespace atc::bench;

int main(int argc, char **argv) {
  bool PaperScale = false;
  long long Repeats = 3;
  std::string CsvPath;
  OptionSet Opts("Table 2: 1-thread execution time relative to sequential");
  Opts.addFlag("paper-scale", &PaperScale,
               "use the published input sizes (slow)");
  Opts.addInt("repeats", &Repeats,
              "runs per configuration; the median is reported (paper: 3)");
  Opts.addString("csv", &CsvPath, "also write results as CSV to this file");
  std::string StatsJsonPath;
  Opts.addString("stats-json", &StatsJsonPath,
                 "write a JSON array of {benchmark, system, ms, ratio, "
                 "stats} rows (final repeat's SchedulerStats) to this file");
  std::string Deque = "the";
  Opts.addString("deque", &Deque,
                 "ready-deque implementation: the (mutex, paper-fidelity), "
                 "atomic (lock-free CAS), or chaselev (lock-free, "
                 "growable ring)");
  Opts.parse(argc, argv);
  DequeKind DQ;
  if (!parseDequeKind(Deque, DQ))
    reportFatalError("unknown deque kind '" + Deque + "'");

  const SchedulerKind Systems[] = {
      SchedulerKind::Tascell, SchedulerKind::Cilk,
      SchedulerKind::CilkSynched, SchedulerKind::AdaptiveTC};

  TextTable Table;
  Table.setHeader({"benchmark", "seq(ms)", "Tascell", "Cilk", "Cilk-SYNCHED",
                   "AdaptiveTC"});
  TextTable Csv;
  Csv.setHeader({"benchmark", "system", "ms", "ratio_to_seq"});
  std::string StatsJson;
  auto AddStatsRow = [&](const std::string &Bench, const char *System,
                         double Sec, double Ratio,
                         const SchedulerStats &Stats) {
    if (StatsJsonPath.empty())
      return;
    char Head[160];
    std::snprintf(Head, sizeof(Head),
                  "  {\"benchmark\": \"%s\", \"system\": \"%s\", "
                  "\"ms\": %.3f, \"ratio_to_seq\": %.3f,\n   \"stats\": ",
                  Bench.c_str(), System, Sec * 1e3, Ratio);
    StatsJson += (StatsJson.empty() ? "[\n" : ",\n") + std::string(Head) +
                 Stats.json() + "}";
  };

  for (const Benchmark &B : benchmarkSuite(PaperScale)) {
    // Median-of-N sequential baseline (paper protocol).
    std::vector<double> SeqTimes;
    long long SeqValue = 0;
    RealRun SeqRun;
    for (int I = 0; I < Repeats; ++I) {
      SeqRun = B.RunSequential();
      SeqTimes.push_back(SeqRun.Seconds);
      SeqValue = SeqRun.Value;
    }
    double SeqSec = median(SeqTimes);
    Csv.addRow({B.Name, "Sequential", TextTable::fmt(SeqSec * 1e3, 3), "1.00"});
    AddStatsRow(B.Name, "Sequential", SeqSec, 1.0, SeqRun.Stats);

    std::vector<std::string> Row = {B.Name, TextTable::fmt(SeqSec * 1e3, 1)};
    for (SchedulerKind K : Systems) {
      if (K == SchedulerKind::CilkSynched && !B.HasTaskprivate) {
        // Fib/Comp have no taskprivate workspace; the paper leaves the
        // SYNCHED column empty ("-").
        Row.push_back("-");
        continue;
      }
      SchedulerConfig Cfg;
      Cfg.Kind = K;
      Cfg.Deque = DQ;
      Cfg.NumWorkers = 1;
      std::vector<double> Times;
      RealRun Last;
      for (int I = 0; I < Repeats; ++I) {
        Last = B.Run(Cfg);
        if (Last.Value != SeqValue)
          std::fprintf(stderr,
                       "error: %s under %s returned %lld, expected %lld\n",
                       B.Name.c_str(), schedulerKindName(K), Last.Value,
                       SeqValue);
        Times.push_back(Last.Seconds);
      }
      double Sec = median(Times);
      char Cell[64];
      std::snprintf(Cell, sizeof(Cell), "%.1f (%.2f)", Sec * 1e3,
                    Sec / SeqSec);
      Row.push_back(Cell);
      Csv.addRow({B.Name, schedulerKindName(K), TextTable::fmt(Sec * 1e3, 3),
                  TextTable::fmt(Sec / SeqSec, 3)});
      AddStatsRow(B.Name, schedulerKindName(K), Sec, Sec / SeqSec,
                  Last.Stats);
    }
    Table.addRow(Row);
  }

  std::printf("=== Table 2: execution time in ms (and relative time to the "
              "sequential program) with one thread ===\n");
  Table.print();
  maybeWriteCsv(CsvPath, Csv.renderCsv());
  if (!StatsJsonPath.empty())
    maybeWriteCsv(StatsJsonPath, StatsJson + "\n]\n");
  return 0;
}
