
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common/BenchCommon.cpp" "bench/CMakeFiles/atc_bench_common.dir/common/BenchCommon.cpp.o" "gcc" "bench/CMakeFiles/atc_bench_common.dir/common/BenchCommon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/problems/CMakeFiles/atc_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deque/CMakeFiles/atc_deque.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
