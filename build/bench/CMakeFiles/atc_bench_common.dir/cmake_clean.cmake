file(REMOVE_RECURSE
  "CMakeFiles/atc_bench_common.dir/common/BenchCommon.cpp.o"
  "CMakeFiles/atc_bench_common.dir/common/BenchCommon.cpp.o.d"
  "libatc_bench_common.a"
  "libatc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
