file(REMOVE_RECURSE
  "libatc_bench_common.a"
)
