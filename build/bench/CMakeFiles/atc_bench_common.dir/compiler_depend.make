# Empty compiler generated dependencies file for atc_bench_common.
# This may be replaced when dependencies are built.
