file(REMOVE_RECURSE
  "CMakeFiles/fig10_unbalanced.dir/fig10_unbalanced.cpp.o"
  "CMakeFiles/fig10_unbalanced.dir/fig10_unbalanced.cpp.o.d"
  "fig10_unbalanced"
  "fig10_unbalanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_unbalanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
