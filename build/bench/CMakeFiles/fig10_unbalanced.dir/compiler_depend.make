# Empty compiler generated dependencies file for fig10_unbalanced.
# This may be replaced when dependencies are built.
