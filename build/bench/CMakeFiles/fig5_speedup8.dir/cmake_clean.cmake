file(REMOVE_RECURSE
  "CMakeFiles/fig5_speedup8.dir/fig5_speedup8.cpp.o"
  "CMakeFiles/fig5_speedup8.dir/fig5_speedup8.cpp.o.d"
  "fig5_speedup8"
  "fig5_speedup8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speedup8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
