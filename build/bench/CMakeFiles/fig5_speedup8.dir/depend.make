# Empty dependencies file for fig5_speedup8.
# This may be replaced when dependencies are built.
