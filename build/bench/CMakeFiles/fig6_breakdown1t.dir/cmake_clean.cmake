file(REMOVE_RECURSE
  "CMakeFiles/fig6_breakdown1t.dir/fig6_breakdown1t.cpp.o"
  "CMakeFiles/fig6_breakdown1t.dir/fig6_breakdown1t.cpp.o.d"
  "fig6_breakdown1t"
  "fig6_breakdown1t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_breakdown1t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
