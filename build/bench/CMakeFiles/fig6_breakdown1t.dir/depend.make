# Empty dependencies file for fig6_breakdown1t.
# This may be replaced when dependencies are built.
