# Empty dependencies file for fig7_tascell_breakdown.
# This may be replaced when dependencies are built.
