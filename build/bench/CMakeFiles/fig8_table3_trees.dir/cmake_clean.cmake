file(REMOVE_RECURSE
  "CMakeFiles/fig8_table3_trees.dir/fig8_table3_trees.cpp.o"
  "CMakeFiles/fig8_table3_trees.dir/fig8_table3_trees.cpp.o.d"
  "fig8_table3_trees"
  "fig8_table3_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_table3_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
