# Empty compiler generated dependencies file for fig8_table3_trees.
# This may be replaced when dependencies are built.
