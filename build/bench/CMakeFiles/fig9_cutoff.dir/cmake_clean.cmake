file(REMOVE_RECURSE
  "CMakeFiles/fig9_cutoff.dir/fig9_cutoff.cpp.o"
  "CMakeFiles/fig9_cutoff.dir/fig9_cutoff.cpp.o.d"
  "fig9_cutoff"
  "fig9_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
