# Empty dependencies file for fig9_cutoff.
# This may be replaced when dependencies are built.
