file(REMOVE_RECURSE
  "CMakeFiles/micro_deque.dir/micro_deque.cpp.o"
  "CMakeFiles/micro_deque.dir/micro_deque.cpp.o.d"
  "micro_deque"
  "micro_deque.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_deque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
