# Empty dependencies file for micro_deque.
# This may be replaced when dependencies are built.
