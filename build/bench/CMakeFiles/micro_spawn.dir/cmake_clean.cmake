file(REMOVE_RECURSE
  "CMakeFiles/micro_spawn.dir/micro_spawn.cpp.o"
  "CMakeFiles/micro_spawn.dir/micro_spawn.cpp.o.d"
  "micro_spawn"
  "micro_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
