# Empty compiler generated dependencies file for micro_spawn.
# This may be replaced when dependencies are built.
