file(REMOVE_RECURSE
  "CMakeFiles/table2_overhead1t.dir/table2_overhead1t.cpp.o"
  "CMakeFiles/table2_overhead1t.dir/table2_overhead1t.cpp.o.d"
  "table2_overhead1t"
  "table2_overhead1t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overhead1t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
