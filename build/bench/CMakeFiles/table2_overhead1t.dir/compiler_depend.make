# Empty compiler generated dependencies file for table2_overhead1t.
# This may be replaced when dependencies are built.
