file(REMOVE_RECURSE
  "CMakeFiles/atcc_pipeline.dir/atcc_pipeline.cpp.o"
  "CMakeFiles/atcc_pipeline.dir/atcc_pipeline.cpp.o.d"
  "atcc_pipeline"
  "atcc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
