# Empty compiler generated dependencies file for atcc_pipeline.
# This may be replaced when dependencies are built.
