file(REMOVE_RECURSE
  "CMakeFiles/sudoku_solver.dir/sudoku_solver.cpp.o"
  "CMakeFiles/sudoku_solver.dir/sudoku_solver.cpp.o.d"
  "sudoku_solver"
  "sudoku_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
