# Empty dependencies file for sudoku_solver.
# This may be replaced when dependencies are built.
