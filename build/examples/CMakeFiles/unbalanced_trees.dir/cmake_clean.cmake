file(REMOVE_RECURSE
  "CMakeFiles/unbalanced_trees.dir/unbalanced_trees.cpp.o"
  "CMakeFiles/unbalanced_trees.dir/unbalanced_trees.cpp.o.d"
  "unbalanced_trees"
  "unbalanced_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unbalanced_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
