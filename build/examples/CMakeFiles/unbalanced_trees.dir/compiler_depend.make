# Empty compiler generated dependencies file for unbalanced_trees.
# This may be replaced when dependencies are built.
