file(REMOVE_RECURSE
  "CMakeFiles/atc_core.dir/Scheduler.cpp.o"
  "CMakeFiles/atc_core.dir/Scheduler.cpp.o.d"
  "CMakeFiles/atc_core.dir/SchedulerStats.cpp.o"
  "CMakeFiles/atc_core.dir/SchedulerStats.cpp.o.d"
  "libatc_core.a"
  "libatc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
