file(REMOVE_RECURSE
  "libatc_core.a"
)
