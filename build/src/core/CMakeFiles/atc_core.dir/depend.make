# Empty dependencies file for atc_core.
# This may be replaced when dependencies are built.
