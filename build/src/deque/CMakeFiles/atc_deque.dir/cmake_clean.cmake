file(REMOVE_RECURSE
  "CMakeFiles/atc_deque.dir/ChaseLevDeque.cpp.o"
  "CMakeFiles/atc_deque.dir/ChaseLevDeque.cpp.o.d"
  "CMakeFiles/atc_deque.dir/TheDeque.cpp.o"
  "CMakeFiles/atc_deque.dir/TheDeque.cpp.o.d"
  "libatc_deque.a"
  "libatc_deque.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_deque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
