file(REMOVE_RECURSE
  "libatc_deque.a"
)
