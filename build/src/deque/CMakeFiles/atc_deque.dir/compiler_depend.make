# Empty compiler generated dependencies file for atc_deque.
# This may be replaced when dependencies are built.
