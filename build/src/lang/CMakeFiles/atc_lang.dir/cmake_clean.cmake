file(REMOVE_RECURSE
  "CMakeFiles/atc_lang.dir/AstDump.cpp.o"
  "CMakeFiles/atc_lang.dir/AstDump.cpp.o.d"
  "CMakeFiles/atc_lang.dir/CodeGen.cpp.o"
  "CMakeFiles/atc_lang.dir/CodeGen.cpp.o.d"
  "CMakeFiles/atc_lang.dir/Compile.cpp.o"
  "CMakeFiles/atc_lang.dir/Compile.cpp.o.d"
  "CMakeFiles/atc_lang.dir/Lexer.cpp.o"
  "CMakeFiles/atc_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/atc_lang.dir/Parser.cpp.o"
  "CMakeFiles/atc_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/atc_lang.dir/Sema.cpp.o"
  "CMakeFiles/atc_lang.dir/Sema.cpp.o.d"
  "libatc_lang.a"
  "libatc_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
