file(REMOVE_RECURSE
  "libatc_lang.a"
)
