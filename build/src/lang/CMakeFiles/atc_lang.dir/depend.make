# Empty dependencies file for atc_lang.
# This may be replaced when dependencies are built.
