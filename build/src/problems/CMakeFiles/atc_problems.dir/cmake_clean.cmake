file(REMOVE_RECURSE
  "CMakeFiles/atc_problems.dir/Pentomino.cpp.o"
  "CMakeFiles/atc_problems.dir/Pentomino.cpp.o.d"
  "CMakeFiles/atc_problems.dir/Sudoku.cpp.o"
  "CMakeFiles/atc_problems.dir/Sudoku.cpp.o.d"
  "libatc_problems.a"
  "libatc_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
