file(REMOVE_RECURSE
  "libatc_problems.a"
)
