# Empty dependencies file for atc_problems.
# This may be replaced when dependencies are built.
