file(REMOVE_RECURSE
  "CMakeFiles/atc_sim.dir/CostModel.cpp.o"
  "CMakeFiles/atc_sim.dir/CostModel.cpp.o.d"
  "CMakeFiles/atc_sim.dir/SimEngine.cpp.o"
  "CMakeFiles/atc_sim.dir/SimEngine.cpp.o.d"
  "CMakeFiles/atc_sim.dir/TreeGen.cpp.o"
  "CMakeFiles/atc_sim.dir/TreeGen.cpp.o.d"
  "libatc_sim.a"
  "libatc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
