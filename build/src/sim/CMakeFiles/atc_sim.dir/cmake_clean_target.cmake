file(REMOVE_RECURSE
  "libatc_sim.a"
)
