# Empty compiler generated dependencies file for atc_sim.
# This may be replaced when dependencies are built.
