file(REMOVE_RECURSE
  "CMakeFiles/atc_support.dir/Error.cpp.o"
  "CMakeFiles/atc_support.dir/Error.cpp.o.d"
  "CMakeFiles/atc_support.dir/Options.cpp.o"
  "CMakeFiles/atc_support.dir/Options.cpp.o.d"
  "CMakeFiles/atc_support.dir/Stats.cpp.o"
  "CMakeFiles/atc_support.dir/Stats.cpp.o.d"
  "CMakeFiles/atc_support.dir/Table.cpp.o"
  "CMakeFiles/atc_support.dir/Table.cpp.o.d"
  "libatc_support.a"
  "libatc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
