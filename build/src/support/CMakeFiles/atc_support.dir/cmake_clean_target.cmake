file(REMOVE_RECURSE
  "libatc_support.a"
)
