# Empty dependencies file for atc_support.
# This may be replaced when dependencies are built.
