file(REMOVE_RECURSE
  "CMakeFiles/lang_e2e_test.dir/LangEndToEndTest.cpp.o"
  "CMakeFiles/lang_e2e_test.dir/LangEndToEndTest.cpp.o.d"
  "lang_e2e_test"
  "lang_e2e_test.pdb"
  "lang_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
