# Empty dependencies file for lang_e2e_test.
# This may be replaced when dependencies are built.
