# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/deque_test[1]_include.cmake")
include("/root/repo/build/tests/problems_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/lang_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
