file(REMOVE_RECURSE
  "CMakeFiles/atcc.dir/atcc.cpp.o"
  "CMakeFiles/atcc.dir/atcc.cpp.o.d"
  "atcc"
  "atcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
