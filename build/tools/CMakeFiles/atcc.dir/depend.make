# Empty dependencies file for atcc.
# This may be replaced when dependencies are built.
