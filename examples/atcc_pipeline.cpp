//===- examples/atcc_pipeline.cpp - compiler pipeline walkthrough ---------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks the atcc compiler pipeline over an embedded ATC program (the
/// paper's n-queens example): prints the AST, then the generated C++
/// with the five code versions. Pipe the output of --emit to a file and
/// build it with g++ -I <repo>/src to run the program.
///
///   ./build/examples/atcc_pipeline            # annotated walkthrough
///   ./build/examples/atcc_pipeline --emit     # raw generated C++ only
///
//===----------------------------------------------------------------------===//

#include "lang/Compile.h"
#include "support/Options.h"

#include <cstdio>

using namespace atc;
using namespace atc::lang;

static const char *NQueensAtc = R"(// n-queens in ATC (extended Cilk).
int ok(int depth, char *x, int j) {
  for (int i = 0; i < depth; i = i + 1) {
    int d = x[i] - j;
    if (d == 0 || d == depth - i || d == i - depth)
      return 0;
  }
  return 1;
}

cilk int nqueens(int depth, int n, char *x)
taskprivate: (*x) (n * sizeof(char));
{
  long sn = 0;
  if (depth == n)
    return 1;
  for (int j = 0; j < n; j = j + 1) {
    if (ok(depth, x, j)) {
      x[depth] = j;
      sn += spawn nqueens(depth + 1, n, x);
    }
  }
  sync;
  return sn;
}

int main() {
  char board[16];
  print_long(nqueens(0, 10, board));
  return 0;
}
)";

int main(int argc, char **argv) {
  bool EmitOnly = false;
  OptionSet Opts("atcc pipeline walkthrough on the n-queens example");
  Opts.addFlag("emit", &EmitOnly, "print only the generated C++");
  Opts.parse(argc, argv);

  CompileResult R = compileAtc(NQueensAtc);
  if (!R.Success) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  if (EmitOnly) {
    std::fputs(R.Cpp.c_str(), stdout);
    return 0;
  }

  std::printf("=== 1. ATC source (extended Cilk + taskprivate) ===\n%s\n",
              NQueensAtc);
  std::printf("=== 2. AST after sema (spawn ids assigned) ===\n%s\n",
              dumpProgram(R.Ast).c_str());
  std::printf("=== 3. Generated C++ (five versions per cilk function) "
              "===\n%s",
              R.Cpp.c_str());
  std::printf("\nBuild it:  ./build/examples/atcc_pipeline --emit > nq.cpp "
              "&& g++ -std=c++20 -I src nq.cpp -o nq && ./nq\n");
  return 0;
}
