//===- examples/nqueens.cpp - n-queens with event tracing -----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical tracing demo: count n-queens solutions (or run any
/// other ProblemRegistry workload via --problem) under a chosen
/// scheduler and optionally record a scheduler event trace (see
/// docs/TRACING.md). The trace loads directly in Perfetto / Chrome
/// about:tracing — one track per worker, colored by FSM mode, with
/// steal arrows from victim to thief.
///
///   ./build/examples/nqueens --workers 4 --trace out.json
///   ./build/tools/trace_timeline out.json
///
/// It is also the canonical live-metrics demo (see docs/METRICS.md):
///
///   ./build/examples/nqueens --workers 4 --metrics-file metrics.prom &
///   ./build/tools/atc_top metrics.prom
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "metrics/MetricsCli.h"
#include "problems/ProblemRegistry.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/Timer.h"
#include "trace/TraceJson.h"

#include <cstdio>
#include <string>

using namespace atc;

int main(int argc, char **argv) {
  long long Workers = 4;
  long long BoardSize = 13;
  std::string Problem = "nqueens-array";
  std::string Scheduler = "adaptivetc";
  std::string Deque = "the";
  std::string StealPol = "one";
  std::string Victim = "affinity";
  std::string TracePath;
  long long TraceCap = 1 << 20;
  OptionSet Opts("Count n-queens solutions, optionally recording a "
                 "scheduler event trace for Perfetto");
  Opts.addInt("workers", &Workers, "worker threads (default 4)");
  Opts.addInt("n", &BoardSize, "problem size (default 13 for n-queens; "
                               "0 = the kind's registry default)");
  Opts.addString("problem", &Problem,
                 "workload from the problem registry (default "
                 "nqueens-array; see docs/SERVING.md for the kind list)");
  Opts.addString("sched", &Scheduler,
                 "sequential, cilk, cilk-synched, tascell, cutoff, or "
                 "adaptivetc");
  Opts.addString("deque", &Deque,
                 "ready-deque implementation: the (mutex, paper-fidelity), "
                 "atomic (lock-free CAS), or chaselev (lock-free, growable "
                 "ring)");
  Opts.addString("steal-policy", &StealPol,
                 "one frame per raid (one) or batch up to half the "
                 "victim's deque (half)");
  Opts.addString("victim", &Victim,
                 "victim ordering: affinity (retry last success), random, "
                 "or partitioned (group-first)");
  bool Tuning = false;
  Opts.addFlag("tuning", &Tuning,
               "arm the online tuning layer (docs/TUNING.md): per-worker "
               "controllers adapt the cut-off, max_stolen_num and steal "
               "backoff from live metrics");
  Opts.addString("trace", &TracePath,
                 "record a scheduler event trace to this file "
                 "(Chrome/Perfetto trace.json)");
  Opts.addInt("trace-cap", &TraceCap,
              "per-worker trace ring capacity in events (default 2^20; "
              "oldest events are dropped on overflow)");
  MetricsCliOptions MOpt;
  addMetricsOptions(Opts, MOpt);
  Opts.parse(argc, argv);

  SchedulerConfig Cfg;
  if (!parseSchedulerKind(Scheduler, Cfg.Kind))
    reportFatalError("unknown scheduler '" + Scheduler + "'");
  if (!parseDequeKind(Deque, Cfg.Deque))
    reportFatalError("unknown deque kind '" + Deque + "'");
  if (!parseStealPolicy(StealPol, Cfg.Steal))
    reportFatalError("unknown steal policy '" + StealPol + "'");
  if (!parseVictimPolicy(Victim, Cfg.Victim))
    reportFatalError("unknown victim policy '" + Victim + "'");
  Cfg.NumWorkers = static_cast<int>(Workers);
  Cfg.Trace = !TracePath.empty();
  Cfg.TraceCap = static_cast<int>(TraceCap);
  Cfg.Tuning = Tuning;
#if !ATC_TRACE_ENABLED
  if (Cfg.Trace)
    std::fprintf(stderr, "nqueens: warning: built with ATC_TRACE=OFF; "
                         "--trace will produce no events\n");
#endif
#if !defined(ATC_TUNING_ENABLED) || !ATC_TUNING_ENABLED
  if (Tuning)
    std::fprintf(stderr, "nqueens: warning: built with ATC_TUNING=OFF; "
                         "--tuning has no effect\n");
#endif

  ProblemRunner Prob;
  std::string Err;
  if (!makeProblemRunner(Problem, static_cast<int>(BoardSize), Prob, Err))
    reportFatalError(Err);

  MetricsCliSession Metrics;
  Metrics.arm(Cfg, MOpt, Prob.Workload);

  RunResult<long long> R;
  double Sec = timeSeconds([&] { R = Prob.Run(Cfg); });
  std::printf("%s: %lld in %.1f ms (%s, %lld workers)\n",
              Prob.Workload.c_str(), R.Value, Sec * 1e3,
              schedulerKindName(Cfg.Kind), Workers);
  std::printf("scheduler: %s\n", R.Stats.summary().c_str());

  if (!TracePath.empty()) {
    if (!R.Trace) {
      std::fprintf(stderr, "nqueens: no trace was recorded (sequential "
                           "scheduler or tracing compiled out)\n");
      return 1;
    }
    R.Trace->Meta.Workload = Prob.Workload;
    if (!writeChromeTraceFile(*R.Trace, TracePath)) {
      std::fprintf(stderr, "nqueens: cannot write trace to '%s'\n",
                   TracePath.c_str());
      return 1;
    }
    std::printf("trace: %s (%llu events kept, %llu dropped) — open in "
                "https://ui.perfetto.dev\n",
                TracePath.c_str(),
                static_cast<unsigned long long>(R.Trace->totalRetained()),
                static_cast<unsigned long long>(R.Trace->totalDropped()));
  }
  if (!Metrics.finish(R.Stats, MOpt))
    return 1;
  return 0;
}
