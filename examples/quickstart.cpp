//===- examples/quickstart.cpp - AdaptiveTC in one page -------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: define a search problem (the choice-loop task model),
/// run it under every scheduler the paper evaluates, and read the
/// instrumentation that explains why AdaptiveTC wins — fewer tasks,
/// fewer workspace copies.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart [--threads=N]
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "problems/NQueens.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "trace/TraceJson.h"

#include <cstdio>
#include <string>

using namespace atc;

int main(int argc, char **argv) {
  long long Threads = 4;
  long long BoardSize = 11;
  std::string Deque = "the";
  std::string TracePath;
  OptionSet Opts("Quickstart: n-queens under every scheduler");
  Opts.addInt("threads", &Threads, "worker threads (default 4)");
  Opts.addInt("n", &BoardSize, "board size (default 11)");
  std::string StealPol = "one";
  std::string Victim = "affinity";
  Opts.addString("deque", &Deque,
                 "ready-deque implementation: the (mutex, paper-fidelity), "
                 "atomic (lock-free CAS), or chaselev (lock-free, growable "
                 "ring)");
  Opts.addString("steal-policy", &StealPol,
                 "one frame per raid (one) or batch up to half the "
                 "victim's deque (half)");
  Opts.addString("victim", &Victim,
                 "victim ordering: affinity, random, or partitioned");
  Opts.addString("trace", &TracePath,
                 "record the AdaptiveTC run's event trace to this file "
                 "(Chrome/Perfetto trace.json)");
  Opts.parse(argc, argv);
  DequeKind DQ;
  StealPolicy SP;
  VictimPolicy VP;
  if (!parseDequeKind(Deque, DQ))
    reportFatalError("unknown deque kind '" + Deque + "'");
  if (!parseStealPolicy(StealPol, SP))
    reportFatalError("unknown steal policy '" + StealPol + "'");
  if (!parseVictimPolicy(Victim, VP))
    reportFatalError("unknown victim policy '" + Victim + "'");

  // 1. A problem is a type with the choice-loop shape: isLeaf /
  //    leafResult / numChoices / applyChoice / undoChoice over a
  //    trivially-copyable State (the "taskprivate" workspace).
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(static_cast<int>(BoardSize));

  // 2. The sequential baseline every speedup is measured against.
  long long Expected;
  double SeqSec = timeSeconds([&] {
    auto S = Root;
    Expected = runSequential(Prob, S);
  });
  std::printf("%lld-queens: %lld solutions, sequential %.1f ms\n\n",
              BoardSize, Expected, SeqSec * 1e3);

  // 3. Run under each of the paper's systems and compare what the
  //    runtimes actually did.
  TextTable Table;
  Table.setHeader({"scheduler", "ms", "ok", "tasks", "fake-tasks",
                   "specials", "steals", "copied-KiB"});
  for (SchedulerKind Kind :
       {SchedulerKind::Cilk, SchedulerKind::CilkSynched,
        SchedulerKind::Tascell, SchedulerKind::AdaptiveTC}) {
    SchedulerConfig Cfg;
    Cfg.Kind = Kind;
    Cfg.Deque = DQ;
    Cfg.Steal = SP;
    Cfg.Victim = VP;
    Cfg.NumWorkers = static_cast<int>(Threads);
    Cfg.Trace = !TracePath.empty() && Kind == SchedulerKind::AdaptiveTC;
    RunResult<long long> R;
    double Sec = timeSeconds([&] { R = runProblem(Prob, Root, Cfg); });
    if (Cfg.Trace && R.Trace) {
      R.Trace->Meta.Workload = std::to_string(BoardSize) + "-queens";
      if (writeChromeTraceFile(*R.Trace, TracePath))
        std::printf("trace: wrote %s — open in https://ui.perfetto.dev\n",
                    TracePath.c_str());
      else
        std::fprintf(stderr, "quickstart: cannot write trace to '%s'\n",
                     TracePath.c_str());
    }
    Table.addRow({schedulerKindName(Kind), TextTable::fmt(Sec * 1e3, 1),
                  R.Value == Expected ? "yes" : "NO",
                  TextTable::fmt(static_cast<long long>(R.Stats.TasksCreated)),
                  TextTable::fmt(static_cast<long long>(R.Stats.FakeTasks)),
                  TextTable::fmt(static_cast<long long>(R.Stats.SpecialTasks)),
                  TextTable::fmt(static_cast<long long>(R.Stats.Steals)),
                  TextTable::fmt(static_cast<double>(R.Stats.CopiedBytes) /
                                     1024.0,
                                 1)});
  }
  Table.print();
  std::printf(
      "\nAdaptiveTC runs the bulk of the tree as fake tasks (plain calls),\n"
      "creating tasks only near the root plus special-task transitions\n"
      "when a thread actually starves — that is the paper's whole idea.\n");
  return 0;
}
