//===- examples/sudoku_solver.cpp - parallel Sudoku counting --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Appendix A): count all solutions of a
/// Sudoku grid with the board as the taskprivate workspace. Accepts an
/// 81-character grid ('0' or '.' = empty) or a named instance, and runs
/// it under a chosen scheduler.
///
///   ./build/examples/sudoku_solver --instance=balance --threads=4
///   ./build/examples/sudoku_solver --grid=53007...  --scheduler=cilk
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "metrics/MetricsCli.h"
#include "problems/Sudoku.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/Timer.h"
#include "trace/TraceJson.h"

#include <cstdio>
#include <string>

using namespace atc;

int main(int argc, char **argv) {
  std::string Instance = "balance";
  std::string Grid;
  std::string Scheduler = "adaptivetc";
  long long Threads = 4;
  OptionSet Opts("Count all solutions of a Sudoku grid in parallel");
  Opts.addString("instance", &Instance,
                 "named instance: balance, balance-large, input1, input2, "
                 "solved");
  Opts.addString("grid", &Grid,
                 "explicit 81-character grid (overrides --instance)");
  Opts.addString("scheduler", &Scheduler,
                 "sequential, cilk, cilk-synched, tascell, cutoff, or "
                 "adaptivetc");
  std::string Deque = "the";
  Opts.addString("deque", &Deque,
                 "ready-deque implementation: the (mutex, paper-fidelity), "
                 "atomic (lock-free CAS), or chaselev (lock-free, growable "
                 "ring)");
  std::string StealPol = "one";
  Opts.addString("steal-policy", &StealPol,
                 "one frame per raid (one) or batch up to half the "
                 "victim's deque (half)");
  std::string Victim = "affinity";
  Opts.addString("victim", &Victim,
                 "victim ordering: affinity, random, or partitioned");
  Opts.addInt("threads", &Threads, "worker threads");
  std::string TracePath;
  Opts.addString("trace", &TracePath,
                 "record a scheduler event trace to this file "
                 "(Chrome/Perfetto trace.json)");
  MetricsCliOptions MOpt;
  addMetricsOptions(Opts, MOpt);
  Opts.parse(argc, argv);

  SchedulerConfig Cfg;
  if (!parseSchedulerKind(Scheduler, Cfg.Kind))
    reportFatalError("unknown scheduler '" + Scheduler + "'");
  if (!parseDequeKind(Deque, Cfg.Deque))
    reportFatalError("unknown deque kind '" + Deque + "'");
  if (!parseStealPolicy(StealPol, Cfg.Steal))
    reportFatalError("unknown steal policy '" + StealPol + "'");
  if (!parseVictimPolicy(Victim, Cfg.Victim))
    reportFatalError("unknown victim policy '" + Victim + "'");
  Cfg.NumWorkers = static_cast<int>(Threads);
  Cfg.Trace = !TracePath.empty();

  Sudoku Prob;
  Sudoku::State Root = Grid.empty() ? Sudoku::makeInstance(Instance)
                                    : Sudoku::makeRoot(Grid);
  std::printf("grid: %s (%d free cells), scheduler %s, deque %s, "
              "%lld threads\n",
              Grid.empty() ? Instance.c_str() : "(custom)", Root.NumFree,
              schedulerKindName(Cfg.Kind), dequeKindName(Cfg.Deque), Threads);

  MetricsCliSession Metrics;
  Metrics.arm(Cfg, MOpt,
              "sudoku-" + (Grid.empty() ? Instance : std::string("custom")));

  RunResult<long long> R;
  double Sec = timeSeconds([&] { R = runProblem(Prob, Root, Cfg); });
  std::printf("solutions: %lld in %.1f ms\n", R.Value, Sec * 1e3);
  std::printf("scheduler: %s\n", R.Stats.summary().c_str());
  if (!TracePath.empty()) {
    if (!R.Trace) {
      std::fprintf(stderr, "sudoku_solver: no trace was recorded "
                           "(sequential scheduler or tracing compiled "
                           "out)\n");
      return 1;
    }
    R.Trace->Meta.Workload =
        "sudoku-" + (Grid.empty() ? Instance : std::string("custom"));
    if (!writeChromeTraceFile(*R.Trace, TracePath)) {
      std::fprintf(stderr, "sudoku_solver: cannot write trace to '%s'\n",
                   TracePath.c_str());
      return 1;
    }
    std::printf("trace: wrote %s — open in https://ui.perfetto.dev\n",
                TracePath.c_str());
  }
  if (!Metrics.finish(R.Stats, MOpt))
    return 1;
  return 0;
}
