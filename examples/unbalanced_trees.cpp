//===- examples/unbalanced_trees.cpp - load-balancing explorer ------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interactive version of the paper's Section 5.3 study: generate an
/// unbalanced computation tree (a Table-3 preset or custom skew), run
/// the virtual-time simulator for each scheduling system across thread
/// counts, and print speedups with the waiting/idle diagnostics that
/// explain them.
///
///   ./build/examples/unbalanced_trees --tree=tree3r
///   ./build/examples/unbalanced_trees --tree=fig8 --scale=500000
///
//===----------------------------------------------------------------------===//

#include "metrics/Exposition.h"
#include "metrics/MetricsCli.h"
#include "metrics/MetricsRegistry.h"
#include "sim/SimEngine.h"
#include "sim/TreeGen.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/Table.h"
#include "trace/TraceJson.h"

#include <cstdio>

using namespace atc;

int main(int argc, char **argv) {
  std::string TreeName = "tree3l";
  long long Scale = 1'000'000;
  long long MaxThreads = 8;
  std::string TracePath;
  std::string TraceSystem = "adaptivetc";
  OptionSet Opts("Explore scheduler behaviour on unbalanced trees "
                 "(virtual-time simulation)");
  std::string Presets;
  for (const std::string &Name : SimTree::presetNames())
    Presets += (Presets.empty() ? "" : ", ") + Name;
  Opts.addString("tree", &TreeName, "tree preset: " + Presets);
  Opts.addInt("scale", &Scale, "tree size in nodes");
  Opts.addInt("max-threads", &MaxThreads, "largest worker count");
  Opts.addString("trace", &TracePath,
                 "record a virtual-time event trace of the max-threads "
                 "run to this file (Chrome/Perfetto trace.json)");
  Opts.addString("trace-system", &TraceSystem,
                 "which system the trace records: cilk-synched, tascell, "
                 "or adaptivetc");
  std::string Deque = "the";
  std::string StealPol = "one";
  std::string Victim = "random";
  Opts.addString("deque", &Deque,
                 "modelled ready-deque: the (lock round trip per steal), "
                 "atomic or chaselev (lock-free CAS claim)");
  Opts.addString("steal-policy", &StealPol,
                 "one continuation per raid (one) or batch up to half the "
                 "victim's stealable frames (half)");
  Opts.addString("victim", &Victim,
                 "victim ordering: random, affinity, or partitioned");
  MetricsCliOptions MOpt;
  addMetricsOptions(Opts, MOpt);
  Opts.parse(argc, argv);

  DequeKind DQ;
  StealPolicy SP;
  VictimPolicy VP;
  if (!parseDequeKind(Deque, DQ))
    reportFatalError("unknown deque kind '" + Deque + "'");
  if (!parseStealPolicy(StealPol, SP))
    reportFatalError("unknown steal policy '" + StealPol + "'");
  if (!parseVictimPolicy(Victim, VP))
    reportFatalError("unknown victim policy '" + Victim + "'");
  auto applyPolicies = [&](SimOptions &O) {
    O.Deque = DQ;
    O.Steal = SP;
    O.Victim = VP;
  };

  SimTree Tree(SimTree::preset(TreeName, Scale));
  auto Shares = Tree.depth1SharePercent();
  std::printf("tree %s: %lld nodes; depth-1 shares:", TreeName.c_str(),
              Scale);
  for (double S : Shares)
    std::printf(" %.1f%%", S);
  std::printf("\n\n");

  CostModel Costs;
  TextTable Table;
  Table.setHeader({"threads", "Cilk-SYNCHED", "Tascell", "AdaptiveTC",
                   "Tascell wait%", "ATC wait%", "ATC idle%"});
  for (int T = 1; T <= MaxThreads; ++T) {
    SimOptions SimOpts;
    SimOpts.NumWorkers = T;
    applyPolicies(SimOpts);

    SimOpts.Kind = SchedulerKind::CilkSynched;
    SimReport Syn = simulate(Tree, SimOpts, Costs);
    SimOpts.Kind = SchedulerKind::Tascell;
    SimReport Tas = simulate(Tree, SimOpts, Costs);
    SimOpts.Kind = SchedulerKind::AdaptiveTC;
    SimReport Atc = simulate(Tree, SimOpts, Costs);

    auto Pct = [](double Part, const SimReport &R) {
      return TextTable::fmt(100.0 * Part / R.Total.totalNs(), 1) + "%";
    };
    Table.addRow({std::to_string(T), TextTable::fmt(Syn.speedup(), 2),
                  TextTable::fmt(Tas.speedup(), 2),
                  TextTable::fmt(Atc.speedup(), 2),
                  Pct(Tas.Total.WaitChildrenNs, Tas),
                  Pct(Atc.Total.WaitChildrenNs, Atc),
                  Pct(Atc.Total.IdleNs, Atc)});
  }
  Table.print();

  if (!TracePath.empty()) {
    // The simulator is deterministic, so re-running the chosen system at
    // max-threads with a trace log attached replays exactly the run the
    // table reported.
    SimOptions SimOpts;
    if (!parseSchedulerKind(TraceSystem, SimOpts.Kind))
      reportFatalError("unknown scheduler '" + TraceSystem + "'");
    SimOpts.NumWorkers = static_cast<int>(MaxThreads);
    applyPolicies(SimOpts);
    TraceLog Log(SimOpts.NumWorkers, 1u << 20);
    simulate(Tree, SimOpts, Costs, &Log);
    Log.Meta.Workload = TreeName;
    if (writeChromeTraceFile(Log, TracePath))
      std::printf("\ntrace: wrote %s (%s, %lld virtual workers) — open in "
                  "https://ui.perfetto.dev\n",
                  TracePath.c_str(), schedulerKindName(SimOpts.Kind),
                  MaxThreads);
    else
      std::fprintf(stderr, "unbalanced_trees: cannot write trace to "
                           "'%s'\n",
                   TracePath.c_str());
  }
  if (MOpt.wantsMetrics() || !MOpt.StatsJson.empty()) {
    // Same determinism trick as --trace: replay the --trace-system run at
    // max-threads with a metrics registry attached, so the exported
    // snapshot describes a paper-scale multi-worker run even on a
    // one-core host (metrics are stamped with virtual clocks; there is no
    // live run to sample, so the periodic sampler flags are moot here).
    SimOptions SimOpts;
    if (!parseSchedulerKind(TraceSystem, SimOpts.Kind))
      reportFatalError("unknown scheduler '" + TraceSystem + "'");
    SimOpts.NumWorkers = static_cast<int>(MaxThreads);
    applyPolicies(SimOpts);
    MetricsRegistry Reg;
    SimReport Rep = simulate(Tree, SimOpts, Costs, nullptr, &Reg);
    Reg.Meta.Scheduler = schedulerKindName(SimOpts.Kind);
    Reg.Meta.Source = "sim";
    Reg.Meta.Workload = TreeName;
    MetricsSnapshot Final =
        Reg.sample(static_cast<std::uint64_t>(Rep.MakespanNs));
    std::string Prom = renderPrometheus(Final, Reg.Meta);
    if (!MOpt.MetricsFile.empty()) {
      if (!writeTextFileAtomic(MOpt.MetricsFile, Prom)) {
        std::fprintf(stderr, "unbalanced_trees: cannot write metrics to "
                             "'%s'\n",
                     MOpt.MetricsFile.c_str());
        return 1;
      }
      std::printf("\nmetrics: wrote %s (%s, %lld virtual workers)\n",
                  MOpt.MetricsFile.c_str(),
                  schedulerKindName(SimOpts.Kind), MaxThreads);
    } else if (MOpt.Metrics) {
      std::fputs(Prom.c_str(), stdout);
    }
    if (!MOpt.StatsJson.empty() &&
        !MetricsCliSession::writeStatsJson(MOpt.StatsJson, Final.toStats(),
                                           &Final, Reg.Meta)) {
      std::fprintf(stderr, "unbalanced_trees: cannot write stats to "
                           "'%s'\n",
                   MOpt.StatsJson.c_str());
      return 1;
    }
  }

  std::printf(
      "\nTry a right-heavy mirror (e.g. --tree=tree3r): Tascell's "
      "wait_children\nexplodes because it cannot suspend a waiting task, "
      "while Cilk-SYNCHED is\norientation-blind and AdaptiveTC sits in "
      "between (Figure 10 of the paper).\n");
  return 0;
}
