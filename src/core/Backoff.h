//===- core/Backoff.h - Idle-thief backoff policy ---------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All idle-wait policy in one place. The kernel's steal loop and
/// help-first wait (core/kernel/WorkerRuntime.h) are the only callers of
/// stealBackoff; the fixed-interval Tascell waits live here too so no
/// scheduler hard-codes its own sleep constants.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_BACKOFF_H
#define ATC_CORE_BACKOFF_H

#include <algorithm>
#include <chrono>
#include <thread>

namespace atc {

/// Truncated-exponential backoff after \p FailStreak consecutive failed
/// steal attempts: a few plain yields, then sleeps doubling from 1us up to
/// a (1us << MaxShift) cap — 128us at the default. Compared to a fixed
/// yield/linear-sleep ladder this backs off contended deque lines faster
/// under heavy contention while still reaching freshly published work
/// quickly after short droughts. \p MaxShift is the online tuning layer's
/// backoff knob (liveBackoffShift in core/tuning/TuningController.h);
/// untuned callers get the historical 128us cap.
inline void stealBackoff(int FailStreak, int MaxShift = 7) {
  if (FailStreak <= 4) {
    std::this_thread::yield();
    return;
  }
  int Shift = std::min(FailStreak - 5, MaxShift); // 1us << {0..MaxShift}
  std::this_thread::sleep_for(std::chrono::microseconds(1 << Shift));
}

/// Poll interval while a Tascell requester waits for a mailbox response
/// (it keeps answering its own mailbox between sleeps).
inline void requestResponseWait() {
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

/// Poll interval while a Tascell victim blocks on outstanding donations
/// ("Tascell cannot suspend a waiting task"); the paper's usleep(100).
inline void waitChildrenWait() {
  std::this_thread::sleep_for(std::chrono::microseconds(100));
}

} // namespace atc

#endif // ATC_CORE_BACKOFF_H
