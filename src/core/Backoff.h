//===- core/Backoff.h - Idle-thief backoff policy ---------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared backoff policy for idle thieves (FrameEngine steal loop,
/// TascellScheduler request loop, sync_specialtask help-first wait).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_BACKOFF_H
#define ATC_CORE_BACKOFF_H

#include <algorithm>
#include <chrono>
#include <thread>

namespace atc {

/// Truncated-exponential backoff after \p FailStreak consecutive failed
/// steal attempts: a few plain yields, then sleeps doubling from 1us up to
/// a 128us cap. Compared to a fixed yield/linear-sleep ladder this backs
/// off contended deque lines faster under heavy contention while still
/// reaching freshly published work quickly after short droughts.
inline void stealBackoff(int FailStreak) {
  if (FailStreak <= 4) {
    std::this_thread::yield();
    return;
  }
  int Shift = std::min(FailStreak - 5, 7); // 1us << {0..7} = 1..128us
  std::this_thread::sleep_for(std::chrono::microseconds(1 << Shift));
}

} // namespace atc

#endif // ATC_CORE_BACKOFF_H
