//===- core/Executor.h - Worker-thread execution strategy -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between "what a run computes" (WorkerRuntime + policy) and
/// "where its worker loops execute" (threads). Historically the kernel
/// spawned and joined one std::thread per worker inside every run() —
/// fine for one-shot benchmarks, fatal for a server that must absorb a
/// stream of jobs without paying thread creation and teardown per job.
///
/// WorkerExecutor is that seam: run() hands it the worker count and the
/// per-worker entry function, and the executor decides which OS threads
/// execute them. Two implementations exist:
///
///  * the kernel's built-in default (no executor configured): spawn N
///    threads, join them — exactly the historical per-run behaviour;
///  * SchedulerPool (core/SchedulerPool.h): a persistent pool whose
///    threads park between jobs, so back-to-back runs reuse the same OS
///    threads (hot caches, no clone/exit churn, stable thread ids).
///
/// The executor contract:
///  * dispatch(N, Body) invokes Body(0), ..., Body(N-1), each exactly
///    once, on whatever threads it likes, and returns only after every
///    invocation has completed (a full barrier);
///  * calls from multiple threads must serialize internally (the server's
///    dispatcher is single-threaded today, but the contract should not
///    depend on that);
///  * Body(0) is the root worker — executors must not reorder or drop it.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_EXECUTOR_H
#define ATC_CORE_EXECUTOR_H

#include <functional>

namespace atc {

/// Abstract execution strategy for a run's worker loops; see the file
/// comment for the contract.
class WorkerExecutor {
public:
  virtual ~WorkerExecutor() = default;

  /// Runs Body(0..NumWorkers-1), one invocation per worker id, returning
  /// once all have completed.
  virtual void dispatch(int NumWorkers,
                        const std::function<void(int)> &Body) = 0;

  /// Largest NumWorkers this executor can dispatch, or 0 for unbounded
  /// (the spawn-per-run default). Callers clamp their configurations to
  /// this before running.
  virtual int capacity() const { return 0; }
};

} // namespace atc

#endif // ATC_CORE_EXECUTOR_H
