//===- core/FrameEngine.h - Deque-based scheduling engine -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FrameEngine implements the deque-based scheduling systems of the paper
/// — Cilk, Cilk-SYNCHED, Cutoff, and AdaptiveTC — over the SearchProblem
/// task model. It performs true work-first continuation stealing: a stolen
/// continuation is the tuple (workspace, last choice, partial result,
/// depths) held in a TaskFrame, which is exactly the state the paper's
/// compiler saves before each spawn ("save PC / save live vars",
/// Appendix B).
///
/// Mapping to the paper's five code versions:
///
///  * fast      -> taskBody(Fast2 = false): allocates a frame at entry,
///                 pushes it per spawn, a failed pop returns a dummy value
///                 ("if pop(sn) == FAILURE return 0"). Beyond the cut-off
///                 it calls checkBody. Its sync point is a no-op (owner-
///                 path invariant: never-stolen frames are fully joined).
///  * check     -> checkBody: a fake task (no frame, in-place workspace
///                 with undo) that polls need_task; when set, it creates a
///                 special task, pushes it, and runs the child via
///                 taskBody(Fast2 = true, depth 0); pop_specialtask /
///                 sync_specialtask complete the protocol.
///  * fast_2    -> taskBody(Fast2 = true): like fast with twice the
///                 cut-off, falling back to seqBody (not checkBody).
///  * sequence  -> seqBody: a plain recursive function.
///  * slow      -> runContinuation: executed by a thief on a stolen frame;
///                 restores the "PC" (choice index) and live state, then
///                 continues spawning with the fast/check dispatch. Its
///                 sync point checks the join counter and suspends the
///                 task if children are outstanding.
///
/// Join protocol (who assembles the result of a stolen task):
///  * At steal time — under the deque lock, so the owner's pop failure
///    has a happens-before edge — the frame's JoinCount is incremented:
///    the victim's in-flight child chain owes it exactly one deposit.
///    On the frame's *first* steal, if its Parent is a special task the
///    parent's JoinCount is also incremented (a special is never stolen,
///    so it gets no increment of its own; its deposits arrive from the
///    completion of its detached children).
///  * The victim's first failed pop deposits the just-returned child value
///    into the stolen frame, then the whole spawn chain unwinds (every
///    enclosing frame was stolen head-first before this one).
///  * A completed detached frame deposits its total into Parent; the last
///    depositor of a suspended frame resumes (completes) it, cascading up.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_FRAMEENGINE_H
#define ATC_CORE_FRAMEENGINE_H

#include "core/Problem.h"
#include "core/Scheduler.h"
#include "core/SchedulerStats.h"
#include "core/TaskFrame.h"
#include "core/WorkerContext.h"
#include "support/Timer.h"

#include <cassert>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

namespace atc {

/// Deque-based scheduler engine for problem type \p P. One engine instance
/// per run configuration; run() may be called repeatedly (stats are reset
/// per run).
template <SearchProblem P> class FrameEngine {
public:
  using State = typename P::State;
  using Result = typename P::Result;
  using Frame = TaskFrame<P>;

  FrameEngine(P &Prob, SchedulerConfig Cfg) : Prob(Prob), Cfg(Cfg) {
    assert(Cfg.NumWorkers >= 1 && "need at least one worker");
    assert(Cfg.Kind != SchedulerKind::Tascell &&
           Cfg.Kind != SchedulerKind::Sequential &&
           "FrameEngine handles the deque-based kinds only");
  }

  /// Executes the computation rooted at \p Root and returns its result.
  Result run(const State &Root);

  /// Aggregated statistics of the last run().
  const SchedulerStats &stats() const { return Total; }

private:
  /// How a spawn is executed, per scheduler kind and spawn depth.
  enum class ChildMode { Task, Fast2Task, Check, Plain };

  ChildMode childMode(int Dp, bool Fast2) const {
    switch (Cfg.Kind) {
    case SchedulerKind::Cilk:
    case SchedulerKind::CilkSynched:
      return ChildMode::Task;
    case SchedulerKind::Cutoff:
      return Dp < CutoffDepth ? ChildMode::Task : ChildMode::Plain;
    case SchedulerKind::AdaptiveTC:
      if (Fast2)
        return Dp < 2 * CutoffDepth ? ChildMode::Fast2Task
                                    : ChildMode::Plain;
      return Dp < CutoffDepth ? ChildMode::Task : ChildMode::Check;
    case SchedulerKind::Sequential:
    case SchedulerKind::Tascell:
      break;
    }
    ATC_UNREACHABLE("unhandled scheduler kind");
  }

  void workerMain(int Id);
  void stealLoop(WorkerContext &W);

  ExecResult<Result> taskBody(WorkerContext &W, State &S, int Depth,
                              Frame *Parent, int Dp, bool Fast2,
                              bool OwnsState);
  Result checkBody(WorkerContext &W, State &S, int Depth);
  Result seqBody(WorkerContext &W, State &S, int Depth);
  void runContinuation(WorkerContext &W, Frame *F);

  void depositTo(WorkerContext &W, Frame *F, Result Value);
  void completeDetached(WorkerContext &W, Frame *F, Result Total);
  void publishFinal(Result Value);

  /// Invoked under the victim deque's lock for every successful steal.
  static void onSteal(void *FrameV, void *);

  State *allocState(WorkerContext &W);
  void freeState(WorkerContext &W, State *S);
  Frame *allocFrame(WorkerContext &W);
  void freeFrame(WorkerContext &W, Frame *F);

  P &Prob;
  SchedulerConfig Cfg;
  int CutoffDepth = 0;

  std::vector<std::unique_ptr<WorkerContext>> Workers;
  std::vector<std::vector<State *>> StatePools;
  std::vector<std::vector<Frame *>> FramePools;
  State *RootStatePtr = nullptr;

  std::atomic<bool> Done{false};
  std::mutex ResultLock;
  Result FinalResult{};
  bool HaveResult = false;

  SchedulerStats Total;
};

//===----------------------------------------------------------------------===//
// Implementation
//===----------------------------------------------------------------------===//

template <SearchProblem P>
typename P::Result FrameEngine<P>::run(const State &Root) {
  CutoffDepth = Cfg.effectiveCutoff();
  Done.store(false, std::memory_order_relaxed);
  HaveResult = false;
  FinalResult = Result{};
  Workers.clear();
  StatePools.assign(static_cast<std::size_t>(Cfg.NumWorkers), {});
  FramePools.assign(static_cast<std::size_t>(Cfg.NumWorkers), {});
  for (int I = 0; I < Cfg.NumWorkers; ++I)
    Workers.push_back(std::make_unique<WorkerContext>(
        I, Cfg.DequeCapacity, Cfg.Seed + static_cast<std::uint64_t>(I)));

  State RootCopy = Root;
  RootStatePtr = &RootCopy;

  if (Cfg.NumWorkers == 1) {
    // Single worker: run inline (no thread spawn) — this is the
    // configuration the paper's Table 2 overhead measurements use.
    workerMain(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(static_cast<std::size_t>(Cfg.NumWorkers));
    for (int I = 0; I < Cfg.NumWorkers; ++I)
      Threads.emplace_back([this, I] { workerMain(I); });
    for (std::thread &T : Threads)
      T.join();
  }

  Total = SchedulerStats();
  for (int I = 0; I < Cfg.NumWorkers; ++I) {
    WorkerContext &W = *Workers[I];
    Total += W.Stats;
    Total.DequeOverflows += W.Deque.overflowCount();
    Total.DequeHighWater =
        std::max(Total.DequeHighWater, W.Deque.highWaterMark());
    for (State *S : StatePools[static_cast<std::size_t>(I)])
      ::operator delete(S);
    StatePools[static_cast<std::size_t>(I)].clear();
    for (Frame *F : FramePools[static_cast<std::size_t>(I)])
      delete F;
    FramePools[static_cast<std::size_t>(I)].clear();
  }

  assert(HaveResult && "computation finished without a result");
  return FinalResult;
}

template <SearchProblem P> void FrameEngine<P>::workerMain(int Id) {
  WorkerContext &W = *Workers[static_cast<std::size_t>(Id)];
  if (Id == 0) {
    ExecResult<Result> R =
        taskBody(W, *RootStatePtr, /*Depth=*/0, /*Parent=*/nullptr,
                 /*Dp=*/0, /*Fast2=*/false, /*OwnsState=*/false);
    if (!R.Stolen)
      publishFinal(R.Value);
  }
  stealLoop(W);
}

template <SearchProblem P> void FrameEngine<P>::publishFinal(Result Value) {
  {
    std::lock_guard<std::mutex> Guard(ResultLock);
    FinalResult = Value;
    HaveResult = true;
  }
  Done.store(true, std::memory_order_release);
}

template <SearchProblem P> void FrameEngine<P>::onSteal(void *FrameV, void *) {
  auto *F = static_cast<Frame *>(FrameV);
  F->JoinCount.fetch_add(1, std::memory_order_acq_rel);
  if (!F->Detached) {
    F->Detached = true;
    // A special parent never gets a steal increment of its own; account
    // for this child's eventual completion deposit here (see file
    // comment).
    if (F->Parent && F->Parent->Special)
      F->Parent->JoinCount.fetch_add(1, std::memory_order_acq_rel);
  }
}

template <SearchProblem P> void FrameEngine<P>::stealLoop(WorkerContext &W) {
  if (Cfg.NumWorkers == 1)
    return;
  int FailStreak = 0;
  std::uint64_t IdleBegin = nowNanos();
  while (!Done.load(std::memory_order_acquire)) {
    // Random victim selection (excluding self).
    int V = static_cast<int>(
        W.Rng.nextBelow(static_cast<std::uint64_t>(Cfg.NumWorkers - 1)));
    if (V >= W.Id)
      ++V;
    WorkerContext &Victim = *Workers[static_cast<std::size_t>(V)];

    StealResult SR = Victim.Deque.steal(&FrameEngine::onSteal, nullptr);
    if (SR.Status == StealResult::Status::Success) {
      ++W.Stats.Steals;
      // "When the thief thread succeeds in stealing a task, it clears the
      // victim thread's stolen_num and need_task."
      Victim.StolenNum.store(0, std::memory_order_relaxed);
      Victim.NeedTask.store(false, std::memory_order_relaxed);
      FailStreak = 0;
      W.Stats.StealWaitNs += nowNanos() - IdleBegin;
      runContinuation(W, static_cast<Frame *>(SR.Frame));
      IdleBegin = nowNanos();
      continue;
    }

    // Failed attempt: inform the victim it is being asked for tasks.
    ++W.Stats.StealFails;
    int SN = Victim.StolenNum.fetch_add(1, std::memory_order_relaxed) + 1;
    if (SN > Cfg.MaxStolenNum)
      Victim.NeedTask.store(true, std::memory_order_relaxed);
    ++FailStreak;
    if (FailStreak < 8)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min(FailStreak, 100)));
  }
  W.Stats.StealWaitNs += nowNanos() - IdleBegin;
}

template <SearchProblem P>
typename P::State *FrameEngine<P>::allocState(WorkerContext &W) {
  // Cilk models a fresh allocation per child ("Cilk_alloca + memcpy");
  // SYNCHED / AdaptiveTC / Cutoff reuse buffers through a per-worker pool
  // (space reuse is what the SYNCHED variable buys — the copy itself
  // still happens at the call site).
  if (Cfg.Kind != SchedulerKind::Cilk) {
    auto &Pool = StatePools[static_cast<std::size_t>(W.Id)];
    if (!Pool.empty()) {
      State *S = Pool.back();
      Pool.pop_back();
      return S;
    }
  }
  return static_cast<State *>(::operator new(sizeof(State)));
}

template <SearchProblem P>
void FrameEngine<P>::freeState(WorkerContext &W, State *S) {
  if (Cfg.Kind != SchedulerKind::Cilk) {
    auto &Pool = StatePools[static_cast<std::size_t>(W.Id)];
    if (Pool.size() < 4096) {
      Pool.push_back(S);
      return;
    }
  }
  ::operator delete(S);
}

template <SearchProblem P>
typename FrameEngine<P>::Frame *FrameEngine<P>::allocFrame(WorkerContext &W) {
  // All systems pool task frames (Cilk 5.4.6 has a fast closure
  // allocator); the pooled frame is reset to its freshly-constructed
  // state.
  auto &Pool = FramePools[static_cast<std::size_t>(W.Id)];
  if (ATC_LIKELY(!Pool.empty())) {
    Frame *F = Pool.back();
    Pool.pop_back();
    F->StatePtr = nullptr;
    F->PartialAcc = Result{};
    F->Deposits = Result{};
    F->SyncAcc = Result{};
    F->LastChoice = -1;
    F->Depth = 0;
    F->SpawnDepth = 0;
    assert(F->JoinCount.load(std::memory_order_relaxed) == 0 &&
           "pooled frame with outstanding joins");
    F->Parent = nullptr;
    F->Suspended = false;
    F->Special = false;
    F->Detached = false;
    F->OwnsState = false;
    return F;
  }
  return new Frame();
}

template <SearchProblem P>
void FrameEngine<P>::freeFrame(WorkerContext &W, Frame *F) {
  auto &Pool = FramePools[static_cast<std::size_t>(W.Id)];
  if (Pool.size() < 4096) {
    Pool.push_back(F);
    return;
  }
  delete F;
}

template <SearchProblem P>
ExecResult<typename P::Result>
FrameEngine<P>::taskBody(WorkerContext &W, State &S, int Depth, Frame *Parent,
                         int Dp, bool Fast2, bool OwnsState) {
  ++W.Stats.TasksCreated;
  if (Prob.isLeaf(S, Depth)) {
    Result R = Prob.leafResult(S, Depth);
    if (OwnsState)
      freeState(W, &S);
    return {R, false};
  }

  Frame *F = allocFrame(W);
  F->StatePtr = &S;
  F->Depth = Depth;
  F->SpawnDepth = Dp;
  F->Parent = Parent;
  F->OwnsState = OwnsState;

  Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    ChildMode M = childMode(Dp, Fast2);
    if (M == ChildMode::Task || M == ChildMode::Fast2Task) {
      // Spawn as a real task: give the child a private workspace copy
      // (the taskprivate copy), then expose our continuation. The copy
      // MUST precede the push — once the frame is stealable, a thief may
      // start mutating S (undo/redo of our remaining choices).
      State *CB = allocState(W);
      std::memcpy(static_cast<void *>(CB), static_cast<const void *>(&S),
                  sizeof(State));
      ++W.Stats.WorkspaceCopies;
      W.Stats.CopiedBytes += sizeof(State);
      F->LastChoice = K;
      F->PartialAcc = Acc;
      if (ATC_UNLIKELY(!W.Deque.tryPush(F))) {
        // Deque overflow: degrade to a plain call (counted by the deque).
        freeState(W, CB);
        Acc += seqBody(W, S, Depth + 1);
        Prob.undoChoice(S, Depth, K);
        continue;
      }
      ++W.Stats.Spawns;

      ExecResult<Result> R = taskBody(W, *CB, Depth + 1, F, Dp + 1,
                                      M == ChildMode::Fast2Task,
                                      /*OwnsState=*/true);
      if (R.Stolen) {
        // The child's own frame was stolen, which (head-first stealing)
        // implies ours was too: its result reaches F via the frame chain.
        // Unwind without popping or freeing anything we no longer own.
        return {Result{}, true};
      }
      if (W.Deque.pop() == PopResult::Failure) {
        // Our continuation was stolen: deposit the child's value into the
        // (now thief-owned) frame and unwind ("return a dummy value").
        depositTo(W, F, R.Value);
        return {Result{}, true};
      }
      Acc += R.Value;
    } else if (M == ChildMode::Check) {
      Acc += checkBody(W, S, Depth + 1);
    } else {
      Acc += seqBody(W, S, Depth + 1);
    }
    Prob.undoChoice(S, Depth, K);
  }

  // Sync point. Owner-path invariant: a frame whose every pop succeeded
  // was never stolen, so all children completed synchronously ("all sync
  // statements [in the fast version] are translated to no-ops").
  assert(F->JoinCount.load(std::memory_order_acquire) == 0 &&
         "owner-path frame has outstanding children");
  assert(!F->Detached && "owner-path frame was stolen");
  freeFrame(W, F);
  if (OwnsState)
    freeState(W, &S);
  return {Acc, false};
}

template <SearchProblem P>
typename P::Result FrameEngine<P>::checkBody(WorkerContext &W, State &S,
                                             int Depth) {
  ++W.Stats.FakeTasks;
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);

  Frame *SF = nullptr; // special task frame, created on demand
  bool StolenFlag = false;
  Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    ++W.Stats.Polls;
    if (ATC_LIKELY(!W.NeedTask.load(std::memory_order_relaxed))) {
      // No idle thread waiting: stay a fake task (in-place workspace).
      Acc += checkBody(W, S, Depth + 1);
      Prob.undoChoice(S, Depth, K);
      continue;
    }

    // Some thread is starving: create a special task marking the
    // transition point and publish stealable children through fast_2 with
    // the spawn depth reset to 0.
    if (!SF) {
      SF = allocFrame(W);
      SF->Special = true;
      SF->Depth = Depth;
      SF->StatePtr = &S;
      SF->OwnsState = false;
      ++W.Stats.SpecialTasks;
    }
    State *CB = allocState(W);
    std::memcpy(static_cast<void *>(CB), static_cast<const void *>(&S),
                sizeof(State));
    ++W.Stats.WorkspaceCopies;
    W.Stats.CopiedBytes += sizeof(State);
    if (ATC_UNLIKELY(!W.Deque.tryPush(SF, /*Special=*/true))) {
      freeState(W, CB);
      Acc += seqBody(W, S, Depth + 1);
      Prob.undoChoice(S, Depth, K);
      continue;
    }
    ++W.Stats.Spawns;

    ExecResult<Result> R = taskBody(W, *CB, Depth + 1, SF, /*Dp=*/0,
                                    /*Fast2=*/true, /*OwnsState=*/true);
    if (W.Deque.popSpecial() == PopResult::Failure)
      StolenFlag = true; // the special's child was stolen
    if (!R.Stolen)
      Acc += R.Value; // else: arrives through SF->Deposits
    Prob.undoChoice(S, Depth, K);
  }

  if (SF) {
    if (StolenFlag) {
      // sync_specialtask: a special task cannot be suspended; wait for
      // its children to complete (Fig. 3c polls with usleep(100)).
      std::uint64_t T0 = nowNanos();
      while (SF->JoinCount.load(std::memory_order_acquire) != 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      W.Stats.WaitChildrenNs += nowNanos() - T0;
    }
    {
      std::lock_guard<std::mutex> Guard(SF->Lock);
      Acc += SF->Deposits;
    }
    freeFrame(W, SF);
  }
  return Acc;
}

template <SearchProblem P>
typename P::Result FrameEngine<P>::seqBody(WorkerContext &W, State &S,
                                           int Depth) {
  ++W.Stats.FakeTasks;
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);
  Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;
    Acc += seqBody(W, S, Depth + 1);
    Prob.undoChoice(S, Depth, K);
  }
  return Acc;
}

template <SearchProblem P>
void FrameEngine<P>::runContinuation(WorkerContext &W, Frame *F) {
  // The slow version: restore the live state and "PC", undo the choice
  // whose child is running elsewhere, and continue the spawning loop.
  State &S = *F->StatePtr;
  const int Depth = F->Depth;
  const int Dp = F->SpawnDepth;
  Prob.undoChoice(S, Depth, F->LastChoice);
  Result Acc = F->PartialAcc;
  const int N = Prob.numChoices(S, Depth);

  for (int K = F->LastChoice + 1; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    // Per the paper, the slow version dispatches children through the
    // fast/check rule regardless of which version originally spawned it.
    ChildMode M = childMode(Dp, /*Fast2=*/false);
    if (M == ChildMode::Task) {
      // As in taskBody: copy the child workspace before the push makes
      // our continuation (and S) stealable.
      State *CB = allocState(W);
      std::memcpy(static_cast<void *>(CB), static_cast<const void *>(&S),
                  sizeof(State));
      ++W.Stats.WorkspaceCopies;
      W.Stats.CopiedBytes += sizeof(State);
      F->LastChoice = K;
      F->PartialAcc = Acc;
      if (ATC_UNLIKELY(!W.Deque.tryPush(F))) {
        freeState(W, CB);
        Acc += seqBody(W, S, Depth + 1);
        Prob.undoChoice(S, Depth, K);
        continue;
      }
      ++W.Stats.Spawns;

      ExecResult<Result> R = taskBody(W, *CB, Depth + 1, F, Dp + 1,
                                      /*Fast2=*/false, /*OwnsState=*/true);
      if (R.Stolen)
        return; // stolen again; back to the steal loop
      if (W.Deque.pop() == PopResult::Failure) {
        depositTo(W, F, R.Value);
        return;
      }
      Acc += R.Value;
    } else if (M == ChildMode::Check) {
      Acc += checkBody(W, S, Depth + 1);
    } else {
      Acc += seqBody(W, S, Depth + 1);
    }
    Prob.undoChoice(S, Depth, K);
  }

  // Sync point of a stolen task: children may still be outstanding.
  F->Lock.lock();
  if (F->JoinCount.load(std::memory_order_acquire) != 0) {
    // Suspend the task and go steal other work; the last depositor
    // resumes (completes) it.
    F->SyncAcc = Acc;
    F->Suspended = true;
    ++W.Stats.Suspensions;
    F->Lock.unlock();
    return;
  }
  Result Total = Acc;
  Total += F->Deposits;
  F->Lock.unlock();
  completeDetached(W, F, Total);
}

template <SearchProblem P>
void FrameEngine<P>::depositTo(WorkerContext &W, Frame *F, Result Value) {
  ++W.Stats.Deposits;
  F->Lock.lock();
  F->Deposits += Value;
  int JC = F->JoinCount.fetch_sub(1, std::memory_order_acq_rel) - 1;
  bool Resume = (JC == 0 && F->Suspended);
  F->Lock.unlock();
  if (Resume) {
    // Sole owner now: assemble the total and complete.
    Result Total = F->SyncAcc;
    Total += F->Deposits;
    completeDetached(W, F, Total);
  }
}

template <SearchProblem P>
void FrameEngine<P>::completeDetached(WorkerContext &W, Frame *F,
                                      Result Total) {
  for (;;) {
    Frame *Parent = F->Parent;
    if (F->OwnsState)
      freeState(W, F->StatePtr);
    freeFrame(W, F);
    if (!Parent) {
      publishFinal(Total);
      return;
    }
    ++W.Stats.Deposits;
    Parent->Lock.lock();
    Parent->Deposits += Total;
    int JC = Parent->JoinCount.fetch_sub(1, std::memory_order_acq_rel) - 1;
    bool Resume = (JC == 0 && Parent->Suspended);
    Parent->Lock.unlock();
    if (!Resume)
      return;
    Total = Parent->SyncAcc;
    Total += Parent->Deposits;
    F = Parent;
  }
}

} // namespace atc

#endif // ATC_CORE_FRAMEENGINE_H
