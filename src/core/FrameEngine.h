//===- core/FrameEngine.h - Deque-based scheduling engine -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FrameEngine implements the deque-based scheduling systems of the paper
/// — Cilk, Cilk-SYNCHED, Cutoff, and AdaptiveTC — over the SearchProblem
/// task model. It performs true work-first continuation stealing: a stolen
/// continuation is the tuple (workspace, last choice, partial result,
/// depths) held in a TaskFrame, which is exactly the state the paper's
/// compiler saves before each spawn ("save PC / save live vars",
/// Appendix B).
///
/// Mapping to the paper's five code versions:
///
///  * fast      -> taskBody(Fast2 = false): allocates a frame at entry,
///                 pushes it per spawn, a failed pop returns a dummy value
///                 ("if pop(sn) == FAILURE return 0"). Beyond the cut-off
///                 it calls checkBody. Its sync point is a no-op (owner-
///                 path invariant: never-stolen frames are fully joined).
///  * check     -> checkBody: a fake task (no frame, in-place workspace
///                 with undo) that polls need_task; when set, it creates a
///                 special task, pushes it, and runs the child via
///                 taskBody(Fast2 = true, depth 0); pop_specialtask /
///                 sync_specialtask complete the protocol.
///  * fast_2    -> taskBody(Fast2 = true): like fast with twice the
///                 cut-off, falling back to seqBody (not checkBody).
///  * sequence  -> seqBody: a plain recursive function.
///  * slow      -> runContinuation: executed by a thief on a stolen frame;
///                 restores the "PC" (choice index) and live state, then
///                 continues spawning with the fast/check dispatch. Its
///                 sync point checks the join counter and suspends the
///                 task if children are outstanding.
///
/// Join protocol (who assembles the result of a stolen task):
///  * At steal time the thief increments the stolen frame's JoinCount:
///    the victim's in-flight child chain owes it exactly one deposit.
///    With TheDeque this runs under the deque lock; with AtomicDeque it
///    runs after the claiming CAS with no happens-before edge to the
///    owner's pop failure — which is safe, because the only party that
///    reads JoinCount before the join completes is the thief itself (at
///    its sync), and a transiently negative count (child deposited before
///    the increment) cannot trigger a resume since Suspended is set only
///    by the thief.
///  * A special task is never stolen, so it gets no steal-time increment;
///    instead the *owner* increments the special's JoinCount at each
///    popSpecial failure in checkBody (1:1 with steals of the special's
///    children). Keeping this owner-side avoids the thief dereferencing a
///    special frame the owner may already have freed — with a lock-free
///    deque nothing orders the thief's access against the owner's exit
///    from checkBody.
///  * The victim's first failed pop deposits the just-returned child value
///    into the stolen frame, then the whole spawn chain unwinds (every
///    enclosing frame was stolen head-first before this one).
///  * A completed detached frame deposits its total into Parent; the last
///    depositor of a suspended frame resumes (completes) it, cascading up.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_FRAMEENGINE_H
#define ATC_CORE_FRAMEENGINE_H

#include "core/Backoff.h"
#include "core/Problem.h"
#include "core/Scheduler.h"
#include "core/SchedulerStats.h"
#include "core/TaskFrame.h"
#include "core/WorkerContext.h"
#include "support/Arena.h"
#include "support/Timer.h"

#include <cassert>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

namespace atc {

/// Deque-based scheduler engine for problem type \p P over ready-deque
/// implementation \p DequeT (TheDeque or AtomicDeque, selected via
/// SchedulerConfig::Deque — see runtime/Runtime.h for the dispatch). One
/// engine instance per run configuration; run() may be called repeatedly
/// (stats are reset per run).
template <SearchProblem P, typename DequeT = TheDeque> class FrameEngine {
public:
  using State = typename P::State;
  using Result = typename P::Result;
  using Frame = TaskFrame<P>;
  using Worker = WorkerContextT<DequeT>;

  FrameEngine(P &Prob, SchedulerConfig Cfg) : Prob(Prob), Cfg(Cfg) {
    assert(Cfg.NumWorkers >= 1 && "need at least one worker");
    assert(Cfg.Kind != SchedulerKind::Tascell &&
           Cfg.Kind != SchedulerKind::Sequential &&
           "FrameEngine handles the deque-based kinds only");
  }

  /// Executes the computation rooted at \p Root and returns its result.
  Result run(const State &Root);

  /// Aggregated statistics of the last run().
  const SchedulerStats &stats() const { return Total; }

private:
  /// How a spawn is executed, per scheduler kind and spawn depth.
  enum class ChildMode { Task, Fast2Task, Check, Plain };

  ChildMode childMode(int Dp, bool Fast2) const {
    switch (Cfg.Kind) {
    case SchedulerKind::Cilk:
    case SchedulerKind::CilkSynched:
      return ChildMode::Task;
    case SchedulerKind::Cutoff:
      return Dp < CutoffDepth ? ChildMode::Task : ChildMode::Plain;
    case SchedulerKind::AdaptiveTC:
      if (Fast2)
        return Dp < 2 * CutoffDepth ? ChildMode::Fast2Task
                                    : ChildMode::Plain;
      return Dp < CutoffDepth ? ChildMode::Task : ChildMode::Check;
    case SchedulerKind::Sequential:
    case SchedulerKind::Tascell:
      break;
    }
    ATC_UNREACHABLE("unhandled scheduler kind");
  }

  void workerMain(int Id);
  void stealLoop(Worker &W);
  Frame *tryStealOnce(Worker &W, bool Helping);

  ExecResult<Result> taskBody(Worker &W, State &S, int Depth,
                              Frame *Parent, int Dp, bool Fast2,
                              bool OwnsState);
  Result checkBody(Worker &W, State &S, int Depth);
  Result seqBody(Worker &W, State &S, int Depth);
  void runContinuation(Worker &W, Frame *F);

  void depositTo(Worker &W, Frame *F, Result Value);
  void completeDetached(Worker &W, Frame *F, Result Total);
  void publishFinal(Result Value);

  /// Invoked by the thief for every successful steal — under the victim
  /// deque's lock with TheDeque, after the claiming CAS with AtomicDeque
  /// (no happens-before edge to the owner's pop failure; see the join
  /// protocol notes in the file comment).
  static void onSteal(void *FrameV, void *);

  State *allocState(Worker &W);
  void freeState(Worker &W, State *S);
  void freeStateOf(Worker &W, Frame *F);
  Frame *allocFrame(Worker &W);
  void freeFrame(Worker &W, Frame *F);
  void releaseFrame(Worker &W, Frame *F);

  P &Prob;
  SchedulerConfig Cfg;
  int CutoffDepth = 0;

  std::vector<std::unique_ptr<Worker>> Workers;
  /// Per-worker slab arenas for child workspaces and task frames
  /// (support/Arena.h). Sized by Cfg.PoolCap; rebuilt per run. A frame
  /// and its owned workspace are always carved by the same worker
  /// (Frame::AllocWorker), which is how cross-thread frees find their way
  /// back to the right arena. StateArenas is empty for the Cilk kind,
  /// which models a fresh heap allocation per child.
  std::vector<std::unique_ptr<SlabArena>> StateArenas;
  std::vector<std::unique_ptr<ObjectArena<Frame>>> FrameArenas;
  State *RootStatePtr = nullptr;

  std::atomic<bool> Done{false};
  std::mutex ResultLock;
  Result FinalResult{};
  bool HaveResult = false;

  SchedulerStats Total;
};

//===----------------------------------------------------------------------===//
// Implementation
//===----------------------------------------------------------------------===//

template <SearchProblem P, typename DequeT>
typename P::Result FrameEngine<P, DequeT>::run(const State &Root) {
  CutoffDepth = Cfg.effectiveCutoff();
  Done.store(false, std::memory_order_relaxed);
  HaveResult = false;
  FinalResult = Result{};
  Workers.clear();
  StateArenas.clear();
  FrameArenas.clear();
  for (int I = 0; I < Cfg.NumWorkers; ++I) {
    Workers.push_back(std::make_unique<Worker>(
        I, Cfg.DequeCapacity, Cfg.Seed + static_cast<std::uint64_t>(I)));
    if (Cfg.Kind != SchedulerKind::Cilk)
      StateArenas.push_back(
          std::make_unique<SlabArena>(sizeof(State), Cfg.PoolCap));
    FrameArenas.push_back(
        std::make_unique<ObjectArena<Frame>>(Cfg.PoolCap));
  }

  // The root workspace is a copy source for depth-0 spawns, so it must be
  // stride-padded like every other workspace (copyLiveLines reads whole
  // cache lines). Zero-fill the tail so the rounded reads see initialized
  // bytes.
  const std::size_t RootBytes = SlabArena::strideFor(sizeof(State));
  void *RootBuf = ::operator new(RootBytes);
  std::memset(RootBuf, 0, RootBytes);
  std::memcpy(RootBuf, static_cast<const void *>(&Root), sizeof(State));
  RootStatePtr = static_cast<State *>(RootBuf);

  if (Cfg.NumWorkers == 1) {
    // Single worker: run inline (no thread spawn) — this is the
    // configuration the paper's Table 2 overhead measurements use.
    workerMain(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(static_cast<std::size_t>(Cfg.NumWorkers));
    for (int I = 0; I < Cfg.NumWorkers; ++I)
      Threads.emplace_back([this, I] { workerMain(I); });
    for (std::thread &T : Threads)
      T.join();
  }

  Total = SchedulerStats();
  for (int I = 0; I < Cfg.NumWorkers; ++I) {
    Worker &W = *Workers[I];
    Total += W.Stats;
    Total.DequeOverflows += W.Deque.overflowCount();
    Total.CasRetries += W.Deque.casRetryCount();
    Total.LockAcquires += W.Deque.lockAcquireCount();
    Total.DequeHighWater =
        std::max(Total.DequeHighWater, W.Deque.highWaterMark());
    if (!StateArenas.empty()) {
      const SlabArena &A = *StateArenas[static_cast<std::size_t>(I)];
      Total.PoolOverflows +=
          A.stats().OverflowFrees + A.remoteOverflowFrees();
      Total.ArenaHighWater =
          std::max(Total.ArenaHighWater, A.stats().HighWater);
    }
    const ObjectArena<Frame> &FA = *FrameArenas[static_cast<std::size_t>(I)];
    Total.PoolOverflows +=
        FA.stats().OverflowFrees + FA.remoteOverflowFrees();
    Total.ArenaHighWater =
        std::max(Total.ArenaHighWater, FA.stats().HighWater);
  }
  StateArenas.clear();
  FrameArenas.clear();
  RootStatePtr = nullptr;
  ::operator delete(RootBuf);

  assert(HaveResult && "computation finished without a result");
  return FinalResult;
}

template <SearchProblem P, typename DequeT> void FrameEngine<P, DequeT>::workerMain(int Id) {
  Worker &W = *Workers[static_cast<std::size_t>(Id)];
  if (Id == 0) {
    ExecResult<Result> R =
        taskBody(W, *RootStatePtr, /*Depth=*/0, /*Parent=*/nullptr,
                 /*Dp=*/0, /*Fast2=*/false, /*OwnsState=*/false);
    if (!R.Stolen)
      publishFinal(R.Value);
  }
  stealLoop(W);
}

template <SearchProblem P, typename DequeT> void FrameEngine<P, DequeT>::publishFinal(Result Value) {
  {
    std::lock_guard<std::mutex> Guard(ResultLock);
    FinalResult = Value;
    HaveResult = true;
  }
  Done.store(true, std::memory_order_release);
}

template <SearchProblem P, typename DequeT> void FrameEngine<P, DequeT>::onSteal(void *FrameV, void *) {
  auto *F = static_cast<Frame *>(FrameV);
  F->JoinCount.fetch_add(1, std::memory_order_acq_rel);
  F->Detached = true;
  // Note: the special-parent JoinCount increment happens owner-side, at
  // the popSpecial() failure in checkBody — NOT here. With the lock-free
  // deque this callback runs with no happens-before edge to the owner's
  // pop failure, so touching F->Parent (a frame the owner may already
  // have freed) would be a use-after-free; the owner observes each child
  // steal 1:1 through the popSpecial failure and does the bookkeeping on
  // its own frame.
}

/// One steal attempt: pick a victim (last-successful victim first, random
/// otherwise), probe its deque for emptiness without touching the lock /
/// CAS line, then steal. Returns the stolen frame, or nullptr on failure
/// (the caller runs the continuation so it can account idle time
/// correctly). Failed attempts perform the paper's stolen_num / need_task
/// signalling — the emptiness probe counts as a failed steal for that
/// protocol, since an AdaptiveTC victim busy in fake tasks has an *empty*
/// deque precisely when it needs to be told to publish special tasks.
template <SearchProblem P, typename DequeT>
typename FrameEngine<P, DequeT>::Frame *
FrameEngine<P, DequeT>::tryStealOnce(Worker &W, bool Helping) {
  // Victim selection: affinity first — the last deque we stole from is
  // the most likely to still hold work — falling back to random.
  int V = W.LastVictim;
  bool Affine = (V >= 0 && V != W.Id);
  if (!Affine) {
    V = static_cast<int>(
        W.Rng.nextBelow(static_cast<std::uint64_t>(Cfg.NumWorkers - 1)));
    if (V >= W.Id)
      ++V;
  }
  Worker &Victim = *Workers[static_cast<std::size_t>(V)];

  StealResult SR;
  if (Victim.Deque.empty()) {
    // Lock-free probe: do not touch the deque's synchronisation state for
    // a victim with nothing to take.
    ++W.Stats.EmptyProbes;
    SR.Status = StealResult::Status::Empty;
    SR.Frame = nullptr;
  } else {
    SR = Victim.Deque.steal(&FrameEngine::onSteal, nullptr);
  }

  if (SR.Status == StealResult::Status::Success) {
    ++W.Stats.Steals;
    if (Affine)
      ++W.Stats.AffinityHits;
    if (Helping)
      ++W.Stats.HelpSteals;
    W.LastVictim = V;
    // "When the thief thread succeeds in stealing a task, it clears the
    // victim thread's stolen_num and need_task."
    Victim.StolenNum.store(0, std::memory_order_relaxed);
    Victim.NeedTask.store(false, std::memory_order_relaxed);
    return static_cast<Frame *>(SR.Frame);
  }

  // Failed attempt: inform the victim it is being asked for tasks, and
  // stop favouring it.
  ++W.Stats.StealFails;
  W.LastVictim = -1;
  int SN = Victim.StolenNum.fetch_add(1, std::memory_order_relaxed) + 1;
  if (SN > Cfg.MaxStolenNum)
    Victim.NeedTask.store(true, std::memory_order_relaxed);
  return nullptr;
}

template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::stealLoop(Worker &W) {
  if (Cfg.NumWorkers == 1)
    return;
  int FailStreak = 0;
  std::uint64_t IdleBegin = nowNanos();
  while (!Done.load(std::memory_order_acquire)) {
    if (Frame *F = tryStealOnce(W, /*Helping=*/false)) {
      FailStreak = 0;
      W.Stats.StealWaitNs += nowNanos() - IdleBegin;
      runContinuation(W, F);
      IdleBegin = nowNanos();
      continue;
    }
    ++FailStreak;
    stealBackoff(FailStreak);
  }
  W.Stats.StealWaitNs += nowNanos() - IdleBegin;
}

template <SearchProblem P, typename DequeT>
typename P::State *FrameEngine<P, DequeT>::allocState(Worker &W) {
  // Cilk models a fresh allocation per child ("Cilk_alloca + memcpy");
  // SYNCHED / AdaptiveTC / Cutoff reuse buffers through the per-worker
  // slab arena (space reuse is what the SYNCHED variable buys — the copy
  // itself still happens at the call site).
  if (Cfg.Kind != SchedulerKind::Cilk)
    return static_cast<State *>(
        StateArenas[static_cast<std::size_t>(W.Id)]->alloc().Ptr);
  // Hinted problems copy whole cache lines (copyLiveState), so the
  // buffer must be padded to slab stride; hint-less problems copy exact
  // sizeof(State) and keep the exact allocation (padding would only
  // shift malloc size classes).
  if constexpr (HasLiveBytes<P>)
    return static_cast<State *>(
        ::operator new(SlabArena::strideFor(sizeof(State))));
  else
    return static_cast<State *>(::operator new(sizeof(State)));
}

/// Owner-side free of a workspace \p W itself carved (the common case:
/// the spawn loop frees the child buffer it just allocated).
template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::freeState(Worker &W, State *S) {
  if (Cfg.Kind != SchedulerKind::Cilk) {
    StateArenas[static_cast<std::size_t>(W.Id)]->free(S);
    return;
  }
  ::operator delete(S);
}

/// Frees \p F's owned workspace from any worker, routing it back to the
/// carving worker's arena (F->AllocWorker — a frame and its workspace
/// always come from the same worker) via the lock-free remote stack when
/// \p W is not that worker.
template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::freeStateOf(Worker &W, Frame *F) {
  if (Cfg.Kind == SchedulerKind::Cilk) {
    ::operator delete(F->StatePtr); // thread-safe, no routing needed
    return;
  }
  SlabArena &A = *StateArenas[static_cast<std::size_t>(F->AllocWorker)];
  if (ATC_LIKELY(F->AllocWorker == W.Id))
    A.free(F->StatePtr);
  else
    A.freeRemote(F->StatePtr);
}

template <SearchProblem P, typename DequeT>
typename FrameEngine<P, DequeT>::Frame *FrameEngine<P, DequeT>::allocFrame(Worker &W) {
  // All systems pool task frames (Cilk 5.4.6 has a fast closure
  // allocator); the recycled frame is reset to its freshly-constructed
  // state.
  Frame *F = FrameArenas[static_cast<std::size_t>(W.Id)]->alloc();
  assert(F->JoinCount.load(std::memory_order_relaxed) == 0 &&
         "recycled frame with outstanding joins");
  F->reset();
  F->AllocWorker = W.Id;
  return F;
}

/// Owner-side frame free: the caller is the worker that carved \p F
/// (never-stolen frames and special frames are freed by their spawner).
template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::freeFrame(Worker &W, Frame *F) {
  assert(F->AllocWorker == W.Id && "owner-side free of a foreign frame");
  FrameArenas[static_cast<std::size_t>(W.Id)]->free(F);
}

/// Frees a completed detached frame from any worker, routing it back to
/// the carving worker's arena.
template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::releaseFrame(Worker &W, Frame *F) {
  ObjectArena<Frame> &A =
      *FrameArenas[static_cast<std::size_t>(F->AllocWorker)];
  if (ATC_LIKELY(F->AllocWorker == W.Id))
    A.free(F);
  else
    A.freeRemote(F);
}

template <SearchProblem P, typename DequeT>
ExecResult<typename P::Result>
FrameEngine<P, DequeT>::taskBody(Worker &W, State &S, int Depth, Frame *Parent,
                         int Dp, bool Fast2, bool OwnsState) {
  if (Prob.isLeaf(S, Depth)) {
    ++W.Stats.TasksCreated;
    Result R = Prob.leafResult(S, Depth);
    if (OwnsState)
      freeState(W, &S);
    return {R, false};
  }

  Frame *F = allocFrame(W);
  F->StatePtr = &S;
  F->Depth = Depth;
  F->SpawnDepth = Dp;
  F->Parent = Parent;
  F->OwnsState = OwnsState;

  // Hot counters are batched into locals and flushed once per exit path
  // (each return is a steal/sync boundary) instead of dirtying the Stats
  // cache line on every loop iteration.
  std::uint64_t NSpawns = 0, NCopies = 0, NBytes = 0;
  auto FlushStats = [&] {
    ++W.Stats.TasksCreated;
    W.Stats.Spawns += NSpawns;
    W.Stats.WorkspaceCopies += NCopies;
    W.Stats.CopiedBytes += NBytes;
  };

  Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    ChildMode M = childMode(Dp, Fast2);
    if (M == ChildMode::Task || M == ChildMode::Fast2Task) {
      // Spawn as a real task: give the child a private workspace copy
      // (the taskprivate copy), then expose our continuation. The copy
      // MUST precede the push — once the frame is stealable, a thief may
      // start mutating S (undo/redo of our remaining choices). Only the
      // prefix live at the child's depth is copied (Problem.h liveBytes).
      State *CB = allocState(W);
      const std::size_t Live = copyLiveState(Prob, CB, S, Depth + 1);
      ++NCopies;
      NBytes += Live;
      F->LastChoice = K;
      F->PartialAcc = Acc;
      if (ATC_UNLIKELY(!W.Deque.tryPush(F))) {
        // Deque overflow: degrade to a plain call (counted by the deque).
        freeState(W, CB);
        Acc += seqBody(W, S, Depth + 1);
        Prob.undoChoice(S, Depth, K);
        continue;
      }
      ++NSpawns;

      ExecResult<Result> R = taskBody(W, *CB, Depth + 1, F, Dp + 1,
                                      M == ChildMode::Fast2Task,
                                      /*OwnsState=*/true);
      if (R.Stolen) {
        // The child's own frame was stolen, which (head-first stealing)
        // implies ours was too: its result reaches F via the frame chain.
        // Unwind without popping or freeing anything we no longer own.
        FlushStats();
        return {Result{}, true};
      }
      if (W.Deque.pop() == PopResult::Failure) {
        // Our continuation was stolen: deposit the child's value into the
        // (now thief-owned) frame and unwind ("return a dummy value").
        FlushStats();
        depositTo(W, F, R.Value);
        return {Result{}, true};
      }
      Acc += R.Value;
    } else if (M == ChildMode::Check) {
      Acc += checkBody(W, S, Depth + 1);
    } else {
      Acc += seqBody(W, S, Depth + 1);
    }
    Prob.undoChoice(S, Depth, K);
  }
  FlushStats();

  // Sync point. Owner-path invariant: a frame whose every pop succeeded
  // was never stolen, so all children completed synchronously ("all sync
  // statements [in the fast version] are translated to no-ops").
  assert(F->JoinCount.load(std::memory_order_acquire) == 0 &&
         "owner-path frame has outstanding children");
  assert(!F->Detached && "owner-path frame was stolen");
  freeFrame(W, F);
  if (OwnsState)
    freeState(W, &S);
  return {Acc, false};
}

template <SearchProblem P, typename DequeT>
typename P::Result FrameEngine<P, DequeT>::checkBody(Worker &W, State &S,
                                             int Depth) {
  ++W.Stats.FakeTasks;
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);

  Frame *SF = nullptr; // special task frame, created on demand
  bool StolenFlag = false;
  std::uint64_t NPolls = 0; // batched; flushed after the loop
  Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    ++NPolls;
    if (ATC_LIKELY(!W.NeedTask.load(std::memory_order_relaxed))) {
      // No idle thread waiting: stay a fake task (in-place workspace).
      Acc += checkBody(W, S, Depth + 1);
      Prob.undoChoice(S, Depth, K);
      continue;
    }

    // Some thread is starving: create a special task marking the
    // transition point and publish stealable children through fast_2 with
    // the spawn depth reset to 0. (This whole branch is cold — counters
    // here write straight to Stats.)
    if (!SF) {
      SF = allocFrame(W);
      SF->Special = true;
      SF->Depth = Depth;
      SF->StatePtr = &S;
      SF->OwnsState = false;
      ++W.Stats.SpecialTasks;
    }
    State *CB = allocState(W);
    const std::size_t Live = copyLiveState(Prob, CB, S, Depth + 1);
    ++W.Stats.WorkspaceCopies;
    W.Stats.CopiedBytes += Live;
    if (ATC_UNLIKELY(!W.Deque.tryPush(SF, /*Special=*/true))) {
      freeState(W, CB);
      Acc += seqBody(W, S, Depth + 1);
      Prob.undoChoice(S, Depth, K);
      continue;
    }
    ++W.Stats.Spawns;

    ExecResult<Result> R = taskBody(W, *CB, Depth + 1, SF, /*Dp=*/0,
                                    /*Fast2=*/true, /*OwnsState=*/true);
    if (W.Deque.popSpecial() == PopResult::Failure) {
      // The special's child chain was stolen. A special is never stolen
      // itself, so it gets no steal-time JoinCount increment; the owner
      // accounts for the detached chain's eventual completion deposit
      // here, exactly once per stolen child. (Thief-side accounting would
      // race with SF's free with the lock-free deque.)
      StolenFlag = true;
      SF->JoinCount.fetch_add(1, std::memory_order_acq_rel);
    }
    if (!R.Stolen)
      Acc += R.Value; // else: arrives through SF->Deposits
    Prob.undoChoice(S, Depth, K);
  }
  W.Stats.Polls += NPolls;

  if (SF) {
    if (StolenFlag) {
      // sync_specialtask: a special task cannot be suspended, so the
      // owner must stay here until its detached children complete. Rather
      // than the paper's usleep(100) poll, help-first: steal and run
      // other tasks while waiting (work-conserving; each executed task is
      // counted in HelpSteals). Backoff only when there is nothing to
      // steal. Helping can deepen the native stack (stolen work can reach
      // another sync_specialtask and help in turn), trading stack depth
      // for zero idle time — the usual help-first bargain.
      std::uint64_t T0 = nowNanos();
      int FailStreak = 0;
      while (SF->JoinCount.load(std::memory_order_acquire) != 0) {
        if (Cfg.NumWorkers > 1) {
          if (Frame *HF = tryStealOnce(W, /*Helping=*/true)) {
            runContinuation(W, HF);
            FailStreak = 0;
            continue;
          }
        }
        ++FailStreak;
        stealBackoff(FailStreak);
      }
      W.Stats.WaitChildrenNs += nowNanos() - T0;
    }
    {
      std::lock_guard<std::mutex> Guard(SF->Lock);
      Acc += SF->Deposits;
    }
    freeFrame(W, SF);
  }
  return Acc;
}

namespace detail {

/// Recursive core of the sequence version: counts visited nodes into a
/// stack local threaded by reference so the hot loop never touches the
/// worker's Stats cache line (flushed once by seqBody below).
template <SearchProblem P>
typename P::Result seqBodyImpl(P &Prob, typename P::State &S, int Depth,
                               std::uint64_t &Nodes) {
  ++Nodes;
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);
  typename P::Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;
    Acc += seqBodyImpl(Prob, S, Depth + 1, Nodes);
    Prob.undoChoice(S, Depth, K);
  }
  return Acc;
}

} // namespace detail

template <SearchProblem P, typename DequeT>
typename P::Result FrameEngine<P, DequeT>::seqBody(Worker &W, State &S,
                                           int Depth) {
  std::uint64_t Nodes = 0;
  Result Acc = detail::seqBodyImpl(Prob, S, Depth, Nodes);
  W.Stats.FakeTasks += Nodes;
  return Acc;
}

template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::runContinuation(Worker &W, Frame *F) {
  // The slow version: restore the live state and "PC", undo the choice
  // whose child is running elsewhere, and continue the spawning loop.
  State &S = *F->StatePtr;
  const int Depth = F->Depth;
  const int Dp = F->SpawnDepth;
  Prob.undoChoice(S, Depth, F->LastChoice);
  Result Acc = F->PartialAcc;
  const int N = Prob.numChoices(S, Depth);

  for (int K = F->LastChoice + 1; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    // Per the paper, the slow version dispatches children through the
    // fast/check rule regardless of which version originally spawned it.
    ChildMode M = childMode(Dp, /*Fast2=*/false);
    if (M == ChildMode::Task) {
      // As in taskBody: copy the child workspace (live prefix only)
      // before the push makes our continuation (and S) stealable.
      State *CB = allocState(W);
      const std::size_t Live = copyLiveState(Prob, CB, S, Depth + 1);
      ++W.Stats.WorkspaceCopies;
      W.Stats.CopiedBytes += Live;
      F->LastChoice = K;
      F->PartialAcc = Acc;
      if (ATC_UNLIKELY(!W.Deque.tryPush(F))) {
        freeState(W, CB);
        Acc += seqBody(W, S, Depth + 1);
        Prob.undoChoice(S, Depth, K);
        continue;
      }
      ++W.Stats.Spawns;

      ExecResult<Result> R = taskBody(W, *CB, Depth + 1, F, Dp + 1,
                                      /*Fast2=*/false, /*OwnsState=*/true);
      if (R.Stolen)
        return; // stolen again; back to the steal loop
      if (W.Deque.pop() == PopResult::Failure) {
        depositTo(W, F, R.Value);
        return;
      }
      Acc += R.Value;
    } else if (M == ChildMode::Check) {
      Acc += checkBody(W, S, Depth + 1);
    } else {
      Acc += seqBody(W, S, Depth + 1);
    }
    Prob.undoChoice(S, Depth, K);
  }

  // Sync point of a stolen task: children may still be outstanding.
  F->Lock.lock();
  if (F->JoinCount.load(std::memory_order_acquire) != 0) {
    // Suspend the task and go steal other work; the last depositor
    // resumes (completes) it.
    F->SyncAcc = Acc;
    F->Suspended = true;
    ++W.Stats.Suspensions;
    F->Lock.unlock();
    return;
  }
  Result Total = Acc;
  Total += F->Deposits;
  F->Lock.unlock();
  completeDetached(W, F, Total);
}

template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::depositTo(Worker &W, Frame *F, Result Value) {
  ++W.Stats.Deposits;
  F->Lock.lock();
  F->Deposits += Value;
  int JC = F->JoinCount.fetch_sub(1, std::memory_order_acq_rel) - 1;
  bool Resume = (JC == 0 && F->Suspended);
  F->Lock.unlock();
  if (Resume) {
    // Sole owner now: assemble the total and complete.
    Result Total = F->SyncAcc;
    Total += F->Deposits;
    completeDetached(W, F, Total);
  }
}

template <SearchProblem P, typename DequeT>
void FrameEngine<P, DequeT>::completeDetached(Worker &W, Frame *F,
                                      Result Total) {
  for (;;) {
    Frame *Parent = F->Parent;
    // May run on a thief: both frees route back to the carving worker's
    // arena (F->AllocWorker) rather than W's.
    if (F->OwnsState)
      freeStateOf(W, F);
    releaseFrame(W, F);
    if (!Parent) {
      publishFinal(Total);
      return;
    }
    ++W.Stats.Deposits;
    Parent->Lock.lock();
    Parent->Deposits += Total;
    int JC = Parent->JoinCount.fetch_sub(1, std::memory_order_acq_rel) - 1;
    bool Resume = (JC == 0 && Parent->Suspended);
    Parent->Lock.unlock();
    if (!Resume)
      return;
    Total = Parent->SyncAcc;
    Total += Parent->Deposits;
    F = Parent;
  }
}

} // namespace atc

#endif // ATC_CORE_FRAMEENGINE_H
