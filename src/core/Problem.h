//===- core/Problem.h - The search-problem task model -----------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The task model shared by every scheduler in this project.
///
/// The paper's compiler assumes tasks of a particular shape: a recursive
/// function that loops over candidate child choices, spawning one child per
/// viable choice, with a workspace ("taskprivate" variable) that the child
/// either receives as a private copy (real task) or mutates in place with
/// undo (fake task). Its five generated code versions save/restore exactly
/// (workspace, loop index, partial result, depth).
///
/// SearchProblem captures that shape as a C++ concept, which is what lets a
/// library implement the paper's continuation stealing without compiler
/// support or stack switching: a continuation is fully described by
/// (State, last choice index, partial result, depth).
///
/// Semantics (the "reference interpreter" every scheduler must agree with):
///
/// \code
///   Result search(P &Prob, State &S, int Depth) {
///     if (Prob.isLeaf(S, Depth))
///       return Prob.leafResult(S, Depth);
///     Result Acc{};                       // Result{} is the identity
///     for (int K = 0, N = Prob.numChoices(S, Depth); K < N; ++K) {
///       if (!Prob.applyChoice(S, Depth, K))
///         continue;                       // pruned
///       Acc += search(Prob, S, Depth + 1);
///       Prob.undoChoice(S, Depth, K);
///     }
///     return Acc;
///   }
/// \endcode
///
/// Requirements on the types:
///  * State is trivially copyable (the workspace copy is a memcpy — this is
///    what the paper's `taskprivate: (*x)(n * sizeof(char))` clause
///    expresses), and the undo discipline holds: after applyChoice /
///    subtree / undoChoice the State is bit-identical to before.
///  * Result is default-constructible to the reduction identity and
///    supports `+=` as an associative, commutative combine (results of
///    stolen subtrees are deposited in nondeterministic order).
///
/// Problems may additionally provide the optional liveBytes hint (see
/// HasLiveBytes below) to bound the per-spawn workspace copy to the live
/// prefix of the State; correctness never depends on it.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_PROBLEM_H
#define ATC_CORE_PROBLEM_H

#include "support/Arena.h"

#include <concepts>
#include <cstddef>
#include <cstring>
#include <type_traits>

namespace atc {

/// Concept for the choice-loop task model described in the file comment.
template <typename P>
concept SearchProblem = requires(P &Prob, typename P::State &S,
                                 const typename P::State &CS, int Depth,
                                 int K, typename P::Result &R) {
  requires std::is_trivially_copyable_v<typename P::State>;
  requires std::default_initializable<typename P::Result>;
  { Prob.isLeaf(CS, Depth) } -> std::convertible_to<bool>;
  { Prob.leafResult(CS, Depth) } -> std::convertible_to<typename P::Result>;
  { Prob.numChoices(CS, Depth) } -> std::convertible_to<int>;
  { Prob.applyChoice(S, Depth, K) } -> std::convertible_to<bool>;
  { Prob.undoChoice(S, Depth, K) };
  { R += R };
};

/// Optional refinement of SearchProblem: the problem knows how much of its
/// State is live for a search starting at (S, Depth). This is the
/// library-level form of the paper's `taskprivate: (*x)(n * sizeof(char))`
/// size clause — the clause already lets the programmer bound the copied
/// workspace; liveBytes bounds it per *depth*, so a spawn at depth d
/// copies only the prefix its child can ever read.
///
/// Contract: for any node (S, Depth) reached by the reference interpreter,
/// a State whose first liveBytes(S, Depth) bytes equal S and whose
/// remaining bytes are arbitrary must explore the identical subtree (same
/// results, same node counts) under search(·, ·, Depth). In particular the
/// bytes past the live prefix may be clobbered freely — the allocator
/// stores freelist links in recycled buffers.
template <typename P>
concept HasLiveBytes =
    SearchProblem<P> &&
    requires(const P &Prob, const typename P::State &S, int Depth) {
      { Prob.liveBytes(S, Depth) } -> std::convertible_to<std::size_t>;
    };

/// Bytes to copy when handing (S, Depth) to a spawned child: the
/// problem's liveBytes hint when present (clamped to sizeof(State)),
/// otherwise the full State.
template <SearchProblem P>
inline std::size_t liveStateBytes(const P &Prob, const typename P::State &S,
                                  int Depth) {
  if constexpr (HasLiveBytes<P>) {
    std::size_t Live = Prob.liveBytes(S, Depth);
    return Live < sizeof(typename P::State) ? Live
                                            : sizeof(typename P::State);
  } else {
    (void)Prob;
    (void)S;
    (void)Depth;
    return sizeof(typename P::State);
  }
}

/// The per-spawn workspace copy, shaped to what the compiler can do with
/// it. A problem without a liveBytes hint copies the whole State — a
/// compile-time-size memcpy, which the compiler expands to the optimal
/// fixed move sequence. A hinted problem's copy length varies per spawn,
/// and a variable-length memcpy call costs more in size-dispatch than a
/// small hint saves; copying whole cache lines (copyLiveLines) keeps it
/// an inlined fixed-block loop instead. Requires stride-padded buffers
/// in the hinted case (slab chunks and every engine workspace are).
/// Returns the live byte count, for the CopiedBytes stat.
template <SearchProblem P>
inline std::size_t copyLiveState(const P &Prob, typename P::State *Dst,
                                 const typename P::State &S, int Depth) {
  if constexpr (HasLiveBytes<P>) {
    const std::size_t Live = liveStateBytes(Prob, S, Depth);
    copyLiveLines(Dst, &S, Live);
    return Live;
  } else {
    (void)Depth;
    std::memcpy(static_cast<void *>(Dst), static_cast<const void *>(&S),
                sizeof(typename P::State));
    return sizeof(typename P::State);
  }
}

/// Reference sequential interpreter ("the serial C program" every speedup
/// in the paper is measured against). Mutates \p S in place and restores
/// it before returning.
template <SearchProblem P>
typename P::Result runSequential(P &Prob, typename P::State &S,
                                 int Depth = 0) {
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);
  typename P::Result Acc{};
  int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;
    Acc += runSequential(Prob, S, Depth + 1);
    Prob.undoChoice(S, Depth, K);
  }
  return Acc;
}

/// Statistics about a problem's computation tree, gathered by profileTree.
struct TreeProfile {
  long long Nodes = 0;    ///< Total nodes visited (incl. root, excl. pruned).
  long long Leaves = 0;   ///< Nodes where isLeaf was true.
  int MaxDepth = 0;       ///< Deepest node.
  long long Pruned = 0;   ///< Choices rejected by applyChoice.
};

/// Walks the full computation tree and gathers shape statistics. Used by
/// the simulator to build statistically-matched synthetic trees for the
/// Figure 4 reproduction.
template <SearchProblem P>
void profileTree(P &Prob, typename P::State &S, TreeProfile &Out,
                 int Depth = 0) {
  ++Out.Nodes;
  if (Depth > Out.MaxDepth)
    Out.MaxDepth = Depth;
  if (Prob.isLeaf(S, Depth)) {
    ++Out.Leaves;
    return;
  }
  int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K)) {
      ++Out.Pruned;
      continue;
    }
    profileTree(Prob, S, Out, Depth + 1);
    Prob.undoChoice(S, Depth, K);
  }
}

} // namespace atc

#endif // ATC_CORE_PROBLEM_H
