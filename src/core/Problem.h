//===- core/Problem.h - The search-problem task model -----------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The task model shared by every scheduler in this project.
///
/// The paper's compiler assumes tasks of a particular shape: a recursive
/// function that loops over candidate child choices, spawning one child per
/// viable choice, with a workspace ("taskprivate" variable) that the child
/// either receives as a private copy (real task) or mutates in place with
/// undo (fake task). Its five generated code versions save/restore exactly
/// (workspace, loop index, partial result, depth).
///
/// SearchProblem captures that shape as a C++ concept, which is what lets a
/// library implement the paper's continuation stealing without compiler
/// support or stack switching: a continuation is fully described by
/// (State, last choice index, partial result, depth).
///
/// Semantics (the "reference interpreter" every scheduler must agree with):
///
/// \code
///   Result search(P &Prob, State &S, int Depth) {
///     if (Prob.isLeaf(S, Depth))
///       return Prob.leafResult(S, Depth);
///     Result Acc{};                       // Result{} is the identity
///     for (int K = 0, N = Prob.numChoices(S, Depth); K < N; ++K) {
///       if (!Prob.applyChoice(S, Depth, K))
///         continue;                       // pruned
///       Acc += search(Prob, S, Depth + 1);
///       Prob.undoChoice(S, Depth, K);
///     }
///     return Acc;
///   }
/// \endcode
///
/// Requirements on the types:
///  * State is trivially copyable (the workspace copy is a memcpy — this is
///    what the paper's `taskprivate: (*x)(n * sizeof(char))` clause
///    expresses), and the undo discipline holds: after applyChoice /
///    subtree / undoChoice the State is bit-identical to before.
///  * Result is default-constructible to the reduction identity and
///    supports `+=` as an associative, commutative combine (results of
///    stolen subtrees are deposited in nondeterministic order).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_PROBLEM_H
#define ATC_CORE_PROBLEM_H

#include <concepts>
#include <type_traits>

namespace atc {

/// Concept for the choice-loop task model described in the file comment.
template <typename P>
concept SearchProblem = requires(P &Prob, typename P::State &S,
                                 const typename P::State &CS, int Depth,
                                 int K, typename P::Result &R) {
  requires std::is_trivially_copyable_v<typename P::State>;
  requires std::default_initializable<typename P::Result>;
  { Prob.isLeaf(CS, Depth) } -> std::convertible_to<bool>;
  { Prob.leafResult(CS, Depth) } -> std::convertible_to<typename P::Result>;
  { Prob.numChoices(CS, Depth) } -> std::convertible_to<int>;
  { Prob.applyChoice(S, Depth, K) } -> std::convertible_to<bool>;
  { Prob.undoChoice(S, Depth, K) };
  { R += R };
};

/// Reference sequential interpreter ("the serial C program" every speedup
/// in the paper is measured against). Mutates \p S in place and restores
/// it before returning.
template <SearchProblem P>
typename P::Result runSequential(P &Prob, typename P::State &S,
                                 int Depth = 0) {
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);
  typename P::Result Acc{};
  int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;
    Acc += runSequential(Prob, S, Depth + 1);
    Prob.undoChoice(S, Depth, K);
  }
  return Acc;
}

/// Statistics about a problem's computation tree, gathered by profileTree.
struct TreeProfile {
  long long Nodes = 0;    ///< Total nodes visited (incl. root, excl. pruned).
  long long Leaves = 0;   ///< Nodes where isLeaf was true.
  int MaxDepth = 0;       ///< Deepest node.
  long long Pruned = 0;   ///< Choices rejected by applyChoice.
};

/// Walks the full computation tree and gathers shape statistics. Used by
/// the simulator to build statistically-matched synthetic trees for the
/// Figure 4 reproduction.
template <SearchProblem P>
void profileTree(P &Prob, typename P::State &S, TreeProfile &Out,
                 int Depth = 0) {
  ++Out.Nodes;
  if (Depth > Out.MaxDepth)
    Out.MaxDepth = Depth;
  if (Prob.isLeaf(S, Depth)) {
    ++Out.Leaves;
    return;
  }
  int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K)) {
      ++Out.Pruned;
      continue;
    }
    profileTree(Prob, S, Out, Depth + 1);
    Prob.undoChoice(S, Depth, K);
  }
}

} // namespace atc

#endif // ATC_CORE_PROBLEM_H
