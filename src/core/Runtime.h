//===- core/Runtime.h - One-call scheduler dispatch -------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point: runs a SearchProblem under any SchedulerKind
/// with one call. This is the public API the examples, tests, and the
/// benchmark harnesses use.
///
/// \code
///   atc::NQueensArray Prob;
///   auto Root = atc::NQueensArray::makeRoot(12);
///   atc::SchedulerConfig Cfg;
///   Cfg.Kind = atc::SchedulerKind::AdaptiveTC;
///   Cfg.NumWorkers = 8;
///   atc::RunResult<long long> R = atc::runProblem(Prob, Root, Cfg);
///   // R.Value == 14200, R.Stats has the overhead counters.
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_RUNTIME_H
#define ATC_CORE_RUNTIME_H

#include "core/FrameEngine.h"
#include "core/Problem.h"
#include "core/Scheduler.h"
#include "core/TascellScheduler.h"

namespace atc {

/// Result value plus the run's scheduler statistics.
template <typename ResultT> struct RunResult {
  ResultT Value{};
  SchedulerStats Stats;
};

/// Runs \p Prob from \p Root under \p Cfg and returns the result with
/// statistics. Dispatches to the right engine for Cfg.Kind.
template <SearchProblem P>
RunResult<typename P::Result> runProblem(P &Prob,
                                         const typename P::State &Root,
                                         const SchedulerConfig &Cfg) {
  switch (Cfg.Kind) {
  case SchedulerKind::Sequential: {
    typename P::State S = Root;
    return {runSequential(Prob, S), SchedulerStats()};
  }
  case SchedulerKind::Tascell: {
    TascellScheduler<P> Sched(Prob, Cfg);
    typename P::Result Value = Sched.run(Root);
    return {Value, Sched.stats()};
  }
  case SchedulerKind::Cilk:
  case SchedulerKind::CilkSynched:
  case SchedulerKind::Cutoff:
  case SchedulerKind::AdaptiveTC:
    // Deque selection is a compile-time template parameter (no virtual
    // dispatch on the push/pop hot path); branch once per run here.
    switch (Cfg.Deque) {
    case DequeKind::The: {
      FrameEngine<P, TheDeque> Engine(Prob, Cfg);
      typename P::Result Value = Engine.run(Root);
      return {Value, Engine.stats()};
    }
    case DequeKind::Atomic: {
      FrameEngine<P, AtomicDeque> Engine(Prob, Cfg);
      typename P::Result Value = Engine.run(Root);
      return {Value, Engine.stats()};
    }
    }
    ATC_UNREACHABLE("unhandled deque kind");
  }
  ATC_UNREACHABLE("unhandled scheduler kind");
}

} // namespace atc

#endif // ATC_CORE_RUNTIME_H
