//===- core/Runtime.h - One-call scheduler dispatch -------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point: runs a SearchProblem under any SchedulerKind
/// with one call. This is the public API the examples, tests, and the
/// benchmark harnesses use.
///
/// \code
///   atc::NQueensArray Prob;
///   auto Root = atc::NQueensArray::makeRoot(12);
///   atc::SchedulerConfig Cfg;
///   Cfg.Kind = atc::SchedulerKind::AdaptiveTC;
///   Cfg.NumWorkers = 8;
///   atc::RunResult<long long> R = atc::runProblem(Prob, Root, Cfg);
///   // R.Value == 14200, R.Stats has the overhead counters.
/// \endcode
///
/// Every kind runs on the shared WorkerRuntime kernel
/// (core/kernel/WorkerRuntime.h); what varies is the policy it is
/// instantiated with — FramePolicy<P, DequeT, TaskCreationPolicy> for the
/// deque-based kinds, TascellPolicy<P> for Tascell. Both the deque and
/// the task-creation strategy are compile-time template parameters (no
/// virtual dispatch on the push/pop hot path); this function branches
/// once per run to pick the instantiation.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_RUNTIME_H
#define ATC_CORE_RUNTIME_H

#include "core/Problem.h"
#include "core/Scheduler.h"
#include "core/kernel/FramePolicy.h"
#include "core/kernel/TascellPolicy.h"
#include "core/kernel/WorkerRuntime.h"

namespace atc {

/// Result value plus the run's scheduler statistics.
template <typename ResultT> struct RunResult {
  ResultT Value{};
  SchedulerStats Stats;

  /// The run's event trace when SchedulerConfig::Trace was armed (and
  /// the build has ATC_TRACE=ON); null otherwise. Export with
  /// writeChromeTraceFile (trace/TraceJson.h).
  std::shared_ptr<TraceLog> Trace;

  /// The run's live-metrics registry when SchedulerConfig::Metrics (or a
  /// MetricsSink) was armed and the build has ATC_METRICS=ON; null
  /// otherwise. After the run the cells hold the final, exact per-worker
  /// state — sample() it for a post-run snapshot, or export with
  /// renderPrometheus / renderJsonSeries (metrics/Exposition.h).
  std::shared_ptr<MetricsRegistry> Metrics;
};

namespace detail {

/// Runs one FramePolicy instantiation through the kernel.
template <SearchProblem P, typename DequeT, typename TC>
RunResult<typename P::Result>
runFramePolicy(P &Prob, const typename P::State &Root,
               const SchedulerConfig &Cfg) {
  FramePolicy<P, DequeT, TC> Pol(Prob, Cfg, Root);
  WorkerRuntime<FramePolicy<P, DequeT, TC>> Rt(Pol, Cfg);
  typename P::Result Value = Rt.run();
  return {Value, Rt.stats(), Rt.traceLog(), Rt.metricsRegistry()};
}

/// Picks the task-creation policy for a deque-based kind.
template <SearchProblem P, typename DequeT>
RunResult<typename P::Result>
runDequeBased(P &Prob, const typename P::State &Root,
              const SchedulerConfig &Cfg) {
  switch (Cfg.Kind) {
  case SchedulerKind::Cilk:
    return runFramePolicy<P, DequeT, CilkTaskPolicy>(Prob, Root, Cfg);
  case SchedulerKind::CilkSynched:
    return runFramePolicy<P, DequeT, CilkSynchedTaskPolicy>(Prob, Root,
                                                            Cfg);
  case SchedulerKind::Cutoff:
    return runFramePolicy<P, DequeT, CutoffTaskPolicy>(Prob, Root, Cfg);
  case SchedulerKind::AdaptiveTC:
    return runFramePolicy<P, DequeT, AdaptiveTCTaskPolicy>(Prob, Root,
                                                           Cfg);
  case SchedulerKind::Sequential:
  case SchedulerKind::Tascell:
    break;
  }
  ATC_UNREACHABLE("not a deque-based scheduler kind");
}

} // namespace detail

/// Runs \p Prob from \p Root under \p Cfg and returns the result with
/// statistics. Dispatches to the right policy instantiation for Cfg.Kind.
template <SearchProblem P>
RunResult<typename P::Result> runProblem(P &Prob,
                                         const typename P::State &Root,
                                         const SchedulerConfig &Cfg) {
  switch (Cfg.Kind) {
  case SchedulerKind::Sequential: {
    typename P::State S = Root;
    return {runSequential(Prob, S), SchedulerStats(), nullptr, nullptr};
  }
  case SchedulerKind::Tascell: {
    TascellPolicy<P> Pol(Prob, Cfg, Root);
    WorkerRuntime<TascellPolicy<P>> Rt(Pol, Cfg);
    typename P::Result Value = Rt.run();
    return {Value, Rt.stats(), Rt.traceLog(), Rt.metricsRegistry()};
  }
  case SchedulerKind::Cilk:
  case SchedulerKind::CilkSynched:
  case SchedulerKind::Cutoff:
  case SchedulerKind::AdaptiveTC:
    switch (Cfg.Deque) {
    case DequeKind::The:
      return detail::runDequeBased<P, TheDeque>(Prob, Root, Cfg);
    case DequeKind::Atomic:
      return detail::runDequeBased<P, AtomicDeque>(Prob, Root, Cfg);
    case DequeKind::ChaseLev:
      return detail::runDequeBased<P, ChaseLevDeque>(Prob, Root, Cfg);
    }
    ATC_UNREACHABLE("unhandled deque kind");
  }
  ATC_UNREACHABLE("unhandled scheduler kind");
}

} // namespace atc

#endif // ATC_CORE_RUNTIME_H
