//===- core/Scheduler.cpp - Scheduler kinds and configuration -------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cctype>

using namespace atc;

const char *atc::schedulerKindName(SchedulerKind Kind) {
  switch (Kind) {
  case SchedulerKind::Sequential:
    return "Sequential";
  case SchedulerKind::Cilk:
    return "Cilk";
  case SchedulerKind::CilkSynched:
    return "Cilk-SYNCHED";
  case SchedulerKind::Cutoff:
    return "Cutoff";
  case SchedulerKind::AdaptiveTC:
    return "AdaptiveTC";
  case SchedulerKind::Tascell:
    return "Tascell";
  }
  ATC_UNREACHABLE("unhandled scheduler kind");
}

bool atc::parseSchedulerKind(const std::string &Name, SchedulerKind &Out) {
  std::string Key;
  Key.reserve(Name.size());
  for (char C : Name) {
    if (C == '-' || C == '_')
      continue;
    Key += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  }
  if (Key == "sequential" || Key == "serial" || Key == "seq") {
    Out = SchedulerKind::Sequential;
    return true;
  }
  if (Key == "cilk") {
    Out = SchedulerKind::Cilk;
    return true;
  }
  if (Key == "cilksynched" || Key == "synched") {
    Out = SchedulerKind::CilkSynched;
    return true;
  }
  if (Key == "cutoff") {
    Out = SchedulerKind::Cutoff;
    return true;
  }
  if (Key == "adaptivetc" || Key == "atc" || Key == "adaptive") {
    Out = SchedulerKind::AdaptiveTC;
    return true;
  }
  if (Key == "tascell") {
    Out = SchedulerKind::Tascell;
    return true;
  }
  return false;
}

const char *atc::dequeKindName(DequeKind Kind) {
  switch (Kind) {
  case DequeKind::The:
    return "the";
  case DequeKind::Atomic:
    return "atomic";
  }
  ATC_UNREACHABLE("unhandled deque kind");
}

bool atc::parseDequeKind(const std::string &Name, DequeKind &Out) {
  std::string Key;
  Key.reserve(Name.size());
  for (char C : Name) {
    if (C == '-' || C == '_')
      continue;
    Key += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  }
  if (Key == "the" || Key == "mutex" || Key == "lock") {
    Out = DequeKind::The;
    return true;
  }
  if (Key == "atomic" || Key == "cas" || Key == "lockfree") {
    Out = DequeKind::Atomic;
    return true;
  }
  return false;
}

int SchedulerConfig::effectiveCutoff() const {
  if (Cutoff >= 0)
    return Cutoff;
  // ceil(log2(NumWorkers)).
  int Log = 0;
  while ((1 << Log) < NumWorkers)
    ++Log;
  return Log;
}
