//===- core/Scheduler.cpp - Scheduler kinds and configuration -------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cctype>

using namespace atc;

const char *atc::schedulerKindName(SchedulerKind Kind) {
  switch (Kind) {
  case SchedulerKind::Sequential:
    return "Sequential";
  case SchedulerKind::Cilk:
    return "Cilk";
  case SchedulerKind::CilkSynched:
    return "Cilk-SYNCHED";
  case SchedulerKind::Cutoff:
    return "Cutoff";
  case SchedulerKind::AdaptiveTC:
    return "AdaptiveTC";
  case SchedulerKind::Tascell:
    return "Tascell";
  }
  ATC_UNREACHABLE("unhandled scheduler kind");
}

bool atc::parseSchedulerKind(const std::string &Name, SchedulerKind &Out) {
  std::string Key;
  Key.reserve(Name.size());
  for (char C : Name) {
    if (C == '-' || C == '_')
      continue;
    Key += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  }
  if (Key == "sequential" || Key == "serial" || Key == "seq") {
    Out = SchedulerKind::Sequential;
    return true;
  }
  if (Key == "cilk") {
    Out = SchedulerKind::Cilk;
    return true;
  }
  if (Key == "cilksynched" || Key == "synched") {
    Out = SchedulerKind::CilkSynched;
    return true;
  }
  if (Key == "cutoff") {
    Out = SchedulerKind::Cutoff;
    return true;
  }
  if (Key == "adaptivetc" || Key == "atc" || Key == "adaptive") {
    Out = SchedulerKind::AdaptiveTC;
    return true;
  }
  if (Key == "tascell") {
    Out = SchedulerKind::Tascell;
    return true;
  }
  return false;
}

namespace {

/// Shared name normalization for the option parsers: strip "-"/"_" and
/// lowercase.
std::string normalizeKey(const std::string &Name) {
  std::string Key;
  Key.reserve(Name.size());
  for (char C : Name) {
    if (C == '-' || C == '_')
      continue;
    Key += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  }
  return Key;
}

} // namespace

const char *atc::dequeKindName(DequeKind Kind) {
  switch (Kind) {
  case DequeKind::The:
    return "the";
  case DequeKind::Atomic:
    return "atomic";
  case DequeKind::ChaseLev:
    return "chaselev";
  }
  ATC_UNREACHABLE("unhandled deque kind");
}

bool atc::parseDequeKind(const std::string &Name, DequeKind &Out) {
  std::string Key = normalizeKey(Name);
  if (Key == "the" || Key == "mutex" || Key == "lock") {
    Out = DequeKind::The;
    return true;
  }
  if (Key == "atomic" || Key == "cas" || Key == "lockfree") {
    Out = DequeKind::Atomic;
    return true;
  }
  if (Key == "chaselev" || Key == "cl" || Key == "growable") {
    Out = DequeKind::ChaseLev;
    return true;
  }
  return false;
}

const char *atc::stealPolicyName(StealPolicy Policy) {
  switch (Policy) {
  case StealPolicy::One:
    return "one";
  case StealPolicy::Half:
    return "half";
  }
  ATC_UNREACHABLE("unhandled steal policy");
}

bool atc::parseStealPolicy(const std::string &Name, StealPolicy &Out) {
  std::string Key = normalizeKey(Name);
  if (Key == "one" || Key == "single" || Key == "stealone") {
    Out = StealPolicy::One;
    return true;
  }
  if (Key == "half" || Key == "batch" || Key == "stealhalf") {
    Out = StealPolicy::Half;
    return true;
  }
  return false;
}

const char *atc::victimPolicyName(VictimPolicy Policy) {
  switch (Policy) {
  case VictimPolicy::Affinity:
    return "affinity";
  case VictimPolicy::Random:
    return "random";
  case VictimPolicy::Partitioned:
    return "partitioned";
  }
  ATC_UNREACHABLE("unhandled victim policy");
}

bool atc::parseVictimPolicy(const std::string &Name, VictimPolicy &Out) {
  std::string Key = normalizeKey(Name);
  if (Key == "affinity" || Key == "last" || Key == "lastvictim") {
    Out = VictimPolicy::Affinity;
    return true;
  }
  if (Key == "random" || Key == "rand" || Key == "uniform") {
    Out = VictimPolicy::Random;
    return true;
  }
  if (Key == "partitioned" || Key == "near" || Key == "group" ||
      Key == "nearfirst") {
    Out = VictimPolicy::Partitioned;
    return true;
  }
  return false;
}

int SchedulerConfig::effectiveCutoff() const {
  if (Cutoff >= 0)
    return Cutoff;
  // ceil(log2(NumWorkers)).
  int Log = 0;
  while ((1 << Log) < NumWorkers)
    ++Log;
  return Log;
}
