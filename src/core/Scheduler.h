//===- core/Scheduler.h - Scheduler kinds and configuration -----*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduler kinds and the shared configuration structure. The kinds map
/// one-to-one onto the systems the paper evaluates (Section 5):
///
///  * Cilk         - work-first work stealing; every spawn allocates a task
///                   frame and a fresh workspace copy (malloc + memcpy).
///  * CilkSynched  - Cilk using the SYNCHED variable to reuse workspace
///                   memory; copies still happen ("the time overhead is not
///                   reduced") but allocation is pooled.
///  * Cutoff       - tasks only above a fixed recursion depth, plain calls
///                   below, no adaptation (the Cutoff-programmer /
///                   Cutoff-library strategies of Figure 9).
///  * AdaptiveTC   - the paper's contribution: five-version execution with
///                   fake tasks, special tasks and need_task signalling.
///  * Tascell      - backtracking-based load balancing (separate engine,
///                   see kernel/TascellPolicy.h).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_SCHEDULER_H
#define ATC_CORE_SCHEDULER_H

#include <cstdint>
#include <string>

namespace atc {

class MetricsRegistry;
class WorkerExecutor;

/// The scheduling systems reproduced from the paper.
enum class SchedulerKind {
  Sequential,
  Cilk,
  CilkSynched,
  Cutoff,
  AdaptiveTC,
  Tascell,
};

/// Returns the display name used in tables ("Cilk-SYNCHED", ...).
const char *schedulerKindName(SchedulerKind Kind);

/// Parses a scheduler name (case-insensitive, "-"/"_" interchangeable).
/// Returns true on success.
bool parseSchedulerKind(const std::string &Name, SchedulerKind &Out);

/// The ready-deque implementation used by the deque-based engines.
///
///  * The      - the paper's simplified Cilk THE-protocol deque (Fig. 3):
///               thieves serialize on the victim's mutex. The
///               paper-fidelity baseline and the default.
///  * Atomic   - lock-free Chase-Lev-style deque with CAS-on-Head steals,
///               extended with the special-task protocol (AtomicDeque.h).
///  * ChaseLev - the same lock-free protocol over a growable ring
///               (ChaseLevDeque.h): never overflows, DequeCapacity is
///               only the initial size. The fastest steal path.
enum class DequeKind {
  The,
  Atomic,
  ChaseLev,
};

/// Returns the display name ("the" / "atomic" / "chaselev").
const char *dequeKindName(DequeKind Kind);

/// Parses a deque kind name (case-insensitive). Returns true on success.
bool parseDequeKind(const std::string &Name, DequeKind &Out);

/// How much work one successful steal transfers (deque-based engines).
///
///  * One  - the classic continuation steal: one frame per acquire (the
///           paper's protocol and the default).
///  * Half - batch acquisition: the thief keeps claiming frames after the
///           first — up to half of the victim's observed depth, bounded
///           by SchedulerConfig::MaxStolenNum — and stashes the surplus
///           for its next acquires. Each frame is still claimed by an
///           individual CAS / lock round (a wider bulk claim would race
///           with the owner's pop arbitration), which is why the
///           lock-free deques make batching cheap and TheDeque pays a
///           mutex round per extra frame.
enum class StealPolicy {
  One,
  Half,
};

/// Returns the display name ("one" / "half").
const char *stealPolicyName(StealPolicy Policy);

/// Parses a steal policy name (case-insensitive). Returns true on
/// success.
bool parseStealPolicy(const std::string &Name, StealPolicy &Out);

/// Victim ordering for the kernel's steal loop (all scheduler kinds).
///
///  * Affinity    - retry the last successful victim first, random
///                  otherwise (the default; locality of work chains).
///  * Random      - uniform random victim every attempt (the textbook
///                  work-stealing baseline).
///  * Partitioned - near-first: pick within the thief's worker group
///                  (VictimGroupSize consecutive ids) until a failure
///                  streak shows the group has run dry, then go global —
///                  the localized work stealing of Suksompong et al.
enum class VictimPolicy {
  Affinity,
  Random,
  Partitioned,
};

/// Returns the display name ("affinity" / "random" / "partitioned").
const char *victimPolicyName(VictimPolicy Policy);

/// Parses a victim policy name (case-insensitive). Returns true on
/// success.
bool parseVictimPolicy(const std::string &Name, VictimPolicy &Out);

/// Shared scheduler configuration.
struct SchedulerConfig {
  SchedulerKind Kind = SchedulerKind::AdaptiveTC;

  /// Number of worker threads ("the number of active threads is capped at
  /// N").
  int NumWorkers = 1;

  /// Capacity of each worker's deque, in entries. For the fixed-array
  /// kinds (The, Atomic) this is a hard limit — tryPush beyond it reports
  /// overflow and the spawn degrades to a plain call. For ChaseLev it is
  /// only the *initial* ring size (rounded up to a power of two); the
  /// ring grows geometrically and never overflows.
  int DequeCapacity = 8192;

  /// Per-worker slab-arena capacity, in chunks, for the frame / workspace
  /// / donation allocators (support/Arena.h). Allocations beyond the cap
  /// fall back to the heap and are counted in SchedulerStats::
  /// PoolOverflows when freed.
  int PoolCap = 4096;

  /// Ready-deque implementation. The THE-protocol deque is the default
  /// (paper fidelity); Atomic and ChaseLev select the lock-free steal
  /// path (ChaseLev additionally grows instead of overflowing).
  DequeKind Deque = DequeKind::The;

  /// Steal transfer width for the deque-based engines: steal-one (the
  /// paper's protocol, default) or steal-half batch acquisition. Ignored
  /// by Sequential and Tascell (which donates half by construction).
  StealPolicy Steal = StealPolicy::One;

  /// Victim ordering for the kernel's steal loop; applies to every
  /// scheduler kind (the kernel owns victim selection).
  VictimPolicy Victim = VictimPolicy::Affinity;

  /// Worker-group size for VictimPolicy::Partitioned: workers with ids
  /// [k*G, (k+1)*G) form a locality group that near-first stealing
  /// prefers.
  int VictimGroupSize = 4;

  /// Task-creation cut-off. -1 selects the paper's default of log2(N)
  /// ("the cut-off ... is initially set to log N by the runtime system").
  /// For Kind == Cutoff this is the programmer-specified depth.
  int Cutoff = -1;

  /// Failed-steal threshold beyond which a thief sets the victim's
  /// need_task flag. Paper default: 20.
  int MaxStolenNum = 20;

  /// Seed for the deterministic victim-selection streams.
  std::uint64_t Seed = 0x5eedULL;

  /// Arm the event tracer (src/trace) for this run: each worker gets a
  /// fixed-size ring buffer and the run's RunResult carries the TraceLog
  /// out for export. Requires a build with ATC_TRACE=ON (the default);
  /// when tracing is compiled out this flag is ignored.
  bool Trace = false;

  /// Per-worker trace ring capacity, in events (16 bytes each). On
  /// overflow the ring keeps the newest events and counts the dropped
  /// oldest ones. Default: 1M events = 16 MiB per worker.
  int TraceCap = 1 << 20;

  /// Arm the live-metrics layer (src/metrics) for this run: each worker
  /// gets a cache-line-isolated metric cell and the run's RunResult
  /// carries the MetricsRegistry out for exposition. Requires a build
  /// with ATC_METRICS=ON (the default); when metrics are compiled out
  /// this flag is ignored.
  bool Metrics = false;

  /// Arm the online tuning layer (src/core/tuning) for this run: each
  /// worker gets a TuningController that adapts the cut-off depth,
  /// MaxStolenNum and steal-backoff bound from its own live metrics
  /// (Cutoff / MaxStolenNum above become *initial* values). Implies
  /// Metrics — the controller's inputs are the metric cells, so arming
  /// tuning arms them too. Requires a build with ATC_TUNING=ON (and
  /// ATC_METRICS=ON); when tuning is compiled out this flag is ignored.
  bool Tuning = false;

  /// Externally owned registry to publish into instead of a run-private
  /// one (implies Metrics when non-null). This is how a CLI lets a
  /// background MetricsSampler or atc_top watch the run live: pre-size
  /// the registry to NumWorkers, start the sampler, then run. The
  /// runtime resets matching-size registries cell-in-place (wait-free),
  /// so concurrent samplers stay valid.
  MetricsRegistry *MetricsSink = nullptr;

  /// Externally owned execution strategy for the run's worker loops
  /// (core/Executor.h), or null for the historical behaviour: spawn one
  /// thread per worker inside run() and join them after. Point this at a
  /// SchedulerPool to execute many runs back-to-back on the same OS
  /// threads — the server layer's whole premise. The executor must
  /// outlive every run against this config, and NumWorkers must not
  /// exceed its capacity().
  WorkerExecutor *Executor = nullptr;

  /// Resolves the effective cut-off depth: Cutoff if non-negative, else
  /// ceil(log2(NumWorkers)).
  int effectiveCutoff() const;
};

} // namespace atc

#endif // ATC_CORE_SCHEDULER_H
