//===- core/SchedulerPool.cpp - Persistent worker-thread pool -------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/SchedulerPool.h"

#include <cassert>

using namespace atc;

SchedulerPool::SchedulerPool(int NumThreads) {
  assert(NumThreads >= 1 && "pool needs at least one thread");
  Threads.reserve(static_cast<std::size_t>(NumThreads));
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([this, I] { threadMain(I); });
}

SchedulerPool::~SchedulerPool() {
  // Serialize behind any in-flight dispatch() (which holds DispatchLock
  // until its whole epoch completes): otherwise a worker that has not
  // yet consumed a pending epoch would see ShuttingDown first and exit
  // without running its body, leaving the dispatcher blocked on JobDone
  // forever. This is what makes the "outstanding dispatch() calls
  // complete first" contract in the header true.
  std::lock_guard<std::mutex> Serial(DispatchLock);
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void SchedulerPool::dispatch(int NumWorkers,
                             const std::function<void(int)> &JobBody) {
  assert(NumWorkers >= 1 && NumWorkers <= size() &&
         "worker count exceeds pool size");
  // One job at a time: the threads form a single team and the epoch slot
  // holds one body.
  std::lock_guard<std::mutex> Serial(DispatchLock);
  std::unique_lock<std::mutex> Guard(Lock);
  ++Epoch;
  ActiveWorkers = NumWorkers;
  Remaining = NumWorkers;
  Body = &JobBody;
  const std::uint64_t This = Epoch;
  WakeWorkers.notify_all();
  JobDone.wait(Guard, [&] { return Completed >= This; });
  Body = nullptr;
}

void SchedulerPool::threadMain(int Id) {
  std::uint64_t SeenEpoch = 0;
  for (;;) {
    const std::function<void(int)> *MyBody = nullptr;
    {
      std::unique_lock<std::mutex> Guard(Lock);
      WakeWorkers.wait(Guard, [&] {
        return ShuttingDown || (Epoch != SeenEpoch && Id < ActiveWorkers);
      });
      if (ShuttingDown)
        return;
      SeenEpoch = Epoch;
      MyBody = Body;
    }
    (*MyBody)(Id);
    {
      std::lock_guard<std::mutex> Guard(Lock);
      if (--Remaining == 0) {
        ++Completed;
        JobDone.notify_all();
      }
    }
  }
}

std::uint64_t SchedulerPool::jobsRun() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Completed;
}

std::vector<std::thread::id> SchedulerPool::threadIds() const {
  std::vector<std::thread::id> Ids;
  Ids.reserve(Threads.size());
  for (const std::thread &T : Threads)
    Ids.push_back(T.get_id());
  return Ids;
}
