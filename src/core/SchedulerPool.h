//===- core/SchedulerPool.h - Persistent worker-thread pool -----*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent worker-thread pool implementing WorkerExecutor: the
/// scheduler-as-a-service substrate. Threads are created once, park on a
/// condition variable between jobs, and execute the worker loops of many
/// back-to-back runs without ever being respawned — point
/// SchedulerConfig::Executor at a pool and every runProblem() against
/// that config reuses its threads.
///
/// \code
///   atc::SchedulerPool Pool(8);
///   atc::SchedulerConfig Cfg;
///   Cfg.NumWorkers = 8;
///   Cfg.Executor = &Pool;
///   for (Job &J : Jobs)                  // no thread churn across jobs
///     auto R = atc::runProblem(Prob(J), Root(J), Cfg);
/// \endcode
///
/// One job at a time: dispatch() serializes callers on an internal mutex
/// (the pool's threads are a single team; two concurrent jobs would
/// deadlock each other's barriers). Queueing and admission control live a
/// layer up, in server/JobQueue.h.
///
/// A job may use fewer workers than the pool has threads: dispatch(N)
/// with N < size() wakes only threads [0, N) and leaves the rest parked,
/// so a mixed stream of 1-worker and 8-worker jobs shares one pool.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_SCHEDULERPOOL_H
#define ATC_CORE_SCHEDULERPOOL_H

#include "core/Executor.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace atc {

/// Persistent worker-thread pool; see the file comment.
class SchedulerPool : public WorkerExecutor {
public:
  /// Creates \p NumThreads parked threads (at least 1).
  explicit SchedulerPool(int NumThreads);

  /// Joins every thread. Outstanding dispatch() calls complete first.
  ~SchedulerPool() override;

  SchedulerPool(const SchedulerPool &) = delete;
  SchedulerPool &operator=(const SchedulerPool &) = delete;

  /// Runs Body(0..NumWorkers-1) on the pool's threads (thread i runs
  /// worker i) and returns when all are done. NumWorkers must be in
  /// [1, size()]. Thread-safe; concurrent callers serialize.
  void dispatch(int NumWorkers,
                const std::function<void(int)> &Body) override;

  int capacity() const override { return size(); }

  int size() const { return static_cast<int>(Threads.size()); }

  /// Jobs dispatched so far (epochs completed).
  std::uint64_t jobsRun() const;

  /// The pool threads' ids, index-aligned with worker ids. Stable for
  /// the pool's whole lifetime — the reuse tests assert exactly this.
  std::vector<std::thread::id> threadIds() const;

private:
  void threadMain(int Id);

  std::vector<std::thread> Threads;

  mutable std::mutex Lock;
  std::condition_variable WakeWorkers; ///< New epoch or shutdown.
  std::condition_variable JobDone;     ///< Last worker of an epoch.
  // Job slot, guarded by Lock. Epoch increments publish a new job; each
  // thread tracks the last epoch it ran so a wakeup is never consumed
  // twice.
  std::uint64_t Epoch = 0;
  std::uint64_t Completed = 0; ///< Epochs fully finished.
  int ActiveWorkers = 0;       ///< Workers the current epoch uses.
  int Remaining = 0;           ///< Workers still running this epoch.
  const std::function<void(int)> *Body = nullptr;
  bool ShuttingDown = false;

  std::mutex DispatchLock; ///< Serializes whole dispatch() calls.
};

} // namespace atc

#endif // ATC_CORE_SCHEDULERPOOL_H
