//===- core/SchedulerStats.cpp - Scheduler instrumentation ----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/SchedulerStats.h"

#include <algorithm>
#include <cstdio>

using namespace atc;

SchedulerStats &SchedulerStats::operator+=(const SchedulerStats &Other) {
  TasksCreated += Other.TasksCreated;
  FakeTasks += Other.FakeTasks;
  SpecialTasks += Other.SpecialTasks;
  Spawns += Other.Spawns;
  StealAttempts += Other.StealAttempts;
  Steals += Other.Steals;
  StealFails += Other.StealFails;
  EmptyProbes += Other.EmptyProbes;
  AffinityHits += Other.AffinityHits;
  CasRetries += Other.CasRetries;
  LockAcquires += Other.LockAcquires;
  HelpSteals += Other.HelpSteals;
  WorkspaceCopies += Other.WorkspaceCopies;
  CopiedBytes += Other.CopiedBytes;
  Suspensions += Other.Suspensions;
  Deposits += Other.Deposits;
  DequeOverflows += Other.DequeOverflows;
  PoolOverflows += Other.PoolOverflows;
  Polls += Other.Polls;
  Requests += Other.Requests;
  RequestsDenied += Other.RequestsDenied;
  WaitChildrenNs += Other.WaitChildrenNs;
  StealWaitNs += Other.StealWaitNs;
  BacktrackSteps += Other.BacktrackSteps;
  DequeHighWater = std::max(DequeHighWater, Other.DequeHighWater);
  ArenaHighWater = std::max(ArenaHighWater, Other.ArenaHighWater);
  return *this;
}

std::string SchedulerStats::summary() const {
  char Buf[768];
  std::snprintf(
      Buf, sizeof(Buf),
      "tasks=%llu fake=%llu special=%llu spawns=%llu "
      "steal_attempts=%llu steals=%llu "
      "steal_fails=%llu empty_probes=%llu affinity_hits=%llu "
      "cas_retries=%llu lock_acquires=%llu help_steals=%llu "
      "copies=%llu copied_bytes=%llu suspensions=%llu "
      "overflows=%llu pool_overflows=%llu deque_hw=%d arena_hw=%d "
      "wait_children_ms=%.2f steal_wait_ms=%.2f",
      static_cast<unsigned long long>(TasksCreated),
      static_cast<unsigned long long>(FakeTasks),
      static_cast<unsigned long long>(SpecialTasks),
      static_cast<unsigned long long>(Spawns),
      static_cast<unsigned long long>(StealAttempts),
      static_cast<unsigned long long>(Steals),
      static_cast<unsigned long long>(StealFails),
      static_cast<unsigned long long>(EmptyProbes),
      static_cast<unsigned long long>(AffinityHits),
      static_cast<unsigned long long>(CasRetries),
      static_cast<unsigned long long>(LockAcquires),
      static_cast<unsigned long long>(HelpSteals),
      static_cast<unsigned long long>(WorkspaceCopies),
      static_cast<unsigned long long>(CopiedBytes),
      static_cast<unsigned long long>(Suspensions),
      static_cast<unsigned long long>(DequeOverflows),
      static_cast<unsigned long long>(PoolOverflows), DequeHighWater,
      ArenaHighWater, static_cast<double>(WaitChildrenNs) * 1e-6,
      static_cast<double>(StealWaitNs) * 1e-6);
  return Buf;
}
