//===- core/SchedulerStats.cpp - Scheduler instrumentation ----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/SchedulerStats.h"

#include <algorithm>
#include <cstdio>

using namespace atc;

SchedulerStats &SchedulerStats::operator+=(const SchedulerStats &Other) {
#define ATC_STAT_COUNTER(Name, PromName, Help) Name += Other.Name;
#define ATC_STAT_GAUGE(Name, PromName, Help)                                   \
  Name = std::max(Name, Other.Name);
#include "core/SchedulerStats.def"
  return *this;
}

std::string SchedulerStats::summary() const {
  char Buf[768];
  std::snprintf(
      Buf, sizeof(Buf),
      "tasks=%llu fake=%llu special=%llu spawns=%llu "
      "steal_attempts=%llu steals=%llu "
      "steal_fails=%llu empty_probes=%llu affinity_hits=%llu "
      "cas_retries=%llu lock_acquires=%llu help_steals=%llu "
      "batch_steals=%llu copies=%llu copied_bytes=%llu suspensions=%llu "
      "overflows=%llu pool_overflows=%llu deque_hw=%d arena_hw=%d "
      "wait_children_ms=%.2f steal_wait_ms=%.2f",
      static_cast<unsigned long long>(TasksCreated),
      static_cast<unsigned long long>(FakeTasks),
      static_cast<unsigned long long>(SpecialTasks),
      static_cast<unsigned long long>(Spawns),
      static_cast<unsigned long long>(StealAttempts),
      static_cast<unsigned long long>(Steals),
      static_cast<unsigned long long>(StealFails),
      static_cast<unsigned long long>(EmptyProbes),
      static_cast<unsigned long long>(AffinityHits),
      static_cast<unsigned long long>(CasRetries),
      static_cast<unsigned long long>(LockAcquires),
      static_cast<unsigned long long>(HelpSteals),
      static_cast<unsigned long long>(BatchSteals),
      static_cast<unsigned long long>(WorkspaceCopies),
      static_cast<unsigned long long>(CopiedBytes),
      static_cast<unsigned long long>(Suspensions),
      static_cast<unsigned long long>(DequeOverflows),
      static_cast<unsigned long long>(PoolOverflows), DequeHighWater,
      ArenaHighWater, static_cast<double>(WaitChildrenNs) * 1e-6,
      static_cast<double>(StealWaitNs) * 1e-6);
  return Buf;
}

std::string SchedulerStats::json() const {
  std::string Out = "{";
  bool First = true;
  for (unsigned I = 0; I != NumStatFields; ++I) {
    auto F = static_cast<StatField>(I);
    if (!First)
      Out += ", ";
    First = false;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "\"%s\": %llu", statFieldPromName(F),
                  static_cast<unsigned long long>(statFieldValue(*this, F)));
    Out += Buf;
  }
  Out += "}";
  return Out;
}

std::uint64_t atc::statFieldValue(const SchedulerStats &S, StatField F) {
  switch (F) {
#define ATC_STAT(Name, PromName, Help)                                         \
  case StatField::Name:                                                        \
    return static_cast<std::uint64_t>(S.Name);
#include "core/SchedulerStats.def"
  }
  return 0;
}

void atc::setStatFieldValue(SchedulerStats &S, StatField F, std::uint64_t V) {
  switch (F) {
#define ATC_STAT_COUNTER(Name, PromName, Help)                                 \
  case StatField::Name:                                                        \
    S.Name = V;                                                                \
    return;
#define ATC_STAT_GAUGE(Name, PromName, Help)                                   \
  case StatField::Name:                                                        \
    S.Name = static_cast<int>(V);                                              \
    return;
#include "core/SchedulerStats.def"
  }
}

const char *atc::statFieldName(StatField F) {
  switch (F) {
#define ATC_STAT(Name, PromName, Help)                                         \
  case StatField::Name:                                                        \
    return #Name;
#include "core/SchedulerStats.def"
  }
  return "?";
}

const char *atc::statFieldPromName(StatField F) {
  switch (F) {
#define ATC_STAT(Name, PromName, Help)                                         \
  case StatField::Name:                                                        \
    return #PromName;
#include "core/SchedulerStats.def"
  }
  return "?";
}

const char *atc::statFieldHelp(StatField F) {
  switch (F) {
#define ATC_STAT(Name, PromName, Help)                                         \
  case StatField::Name:                                                        \
    return Help;
#include "core/SchedulerStats.def"
  }
  return "";
}

bool atc::statFieldIsGauge(StatField F) {
  switch (F) {
#define ATC_STAT_GAUGE(Name, PromName, Help)                                   \
  case StatField::Name:                                                        \
    return true;
#include "core/SchedulerStats.def"
  default:
    return false;
  }
}
