//===- core/SchedulerStats.h - Scheduler instrumentation --------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation counters for the schedulers. These are what the paper's
/// Section 5.2 overhead breakdown reports: task creation / deque
/// management, workspace copying, steals, waiting for children, polling.
/// Counters are kept per worker (no atomics on hot paths) and aggregated
/// after a run.
///
/// The field list itself lives in SchedulerStats.def (an X-macro) so the
/// aggregation, the JSON dump, and the metrics mirror in src/metrics all
/// expand the same list; this header keeps explicit member declarations
/// so the doc comments and IDE navigation stay first-class.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_SCHEDULERSTATS_H
#define ATC_CORE_SCHEDULERSTATS_H

#include "support/Compiler.h"

#include <cstdint>
#include <string>

namespace atc {

/// Per-run counters. All counts are totals across workers after
/// aggregation.
///
/// The struct is cache-line-aligned and padded (see the static_assert
/// below): per-worker instances live inside WorkerContextT next to fields
/// written by thieves (NeedTask, StolenNum), and an unpadded stats block
/// would false-share its hot owner-side counters with those remote writes.
struct alignas(ATC_CACHE_LINE_SIZE) SchedulerStats {
  std::uint64_t TasksCreated = 0;    ///< Real task frames allocated.
  std::uint64_t FakeTasks = 0;       ///< Plain recursive calls (no frame).
  std::uint64_t SpecialTasks = 0;    ///< AdaptiveTC special tasks created.
  std::uint64_t Spawns = 0;          ///< Deque push/pop pairs performed.
  std::uint64_t StealAttempts = 0;   ///< Acquire attempts by idle workers
                                     ///  (kernel-counted for every kind;
                                     ///  = Steals + StealFails except for
                                     ///  attempts abandoned at termination).
  std::uint64_t Steals = 0;          ///< Successful steals.
  std::uint64_t StealFails = 0;      ///< Failed steal attempts.
  std::uint64_t EmptyProbes = 0;     ///< Steal probes skipped: victim empty.
  std::uint64_t AffinityHits = 0;    ///< Steals from the remembered victim.
  std::uint64_t CasRetries = 0;      ///< Lost steal CASes (atomic deque).
  std::uint64_t LockAcquires = 0;    ///< Deque protocol-lock acquisitions.
  std::uint64_t HelpSteals = 0;      ///< Steals run while waiting at a sync.
  std::uint64_t BatchSteals = 0;     ///< Extra frames claimed by steal-half
                                     ///  batches beyond the first (each later
                                     ///  drains as a stash-hit Steal).
  std::uint64_t WorkspaceCopies = 0; ///< Workspace (taskprivate) copies.
  std::uint64_t CopiedBytes = 0;     ///< Bytes memcpy'd for workspaces.
  std::uint64_t Suspensions = 0;     ///< Tasks suspended at a sync point.
  std::uint64_t Deposits = 0;        ///< Results deposited into frames.
  std::uint64_t DequeOverflows = 0;  ///< Rejected pushes (fixed array full).
  std::uint64_t PoolOverflows = 0;   ///< Arena cap-overflow frees (heap path).
  std::uint64_t Polls = 0;           ///< need_task / request-mailbox polls.
  std::uint64_t Requests = 0;        ///< Tascell task requests sent.
  std::uint64_t RequestsDenied = 0;  ///< Tascell requests answered "none".
  std::uint64_t WaitChildrenNs = 0;  ///< Time blocked waiting for children.
  std::uint64_t StealWaitNs = 0;     ///< Time spent idle trying to steal.
  std::uint64_t BacktrackSteps = 0;  ///< Tascell undo/redo reconstruction.
  int DequeHighWater = 0;            ///< Max tail index over all deques.
  int ArenaHighWater = 0;            ///< Max live slab chunks in any arena.

  /// Accumulates \p Other into this.
  SchedulerStats &operator+=(const SchedulerStats &Other);

  /// Returns every field to its zero state — the explicit epoch boundary
  /// for consumers that aggregate across back-to-back runs (the server
  /// resets its roll-up between reporting windows; per-run isolation
  /// itself needs nothing, WorkerRuntime rebuilds worker stats each run).
  void reset() { *this = SchedulerStats(); }

  /// Renders a compact human-readable summary.
  std::string summary() const;

  /// Renders all fields as a flat JSON object keyed by the Prometheus
  /// base name from SchedulerStats.def, e.g. {"tasks_created": 42, ...}.
  /// Machine-readable counterpart of summary() for --stats-json.
  std::string json() const;
};

static_assert(sizeof(SchedulerStats) % ATC_CACHE_LINE_SIZE == 0,
              "SchedulerStats must pad out to whole cache lines");

/// One enumerator per SchedulerStats field, in declaration order. This is
/// the index space the metrics layer uses for its atomic per-worker
/// mirror of the stats block (see metrics/Metrics.h).
enum class StatField : unsigned {
#define ATC_STAT(Name, PromName, Help) Name,
#include "core/SchedulerStats.def"
};

/// Number of SchedulerStats fields (counters + gauges).
inline constexpr unsigned NumStatFields = []() constexpr {
  unsigned N = 0;
#define ATC_STAT(Name, PromName, Help) ++N;
#include "core/SchedulerStats.def"
  return N;
}();

/// Reads the field \p F of \p S as a uint64 (gauges widened from int).
std::uint64_t statFieldValue(const SchedulerStats &S, StatField F);

/// Stores \p V into field \p F of \p S (gauges narrowed to int).
void setStatFieldValue(SchedulerStats &S, StatField F, std::uint64_t V);

/// The C++ member name, e.g. "TasksCreated".
const char *statFieldName(StatField F);

/// The Prometheus base name, e.g. "tasks_created" (the exposition layer
/// prefixes "atc_" and suffixes "_total" for counters).
const char *statFieldPromName(StatField F);

/// One-line help string for the field (Prometheus # HELP text).
const char *statFieldHelp(StatField F);

/// True for high-water-mark gauges (aggregated by max, exposed without a
/// _total suffix); false for monotonic counters (aggregated by sum).
bool statFieldIsGauge(StatField F);

} // namespace atc

#endif // ATC_CORE_SCHEDULERSTATS_H
