//===- core/TascellScheduler.h - Backtracking-based scheduler ---*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch reproduction of Tascell's backtracking-based load
/// balancing (Hiraishi et al., PPoPP'09), the paper's second baseline.
/// Architecture, per the paper's description:
///
///  * "the task is stored in a thread's execution stack instead of in a
///    d-e-que": each worker executes plain recursion over a live
///    workspace, maintaining a shadow stack of choice points (open loop
///    ranges), with no task frames and no workspace copies on the fast
///    path.
///  * "When a thread receives a task request from an idle thread, it
///    backtracks through the chain of nested function calls, and creates
///    a task for the requesting thread": requests arrive in a mailbox
///    polled at every node entry; the victim picks the *oldest* choice
///    point with untried choices, temporarily backtracks (undoing the
///    applied choices down to that level) to reconstruct the ancestor
///    workspace, copies it into a donation, re-applies the choices, and
///    resumes — this is where workspace copying is "delayed as much as
///    possible".
///  * "Tascell cannot suspend a waiting task": when the recursion unwinds
///    to a choice point with outstanding donations, the worker blocks
///    (polling requests and sleeping) until the donated results arrive —
///    the wait_children overhead of the paper's Figure 7.
///  * Donations hand over half of the untried choices of the split level
///    ("a parallel-for loop construct is implemented by spawning a half
///    of the tasks for the requested threads").
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_TASCELLSCHEDULER_H
#define ATC_CORE_TASCELLSCHEDULER_H

#include "core/Backoff.h"
#include "core/Problem.h"
#include "core/Scheduler.h"
#include "core/SchedulerStats.h"
#include "support/Arena.h"
#include "support/Prng.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace atc {

/// Backtracking-based work distribution for problem type \p P.
template <SearchProblem P> class TascellScheduler {
public:
  using State = typename P::State;
  using Result = typename P::Result;

  TascellScheduler(P &Prob, SchedulerConfig Cfg) : Prob(Prob), Cfg(Cfg) {
    assert(Cfg.NumWorkers >= 1 && "need at least one worker");
  }

  /// Executes the computation rooted at \p Root and returns its result.
  Result run(const State &Root);

  /// Aggregated statistics of the last run().
  const SchedulerStats &stats() const { return Total; }

private:
  /// A task donated to a requester: a reconstructed ancestor workspace
  /// plus an untried choice range of that node. Allocated and freed by
  /// the *victim* (donations are handed out and reaped on the victim's
  /// side), so each worker recycles them through its own ObjectArena with
  /// no cross-thread frees. St must stay the first member: the arena
  /// freelist link lives in its leading bytes while the donation is free,
  /// and respond()'s workspace copy rewrites them (bytes past the live
  /// prefix are dead by the liveBytes contract).
  struct Donation {
    State St;
    int Depth;
    int ChoiceBegin;
    int ChoiceEnd;
    std::atomic<bool> DoneFlag{false};
    Result Value{};
  };

  /// Sentinel response meaning "no task available".
  Donation *denySentinel() { return reinterpret_cast<Donation *>(1); }

  /// One open loop level on a worker's shadow stack.
  struct ChoicePoint {
    int Depth;
    int CurChoice = -1;
    bool Applied = false;
    int NextUntried;
    int NumChoices;
    std::vector<Donation *> Outstanding;
  };

  /// Per-worker Tascell state. Cache-line aligned, with each
  /// cross-thread field group (StackDepth probe, mailbox, response slot)
  /// on its own line so idle workers' probing and posting never
  /// invalidates the lines the owner's recursion is hot on (Stack, Live,
  /// Stats).
  struct alignas(ATC_CACHE_LINE_SIZE) TWorker {
    TWorker(int Id, std::uint64_t Seed, int PoolCap)
        : Id(Id), Rng(Seed), Donations(PoolCap) {}

    const int Id;
    SplitMix64 Rng;
    std::vector<ChoicePoint> Stack;
    State Live;

    /// Last victim a request succeeded against (affinity); -1 when unset.
    /// Owner-only.
    int LastVictim = -1;

    /// Recycler for this worker's outgoing donations (victim-side alloc
    /// and free — no remote path needed).
    ObjectArena<Donation> Donations;

    /// Batched hot counters (owner-only), flushed into Stats at steal /
    /// donation boundaries and at the end of the run.
    std::uint64_t LocalNodes = 0; ///< runNode entries (-> Stats.FakeTasks).
    std::uint64_t LocalPolls = 0; ///< Mailbox polls (-> Stats.Polls).

    void flushLocalCounters() {
      Stats.FakeTasks += LocalNodes;
      Stats.Polls += LocalPolls;
      LocalNodes = 0;
      LocalPolls = 0;
    }

    /// Published copy of Stack.size(), so idle workers can probe "does
    /// this victim have any choice points at all?" without posting a
    /// request into its mailbox (the Tascell analogue of the deque
    /// emptiness probe).
    alignas(ATC_CACHE_LINE_SIZE) std::atomic<int> StackDepth{0};

    alignas(ATC_CACHE_LINE_SIZE) std::mutex MailLock;
    std::vector<int> Requests;          ///< Requester worker ids.
    std::atomic<int> PendingRequests{0};

    alignas(ATC_CACHE_LINE_SIZE) std::atomic<Donation *> Response{nullptr};

    SchedulerStats Stats;
  };

  void workerMain(int Id);
  Result runNode(TWorker &W, int Depth);
  Result runChoices(TWorker &W, int Depth);
  void waitOutstanding(TWorker &W, std::size_t CPIndex, Result &Acc);
  void pollRequests(TWorker &W);
  void respond(TWorker &W, int Requester);
  void requestLoop(TWorker &W);

  P &Prob;
  SchedulerConfig Cfg;
  std::vector<std::unique_ptr<TWorker>> Workers;
  std::atomic<bool> Done{false};
  Result FinalResult{};
  SchedulerStats Total;
};

//===----------------------------------------------------------------------===//
// Implementation
//===----------------------------------------------------------------------===//

template <SearchProblem P>
typename P::Result TascellScheduler<P>::run(const State &Root) {
  Done.store(false, std::memory_order_relaxed);
  Workers.clear();
  for (int I = 0; I < Cfg.NumWorkers; ++I)
    Workers.push_back(std::make_unique<TWorker>(
        I, Cfg.Seed + static_cast<std::uint64_t>(I), Cfg.PoolCap));
  Workers[0]->Live = Root;

  if (Cfg.NumWorkers == 1) {
    FinalResult = runNode(*Workers[0], 0);
    Workers[0]->flushLocalCounters();
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(static_cast<std::size_t>(Cfg.NumWorkers));
    for (int I = 0; I < Cfg.NumWorkers; ++I)
      Threads.emplace_back([this, I] { workerMain(I); });
    for (std::thread &T : Threads)
      T.join();
  }

  Total = SchedulerStats();
  for (auto &W : Workers) {
    Total += W->Stats;
    Total.PoolOverflows += W->Donations.stats().OverflowFrees +
                           W->Donations.remoteOverflowFrees();
    Total.ArenaHighWater =
        std::max(Total.ArenaHighWater, W->Donations.stats().HighWater);
  }
  return FinalResult;
}

template <SearchProblem P> void TascellScheduler<P>::workerMain(int Id) {
  TWorker &W = *Workers[static_cast<std::size_t>(Id)];
  if (Id == 0) {
    FinalResult = runNode(W, 0);
    W.flushLocalCounters();
    Done.store(true, std::memory_order_release);
    return;
  }
  requestLoop(W);
  W.flushLocalCounters();
}

template <SearchProblem P>
typename P::Result TascellScheduler<P>::runNode(TWorker &W, int Depth) {
  // Tascell polls for task requests at every node entry.
  pollRequests(W);
  if (Prob.isLeaf(W.Live, Depth))
    return Prob.leafResult(W.Live, Depth);

  ChoicePoint CP;
  CP.Depth = Depth;
  CP.NextUntried = 0;
  CP.NumChoices = Prob.numChoices(W.Live, Depth);
  W.Stack.push_back(std::move(CP));
  W.StackDepth.store(static_cast<int>(W.Stack.size()),
                     std::memory_order_relaxed);
  ++W.LocalNodes; // nested-function bookkeeping, no task frame
  return runChoices(W, Depth);
}

template <SearchProblem P>
typename P::Result TascellScheduler<P>::runChoices(TWorker &W, int Depth) {
  const std::size_t MyIdx = W.Stack.size() - 1;
  Result Acc{};
  for (;;) {
    ChoicePoint &CP = W.Stack[MyIdx];
    int K = CP.NextUntried;
    if (K >= CP.NumChoices)
      break;
    CP.NextUntried = K + 1;
    CP.CurChoice = K;
    if (!Prob.applyChoice(W.Live, Depth, K))
      continue;
    CP.Applied = true;
    Acc += runNode(W, Depth + 1);
    Prob.undoChoice(W.Live, Depth, K);
    W.Stack[MyIdx].Applied = false; // re-reference: deeper pushes may move
  }
  waitOutstanding(W, MyIdx, Acc);
  W.Stack.pop_back();
  W.StackDepth.store(static_cast<int>(W.Stack.size()),
                     std::memory_order_relaxed);
  return Acc;
}

template <SearchProblem P>
void TascellScheduler<P>::waitOutstanding(TWorker &W, std::size_t CPIndex,
                                          Result &Acc) {
  ChoicePoint &CP = W.Stack[CPIndex];
  if (CP.Outstanding.empty())
    return;
  // "Tascell cannot suspend a waiting task and has to wait for its child
  // tasks to complete" — but it keeps answering task requests while
  // waiting (it still owns its execution stack).
  std::uint64_t T0 = nowNanos();
  for (;;) {
    bool AllDone = true;
    for (Donation *D : CP.Outstanding)
      if (!D->DoneFlag.load(std::memory_order_acquire)) {
        AllDone = false;
        break;
      }
    if (AllDone)
      break;
    pollRequests(W);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  W.Stats.WaitChildrenNs += nowNanos() - T0;
  for (Donation *D : CP.Outstanding) {
    Acc += D->Value;
    W.Donations.free(D); // victim-side reap into the victim's own arena
  }
  CP.Outstanding.clear();
}

template <SearchProblem P> void TascellScheduler<P>::pollRequests(TWorker &W) {
  ++W.LocalPolls;
  if (ATC_LIKELY(W.PendingRequests.load(std::memory_order_relaxed) == 0))
    return;
  int Requester = -1;
  {
    std::lock_guard<std::mutex> Guard(W.MailLock);
    if (W.Requests.empty())
      return;
    Requester = W.Requests.back();
    W.Requests.pop_back();
    W.PendingRequests.fetch_sub(1, std::memory_order_relaxed);
  }
  respond(W, Requester);
}

template <SearchProblem P>
void TascellScheduler<P>::respond(TWorker &W, int Requester) {
  TWorker &R = *Workers[static_cast<std::size_t>(Requester)];

  // Find the oldest (shallowest) choice point with untried choices — the
  // biggest remaining subtrees live there.
  std::size_t Split = W.Stack.size();
  for (std::size_t I = 0; I < W.Stack.size(); ++I)
    if (W.Stack[I].NextUntried < W.Stack[I].NumChoices) {
      Split = I;
      break;
    }
  if (Split == W.Stack.size()) {
    ++W.Stats.RequestsDenied;
    R.Response.store(denySentinel(), std::memory_order_release);
    return;
  }

  ChoicePoint &CP = W.Stack[Split];
  int Untried = CP.NumChoices - CP.NextUntried;
  int Give = (Untried + 1) / 2; // donate half of the untried choices

  Donation *D = W.Donations.alloc();
  D->DoneFlag.store(false, std::memory_order_relaxed); // recycled reset
  D->Value = Result{};
  D->Depth = CP.Depth;
  D->ChoiceBegin = CP.NumChoices - Give;
  D->ChoiceEnd = CP.NumChoices;
  CP.NumChoices -= Give;

  // Temporary backtracking: undo the applied choices from the top of the
  // stack down to (and including) the split level, snapshot the ancestor
  // workspace, then redo them and resume. This is Tascell's delayed
  // workspace copy.
  for (std::size_t I = W.Stack.size(); I-- > Split;) {
    if (!W.Stack[I].Applied)
      continue;
    Prob.undoChoice(W.Live, W.Stack[I].Depth, W.Stack[I].CurChoice);
    ++W.Stats.BacktrackSteps;
  }
  // The requester resumes the search at (St, CP.Depth), so only the
  // prefix live at that depth needs to survive the copy.
  const std::size_t Live = liveStateBytes(Prob, W.Live, CP.Depth);
  std::memcpy(static_cast<void *>(&D->St),
              static_cast<const void *>(&W.Live), Live);
  ++W.Stats.WorkspaceCopies;
  W.Stats.CopiedBytes += Live;
  for (std::size_t I = Split; I < W.Stack.size(); ++I) {
    if (!W.Stack[I].Applied)
      continue;
    [[maybe_unused]] bool Ok =
        Prob.applyChoice(W.Live, W.Stack[I].Depth, W.Stack[I].CurChoice);
    assert(Ok && "redo of a previously applied choice failed");
    ++W.Stats.BacktrackSteps;
  }

  CP.Outstanding.push_back(D);
  R.Response.store(D, std::memory_order_release);
}

template <SearchProblem P> void TascellScheduler<P>::requestLoop(TWorker &W) {
  int FailStreak = 0;
  std::uint64_t IdleBegin = nowNanos();
  while (!Done.load(std::memory_order_acquire)) {
    // Victim selection: affinity first (the worker that last donated is
    // the most likely to still have untried choices), random fallback.
    int V = W.LastVictim;
    bool Affine = (V >= 0 && V != W.Id);
    if (!Affine) {
      V = static_cast<int>(
          W.Rng.nextBelow(static_cast<std::uint64_t>(Cfg.NumWorkers - 1)));
      if (V >= W.Id)
        ++V;
    }
    TWorker &Victim = *Workers[static_cast<std::size_t>(V)];

    // Emptiness probe: a victim with no choice points on its execution
    // stack cannot donate; skip the mailbox round-trip entirely.
    if (Victim.StackDepth.load(std::memory_order_relaxed) == 0) {
      ++W.Stats.EmptyProbes;
      ++W.Stats.StealFails;
      W.LastVictim = -1;
      ++FailStreak;
      stealBackoff(FailStreak);
      continue;
    }

    W.Response.store(nullptr, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Guard(Victim.MailLock);
      Victim.Requests.push_back(W.Id);
    }
    Victim.PendingRequests.fetch_add(1, std::memory_order_relaxed);
    ++W.Stats.Requests;

    // Wait for the response, answering (denying) our own mailbox so other
    // idle workers are not blocked on us.
    Donation *D;
    for (;;) {
      D = W.Response.load(std::memory_order_acquire);
      if (D || Done.load(std::memory_order_acquire))
        break;
      pollRequests(W);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (!D)
      break; // terminated while waiting
    if (D == denySentinel()) {
      ++W.Stats.StealFails;
      W.LastVictim = -1;
      ++FailStreak;
      stealBackoff(FailStreak);
      continue;
    }

    // Execute the donated task.
    ++W.Stats.Steals;
    if (Affine)
      ++W.Stats.AffinityHits;
    W.LastVictim = V;
    FailStreak = 0;
    W.Stats.StealWaitNs += nowNanos() - IdleBegin;
    W.Live = D->St;
    ChoicePoint CP;
    CP.Depth = D->Depth;
    CP.NextUntried = D->ChoiceBegin;
    CP.NumChoices = D->ChoiceEnd;
    W.Stack.push_back(std::move(CP));
    W.StackDepth.store(static_cast<int>(W.Stack.size()),
                       std::memory_order_relaxed);
    Result Value = runChoices(W, D->Depth);
    D->Value = Value;
    D->DoneFlag.store(true, std::memory_order_release);
    W.flushLocalCounters(); // donation boundary
    IdleBegin = nowNanos();
  }
  W.Stats.StealWaitNs += nowNanos() - IdleBegin;
}

} // namespace atc

#endif // ATC_CORE_TASCELLSCHEDULER_H
