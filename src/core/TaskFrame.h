//===- core/TaskFrame.h - Continuation frames and join protocol -*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TaskFrame is the runtime representation of a task: the "task_info"
/// structure the paper's compiler allocates at the entry of every fast /
/// fast_2 / slow version (Appendix B). It stores the continuation of a
/// spawning loop — saved workspace pointer, last choice index ("PC"),
/// partial result, depths — plus the Cilk-style join protocol state used
/// once the frame has been stolen (deposited child results, join counter,
/// suspended flag).
///
/// Lifecycle invariants (see also kernel/FramePolicy.h):
///  * A frame that is never stolen completes synchronously: its owner
///    reaches the sync point with JoinCount == 0 and no deposits (the
///    paper: "all sync statements [in the fast version] are translated to
///    no-ops").
///  * Once stolen ("detached"), the frame's total result is assembled from
///    deposits and delivered to Parent by whoever joins last.
///  * A special frame (AdaptiveTC) is never stolen and never suspended;
///    its owner spin-waits in sync_specialtask until JoinCount reaches 0.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_TASKFRAME_H
#define ATC_CORE_TASKFRAME_H

#include "core/Problem.h"

#include <atomic>
#include <cstdint>
#include <mutex>

namespace atc {

/// Continuation frame for a task instance of problem \p P.
///
/// Frames are recycled through a per-worker ObjectArena (support/Arena.h)
/// without re-running the constructor — reset() below restores the
/// freshly-constructed state. StatePtr must stay the first member: while
/// a frame sits on the arena freelist its first word holds the freelist
/// link, which is safe precisely because every alloc path immediately
/// rewrites StatePtr.
template <SearchProblem P> struct TaskFrame {
  using State = typename P::State;
  using Result = typename P::Result;

  /// The instance's live workspace buffer. Owned by the frame when
  /// OwnsState is set (all non-root instances); the root instance's state
  /// is owned by the caller of run(). Must remain the first member (see
  /// the struct comment).
  State *StatePtr = nullptr;

  /// Accumulated result of the children completed before LastChoice.
  Result PartialAcc{};

  /// Results deposited by stolen-child chains. Guarded by Lock.
  Result Deposits{};

  /// The owner's local accumulator at the moment of suspension. Valid only
  /// while Suspended.
  Result SyncAcc{};

  /// The choice whose child was in flight when the continuation was saved.
  /// The continuation first undoes this choice, then resumes the loop at
  /// LastChoice + 1 (the "restore PC with a goto" of the slow version).
  int LastChoice = -1;

  /// Problem-level depth of this instance's node.
  int Depth = 0;

  /// Scheduler-level spawn depth ("_adpTC_dp" in the paper).
  int SpawnDepth = 0;

  /// Outstanding result deposits expected before the frame may complete.
  /// Incremented under the deque lock at steal time (see FramePolicy's
  /// onSteal); decremented by each deposit.
  std::atomic<int> JoinCount{0};

  /// Deposit target once this frame's instance can no longer return its
  /// result synchronously. nullptr for the root frame.
  TaskFrame *Parent = nullptr;

  /// Guards Deposits / SyncAcc / Suspended transitions.
  std::mutex Lock;

  /// Set by the owner when it reaches the sync point with children still
  /// outstanding; the last depositor then resumes (completes) the frame.
  bool Suspended = false;

  /// AdaptiveTC special task: sits in the deque as a transition marker,
  /// can never be stolen or suspended (Section 3, "Spawn" rule 2).
  bool Special = false;

  /// Set (under the deque lock) at the first steal: the frame's result now
  /// flows to Parent via a deposit instead of a synchronous return.
  bool Detached = false;

  /// Whether StatePtr is owned (freed at completion).
  bool OwnsState = false;

  /// Id of the worker whose arena carved this frame (and its owned
  /// workspace — both always come from the same worker). A thief
  /// completing the frame routes the free back to this arena's
  /// remote-free stack. Set once at allocation, read-only afterwards.
  int AllocWorker = 0;

  /// Restores the freshly-constructed state on a recycled frame
  /// (AllocWorker intentionally excluded — it describes the storage, not
  /// the task). Adding a field to TaskFrame requires updating this, which
  /// tests/SchedulerTest.cpp's FrameRecycling test enforces with a sizeof
  /// guard.
  void reset() {
    StatePtr = nullptr;
    PartialAcc = Result{};
    Deposits = Result{};
    SyncAcc = Result{};
    LastChoice = -1;
    Depth = 0;
    SpawnDepth = 0;
    JoinCount.store(0, std::memory_order_relaxed);
    Parent = nullptr;
    Suspended = false;
    Special = false;
    Detached = false;
    OwnsState = false;
  }
};

/// Result of executing one task instance on the current worker.
/// When Stolen is set, Value is meaningless: the instance's frame was
/// stolen and its result will be assembled via the frame chain; the caller
/// must unwind to the scheduler loop without touching its own frame.
template <typename ResultT> struct ExecResult {
  ResultT Value{};
  bool Stolen = false;
};

} // namespace atc

#endif // ATC_CORE_TASKFRAME_H
