//===- core/WorkerContext.h - Per-worker scheduler state --------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-worker state shared by the deque-based schedulers (Cilk,
/// Cilk-SYNCHED, Cutoff, AdaptiveTC): the THE-protocol deque, the paper's
/// need_task signalling fields (Section 4.3), a deterministic PRNG for
/// victim selection, and the per-worker statistics counters.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_WORKERCONTEXT_H
#define ATC_CORE_WORKERCONTEXT_H

#include "core/SchedulerStats.h"
#include "deque/AtomicDeque.h"
#include "deque/TheDeque.h"
#include "support/Compiler.h"
#include "support/Prng.h"

#include <atomic>

namespace atc {

/// Per-worker scheduler state, parameterized by the ready-deque
/// implementation (TheDeque or AtomicDeque — see SchedulerConfig::Deque).
/// One instance per worker thread; the deque and the need_task fields are
/// the only members touched by other threads.
///
/// Layout rule: the struct is cache-line aligned, and each thief-written
/// field (StolenNum, NeedTask) sits on its own line. NeedTask in
/// particular is polled by the owner on every fake-task iteration
/// (millions of reads per run), so a thief's StolenNum increments must
/// not invalidate the line the owner is polling — nor the line holding
/// the owner's Stats counters.
template <typename DequeT> struct alignas(ATC_CACHE_LINE_SIZE) WorkerContextT {
  WorkerContextT(int Id, int DequeCapacity, std::uint64_t Seed)
      : Id(Id), Deque(DequeCapacity), Rng(Seed) {}

  const int Id;

  /// Ready-task deque ("d-e-que" in the paper).
  DequeT Deque;

  /// Deterministic victim-selection stream.
  SplitMix64 Rng;

  /// Last victim a steal succeeded against, tried first on the next
  /// attempt (steal affinity); -1 when unset. Owner-only.
  int LastVictim = -1;

  /// Count of consecutive failed steal attempts against this worker,
  /// incremented by thieves (Fig. 3d). When it exceeds max_stolen_num the
  /// thief sets NeedTask.
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<int> StolenNum{0};

  /// Set when some idle thread needs this (busy) worker to publish tasks;
  /// polled by the AdaptiveTC check version. Own cache line: written
  /// rarely (by thieves), read on every fake-task iteration (by the
  /// owner).
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<bool> NeedTask{false};

  /// Per-worker counters; aggregated after the run (no atomics needed —
  /// written only by the owner thread). SchedulerStats is itself
  /// cache-line aligned and padded, which starts it on a fresh line after
  /// NeedTask.
  SchedulerStats Stats;
};

/// The paper-fidelity default configuration.
using WorkerContext = WorkerContextT<TheDeque>;

} // namespace atc

#endif // ATC_CORE_WORKERCONTEXT_H
