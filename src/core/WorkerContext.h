//===- core/WorkerContext.h - Deque-engine worker state ---------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-worker state of the deque-based schedulers (Cilk, Cilk-SYNCHED,
/// Cutoff, AdaptiveTC): the kernel slice (identity, victim-selection
/// PRNG, steal affinity, need_task signalling, stats — see
/// core/kernel/KernelWorker.h) plus the ready-task deque.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_WORKERCONTEXT_H
#define ATC_CORE_WORKERCONTEXT_H

#include "core/kernel/KernelWorker.h"
#include "deque/AtomicDeque.h"
#include "deque/ChaseLevDeque.h"
#include "deque/TheDeque.h"
#include "support/Compiler.h"

#include <vector>

namespace atc {

/// Deque-engine worker state, parameterized by the ready-deque
/// implementation (TheDeque, AtomicDeque or ChaseLevDeque — see
/// SchedulerConfig::Deque). One instance per worker thread; the deque and
/// the inherited need_task fields are the only members touched by other
/// threads.
///
/// KernelWorker ends with the cache-line-padded Stats block, so the deque
/// starts on a fresh line and the kernel's layout rule (each thief-
/// written field on its own line) carries over unchanged.
template <typename DequeT>
struct alignas(ATC_CACHE_LINE_SIZE) WorkerContextT : KernelWorker {
  WorkerContextT(int Id, int DequeCapacity, std::uint64_t Seed)
      : KernelWorker(Id, Seed), Deque(DequeCapacity) {}

  /// Ready-task deque ("d-e-que" in the paper).
  DequeT Deque;

  /// Surplus frames from a steal-half batch acquisition
  /// (SchedulerConfig::Steal == StealPolicy::Half), drained before the
  /// next victim round. Thief-local — only this worker touches it, so it
  /// needs no synchronization; the run cannot terminate while it is
  /// non-empty (every stashed frame owes its parent a join deposit).
  std::vector<void *> Stash;
};

/// The paper-fidelity default configuration.
using WorkerContext = WorkerContextT<TheDeque>;

} // namespace atc

#endif // ATC_CORE_WORKERCONTEXT_H
