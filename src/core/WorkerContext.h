//===- core/WorkerContext.h - Per-worker scheduler state --------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-worker state shared by the deque-based schedulers (Cilk,
/// Cilk-SYNCHED, Cutoff, AdaptiveTC): the THE-protocol deque, the paper's
/// need_task signalling fields (Section 4.3), a deterministic PRNG for
/// victim selection, and the per-worker statistics counters.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_WORKERCONTEXT_H
#define ATC_CORE_WORKERCONTEXT_H

#include "core/SchedulerStats.h"
#include "deque/AtomicDeque.h"
#include "deque/TheDeque.h"
#include "support/Compiler.h"
#include "support/Prng.h"

#include <atomic>

namespace atc {

/// Per-worker scheduler state, parameterized by the ready-deque
/// implementation (TheDeque or AtomicDeque — see SchedulerConfig::Deque).
/// One instance per worker thread; the deque and the need_task fields are
/// the only members touched by other threads.
template <typename DequeT> struct WorkerContextT {
  WorkerContextT(int Id, int DequeCapacity, std::uint64_t Seed)
      : Id(Id), Deque(DequeCapacity), Rng(Seed) {}

  const int Id;

  /// Ready-task deque ("d-e-que" in the paper).
  DequeT Deque;

  /// Deterministic victim-selection stream.
  SplitMix64 Rng;

  /// Last victim a steal succeeded against, tried first on the next
  /// attempt (steal affinity); -1 when unset. Owner-only.
  int LastVictim = -1;

  /// Count of consecutive failed steal attempts against this worker,
  /// incremented by thieves (Fig. 3d). When it exceeds max_stolen_num the
  /// thief sets NeedTask.
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<int> StolenNum{0};

  /// Set when some idle thread needs this (busy) worker to publish tasks;
  /// polled by the AdaptiveTC check version.
  std::atomic<bool> NeedTask{false};

  /// Per-worker counters; aggregated after the run (no atomics needed —
  /// written only by the owner thread).
  SchedulerStats Stats;
};

/// The paper-fidelity default configuration.
using WorkerContext = WorkerContextT<TheDeque>;

} // namespace atc

#endif // ATC_CORE_WORKERCONTEXT_H
