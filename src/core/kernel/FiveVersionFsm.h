//===- core/kernel/FiveVersionFsm.h - The paper's Figure 2 FSM --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-version task-creation FSM of the paper (Figure 2) as an
/// explicit, unit-testable type. Every consumer of the mode logic — the
/// template runtime's AdaptiveTC policy (TaskCreationPolicy.h), the .atc
/// generated runtime (lang/runtime/GenRuntime.h) and the simulator
/// (sim/SimEngine.cpp) — asks this one transition function which version a
/// spawned child executes under, instead of hand-rolling the cut-off
/// comparisons.
///
/// States are the paper's five compiled code versions:
///
///  * fast     - spawns real tasks while the spawn depth is below the
///               cut-off; beyond it, children run under check.
///  * check    - the fake task: no frame, in-place workspace with undo.
///               It polls need_task once per child; when set, it publishes
///               a special task and runs the child under fast_2 with the
///               spawn depth reset to 0.
///  * fast_2   - like fast with twice the cut-off, degrading to sequence
///               (not check) beyond it.
///  * sequence - plain recursion, creates nothing, polls nothing.
///  * slow     - the stolen-continuation version. Its children dispatch
///               exactly like fast's ("the slow version creates tasks
///               through the fast/check rule"), so child(Slow, ...) mirrors
///               child(Fast, ...); the state is kept distinct so transition
///               counters can attribute edges to the thief path.
///
/// This header is deliberately self-contained (no project includes beyond
/// <cstdint>): code generated from .atc sources compiles outside the build
/// tree with only `-I <repo>/src` and includes it through GenRuntime.h.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_KERNEL_FIVEVERSIONFSM_H
#define ATC_CORE_KERNEL_FIVEVERSIONFSM_H

#include <cstdint>

namespace atc {

/// The five compiled code versions of the paper (states of Figure 2).
enum class CodeVersion : std::uint8_t {
  Fast,
  Check,
  Fast2,
  Sequence,
  Slow,
};

/// Number of CodeVersion states (for transition-count tables).
inline constexpr int NumCodeVersions = 5;

/// Display name ("fast", "check", "fast_2", "sequence", "slow").
constexpr const char *codeVersionName(CodeVersion V) {
  switch (V) {
  case CodeVersion::Fast:
    return "fast";
  case CodeVersion::Check:
    return "check";
  case CodeVersion::Fast2:
    return "fast_2";
  case CodeVersion::Sequence:
    return "sequence";
  case CodeVersion::Slow:
    return "slow";
  }
  return "?";
}

/// One edge of the FSM: how the child of a spawn site executes.
struct FsmTransition {
  /// Version the child runs under.
  CodeVersion Child;
  /// Spawn depth ("_adpTC_dp") the child starts at. The check -> fast_2
  /// edge resets it to 0 — the paper's depth reset on a special-task push.
  int ChildDp;
  /// Whether the child is a real task (frame allocated, workspace copied,
  /// continuation pushed on the deque).
  bool SpawnTask;
  /// Whether a special task must be published before the spawn (the
  /// check -> fast_2 edge only).
  bool SpecialPush;
  /// Whether taking this edge consulted need_task (check-version edges
  /// only; what the paper's polling overhead counts).
  bool PolledNeedTask;

  constexpr bool operator==(const FsmTransition &O) const {
    return Child == O.Child && ChildDp == O.ChildDp &&
           SpawnTask == O.SpawnTask && SpecialPush == O.SpecialPush &&
           PolledNeedTask == O.PolledNeedTask;
  }
};

/// The Figure 2 transition function, parameterized by the cut-off depth
/// ("initially set to log N by the runtime system").
class FiveVersionFsm {
public:
  constexpr explicit FiveVersionFsm(int CutoffDepth) : Cutoff(CutoffDepth) {}

  constexpr int cutoff() const { return Cutoff; }

  /// Returns the edge taken by a spawn site executing version \p Cur at
  /// spawn depth \p Dp, with the worker's need_task flag reading
  /// \p NeedTask (consulted only when Cur is Check).
  constexpr FsmTransition child(CodeVersion Cur, int Dp,
                                bool NeedTask) const {
    switch (Cur) {
    case CodeVersion::Fast:
    case CodeVersion::Slow:
      // fast: spawn below the cut-off, hand off to check beyond it. The
      // slow (stolen-continuation) version dispatches identically.
      if (Dp < Cutoff)
        return {CodeVersion::Fast, Dp + 1, /*SpawnTask=*/true,
                /*SpecialPush=*/false, /*PolledNeedTask=*/false};
      return {CodeVersion::Check, Dp, /*SpawnTask=*/false,
              /*SpecialPush=*/false, /*PolledNeedTask=*/false};
    case CodeVersion::Check:
      // check: stay a fake task until an idle thread raises need_task;
      // then publish a special task and re-enter fast_2 at depth 0.
      if (NeedTask)
        return {CodeVersion::Fast2, 0, /*SpawnTask=*/true,
                /*SpecialPush=*/true, /*PolledNeedTask=*/true};
      return {CodeVersion::Check, Dp, /*SpawnTask=*/false,
              /*SpecialPush=*/false, /*PolledNeedTask=*/true};
    case CodeVersion::Fast2:
      // fast_2: twice the cut-off, then sequence (never check again —
      // the special task already marks the transition point).
      if (Dp < 2 * Cutoff)
        return {CodeVersion::Fast2, Dp + 1, /*SpawnTask=*/true,
                /*SpecialPush=*/false, /*PolledNeedTask=*/false};
      return {CodeVersion::Sequence, Dp, /*SpawnTask=*/false,
              /*SpecialPush=*/false, /*PolledNeedTask=*/false};
    case CodeVersion::Sequence:
      // sequence: absorbing; plain recursion to the leaves.
      return {CodeVersion::Sequence, Dp, /*SpawnTask=*/false,
              /*SpecialPush=*/false, /*PolledNeedTask=*/false};
    }
    // Unreachable for valid CodeVersion values; keep a defined fallback so
    // the function stays constexpr-evaluable.
    return {CodeVersion::Sequence, Dp, false, false, false};
  }

private:
  int Cutoff;
};

/// Transition-count statistics: a NumCodeVersions x NumCodeVersions edge
/// matrix. Owner-thread-only (batched like every other hot counter);
/// aggregate with operator+=.
struct FsmCounters {
  std::uint64_t Edges[NumCodeVersions][NumCodeVersions] = {};

  void record(CodeVersion From, CodeVersion To) {
    ++Edges[static_cast<int>(From)][static_cast<int>(To)];
  }

  std::uint64_t edge(CodeVersion From, CodeVersion To) const {
    return Edges[static_cast<int>(From)][static_cast<int>(To)];
  }

  std::uint64_t total() const {
    std::uint64_t Sum = 0;
    for (const auto &Row : Edges)
      for (std::uint64_t E : Row)
        Sum += E;
    return Sum;
  }

  FsmCounters &operator+=(const FsmCounters &O) {
    for (int F = 0; F < NumCodeVersions; ++F)
      for (int T = 0; T < NumCodeVersions; ++T)
        Edges[F][T] += O.Edges[F][T];
    return *this;
  }
};

} // namespace atc

#endif // ATC_CORE_KERNEL_FIVEVERSIONFSM_H
