//===- core/kernel/FramePolicy.h - Deque-based scheduler policy -*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deque-based scheduling systems of the paper — Cilk, Cilk-SYNCHED,
/// Cutoff, and AdaptiveTC — as one WorkerRuntime policy over the
/// SearchProblem task model, parameterized by the ready-deque
/// implementation \p DequeT (TheDeque, AtomicDeque or ChaseLevDeque) and a
/// TaskCreationPolicy \p TcPol that supplies the Figure 2 dispatch. The
/// kernel (WorkerRuntime.h) owns the threads, steal loop, backoff and
/// need_task signalling; this policy owns what is specific to
/// continuation-stealing over deques: task frames, the join protocol,
/// workspace/frame arenas, and the five code-version bodies.
///
/// It performs true work-first continuation stealing: a stolen
/// continuation is the tuple (workspace, last choice, partial result,
/// depths) held in a TaskFrame, which is exactly the state the paper's
/// compiler saves before each spawn ("save PC / save live vars",
/// Appendix B).
///
/// Mapping to the paper's five code versions (CodeVersion):
///
///  * fast      -> taskBody(Cur = Fast): allocates a frame at entry,
///                 pushes it per spawn, a failed pop returns a dummy value
///                 ("if pop(sn) == FAILURE return 0"). Beyond the cut-off
///                 it calls checkBody. Its sync point is a no-op (owner-
///                 path invariant: never-stolen frames are fully joined).
///  * check     -> checkBody: a fake task (no frame, in-place workspace
///                 with undo) that polls need_task; when set, it creates a
///                 special task, pushes it, and runs the child via
///                 taskBody(Cur = Fast2, depth 0); pop_specialtask /
///                 sync_specialtask complete the protocol.
///  * fast_2    -> taskBody(Cur = Fast2): like fast with twice the
///                 cut-off, falling back to seqBody (not checkBody).
///  * sequence  -> seqBody: a plain recursive function.
///  * slow      -> runContinuation: executed by a thief on a stolen frame;
///                 restores the "PC" (choice index) and live state, then
///                 continues spawning with the fast/check dispatch. Its
///                 sync point checks the join counter and suspends the
///                 task if children are outstanding.
///
/// Which edges exist is entirely the TcPol's business: the Cilk policies
/// always spawn (checkBody/seqBody compile to dead branches), Cutoff
/// degrades to sequence, AdaptiveTC runs the full FSM.
///
/// Join protocol (who assembles the result of a stolen task):
///  * At steal time the thief increments the stolen frame's JoinCount:
///    the victim's in-flight child chain owes it exactly one deposit.
///    With TheDeque this runs under the deque lock; with AtomicDeque it
///    runs after the claiming CAS with no happens-before edge to the
///    owner's pop failure — which is safe, because the only party that
///    reads JoinCount before the join completes is the thief itself (at
///    its sync), and a transiently negative count (child deposited before
///    the increment) cannot trigger a resume since Suspended is set only
///    by the thief.
///  * A special task is never stolen, so it gets no steal-time increment;
///    instead the *owner* increments the special's JoinCount at each
///    popSpecial failure in checkBody (1:1 with steals of the special's
///    children). Keeping this owner-side avoids the thief dereferencing a
///    special frame the owner may already have freed — with a lock-free
///    deque nothing orders the thief's access against the owner's exit
///    from checkBody.
///  * The victim's first failed pop deposits the just-returned child value
///    into the stolen frame, then the whole spawn chain unwinds (every
///    enclosing frame was stolen head-first before this one).
///  * A completed detached frame deposits its total into Parent; the last
///    depositor of a suspended frame resumes (completes) it, cascading up.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_KERNEL_FRAMEPOLICY_H
#define ATC_CORE_KERNEL_FRAMEPOLICY_H

#include "core/Problem.h"
#include "core/Scheduler.h"
#include "core/SchedulerStats.h"
#include "core/TaskFrame.h"
#include "core/WorkerContext.h"
#include "core/kernel/TaskCreationPolicy.h"
#include "core/kernel/WorkerRuntime.h"
#include "support/Arena.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <vector>

namespace atc {

/// Deque-based scheduler policy for problem type \p P over ready-deque
/// implementation \p DequeT with task-creation strategy \p TcPol. Run it
/// through WorkerRuntime (see runProblem in core/Runtime.h for the
/// dispatch).
template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
class FramePolicy {
public:
  using State = typename P::State;
  using Result = typename P::Result;
  using Frame = TaskFrame<P>;
  using Worker = WorkerContextT<DequeT>;
  /// Acquired work: a stolen continuation frame.
  using Task = Frame *;
  using Runtime = WorkerRuntime<FramePolicy>;

  FramePolicy(P &Prob, const SchedulerConfig &Cfg, const State &Root)
      : Prob(Prob), Cfg(Cfg), Root(Root), Tc(Cfg.effectiveCutoff()) {}

  //===--------------------------------------------------------------------===//
  // WorkerRuntime policy interface
  //===--------------------------------------------------------------------===//

  std::unique_ptr<Worker> makeWorker(int Id) {
    return std::make_unique<Worker>(
        Id, Cfg.DequeCapacity, Cfg.Seed + static_cast<std::uint64_t>(Id));
  }

  void beginRun(Runtime &R) {
    Rt = &R;
#if ATC_METRICS_ENABLED
    // Metrics arming (WorkerRuntime::run) precedes beginRun, so the
    // cells exist by now: point each deque at its worker's depth gauge
    // (pushes, pops and thief-side steals all store the new size).
    for (int I = 0; I < Cfg.NumWorkers; ++I) {
      Worker &W = R.worker(I);
      W.Deque.attachDepthGauge(
          W.Metrics != nullptr ? &W.Metrics->dequeDepthGauge() : nullptr);
    }
#endif
    StateArenas.clear();
    FrameArenas.clear();
    for (int I = 0; I < Cfg.NumWorkers; ++I) {
      // Per-worker slab arenas for child workspaces and task frames
      // (support/Arena.h), sized by Cfg.PoolCap. A frame and its owned
      // workspace are always carved by the same worker
      // (Frame::AllocWorker), which is how cross-thread frees find their
      // way back to the right arena. StateArenas is unused for the
      // non-pooled (Cilk) policy, which models a fresh heap allocation
      // per child.
      if constexpr (TcPol::PooledWorkspace)
        StateArenas.push_back(
            std::make_unique<SlabArena>(sizeof(State), Cfg.PoolCap));
      FrameArenas.push_back(
          std::make_unique<ObjectArena<Frame>>(Cfg.PoolCap));
    }

    // The root workspace is a copy source for depth-0 spawns, so it must
    // be stride-padded like every other workspace (copyLiveLines reads
    // whole cache lines). Zero-fill the tail so the rounded reads see
    // initialized bytes.
    const std::size_t RootBytes = SlabArena::strideFor(sizeof(State));
    RootBuf = ::operator new(RootBytes);
    std::memset(RootBuf, 0, RootBytes);
    std::memcpy(RootBuf, static_cast<const void *>(&Root), sizeof(State));
    RootStatePtr = static_cast<State *>(RootBuf);
  }

  void endRun() {
    StateArenas.clear();
    FrameArenas.clear();
    RootStatePtr = nullptr;
    ::operator delete(RootBuf);
    RootBuf = nullptr;
  }

  bool runRoot(Worker &W) {
    ExecResult<Result> R =
        taskBody(W, *RootStatePtr, /*Depth=*/0, /*Parent=*/nullptr,
                 /*Dp=*/0, CodeVersion::Fast, /*OwnsState=*/false);
    if (!R.Stolen)
      Rt->publishFinal(R.Value);
    return true; // join the steal loop until every chain completes
  }

  /// One steal attempt against \p Victim: probe the deque for emptiness
  /// without touching its lock / CAS line, then steal. The kernel already
  /// picked the victim and counts the attempt; failures here feed its
  /// stolen_num / need_task signalling.
  AcquireOutcome tryAcquire(Worker &W, Worker &Victim, bool /*Helping*/,
                            Frame *&Out) {
    if (Victim.Deque.empty()) {
      // Lock-free probe: do not touch the deque's synchronisation state
      // for a victim with nothing to take.
      ++W.Stats.EmptyProbes;
      return AcquireOutcome::Failed;
    }
    StealResult SR = Victim.Deque.steal(&FramePolicy::onSteal, nullptr);
    if (SR.Status != StealResult::Status::Success)
      return AcquireOutcome::Failed;
    Out = static_cast<Frame *>(SR.Frame);
    if (Cfg.Steal == StealPolicy::Half)
      stealExtra(W, Victim);
    return AcquireOutcome::Acquired;
  }

  /// Steal-half batch tail (StealPolicy::Half): after the first frame,
  /// keep claiming up to half of the victim's remaining depth — bounded
  /// to MaxStolenNum frames per acquisition in total — and stash the
  /// surplus for this thief's next acquires (the kernel drains the stash
  /// through takeStashed before picking another victim). Each frame is
  /// still claimed by its own steal() round: a bulk Head jump would race
  /// with the owner's pop arbitration (the owner can plain-pop an index
  /// inside the claimed span and recycle its slot), so batching saves
  /// the per-frame victim-selection / signalling / backoff rounds — the
  /// part that is expensive — while the claim cost stays one CAS (or one
  /// mutex round with TheDeque) per frame.
  void stealExtra(Worker &W, Worker &Victim) {
    int Extra = static_cast<int>(Victim.Deque.size()) / 2;
    // The batch bound caps how much *this thief* carries off, so a tuned
    // thief's live knob (not the victim's) replaces the run constant.
    const int MaxStolen = liveMaxStolen(W.Tune, Cfg.MaxStolenNum);
    const int Cap = (MaxStolen > 1 ? MaxStolen : 1) - 1;
    if (Extra > Cap)
      Extra = Cap;
    for (int I = 0; I < Extra; ++I) {
      StealResult SR = Victim.Deque.steal(&FramePolicy::onSteal, nullptr);
      if (SR.Status != StealResult::Status::Success)
        break;
      W.Stash.push_back(SR.Frame);
      ++W.Stats.BatchSteals;
    }
  }

  /// Hands back a frame stashed by an earlier steal-half batch. The
  /// stash is thief-local, so this is plain vector access.
  bool takeStashed(Worker &W, Frame *&Out) {
    if (W.Stash.empty())
      return false;
    Out = static_cast<Frame *>(W.Stash.back());
    W.Stash.pop_back();
    return true;
  }

  void execute(Worker &W, Frame *F) { runContinuation(W, F); }

  void aggregateWorker(SchedulerStats &Total, Worker &W) {
    Total.DequeOverflows += W.Deque.overflowCount();
    Total.CasRetries += W.Deque.casRetryCount();
    Total.LockAcquires += W.Deque.lockAcquireCount();
    Total.DequeHighWater =
        std::max(Total.DequeHighWater, W.Deque.highWaterMark());
    if constexpr (TcPol::PooledWorkspace) {
      const SlabArena &A = *StateArenas[static_cast<std::size_t>(W.Id)];
      Total.PoolOverflows +=
          A.stats().OverflowFrees + A.remoteOverflowFrees();
      Total.ArenaHighWater =
          std::max(Total.ArenaHighWater, A.stats().HighWater);
    }
    const ObjectArena<Frame> &FA =
        *FrameArenas[static_cast<std::size_t>(W.Id)];
    Total.PoolOverflows +=
        FA.stats().OverflowFrees + FA.remoteOverflowFrees();
    Total.ArenaHighWater =
        std::max(Total.ArenaHighWater, FA.stats().HighWater);
  }

private:
  /// Invoked by the thief for every successful steal — under the victim
  /// deque's lock with TheDeque, after the claiming CAS with AtomicDeque
  /// (no happens-before edge to the owner's pop failure; see the join
  /// protocol notes in the file comment).
  static void onSteal(void *FrameV, void *) {
    auto *F = static_cast<Frame *>(FrameV);
    F->JoinCount.fetch_add(1, std::memory_order_acq_rel);
    F->Detached = true;
    // Note: the special-parent JoinCount increment happens owner-side, at
    // the popSpecial() failure in checkBody — NOT here. With the
    // lock-free deque this callback runs with no happens-before edge to
    // the owner's pop failure, so touching F->Parent (a frame the owner
    // may already have freed) would be a use-after-free; the owner
    // observes each child steal 1:1 through the popSpecial failure and
    // does the bookkeeping on its own frame.
  }

  /// Figure 2 dispatch with the online tuning layer folded in: a tuned
  /// worker re-reads its controller's live cut-off depth on every child
  /// (TcPol is an int-sized wrapper, so constructing one per dispatch is
  /// free); untuned workers take the shared Tc member untouched. The
  /// check version's edge ignores the cut-off entirely, so checkBodyImpl
  /// keeps calling Tc directly.
  FsmTransition dispatchChild(const Worker &W, CodeVersion Cur, int Dp,
                              bool NeedTask) const {
#if ATC_TUNING_ENABLED
    if (ATC_UNLIKELY(W.Tune != nullptr))
      return TcPol(W.Tune->cutoff()).child(Cur, Dp, NeedTask);
#endif
    (void)W;
    return Tc.child(Cur, Dp, NeedTask);
  }

  ExecResult<Result> taskBody(Worker &W, State &S, int Depth, Frame *Parent,
                              int Dp, CodeVersion Cur, bool OwnsState);
  Result checkBody(Worker &W, State &S, int Depth);
  Result checkBodyImpl(Worker &W, State &S, int Depth);
  Result seqBody(Worker &W, State &S, int Depth);
  void runContinuation(Worker &W, Frame *F);

  void depositTo(Worker &W, Frame *F, Result Value);
  void completeDetached(Worker &W, Frame *F, Result Total);

  State *allocState(Worker &W);
  void freeState(Worker &W, State *S);
  void freeStateOf(Worker &W, Frame *F);
  Frame *allocFrame(Worker &W);
  void freeFrame(Worker &W, Frame *F);
  void releaseFrame(Worker &W, Frame *F);

  P &Prob;
  SchedulerConfig Cfg;
  const State &Root;
  TcPol Tc;
  Runtime *Rt = nullptr;

  std::vector<std::unique_ptr<SlabArena>> StateArenas;
  std::vector<std::unique_ptr<ObjectArena<Frame>>> FrameArenas;
  void *RootBuf = nullptr;
  State *RootStatePtr = nullptr;
};

//===----------------------------------------------------------------------===//
// Implementation
//===----------------------------------------------------------------------===//

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
typename P::State *FramePolicy<P, DequeT, TcPol>::allocState(Worker &W) {
  // Cilk models a fresh allocation per child ("Cilk_alloca + memcpy");
  // SYNCHED / AdaptiveTC / Cutoff reuse buffers through the per-worker
  // slab arena (space reuse is what the SYNCHED variable buys — the copy
  // itself still happens at the call site).
  if constexpr (TcPol::PooledWorkspace) {
    return static_cast<State *>(
        StateArenas[static_cast<std::size_t>(W.Id)]->alloc().Ptr);
  } else {
    (void)W;
    // Hinted problems copy whole cache lines (copyLiveState), so the
    // buffer must be padded to slab stride; hint-less problems copy exact
    // sizeof(State) and keep the exact allocation (padding would only
    // shift malloc size classes).
    if constexpr (HasLiveBytes<P>)
      return static_cast<State *>(
          ::operator new(SlabArena::strideFor(sizeof(State))));
    else
      return static_cast<State *>(::operator new(sizeof(State)));
  }
}

/// Owner-side free of a workspace \p W itself carved (the common case:
/// the spawn loop frees the child buffer it just allocated).
template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
void FramePolicy<P, DequeT, TcPol>::freeState(Worker &W, State *S) {
  if constexpr (TcPol::PooledWorkspace)
    StateArenas[static_cast<std::size_t>(W.Id)]->free(S);
  else
    ::operator delete(S);
}

/// Frees \p F's owned workspace from any worker, routing it back to the
/// carving worker's arena (F->AllocWorker — a frame and its workspace
/// always come from the same worker) via the lock-free remote stack when
/// \p W is not that worker.
template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
void FramePolicy<P, DequeT, TcPol>::freeStateOf(Worker &W, Frame *F) {
  if constexpr (!TcPol::PooledWorkspace) {
    ::operator delete(F->StatePtr); // thread-safe, no routing needed
    return;
  } else {
    SlabArena &A = *StateArenas[static_cast<std::size_t>(F->AllocWorker)];
    if (ATC_LIKELY(F->AllocWorker == W.Id))
      A.free(F->StatePtr);
    else
      A.freeRemote(F->StatePtr);
  }
}

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
typename FramePolicy<P, DequeT, TcPol>::Frame *
FramePolicy<P, DequeT, TcPol>::allocFrame(Worker &W) {
  // All systems pool task frames (Cilk 5.4.6 has a fast closure
  // allocator); the recycled frame is reset to its freshly-constructed
  // state.
  Frame *F = FrameArenas[static_cast<std::size_t>(W.Id)]->alloc();
  assert(F->JoinCount.load(std::memory_order_relaxed) == 0 &&
         "recycled frame with outstanding joins");
  F->reset();
  F->AllocWorker = W.Id;
  return F;
}

/// Owner-side frame free: the caller is the worker that carved \p F
/// (never-stolen frames and special frames are freed by their spawner).
template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
void FramePolicy<P, DequeT, TcPol>::freeFrame(Worker &W, Frame *F) {
  assert(F->AllocWorker == W.Id && "owner-side free of a foreign frame");
  FrameArenas[static_cast<std::size_t>(W.Id)]->free(F);
}

/// Frees a completed detached frame from any worker, routing it back to
/// the carving worker's arena.
template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
void FramePolicy<P, DequeT, TcPol>::releaseFrame(Worker &W, Frame *F) {
  ObjectArena<Frame> &A =
      *FrameArenas[static_cast<std::size_t>(F->AllocWorker)];
  if (ATC_LIKELY(F->AllocWorker == W.Id))
    A.free(F);
  else
    A.freeRemote(F);
}

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
ExecResult<typename P::Result>
FramePolicy<P, DequeT, TcPol>::taskBody(Worker &W, State &S, int Depth,
                                        Frame *Parent, int Dp,
                                        CodeVersion Cur, bool OwnsState) {
  // Span attribution: everything below runs under Cur's mode; recursion
  // within the same version emits nothing (setMode de-dupes). The scope
  // covers all four return paths, stolen unwinds included.
  TraceModeScope TraceSpan(W.Trace, traceModeFor(Cur));
  MetricsModeScope MetricsSpan(W.Metrics, traceModeFor(Cur));
  if (Prob.isLeaf(S, Depth)) {
    ++W.Stats.TasksCreated;
    Result R = Prob.leafResult(S, Depth);
    if (OwnsState)
      freeState(W, &S);
    return {R, false};
  }

  Frame *F = allocFrame(W);
  F->StatePtr = &S;
  F->Depth = Depth;
  F->SpawnDepth = Dp;
  F->Parent = Parent;
  F->OwnsState = OwnsState;

  // Hot counters are batched into locals and flushed once per exit path
  // (each return is a steal/sync boundary) instead of dirtying the Stats
  // cache line on every loop iteration.
  std::uint64_t NSpawns = 0, NCopies = 0, NBytes = 0;
  auto FlushStats = [&] {
    ++W.Stats.TasksCreated;
    W.Stats.Spawns += NSpawns;
    W.Stats.WorkspaceCopies += NCopies;
    W.Stats.CopiedBytes += NBytes;
  };

  Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    // Figure 2 dispatch: the task-creation policy decides how this child
    // executes (need_task is consulted only by the check version, i.e.
    // inside checkBody — never here).
    const FsmTransition T = dispatchChild(W, Cur, Dp, /*NeedTask=*/false);
    if (T.SpawnTask) {
      // Spawn as a real task: give the child a private workspace copy
      // (the taskprivate copy), then expose our continuation. The copy
      // MUST precede the push — once the frame is stealable, a thief may
      // start mutating S (undo/redo of our remaining choices). Only the
      // prefix live at the child's depth is copied (Problem.h liveBytes).
      [[maybe_unused]] std::uint64_t SpawnT0 = ATC_METRIC_NOW(W.Metrics);
      State *CB = allocState(W);
      const std::size_t Live = copyLiveState(Prob, CB, S, Depth + 1);
      ++NCopies;
      NBytes += Live;
      F->LastChoice = K;
      F->PartialAcc = Acc;
      if (ATC_UNLIKELY(!W.Deque.tryPush(F))) {
        // Deque overflow: degrade to a plain call (counted by the deque).
        freeState(W, CB);
        Acc += seqBody(W, S, Depth + 1);
        Prob.undoChoice(S, Depth, K);
        continue;
      }
      ++NSpawns;
      // Spawn cost (alloc + live-copy + push) and post-push occupancy.
      ATC_METRIC(W.Metrics, SpawnCostNs.record(nowNanos() - SpawnT0));
      ATC_METRIC(W.Metrics, DequeDepth.record(static_cast<std::uint64_t>(
                                W.Deque.size())));
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::SpawnReal,
                      static_cast<std::uint32_t>(T.Child),
                      static_cast<std::uint16_t>(Depth + 1));
      if (T.Child != Cur)
        ATC_TRACE_EVENT(W.Trace, TraceEventKind::FsmTransition,
                        static_cast<std::uint32_t>(Cur),
                        static_cast<std::uint16_t>(T.Child));

      ExecResult<Result> R = taskBody(W, *CB, Depth + 1, F, T.ChildDp,
                                      T.Child, /*OwnsState=*/true);
      if (R.Stolen) {
        // The child's own frame was stolen, which (head-first stealing)
        // implies ours was too: its result reaches F via the frame chain.
        // Unwind without popping or freeing anything we no longer own.
        FlushStats();
        return {Result{}, true};
      }
      if (W.Deque.pop() == PopResult::Failure) {
        // Our continuation was stolen: deposit the child's value into the
        // (now thief-owned) frame and unwind ("return a dummy value").
        FlushStats();
        depositTo(W, F, R.Value);
        return {Result{}, true};
      }
      Acc += R.Value;
    } else if (T.Child == CodeVersion::Check) {
      Acc += checkBody(W, S, Depth + 1);
    } else {
      Acc += seqBody(W, S, Depth + 1);
    }
    Prob.undoChoice(S, Depth, K);
  }
  FlushStats();

  // Sync point. Owner-path invariant: a frame whose every pop succeeded
  // was never stolen, so all children completed synchronously ("all sync
  // statements [in the fast version] are translated to no-ops").
  assert(F->JoinCount.load(std::memory_order_acquire) == 0 &&
         "owner-path frame has outstanding children");
  assert(!F->Detached && "owner-path frame was stolen");
  freeFrame(W, F);
  if (OwnsState)
    freeState(W, &S);
  return {Acc, false};
}

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
typename P::Result
FramePolicy<P, DequeT, TcPol>::checkBody(Worker &W, State &S, int Depth) {
  // Metrics mirror of the spawn-fake trace dedup below: the Check mode
  // span is opened once per fake-task *subtree* (this entry point is
  // only reached from non-check callers), never per node. A per-node
  // RAII scope would put two out-of-line calls (ctor + dtor) on the
  // hottest recursion in the scheduler even with metrics disarmed;
  // hoisting it here keeps checkBodyImpl's per-node metrics cost at
  // zero. setMode de-dupes, so nested taskBody spans restore correctly.
  MetricsModeScope MetricsSpan(W.Metrics, TraceMode::Check);
  return checkBodyImpl(W, S, Depth);
}

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
typename P::Result
FramePolicy<P, DequeT, TcPol>::checkBodyImpl(Worker &W, State &S, int Depth) {
  ++W.Stats.FakeTasks;
#if ATC_TRACE_ENABLED
  // One spawn-fake per fake-task *subtree* (entry from a non-check
  // mode), not per node — per-node volume would drown the ring in
  // events carrying no extra information (SchedulerStats::FakeTasks has
  // the exact count). The mode scope then spans the whole subtree.
  if (ATC_UNLIKELY(W.Trace != nullptr) &&
      W.Trace->mode() != TraceMode::Check)
    W.Trace->emit(TraceEventKind::SpawnFake, 0,
                  static_cast<std::uint16_t>(Depth));
#endif
  TraceModeScope TraceSpan(W.Trace, TraceMode::Check);
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);

  Frame *SF = nullptr; // special task frame, created on demand
  bool StolenFlag = false;
  std::uint64_t NPolls = 0; // batched; flushed after the loop
  Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    // The check version's edge of Figure 2: one need_task poll per child.
    ++NPolls;
    const FsmTransition T =
        Tc.child(CodeVersion::Check, /*Dp=*/0,
                 W.NeedTask.load(std::memory_order_relaxed));
    if (ATC_LIKELY(!T.SpawnTask)) {
      // No idle thread waiting: stay a fake task (in-place workspace).
      Acc += checkBodyImpl(W, S, Depth + 1);
      Prob.undoChoice(S, Depth, K);
      continue;
    }

    // Some thread is starving: create a special task marking the
    // transition point and publish stealable children through fast_2 with
    // the spawn depth reset to 0 (T.ChildDp — the FSM's depth reset).
    // (This whole branch is cold — counters here write straight to
    // Stats.)
    assert(T.SpecialPush && T.Child == CodeVersion::Fast2 &&
           T.ChildDp == 0 && "check must publish through fast_2");
    if (!SF) {
      // The observation record: this check body saw its own need_task
      // flag and is about to publish (one event per responding body, not
      // one per poll — the flag stays set until a steal clears it).
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::NeedTaskObserve, 0,
                      static_cast<std::uint16_t>(Depth));
      SF = allocFrame(W);
      SF->Special = true;
      SF->Depth = Depth;
      SF->StatePtr = &S;
      SF->OwnsState = false;
      ++W.Stats.SpecialTasks;
    }
    State *CB = allocState(W);
    const std::size_t Live = copyLiveState(Prob, CB, S, Depth + 1);
    ++W.Stats.WorkspaceCopies;
    W.Stats.CopiedBytes += Live;
    if (ATC_UNLIKELY(!W.Deque.tryPush(SF, /*Special=*/true))) {
      freeState(W, CB);
      Acc += seqBody(W, S, Depth + 1);
      Prob.undoChoice(S, Depth, K);
      continue;
    }
    ++W.Stats.Spawns;
    // Reseed cadence (interval between special-task publishes) and a
    // mirror flush — this branch is the busy owner's cold publication
    // point, so its cell stays fresh for live dashboards without the hot
    // fake-task loop ever touching the cell.
    ATC_METRIC(W.Metrics, recordReseed(nowNanos()));
    ATC_METRIC(W.Metrics, publishStats(W.Stats));
    // Owner-side tune opportunity: the reseed it just recorded is exactly
    // the signal the cut-off rule feeds on, and the cell is fresh.
    ATC_TUNE(W.Tune, maybeTune(nowNanos(), *W.Metrics));
    ATC_TRACE_EVENT(W.Trace, TraceEventKind::SpecialPush, 0,
                    static_cast<std::uint16_t>(Depth));
    ATC_TRACE_EVENT(W.Trace, TraceEventKind::FsmTransition,
                    static_cast<std::uint32_t>(CodeVersion::Check),
                    static_cast<std::uint16_t>(CodeVersion::Fast2));

    ExecResult<Result> R = taskBody(W, *CB, Depth + 1, SF, T.ChildDp,
                                    T.Child, /*OwnsState=*/true);
    if (W.Deque.popSpecial() == PopResult::Failure) {
      // The special's child chain was stolen. A special is never stolen
      // itself, so it gets no steal-time JoinCount increment; the owner
      // accounts for the detached chain's eventual completion deposit
      // here, exactly once per stolen child. (Thief-side accounting would
      // race with SF's free with the lock-free deque.)
      StolenFlag = true;
      SF->JoinCount.fetch_add(1, std::memory_order_acq_rel);
      // The owner-side record of "a special task's work was stolen" —
      // 1:1 with such steals, and the only safe side to record them on
      // (the thief must never dereference a special frame).
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::SpecialChildStolen, 0,
                      static_cast<std::uint16_t>(Depth));
    } else {
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::SpecialPop, 0,
                      static_cast<std::uint16_t>(Depth));
    }
    if (!R.Stolen)
      Acc += R.Value; // else: arrives through SF->Deposits
    Prob.undoChoice(S, Depth, K);
  }
  W.Stats.Polls += NPolls;

  if (SF) {
    if (StolenFlag) {
      // sync_specialtask: a special task cannot be suspended, so the
      // owner must stay here until its detached children complete. The
      // kernel's help-first wait steals and runs other tasks meanwhile
      // (see WorkerRuntime::helpWhile).
      std::uint64_t T0 = nowNanos();
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::SpecialSyncBegin, 0,
                      static_cast<std::uint16_t>(Depth));
      Rt->helpWhile(W, [&] {
        return SF->JoinCount.load(std::memory_order_acquire) != 0;
      });
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::SpecialSyncEnd, 0,
                      static_cast<std::uint16_t>(Depth));
      W.Stats.WaitChildrenNs += nowNanos() - T0;
    }
    {
      std::lock_guard<std::mutex> Guard(SF->Lock);
      Acc += SF->Deposits;
    }
    freeFrame(W, SF);
  }
  return Acc;
}

namespace detail {

/// Recursive core of the sequence version: counts visited nodes into a
/// stack local threaded by reference so the hot loop never touches the
/// worker's Stats cache line (flushed once by seqBody below).
template <SearchProblem P>
typename P::Result seqBodyImpl(P &Prob, typename P::State &S, int Depth,
                               std::uint64_t &Nodes) {
  ++Nodes;
  if (Prob.isLeaf(S, Depth))
    return Prob.leafResult(S, Depth);
  typename P::Result Acc{};
  const int N = Prob.numChoices(S, Depth);
  for (int K = 0; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;
    Acc += seqBodyImpl(Prob, S, Depth + 1, Nodes);
    Prob.undoChoice(S, Depth, K);
  }
  return Acc;
}

} // namespace detail

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
typename P::Result
FramePolicy<P, DequeT, TcPol>::seqBody(Worker &W, State &S, int Depth) {
  TraceModeScope TraceSpan(W.Trace, TraceMode::Sequence);
  MetricsModeScope MetricsSpan(W.Metrics, TraceMode::Sequence);
  std::uint64_t Nodes = 0;
  Result Acc = detail::seqBodyImpl(Prob, S, Depth, Nodes);
  W.Stats.FakeTasks += Nodes;
  return Acc;
}

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
void FramePolicy<P, DequeT, TcPol>::runContinuation(Worker &W, Frame *F) {
  // The slow version: restore the live state and "PC", undo the choice
  // whose child is running elsewhere, and continue the spawning loop.
  TraceModeScope TraceSpan(W.Trace, TraceMode::Slow);
  MetricsModeScope MetricsSpan(W.Metrics, TraceMode::Slow);
  State &S = *F->StatePtr;
  const int Depth = F->Depth;
  const int Dp = F->SpawnDepth;
  Prob.undoChoice(S, Depth, F->LastChoice);
  Result Acc = F->PartialAcc;
  const int N = Prob.numChoices(S, Depth);

  for (int K = F->LastChoice + 1; K < N; ++K) {
    if (!Prob.applyChoice(S, Depth, K))
      continue;

    // Per the paper, the slow version dispatches children through the
    // fast/check rule regardless of which version originally spawned it
    // (CodeVersion::Slow mirrors Fast in every policy).
    const FsmTransition T =
        dispatchChild(W, CodeVersion::Slow, Dp, /*NeedTask=*/false);
    if (T.SpawnTask) {
      // As in taskBody: copy the child workspace (live prefix only)
      // before the push makes our continuation (and S) stealable.
      [[maybe_unused]] std::uint64_t SpawnT0 = ATC_METRIC_NOW(W.Metrics);
      State *CB = allocState(W);
      const std::size_t Live = copyLiveState(Prob, CB, S, Depth + 1);
      ++W.Stats.WorkspaceCopies;
      W.Stats.CopiedBytes += Live;
      F->LastChoice = K;
      F->PartialAcc = Acc;
      if (ATC_UNLIKELY(!W.Deque.tryPush(F))) {
        freeState(W, CB);
        Acc += seqBody(W, S, Depth + 1);
        Prob.undoChoice(S, Depth, K);
        continue;
      }
      ++W.Stats.Spawns;
      ATC_METRIC(W.Metrics, SpawnCostNs.record(nowNanos() - SpawnT0));
      ATC_METRIC(W.Metrics, DequeDepth.record(static_cast<std::uint64_t>(
                                W.Deque.size())));
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::SpawnReal,
                      static_cast<std::uint32_t>(T.Child),
                      static_cast<std::uint16_t>(Depth + 1));

      ExecResult<Result> R = taskBody(W, *CB, Depth + 1, F, T.ChildDp,
                                      T.Child, /*OwnsState=*/true);
      if (R.Stolen)
        return; // stolen again; back to the steal loop
      if (W.Deque.pop() == PopResult::Failure) {
        depositTo(W, F, R.Value);
        return;
      }
      Acc += R.Value;
    } else if (T.Child == CodeVersion::Check) {
      Acc += checkBody(W, S, Depth + 1);
    } else {
      Acc += seqBody(W, S, Depth + 1);
    }
    Prob.undoChoice(S, Depth, K);
  }

  // Sync point of a stolen task: children may still be outstanding.
  F->Lock.lock();
  if (F->JoinCount.load(std::memory_order_acquire) != 0) {
    // Suspend the task and go steal other work; the last depositor
    // resumes (completes) it.
    F->SyncAcc = Acc;
    F->Suspended = true;
    ++W.Stats.Suspensions;
    F->Lock.unlock();
    return;
  }
  Result Total = Acc;
  Total += F->Deposits;
  F->Lock.unlock();
  completeDetached(W, F, Total);
}

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
void FramePolicy<P, DequeT, TcPol>::depositTo(Worker &W, Frame *F,
                                              Result Value) {
  ++W.Stats.Deposits;
  F->Lock.lock();
  F->Deposits += Value;
  int JC = F->JoinCount.fetch_sub(1, std::memory_order_acq_rel) - 1;
  bool Resume = (JC == 0 && F->Suspended);
  F->Lock.unlock();
  if (Resume) {
    // Sole owner now: assemble the total and complete.
    Result Total = F->SyncAcc;
    Total += F->Deposits;
    completeDetached(W, F, Total);
  }
}

template <SearchProblem P, typename DequeT, TaskCreationPolicy TcPol>
void FramePolicy<P, DequeT, TcPol>::completeDetached(Worker &W, Frame *F,
                                                     Result Total) {
  for (;;) {
    Frame *Parent = F->Parent;
    // May run on a thief: both frees route back to the carving worker's
    // arena (F->AllocWorker) rather than W's.
    if (F->OwnsState)
      freeStateOf(W, F);
    releaseFrame(W, F);
    if (!Parent) {
      Rt->publishFinal(Total);
      return;
    }
    ++W.Stats.Deposits;
    Parent->Lock.lock();
    Parent->Deposits += Total;
    int JC = Parent->JoinCount.fetch_sub(1, std::memory_order_acq_rel) - 1;
    bool Resume = (JC == 0 && Parent->Suspended);
    Parent->Lock.unlock();
    if (!Resume)
      return;
    Total = Parent->SyncAcc;
    Total += Parent->Deposits;
    F = Parent;
  }
}

} // namespace atc

#endif // ATC_CORE_KERNEL_FRAMEPOLICY_H
