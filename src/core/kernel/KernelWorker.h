//===- core/kernel/KernelWorker.h - Kernel per-worker state -----*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel-owned slice of per-worker state, shared by every
/// SchedulerKind: identity, the deterministic victim-selection stream,
/// steal affinity, and the paper's stolen_num / need_task signalling
/// fields (Section 4.3). Policies derive their worker type from this and
/// append their own state (deque, shadow stack, mailbox, ...) — see
/// WorkerRuntime.h for the policy contract.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_KERNEL_KERNELWORKER_H
#define ATC_CORE_KERNEL_KERNELWORKER_H

#include "core/SchedulerStats.h"
#include "core/tuning/TuningController.h"
#include "metrics/Metrics.h"
#include "support/Compiler.h"
#include "support/Prng.h"
#include "trace/TraceBuffer.h"

#include <atomic>
#include <cstdint>

namespace atc {

/// Kernel per-worker state; WorkerRuntime owns one instance (of the
/// policy's derived worker type) per worker thread.
///
/// Layout rule: the struct is cache-line aligned, and each thief-written
/// field (StolenNum, NeedTask) sits on its own line. NeedTask in
/// particular is polled by the owner on every fake-task iteration
/// (millions of reads per run), so a thief's StolenNum increments must
/// not invalidate the line the owner is polling — nor the line holding
/// the owner's Stats counters.
struct alignas(ATC_CACHE_LINE_SIZE) KernelWorker {
  KernelWorker(int Id, std::uint64_t Seed) : Id(Id), Rng(Seed) {}

  const int Id;

  /// Deterministic victim-selection stream.
  SplitMix64 Rng;

  /// Last victim an acquire succeeded against, tried first on the next
  /// attempt (steal affinity); -1 when unset. Owner-only.
  int LastVictim = -1;

  /// This worker's event-trace ring, or null when the run is untraced
  /// (the common case — every emission site null-tests this). Owner-only:
  /// a worker writes exclusively to its own ring. Set by WorkerRuntime
  /// before threads start when SchedulerConfig::Trace is armed.
  TraceBuffer *Trace = nullptr;

  /// This worker's live-metrics cell, or null when the run is unmetered
  /// (the common case — every publication site null-tests this). Mostly
  /// owner-written; the cell's cross-thread gauges (need_task, deque
  /// depth) are plain atomic stores, so thief-side updates are fine. Set
  /// by WorkerRuntime before threads start when SchedulerConfig::Metrics
  /// is armed.
  WorkerMetricsCell *Metrics = nullptr;

  /// This worker's online tuning controller, or null when the run is
  /// untuned (the common case — every knob read null-tests this, the
  /// same idiom as Trace/Metrics). maybeTune() runs only on the owning
  /// worker; *thieves* read the victim's maxStolenNum() through this
  /// pointer (relaxed atomic — the threshold guards the victim, so the
  /// victim's controller owns it). Set by WorkerRuntime before threads
  /// start when SchedulerConfig::Tuning is armed (which requires the
  /// metrics cells the controller reads).
  TuningController *Tune = nullptr;

  /// Count of consecutive failed steal attempts against this worker,
  /// incremented by thieves (Fig. 3d). When it exceeds max_stolen_num the
  /// thief sets NeedTask.
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<int> StolenNum{0};

  /// Set when some idle thread needs this (busy) worker to publish tasks;
  /// polled by the AdaptiveTC check version. Own cache line: written
  /// rarely (by thieves), read on every fake-task iteration (by the
  /// owner).
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<bool> NeedTask{false};

  /// Per-worker counters; aggregated after the run (no atomics needed —
  /// written only by the owner thread). SchedulerStats is itself
  /// cache-line aligned and padded, which starts it on a fresh line after
  /// NeedTask.
  SchedulerStats Stats;
};

} // namespace atc

#endif // ATC_CORE_KERNEL_KERNELWORKER_H
