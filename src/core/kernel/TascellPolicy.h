//===- core/kernel/TascellPolicy.h - Backtracking-based policy --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch reproduction of Tascell's backtracking-based load
/// balancing (Hiraishi et al., PPoPP'09), the paper's second baseline, as
/// a WorkerRuntime policy. The kernel (WorkerRuntime.h) owns the threads,
/// the request loop's victim selection, backoff and idle-time accounting;
/// this policy owns what is Tascell-specific: the shadow stack of choice
/// points, the request mailbox, and donation construction via temporary
/// backtracking. Architecture, per the paper's description:
///
///  * "the task is stored in a thread's execution stack instead of in a
///    d-e-que": each worker executes plain recursion over a live
///    workspace, maintaining a shadow stack of choice points (open loop
///    ranges), with no task frames and no workspace copies on the fast
///    path.
///  * "When a thread receives a task request from an idle thread, it
///    backtracks through the chain of nested function calls, and creates
///    a task for the requesting thread": requests arrive in a mailbox
///    polled at every node entry; the victim picks the *oldest* choice
///    point with untried choices, temporarily backtracks (undoing the
///    applied choices down to that level) to reconstruct the ancestor
///    workspace, copies it into a donation, re-applies the choices, and
///    resumes — this is where workspace copying is "delayed as much as
///    possible".
///  * "Tascell cannot suspend a waiting task": when the recursion unwinds
///    to a choice point with outstanding donations, the worker blocks
///    (polling requests and sleeping) until the donated results arrive —
///    the wait_children overhead of the paper's Figure 7.
///  * Donations hand over half of the untried choices of the split level
///    ("a parallel-for loop construct is implemented by spawning a half
///    of the tasks for the requested threads").
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_KERNEL_TASCELLPOLICY_H
#define ATC_CORE_KERNEL_TASCELLPOLICY_H

#include "core/Backoff.h"
#include "core/Problem.h"
#include "core/Scheduler.h"
#include "core/SchedulerStats.h"
#include "core/kernel/KernelWorker.h"
#include "core/kernel/WorkerRuntime.h"
#include "support/Arena.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace atc {

/// Backtracking-based work-distribution policy for problem type \p P.
/// Run it through WorkerRuntime (see runProblem in core/Runtime.h).
template <SearchProblem P> class TascellPolicy {
public:
  using State = typename P::State;
  using Result = typename P::Result;

  /// A task donated to a requester: a reconstructed ancestor workspace
  /// plus an untried choice range of that node. Allocated and freed by
  /// the *victim* (donations are handed out and reaped on the victim's
  /// side), so each worker recycles them through its own ObjectArena with
  /// no cross-thread frees. St must stay the first member: the arena
  /// freelist link lives in its leading bytes while the donation is free,
  /// and respond()'s workspace copy rewrites them (bytes past the live
  /// prefix are dead by the liveBytes contract).
  struct Donation {
    State St;
    int Depth;
    int ChoiceBegin;
    int ChoiceEnd;
    std::atomic<bool> DoneFlag{false};
    Result Value{};
  };

  /// One open loop level on a worker's shadow stack.
  struct ChoicePoint {
    int Depth;
    int CurChoice = -1;
    bool Applied = false;
    int NextUntried;
    int NumChoices;
    std::vector<Donation *> Outstanding;
  };

  /// Per-worker Tascell state over the kernel slice (KernelWorker). Each
  /// cross-thread field group (StackDepth probe, mailbox, response slot)
  /// sits on its own line so idle workers' probing and posting never
  /// invalidates the lines the owner's recursion is hot on (Stack, Live,
  /// Stats).
  struct alignas(ATC_CACHE_LINE_SIZE) TWorker : KernelWorker {
    TWorker(int Id, std::uint64_t Seed, int PoolCap)
        : KernelWorker(Id, Seed), Donations(PoolCap) {}

    std::vector<ChoicePoint> Stack;
    State Live;

    /// Recycler for this worker's outgoing donations (victim-side alloc
    /// and free — no remote path needed).
    ObjectArena<Donation> Donations;

    /// Batched hot counters (owner-only), flushed into Stats at steal /
    /// donation boundaries and at the end of the run.
    std::uint64_t LocalNodes = 0; ///< runNode entries (-> Stats.FakeTasks).
    std::uint64_t LocalPolls = 0; ///< Mailbox polls (-> Stats.Polls).

    void flushLocalCounters() {
      Stats.FakeTasks += LocalNodes;
      Stats.Polls += LocalPolls;
      LocalNodes = 0;
      LocalPolls = 0;
    }

    /// Published copy of Stack.size(), so idle workers can probe "does
    /// this victim have any choice points at all?" without posting a
    /// request into its mailbox (the Tascell analogue of the deque
    /// emptiness probe).
    alignas(ATC_CACHE_LINE_SIZE) std::atomic<int> StackDepth{0};

    alignas(ATC_CACHE_LINE_SIZE) std::mutex MailLock;
    std::vector<int> Requests;          ///< Requester worker ids.
    std::atomic<int> PendingRequests{0};

    alignas(ATC_CACHE_LINE_SIZE) std::atomic<Donation *> Response{nullptr};
  };

  using Worker = TWorker;
  /// Acquired work: a donation handed over by a victim.
  using Task = Donation *;
  using Runtime = WorkerRuntime<TascellPolicy>;

  TascellPolicy(P &Prob, const SchedulerConfig &Cfg, const State &Root)
      : Prob(Prob), Cfg(Cfg), Root(Root) {}

  //===--------------------------------------------------------------------===//
  // WorkerRuntime policy interface
  //===--------------------------------------------------------------------===//

  std::unique_ptr<TWorker> makeWorker(int Id) {
    return std::make_unique<TWorker>(
        Id, Cfg.Seed + static_cast<std::uint64_t>(Id), Cfg.PoolCap);
  }

  void beginRun(Runtime &R) {
    Rt = &R;
    Rt->worker(0).Live = Root;
  }

  void endRun() {}

  bool runRoot(TWorker &W) {
    TraceModeScope TraceSpan(W.Trace, TraceMode::Work);
    MetricsModeScope MetricsSpan(W.Metrics, TraceMode::Work);
    Result Value = runNode(W, 0);
    W.flushLocalCounters();
    ATC_METRIC(W.Metrics, publishStats(W.Stats));
    Rt->publishFinal(Value);
    // Tascell's root worker runs the whole computation to completion
    // inline (donated subtrees rejoin through DoneFlags before it
    // returns), so there is nothing left to steal.
    return false;
  }

  /// One request round against \p Victim: probe its published stack
  /// depth, then post into its mailbox and wait for a donation or a
  /// denial, answering (denying) our own mailbox so other idle workers
  /// are not blocked on us. The kernel already picked the victim and
  /// accounts steal counters / need_task signalling around this call.
  AcquireOutcome tryAcquire(TWorker &W, TWorker &Victim, bool /*Helping*/,
                            Donation *&Out) {
    // Emptiness probe: a victim with no choice points on its execution
    // stack cannot donate; skip the mailbox round-trip entirely.
    if (Victim.StackDepth.load(std::memory_order_relaxed) == 0) {
      ++W.Stats.EmptyProbes;
      return AcquireOutcome::Failed;
    }

    W.Response.store(nullptr, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Guard(Victim.MailLock);
      Victim.Requests.push_back(W.Id);
    }
    Victim.PendingRequests.fetch_add(1, std::memory_order_relaxed);
    ++W.Stats.Requests;

    Donation *D;
    for (;;) {
      D = W.Response.load(std::memory_order_acquire);
      if (D || Rt->done())
        break;
      pollRequests(W);
      requestResponseWait();
    }
    if (!D)
      return AcquireOutcome::Terminated; // run completed while waiting
    if (D == denySentinel())
      return AcquireOutcome::Failed;
    Out = D;
    return AcquireOutcome::Acquired;
  }

  /// Tascell has no batch acquisition — a victim already donates half of
  /// an oldest choice range per request — so there is never a stash.
  bool takeStashed(TWorker &, Donation *&) { return false; }

  /// Executes a donated task: install the donated workspace and choice
  /// range, run it, publish the result through the DoneFlag.
  void execute(TWorker &W, Donation *D) {
    TraceModeScope TraceSpan(W.Trace, TraceMode::Work);
    MetricsModeScope MetricsSpan(W.Metrics, TraceMode::Work);
    W.Live = D->St;
    ChoicePoint CP;
    CP.Depth = D->Depth;
    CP.NextUntried = D->ChoiceBegin;
    CP.NumChoices = D->ChoiceEnd;
    W.Stack.push_back(std::move(CP));
    W.StackDepth.store(static_cast<int>(W.Stack.size()),
                       std::memory_order_relaxed);
    D->Value = runChoices(W, D->Depth);
    D->DoneFlag.store(true, std::memory_order_release);
    W.flushLocalCounters(); // donation boundary
    ATC_METRIC(W.Metrics, publishStats(W.Stats));
  }

  void aggregateWorker(SchedulerStats &Total, TWorker &W) {
    // Polls accumulated after the worker's last donation boundary (e.g.
    // while waiting out the final denials) are still unflushed here.
    W.flushLocalCounters();
    Total.PoolOverflows += W.Donations.stats().OverflowFrees +
                           W.Donations.remoteOverflowFrees();
    Total.ArenaHighWater =
        std::max(Total.ArenaHighWater, W.Donations.stats().HighWater);
  }

private:
  /// Sentinel response meaning "no task available".
  static Donation *denySentinel() {
    return reinterpret_cast<Donation *>(1);
  }

  Result runNode(TWorker &W, int Depth);
  Result runChoices(TWorker &W, int Depth);
  void waitOutstanding(TWorker &W, std::size_t CPIndex, Result &Acc);
  void pollRequests(TWorker &W);
  void respond(TWorker &W, int Requester);

  P &Prob;
  SchedulerConfig Cfg;
  const State &Root;
  Runtime *Rt = nullptr;
};

//===----------------------------------------------------------------------===//
// Implementation
//===----------------------------------------------------------------------===//

template <SearchProblem P>
typename P::Result TascellPolicy<P>::runNode(TWorker &W, int Depth) {
  // Tascell polls for task requests at every node entry.
  pollRequests(W);
  if (Prob.isLeaf(W.Live, Depth))
    return Prob.leafResult(W.Live, Depth);

  ChoicePoint CP;
  CP.Depth = Depth;
  CP.NextUntried = 0;
  CP.NumChoices = Prob.numChoices(W.Live, Depth);
  W.Stack.push_back(std::move(CP));
  W.StackDepth.store(static_cast<int>(W.Stack.size()),
                     std::memory_order_relaxed);
  ++W.LocalNodes; // nested-function bookkeeping, no task frame
  return runChoices(W, Depth);
}

template <SearchProblem P>
typename P::Result TascellPolicy<P>::runChoices(TWorker &W, int Depth) {
  const std::size_t MyIdx = W.Stack.size() - 1;
  Result Acc{};
  for (;;) {
    ChoicePoint &CP = W.Stack[MyIdx];
    int K = CP.NextUntried;
    if (K >= CP.NumChoices)
      break;
    CP.NextUntried = K + 1;
    CP.CurChoice = K;
    if (!Prob.applyChoice(W.Live, Depth, K))
      continue;
    CP.Applied = true;
    Acc += runNode(W, Depth + 1);
    Prob.undoChoice(W.Live, Depth, K);
    W.Stack[MyIdx].Applied = false; // re-reference: deeper pushes may move
  }
  waitOutstanding(W, MyIdx, Acc);
  W.Stack.pop_back();
  W.StackDepth.store(static_cast<int>(W.Stack.size()),
                     std::memory_order_relaxed);
  return Acc;
}

template <SearchProblem P>
void TascellPolicy<P>::waitOutstanding(TWorker &W, std::size_t CPIndex,
                                       Result &Acc) {
  ChoicePoint &CP = W.Stack[CPIndex];
  if (CP.Outstanding.empty())
    return;
  // "Tascell cannot suspend a waiting task and has to wait for its child
  // tasks to complete" — but it keeps answering task requests while
  // waiting (it still owns its execution stack).
  std::uint64_t T0 = nowNanos();
  ATC_TRACE_EVENT(W.Trace, TraceEventKind::WaitChildrenBegin, 0,
                  static_cast<std::uint16_t>(CP.Depth));
  TraceModeScope TraceSpan(W.Trace, TraceMode::SyncWait);
  MetricsModeScope MetricsSpan(W.Metrics, TraceMode::SyncWait);
  for (;;) {
    bool AllDone = true;
    for (Donation *D : CP.Outstanding)
      if (!D->DoneFlag.load(std::memory_order_acquire)) {
        AllDone = false;
        break;
      }
    if (AllDone)
      break;
    pollRequests(W);
    waitChildrenWait();
  }
  ATC_TRACE_EVENT(W.Trace, TraceEventKind::WaitChildrenEnd, 0,
                  static_cast<std::uint16_t>(CP.Depth));
  W.Stats.WaitChildrenNs += nowNanos() - T0;
  for (Donation *D : CP.Outstanding) {
    Acc += D->Value;
    W.Donations.free(D); // victim-side reap into the victim's own arena
  }
  CP.Outstanding.clear();
}

template <SearchProblem P>
void TascellPolicy<P>::pollRequests(TWorker &W) {
  ++W.LocalPolls;
  if (ATC_LIKELY(W.PendingRequests.load(std::memory_order_relaxed) == 0))
    return;
  int Requester = -1;
  {
    std::lock_guard<std::mutex> Guard(W.MailLock);
    if (W.Requests.empty())
      return;
    Requester = W.Requests.back();
    W.Requests.pop_back();
    W.PendingRequests.fetch_sub(1, std::memory_order_relaxed);
  }
  respond(W, Requester);
}

template <SearchProblem P>
void TascellPolicy<P>::respond(TWorker &W, int Requester) {
  TWorker &R = Rt->worker(Requester);
  // Donation construction is Tascell's task-creation cost: backtrack,
  // snapshot, redo. Recorded into the same spawn-cost histogram the
  // deque-based policies feed so atc-top compares like with like.
  [[maybe_unused]] std::uint64_t SpawnT0 = ATC_METRIC_NOW(W.Metrics);

  // Find the oldest (shallowest) choice point with untried choices — the
  // biggest remaining subtrees live there.
  std::size_t Split = W.Stack.size();
  for (std::size_t I = 0; I < W.Stack.size(); ++I)
    if (W.Stack[I].NextUntried < W.Stack[I].NumChoices) {
      Split = I;
      break;
    }
  if (Split == W.Stack.size()) {
    ++W.Stats.RequestsDenied;
    R.Response.store(denySentinel(), std::memory_order_release);
    return;
  }

  ChoicePoint &CP = W.Stack[Split];
  int Untried = CP.NumChoices - CP.NextUntried;
  int Give = (Untried + 1) / 2; // donate half of the untried choices

  Donation *D = W.Donations.alloc();
  D->DoneFlag.store(false, std::memory_order_relaxed); // recycled reset
  D->Value = Result{};
  D->Depth = CP.Depth;
  D->ChoiceBegin = CP.NumChoices - Give;
  D->ChoiceEnd = CP.NumChoices;
  CP.NumChoices -= Give;

  // Temporary backtracking: undo the applied choices from the top of the
  // stack down to (and including) the split level, snapshot the ancestor
  // workspace, then redo them and resume. This is Tascell's delayed
  // workspace copy.
  for (std::size_t I = W.Stack.size(); I-- > Split;) {
    if (!W.Stack[I].Applied)
      continue;
    Prob.undoChoice(W.Live, W.Stack[I].Depth, W.Stack[I].CurChoice);
    ++W.Stats.BacktrackSteps;
  }
  // The requester resumes the search at (St, CP.Depth), so only the
  // prefix live at that depth needs to survive the copy.
  const std::size_t Live = liveStateBytes(Prob, W.Live, CP.Depth);
  std::memcpy(static_cast<void *>(&D->St),
              static_cast<const void *>(&W.Live), Live);
  ++W.Stats.WorkspaceCopies;
  W.Stats.CopiedBytes += Live;
  for (std::size_t I = Split; I < W.Stack.size(); ++I) {
    if (!W.Stack[I].Applied)
      continue;
    [[maybe_unused]] bool Ok =
        Prob.applyChoice(W.Live, W.Stack[I].Depth, W.Stack[I].CurChoice);
    assert(Ok && "redo of a previously applied choice failed");
    ++W.Stats.BacktrackSteps;
  }

  CP.Outstanding.push_back(D);
  // Victim-side record (single-writer rule: never touch R's ring); the
  // exporter draws the arrow to the requester's track from this.
  ATC_TRACE_EVENT(W.Trace, TraceEventKind::Donation,
                  static_cast<std::uint32_t>(Requester),
                  static_cast<std::uint16_t>(D->Depth));
  ATC_METRIC(W.Metrics, SpawnCostNs.record(nowNanos() - SpawnT0));
  ATC_METRIC(W.Metrics, publishStats(W.Stats));
  R.Response.store(D, std::memory_order_release);
}

} // namespace atc

#endif // ATC_CORE_KERNEL_TASCELLPOLICY_H
