//===- core/kernel/TaskCreationPolicy.h - Task-creation policies *- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The task-creation strategies of the paper's deque-based systems (Cilk,
/// Cilk-SYNCHED, Cutoff, AdaptiveTC) as small policy classes over the
/// shared FiveVersionFsm vocabulary. A policy answers exactly one
/// question — which FsmTransition does a spawn site take — plus two
/// compile-time traits the frame engine folds into its hot paths:
///
///  * Kind            - the SchedulerKind the policy implements.
///  * PooledWorkspace - whether child workspaces recycle through the
///                      per-worker slab arena (everything but Cilk, which
///                      models a fresh allocation per child).
///
/// Policies are stateless or hold only the cut-off; child() is constexpr-
/// foldable for the trivial strategies, so e.g. the Cilk instantiation of
/// the frame engine compiles its dispatch down to "always spawn" with the
/// check/sequence branches dead.
///
/// dispatchChild() at the bottom is the runtime-kind frontend for
/// consumers that select the strategy at run time (the simulator).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_KERNEL_TASKCREATIONPOLICY_H
#define ATC_CORE_KERNEL_TASKCREATIONPOLICY_H

#include "core/Scheduler.h"
#include "core/kernel/FiveVersionFsm.h"
#include "support/Compiler.h"

#include <concepts>

namespace atc {

/// Concept for a deque-engine task-creation policy.
template <typename T>
concept TaskCreationPolicy =
    requires(const T &Pol, CodeVersion Cur, int Dp, bool NeedTask) {
      { T::Kind } -> std::convertible_to<SchedulerKind>;
      { T::PooledWorkspace } -> std::convertible_to<bool>;
      { Pol.child(Cur, Dp, NeedTask) } -> std::same_as<FsmTransition>;
    };

/// Cilk: work-first work stealing; every spawn is a real task with a fresh
/// heap workspace ("Cilk_alloca + memcpy" per child).
struct CilkTaskPolicy {
  static constexpr SchedulerKind Kind = SchedulerKind::Cilk;
  static constexpr bool PooledWorkspace = false;

  constexpr explicit CilkTaskPolicy(int /*CutoffDepth*/) {}

  constexpr FsmTransition child(CodeVersion /*Cur*/, int Dp,
                                bool /*NeedTask*/) const {
    return {CodeVersion::Fast, Dp + 1, /*SpawnTask=*/true,
            /*SpecialPush=*/false, /*PolledNeedTask=*/false};
  }
};

/// Cilk-SYNCHED: identical task creation; workspace memory is pooled
/// ("the time overhead is not reduced" — only the allocation is).
struct CilkSynchedTaskPolicy {
  static constexpr SchedulerKind Kind = SchedulerKind::CilkSynched;
  static constexpr bool PooledWorkspace = true;

  constexpr explicit CilkSynchedTaskPolicy(int /*CutoffDepth*/) {}

  constexpr FsmTransition child(CodeVersion /*Cur*/, int Dp,
                                bool /*NeedTask*/) const {
    return {CodeVersion::Fast, Dp + 1, /*SpawnTask=*/true,
            /*SpecialPush=*/false, /*PolledNeedTask=*/false};
  }
};

/// Cutoff: real tasks above a fixed depth, plain calls below, no
/// adaptation (the Cutoff-programmer / Cutoff-library strategies of
/// Figure 9). Sequence is absorbing.
struct CutoffTaskPolicy {
  static constexpr SchedulerKind Kind = SchedulerKind::Cutoff;
  static constexpr bool PooledWorkspace = true;

  constexpr explicit CutoffTaskPolicy(int CutoffDepth)
      : CutoffDepth(CutoffDepth) {}

  constexpr FsmTransition child(CodeVersion Cur, int Dp,
                                bool /*NeedTask*/) const {
    if (Cur != CodeVersion::Sequence && Dp < CutoffDepth)
      return {CodeVersion::Fast, Dp + 1, /*SpawnTask=*/true,
              /*SpecialPush=*/false, /*PolledNeedTask=*/false};
    return {CodeVersion::Sequence, Dp, /*SpawnTask=*/false,
            /*SpecialPush=*/false, /*PolledNeedTask=*/false};
  }

  int CutoffDepth;
};

/// AdaptiveTC: the paper's contribution — the full Figure 2 FSM.
struct AdaptiveTCTaskPolicy {
  static constexpr SchedulerKind Kind = SchedulerKind::AdaptiveTC;
  static constexpr bool PooledWorkspace = true;

  constexpr explicit AdaptiveTCTaskPolicy(int CutoffDepth)
      : Fsm(CutoffDepth) {}

  constexpr FsmTransition child(CodeVersion Cur, int Dp,
                                bool NeedTask) const {
    return Fsm.child(Cur, Dp, NeedTask);
  }

  FiveVersionFsm Fsm;
};

static_assert(TaskCreationPolicy<CilkTaskPolicy>);
static_assert(TaskCreationPolicy<CilkSynchedTaskPolicy>);
static_assert(TaskCreationPolicy<CutoffTaskPolicy>);
static_assert(TaskCreationPolicy<AdaptiveTCTaskPolicy>);

/// Runtime-kind frontend over the static policies, for consumers that
/// pick the strategy per run instead of per template instantiation (the
/// simulator). Sequential and Tascell have no deque spawn sites; their
/// children uniformly run as plain recursion.
inline FsmTransition dispatchChild(SchedulerKind Kind, int CutoffDepth,
                                   CodeVersion Cur, int Dp, bool NeedTask) {
  switch (Kind) {
  case SchedulerKind::Cilk:
    return CilkTaskPolicy(CutoffDepth).child(Cur, Dp, NeedTask);
  case SchedulerKind::CilkSynched:
    return CilkSynchedTaskPolicy(CutoffDepth).child(Cur, Dp, NeedTask);
  case SchedulerKind::Cutoff:
    return CutoffTaskPolicy(CutoffDepth).child(Cur, Dp, NeedTask);
  case SchedulerKind::AdaptiveTC:
    return AdaptiveTCTaskPolicy(CutoffDepth).child(Cur, Dp, NeedTask);
  case SchedulerKind::Sequential:
  case SchedulerKind::Tascell:
    return {CodeVersion::Sequence, Dp, /*SpawnTask=*/false,
            /*SpecialPush=*/false, /*PolledNeedTask=*/false};
  }
  ATC_UNREACHABLE("unhandled scheduler kind");
}

} // namespace atc

#endif // ATC_CORE_KERNEL_TASKCREATIONPOLICY_H
