//===- core/kernel/WorkerRuntime.h - Shared scheduler kernel ----*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler kernel every SchedulerKind runs on: worker threads, the
/// steal loop (pluggable victim ordering — see VictimPolicy — plus the
/// steal-half stash drain, truncated-exponential backoff, and the paper's
/// stolen_num / need_task signalling), termination detection, result
/// publication and statistics aggregation live here — once. What differs
/// between systems (how work is represented, acquired from a victim, and
/// executed) is supplied by a policy class:
///
///   layering    WorkerRuntime<Policy>        (this file: threads, steal
///       |                                     loop, backoff, signalling,
///       |                                     termination, stats)
///       +------- FramePolicy<P, DequeT, TC>  (deque-based kinds: frames,
///       |                                     join protocol, arenas; TC is
///       |                                     a TaskCreationPolicy)
///       +------- TascellPolicy<P>            (mailbox request/donation)
///
/// Policy requirements (duck-typed; see FramePolicy.h / TascellPolicy.h
/// for the two implementations):
///
///   using Worker = ...;   // derives KernelWorker
///   using Result = ...;   // default-constructible
///   using Task   = ...;   // cheap handle, e.g. a frame or donation ptr
///
///   std::unique_ptr<Worker> makeWorker(int Id);
///   void beginRun(WorkerRuntime<Policy> &Rt);   // per-run setup
///   void endRun();                              // per-run teardown
///   // Root execution on worker 0; returns whether worker 0 should enter
///   // the steal loop afterwards (false when the root runs to completion
///   // inline, as in Tascell).
///   bool runRoot(Worker &W0);
///   // One acquire attempt against a chosen victim. Must not execute the
///   // task (the kernel accounts idle time up to the acquire, then calls
///   // execute) and must do its own policy-specific failure counting
///   // (EmptyProbes, RequestsDenied, ...).
///   AcquireOutcome tryAcquire(Worker &Thief, Worker &Victim, bool Helping,
///                             Task &Out);
///   // Hands back work the thief already owns (the steal-half surplus
///   // stash); the kernel drains this before picking a victim. Policies
///   // without batch acquisition return false unconditionally.
///   bool takeStashed(Worker &Thief, Task &Out);
///   void execute(Worker &W, Task T);
///   // Fold policy-owned state (deque counters, arena stats, unflushed
///   // locals) into the run total; runs on the main thread after join.
///   void aggregateWorker(SchedulerStats &Total, Worker &W);
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_KERNEL_WORKERRUNTIME_H
#define ATC_CORE_KERNEL_WORKERRUNTIME_H

#include "core/Backoff.h"
#include "core/Executor.h"
#include "core/Scheduler.h"
#include "core/SchedulerStats.h"
#include "core/kernel/KernelWorker.h"
#include "core/tuning/TuningController.h"
#include "metrics/MetricsRegistry.h"
#include "support/Compiler.h"
#include "support/Timer.h"
#include "trace/TraceLog.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace atc {

/// Result of one Policy::tryAcquire attempt.
enum class AcquireOutcome {
  Acquired,   ///< Task holds acquired work.
  Failed,     ///< Nothing acquired (empty victim, lost race, denial).
  Terminated, ///< The run completed while waiting; stop acquiring.
};

/// The shared scheduler kernel; see the file comment for the Policy
/// contract. One instance per run configuration; run() executes the
/// computation the policy was constructed around and may be called
/// repeatedly (workers and stats are rebuilt per run).
template <typename Policy> class WorkerRuntime {
public:
  using Worker = typename Policy::Worker;
  using Result = typename Policy::Result;
  using Task = typename Policy::Task;

  WorkerRuntime(Policy &Pol, const SchedulerConfig &Cfg)
      : Pol(Pol), Cfg(Cfg) {
    assert(Cfg.NumWorkers >= 1 && "need at least one worker");
  }

  WorkerRuntime(const WorkerRuntime &) = delete;
  WorkerRuntime &operator=(const WorkerRuntime &) = delete;

  /// Executes the policy's computation and returns its result.
  Result run() {
    Done.store(false, std::memory_order_relaxed);
    HaveResult = false;
    FinalResult = Result{};
    Workers.clear();
    for (int I = 0; I < Cfg.NumWorkers; ++I)
      Workers.push_back(Pol.makeWorker(I));
    Log.reset();
#if ATC_TRACE_ENABLED
    if (Cfg.Trace) {
      Log = std::make_shared<TraceLog>(
          Cfg.NumWorkers, static_cast<std::size_t>(Cfg.TraceCap));
      Log->Meta.Scheduler = schedulerKindName(Cfg.Kind);
      Log->Meta.Source = "runtime";
      for (int I = 0; I < Cfg.NumWorkers; ++I)
        Workers[static_cast<std::size_t>(I)]->Trace = &Log->buffer(I);
    }
#endif
    Reg.reset();
#if ATC_METRICS_ENABLED
    // Tuning implies metrics: the controllers' only inputs are the
    // cells, so an armed Cfg.Tuning arms the registry too.
    bool WantTuning = false;
#if ATC_TUNING_ENABLED
    WantTuning = Cfg.Tuning;
#endif
    if (Cfg.Metrics || Cfg.MetricsSink != nullptr || WantTuning) {
      if (Cfg.MetricsSink != nullptr) {
        // Non-owning alias: the owner (a CLI session or a job server)
        // keeps the sink alive and may be reading it concurrently from
        // a sampler or /metrics thread, so re-arm cells in place (no
        // reallocation — rearm() never shrinks) and leave Meta alone:
        // Meta is unsynchronized strings, and the owner already labels
        // its own registry. RunResult still carries a handle to it.
        Reg = std::shared_ptr<MetricsRegistry>(Cfg.MetricsSink,
                                               [](MetricsRegistry *) {});
        Reg->rearm(Cfg.NumWorkers);
      } else {
        Reg = std::make_shared<MetricsRegistry>();
        Reg->reset(Cfg.NumWorkers);
        Reg->Meta.Scheduler = schedulerKindName(Cfg.Kind);
        Reg->Meta.Source = "runtime";
      }
      std::uint64_t ArmNs = nowNanos();
      for (int I = 0; I < Cfg.NumWorkers; ++I) {
        WorkerMetricsCell &Cell = Reg->cell(I);
        Cell.begin(ArmNs);
        Workers[static_cast<std::size_t>(I)]->Metrics = &Cell;
      }
#if ATC_TUNING_ENABLED
      Tuners.clear();
      if (WantTuning) {
        // One controller per worker, knobs seeded from the run config;
        // publish immediately so the atc_tune_* gauges show the armed
        // initial values before the first rule window closes.
        for (int I = 0; I < Cfg.NumWorkers; ++I) {
          auto T = std::make_unique<TuningController>();
          T->arm(Cfg.effectiveCutoff(), Cfg.MaxStolenNum);
          T->publishTo(Reg->cell(I));
          Workers[static_cast<std::size_t>(I)]->Tune = T.get();
          Tuners.push_back(std::move(T));
        }
      }
#endif
    }
#endif
    Pol.beginRun(*this);

    if (Cfg.NumWorkers == 1) {
      // Single worker: run inline (no thread spawn) — this is the
      // configuration the paper's Table 2 overhead measurements use.
      workerMain(0);
    } else if (Cfg.Executor != nullptr) {
      // Externally owned execution strategy (a persistent SchedulerPool
      // in the server): the same worker loops, somebody else's threads.
      Cfg.Executor->dispatch(Cfg.NumWorkers,
                             [this](int I) { workerMain(I); });
    } else {
      // Per-run threads: the historical one-shot behaviour.
      std::vector<std::thread> Threads;
      Threads.reserve(static_cast<std::size_t>(Cfg.NumWorkers));
      for (int I = 0; I < Cfg.NumWorkers; ++I)
        Threads.emplace_back([this, I] { workerMain(I); });
      for (std::thread &T : Threads)
        T.join();
    }

    Total = SchedulerStats();
    for (int I = 0; I < Cfg.NumWorkers; ++I) {
      Worker &W = *Workers[static_cast<std::size_t>(I)];
      // Fold the policy-owned counters into a per-worker view first (the
      // sum over workers is unchanged: counters add, gauges max), then
      // mirror it to the worker's metric cell — after the join this is
      // the *exact* final publish, so a post-run snapshot reconstructs
      // SchedulerStats field for field.
      SchedulerStats PerWorker = W.Stats;
      Pol.aggregateWorker(PerWorker, W);
      ATC_METRIC(W.Metrics, publishStats(PerWorker));
      Total += PerWorker;
    }
    Pol.endRun();

    assert(HaveResult && "computation finished without a result");
    return FinalResult;
  }

  /// Aggregated statistics of the last run().
  const SchedulerStats &stats() const { return Total; }

  /// The last run's event trace, or null when untraced (Cfg.Trace off or
  /// the ATC_TRACE=OFF build). Shared so RunResult can outlive this
  /// runtime.
  std::shared_ptr<TraceLog> traceLog() const { return Log; }

  /// The last run's metrics registry, or null when unmetered (Cfg.Metrics
  /// off or the ATC_METRICS=OFF build). Non-owning alias when the run
  /// published into an external Cfg.MetricsSink.
  std::shared_ptr<MetricsRegistry> metricsRegistry() const { return Reg; }

  //===--------------------------------------------------------------------===//
  // Services for policies
  //===--------------------------------------------------------------------===//

  int numWorkers() const { return Cfg.NumWorkers; }
  const SchedulerConfig &config() const { return Cfg; }
  Worker &worker(int I) { return *Workers[static_cast<std::size_t>(I)]; }

  /// True once the final result has been published.
  bool done() const { return Done.load(std::memory_order_acquire); }

  /// Publishes the computation's final result and signals termination to
  /// every steal loop. Called exactly once per run (by whichever worker
  /// completes the root).
  void publishFinal(Result Value) {
    {
      std::lock_guard<std::mutex> Guard(ResultLock);
      FinalResult = Value;
      HaveResult = true;
    }
    Done.store(true, std::memory_order_release);
  }

  /// Help-first waiting: acquires and executes other work while \p
  /// NeedHelp stays true (the AdaptiveTC sync_specialtask wait). Rather
  /// than the paper's usleep(100) poll this is work-conserving — each
  /// executed task is counted in HelpSteals — backing off through the
  /// shared stealBackoff policy only when there is nothing to take.
  /// Helping can deepen the native stack (stolen work can reach another
  /// sync in turn), trading stack depth for zero idle time — the usual
  /// help-first bargain.
  template <typename Pred> void helpWhile(Worker &W, Pred &&NeedHelp) {
    TraceModeScope TraceSync(W.Trace, TraceMode::SyncWait);
    MetricsModeScope MetricsSync(W.Metrics, TraceMode::SyncWait);
    int FailStreak = 0;
    while (NeedHelp()) {
      if (Cfg.NumWorkers > 1) {
        Task T;
        if (acquireOnce(W, /*Helping=*/true, T, FailStreak) ==
            AcquireOutcome::Acquired) {
          Pol.execute(W, T);
          FailStreak = 0;
          continue;
        }
      }
      ++FailStreak;
      stealBackoff(FailStreak, liveBackoffShift(W.Tune));
    }
  }

private:
  void workerMain(int Id) {
    Worker &W = *Workers[static_cast<std::size_t>(Id)];
    bool EnterStealLoop = true;
    if (Id == 0)
      EnterStealLoop = Pol.runRoot(W);
    if (EnterStealLoop)
      stealLoop(W);
  }

  /// The idle loop: acquire work until the run terminates, accounting
  /// idle time into StealWaitNs. Idle time is flushed *before* executing
  /// acquired work so execution never counts as waiting.
  void stealLoop(Worker &W) {
    if (Cfg.NumWorkers == 1)
      return;
    // The loop is the worker's idle span; executing acquired work flips
    // the mode from inside Pol.execute and restores it on return.
    TraceModeScope TraceIdle(W.Trace, TraceMode::Idle);
    MetricsModeScope MetricsIdle(W.Metrics, TraceMode::Idle);
    int FailStreak = 0;
    std::uint64_t IdleBegin = nowNanos();
    while (!Done.load(std::memory_order_acquire)) {
      Task T;
      AcquireOutcome O = acquireOnce(W, /*Helping=*/false, T, FailStreak);
      if (O == AcquireOutcome::Acquired) {
        FailStreak = 0;
        std::uint64_t Waited = nowNanos() - IdleBegin;
        W.Stats.StealWaitNs += Waited;
        // The steal-latency histogram (idle-to-acquire) reuses the clock
        // reads the StealWaitNs accounting already pays for; the mirror
        // flush here is the thief's bounded-frequency publication point.
        ATC_METRIC(W.Metrics, StealLatencyNs.record(Waited));
        ATC_METRIC(W.Metrics, publishStats(W.Stats));
        // Thief-side tune opportunity: the cell was just made fresh and
        // the clock already read — the cheapest place to close a window.
        ATC_TUNE(W.Tune, maybeTune(nowNanos(), *W.Metrics));
        Pol.execute(W, T);
        IdleBegin = nowNanos();
        continue;
      }
      if (O == AcquireOutcome::Terminated)
        break;
      ++FailStreak;
#if ATC_TUNING_ENABLED
      if (ATC_UNLIKELY(W.Tune != nullptr) && (FailStreak & 15) == 0) {
        // Starving thief: flush the failure counters so the controller
        // sees them, then evaluate — the max_stolen/backoff rules must
        // fire even when no steal ever succeeds. Off the hot path (the
        // worker is idle and about to back off anyway).
        ATC_METRIC(W.Metrics, publishStats(W.Stats));
        W.Tune->maybeTune(nowNanos(), *W.Metrics);
      }
#endif
      stealBackoff(FailStreak, liveBackoffShift(W.Tune));
    }
    W.Stats.StealWaitNs += nowNanos() - IdleBegin;
  }

  /// Uniform-random victim, excluding the thief itself.
  int randomVictim(Worker &W) {
    int V = static_cast<int>(
        W.Rng.nextBelow(static_cast<std::uint64_t>(Cfg.NumWorkers - 1)));
    if (V >= W.Id)
      ++V;
    return V;
  }

  /// Victim selection per Cfg.Victim (see VictimPolicy). Sets \p Affine
  /// when the choice is a last-victim retry (feeds AffinityHits).
  ///
  ///  * Affinity    - the last victim work came from is the most likely
  ///                  to still have more; random otherwise.
  ///  * Random      - uniform random every attempt.
  ///  * Partitioned - random within the thief's VictimGroupSize group of
  ///                  consecutive ids until the caller's failure streak
  ///                  covers two sweeps of the group (it has run dry, or
  ///                  its work is all below steal depth), then global.
  int pickVictim(Worker &W, int FailStreak, bool &Affine) {
    switch (Cfg.Victim) {
    case VictimPolicy::Affinity: {
      int V = W.LastVictim;
      if (V >= 0 && V != W.Id) {
        Affine = true;
        return V;
      }
      return randomVictim(W);
    }
    case VictimPolicy::Random:
      return randomVictim(W);
    case VictimPolicy::Partitioned: {
      const int G = Cfg.VictimGroupSize > 1 ? Cfg.VictimGroupSize : 1;
      const int Lo = (W.Id / G) * G;
      const int Span =
          Lo + G <= Cfg.NumWorkers ? G : Cfg.NumWorkers - Lo;
      if (Span >= 2 && FailStreak < 2 * Span) {
        int V = Lo + static_cast<int>(W.Rng.nextBelow(
                         static_cast<std::uint64_t>(Span - 1)));
        if (V >= W.Id)
          ++V;
        return V;
      }
      return randomVictim(W);
    }
    }
    ATC_UNREACHABLE("unhandled victim policy");
  }

  /// One acquire attempt: drain any steal-half surplus the thief already
  /// holds, else pick a victim (pickVictim above), let the policy try to
  /// take work from it, then do the kernel-side bookkeeping — steal
  /// counters, affinity update, and the paper's stolen_num / need_task
  /// signalling. A failed attempt (including a policy-side emptiness
  /// probe) counts as a failed steal for that protocol, since an
  /// AdaptiveTC victim busy in fake tasks has an *empty* deque precisely
  /// when it needs to be told to publish special tasks. \p FailStreak is
  /// the caller's consecutive-failure count (Partitioned selection widens
  /// once it shows the local group is dry).
  AcquireOutcome acquireOnce(Worker &W, bool Helping, Task &Out,
                             int FailStreak) {
    assert(Cfg.NumWorkers > 1 && "acquire with no possible victim");
    // A stashed frame from an earlier steal-half batch is work this
    // thief already claimed (join counts were bumped at claim time):
    // take it before bothering another victim. Accounted as an attempt
    // plus a steal so StealAttempts == Steals + StealFails holds; no
    // victim-side signalling or steal-flow trace applies (no victim).
    if (Pol.takeStashed(W, Out)) {
      ++W.Stats.StealAttempts;
      ++W.Stats.Steals;
      if (Helping)
        ++W.Stats.HelpSteals;
      return AcquireOutcome::Acquired;
    }

    bool Affine = false;
    int V = pickVictim(W, FailStreak, Affine);
    Worker &Victim = *Workers[static_cast<std::size_t>(V)];

    ++W.Stats.StealAttempts;
    ATC_TRACE_EVENT(W.Trace, TraceEventKind::StealAttempt,
                    static_cast<std::uint32_t>(V));
    AcquireOutcome O = Pol.tryAcquire(W, Victim, Helping, Out);

    if (O == AcquireOutcome::Acquired) {
      ++W.Stats.Steals;
      ATC_TRACE_EVENT(W.Trace, TraceEventKind::StealSuccess,
                      static_cast<std::uint32_t>(V));
      if (Affine)
        ++W.Stats.AffinityHits;
      if (Helping)
        ++W.Stats.HelpSteals;
      W.LastVictim = V;
      // "When the thief thread succeeds in stealing a task, it clears the
      // victim thread's stolen_num and need_task."
      Victim.StolenNum.store(0, std::memory_order_relaxed);
      Victim.NeedTask.store(false, std::memory_order_relaxed);
      ATC_METRIC(Victim.Metrics, setNeedTask(false));
      return O;
    }
    if (O == AcquireOutcome::Terminated)
      return O;

    // Failed attempt: inform the victim it is being asked for tasks, and
    // stop favouring it.
    ++W.Stats.StealFails;
    ATC_TRACE_EVENT(W.Trace, TraceEventKind::StealFail,
                    static_cast<std::uint32_t>(V));
    W.LastVictim = -1;
    // The failed-steal threshold protects the *victim* (how hard thieves
    // may press before interrupting it), so a tuned victim's live knob
    // takes over from the run constant.
    const int Threshold = liveMaxStolen(Victim.Tune, Cfg.MaxStolenNum);
    int SN = Victim.StolenNum.fetch_add(1, std::memory_order_relaxed) + 1;
    if (SN > Threshold) {
      Victim.NeedTask.store(true, std::memory_order_relaxed);
      ATC_METRIC(Victim.Metrics, setNeedTask(true));
      // Record only the crossing, not every attempt past it — this is
      // the thief's record, on the thief's own ring (single-writer).
      if (SN == Threshold + 1)
        ATC_TRACE_EVENT(W.Trace, TraceEventKind::NeedTaskRaise,
                        static_cast<std::uint32_t>(V));
    }
    return O;
  }

  Policy &Pol;
  SchedulerConfig Cfg;
  std::vector<std::unique_ptr<Worker>> Workers;
#if ATC_TUNING_ENABLED
  /// Per-worker tuning controllers when Cfg.Tuning armed the run
  /// (rebuilt per run, like Workers; workers hold raw pointers).
  std::vector<std::unique_ptr<TuningController>> Tuners;
#endif
  std::shared_ptr<TraceLog> Log;
  std::shared_ptr<MetricsRegistry> Reg;
  std::atomic<bool> Done{false};
  std::mutex ResultLock;
  Result FinalResult{};
  bool HaveResult = false;
  SchedulerStats Total;
};

} // namespace atc

#endif // ATC_CORE_KERNEL_WORKERRUNTIME_H
