//===- core/tuning/TuningController.cpp - Online knob tuning --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/tuning/TuningController.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace atc;

void TuningController::arm(int InitCutoff, int InitMaxStolen,
                           const TuningLimits &L) {
  Limits = L;
  MinCutoff = std::max(1, InitCutoff - 1);
  MaxCutoff = InitCutoff + L.MaxCutoffRaise;
  Cutoff.store(std::max(InitCutoff, MinCutoff), std::memory_order_relaxed);
  MaxStolen.store(
      std::clamp(InitMaxStolen, L.MinMaxStolen, L.MaxMaxStolen),
      std::memory_order_relaxed);
  BackoffShift.store(
      std::clamp(DefaultBackoffShift, L.MinBackoffShift, L.MaxBackoffShift),
      std::memory_order_relaxed);
  CutoffKnob = KnobState();
  MaxStolenKnob = KnobState();
  BackoffKnob = KnobState();
  WindowCount = 0;
  AdjustCount = 0;
  QuietWindows = 0;
  LastTuneNs = 0;
  LastSteals = 0;
  LastStealFails = 0;
  LastReseedCount = 0;
  LastReseedSum = 0;
}

bool TuningController::stepKnob(std::atomic<int> &Knob, KnobState &S,
                                int Dir, int Step, int Lo, int Hi) {
  // Reversal hysteresis: a knob that just moved one way must sit out
  // HoldWindows windows before moving the other way. Same-direction
  // steps are free — convergence toward a far target stays fast.
  if (S.LastDir != 0 && Dir != S.LastDir &&
      WindowCount < S.LastMoveWindow +
                        static_cast<std::uint64_t>(Limits.HoldWindows))
    return false;
  int Cur = Knob.load(std::memory_order_relaxed);
  int Next = std::clamp(Cur + Dir * Step, Lo, Hi);
  if (Next == Cur)
    return false;
  Knob.store(Next, std::memory_order_relaxed);
  S.LastDir = Dir;
  S.LastMoveWindow = WindowCount;
  ++AdjustCount;
  return true;
}

void TuningController::applyWindow(const TuneWindow &Win) {
  ++WindowCount;

  // Steal-success rule: thieves succeeding means the neighbourhood has
  // work to give — let them press the victim harder (higher threshold
  // before need_task interrupts it) and retry faster. Thieves mostly
  // failing means the opposite: interrupt busy workers sooner and stop
  // hammering their deque lines. The dead band between the two keeps
  // mid-ratio runs still.
  const std::uint64_t Attempts = Win.Steals + Win.StealFails;
  if (Attempts >= Limits.MinStealAttempts) {
    const double Succ =
        static_cast<double>(Win.Steals) / static_cast<double>(Attempts);
    if (Succ >= Limits.StealSuccHigh) {
      stepKnob(MaxStolen, MaxStolenKnob, +1, Limits.MaxStolenStep,
               Limits.MinMaxStolen, Limits.MaxMaxStolen);
      stepKnob(BackoffShift, BackoffKnob, -1, 1, Limits.MinBackoffShift,
               Limits.MaxBackoffShift);
    } else if (Succ <= Limits.StealSuccLow) {
      stepKnob(MaxStolen, MaxStolenKnob, -1, Limits.MaxStolenStep,
               Limits.MinMaxStolen, Limits.MaxMaxStolen);
      stepKnob(BackoffShift, BackoffKnob, +1, 1, Limits.MinBackoffShift,
               Limits.MaxBackoffShift);
    }
  }

  // Cut-off rule: frequent cheap reseeds mean this worker keeps getting
  // need_task interrupts it must answer by publishing from the check
  // region — strictly costlier than having exposed real tasks up front,
  // so deepen the cut-off. Decay back toward the initial depth only
  // after a long reseed-quiet spell (over-deep cut-offs pay spawn
  // overhead for tasks nobody steals).
  //
  // The same signal also lowers this worker's own max_stolen_num: the
  // threshold is the number of failed steals against *this* worker
  // before need_task interrupts it, and a reseed-hot window is the
  // victim-side proof that thieves are starving on its watch. Answering
  // the next need_task sooner (lower threshold) shortens the starvation
  // gap the thieves' own windows can't fix — they only see their side
  // of the fail counter.
  if (Win.Reseeds >= Limits.ReseedHotCount &&
      Win.ReseedMeanNs <= static_cast<double>(Limits.ReseedCheapNs)) {
    QuietWindows = 0;
    stepKnob(Cutoff, CutoffKnob, +1, 1, MinCutoff, MaxCutoff);
    stepKnob(MaxStolen, MaxStolenKnob, -1, Limits.MaxStolenStep,
             Limits.MinMaxStolen, Limits.MaxMaxStolen);
  } else if (Win.Reseeds == 0) {
    if (++QuietWindows >= Limits.ReseedQuietWindows) {
      QuietWindows = 0;
      stepKnob(Cutoff, CutoffKnob, -1, 1, MinCutoff, MaxCutoff);
    }
  } else {
    QuietWindows = 0;
  }
}

void TuningController::publishTo(WorkerMetricsCell &Cell) const {
  Cell.publishTuning(static_cast<std::uint32_t>(cutoff()),
                     static_cast<std::uint32_t>(maxStolenNum()),
                     static_cast<std::uint32_t>(backoffShift()),
                     AdjustCount, WindowCount);
}

void TuningController::tune(std::uint64_t NowNs, WorkerMetricsCell &Cell) {
  // First call only anchors the window (knob gauges become visible
  // immediately; rules need a full window of deltas).
  if (LastTuneNs == 0) {
    LastTuneNs = NowNs;
    LastSteals = Cell.stat(StatField::Steals);
    LastStealFails = Cell.stat(StatField::StealFails);
    HistogramCounts R = Cell.ReseedIntervalNs.snapshot();
    LastReseedCount = R.Count;
    LastReseedSum = R.Sum;
    publishTo(Cell);
    return;
  }
  LastTuneNs = NowNs;

  TuneWindow Win;
  std::uint64_t Steals = Cell.stat(StatField::Steals);
  std::uint64_t Fails = Cell.stat(StatField::StealFails);
  Win.Steals = Steals - LastSteals;
  Win.StealFails = Fails - LastStealFails;
  LastSteals = Steals;
  LastStealFails = Fails;

  HistogramCounts R = Cell.ReseedIntervalNs.snapshot();
  std::uint64_t NewReseeds = R.Count - LastReseedCount;
  std::uint64_t NewSum = R.Sum - LastReseedSum;
  LastReseedCount = R.Count;
  LastReseedSum = R.Sum;
  Win.Reseeds = NewReseeds;
  Win.ReseedMeanNs = NewReseeds == 0 ? 0.0
                                     : static_cast<double>(NewSum) /
                                           static_cast<double>(NewReseeds);

  static const bool Debug = std::getenv("ATC_TUNE_DEBUG") != nullptr;
  if (Debug)
    std::fprintf(stderr,
                 "[tune %p] t=%.3fms steals=%llu fails=%llu reseeds=%llu "
                 "mean=%.0fns -> c=%d m=%d b=%d\n",
                 static_cast<const void *>(this), NowNs / 1e6,
                 static_cast<unsigned long long>(Win.Steals),
                 static_cast<unsigned long long>(Win.StealFails),
                 static_cast<unsigned long long>(Win.Reseeds),
                 Win.ReseedMeanNs, cutoff(), maxStolenNum(), backoffShift());

  applyWindow(Win);
  publishTo(Cell);
}
