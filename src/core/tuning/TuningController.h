//===- core/tuning/TuningController.h - Online knob tuning ------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online tuning layer (docs/TUNING.md): a per-worker controller that
/// closes the loop the paper leaves open. The paper fixes its scheduling
/// knobs as compile-time constants — max_stolen_num = 20, the initial
/// cut-off log2(N), the steal-backoff bounds — and the metrics layer
/// already measures exactly the signals those constants trade off (reseed
/// cadence, steal success, steal latency). A TuningController periodically
/// reads its own WorkerMetricsCell and moves three live knobs through a
/// hysteresis-banded rule:
///
///  * cut-off depth      - deepened when reseeds are cheap and frequent
///                         (the worker keeps being interrupted to publish
///                         special tasks — exposing more real tasks up
///                         front is cheaper), decayed back toward the
///                         initial depth after a long reseed-quiet spell.
///  * max_stolen_num     - raised when steals mostly succeed (thieves are
///                         productive; let them push the victim harder
///                         before interrupting it), lowered when they
///                         mostly fail (interrupt busy workers sooner)
///                         and on the victim's own reseed-hot windows —
///                         the victim-side proof that thieves starve on
///                         its watch and need_task must be answered
///                         sooner.
///  * backoff bound      - narrowed when steals mostly succeed (work is
///                         plentiful; retry fast), widened when they
///                         mostly fail (stop hammering contended lines).
///
/// Gating mirrors trace/metrics exactly (the double-gating idiom):
/// building with -DATC_TUNING=OFF defines ATC_TUNING_ENABLED=0 and
/// compiles every read/tune site away; with tuning compiled in, the
/// runtime gate is SchedulerConfig::Tuning — off costs one predictable
/// untaken branch on a worker-local pointer per site. Tuning implies
/// metrics: the controller's only inputs are the cell's counters and
/// histograms, so arming tuning arms the metrics cells too.
///
/// Concurrency model: knobs are relaxed atomics. cutoff() and
/// backoffShift() are read only by the owning worker; maxStolenNum() is
/// read by *thieves* probing this worker (the threshold protects the
/// victim, so the victim's controller owns it — exactly like the NeedTask
/// flag it arms). maybeTune() runs only on the owning worker, at sites
/// that already pay a clock read (steal-loop acquires, reseed publishes,
/// long fail streaks), so an untuned hot path is untouched.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_CORE_TUNING_TUNINGCONTROLLER_H
#define ATC_CORE_TUNING_TUNINGCONTROLLER_H

#include "metrics/Metrics.h"
#include "support/Compiler.h"

#include <atomic>
#include <cstdint>

// Compile-time tuning gate. The build defines ATC_TUNING_ENABLED=0|1 via
// the ATC_TUNING CMake option; standalone consumers default to enabled.
#ifndef ATC_TUNING_ENABLED
#define ATC_TUNING_ENABLED 1
#endif

namespace atc {

/// The untuned runtime's backoff cap exponent: stealBackoff sleeps up to
/// 1us << 7 = 128us (core/Backoff.h). The controller moves BackoffShift
/// around this anchor.
inline constexpr int DefaultBackoffShift = 7;

/// Rule constants and knob bounds; defaults picked so the controller is
/// conservative (one banded step per window, reversals held back) and
/// converges on the fig8/fig10 families without per-workload tuning (see
/// bench/ablation_tuning.cpp). All thresholds live here so tests can
/// drive the rules synthetically.
struct TuningLimits {
  /// Rule-evaluation window: maybeTune() is a no-op until this much
  /// (virtual or real) time has passed since the last evaluation. Short
  /// enough that the controller converges within the first few
  /// milliseconds of a run (the ablation's tree families finish in
  /// ~10-20 ms of virtual time), long enough to accumulate a meaningful
  /// steal sample.
  std::uint64_t WindowNs = 250 * 1000; // 250 us

  /// Cut-off bounds relative to the initial depth, resolved by arm():
  /// [max(1, Init - 1), Init + MaxCutoffRaise]. The raise is deliberately
  /// small: a reseed re-enters fast_2 with *twice* the live cut-off, so
  /// each +1 here already adds two levels of real tasks per published
  /// special — past a few steps the reseed-hot signal stops meaning
  /// "deeper would help" and the extra spawns are pure overhead.
  int MaxCutoffRaise = 3;

  /// max_stolen_num bounds and per-window step. The floor is deliberately
  /// above the paper's minimum useful threshold: with seven starving
  /// thieves a failed attempt lands every few hundred nanoseconds, so a
  /// single-digit threshold turns every brief stall into a need_task
  /// interrupt storm (measurably worse than the best static point on the
  /// fig8 family; see bench/ablation_tuning.cpp).
  int MinMaxStolen = 10;
  int MaxMaxStolen = 160;
  int MaxStolenStep = 4;

  /// Backoff cap exponent bounds (sleep cap = 1us << shift).
  int MinBackoffShift = 2;
  int MaxBackoffShift = 10;

  /// Steal-success bands: ratios at/above High raise max_stolen_num and
  /// narrow backoff; at/below Low do the opposite. The gap between the
  /// bands is the dead zone that keeps a mid-ratio run from dithering.
  double StealSuccHigh = 0.75;
  double StealSuccLow = 0.25;
  /// Minimum steal attempts in a window before the success rule may fire
  /// (below this the ratio is noise).
  std::uint64_t MinStealAttempts = 6;

  /// Cut-off rule: deepen when a window saw at least ReseedHotCount
  /// reseeds whose mean interval was at or below ReseedCheapNs (the
  /// worker is being interrupted often and could have exposed the tasks
  /// up front); decay one step toward the initial depth only after
  /// ReseedQuietWindows consecutive windows with no reseed at all. The
  /// short quiet spell matters: on irregular trees (the fig10 "input"
  /// families) an over-deep cut-off left over from a drain storm spawns
  /// real tasks nobody needs, so the decay must win between storms.
  std::uint64_t ReseedHotCount = 1;
  std::uint64_t ReseedCheapNs = 4000 * 1000; // 4 ms
  int ReseedQuietWindows = 4;

  /// Hysteresis: after a knob moves, a move in the *opposite* direction
  /// is refused for this many windows (same-direction steps stay free).
  /// This is what keeps a boundary-straddling signal from oscillating
  /// the knob every window.
  int HoldWindows = 4;
};

/// One rule-evaluation window's worth of deltas, extracted from the cell
/// by maybeTune() — or built by hand in tests, which drive applyWindow()
/// directly to exercise the rules deterministically.
struct TuneWindow {
  std::uint64_t Steals = 0;       ///< Successful steals this window.
  std::uint64_t StealFails = 0;   ///< Failed attempts this window.
  std::uint64_t Reseeds = 0;      ///< Reseed intervals recorded this window.
  double ReseedMeanNs = 0;        ///< Mean of those intervals (0 if none).
};

/// Per-worker online tuner; see the file comment. One instance per
/// worker, owned by WorkerRuntime (or the simulator) for the run.
class TuningController {
public:
  TuningController() = default;

  /// Arms the controller: knobs start at the run's configured values and
  /// the cut-off bounds are resolved around \p InitCutoff.
  void arm(int InitCutoff, int InitMaxStolen,
           const TuningLimits &Limits = TuningLimits());

  //===------------------------------------------------------------------===//
  // Live knobs (relaxed reads; see the file comment for who reads what)
  //===------------------------------------------------------------------===//

  int cutoff() const { return Cutoff.load(std::memory_order_relaxed); }
  int maxStolenNum() const {
    return MaxStolen.load(std::memory_order_relaxed);
  }
  int backoffShift() const {
    return BackoffShift.load(std::memory_order_relaxed);
  }

  std::uint64_t adjustments() const { return AdjustCount; }
  std::uint64_t windowsEvaluated() const { return WindowCount; }

  //===------------------------------------------------------------------===//
  // Tuning (owning worker only)
  //===------------------------------------------------------------------===//

  /// Rate-limited rule evaluation: when at least Limits.WindowNs has
  /// passed since the last evaluation, extracts the window's deltas from
  /// \p Cell, applies the rules, and mirrors the knob gauges back into
  /// the cell (atc_tune_* series). Cheap when the window is still open:
  /// one subtraction and a compare.
  void maybeTune(std::uint64_t NowNs, WorkerMetricsCell &Cell) {
    if (NowNs < LastTuneNs + Limits.WindowNs)
      return;
    tune(NowNs, Cell);
  }

  /// The rule layer, window extraction already done. Public so tests can
  /// feed synthetic windows; deterministic in (arm state, window
  /// sequence).
  void applyWindow(const TuneWindow &Win);

  /// Mirrors the live knobs and counters into \p Cell's atc_tune_*
  /// gauges.
  void publishTo(WorkerMetricsCell &Cell) const;

private:
  void tune(std::uint64_t NowNs, WorkerMetricsCell &Cell);

  /// Directional knob step with reversal hysteresis; returns true when
  /// the knob actually moved (counted in AdjustCount).
  struct KnobState {
    int LastDir = 0;
    std::uint64_t LastMoveWindow = 0;
  };
  bool stepKnob(std::atomic<int> &Knob, KnobState &S, int Dir, int Step,
                int Lo, int Hi);

  TuningLimits Limits;
  int MinCutoff = 1;
  int MaxCutoff = 9;

  std::atomic<int> Cutoff{0};
  std::atomic<int> MaxStolen{20};
  std::atomic<int> BackoffShift{DefaultBackoffShift};

  KnobState CutoffKnob, MaxStolenKnob, BackoffKnob;
  std::uint64_t WindowCount = 0;
  std::uint64_t AdjustCount = 0;
  int QuietWindows = 0;

  // Owner-only window anchors (previous cell readings).
  std::uint64_t LastTuneNs = 0;
  std::uint64_t LastSteals = 0;
  std::uint64_t LastStealFails = 0;
  std::uint64_t LastReseedCount = 0;
  std::uint64_t LastReseedSum = 0;
};

//===----------------------------------------------------------------------===//
// Gated accessors — how runtime code reads live knobs
//===----------------------------------------------------------------------===//
//
// With ATC_TUNING_ENABLED=0 these fold to the configured default (the
// compile-time gate; the pointer argument is dead and the hot path is
// untouched). Otherwise they cost one predictable null test (the runtime
// gate: the pointer is null unless SchedulerConfig::Tuning armed the
// run) — the same shape as ATC_METRIC.

#if ATC_TUNING_ENABLED

/// The worker's live cut-off depth, or \p Def when untuned.
inline int liveCutoff(const TuningController *T, int Def) {
  return ATC_UNLIKELY(T != nullptr) ? T->cutoff() : Def;
}
/// The *victim's* live failed-steal threshold, or \p Def when untuned.
inline int liveMaxStolen(const TuningController *T, int Def) {
  return ATC_UNLIKELY(T != nullptr) ? T->maxStolenNum() : Def;
}
/// The thief's live backoff cap exponent, or the paper anchor.
inline int liveBackoffShift(const TuningController *T) {
  return ATC_UNLIKELY(T != nullptr) ? T->backoffShift()
                                    : DefaultBackoffShift;
}

/// Invokes a member expression on the controller when armed:
///   ATC_TUNE(W.Tune, maybeTune(nowNanos(), *W.Metrics));
#define ATC_TUNE(TC, ...)                                                    \
  do {                                                                       \
    if (ATC_UNLIKELY((TC) != nullptr))                                       \
      (TC)->__VA_ARGS__;                                                     \
  } while (false)

#else

inline int liveCutoff(const TuningController *, int Def) { return Def; }
inline int liveMaxStolen(const TuningController *, int Def) { return Def; }
inline int liveBackoffShift(const TuningController *) {
  return DefaultBackoffShift;
}

#define ATC_TUNE(TC, ...)                                                    \
  do {                                                                       \
    (void)(TC);                                                              \
  } while (false)

#endif // ATC_TUNING_ENABLED

} // namespace atc

#endif // ATC_CORE_TUNING_TUNINGCONTROLLER_H
