//===- deque/AtomicDeque.cpp - Lock-free special-task WS deque ------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Memory-ordering discipline: every protocol-critical access to Head and
// Tail is seq_cst, mirroring the fence placement of the C11 Chase-Lev
// formulation (Le et al., PPoPP'13) but with seq_cst operations instead of
// standalone fences — ThreadSanitizer models operations precisely while
// its fence support is incomplete, and the ISSUE requires a TSan-clean
// steal path. The correctness argument (sketched in AtomicDeque.h and
// DESIGN.md) leans on the single-total-order guarantee: once the owner's
// Tail store + Head load pair completes, any thief whose Head read
// postdates a conflicting CAS is guaranteed to read the owner's new Tail,
// so stale-index claims are impossible. Slot contents are relaxed atomics
// published by the Tail store and validated by the claiming CAS.
//
//===----------------------------------------------------------------------===//

#include "deque/AtomicDeque.h"

using namespace atc;

AtomicDeque::AtomicDeque(int Capacity)
    : Cap(Capacity), Slots(std::make_unique<Slot[]>(
                         static_cast<std::size_t>(Capacity))) {
  assert(Capacity > 0 && "deque capacity must be positive");
}

bool AtomicDeque::tryPush(void *Frame, bool Special) {
  std::int64_t T = Tail.load(std::memory_order_relaxed);
  std::int64_t H = Head.load(std::memory_order_acquire);
  if (ATC_UNLIKELY(T - H >= static_cast<std::int64_t>(Cap))) {
    Overflows.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Slot &S = slot(T);
  S.Frame.store(Frame, std::memory_order_relaxed);
  S.Special.store(Special, std::memory_order_relaxed);
  // Publish the entry before the index: a thief that observes the new
  // Tail must see the slot contents (release part of seq_cst).
  Tail.store(T + 1, std::memory_order_seq_cst);
  int Depth = static_cast<int>(T + 1 - H);
  if (Depth > HighWater.load(std::memory_order_relaxed))
    HighWater.store(Depth, std::memory_order_relaxed);
  publishDepth();
  return true;
}

PopResult AtomicDeque::pop() {
  std::int64_t T = Tail.load(std::memory_order_relaxed) - 1; // our entry
  Tail.store(T, std::memory_order_seq_cst);
  std::int64_t H = Head.load(std::memory_order_seq_cst);

  if (ATC_LIKELY(H < T)) {
    if (H == T - 1 && slot(H).Special.load(std::memory_order_relaxed)) {
      // A special sits directly below our entry at the head: a thief's
      // H += 2 jump can claim our entry even though Head never points at
      // it. Arbitrate by executing the jump ourselves; that consumes the
      // special entry too, so on success re-publish it at the new head.
      // The deque must keep reading [special] after a successful child
      // pop — exactly TheDeque's state here — so that the spawn loop's
      // subsequent pushes stay under the special's protection and the
      // eventual popSpecial() finds the entry.
      void *SpecialFrame = slot(H).Frame.load(std::memory_order_relaxed);
      if (Head.compare_exchange_strong(H, H + 2, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        Slot &S = slot(H + 2);
        S.Frame.store(SpecialFrame, std::memory_order_relaxed);
        S.Special.store(true, std::memory_order_relaxed);
        // Publish the slot before the index (release part of seq_cst).
        Tail.store(T + 2, std::memory_order_seq_cst); // [special] at H+2
        publishDepth();
        return PopResult::Success;
      }
      // A thief's jump won the race: our entry was stolen.
      Tail.store(T + 1, std::memory_order_seq_cst);
      publishDepth();
      return PopResult::Failure;
    }
    // At least one non-jumpable entry below ours: plain take. Safe by the
    // Chase-Lev argument — a thief claiming index T would have had to
    // observe Head at T (or T-1 with a special), contradicting our fenced
    // read of H < T-1 (or the non-special slot at T-1).
    publishDepth();
    return PopResult::Success;
  }

  if (H == T) {
    // Single entry: the classic Chase-Lev race, resolved by CAS.
    bool Won = Head.compare_exchange_strong(
        H, H + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    Tail.store(T + 1, std::memory_order_seq_cst);
    publishDepth();
    return Won ? PopResult::Success : PopResult::Failure;
  }

  // H > T: the entry was already claimed before we decremented Tail.
  assert(H == T + 1 && "head advanced past an unpublished entry");
  Tail.store(H, std::memory_order_seq_cst);
  publishDepth();
  return PopResult::Failure;
}

PopResult AtomicDeque::popSpecial() {
  std::int64_t T = Tail.load(std::memory_order_relaxed) - 1; // special's idx
  Tail.store(T, std::memory_order_seq_cst);
  std::int64_t H = Head.load(std::memory_order_seq_cst);
  if (H <= T) {
    // The special entry is intact; nothing below it is jumpable and a
    // special alone is unstealable, so no thief can contend: plain take.
    publishDepth();
    return PopResult::Success;
  }
  // A thief's jump consumed the special together with its stolen child.
  // The owner's failed pop() of the stolen child already restored Tail to
  // Head, so after our decrement the gap reads as exactly one.
  assert(H == T + 1 && "head in impossible state past a special");
  Tail.store(H, std::memory_order_seq_cst); // the THE "H = T" reset
  publishDepth();
  return PopResult::Failure;
}

StealResult AtomicDeque::steal(void (*OnSteal)(void *Frame, void *Ctx),
                               void *Ctx) {
  std::int64_t H = Head.load(std::memory_order_seq_cst);
  std::int64_t T = Tail.load(std::memory_order_seq_cst);
  if (H >= T)
    return {StealResult::Status::Empty, nullptr};

  Slot &S = slot(H);
  if (ATC_LIKELY(!S.Special.load(std::memory_order_relaxed))) {
    // Read the frame before the CAS: the slot may be recycled once Head
    // moves past it, and the CAS succeeding is what certifies the read.
    void *Frame = S.Frame.load(std::memory_order_relaxed);
    if (!Head.compare_exchange_strong(H, H + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      CasRetries.fetch_add(1, std::memory_order_relaxed);
      return {StealResult::Status::Empty, nullptr};
    }
    if (OnSteal)
      OnSteal(Frame, Ctx);
    publishDepth();
    return {StealResult::Status::Success, Frame};
  }

  // Special at the head: it can never be stolen; claim its child (the
  // next entry) with a single CAS Head -> Head+2 when one is present.
  if (T - H < 2)
    return {StealResult::Status::Empty, nullptr};
  void *Frame = slot(H + 1).Frame.load(std::memory_order_relaxed);
  if (!Head.compare_exchange_strong(H, H + 2, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    CasRetries.fetch_add(1, std::memory_order_relaxed);
    return {StealResult::Status::Empty, nullptr};
  }
  if (OnSteal)
    OnSteal(Frame, Ctx);
  publishDepth();
  return {StealResult::Status::Success, Frame};
}

void AtomicDeque::reset() {
  // Keep the indices monotonic (pull Tail down to Head) so a stale thief
  // can never observe a reused index value.
  std::int64_t H = Head.load(std::memory_order_seq_cst);
  Tail.store(H, std::memory_order_seq_cst);
  publishDepth();
}
