//===- deque/AtomicDeque.h - Lock-free special-task WS deque ----*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free alternative to the THE-protocol deque (TheDeque) with the
/// same interface and the same AdaptiveTC special-task semantics. Thieves
/// claim entries with a CAS on Head (Chase & Lev, SPAA'05; C11 formulation
/// after Le, Pop, Cohen, Zappa Nardelli, PPoPP'13) instead of taking the
/// victim's mutex, so steal attempts — and in particular the very common
/// probe of an *empty* deque — never serialize on a lock.
///
/// Differences from the textbook Chase-Lev deque:
///
///  * Entries carry a Special marker. A special task is never stolen: a
///    thief that finds a special at the head claims the special's *child*
///    (the next entry) with a single CAS Head -> Head+2, the lock-free
///    equivalent of the paper's "H += 2" protocol (Fig. 3e).
///  * popSpecial() reports whether the special's child was stolen, the
///    lock-free equivalent of Fig. 3b (the THE deque resets H = T there;
///    with monotonic indices the same state is reached by restoring Tail
///    to the observed Head).
///  * The buffer is a fixed-size circular array: tryPush reports overflow
///    instead of growing, so the schedulers can count overflow pressure
///    exactly as with the fixed THE array.
///
/// Index discipline: Head and Tail are monotonically increasing 64-bit
/// counters over a circular buffer (slot = index % capacity). They are
/// never reset mid-run, which is what makes the CAS on Head ABA-free —
/// the THE deque's H = T / Tail-restore resets would re-issue old index
/// values and let a stale thief claim a recycled slot.
///
/// Owner-side races. A thief can only claim the owner's bottom entry
/// (index T-1) in two states, and only there must pop() arbitrate with a
/// CAS of its own:
///
///  * H == T-1: the classic single-entry race (Chase-Lev pop).
///  * H == T-2 with a special at H: a thief's H += 2 jump claims H+1 ==
///    T-1 without Head ever pointing at it. The owner claims by executing
///    the same jump itself (CAS Head -> Head+2), which consumes the
///    special entry as a side effect — so the owner immediately
///    re-publishes the special at the new head. The deque must keep
///    reading [special] after a successful child pop (exactly TheDeque's
///    state there): later pushes stay under the special's protection and
///    popSpecial() still finds the entry. A flag-based shortcut instead of
///    re-publication is wrong — the child's spawn loop keeps pushing
///    after the pop, and those entries would be stealable as *plain*
///    entries while popSpecial() later reported "nothing stolen".
///
/// For H < T-2 (or H == T-2 with a non-special head entry) the plain
/// fenced take is safe by the standard Chase-Lev argument extended to
/// jumps: claiming the bottom entry requires a thief to observe Head at
/// T-1 (plain claim) or T-2-with-special (jump), and the monotonicity of
/// Head makes either observation contradict the owner's fenced read.
///
/// Thread-safety contract: one owner thread calls tryPush/pop/popSpecial/
/// reset; any number of thief threads call steal. Identical to TheDeque.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_DEQUE_ATOMICDEQUE_H
#define ATC_DEQUE_ATOMICDEQUE_H

#include "deque/TheDeque.h" // PopResult / StealResult
#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace atc {

/// Fixed-capacity lock-free work-stealing deque with AdaptiveTC
/// special-task support. Drop-in replacement for TheDeque.
class AtomicDeque {
public:
  /// Creates a deque with room for \p Capacity entries.
  explicit AtomicDeque(int Capacity = 8192);

  AtomicDeque(const AtomicDeque &) = delete;
  AtomicDeque &operator=(const AtomicDeque &) = delete;

  /// Owner: pushes \p Frame at the tail. Returns false on overflow.
  bool tryPush(void *Frame, bool Special = false);

  /// Owner: pops the tail entry. Failure means the entry was stolen (or
  /// claimed by a thief's special-child jump); the indices are restored
  /// so the deque reads as empty.
  PopResult pop();

  /// Owner: pops a special task from the tail. Failure means the
  /// special's child was stolen (the thief's H += 2 jump consumed the
  /// special entry as well).
  PopResult popSpecial();

  /// Thief: steals the head entry; if the head is special, steals the
  /// special's child via a single CAS Head -> Head+2.
  ///
  /// \p OnSteal, when non-null, runs with the stolen frame immediately
  /// after the claiming CAS. Unlike TheDeque there is no lock, so there
  /// is NO happens-before edge to the owner's pop/popSpecial failure:
  /// callers must tolerate the callback's effects racing with the
  /// owner's failure handling (FramePolicy's join protocol does — see
  /// DESIGN.md "Lock-free steal path").
  StealResult steal(void (*OnSteal)(void *Frame, void *Ctx) = nullptr,
                    void *Ctx = nullptr);

  /// True when no entry is present (approximate under concurrency).
  /// Relaxed loads only — this is the thieves' lock-free emptiness probe.
  bool empty() const {
    return Head.load(std::memory_order_relaxed) >=
           Tail.load(std::memory_order_relaxed);
  }

  /// Number of entries between head and tail (approximate).
  int size() const {
    std::int64_t H = Head.load(std::memory_order_relaxed);
    std::int64_t T = Tail.load(std::memory_order_relaxed);
    return T > H ? static_cast<int>(T - H) : 0;
  }

  int capacity() const { return Cap; }

  /// Number of tryPush calls rejected due to a full array.
  std::uint64_t overflowCount() const {
    return Overflows.load(std::memory_order_relaxed);
  }

  /// High-water mark of the deque depth (entries present at once).
  int highWaterMark() const {
    return HighWater.load(std::memory_order_relaxed);
  }

  /// Thief-side CAS attempts that lost a race (to another thief or to the
  /// owner) and had to report Empty.
  std::uint64_t casRetryCount() const {
    return CasRetries.load(std::memory_order_relaxed);
  }

  /// Lock acquisitions — always 0; present so the engines can report the
  /// same steal-path observability for either deque kind.
  std::uint64_t lockAcquireCount() const { return 0; }

  /// Owner: drops all entries. Must not race with thieves. Indices stay
  /// monotonic (Tail is pulled down to Head) so stale thieves can never
  /// observe a reused index value.
  void reset();

  /// Live-metrics hook (src/metrics): when attached, every size-changing
  /// operation stores the new occupancy into \p Gauge with a relaxed
  /// atomic store — owner pushes/pops and thief steals alike. Null (the
  /// default) costs one predictable untaken branch per operation; with
  /// ATC_METRICS=OFF builds the stores are compiled out entirely.
  void attachDepthGauge(std::atomic<std::int64_t> *Gauge) {
    DepthGauge = Gauge;
  }

private:
  /// Publishes size() to the attached gauge (see attachDepthGauge).
  void publishDepth() {
#if ATC_METRICS_ENABLED
    if (ATC_UNLIKELY(DepthGauge != nullptr))
      DepthGauge->store(size(), std::memory_order_relaxed);
#endif
  }

  /// Slot contents are atomic because a thief may read a slot while the
  /// owner recycles it for a new push; the claiming CAS discards any such
  /// stale read (the thief only uses the value if its CAS succeeds, and
  /// a slot is only rewritten once Head has moved past it).
  struct Slot {
    std::atomic<void *> Frame{nullptr};
    std::atomic<bool> Special{false};
  };

  Slot &slot(std::int64_t I) { return Slots[static_cast<std::size_t>(
      I % static_cast<std::int64_t>(Cap))]; }

  const int Cap;
  std::unique_ptr<Slot[]> Slots;

  /// Head (steal end) and Tail (owner end); Head <= Tail when quiescent.
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<std::int64_t> Head{0};
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<std::int64_t> Tail{0};

  std::atomic<std::uint64_t> Overflows{0};
  std::atomic<std::uint64_t> CasRetries{0};
  std::atomic<int> HighWater{0};
  std::atomic<std::int64_t> *DepthGauge = nullptr;
};

} // namespace atc

#endif // ATC_DEQUE_ATOMICDEQUE_H
