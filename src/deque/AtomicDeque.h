//===- deque/AtomicDeque.h - Lock-free special-task WS deque ----*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free alternative to the THE-protocol deque (TheDeque) with the
/// same interface and the same AdaptiveTC special-task semantics. Thieves
/// claim entries with a CAS on Head (Chase & Lev, SPAA'05; C11 formulation
/// after Le, Pop, Cohen, Zappa Nardelli, PPoPP'13) instead of taking the
/// victim's mutex, so steal attempts — and in particular the very common
/// probe of an *empty* deque — never serialize on a lock.
///
/// Differences from the textbook Chase-Lev deque:
///
///  * Entries carry a Special marker. A special task is never stolen: a
///    thief that finds a special at the head claims the special's *child*
///    (the next entry) with a single CAS Head -> Head+2, the lock-free
///    equivalent of the paper's "H += 2" protocol (Fig. 3e).
///  * popSpecial() reports whether the special's child was stolen, the
///    lock-free equivalent of Fig. 3b (the THE deque resets H = T there;
///    with monotonic indices the same state is reached by restoring Tail
///    to the observed Head).
///  * The buffer is a fixed-size circular array: tryPush reports overflow
///    instead of growing, so the schedulers can count overflow pressure
///    exactly as with the fixed THE array. ChaseLevDeque is the same
///    protocol over a growable ring.
///
/// Index discipline: Head and Tail are monotonically increasing 64-bit
/// counters over a circular buffer (slot = index % capacity). They are
/// never reset mid-run, which is what makes the CAS on Head ABA-free —
/// the THE deque's H = T / Tail-restore resets would re-issue old index
/// values and let a stale thief claim a recycled slot.
///
/// Owner-side races. A thief can only claim the owner's bottom entry
/// (index T-1) in two states, and only there must pop() arbitrate with a
/// CAS of its own:
///
///  * H == T-1: the classic single-entry race (Chase-Lev pop).
///  * H == T-2 with a special at H: a thief's H += 2 jump claims H+1 ==
///    T-1 without Head ever pointing at it. The owner claims by executing
///    the same jump itself (CAS Head -> Head+2), which consumes the
///    special entry as a side effect — so the owner immediately
///    re-publishes the special at the new head. The deque must keep
///    reading [special] after a successful child pop (exactly TheDeque's
///    state there): later pushes stay under the special's protection and
///    popSpecial() still finds the entry. A flag-based shortcut instead of
///    re-publication is wrong — the child's spawn loop keeps pushing
///    after the pop, and those entries would be stealable as *plain*
///    entries while popSpecial() later reported "nothing stolen".
///
/// For H < T-2 (or H == T-2 with a non-special head entry) the plain
/// fenced take is safe by the standard Chase-Lev argument extended to
/// jumps: claiming the bottom entry requires a thief to observe Head at
/// T-1 (plain claim) or T-2-with-special (jump), and the monotonicity of
/// Head makes either observation contradict the owner's fenced read.
///
/// Memory-ordering discipline: every protocol-critical access to Head and
/// Tail is seq_cst, mirroring the fence placement of the C11 Chase-Lev
/// formulation but with seq_cst operations instead of standalone fences —
/// ThreadSanitizer models operations precisely while its fence support is
/// incomplete. The correctness argument leans on the single-total-order
/// guarantee: once the owner's Tail store + Head load pair completes, any
/// thief whose Head read postdates a conflicting CAS is guaranteed to
/// read the owner's new Tail, so stale-index claims are impossible. Slot
/// contents are relaxed atomics published by the Tail store and validated
/// by the claiming CAS.
///
/// Thread-safety contract: one owner thread calls tryPush/pop/popSpecial/
/// reset; any number of thief threads call steal. Identical to TheDeque.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_DEQUE_ATOMICDEQUE_H
#define ATC_DEQUE_ATOMICDEQUE_H

#include "deque/TheDeque.h" // PopResult / StealResult
#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace atc {

/// Fixed-capacity lock-free work-stealing deque with AdaptiveTC
/// special-task support. Drop-in replacement for TheDeque.
class AtomicDeque {
public:
  /// Creates a deque with room for \p Capacity entries.
  explicit AtomicDeque(int Capacity = 8192)
      : Cap(Capacity), Slots(std::make_unique<Slot[]>(
                           static_cast<std::size_t>(Capacity))) {
    assert(Capacity > 0 && "deque capacity must be positive");
  }

  AtomicDeque(const AtomicDeque &) = delete;
  AtomicDeque &operator=(const AtomicDeque &) = delete;

  /// Owner: pushes \p Frame at the tail. Returns false on overflow.
  bool tryPush(void *Frame, bool Special = false) {
    std::int64_t T = Tail.load(std::memory_order_relaxed);
    std::int64_t H = Head.load(std::memory_order_acquire);
    if (ATC_UNLIKELY(T - H >= static_cast<std::int64_t>(Cap))) {
      Overflows.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Slot &S = slot(T);
    S.Frame.store(Frame, std::memory_order_relaxed);
    S.Special.store(Special, std::memory_order_relaxed);
    // Publish the entry before the index: a thief that observes the new
    // Tail must see the slot contents (release part of seq_cst).
    Tail.store(T + 1, std::memory_order_seq_cst);
    int Depth = static_cast<int>(T + 1 - H);
    if (Depth > HighWater.load(std::memory_order_relaxed))
      HighWater.store(Depth, std::memory_order_relaxed);
    publishDepth();
    return true;
  }

  /// Owner: pops the tail entry. Failure means the entry was stolen (or
  /// claimed by a thief's special-child jump); the indices are restored
  /// so the deque reads as empty.
  PopResult pop() {
    std::int64_t T = Tail.load(std::memory_order_relaxed) - 1; // our entry
    Tail.store(T, std::memory_order_seq_cst);
    std::int64_t H = Head.load(std::memory_order_seq_cst);

    if (ATC_LIKELY(H < T)) {
      if (H == T - 1 && slot(H).Special.load(std::memory_order_relaxed)) {
        // A special sits directly below our entry at the head: a thief's
        // H += 2 jump can claim our entry even though Head never points
        // at it. Arbitrate by executing the jump ourselves; that consumes
        // the special entry too, so on success re-publish it at the new
        // head. The deque must keep reading [special] after a successful
        // child pop — exactly TheDeque's state here — so that the spawn
        // loop's subsequent pushes stay under the special's protection
        // and the eventual popSpecial() finds the entry.
        void *SpecialFrame = slot(H).Frame.load(std::memory_order_relaxed);
        if (Head.compare_exchange_strong(H, H + 2, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
          Slot &S = slot(H + 2);
          S.Frame.store(SpecialFrame, std::memory_order_relaxed);
          S.Special.store(true, std::memory_order_relaxed);
          // Publish the slot before the index (release part of seq_cst).
          Tail.store(T + 2, std::memory_order_seq_cst); // [special] at H+2
          publishDepth();
          return PopResult::Success;
        }
        // A thief's jump won the race: our entry was stolen.
        Tail.store(T + 1, std::memory_order_seq_cst);
        publishDepth();
        return PopResult::Failure;
      }
      // At least one non-jumpable entry below ours: plain take. Safe by
      // the Chase-Lev argument — a thief claiming index T would have had
      // to observe Head at T (or T-1 with a special), contradicting our
      // fenced read of H < T-1 (or the non-special slot at T-1).
      publishDepth();
      return PopResult::Success;
    }

    if (H == T) {
      // Single entry: the classic Chase-Lev race, resolved by CAS.
      bool Won = Head.compare_exchange_strong(
          H, H + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      Tail.store(T + 1, std::memory_order_seq_cst);
      publishDepth();
      return Won ? PopResult::Success : PopResult::Failure;
    }

    // H > T: the entry was already claimed before we decremented Tail.
    assert(H == T + 1 && "head advanced past an unpublished entry");
    Tail.store(H, std::memory_order_seq_cst);
    publishDepth();
    return PopResult::Failure;
  }

  /// Owner: pops a special task from the tail. Failure means the
  /// special's child was stolen (the thief's H += 2 jump consumed the
  /// special entry as well).
  PopResult popSpecial() {
    std::int64_t T = Tail.load(std::memory_order_relaxed) - 1; // special
    Tail.store(T, std::memory_order_seq_cst);
    std::int64_t H = Head.load(std::memory_order_seq_cst);
    if (H <= T) {
      // The special entry is intact; nothing below it is jumpable and a
      // special alone is unstealable, so no thief can contend: plain
      // take.
      publishDepth();
      return PopResult::Success;
    }
    // A thief's jump consumed the special together with its stolen child.
    // The owner's failed pop() of the stolen child already restored Tail
    // to Head, so after our decrement the gap reads as exactly one.
    assert(H == T + 1 && "head in impossible state past a special");
    Tail.store(H, std::memory_order_seq_cst); // the THE "H = T" reset
    publishDepth();
    return PopResult::Failure;
  }

  /// Thief: steals the head entry; if the head is special, steals the
  /// special's child via a single CAS Head -> Head+2.
  ///
  /// \p OnSteal, when non-null, runs with the stolen frame immediately
  /// after the claiming CAS. Unlike TheDeque there is no lock, so there
  /// is NO happens-before edge to the owner's pop/popSpecial failure:
  /// callers must tolerate the callback's effects racing with the
  /// owner's failure handling (FramePolicy's join protocol does — see
  /// DESIGN.md "Lock-free steal path").
  StealResult steal(void (*OnSteal)(void *Frame, void *Ctx) = nullptr,
                    void *Ctx = nullptr) {
    std::int64_t H = Head.load(std::memory_order_seq_cst);
    std::int64_t T = Tail.load(std::memory_order_seq_cst);
    if (H >= T)
      return {StealResult::Status::Empty, nullptr};

    Slot &S = slot(H);
    if (ATC_LIKELY(!S.Special.load(std::memory_order_relaxed))) {
      // Read the frame before the CAS: the slot may be recycled once
      // Head moves past it, and the CAS succeeding is what certifies the
      // read.
      void *Frame = S.Frame.load(std::memory_order_relaxed);
      if (!Head.compare_exchange_strong(H, H + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        CasRetries.fetch_add(1, std::memory_order_relaxed);
        return {StealResult::Status::Empty, nullptr};
      }
      if (OnSteal)
        OnSteal(Frame, Ctx);
      publishDepth();
      return {StealResult::Status::Success, Frame};
    }

    // Special at the head: it can never be stolen; claim its child (the
    // next entry) with a single CAS Head -> Head+2 when one is present.
    if (T - H < 2)
      return {StealResult::Status::Empty, nullptr};
    void *Frame = slot(H + 1).Frame.load(std::memory_order_relaxed);
    if (!Head.compare_exchange_strong(H, H + 2, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      CasRetries.fetch_add(1, std::memory_order_relaxed);
      return {StealResult::Status::Empty, nullptr};
    }
    if (OnSteal)
      OnSteal(Frame, Ctx);
    publishDepth();
    return {StealResult::Status::Success, Frame};
  }

  /// True when no entry is present (approximate under concurrency).
  /// Relaxed loads only — this is the thieves' lock-free emptiness probe.
  bool empty() const {
    return Head.load(std::memory_order_relaxed) >=
           Tail.load(std::memory_order_relaxed);
  }

  /// Number of entries between head and tail (approximate).
  int size() const {
    std::int64_t H = Head.load(std::memory_order_relaxed);
    std::int64_t T = Tail.load(std::memory_order_relaxed);
    return T > H ? static_cast<int>(T - H) : 0;
  }

  int capacity() const { return Cap; }

  /// Number of tryPush calls rejected due to a full array.
  std::uint64_t overflowCount() const {
    return Overflows.load(std::memory_order_relaxed);
  }

  /// High-water mark of the deque depth (entries present at once).
  int highWaterMark() const {
    return HighWater.load(std::memory_order_relaxed);
  }

  /// Thief-side CAS attempts that lost a race (to another thief or to the
  /// owner) and had to report Empty.
  std::uint64_t casRetryCount() const {
    return CasRetries.load(std::memory_order_relaxed);
  }

  /// Lock acquisitions — always 0; present so the engines can report the
  /// same steal-path observability for either deque kind.
  std::uint64_t lockAcquireCount() const { return 0; }

  /// Owner: drops all entries. Must not race with thieves. Indices stay
  /// monotonic (Tail is pulled down to Head) so stale thieves can never
  /// observe a reused index value.
  void reset() {
    std::int64_t H = Head.load(std::memory_order_seq_cst);
    Tail.store(H, std::memory_order_seq_cst);
    publishDepth();
  }

  /// Live-metrics hook (src/metrics): when attached, every size-changing
  /// operation stores the new occupancy into \p Gauge with a relaxed
  /// atomic store — owner pushes/pops and thief steals alike. Null (the
  /// default) costs one predictable untaken branch per operation; with
  /// ATC_METRICS=OFF builds the stores are compiled out entirely.
  void attachDepthGauge(std::atomic<std::int64_t> *Gauge) {
    DepthGauge = Gauge;
  }

private:
  /// Publishes size() to the attached gauge (see attachDepthGauge).
  void publishDepth() {
#if ATC_METRICS_ENABLED
    if (ATC_UNLIKELY(DepthGauge != nullptr))
      DepthGauge->store(size(), std::memory_order_relaxed);
#endif
  }

  /// Slot contents are atomic because a thief may read a slot while the
  /// owner recycles it for a new push; the claiming CAS discards any such
  /// stale read (the thief only uses the value if its CAS succeeds, and
  /// a slot is only rewritten once Head has moved past it).
  struct Slot {
    std::atomic<void *> Frame{nullptr};
    std::atomic<bool> Special{false};
  };

  Slot &slot(std::int64_t I) { return Slots[static_cast<std::size_t>(
      I % static_cast<std::int64_t>(Cap))]; }

  const int Cap;
  std::unique_ptr<Slot[]> Slots;

  /// Head (steal end) and Tail (owner end); Head <= Tail when quiescent.
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<std::int64_t> Head{0};
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<std::int64_t> Tail{0};

  std::atomic<std::uint64_t> Overflows{0};
  std::atomic<std::uint64_t> CasRetries{0};
  std::atomic<int> HighWater{0};
  std::atomic<std::int64_t> *DepthGauge = nullptr;
};

} // namespace atc

#endif // ATC_DEQUE_ATOMICDEQUE_H
