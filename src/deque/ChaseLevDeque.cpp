//===- deque/ChaseLevDeque.cpp - Dynamic circular WS deque ----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deque/ChaseLevDeque.h"

using namespace atc;

ChaseLevDeque::ChaseLevDeque(std::int64_t InitialCapacity) {
  assert(InitialCapacity > 0 &&
         (InitialCapacity & (InitialCapacity - 1)) == 0 &&
         "capacity must be a power of two");
  Buffer.store(new RingBuffer(InitialCapacity), std::memory_order_relaxed);
}

ChaseLevDeque::~ChaseLevDeque() {
  delete Buffer.load(std::memory_order_relaxed);
  for (RingBuffer *RB : Retired)
    delete RB;
}

ChaseLevDeque::RingBuffer *ChaseLevDeque::grow(RingBuffer *Old,
                                               std::int64_t B,
                                               std::int64_t T) {
  auto *New = new RingBuffer(Old->Capacity * 2);
  for (std::int64_t I = T; I < B; ++I)
    New->put(I, Old->get(I));
  // The old buffer may still be read by in-flight thieves; retire it until
  // destruction instead of freeing now.
  Retired.push_back(Old);
  Grows.fetch_add(1, std::memory_order_relaxed);
  return New;
}

void ChaseLevDeque::push(void *Frame) {
  std::int64_t B = Bottom.load(std::memory_order_relaxed);
  std::int64_t T = Top.load(std::memory_order_acquire);
  RingBuffer *RB = Buffer.load(std::memory_order_relaxed);
  if (B - T > RB->Capacity - 1) {
    RB = grow(RB, B, T);
    Buffer.store(RB, std::memory_order_release);
  }
  RB->put(B, Frame);
  std::atomic_thread_fence(std::memory_order_release);
  Bottom.store(B + 1, std::memory_order_relaxed);
}

void *ChaseLevDeque::pop() {
  std::int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
  RingBuffer *RB = Buffer.load(std::memory_order_relaxed);
  Bottom.store(B, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t T = Top.load(std::memory_order_relaxed);

  if (T > B) {
    // Deque was already empty: restore Bottom.
    Bottom.store(B + 1, std::memory_order_relaxed);
    return nullptr;
  }

  void *Frame = RB->get(B);
  if (T != B)
    return Frame; // More than one entry: no race possible.

  // Single entry left: race with thieves via CAS on Top.
  if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                   std::memory_order_relaxed))
    Frame = nullptr; // Lost the race.
  Bottom.store(B + 1, std::memory_order_relaxed);
  return Frame;
}

void *ChaseLevDeque::steal() {
  std::int64_t T = Top.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t B = Bottom.load(std::memory_order_acquire);
  if (T >= B)
    return nullptr;

  RingBuffer *RB = Buffer.load(std::memory_order_consume);
  void *Frame = RB->get(T);
  if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                   std::memory_order_relaxed))
    return nullptr; // Lost to another thief or the owner's pop.
  return Frame;
}
