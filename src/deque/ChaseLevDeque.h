//===- deque/ChaseLevDeque.h - Dynamic circular WS deque --------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chase & Lev's dynamic circular work-stealing deque (SPAA'05) — the
/// related-work alternative the paper cites for avoiding deque overflow
/// ("a work-stealing d-e-que using a buffer pool that does not have the
/// overflow problem"). Included so benches can compare the overflow-free
/// lock-free design against the fixed-array THE deque, and to measure the
/// paper's claim that AdaptiveTC's fewer pushes make the fixed array safe.
///
/// Standard C11-memory-model formulation (Le, Pop, Cohen, Zappa Nardelli,
/// PPoPP'13). Owner calls push/pop; thieves call steal. The buffer grows
/// geometrically; old buffers are retired to a pool freed at destruction
/// (safe memory reclamation without an epoch scheme).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_DEQUE_CHASELEVDEQUE_H
#define ATC_DEQUE_CHASELEVDEQUE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace atc {

/// Lock-free growable work-stealing deque of opaque pointers.
class ChaseLevDeque {
public:
  explicit ChaseLevDeque(std::int64_t InitialCapacity = 64);
  ~ChaseLevDeque();

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  /// Owner: pushes \p Frame at the bottom. Grows the buffer when full —
  /// never fails.
  void push(void *Frame);

  /// Owner: pops from the bottom. Returns nullptr when empty or lost to a
  /// concurrent thief.
  void *pop();

  /// Thief: steals from the top. Returns nullptr when empty or when the
  /// race with another thief/owner was lost (caller should retry
  /// elsewhere).
  void *steal();

  /// Approximate number of entries.
  std::int64_t size() const {
    std::int64_t B = Bottom.load(std::memory_order_relaxed);
    std::int64_t T = Top.load(std::memory_order_relaxed);
    return B > T ? B - T : 0;
  }

  bool empty() const { return size() == 0; }

  /// Number of buffer growths performed (overflow events that a fixed
  /// array would have failed on).
  std::uint64_t growCount() const {
    return Grows.load(std::memory_order_relaxed);
  }

private:
  /// Circular array with capacity a power of two.
  struct RingBuffer {
    explicit RingBuffer(std::int64_t N) : Capacity(N), Mask(N - 1),
                                          Slots(new std::atomic<void *>[N]) {}
    ~RingBuffer() { delete[] Slots; }

    void *get(std::int64_t I) const {
      return Slots[I & Mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t I, void *V) {
      Slots[I & Mask].store(V, std::memory_order_relaxed);
    }

    const std::int64_t Capacity;
    const std::int64_t Mask;
    std::atomic<void *> *Slots;
  };

  RingBuffer *grow(RingBuffer *Old, std::int64_t B, std::int64_t T);

  std::atomic<std::int64_t> Top{0};
  std::atomic<std::int64_t> Bottom{0};
  std::atomic<RingBuffer *> Buffer;
  std::vector<RingBuffer *> Retired;
  std::atomic<std::uint64_t> Grows{0};
};

} // namespace atc

#endif // ATC_DEQUE_CHASELEVDEQUE_H
