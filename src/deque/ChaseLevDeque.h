//===- deque/ChaseLevDeque.h - Growable special-task WS deque ---*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chase & Lev's dynamic circular work-stealing deque (SPAA'05) promoted
/// to a first-class scheduler deque: the same interface and the same
/// AdaptiveTC special-task semantics as TheDeque / AtomicDeque
/// (SchedulerConfig::Deque = chaselev), with the growable ring that the
/// paper cites as the related-work answer to deque overflow ("a
/// work-stealing d-e-que using a buffer pool that does not have the
/// overflow problem").
///
/// Relationship to AtomicDeque: the index protocol is identical —
/// monotonic 64-bit Head/Tail, CAS-on-Head steals, the special-task
/// H += 2 child jump, owner-side arbitration with special re-publication
/// (see AtomicDeque.h for the full protocol argument; every owner-side
/// race case carries over unchanged because growth is owner-only and
/// never moves live entries to new indices). What differs:
///
///  * The ring grows geometrically instead of rejecting pushes: tryPush
///    never fails, overflowCount() is always 0, and growCount() reports
///    how many times a fixed array of the initial capacity would have
///    overflowed. SchedulerConfig::DequeCapacity is therefore an
///    *initial* capacity here (rounded up to a power of two), not a
///    limit.
///  * Ring-buffer reclamation: a grown-out buffer may still be read by
///    in-flight thieves (they loaded the buffer pointer before the
///    owner swapped it), so old buffers are *retired* to a list owned by
///    the deque and freed only at destruction — safe memory reclamation
///    without an epoch/hazard scheme. Entries in [Head, Tail) are copied
///    to the new buffer at the same indices, so a thief holding the old
///    buffer still reads the correct entry for any index its CAS can
///    certify; total retired memory is bounded by twice the final
///    capacity (geometric growth).
///
/// Memory-ordering discipline: seq_cst *operations* on Head/Tail (and an
/// acquire/release handoff on the buffer pointer), exactly like
/// AtomicDeque and unlike the textbook formulation's standalone fences —
/// ThreadSanitizer models operations precisely while its fence support
/// is incomplete, so this deque is TSan-clean by construction.
///
/// Thread-safety contract: one owner thread calls tryPush/pop/popSpecial/
/// reset; any number of thief threads call steal. Identical to TheDeque
/// and AtomicDeque.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_DEQUE_CHASELEVDEQUE_H
#define ATC_DEQUE_CHASELEVDEQUE_H

#include "deque/TheDeque.h" // PopResult / StealResult
#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace atc {

/// Growable lock-free work-stealing deque with AdaptiveTC special-task
/// support. Drop-in replacement for TheDeque / AtomicDeque that never
/// overflows.
class ChaseLevDeque {
public:
  /// Creates a deque with an *initial* capacity of \p Capacity entries,
  /// rounded up to a power of two. The ring grows on demand.
  explicit ChaseLevDeque(int Capacity = 8192) {
    assert(Capacity > 0 && "deque capacity must be positive");
    std::int64_t N = 2;
    while (N < Capacity)
      N *= 2;
    Buffer.store(new RingBuffer(N), std::memory_order_relaxed);
  }

  ~ChaseLevDeque() {
    delete Buffer.load(std::memory_order_relaxed);
    for (RingBuffer *RB : Retired)
      delete RB;
  }

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  /// Owner: pushes \p Frame at the tail, growing the ring when full.
  /// Always succeeds (returns true; the bool return keeps the signature
  /// interchangeable with the fixed-array deques).
  bool tryPush(void *Frame, bool Special = false) {
    std::int64_t T = Tail.load(std::memory_order_relaxed);
    std::int64_t H = Head.load(std::memory_order_acquire);
    RingBuffer *RB = Buffer.load(std::memory_order_relaxed);
    if (ATC_UNLIKELY(T - H >= RB->Capacity)) {
      RB = grow(RB, H, T);
      Buffer.store(RB, std::memory_order_release);
    }
    Slot &S = RB->slot(T);
    S.Frame.store(Frame, std::memory_order_relaxed);
    S.Special.store(Special, std::memory_order_relaxed);
    // Publish the entry before the index: a thief that observes the new
    // Tail must see the slot contents — and, across a growth, the new
    // buffer pointer (its release-store above precedes this seq_cst
    // store, so reading the new Tail acquires both).
    Tail.store(T + 1, std::memory_order_seq_cst);
    int Depth = static_cast<int>(T + 1 - H);
    if (Depth > HighWater.load(std::memory_order_relaxed))
      HighWater.store(Depth, std::memory_order_relaxed);
    publishDepth();
    return true;
  }

  /// Owner: pops the tail entry. Failure means the entry was stolen (or
  /// claimed by a thief's special-child jump); the indices are restored
  /// so the deque reads as empty. Protocol identical to AtomicDeque::pop.
  PopResult pop() {
    std::int64_t T = Tail.load(std::memory_order_relaxed) - 1; // our entry
    RingBuffer *RB = Buffer.load(std::memory_order_relaxed);
    Tail.store(T, std::memory_order_seq_cst);
    std::int64_t H = Head.load(std::memory_order_seq_cst);

    if (ATC_LIKELY(H < T)) {
      if (H == T - 1 && RB->slot(H).Special.load(std::memory_order_relaxed)) {
        // A special sits directly below our entry at the head: a thief's
        // H += 2 jump can claim our entry even though Head never points
        // at it. Arbitrate by executing the jump ourselves; that consumes
        // the special entry too, so on success re-publish it at the new
        // head (see AtomicDeque.h for why a flag shortcut is wrong).
        void *SpecialFrame = RB->slot(H).Frame.load(std::memory_order_relaxed);
        if (Head.compare_exchange_strong(H, H + 2, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
          Slot &S = RB->slot(H + 2);
          S.Frame.store(SpecialFrame, std::memory_order_relaxed);
          S.Special.store(true, std::memory_order_relaxed);
          // Publish the slot before the index (release part of seq_cst).
          Tail.store(T + 2, std::memory_order_seq_cst); // [special] at H+2
          publishDepth();
          return PopResult::Success;
        }
        // A thief's jump won the race: our entry was stolen.
        Tail.store(T + 1, std::memory_order_seq_cst);
        publishDepth();
        return PopResult::Failure;
      }
      // At least one non-jumpable entry below ours: plain take (standard
      // Chase-Lev argument, see AtomicDeque::pop).
      publishDepth();
      return PopResult::Success;
    }

    if (H == T) {
      // Single entry: the classic Chase-Lev race, resolved by CAS.
      bool Won = Head.compare_exchange_strong(
          H, H + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      Tail.store(T + 1, std::memory_order_seq_cst);
      publishDepth();
      return Won ? PopResult::Success : PopResult::Failure;
    }

    // H > T: the entry was already claimed before we decremented Tail.
    assert(H == T + 1 && "head advanced past an unpublished entry");
    Tail.store(H, std::memory_order_seq_cst);
    publishDepth();
    return PopResult::Failure;
  }

  /// Owner: pops a special task from the tail. Failure means the
  /// special's child was stolen (the thief's H += 2 jump consumed the
  /// special entry as well).
  PopResult popSpecial() {
    std::int64_t T = Tail.load(std::memory_order_relaxed) - 1; // special
    Tail.store(T, std::memory_order_seq_cst);
    std::int64_t H = Head.load(std::memory_order_seq_cst);
    if (H <= T) {
      // The special entry is intact; nothing below it is jumpable and a
      // special alone is unstealable, so no thief can contend.
      publishDepth();
      return PopResult::Success;
    }
    // A thief's jump consumed the special together with its stolen child.
    assert(H == T + 1 && "head in impossible state past a special");
    Tail.store(H, std::memory_order_seq_cst); // the THE "H = T" reset
    publishDepth();
    return PopResult::Failure;
  }

  /// Thief: steals the head entry; if the head is special, steals the
  /// special's child via a single CAS Head -> Head+2.
  ///
  /// \p OnSteal, when non-null, runs with the stolen frame immediately
  /// after the claiming CAS — no lock, so no happens-before edge to the
  /// owner's pop/popSpecial failure (same contract as AtomicDeque).
  StealResult steal(void (*OnSteal)(void *Frame, void *Ctx) = nullptr,
                    void *Ctx = nullptr) {
    std::int64_t H = Head.load(std::memory_order_seq_cst);
    std::int64_t T = Tail.load(std::memory_order_seq_cst);
    if (H >= T)
      return {StealResult::Status::Empty, nullptr};
    // Load the buffer *after* Tail: the owner release-stores the grown
    // buffer before the Tail store that publishes into it, so a thief
    // that read that Tail value reads a buffer holding every index in
    // [H, T). A stale (retired) buffer is still readable — it is freed
    // only at destruction — and holds the same entries at the indices a
    // successful CAS can certify.
    RingBuffer *RB = Buffer.load(std::memory_order_acquire);

    if (ATC_LIKELY(!RB->slot(H).Special.load(std::memory_order_relaxed))) {
      // Read the frame before the CAS: the slot may be recycled once
      // Head moves past it, and the CAS succeeding certifies the read.
      void *Frame = RB->slot(H).Frame.load(std::memory_order_relaxed);
      if (!Head.compare_exchange_strong(H, H + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        CasRetries.fetch_add(1, std::memory_order_relaxed);
        return {StealResult::Status::Empty, nullptr};
      }
      if (OnSteal)
        OnSteal(Frame, Ctx);
      publishDepth();
      return {StealResult::Status::Success, Frame};
    }

    // Special at the head: it can never be stolen; claim its child (the
    // next entry) with a single CAS Head -> Head+2 when one is present.
    if (T - H < 2)
      return {StealResult::Status::Empty, nullptr};
    void *Frame = RB->slot(H + 1).Frame.load(std::memory_order_relaxed);
    if (!Head.compare_exchange_strong(H, H + 2, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      CasRetries.fetch_add(1, std::memory_order_relaxed);
      return {StealResult::Status::Empty, nullptr};
    }
    if (OnSteal)
      OnSteal(Frame, Ctx);
    publishDepth();
    return {StealResult::Status::Success, Frame};
  }

  /// True when no entry is present (approximate under concurrency).
  /// Relaxed loads only — this is the thieves' lock-free emptiness probe.
  bool empty() const {
    return Head.load(std::memory_order_relaxed) >=
           Tail.load(std::memory_order_relaxed);
  }

  /// Number of entries between head and tail (approximate).
  int size() const {
    std::int64_t H = Head.load(std::memory_order_relaxed);
    std::int64_t T = Tail.load(std::memory_order_relaxed);
    return T > H ? static_cast<int>(T - H) : 0;
  }

  /// Current ring capacity (grows over the deque's lifetime).
  int capacity() const {
    return static_cast<int>(
        Buffer.load(std::memory_order_relaxed)->Capacity);
  }

  /// tryPush rejections — always 0 (the ring grows instead); present so
  /// the engines report the same overflow-pressure observability for
  /// every deque kind. See growCount() for the growth events.
  std::uint64_t overflowCount() const { return 0; }

  /// Number of ring growths performed (each one is an overflow a fixed
  /// array of the initial capacity would have hit).
  std::uint64_t growCount() const {
    return Grows.load(std::memory_order_relaxed);
  }

  /// High-water mark of the deque depth (entries present at once).
  int highWaterMark() const {
    return HighWater.load(std::memory_order_relaxed);
  }

  /// Thief-side CAS attempts that lost a race and had to report Empty.
  std::uint64_t casRetryCount() const {
    return CasRetries.load(std::memory_order_relaxed);
  }

  /// Lock acquisitions — always 0; present so the engines can report the
  /// same steal-path observability for every deque kind.
  std::uint64_t lockAcquireCount() const { return 0; }

  /// Owner: drops all entries. Must not race with thieves. Indices stay
  /// monotonic (Tail is pulled down to Head) so stale thieves can never
  /// observe a reused index value.
  void reset() {
    std::int64_t H = Head.load(std::memory_order_seq_cst);
    Tail.store(H, std::memory_order_seq_cst);
    publishDepth();
  }

  /// Live-metrics hook (src/metrics): when attached, every size-changing
  /// operation stores the new occupancy into \p Gauge with a relaxed
  /// atomic store. Same contract as the other deque kinds.
  void attachDepthGauge(std::atomic<std::int64_t> *Gauge) {
    DepthGauge = Gauge;
  }

private:
  /// Publishes size() to the attached gauge (see attachDepthGauge).
  void publishDepth() {
#if ATC_METRICS_ENABLED
    if (ATC_UNLIKELY(DepthGauge != nullptr))
      DepthGauge->store(size(), std::memory_order_relaxed);
#endif
  }

  /// Slot contents are atomic because a thief may read a slot while the
  /// owner recycles (or re-publishes into) it; the claiming CAS discards
  /// any such stale read.
  struct Slot {
    std::atomic<void *> Frame{nullptr};
    std::atomic<bool> Special{false};
  };

  /// Circular array with power-of-two capacity; slot(I) = Slots[I & Mask]
  /// keeps indices monotonic across growths.
  struct RingBuffer {
    explicit RingBuffer(std::int64_t N)
        : Capacity(N), Mask(N - 1), Slots(new Slot[static_cast<std::size_t>(N)]) {}
    ~RingBuffer() { delete[] Slots; }

    RingBuffer(const RingBuffer &) = delete;
    RingBuffer &operator=(const RingBuffer &) = delete;

    Slot &slot(std::int64_t I) { return Slots[I & Mask]; }

    const std::int64_t Capacity;
    const std::int64_t Mask;
    Slot *Slots;
  };

  /// Owner-only: allocates a ring of twice the capacity, copies the live
  /// entries [H, T) across at unchanged indices, and retires the old
  /// buffer (in-flight thieves may still be reading it; see the file
  /// comment on reclamation).
  RingBuffer *grow(RingBuffer *Old, std::int64_t H, std::int64_t T) {
    auto *New = new RingBuffer(Old->Capacity * 2);
    for (std::int64_t I = H; I < T; ++I) {
      New->slot(I).Frame.store(
          Old->slot(I).Frame.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      New->slot(I).Special.store(
          Old->slot(I).Special.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    Retired.push_back(Old);
    Grows.fetch_add(1, std::memory_order_relaxed);
    return New;
  }

  /// Head (steal end) and Tail (owner end); Head <= Tail when quiescent.
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<std::int64_t> Head{0};
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<std::int64_t> Tail{0};

  std::atomic<RingBuffer *> Buffer{nullptr};
  std::vector<RingBuffer *> Retired; ///< Owner-only; freed at destruction.

  std::atomic<std::uint64_t> Grows{0};
  std::atomic<std::uint64_t> CasRetries{0};
  std::atomic<int> HighWater{0};
  std::atomic<std::int64_t> *DepthGauge = nullptr;
};

} // namespace atc

#endif // ATC_DEQUE_CHASELEVDEQUE_H
