//===- deque/TheDeque.cpp - THE-protocol work-stealing deque --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deque/TheDeque.h"

using namespace atc;

TheDeque::TheDeque(int Capacity)
    : Cap(Capacity), Slots(std::make_unique<Entry[]>(
                         static_cast<std::size_t>(Capacity))) {
  assert(Capacity > 0 && "deque capacity must be positive");
}

bool TheDeque::tryPush(void *Frame, bool Special) {
  int T = Tail.load(std::memory_order_relaxed);
  if (ATC_UNLIKELY(T >= Cap)) {
    Overflows.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Slots[T].Frame = Frame;
  Slots[T].Special.store(Special, std::memory_order_relaxed);
  // Publish the entry before the index: a thief that observes the new Tail
  // must see the slot contents.
  Tail.store(T + 1, std::memory_order_seq_cst);
  if (T + 1 > HighWater.load(std::memory_order_relaxed))
    HighWater.store(T + 1, std::memory_order_relaxed);
  publishDepth();
  return true;
}

PopResult TheDeque::pop() {
  // Fig. 3a. Fast path: decrement Tail; if no thief has passed it, done.
  int T = Tail.load(std::memory_order_relaxed) - 1;
  Tail.store(T, std::memory_order_seq_cst); // MEMBAR
  int H = Head.load(std::memory_order_seq_cst);
  if (ATC_LIKELY(H <= T)) {
    publishDepth();
    return PopResult::Success;
  }

  // Conflict: restore Tail and retry under the lock.
  Tail.store(T + 1, std::memory_order_seq_cst);
  LockAcquires.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Guard(Lock);
  Tail.store(T, std::memory_order_seq_cst);
  H = Head.load(std::memory_order_seq_cst);
  if (H > T) {
    // The entry was stolen. Restore Tail so the deque reads as empty
    // (H == T) rather than inverted.
    Tail.store(T + 1, std::memory_order_seq_cst);
    publishDepth();
    return PopResult::Failure;
  }
  publishDepth();
  return PopResult::Success;
}

PopResult TheDeque::popSpecial() {
  // Fig. 3b: always under the lock; on failure reset H = T so the special
  // task stays at the head (a special task can never be stolen).
  LockAcquires.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Guard(Lock);
  int T = Tail.load(std::memory_order_relaxed) - 1;
  Tail.store(T, std::memory_order_seq_cst);
  int H = Head.load(std::memory_order_seq_cst);
  if (H > T) {
    Head.store(T, std::memory_order_seq_cst);
    publishDepth();
    return PopResult::Failure;
  }
  publishDepth();
  return PopResult::Success;
}

StealResult TheDeque::steal(void (*OnSteal)(void *Frame, void *Ctx),
                            void *Ctx) {
  // Lock-free emptiness pre-check: most steal attempts under high worker
  // counts probe deques with nothing stealable, and taking the victim's
  // mutex for those serializes the whole steal path on lock and cache
  // line contention. A relaxed H >= T read can only misreport "empty" for
  // a deque that momentarily was (or will immediately read as) empty,
  // which a failed steal attempt already means.
  if (Head.load(std::memory_order_relaxed) >=
      Tail.load(std::memory_order_relaxed))
    return {StealResult::Status::Empty, nullptr};

  LockAcquires.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Guard(Lock);
  int H = Head.load(std::memory_order_relaxed);
  int T = Tail.load(std::memory_order_seq_cst);
  if (H >= T)
    return {StealResult::Status::Empty, nullptr};

  // Peek the head entry's kind to pick the claim width. The peek can race
  // with the owner popping this very slot and re-pushing a different entry
  // at the same index (the H/T re-check cannot tell: same index, new
  // occupant), so it is only a *hint*: after the claim succeeds the slot
  // is frozen — Tail cannot drop below the claimed index without the
  // owner's pop conflicting into the lock this thief holds — and the flag
  // is re-read; a mismatch undoes the claim and backs off.
  if (!Slots[H].Special.load(std::memory_order_relaxed)) {
    // Fig. 3d: claim the head entry, then re-check against the owner's
    // concurrent pop.
    Head.store(H + 1, std::memory_order_seq_cst); // MEMBAR
    T = Tail.load(std::memory_order_seq_cst);
    if (H + 1 > T) {
      Head.store(H, std::memory_order_seq_cst);
      return {StealResult::Status::Empty, nullptr};
    }
    if (ATC_UNLIKELY(Slots[H].Special.load(std::memory_order_relaxed))) {
      // The peek raced with a re-push that put a special at the head;
      // stealing it would violate the protocol. Undo and back off.
      Head.store(H, std::memory_order_seq_cst);
      return {StealResult::Status::Empty, nullptr};
    }
    void *Frame = Slots[H].Frame;
    if (OnSteal)
      OnSteal(Frame, Ctx);
    publishDepth();
    return {StealResult::Status::Success, Frame};
  }

  // Fig. 3e: the head is a special task, which can never be stolen; steal
  // its child (the next entry) instead: H += 2.
  Head.store(H + 2, std::memory_order_seq_cst); // MEMBAR
  T = Tail.load(std::memory_order_seq_cst);
  if (H + 2 > T) {
    Head.store(H, std::memory_order_seq_cst);
    return {StealResult::Status::Empty, nullptr};
  }
  if (ATC_UNLIKELY(!Slots[H].Special.load(std::memory_order_relaxed))) {
    // The peek raced with a re-push that replaced the special with an
    // ordinary entry; the H += 2 claim width was wrong. Undo and back off.
    Head.store(H, std::memory_order_seq_cst);
    return {StealResult::Status::Empty, nullptr};
  }
  void *Frame = Slots[H + 1].Frame;
  if (OnSteal)
    OnSteal(Frame, Ctx);
  publishDepth();
  return {StealResult::Status::Success, Frame};
}

void TheDeque::reset() {
  // Under the lock so an in-flight thief (already past the lock-free
  // emptiness pre-check) cannot interleave with the index rewind. The
  // pre-check itself tolerates a racing reset: a stale read can only turn
  // into a spurious "empty", which a failed steal attempt already means.
  std::lock_guard<std::mutex> Guard(Lock);
  Head.store(0, std::memory_order_seq_cst);
  Tail.store(0, std::memory_order_seq_cst);
  publishDepth();
}
