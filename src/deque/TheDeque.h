//===- deque/TheDeque.h - THE-protocol work-stealing deque ------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simplified Cilk THE protocol deque of the paper (Figure 3), extended
/// with the special-task operations AdaptiveTC adds:
///
///  * push / pop / steal      - the classic THE operations (Fig. 3a, 3d)
///  * popSpecial              - pop of a special task; on detecting that the
///                              special's child was stolen, resets H = T so
///                              the (unstealable) special stays at the head
///                              (Fig. 3b)
///  * steal handles a special task at the head by stealing the special's
///    child instead, i.e. the H += 2 protocol (Fig. 3e)
///
/// The deque is a fixed-size array of entries, exactly as in Cilk 5.4.6 —
/// the paper calls out that this representation "is prone to overflow";
/// tryPush reports overflow instead of asserting so the schedulers can
/// count overflow pressure (AdaptiveTC pushes far fewer tasks and is less
/// prone to it).
///
/// Thread-safety contract: one owner thread calls push/pop/popSpecial;
/// any number of thief threads call steal. Thieves always take the lock;
/// the owner takes it only on conflict (the THE fast path).
///
/// Header-only (like AtomicDeque and ChaseLevDeque): the deque layer has
/// no translation units, so atcc-generated code — which compiles with
/// just -I <repo>/src and links no libraries — can instantiate any deque
/// kind, and the push/pop/steal fast path inlines into the engines.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_DEQUE_THEDEQUE_H
#define ATC_DEQUE_THEDEQUE_H

#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>

// Compile-time metrics gate (see metrics/Metrics.h — the fallback is
// duplicated here so the deque library stays independent of it).
#ifndef ATC_METRICS_ENABLED
#define ATC_METRICS_ENABLED 1
#endif

namespace atc {

/// Result of an owner-side pop.
enum class PopResult {
  Success, ///< The tail entry was reclaimed by the owner.
  Failure, ///< The entry (or the special's child) had been stolen.
};

/// Result of a thief-side steal.
struct StealResult {
  enum class Status {
    Success, ///< Frame holds the stolen entry.
    Empty,   ///< Nothing stealable in this deque.
  } Status;
  void *Frame = nullptr;
};

/// Fixed-array THE-protocol deque storing opaque frame pointers.
class TheDeque {
public:
  /// Creates a deque with room for \p Capacity entries.
  explicit TheDeque(int Capacity = 8192)
      : Cap(Capacity), Slots(std::make_unique<Entry[]>(
                           static_cast<std::size_t>(Capacity))) {
    assert(Capacity > 0 && "deque capacity must be positive");
  }

  TheDeque(const TheDeque &) = delete;
  TheDeque &operator=(const TheDeque &) = delete;

  /// Owner: pushes \p Frame at the tail. \p Special marks the entry as an
  /// AdaptiveTC special task (never stolen itself; thieves skip to its
  /// child). Returns false on overflow (entry not pushed).
  bool tryPush(void *Frame, bool Special = false) {
    int T = Tail.load(std::memory_order_relaxed);
    if (ATC_UNLIKELY(T >= Cap)) {
      Overflows.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Slots[T].Frame = Frame;
    Slots[T].Special.store(Special, std::memory_order_relaxed);
    // Publish the entry before the index: a thief that observes the new
    // Tail must see the slot contents.
    Tail.store(T + 1, std::memory_order_seq_cst);
    if (T + 1 > HighWater.load(std::memory_order_relaxed))
      HighWater.store(T + 1, std::memory_order_relaxed);
    publishDepth();
    return true;
  }

  /// Owner: pops the tail entry (Fig. 3a). Failure means the entry was
  /// stolen; the deque indices are restored so H == T (empty).
  PopResult pop() {
    // Fig. 3a. Fast path: decrement Tail; if no thief has passed it, done.
    int T = Tail.load(std::memory_order_relaxed) - 1;
    Tail.store(T, std::memory_order_seq_cst); // MEMBAR
    int H = Head.load(std::memory_order_seq_cst);
    if (ATC_LIKELY(H <= T)) {
      publishDepth();
      return PopResult::Success;
    }

    // Conflict: restore Tail and retry under the lock.
    Tail.store(T + 1, std::memory_order_seq_cst);
    LockAcquires.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Guard(Lock);
    Tail.store(T, std::memory_order_seq_cst);
    H = Head.load(std::memory_order_seq_cst);
    if (H > T) {
      // The entry was stolen. Restore Tail so the deque reads as empty
      // (H == T) rather than inverted.
      Tail.store(T + 1, std::memory_order_seq_cst);
      publishDepth();
      return PopResult::Failure;
    }
    publishDepth();
    return PopResult::Success;
  }

  /// Owner: pops a special task from the tail (Fig. 3b). Failure means the
  /// special's child was stolen; H is reset to T so the special remains
  /// conceptually at the head.
  PopResult popSpecial() {
    // Fig. 3b: always under the lock; on failure reset H = T so the
    // special task stays at the head (a special task can never be stolen).
    LockAcquires.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Guard(Lock);
    int T = Tail.load(std::memory_order_relaxed) - 1;
    Tail.store(T, std::memory_order_seq_cst);
    int H = Head.load(std::memory_order_seq_cst);
    if (H > T) {
      Head.store(T, std::memory_order_seq_cst);
      publishDepth();
      return PopResult::Failure;
    }
    publishDepth();
    return PopResult::Success;
  }

  /// Thief: steals the head entry (Fig. 3d). If the head entry is special,
  /// steals the special's child instead via the H += 2 protocol (Fig. 3e).
  ///
  /// A relaxed H/T emptiness check runs *before* the lock is acquired, so
  /// thieves probing an empty deque never contend on the mutex (the
  /// common case under high worker counts). The check is conservative:
  /// it can only report empty for a deque that really was empty at some
  /// point during the call, which is all a steal attempt may assume.
  ///
  /// \p OnSteal, when non-null, is invoked with the stolen frame *while the
  /// protocol lock is still held*. The schedulers use this to bump join
  /// counters with a happens-before edge to the owner's pop/popSpecial
  /// failure (which also resolves under this lock), so an owner that
  /// observes "stolen" is guaranteed to observe the bumped counters too.
  StealResult steal(void (*OnSteal)(void *Frame, void *Ctx) = nullptr,
                    void *Ctx = nullptr) {
    // Lock-free emptiness pre-check: most steal attempts under high worker
    // counts probe deques with nothing stealable, and taking the victim's
    // mutex for those serializes the whole steal path on lock and cache
    // line contention. A relaxed H >= T read can only misreport "empty"
    // for a deque that momentarily was (or will immediately read as)
    // empty, which a failed steal attempt already means.
    if (Head.load(std::memory_order_relaxed) >=
        Tail.load(std::memory_order_relaxed))
      return {StealResult::Status::Empty, nullptr};

    LockAcquires.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Guard(Lock);
    int H = Head.load(std::memory_order_relaxed);
    int T = Tail.load(std::memory_order_seq_cst);
    if (H >= T)
      return {StealResult::Status::Empty, nullptr};

    // Peek the head entry's kind to pick the claim width. The peek can
    // race with the owner popping this very slot and re-pushing a
    // different entry at the same index (the H/T re-check cannot tell:
    // same index, new occupant), so it is only a *hint*: after the claim
    // succeeds the slot is frozen — Tail cannot drop below the claimed
    // index without the owner's pop conflicting into the lock this thief
    // holds — and the flag is re-read; a mismatch undoes the claim and
    // backs off.
    if (!Slots[H].Special.load(std::memory_order_relaxed)) {
      // Fig. 3d: claim the head entry, then re-check against the owner's
      // concurrent pop.
      Head.store(H + 1, std::memory_order_seq_cst); // MEMBAR
      T = Tail.load(std::memory_order_seq_cst);
      if (H + 1 > T) {
        Head.store(H, std::memory_order_seq_cst);
        return {StealResult::Status::Empty, nullptr};
      }
      if (ATC_UNLIKELY(Slots[H].Special.load(std::memory_order_relaxed))) {
        // The peek raced with a re-push that put a special at the head;
        // stealing it would violate the protocol. Undo and back off.
        Head.store(H, std::memory_order_seq_cst);
        return {StealResult::Status::Empty, nullptr};
      }
      void *Frame = Slots[H].Frame;
      if (OnSteal)
        OnSteal(Frame, Ctx);
      publishDepth();
      return {StealResult::Status::Success, Frame};
    }

    // Fig. 3e: the head is a special task, which can never be stolen;
    // steal its child (the next entry) instead: H += 2.
    Head.store(H + 2, std::memory_order_seq_cst); // MEMBAR
    T = Tail.load(std::memory_order_seq_cst);
    if (H + 2 > T) {
      Head.store(H, std::memory_order_seq_cst);
      return {StealResult::Status::Empty, nullptr};
    }
    if (ATC_UNLIKELY(!Slots[H].Special.load(std::memory_order_relaxed))) {
      // The peek raced with a re-push that replaced the special with an
      // ordinary entry; the H += 2 claim width was wrong. Undo, back off.
      Head.store(H, std::memory_order_seq_cst);
      return {StealResult::Status::Empty, nullptr};
    }
    void *Frame = Slots[H + 1].Frame;
    if (OnSteal)
      OnSteal(Frame, Ctx);
    publishDepth();
    return {StealResult::Status::Success, Frame};
  }

  /// True when no entry is present (approximate under concurrency).
  bool empty() const { return Head.load(std::memory_order_relaxed) >=
                              Tail.load(std::memory_order_relaxed); }

  /// Number of entries between head and tail (approximate).
  int size() const {
    int H = Head.load(std::memory_order_relaxed);
    int T = Tail.load(std::memory_order_relaxed);
    return T > H ? T - H : 0;
  }

  int capacity() const { return Cap; }

  /// Number of tryPush calls rejected due to a full array.
  std::uint64_t overflowCount() const {
    return Overflows.load(std::memory_order_relaxed);
  }

  /// High-water mark of the tail index, an indicator of how deep the deque
  /// got (overflow pressure).
  int highWaterMark() const {
    return HighWater.load(std::memory_order_relaxed);
  }

  /// Number of protocol-lock acquisitions (thief steals past the empty
  /// pre-check, owner pop conflicts, popSpecial calls).
  std::uint64_t lockAcquireCount() const {
    return LockAcquires.load(std::memory_order_relaxed);
  }

  /// CAS retries — always 0; present so the engines can report the same
  /// steal-path observability for either deque kind.
  std::uint64_t casRetryCount() const { return 0; }

  /// Owner: resets the deque to the empty state. Must not race with
  /// thieves.
  void reset() {
    // Under the lock so an in-flight thief (already past the lock-free
    // emptiness pre-check) cannot interleave with the index rewind. The
    // pre-check itself tolerates a racing reset: a stale read can only
    // turn into a spurious "empty", which a failed steal attempt already
    // means.
    std::lock_guard<std::mutex> Guard(Lock);
    Head.store(0, std::memory_order_seq_cst);
    Tail.store(0, std::memory_order_seq_cst);
    publishDepth();
  }

  /// Live-metrics hook (src/metrics): when attached, every size-changing
  /// operation stores the new occupancy into \p Gauge with a relaxed
  /// atomic store — owner pushes/pops and thief steals alike. Null (the
  /// default) costs one predictable untaken branch per operation; with
  /// ATC_METRICS=OFF builds the stores are compiled out entirely.
  void attachDepthGauge(std::atomic<std::int64_t> *Gauge) {
    DepthGauge = Gauge;
  }

private:
  /// Publishes size() to the attached gauge (see attachDepthGauge).
  void publishDepth() {
#if ATC_METRICS_ENABLED
    if (ATC_UNLIKELY(DepthGauge != nullptr))
      DepthGauge->store(size(), std::memory_order_relaxed);
#endif
  }

  /// Frame is plain: thieves read it only after the claim/re-check
  /// handshake on Head/Tail, whose seq_cst stores order it. Special is
  /// atomic because a thief peeks it *before* claiming, concurrently with
  /// the owner re-pushing into a popped slot at the same index; the peek
  /// is only a routing hint and is re-validated after the claim (see
  /// steal()).
  struct Entry {
    void *Frame;
    std::atomic<bool> Special;
  };

  const int Cap;
  std::unique_ptr<Entry[]> Slots;

  /// Head (steal end) and Tail (owner end); Head <= Tail when non-empty.
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<int> Head{0};
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<int> Tail{0};

  /// The protocol lock ("worker.L" / "victim.L" in the paper).
  std::mutex Lock;

  std::atomic<std::uint64_t> Overflows{0};
  std::atomic<std::uint64_t> LockAcquires{0};
  std::atomic<int> HighWater{0};
  std::atomic<std::int64_t> *DepthGauge = nullptr;
};

} // namespace atc

#endif // ATC_DEQUE_THEDEQUE_H
