//===- lang/Ast.h - ATC language abstract syntax tree -----------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the ATC language. Plain Kind-tagged nodes with unique_ptr
/// ownership (no RTTI); Expr::Kind / Stmt::Kind discriminate, and the
/// as<T>() helpers perform the checked downcast.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_AST_H
#define ATC_LANG_AST_H

#include "lang/Token.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace atc {
namespace lang {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// A (simple) ATC type: base kind + pointer depth.
struct Type {
  enum class Base { Int, Long, Char, Void, Struct };

  Base BaseKind = Base::Int;
  std::string StructName; ///< For Base::Struct.
  int PointerDepth = 0;

  bool isPointer() const { return PointerDepth > 0; }
  bool isVoid() const { return BaseKind == Base::Void && !isPointer(); }
  bool isIntegral() const {
    return !isPointer() && (BaseKind == Base::Int || BaseKind == Base::Long ||
                            BaseKind == Base::Char);
  }

  Type pointee() const {
    assert(PointerDepth > 0 && "pointee of non-pointer");
    Type T = *this;
    --T.PointerDepth;
    return T;
  }

  Type pointerTo() const {
    Type T = *this;
    ++T.PointerDepth;
    return T;
  }

  bool operator==(const Type &O) const {
    return BaseKind == O.BaseKind && StructName == O.StructName &&
           PointerDepth == O.PointerDepth;
  }

  /// Renders the type for diagnostics and C++ emission ("struct Foo *").
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr {
  enum class Kind {
    IntLit,
    VarRef,
    Unary,   // ! - * & ++ -- (prefix), ++ -- (postfix)
    Binary,  // + - * / % < > <= >= == != && ||
    Assign,  // = +=
    Call,
    Index,   // a[i]
    Member,  // a.f or a->f
    Sizeof,  // sizeof(type)
  };

  explicit Expr(Kind K, SourceLoc Loc) : ExprKind(K), Loc(Loc) {}
  virtual ~Expr() = default;

  template <typename T> T *as() {
    assert(T::ClassKind == ExprKind && "bad expr downcast");
    return static_cast<T *>(this);
  }
  template <typename T> const T *as() const {
    assert(T::ClassKind == ExprKind && "bad expr downcast");
    return static_cast<const T *>(this);
  }

  const Kind ExprKind;
  SourceLoc Loc;
  Type Ty; ///< Filled in by Sema.
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  static constexpr Kind ClassKind = Kind::IntLit;
  IntLitExpr(std::int64_t V, SourceLoc L) : Expr(ClassKind, L), Value(V) {}
  std::int64_t Value;
};

struct VarRefExpr : Expr {
  static constexpr Kind ClassKind = Kind::VarRef;
  VarRefExpr(std::string Name, SourceLoc L)
      : Expr(ClassKind, L), Name(std::move(Name)) {}
  std::string Name;
};

struct UnaryExpr : Expr {
  static constexpr Kind ClassKind = Kind::Unary;
  enum class Op { Not, Neg, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec };
  UnaryExpr(Op O, ExprPtr Sub, SourceLoc L)
      : Expr(ClassKind, L), O(O), Sub(std::move(Sub)) {}
  Op O;
  ExprPtr Sub;
};

struct BinaryExpr : Expr {
  static constexpr Kind ClassKind = Kind::Binary;
  enum class Op {
    Add, Sub, Mul, Div, Rem,
    Lt, Gt, Le, Ge, Eq, Ne,
    And, Or,
  };
  BinaryExpr(Op O, ExprPtr L, ExprPtr R, SourceLoc Loc)
      : Expr(ClassKind, Loc), O(O), Lhs(std::move(L)), Rhs(std::move(R)) {}
  Op O;
  ExprPtr Lhs, Rhs;
};

struct AssignExpr : Expr {
  static constexpr Kind ClassKind = Kind::Assign;
  AssignExpr(bool Compound, ExprPtr L, ExprPtr R, SourceLoc Loc)
      : Expr(ClassKind, Loc), Compound(Compound), Lhs(std::move(L)),
        Rhs(std::move(R)) {}
  bool Compound; ///< true for +=.
  ExprPtr Lhs, Rhs;
};

struct CallExpr : Expr {
  static constexpr Kind ClassKind = Kind::Call;
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc L)
      : Expr(ClassKind, L), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
};

struct IndexExpr : Expr {
  static constexpr Kind ClassKind = Kind::Index;
  IndexExpr(ExprPtr Base, ExprPtr Idx, SourceLoc L)
      : Expr(ClassKind, L), Base(std::move(Base)), Idx(std::move(Idx)) {}
  ExprPtr Base, Idx;
};

struct MemberExpr : Expr {
  static constexpr Kind ClassKind = Kind::Member;
  MemberExpr(ExprPtr Base, std::string Field, bool ThroughPointer,
             SourceLoc L)
      : Expr(ClassKind, L), Base(std::move(Base)), Field(std::move(Field)),
        ThroughPointer(ThroughPointer) {}
  ExprPtr Base;
  std::string Field;
  bool ThroughPointer; ///< -> vs .
};

struct SizeofExpr : Expr {
  static constexpr Kind ClassKind = Kind::Sizeof;
  SizeofExpr(Type Of, SourceLoc L) : Expr(ClassKind, L), Of(Of) {}
  Type Of;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt {
  enum class Kind {
    Block,
    Decl,
    ExprStmt,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    Sync,
    Spawn, // accumulator-form spawn statement: lhs += spawn f(args);
  };

  explicit Stmt(Kind K, SourceLoc Loc) : StmtKind(K), Loc(Loc) {}
  virtual ~Stmt() = default;

  template <typename T> T *as() {
    assert(T::ClassKind == StmtKind && "bad stmt downcast");
    return static_cast<T *>(this);
  }
  template <typename T> const T *as() const {
    assert(T::ClassKind == StmtKind && "bad stmt downcast");
    return static_cast<const T *>(this);
  }

  const Kind StmtKind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  static constexpr Kind ClassKind = Kind::Block;
  explicit BlockStmt(SourceLoc L) : Stmt(ClassKind, L) {}
  std::vector<StmtPtr> Stmts;
};

struct DeclStmt : Stmt {
  static constexpr Kind ClassKind = Kind::Decl;
  DeclStmt(Type Ty, std::string Name, int ArraySize, ExprPtr Init,
           SourceLoc L)
      : Stmt(ClassKind, L), Ty(Ty), Name(std::move(Name)),
        ArraySize(ArraySize), Init(std::move(Init)) {}
  Type Ty;
  std::string Name;
  int ArraySize; ///< -1 when not an array.
  ExprPtr Init;  ///< May be null.
};

struct ExprStmt : Stmt {
  static constexpr Kind ClassKind = Kind::ExprStmt;
  ExprStmt(ExprPtr E, SourceLoc L) : Stmt(ClassKind, L), E(std::move(E)) {}
  ExprPtr E;
};

struct IfStmt : Stmt {
  static constexpr Kind ClassKind = Kind::If;
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc L)
      : Stmt(ClassKind, L), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
};

struct WhileStmt : Stmt {
  static constexpr Kind ClassKind = Kind::While;
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc L)
      : Stmt(ClassKind, L), Cond(std::move(Cond)), Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
};

struct ForStmt : Stmt {
  static constexpr Kind ClassKind = Kind::For;
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body,
          SourceLoc L)
      : Stmt(ClassKind, L), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  StmtPtr Init; ///< Decl or ExprStmt; may be null.
  ExprPtr Cond; ///< May be null.
  ExprPtr Step; ///< May be null.
  StmtPtr Body;
};

struct ReturnStmt : Stmt {
  static constexpr Kind ClassKind = Kind::Return;
  ReturnStmt(ExprPtr Value, SourceLoc L)
      : Stmt(ClassKind, L), Value(std::move(Value)) {}
  ExprPtr Value; ///< May be null (void return).
};

struct BreakStmt : Stmt {
  static constexpr Kind ClassKind = Kind::Break;
  explicit BreakStmt(SourceLoc L) : Stmt(ClassKind, L) {}
};

struct ContinueStmt : Stmt {
  static constexpr Kind ClassKind = Kind::Continue;
  explicit ContinueStmt(SourceLoc L) : Stmt(ClassKind, L) {}
};

struct SyncStmt : Stmt {
  static constexpr Kind ClassKind = Kind::Sync;
  explicit SyncStmt(SourceLoc L) : Stmt(ClassKind, L) {}
};

/// The accumulator spawn statement: `Receiver += spawn Callee(Args);`.
/// The paper's examples use exactly this shape, and it is what lets the
/// runtime deposit a stolen child's result with a single atomic add
/// (Cilk's implicit inlet).
struct SpawnStmt : Stmt {
  static constexpr Kind ClassKind = Kind::Spawn;
  SpawnStmt(std::string Receiver, std::string Callee,
            std::vector<ExprPtr> Args, SourceLoc L)
      : Stmt(ClassKind, L), Receiver(std::move(Receiver)),
        Callee(std::move(Callee)), Args(std::move(Args)) {}
  std::string Receiver;
  std::string Callee;
  std::vector<ExprPtr> Args;
  int SpawnId = -1; ///< Entry-point number, assigned by Sema.
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct FieldDecl {
  Type Ty;
  std::string Name;
  int ArraySize = -1; ///< -1 when not an array.
};

struct StructDecl {
  std::string Name;
  std::vector<FieldDecl> Fields;
  SourceLoc Loc;
};

struct ParamDecl {
  Type Ty;
  std::string Name;
};

/// The `taskprivate: (*x) (size-expr[, live-expr]);` clause (Section
/// 4.1). The optional live-expr bounds the per-spawn workspace copy to
/// the prefix actually live at the spawn site (both expressions are in
/// terms of the callee's parameters); when absent the full size-expr is
/// copied.
struct TaskprivateClause {
  bool Present = false;
  std::string VarName;
  ExprPtr SizeExpr;
  ExprPtr LiveExpr; ///< Null when no live bound was declared.
  SourceLoc Loc;
};

struct FuncDecl {
  bool IsCilk = false;
  Type ReturnTy;
  std::string Name;
  std::vector<ParamDecl> Params;
  TaskprivateClause Taskprivate;
  std::unique_ptr<BlockStmt> Body; ///< Null for extern declarations.
  SourceLoc Loc;

  int NumSpawns = 0; ///< Assigned by Sema.
};

struct Program {
  std::vector<StructDecl> Structs;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;

  const StructDecl *findStruct(const std::string &Name) const {
    for (const StructDecl &S : Structs)
      if (S.Name == Name)
        return &S;
    return nullptr;
  }

  const FuncDecl *findFunc(const std::string &Name) const {
    for (const auto &F : Funcs)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

/// Renders the AST as an indented tree (for tests and --dump-ast).
std::string dumpProgram(const Program &P);

} // namespace lang
} // namespace atc

#endif // ATC_LANG_AST_H
