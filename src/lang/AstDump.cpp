//===- lang/AstDump.cpp - AST tree dumping --------------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"
#include "support/Compiler.h"

using namespace atc;
using namespace atc::lang;

namespace {

class Dumper {
public:
  std::string run(const Program &P) {
    for (const StructDecl &S : P.Structs) {
      line("StructDecl " + S.Name);
      ++Depth;
      for (const FieldDecl &F : S.Fields) {
        // Built with += (not one operator+ chain): the chained form trips
        // a GCC 12 -Werror=restrict false positive (PR 105651) at -O2.
        std::string L = "Field " + F.Ty.str() + " " + F.Name;
        if (F.ArraySize >= 0) {
          L += '[';
          L += std::to_string(F.ArraySize);
          L += ']';
        }
        line(L);
      }
      --Depth;
    }
    for (const auto &F : P.Funcs) {
      std::string Head = F->IsCilk ? "CilkFuncDecl " : "FuncDecl ";
      Head += F->ReturnTy.str() + " " + F->Name + "(";
      for (std::size_t I = 0; I < F->Params.size(); ++I) {
        if (I)
          Head += ", ";
        Head += F->Params[I].Ty.str() + " " + F->Params[I].Name;
      }
      Head += ")";
      if (F->Taskprivate.Present)
        Head += " taskprivate(" + F->Taskprivate.VarName + ")";
      line(Head);
      if (F->Body) {
        ++Depth;
        stmt(*F->Body);
        --Depth;
      }
    }
    return Out;
  }

private:
  void line(const std::string &S) {
    Out.append(static_cast<std::size_t>(Depth) * 2, ' ');
    Out += S;
    Out += '\n';
  }

  void stmt(const Stmt &S) {
    switch (S.StmtKind) {
    case Stmt::Kind::Block: {
      line("Block");
      ++Depth;
      for (const StmtPtr &Sub : S.as<BlockStmt>()->Stmts)
        stmt(*Sub);
      --Depth;
      return;
    }
    case Stmt::Kind::Decl: {
      const auto *D = S.as<DeclStmt>();
      // += form for the same -Werror=restrict reason as the field dump.
      std::string L = "Decl " + D->Ty.str() + " " + D->Name;
      if (D->ArraySize >= 0) {
        L += '[';
        L += std::to_string(D->ArraySize);
        L += ']';
      }
      line(L);
      if (D->Init) {
        ++Depth;
        expr(*D->Init);
        --Depth;
      }
      return;
    }
    case Stmt::Kind::ExprStmt:
      line("ExprStmt");
      ++Depth;
      expr(*S.as<ExprStmt>()->E);
      --Depth;
      return;
    case Stmt::Kind::If: {
      const auto *I = S.as<IfStmt>();
      line("If");
      ++Depth;
      expr(*I->Cond);
      stmt(*I->Then);
      if (I->Else)
        stmt(*I->Else);
      --Depth;
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = S.as<WhileStmt>();
      line("While");
      ++Depth;
      expr(*W->Cond);
      stmt(*W->Body);
      --Depth;
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = S.as<ForStmt>();
      line("For");
      ++Depth;
      if (F->Init)
        stmt(*F->Init);
      if (F->Cond)
        expr(*F->Cond);
      if (F->Step)
        expr(*F->Step);
      stmt(*F->Body);
      --Depth;
      return;
    }
    case Stmt::Kind::Return: {
      line("Return");
      if (const ExprPtr &V = S.as<ReturnStmt>()->Value) {
        ++Depth;
        expr(*V);
        --Depth;
      }
      return;
    }
    case Stmt::Kind::Break:
      line("Break");
      return;
    case Stmt::Kind::Continue:
      line("Continue");
      return;
    case Stmt::Kind::Sync:
      line("Sync");
      return;
    case Stmt::Kind::Spawn: {
      const auto *Sp = S.as<SpawnStmt>();
      line("Spawn " + Sp->Receiver + " += " + Sp->Callee + "()" +
           (Sp->SpawnId >= 0 ? " #" + std::to_string(Sp->SpawnId) : ""));
      ++Depth;
      for (const ExprPtr &Arg : Sp->Args)
        expr(*Arg);
      --Depth;
      return;
    }
    }
  }

  void expr(const Expr &E) {
    switch (E.ExprKind) {
    case Expr::Kind::IntLit:
      line("IntLit " + std::to_string(E.as<IntLitExpr>()->Value));
      return;
    case Expr::Kind::VarRef:
      line("VarRef " + E.as<VarRefExpr>()->Name);
      return;
    case Expr::Kind::Unary: {
      static const char *Names[] = {"Not",    "Neg",    "Deref",
                                    "AddrOf", "PreInc", "PreDec",
                                    "PostInc", "PostDec"};
      const auto *U = E.as<UnaryExpr>();
      line(std::string("Unary ") + Names[static_cast<int>(U->O)]);
      ++Depth;
      expr(*U->Sub);
      --Depth;
      return;
    }
    case Expr::Kind::Binary: {
      static const char *Names[] = {"Add", "Sub", "Mul", "Div", "Rem",
                                    "Lt",  "Gt",  "Le",  "Ge",  "Eq",
                                    "Ne",  "And", "Or"};
      const auto *B = E.as<BinaryExpr>();
      line(std::string("Binary ") + Names[static_cast<int>(B->O)]);
      ++Depth;
      expr(*B->Lhs);
      expr(*B->Rhs);
      --Depth;
      return;
    }
    case Expr::Kind::Assign: {
      const auto *A = E.as<AssignExpr>();
      line(A->Compound ? "Assign +=" : "Assign =");
      ++Depth;
      expr(*A->Lhs);
      expr(*A->Rhs);
      --Depth;
      return;
    }
    case Expr::Kind::Call: {
      const auto *C = E.as<CallExpr>();
      line("Call " + C->Callee);
      ++Depth;
      for (const ExprPtr &Arg : C->Args)
        expr(*Arg);
      --Depth;
      return;
    }
    case Expr::Kind::Index: {
      const auto *I = E.as<IndexExpr>();
      line("Index");
      ++Depth;
      expr(*I->Base);
      expr(*I->Idx);
      --Depth;
      return;
    }
    case Expr::Kind::Member: {
      const auto *M = E.as<MemberExpr>();
      line(std::string("Member ") + (M->ThroughPointer ? "->" : ".") +
           M->Field);
      ++Depth;
      expr(*M->Base);
      --Depth;
      return;
    }
    case Expr::Kind::Sizeof:
      line("Sizeof " + E.as<SizeofExpr>()->Of.str());
      return;
    }
  }

  std::string Out;
  int Depth = 0;
};

} // namespace

std::string atc::lang::dumpProgram(const Program &P) {
  Dumper D;
  return D.run(P);
}
