//===- lang/CodeGen.cpp - ATC five-version C++ emission -------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/CodeGen.h"
#include "support/Compiler.h"

#include <map>
#include <set>

using namespace atc;
using namespace atc::lang;

namespace {

/// Which of the five versions is being emitted.
enum class Version { Fast, Fast2, Check, Seq, Slow };

const char *versionSuffix(Version V) {
  switch (V) {
  case Version::Fast:
    return "_fast";
  case Version::Fast2:
    return "_fast2";
  case Version::Check:
    return "_check";
  case Version::Seq:
    return "_seq";
  case Version::Slow:
    return "_slow";
  }
  ATC_UNREACHABLE("unhandled version");
}

class Emitter {
public:
  explicit Emitter(const Program &P, const std::string &RuntimeInclude)
      : P(P), RuntimeInclude(RuntimeInclude) {}

  std::string run();

private:
  //===--------------------------------------------------------------------===
  // Output helpers
  //===--------------------------------------------------------------------===

  void line(const std::string &S) {
    Out.append(static_cast<std::size_t>(Indent) * 2, ' ');
    Out += S;
    Out += '\n';
  }
  void blank() { Out += '\n'; }
  struct Scoped {
    Emitter &E;
    explicit Scoped(Emitter &E, const std::string &Open = "{") : E(E) {
      E.line(Open);
      ++E.Indent;
    }
    ~Scoped() {
      --E.Indent;
      E.line("}");
    }
  };

  //===--------------------------------------------------------------------===
  // Names and types
  //===--------------------------------------------------------------------===

  /// User "main" is renamed: the emitted C++ main() constructs the
  /// Worker and dispatches to it.
  static std::string funcName(const std::string &Name) {
    return Name == "main" ? "atc_user_main" : Name;
  }

  static std::string typeStr(const Type &T) {
    std::string S;
    switch (T.BaseKind) {
    case Type::Base::Int:
      S = "int";
      break;
    case Type::Base::Long:
      S = "long";
      break;
    case Type::Base::Char:
      S = "char";
      break;
    case Type::Base::Void:
      S = "void";
      break;
    case Type::Base::Struct:
      S = T.StructName;
      break;
    }
    for (int I = 0; I < T.PointerDepth; ++I)
      S += " *";
    return S;
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  /// Renders an expression. \p Rename maps source variable names to
  /// emitted names (hoisted locals in cilk versions; empty otherwise).
  std::string expr(const Expr &E,
                   const std::map<std::string, std::string> &Rename) {
    switch (E.ExprKind) {
    case Expr::Kind::IntLit:
      return std::to_string(E.as<IntLitExpr>()->Value);
    case Expr::Kind::VarRef: {
      const std::string &Name = E.as<VarRefExpr>()->Name;
      auto It = Rename.find(Name);
      return It != Rename.end() ? It->second : Name;
    }
    case Expr::Kind::Unary: {
      const auto *U = E.as<UnaryExpr>();
      std::string Sub = expr(*U->Sub, Rename);
      switch (U->O) {
      case UnaryExpr::Op::Not:
        return "(!" + Sub + ")";
      case UnaryExpr::Op::Neg:
        return "(-" + Sub + ")";
      case UnaryExpr::Op::Deref:
        return "(*" + Sub + ")";
      case UnaryExpr::Op::AddrOf:
        return "(&" + Sub + ")";
      case UnaryExpr::Op::PreInc:
        return "(++" + Sub + ")";
      case UnaryExpr::Op::PreDec:
        return "(--" + Sub + ")";
      case UnaryExpr::Op::PostInc:
        return "(" + Sub + "++)";
      case UnaryExpr::Op::PostDec:
        return "(" + Sub + "--)";
      }
      ATC_UNREACHABLE("unhandled unary op");
    }
    case Expr::Kind::Binary: {
      const auto *B = E.as<BinaryExpr>();
      static const std::map<BinaryExpr::Op, const char *> Ops = {
          {BinaryExpr::Op::Add, "+"},  {BinaryExpr::Op::Sub, "-"},
          {BinaryExpr::Op::Mul, "*"},  {BinaryExpr::Op::Div, "/"},
          {BinaryExpr::Op::Rem, "%"},  {BinaryExpr::Op::Lt, "<"},
          {BinaryExpr::Op::Gt, ">"},   {BinaryExpr::Op::Le, "<="},
          {BinaryExpr::Op::Ge, ">="},  {BinaryExpr::Op::Eq, "=="},
          {BinaryExpr::Op::Ne, "!="},  {BinaryExpr::Op::And, "&&"},
          {BinaryExpr::Op::Or, "||"},
      };
      return "(" + expr(*B->Lhs, Rename) + " " + Ops.at(B->O) + " " +
             expr(*B->Rhs, Rename) + ")";
    }
    case Expr::Kind::Assign: {
      const auto *A = E.as<AssignExpr>();
      return "(" + expr(*A->Lhs, Rename) +
             (A->Compound ? " += " : " = ") + expr(*A->Rhs, Rename) + ")";
    }
    case Expr::Kind::Call: {
      const auto *C = E.as<CallExpr>();
      std::string S;
      if (C->Callee == "print_long") {
        S = "atcgen::print_long(_w";
      } else {
        const FuncDecl *Callee = P.findFunc(C->Callee);
        std::string Name = funcName(C->Callee);
        // A direct call of a cilk function (root invocation) goes
        // through its entry wrapper.
        (void)Callee;
        S = Name + "(_w";
      }
      for (const ExprPtr &Arg : C->Args)
        S += ", " + expr(*Arg, Rename);
      return S + ")";
    }
    case Expr::Kind::Index: {
      const auto *I = E.as<IndexExpr>();
      return expr(*I->Base, Rename) + "[" + expr(*I->Idx, Rename) + "]";
    }
    case Expr::Kind::Member: {
      const auto *M = E.as<MemberExpr>();
      return expr(*M->Base, Rename) + (M->ThroughPointer ? "->" : ".") +
             M->Field;
    }
    case Expr::Kind::Sizeof:
      return "(long)sizeof(" + typeStr(E.as<SizeofExpr>()->Of) + ")";
    }
    ATC_UNREACHABLE("unhandled expr kind");
  }

  //===--------------------------------------------------------------------===
  // Structs and plain functions
  //===--------------------------------------------------------------------===

  void emitPlainFunction(const FuncDecl &F) {
    std::string Sig = typeStr(F.ReturnTy) + " " + funcName(F.Name) +
                      "(atcgen::Worker &_w";
    for (const ParamDecl &Param : F.Params)
      Sig += ", " + typeStr(Param.Ty) + " " + Param.Name;
    Sig += ")";
    if (!F.Body) {
      line(Sig + ";");
      return;
    }
    line(Sig + " {");
    ++Indent;
    line("(void)_w;");
    std::map<std::string, std::string> NoRename;
    for (const StmtPtr &S : F.Body->Stmts)
      emitPlainStmt(*S, NoRename);
    --Indent;
    line("}");
  }

  /// Statement emission for non-cilk functions (no hoisting, no spawns).
  void emitPlainStmt(const Stmt &S,
                     std::map<std::string, std::string> &Rename) {
    switch (S.StmtKind) {
    case Stmt::Kind::Block: {
      Scoped Guard(*this);
      auto Saved = Rename;
      for (const StmtPtr &Sub : S.as<BlockStmt>()->Stmts)
        emitPlainStmt(*Sub, Rename);
      Rename = Saved;
      return;
    }
    case Stmt::Kind::Decl: {
      const auto *D = S.as<DeclStmt>();
      std::string Decl = typeStr(D->Ty) + " " + D->Name;
      if (D->ArraySize >= 0) {
        // += chain rather than one operator+ expression: the chained form
        // trips a GCC 12 -Werror=restrict false positive (PR 105651).
        Decl += '[';
        Decl += std::to_string(D->ArraySize);
        Decl += ']';
      }
      if (D->Init)
        Decl += " = " + expr(*D->Init, Rename);
      line(Decl + ";");
      return;
    }
    case Stmt::Kind::ExprStmt:
      line(expr(*S.as<ExprStmt>()->E, Rename) + ";");
      return;
    case Stmt::Kind::If: {
      const auto *I = S.as<IfStmt>();
      line("if (" + expr(*I->Cond, Rename) + ") {");
      ++Indent;
      emitPlainStmt(*I->Then, Rename);
      --Indent;
      if (I->Else) {
        line("} else {");
        ++Indent;
        emitPlainStmt(*I->Else, Rename);
        --Indent;
      }
      line("}");
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = S.as<WhileStmt>();
      line("while (" + expr(*W->Cond, Rename) + ") {");
      ++Indent;
      emitPlainStmt(*W->Body, Rename);
      --Indent;
      line("}");
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = S.as<ForStmt>();
      Scoped Guard(*this);
      auto Saved = Rename;
      if (F->Init)
        emitPlainStmt(*F->Init, Rename);
      line("for (; " +
           (F->Cond ? expr(*F->Cond, Rename) : std::string()) + "; " +
           (F->Step ? expr(*F->Step, Rename) : std::string()) + ") {");
      ++Indent;
      emitPlainStmt(*F->Body, Rename);
      --Indent;
      line("}");
      Rename = Saved;
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = S.as<ReturnStmt>();
      if (R->Value)
        line("return " + expr(*R->Value, Rename) + ";");
      else
        line("return;");
      return;
    }
    case Stmt::Kind::Break:
      line("break;");
      return;
    case Stmt::Kind::Continue:
      line("continue;");
      return;
    case Stmt::Kind::Sync:
    case Stmt::Kind::Spawn:
      ATC_UNREACHABLE("spawn/sync in a non-cilk function");
    }
  }

  //===--------------------------------------------------------------------===
  // Cilk functions: frame + five versions
  //===--------------------------------------------------------------------===

  struct CilkContext {
    const FuncDecl *F = nullptr;
    Version V = Version::Fast;
    /// Source name -> emitted (hoisted) name, maintained per scope.
    std::map<std::string, std::string> Rename;
    /// Hoisted local declarations: emitted name -> type string.
    std::vector<std::pair<std::string, std::string>> Hoisted;
    std::set<std::string> UsedNames;
    bool HasSpecialState = false; ///< check version: _f/_stolen emitted.
  };

  std::string frameName(const FuncDecl &F) {
    return funcName(F.Name) + "_frame";
  }

  /// Collects every local declaration of \p F with unique hoisted names,
  /// filling Ctx.Hoisted and a DeclStmt* -> name map.
  void collectLocals(const Stmt &S, CilkContext &Ctx,
                     std::map<const DeclStmt *, std::string> &Names) {
    switch (S.StmtKind) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Sub : S.as<BlockStmt>()->Stmts)
        collectLocals(*Sub, Ctx, Names);
      return;
    case Stmt::Kind::Decl: {
      const auto *D = S.as<DeclStmt>();
      std::string Name = D->Name;
      int Counter = 1;
      while (Ctx.UsedNames.count(Name))
        Name = D->Name + "_" + std::to_string(Counter++);
      Ctx.UsedNames.insert(Name);
      Names[D] = Name;
      Ctx.Hoisted.push_back({Name, typeStr(D->Ty)});
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = S.as<IfStmt>();
      collectLocals(*I->Then, Ctx, Names);
      if (I->Else)
        collectLocals(*I->Else, Ctx, Names);
      return;
    }
    case Stmt::Kind::While:
      collectLocals(*S.as<WhileStmt>()->Body, Ctx, Names);
      return;
    case Stmt::Kind::For: {
      const auto *F = S.as<ForStmt>();
      if (F->Init)
        collectLocals(*F->Init, Ctx, Names);
      collectLocals(*F->Body, Ctx, Names);
      return;
    }
    default:
      return;
    }
  }

  void emitFrameStruct(const FuncDecl &F, const CilkContext &Ctx) {
    line("struct " + frameName(F) + " : atcgen::TaskInfoBase {");
    ++Indent;
    for (const ParamDecl &Param : F.Params)
      line(typeStr(Param.Ty) + " " + Param.Name + ";");
    for (const auto &[Name, Ty] : Ctx.Hoisted)
      line(Ty + " " + Name + ";");
    --Indent;
    line("};");
  }

  /// Emits "save all live state into the frame" assignments.
  void emitSave(const FuncDecl &F, const CilkContext &Ctx, int SpawnId,
                const std::string &Dp) {
    for (const ParamDecl &Param : F.Params)
      line("_f->" + Param.Name + " = " + Param.Name + ";");
    for (const auto &[Name, Ty] : Ctx.Hoisted) {
      (void)Ty;
      line("_f->" + Name + " = " + Name + ";");
    }
    line("_f->Entry = " + std::to_string(SpawnId) + ";");
    line("_f->Dp = " + Dp + ";");
  }

  /// Renders call arguments; when \p TpReplacement is non-empty, the
  /// callee's taskprivate parameter position gets it instead.
  std::string callArgs(const SpawnStmt &S, const FuncDecl &Callee,
                       const CilkContext &Ctx,
                       const std::string &TpReplacement) {
    std::string Args;
    for (std::size_t I = 0; I < S.Args.size(); ++I) {
      Args += ", ";
      if (!TpReplacement.empty() &&
          Callee.Taskprivate.Present &&
          Callee.Params[I].Name == Callee.Taskprivate.VarName)
        Args += TpReplacement;
      else
        Args += expr(*S.Args[I], Ctx.Rename);
    }
    return Args;
  }

  /// Renders the callee's taskprivate size expression in terms of the
  /// caller's arguments (callee parameter names substituted).
  std::string tpSizeExpr(const SpawnStmt &S, const FuncDecl &Callee,
                         const CilkContext &Ctx) {
    std::map<std::string, std::string> Subst;
    for (std::size_t I = 0; I < Callee.Params.size(); ++I)
      Subst[Callee.Params[I].Name] = expr(*S.Args[I], Ctx.Rename);
    return expr(*Callee.Taskprivate.SizeExpr, Subst);
  }

  /// Renders the callee's optional taskprivate live-bytes expression the
  /// same way (substituting the spawn-site arguments means it evaluates
  /// for the *child's* invocation). Empty when no live bound is declared.
  std::string tpLiveExpr(const SpawnStmt &S, const FuncDecl &Callee,
                         const CilkContext &Ctx) {
    if (!Callee.Taskprivate.LiveExpr)
      return {};
    std::map<std::string, std::string> Subst;
    for (std::size_t I = 0; I < Callee.Params.size(); ++I)
      Subst[Callee.Params[I].Name] = expr(*S.Args[I], Ctx.Rename);
    return expr(*Callee.Taskprivate.LiveExpr, Subst);
  }

  /// Emits one spawn statement for the current version.
  void emitSpawn(const SpawnStmt &S, CilkContext &Ctx) {
    const FuncDecl &F = *Ctx.F;
    const FuncDecl *Callee = P.findFunc(S.Callee);
    assert(Callee && "sema guarantees the callee exists");
    std::string Recv = Ctx.Rename.count(S.Receiver)
                           ? Ctx.Rename.at(S.Receiver)
                           : S.Receiver;
    std::string CalleeBase = funcName(S.Callee);
    int K = S.SpawnId;
    std::string Id = std::to_string(K);

    auto EmitTaskSpawn = [&](const std::string &ChildVersion,
                             const std::string &ChildDp, bool Special) {
      // taskprivate copy for the child (Section 4.1): only in the task
      // versions.
      bool Tp = Callee->Taskprivate.Present;
      std::string TpArg;
      if (Tp) {
        std::string Size = "(size_t)(" + tpSizeExpr(S, *Callee, Ctx) + ")";
        std::string LiveSrc = tpLiveExpr(S, *Callee, Ctx);
        // Without a declared live bound the whole workspace is copied.
        std::string Live =
            LiveSrc.empty() ? Size : "(size_t)(" + LiveSrc + ")";
        std::string TpParamTy;
        for (const ParamDecl &Param : Callee->Params)
          if (Param.Name == Callee->Taskprivate.VarName)
            TpParamTy = typeStr(Param.Ty);
        line("void *_tp" + Id + " = _w.allocWorkspace(" + Size + ");");
        // The source pointer is the caller's argument for that param.
        std::string Src;
        for (std::size_t I = 0; I < Callee->Params.size(); ++I)
          if (Callee->Params[I].Name == Callee->Taskprivate.VarName)
            Src = expr(*S.Args[I], Ctx.Rename);
        line("_w.copyWorkspace(_tp" + Id + ", (const void *)(" + Src +
             "), " + Size + ", " + Live + ");");
        TpArg = "(" + TpParamTy + ")_tp" + Id;
      }
      emitSave(F, Ctx, K, Special ? "0" : "_dp");
      line(Special ? "_w.pushSpecial(_f);" : "_w.push(_f);");
      line("long _r" + Id + " = " + CalleeBase + ChildVersion + "(_w" +
           (ChildVersion == "_check" || ChildVersion == "_seq"
                ? ""
                : ", " + ChildDp) +
           callArgs(S, *Callee, Ctx, TpArg) + ");");
      if (Special) {
        line("if (!_w.popSpecial(_f)) _stolen = 1;");
      } else {
        // Pop failure: the frame was stolen; the runtime deposited the
        // child's value. Return a dummy ("if(pop(sn) == FAILURE) return").
        line("if (!_w.pop(_f, _r" + Id + ", (size_t)((char *)&_f->" +
             Recv + " - (char *)_f)))" +
             (Ctx.V == Version::Slow ? " return;" : " return 0;"));
      }
      line(Recv + " += _r" + Id + ";");
      if (Tp)
        line("_w.freeWorkspace(_tp" + Id + ", (size_t)(" +
             tpSizeExpr(S, *Callee, Ctx) + "));");
    };

    switch (Ctx.V) {
    case Version::Seq:
      // Fake task: plain recursive call, parent workspace shared.
      line(Recv + " += " + CalleeBase + "_seq(_w" +
           callArgs(S, *Callee, Ctx, "") + ");");
      return;
    case Version::Fast:
    case Version::Slow: {
      // The Figure 2 dispatch is the runtime's FiveVersionFsm, not an
      // inline cut-off comparison; the slow version resumes the fast
      // dispatch with its own FSM state (so transition counters can tell
      // the thief path apart).
      line(std::string("if (_w.dispatch(atcgen::CodeVersion::") +
           (Ctx.V == Version::Slow ? "Slow" : "Fast") +
           ", _dp) == atcgen::CodeVersion::Fast) {");
      ++Indent;
      EmitTaskSpawn("_fast", "_dp + 1", /*Special=*/false);
      --Indent;
      line("} else {");
      ++Indent;
      line(Recv + " += " + CalleeBase + "_check(_w" +
           callArgs(S, *Callee, Ctx, "") + ");");
      --Indent;
      line("}");
      if (Ctx.V == Version::Slow)
        line("_resume_" + Id + ": ;");
      return;
    }
    case Version::Fast2: {
      line("if (_w.dispatch(atcgen::CodeVersion::Fast2, _dp) == "
           "atcgen::CodeVersion::Fast2) {");
      ++Indent;
      EmitTaskSpawn("_fast2", "_dp + 1", /*Special=*/false);
      --Indent;
      line("} else {");
      ++Indent;
      line(Recv + " += " + CalleeBase + "_seq(_w" +
           callArgs(S, *Callee, Ctx, "") + ");");
      --Indent;
      line("}");
      return;
    }
    case Version::Check: {
      // dispatch polls need_task internally on the check edge; the child
      // stays a fake task unless the FSM routes it to fast_2.
      line("if (_w.dispatch(atcgen::CodeVersion::Check, 0) == "
           "atcgen::CodeVersion::Check) {");
      ++Indent;
      line(Recv + " += " + CalleeBase + "_check(_w" +
           callArgs(S, *Callee, Ctx, "") + ");");
      --Indent;
      line("} else {");
      ++Indent;
      line("if (!_f) {");
      ++Indent;
      line("_f = (" + frameName(F) + " *)_w.allocFrame(sizeof(" +
           frameName(F) + "), &" + funcName(F.Name) + "_slow);");
      line("_f->Special = true;");
      --Indent;
      line("}");
      EmitTaskSpawn("_fast2", "0", /*Special=*/true);
      --Indent;
      line("}");
      return;
    }
    }
  }

  void emitSync(CilkContext &Ctx) {
    switch (Ctx.V) {
    case Version::Fast:
    case Version::Fast2:
    case Version::Seq:
      // "In the fast version, all sync statements are translated to
      // no-ops."
      line("; // sync: no-op (children completed synchronously)");
      return;
    case Version::Check:
      line("if (_stolen) { _w.syncSpecial(_f); " //
           "/* deposits joined */ }");
      return;
    case Version::Slow:
      line("(void)_w.syncSlow(_f); // all children joined");
      return;
    }
  }

  void emitCilkStmt(const Stmt &S, CilkContext &Ctx,
                    const std::map<const DeclStmt *, std::string> &Names) {
    switch (S.StmtKind) {
    case Stmt::Kind::Block: {
      Scoped Guard(*this);
      auto Saved = Ctx.Rename;
      for (const StmtPtr &Sub : S.as<BlockStmt>()->Stmts)
        emitCilkStmt(*Sub, Ctx, Names);
      Ctx.Rename = Saved;
      return;
    }
    case Stmt::Kind::Decl: {
      // Hoisted: bind the scope name and assign the initializer here.
      const auto *D = S.as<DeclStmt>();
      const std::string &Hoisted = Names.at(D);
      Ctx.Rename[D->Name] = Hoisted;
      if (D->Init)
        line(Hoisted + " = " + expr(*D->Init, Ctx.Rename) + ";");
      return;
    }
    case Stmt::Kind::ExprStmt:
      line(expr(*S.as<ExprStmt>()->E, Ctx.Rename) + ";");
      return;
    case Stmt::Kind::If: {
      const auto *I = S.as<IfStmt>();
      line("if (" + expr(*I->Cond, Ctx.Rename) + ") {");
      ++Indent;
      emitCilkStmt(*I->Then, Ctx, Names);
      --Indent;
      if (I->Else) {
        line("} else {");
        ++Indent;
        emitCilkStmt(*I->Else, Ctx, Names);
        --Indent;
      }
      line("}");
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = S.as<WhileStmt>();
      line("while (" + expr(*W->Cond, Ctx.Rename) + ") {");
      ++Indent;
      emitCilkStmt(*W->Body, Ctx, Names);
      --Indent;
      line("}");
      return;
    }
    case Stmt::Kind::For: {
      // Emitted as init + while so a slow-version resume label inside
      // the body is reachable by goto (no initialized declarations are
      // jumped over: all locals are hoisted).
      const auto *F = S.as<ForStmt>();
      auto Saved = Ctx.Rename;
      if (F->Init)
        emitCilkStmt(*F->Init, Ctx, Names);
      line("for (; " +
           (F->Cond ? expr(*F->Cond, Ctx.Rename) : std::string()) + "; " +
           (F->Step ? expr(*F->Step, Ctx.Rename) : std::string()) + ") {");
      ++Indent;
      emitCilkStmt(*F->Body, Ctx, Names);
      --Indent;
      line("}");
      Ctx.Rename = Saved;
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = S.as<ReturnStmt>();
      std::string Value =
          R->Value ? expr(*R->Value, Ctx.Rename) : std::string("0");
      switch (Ctx.V) {
      case Version::Fast:
      case Version::Fast2:
        line("{ long _ret = " + Value + "; _w.freeFrame(_f); "
             "return _ret; }");
        return;
      case Version::Check:
        line("{ long _ret = " + Value +
             "; if (_f) _w.freeFrame(_f); return _ret; }");
        return;
      case Version::Seq:
        line("return " + Value + ";");
        return;
      case Version::Slow:
        line("{ _w.completeSlow(_f, " + Value + "); return; }");
        return;
      }
      return;
    }
    case Stmt::Kind::Break:
      line("break;");
      return;
    case Stmt::Kind::Continue:
      line("continue;");
      return;
    case Stmt::Kind::Sync:
      emitSync(Ctx);
      return;
    case Stmt::Kind::Spawn:
      emitSpawn(*S.as<SpawnStmt>(), Ctx);
      return;
    }
  }

  void emitCilkVersion(const FuncDecl &F, Version V,
                       const std::map<const DeclStmt *, std::string> &Names,
                       const CilkContext &Proto) {
    CilkContext Ctx = Proto;
    Ctx.V = V;
    Ctx.Rename.clear();

    std::string Name = funcName(F.Name) + versionSuffix(V);
    std::string Params;
    for (const ParamDecl &Param : F.Params)
      Params += ", " + typeStr(Param.Ty) + " " + Param.Name;

    switch (V) {
    case Version::Fast:
    case Version::Fast2:
      line("long " + Name + "(atcgen::Worker &_w, int _dp" + Params + ") {");
      break;
    case Version::Check:
    case Version::Seq:
      line("long " + Name + "(atcgen::Worker &_w" + Params + ") {");
      break;
    case Version::Slow:
      line("void " + Name +
           "(atcgen::Worker &_w, atcgen::TaskInfoBase *_base) {");
      break;
    }
    ++Indent;

    // Prologue per version.
    if (V == Version::Fast || V == Version::Fast2) {
      // "A task is created at the entry of the fast version and is freed
      // at its exit."
      line(frameName(F) + " *_f = (" + frameName(F) +
           " *)_w.allocFrame(sizeof(" + frameName(F) + "), &" +
           funcName(F.Name) + "_slow);");
    } else if (V == Version::Check) {
      line(frameName(F) + " *_f = nullptr;");
      line("int _stolen = 0; (void)_stolen;");
    }

    // Hoisted locals. Initializers become assignments at the original
    // declaration site; in the slow version the declarations must stay
    // uninitialized so the entry goto never jumps over an initialization.
    for (const auto &[HName, Ty] : Ctx.Hoisted)
      line(V == Version::Slow ? Ty + " " + HName + ";"
                              : Ty + " " + HName + "{};");

    if (V == Version::Slow) {
      line("auto *_f = (" + frameName(F) + " *)_base;");
      line("int _dp = _f->Dp;");
      // Restore parameters and locals from the frame.
      for (const ParamDecl &Param : F.Params)
        line(typeStr(Param.Ty) + " " + Param.Name + " = _f->" + Param.Name +
             ";");
      for (const auto &[HName, Ty] : Ctx.Hoisted) {
        (void)Ty;
        line(HName + " = _f->" + HName + ";");
      }
      // Resume at the saved "PC".
      line("switch (_f->Entry) {");
      ++Indent;
      for (int K = 0; K < F.NumSpawns; ++K)
        line("case " + std::to_string(K) + ": goto _resume_" +
             std::to_string(K) + ";");
      line("default: break;");
      --Indent;
      line("}");
    }

    for (const StmtPtr &S : F.Body->Stmts)
      emitCilkStmt(*S, Ctx, Names);

    // Fall-off-the-end epilogue (cilk functions return integral values;
    // a missing return yields 0, as in C).
    switch (V) {
    case Version::Fast:
    case Version::Fast2:
      line("_w.freeFrame(_f);");
      line("return 0;");
      break;
    case Version::Check:
      line("if (_f) _w.freeFrame(_f);");
      line("return 0;");
      break;
    case Version::Seq:
      line("return 0;");
      break;
    case Version::Slow:
      line("_w.completeSlow(_f, 0);");
      break;
    }
    --Indent;
    line("}");
    blank();
  }

  void emitCilkFunction(const FuncDecl &F) {
    CilkContext Ctx;
    Ctx.F = &F;
    for (const ParamDecl &Param : F.Params)
      Ctx.UsedNames.insert(Param.Name);
    std::map<const DeclStmt *, std::string> Names;
    collectLocals(*F.Body, Ctx, Names);

    line("// ----- cilk function '" + F.Name + "': task frame and the");
    line("// ----- five versions (fast / check / fast_2 / sequence / "
         "slow)");
    emitFrameStruct(F, Ctx);
    blank();
    for (Version V : {Version::Seq, Version::Check, Version::Fast2,
                      Version::Fast, Version::Slow})
      emitCilkVersion(F, V, Names, Ctx);

    // Entry wrapper: a root invocation starts in the fast version at
    // depth 0.
    std::string Params, Args;
    for (const ParamDecl &Param : F.Params) {
      Params += ", " + typeStr(Param.Ty) + " " + Param.Name;
      Args += ", " + Param.Name;
    }
    line("inline long " + funcName(F.Name) + "(atcgen::Worker &_w" +
         Params + ") {");
    ++Indent;
    line("return " + funcName(F.Name) + "_fast(_w, 0" + Args + ");");
    --Indent;
    line("}");
    blank();
  }

  //===--------------------------------------------------------------------===
  // Forward declarations
  //===--------------------------------------------------------------------===

  void emitForwardDecls() {
    for (const auto &F : P.Funcs) {
      std::string Params;
      for (const ParamDecl &Param : F->Params)
        Params += ", " + typeStr(Param.Ty) + " " + Param.Name;
      if (!F->IsCilk) {
        line(typeStr(F->ReturnTy) + " " + funcName(F->Name) +
             "(atcgen::Worker &_w" + Params + ");");
        continue;
      }
      std::string Base = funcName(F->Name);
      line("struct " + Base + "_frame;");
      line("long " + Base + "_seq(atcgen::Worker &_w" + Params + ");");
      line("long " + Base + "_check(atcgen::Worker &_w" + Params + ");");
      line("long " + Base + "_fast(atcgen::Worker &_w, int _dp" + Params +
           ");");
      line("long " + Base + "_fast2(atcgen::Worker &_w, int _dp" + Params +
           ");");
      line("void " + Base +
           "_slow(atcgen::Worker &_w, atcgen::TaskInfoBase *_base);");
      line("inline long " + Base + "(atcgen::Worker &_w" + Params + ");");
    }
    blank();
  }

  const Program &P;
  const std::string RuntimeInclude;
  std::string Out;
  int Indent = 0;
};

std::string Emitter::run() {
  line("// Generated by atcc (AdaptiveTC compiler) - do not edit.");
  line("#include \"" + RuntimeInclude + "\"");
  line("#include <cstddef>");
  line("#include <cstring>");
  blank();

  for (const StructDecl &S : P.Structs) {
    line("struct " + S.Name + " {");
    ++Indent;
    for (const FieldDecl &F : S.Fields) {
      std::string Decl = typeStr(F.Ty) + " " + F.Name;
      if (F.ArraySize >= 0) {
        // += chain for the same -Werror=restrict reason as the decl case.
        Decl += '[';
        Decl += std::to_string(F.ArraySize);
        Decl += ']';
      }
      line(Decl + ";");
    }
    --Indent;
    line("};");
    blank();
  }

  emitForwardDecls();

  for (const auto &F : P.Funcs) {
    if (!F->Body)
      continue;
    if (F->IsCilk)
      emitCilkFunction(*F);
    else {
      emitPlainFunction(*F);
      blank();
    }
  }

  // Host main: construct the worker (cutoff from ATCGEN_CUTOFF, default
  // 3) and run the user's main.
  if (P.findFunc("main")) {
    line("int main() {");
    ++Indent;
    line("int _cutoff = 3;");
    line("if (const char *_e = std::getenv(\"ATCGEN_CUTOFF\")) "
         "_cutoff = std::atoi(_e);");
    line("atcgen::Worker _w(_cutoff);");
    line("if (const char *_e = std::getenv(\"ATCGEN_FORCE_NEEDTASK\")) "
         "_w.forceNeedTaskEvery(std::atoi(_e));");
    line("int _ret = (int)atc_user_main(_w);");
    line("if (std::getenv(\"ATCGEN_STATS\"))");
    ++Indent;
    line("std::fprintf(stderr, \"frames=%llu pushes=%llu pops=%llu "
         "special_pushes=%llu polls=%llu need_task=%llu ws_allocs=%llu "
         "ws_bytes=%llu ws_copied=%llu ws_reuses=%llu\\n\", "
         "(unsigned long long)_w.Stats.FramesAllocated, "
         "(unsigned long long)_w.Stats.Pushes, "
         "(unsigned long long)_w.Stats.Pops, "
         "(unsigned long long)_w.Stats.SpecialPushes, "
         "(unsigned long long)_w.Stats.Polls, "
         "(unsigned long long)_w.Stats.NeedTaskHits, "
         "(unsigned long long)_w.Stats.WorkspaceAllocs, "
         "(unsigned long long)_w.Stats.WorkspaceBytes, "
         "(unsigned long long)_w.Stats.WorkspaceCopiedBytes, "
         "(unsigned long long)_w.Stats.WorkspaceReuses);");
    --Indent;
    line("return _ret;");
    --Indent;
    line("}");
  }

  return Out;
}

} // namespace

std::string atc::lang::emitCpp(const Program &P,
                               const std::string &RuntimeInclude) {
  Emitter E(P, RuntimeInclude);
  return E.run();
}
