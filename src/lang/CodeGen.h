//===- lang/CodeGen.h - ATC five-version C++ emission -----------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atcc back end: translates an analyzed ATC program into C++,
/// emitting the paper's five code versions per cilk function (Section
/// 4.2):
///
///  * fast      - tasks while _adpTC_dp < cutoff, then calls check;
///                allocates/frees the task_info frame at entry/exit;
///                sync is a no-op;
///  * check     - fake task; polls need_task; on demand creates the
///                special task and runs the child via fast_2 with the
///                depth reset to 0 (pop_specialtask / sync_specialtask);
///  * fast_2    - like fast with twice the cutoff, falling back to
///                sequence;
///  * sequence  - a plain recursive function (taskprivate ignored);
///  * slow      - stolen-task entry: restores locals from the frame and
///                resumes after the saved spawn via a switch/goto.
///
/// taskprivate handling follows Section 4.1: the task versions allocate
/// and memcpy a private workspace for each spawned child (the clause's
/// size expression, re-expressed in caller arguments); the fake-task
/// versions pass the parent's workspace through unchanged.
///
/// The emitted code targets the ABI of lang/runtime/GenRuntime.h.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_CODEGEN_H
#define ATC_LANG_CODEGEN_H

#include "lang/Ast.h"

#include <string>

namespace atc {
namespace lang {

/// Emits C++ source for the analyzed program \p P. \p RuntimeInclude is
/// the include path spelled into the output (default: the in-tree
/// GenRuntime.h).
std::string emitCpp(const Program &P,
                    const std::string &RuntimeInclude =
                        "lang/runtime/GenRuntime.h");

} // namespace lang
} // namespace atc

#endif // ATC_LANG_CODEGEN_H
