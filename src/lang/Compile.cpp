//===- lang/Compile.cpp - One-call compiler pipeline ----------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Compile.h"
#include "lang/CodeGen.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

using namespace atc;
using namespace atc::lang;

CompileResult atc::lang::compileAtc(const std::string &Source,
                                    const std::string &RuntimeInclude) {
  CompileResult R;
  std::vector<Token> Tokens = Lexer::tokenize(Source, R.Errors);
  if (!R.Errors.empty())
    return R;
  Parser P(std::move(Tokens), R.Errors);
  R.Ast = P.parseProgram();
  if (!R.Errors.empty())
    return R;
  if (!analyze(R.Ast, R.Errors))
    return R;
  R.Cpp = emitCpp(R.Ast, RuntimeInclude);
  R.Success = true;
  return R;
}
