//===- lang/Compile.h - One-call compiler pipeline --------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point running the whole atcc pipeline: lex, parse,
/// analyze, and (on success) emit C++.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_COMPILE_H
#define ATC_LANG_COMPILE_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace atc {
namespace lang {

struct CompileResult {
  bool Success = false;
  std::vector<std::string> Errors; ///< "line:col: message".
  Program Ast;                     ///< Valid when parsing succeeded.
  std::string Cpp;                 ///< Emitted C++ (empty on failure).
};

/// Compiles ATC source text to C++. \p RuntimeInclude is spelled into the
/// generated #include.
CompileResult compileAtc(const std::string &Source,
                         const std::string &RuntimeInclude =
                             "lang/runtime/GenRuntime.h");

} // namespace lang
} // namespace atc

#endif // ATC_LANG_COMPILE_H
