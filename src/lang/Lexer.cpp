//===- lang/Lexer.cpp - ATC language lexer --------------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <map>

using namespace atc;
using namespace atc::lang;

const char *atc::lang::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::KwCilk:
    return "'cilk'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwSync:
    return "'sync'";
  case TokenKind::KwTaskprivate:
    return "'taskprivate'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Eof:
    return "end of file";
  }
  return "<token>";
}

namespace {

const std::map<std::string, TokenKind> &keywordMap() {
  static const std::map<std::string, TokenKind> Map = {
      {"cilk", TokenKind::KwCilk},
      {"spawn", TokenKind::KwSpawn},
      {"sync", TokenKind::KwSync},
      {"taskprivate", TokenKind::KwTaskprivate},
      {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},
      {"char", TokenKind::KwChar},
      {"void", TokenKind::KwVoid},
      {"struct", TokenKind::KwStruct},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"sizeof", TokenKind::KwSizeof},
  };
  return Map;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, std::vector<std::string> &Errors)
      : Src(Source), Errors(Errors) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    for (;;) {
      skipTrivia();
      Token T = next();
      Tokens.push_back(T);
      if (T.Kind == TokenKind::Eof)
        break;
    }
    return Tokens;
  }

private:
  char peek(int Ahead = 0) const {
    std::size_t I = Pos + static_cast<std::size_t>(Ahead);
    return I < Src.size() ? Src[I] : '\0';
  }

  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Loc.Line;
      Loc.Col = 1;
    } else {
      ++Loc.Col;
    }
    return C;
  }

  void error(const std::string &Msg) {
    Errors.push_back(Loc.str() + ": " + Msg);
  }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = Loc;
        advance();
        advance();
        while (peek() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (!peek()) {
          Errors.push_back(Start.str() + ": unterminated block comment");
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(TokenKind Kind, SourceLoc At) {
    Token T;
    T.Kind = Kind;
    T.Loc = At;
    return T;
  }

  Token next() {
    SourceLoc At = Loc;
    char C = peek();
    if (!C)
      return make(TokenKind::Eof, At);

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentifier(At);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(At);
    if (C == '\'')
      return lexCharLiteral(At);

    advance();
    switch (C) {
    case '(':
      return make(TokenKind::LParen, At);
    case ')':
      return make(TokenKind::RParen, At);
    case '{':
      return make(TokenKind::LBrace, At);
    case '}':
      return make(TokenKind::RBrace, At);
    case '[':
      return make(TokenKind::LBracket, At);
    case ']':
      return make(TokenKind::RBracket, At);
    case ';':
      return make(TokenKind::Semicolon, At);
    case ',':
      return make(TokenKind::Comma, At);
    case ':':
      return make(TokenKind::Colon, At);
    case '.':
      return make(TokenKind::Dot, At);
    case '+':
      if (peek() == '=') {
        advance();
        return make(TokenKind::PlusAssign, At);
      }
      if (peek() == '+') {
        advance();
        return make(TokenKind::PlusPlus, At);
      }
      return make(TokenKind::Plus, At);
    case '-':
      if (peek() == '>') {
        advance();
        return make(TokenKind::Arrow, At);
      }
      if (peek() == '-') {
        advance();
        return make(TokenKind::MinusMinus, At);
      }
      return make(TokenKind::Minus, At);
    case '*':
      return make(TokenKind::Star, At);
    case '/':
      return make(TokenKind::Slash, At);
    case '%':
      return make(TokenKind::Percent, At);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokenKind::AmpAmp, At);
      }
      return make(TokenKind::Amp, At);
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokenKind::PipePipe, At);
      }
      error("unexpected '|' (only '||' is supported)");
      return next();
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokenKind::NotEq, At);
      }
      return make(TokenKind::Bang, At);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokenKind::LessEq, At);
      }
      return make(TokenKind::Less, At);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokenKind::GreaterEq, At);
      }
      return make(TokenKind::Greater, At);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokenKind::EqEq, At);
      }
      return make(TokenKind::Assign, At);
    default:
      error(std::string("unexpected character '") + C + "'");
      return next();
    }
  }

  Token lexIdentifier(SourceLoc At) {
    std::string Text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = keywordMap().find(Text);
    if (It != keywordMap().end())
      return make(It->second, At);
    Token T = make(TokenKind::Identifier, At);
    T.Text = std::move(Text);
    return T;
  }

  Token lexNumber(SourceLoc At) {
    std::int64_t Value = 0;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      bool Any = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char C = advance();
        int Digit = std::isdigit(static_cast<unsigned char>(C))
                        ? C - '0'
                        : std::tolower(static_cast<unsigned char>(C)) - 'a' +
                              10;
        Value = Value * 16 + Digit;
        Any = true;
      }
      if (!Any)
        error("expected hex digits after '0x'");
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + (advance() - '0');
    }
    Token T = make(TokenKind::IntLiteral, At);
    T.IntValue = Value;
    return T;
  }

  Token lexCharLiteral(SourceLoc At) {
    advance(); // opening quote
    std::int64_t Value = 0;
    char C = peek();
    if (C == '\\') {
      advance();
      char E = advance();
      switch (E) {
      case 'n':
        Value = '\n';
        break;
      case 't':
        Value = '\t';
        break;
      case '0':
        Value = 0;
        break;
      case '\\':
        Value = '\\';
        break;
      case '\'':
        Value = '\'';
        break;
      default:
        error(std::string("unknown escape '\\") + E + "'");
      }
    } else if (C) {
      Value = advance();
    }
    if (peek() == '\'')
      advance();
    else
      error("unterminated character literal");
    Token T = make(TokenKind::CharLiteral, At);
    T.IntValue = Value;
    return T;
  }

  const std::string &Src;
  std::vector<std::string> &Errors;
  std::size_t Pos = 0;
  SourceLoc Loc;
};

} // namespace

std::vector<Token> Lexer::tokenize(const std::string &Source,
                                   std::vector<std::string> &Errors) {
  LexerImpl Impl(Source, Errors);
  return Impl.run();
}
