//===- lang/Lexer.h - ATC language lexer ------------------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the ATC language. Supports // and /* */
/// comments, decimal/hex integer literals, and character literals with
/// the usual escapes.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_LEXER_H
#define ATC_LANG_LEXER_H

#include "lang/Token.h"

#include <string>
#include <vector>

namespace atc {
namespace lang {

/// Lexes a whole buffer into a token vector (ending with Eof). Errors are
/// reported through the diagnostics callback of tokenize(); lexing
/// continues after an error so multiple problems surface at once.
class Lexer {
public:
  /// Lexes \p Source. Appends one message per error to \p Errors
  /// ("line:col: message").
  static std::vector<Token> tokenize(const std::string &Source,
                                     std::vector<std::string> &Errors);
};

} // namespace lang
} // namespace atc

#endif // ATC_LANG_LEXER_H
