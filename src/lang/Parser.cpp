//===- lang/Parser.cpp - ATC language parser ------------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace atc;
using namespace atc::lang;

Parser::Parser(std::vector<Token> Tokens, std::vector<std::string> &Errors)
    : Tokens(std::move(Tokens)), Errors(Errors) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(int Ahead) const {
  std::size_t I = Pos + static_cast<std::size_t>(Ahead);
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // Eof
  return Tokens[I];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", got " + tokenKindName(peek().Kind));
  return false;
}

void Parser::error(const std::string &Msg) {
  Errors.push_back(peek().Loc.str() + ": " + Msg);
}

void Parser::synchronizeToStmtBoundary() {
  while (!check(TokenKind::Eof)) {
    if (accept(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace))
      return;
    advance();
  }
}

bool Parser::atTypeStart() const {
  switch (peek().Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwChar:
  case TokenKind::KwVoid:
  case TokenKind::KwStruct:
    return true;
  default:
    return false;
  }
}

Type Parser::parseType() {
  Type T;
  switch (peek().Kind) {
  case TokenKind::KwInt:
    T.BaseKind = Type::Base::Int;
    advance();
    break;
  case TokenKind::KwLong:
    T.BaseKind = Type::Base::Long;
    advance();
    break;
  case TokenKind::KwChar:
    T.BaseKind = Type::Base::Char;
    advance();
    break;
  case TokenKind::KwVoid:
    T.BaseKind = Type::Base::Void;
    advance();
    break;
  case TokenKind::KwStruct:
    advance();
    T.BaseKind = Type::Base::Struct;
    if (check(TokenKind::Identifier))
      T.StructName = advance().Text;
    else
      error("expected struct name");
    break;
  default:
    error("expected a type");
    break;
  }
  while (accept(TokenKind::Star))
    ++T.PointerDepth;
  return T;
}

Program Parser::parseProgram() {
  Program P;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwStruct) && peek(1).is(TokenKind::Identifier) &&
        peek(2).is(TokenKind::LBrace)) {
      P.Structs.push_back(parseStruct());
      continue;
    }
    bool IsCilk = accept(TokenKind::KwCilk);
    if (!atTypeStart()) {
      error("expected a struct or function definition");
      synchronizeToStmtBoundary();
      continue;
    }
    P.Funcs.push_back(parseFunction(IsCilk));
  }
  return P;
}

StructDecl Parser::parseStruct() {
  StructDecl S;
  S.Loc = peek().Loc;
  expect(TokenKind::KwStruct, "at struct definition");
  if (check(TokenKind::Identifier))
    S.Name = advance().Text;
  expect(TokenKind::LBrace, "after struct name");
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    FieldDecl F;
    F.Ty = parseType();
    if (check(TokenKind::Identifier))
      F.Name = advance().Text;
    else
      error("expected field name");
    if (accept(TokenKind::LBracket)) {
      if (check(TokenKind::IntLiteral))
        F.ArraySize = static_cast<int>(advance().IntValue);
      else
        error("expected array size");
      expect(TokenKind::RBracket, "after array size");
    }
    expect(TokenKind::Semicolon, "after field");
    S.Fields.push_back(std::move(F));
  }
  expect(TokenKind::RBrace, "at end of struct");
  expect(TokenKind::Semicolon, "after struct definition");
  return S;
}

std::unique_ptr<FuncDecl> Parser::parseFunction(bool IsCilk) {
  auto F = std::make_unique<FuncDecl>();
  F->IsCilk = IsCilk;
  F->Loc = peek().Loc;
  F->ReturnTy = parseType();
  if (check(TokenKind::Identifier))
    F->Name = advance().Text;
  else
    error("expected function name");

  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl Param;
      Param.Ty = parseType();
      if (check(TokenKind::Identifier))
        Param.Name = advance().Text;
      else
        error("expected parameter name");
      F->Params.push_back(std::move(Param));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameters");

  // taskprivate: (*x) (size-expr[, live-expr]);
  if (check(TokenKind::KwTaskprivate)) {
    F->Taskprivate.Present = true;
    F->Taskprivate.Loc = peek().Loc;
    advance();
    expect(TokenKind::Colon, "after 'taskprivate'");
    expect(TokenKind::LParen, "in taskprivate clause");
    expect(TokenKind::Star, "in taskprivate clause");
    if (check(TokenKind::Identifier))
      F->Taskprivate.VarName = advance().Text;
    else
      error("expected taskprivate variable name");
    expect(TokenKind::RParen, "in taskprivate clause");
    expect(TokenKind::LParen, "before taskprivate size expression");
    F->Taskprivate.SizeExpr = parseExpr();
    if (accept(TokenKind::Comma))
      F->Taskprivate.LiveExpr = parseExpr();
    expect(TokenKind::RParen, "after taskprivate size expression");
    expect(TokenKind::Semicolon, "after taskprivate clause");
  }

  if (check(TokenKind::LBrace)) {
    StmtPtr Body = parseBlock();
    F->Body.reset(static_cast<BlockStmt *>(Body.release()));
  } else {
    expect(TokenKind::Semicolon, "after function declaration");
  }
  return F;
}

StmtPtr Parser::parseBlock() {
  auto B = std::make_unique<BlockStmt>(peek().Loc);
  expect(TokenKind::LBrace, "at block start");
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    std::size_t Before = Pos;
    StmtPtr S = parseStmt();
    if (S)
      B->Stmts.push_back(std::move(S));
    if (Pos == Before) {
      // No progress: recover.
      synchronizeToStmtBoundary();
      if (Pos == Before)
        advance();
    }
  }
  expect(TokenKind::RBrace, "at block end");
  return B;
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn: {
    advance();
    ExprPtr Value;
    if (!check(TokenKind::Semicolon))
      Value = parseExpr();
    expect(TokenKind::Semicolon, "after return");
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }
  case TokenKind::KwBreak:
    advance();
    expect(TokenKind::Semicolon, "after break");
    return std::make_unique<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    advance();
    expect(TokenKind::Semicolon, "after continue");
    return std::make_unique<ContinueStmt>(Loc);
  case TokenKind::KwSync:
    advance();
    expect(TokenKind::Semicolon, "after sync");
    return std::make_unique<SyncStmt>(Loc);
  default:
    break;
  }

  // Spawn statement: IDENT += spawn IDENT ( args ) ;
  if (check(TokenKind::Identifier) && peek(1).is(TokenKind::PlusAssign) &&
      peek(2).is(TokenKind::KwSpawn)) {
    std::string Receiver = advance().Text;
    advance(); // +=
    advance(); // spawn
    std::string Callee;
    if (check(TokenKind::Identifier))
      Callee = advance().Text;
    else
      error("expected function name after 'spawn'");
    expect(TokenKind::LParen, "after spawned function name");
    std::vector<ExprPtr> Args = parseArgs();
    expect(TokenKind::RParen, "after spawn arguments");
    expect(TokenKind::Semicolon, "after spawn statement");
    return std::make_unique<SpawnStmt>(std::move(Receiver),
                                       std::move(Callee), std::move(Args),
                                       Loc);
  }
  if (check(TokenKind::KwSpawn)) {
    error("spawn must appear as 'var += spawn f(...);'");
    synchronizeToStmtBoundary();
    return nullptr;
  }

  return parseDeclOrExprStmt();
}

StmtPtr Parser::parseDeclOrExprStmt() {
  SourceLoc Loc = peek().Loc;
  if (atTypeStart()) {
    Type Ty = parseType();
    std::string Name;
    if (check(TokenKind::Identifier))
      Name = advance().Text;
    else
      error("expected variable name");
    int ArraySize = -1;
    if (accept(TokenKind::LBracket)) {
      if (check(TokenKind::IntLiteral))
        ArraySize = static_cast<int>(advance().IntValue);
      else
        error("expected array size");
      expect(TokenKind::RBracket, "after array size");
    }
    ExprPtr Init;
    if (accept(TokenKind::Assign))
      Init = parseExpr();
    expect(TokenKind::Semicolon, "after declaration");
    return std::make_unique<DeclStmt>(Ty, std::move(Name), ArraySize,
                                      std::move(Init), Loc);
  }
  ExprPtr E = parseExpr();
  expect(TokenKind::Semicolon, "after expression");
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = peek().Loc;
  advance();
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (accept(TokenKind::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = peek().Loc;
  advance();
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseStmt();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = peek().Loc;
  advance();
  expect(TokenKind::LParen, "after 'for'");
  StmtPtr Init;
  if (!accept(TokenKind::Semicolon))
    Init = parseDeclOrExprStmt(); // consumes the ';'
  ExprPtr Cond;
  if (!check(TokenKind::Semicolon))
    Cond = parseExpr();
  expect(TokenKind::Semicolon, "after for condition");
  ExprPtr Step;
  if (!check(TokenKind::RParen))
    Step = parseExpr();
  expect(TokenKind::RParen, "after for clauses");
  StmtPtr Body = parseStmt();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body), Loc);
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  if (check(TokenKind::RParen))
    return Args;
  do {
    Args.push_back(parseExpr());
  } while (accept(TokenKind::Comma));
  return Args;
}

ExprPtr Parser::parseExpr() {
  ExprPtr Lhs = parseBinary(0);
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::Assign))
    return std::make_unique<AssignExpr>(false, std::move(Lhs), parseExpr(),
                                        Loc);
  if (accept(TokenKind::PlusAssign))
    return std::make_unique<AssignExpr>(true, std::move(Lhs), parseExpr(),
                                        Loc);
  return Lhs;
}

namespace {

/// Binding powers; higher binds tighter.
int precedenceOf(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 3;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEq:
  case TokenKind::GreaterEq:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

BinaryExpr::Op binOpOf(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return BinaryExpr::Op::Or;
  case TokenKind::AmpAmp:
    return BinaryExpr::Op::And;
  case TokenKind::EqEq:
    return BinaryExpr::Op::Eq;
  case TokenKind::NotEq:
    return BinaryExpr::Op::Ne;
  case TokenKind::Less:
    return BinaryExpr::Op::Lt;
  case TokenKind::Greater:
    return BinaryExpr::Op::Gt;
  case TokenKind::LessEq:
    return BinaryExpr::Op::Le;
  case TokenKind::GreaterEq:
    return BinaryExpr::Op::Ge;
  case TokenKind::Plus:
    return BinaryExpr::Op::Add;
  case TokenKind::Minus:
    return BinaryExpr::Op::Sub;
  case TokenKind::Star:
    return BinaryExpr::Op::Mul;
  case TokenKind::Slash:
    return BinaryExpr::Op::Div;
  default:
    return BinaryExpr::Op::Rem;
  }
}

} // namespace

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    int Prec = precedenceOf(peek().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return Lhs;
    TokenKind K = peek().Kind;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseBinary(Prec + 1);
    Lhs = std::make_unique<BinaryExpr>(binOpOf(K), std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::Bang))
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::Not, parseUnary(), Loc);
  if (accept(TokenKind::Minus))
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::Neg, parseUnary(), Loc);
  if (accept(TokenKind::Star))
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::Deref, parseUnary(),
                                       Loc);
  if (accept(TokenKind::Amp))
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::AddrOf, parseUnary(),
                                       Loc);
  if (accept(TokenKind::PlusPlus))
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::PreInc, parseUnary(),
                                       Loc);
  if (accept(TokenKind::MinusMinus))
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::PreDec, parseUnary(),
                                       Loc);
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    SourceLoc Loc = peek().Loc;
    if (accept(TokenKind::LBracket)) {
      ExprPtr Idx = parseExpr();
      expect(TokenKind::RBracket, "after index");
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Idx), Loc);
      continue;
    }
    if (accept(TokenKind::Dot)) {
      std::string Field;
      if (check(TokenKind::Identifier))
        Field = advance().Text;
      else
        error("expected field name after '.'");
      E = std::make_unique<MemberExpr>(std::move(E), std::move(Field),
                                       /*ThroughPointer=*/false, Loc);
      continue;
    }
    if (accept(TokenKind::Arrow)) {
      std::string Field;
      if (check(TokenKind::Identifier))
        Field = advance().Text;
      else
        error("expected field name after '->'");
      E = std::make_unique<MemberExpr>(std::move(E), std::move(Field),
                                       /*ThroughPointer=*/true, Loc);
      continue;
    }
    if (accept(TokenKind::PlusPlus)) {
      E = std::make_unique<UnaryExpr>(UnaryExpr::Op::PostInc, std::move(E),
                                      Loc);
      continue;
    }
    if (accept(TokenKind::MinusMinus)) {
      E = std::make_unique<UnaryExpr>(UnaryExpr::Op::PostDec, std::move(E),
                                      Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::IntLiteral) || check(TokenKind::CharLiteral)) {
    std::int64_t V = advance().IntValue;
    return std::make_unique<IntLitExpr>(V, Loc);
  }
  if (check(TokenKind::KwSizeof)) {
    advance();
    expect(TokenKind::LParen, "after 'sizeof'");
    Type Ty = parseType();
    expect(TokenKind::RParen, "after sizeof type");
    return std::make_unique<SizeofExpr>(Ty, Loc);
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LParen)) {
      std::vector<ExprPtr> Args = parseArgs();
      expect(TokenKind::RParen, "after call arguments");
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                        Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  error(std::string("expected an expression, got ") +
        tokenKindName(peek().Kind));
  advance();
  return std::make_unique<IntLitExpr>(0, Loc);
}
