//===- lang/Parser.h - ATC language parser ----------------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the ATC language. Grammar summary:
///
///   program    := (structdef | funcdef)*
///   structdef  := "struct" IDENT "{" field* "}" ";"
///   field      := type IDENT ("[" INT "]")? ";"
///   funcdef    := "cilk"? type IDENT "(" params ")" taskpriv? block
///   taskpriv   := "taskprivate" ":" "(" "*" IDENT ")"
///                 "(" expr ("," expr)? ")" ";"
///   type       := ("int"|"long"|"char"|"void"|"struct" IDENT) "*"*
///   stmt       := block | decl | if | while | for | return | break
///               | continue | "sync" ";" | spawnstmt | expr ";"
///   spawnstmt  := IDENT "+=" "spawn" IDENT "(" args ")" ";"
///
/// Expressions use precedence climbing: || < && < ==,!= < relational <
/// additive < multiplicative < unary < postfix.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_PARSER_H
#define ATC_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"

#include <string>
#include <vector>

namespace atc {
namespace lang {

/// Parses tokens into a Program. Parse errors are appended to Errors
/// ("line:col: message"); the parser recovers at statement boundaries so
/// several errors can be reported in one pass.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<std::string> &Errors);

  Program parseProgram();

private:
  const Token &peek(int Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind K) const { return peek().is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Msg);
  void synchronizeToStmtBoundary();

  bool atTypeStart() const;
  Type parseType();
  StructDecl parseStruct();
  std::unique_ptr<FuncDecl> parseFunction(bool IsCilk);

  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseDeclOrExprStmt();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();

  ExprPtr parseExpr();       // assignment level
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  std::vector<Token> Tokens;
  std::vector<std::string> &Errors;
  std::size_t Pos = 0;
};

} // namespace lang
} // namespace atc

#endif // ATC_LANG_PARSER_H
