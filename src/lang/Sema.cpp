//===- lang/Sema.cpp - ATC language semantic analysis ---------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <map>

using namespace atc;
using namespace atc::lang;

std::string Type::str() const {
  std::string Out;
  switch (BaseKind) {
  case Base::Int:
    Out = "int";
    break;
  case Base::Long:
    Out = "long";
    break;
  case Base::Char:
    Out = "char";
    break;
  case Base::Void:
    Out = "void";
    break;
  case Base::Struct:
    Out = "struct " + StructName;
    break;
  }
  for (int I = 0; I < PointerDepth; ++I)
    Out += " *";
  return Out;
}

namespace {

/// One lexical scope of local variables.
struct Scope {
  std::map<std::string, Type> Vars;
};

class SemaImpl {
public:
  SemaImpl(Program &P, std::vector<std::string> &Errors)
      : P(P), Errors(Errors) {}

  bool run() {
    checkStructs();
    for (auto &F : P.Funcs)
      checkFunction(*F);
    return Errors.empty();
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) {
    Errors.push_back(Loc.str() + ": " + Msg);
  }

  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  void checkStructs() {
    for (std::size_t I = 0; I < P.Structs.size(); ++I) {
      const StructDecl &S = P.Structs[I];
      for (std::size_t J = 0; J < I; ++J)
        if (P.Structs[J].Name == S.Name)
          error(S.Loc, "redefinition of struct '" + S.Name + "'");
      for (const FieldDecl &F : S.Fields)
        checkTypeExists(F.Ty, S.Loc);
    }
  }

  void checkTypeExists(const Type &T, SourceLoc Loc) {
    if (T.BaseKind == Type::Base::Struct && !P.findStruct(T.StructName))
      error(Loc, "unknown struct '" + T.StructName + "'");
  }

  void checkFunction(FuncDecl &F) {
    for (std::size_t I = 0; I < P.Funcs.size(); ++I) {
      if (P.Funcs[I].get() == &F)
        break;
      if (P.Funcs[I]->Name == F.Name)
        error(F.Loc, "redefinition of function '" + F.Name + "'");
    }
    checkTypeExists(F.ReturnTy, F.Loc);

    if (F.IsCilk && !F.ReturnTy.isIntegral())
      error(F.Loc, "cilk function '" + F.Name +
                       "' must return an integral value (its result is "
                       "deposited with an atomic add when stolen)");
    if (F.Taskprivate.Present && !F.IsCilk)
      error(F.Taskprivate.Loc,
            "taskprivate clause on non-cilk function '" + F.Name + "'");

    CurFunc = &F;
    Scopes.clear();
    Scopes.emplace_back();
    LoopDepth = 0;
    NextSpawnId = 0;

    for (const ParamDecl &Param : F.Params) {
      checkTypeExists(Param.Ty, F.Loc);
      if (Scopes.back().Vars.count(Param.Name))
        error(F.Loc, "duplicate parameter '" + Param.Name + "'");
      Scopes.back().Vars[Param.Name] = Param.Ty;
    }

    if (F.Taskprivate.Present) {
      // "Only parameters or local variables can be declared as
      // taskprivate, and taskprivate could be declared on a pointer".
      // The five-version protocol copies it per child task, so it must
      // be a pointer parameter here.
      bool Found = false;
      for (const ParamDecl &Param : F.Params)
        if (Param.Name == F.Taskprivate.VarName) {
          Found = true;
          if (!Param.Ty.isPointer())
            error(F.Taskprivate.Loc, "taskprivate variable '" +
                                         Param.Name +
                                         "' must be a pointer");
        }
      if (!Found)
        error(F.Taskprivate.Loc, "taskprivate variable '" +
                                     F.Taskprivate.VarName +
                                     "' is not a parameter of '" + F.Name +
                                     "'");
      if (F.Taskprivate.SizeExpr)
        checkExpr(*F.Taskprivate.SizeExpr);
      if (F.Taskprivate.LiveExpr)
        checkExpr(*F.Taskprivate.LiveExpr);
    }

    if (F.Body)
      checkBlock(*F.Body);
    F.NumSpawns = NextSpawnId;
    CurFunc = nullptr;
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  void checkBlock(BlockStmt &B) {
    Scopes.emplace_back();
    for (StmtPtr &S : B.Stmts)
      checkStmt(*S);
    Scopes.pop_back();
  }

  void checkStmt(Stmt &S) {
    switch (S.StmtKind) {
    case Stmt::Kind::Block:
      checkBlock(*S.as<BlockStmt>());
      return;
    case Stmt::Kind::Decl: {
      auto *D = S.as<DeclStmt>();
      checkTypeExists(D->Ty, D->Loc);
      if (D->Ty.isVoid() && D->ArraySize < 0)
        error(D->Loc, "variable '" + D->Name + "' has void type");
      if (Scopes.back().Vars.count(D->Name))
        error(D->Loc, "redefinition of '" + D->Name + "'");
      if (D->ArraySize >= 0 && CurFunc && CurFunc->IsCilk)
        error(D->Loc,
              "array locals are not supported in cilk functions (pass a "
              "taskprivate workspace pointer instead)");
      if (D->Init)
        checkExpr(*D->Init);
      Type VarTy = D->Ty;
      if (D->ArraySize >= 0)
        VarTy = VarTy.pointerTo(); // arrays decay in expressions
      Scopes.back().Vars[D->Name] = VarTy;
      return;
    }
    case Stmt::Kind::ExprStmt:
      checkExpr(*S.as<ExprStmt>()->E);
      return;
    case Stmt::Kind::If: {
      auto *I = S.as<IfStmt>();
      checkExpr(*I->Cond);
      checkStmt(*I->Then);
      if (I->Else)
        checkStmt(*I->Else);
      return;
    }
    case Stmt::Kind::While: {
      auto *W = S.as<WhileStmt>();
      checkExpr(*W->Cond);
      ++LoopDepth;
      checkStmt(*W->Body);
      --LoopDepth;
      return;
    }
    case Stmt::Kind::For: {
      auto *F = S.as<ForStmt>();
      Scopes.emplace_back(); // the init declaration's scope
      if (F->Init)
        checkStmt(*F->Init);
      if (F->Cond)
        checkExpr(*F->Cond);
      if (F->Step)
        checkExpr(*F->Step);
      ++LoopDepth;
      checkStmt(*F->Body);
      --LoopDepth;
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Return: {
      auto *R = S.as<ReturnStmt>();
      if (R->Value)
        checkExpr(*R->Value);
      if (CurFunc && !CurFunc->ReturnTy.isVoid() && !R->Value)
        error(R->Loc, "non-void function '" + CurFunc->Name +
                          "' must return a value");
      if (CurFunc && CurFunc->ReturnTy.isVoid() && R->Value)
        error(R->Loc, "void function '" + CurFunc->Name +
                          "' cannot return a value");
      return;
    }
    case Stmt::Kind::Break:
      if (LoopDepth == 0)
        error(S.Loc, "break outside of a loop");
      return;
    case Stmt::Kind::Continue:
      if (LoopDepth == 0)
        error(S.Loc, "continue outside of a loop");
      return;
    case Stmt::Kind::Sync:
      if (!CurFunc || !CurFunc->IsCilk)
        error(S.Loc, "sync outside of a cilk function");
      return;
    case Stmt::Kind::Spawn:
      checkSpawn(*S.as<SpawnStmt>());
      return;
    }
  }

  void checkSpawn(SpawnStmt &S) {
    if (!CurFunc || !CurFunc->IsCilk)
      error(S.Loc, "spawn outside of a cilk function");
    else
      S.SpawnId = NextSpawnId++;

    const Type *RecvTy = lookup(S.Receiver);
    if (!RecvTy)
      error(S.Loc, "unknown spawn receiver '" + S.Receiver + "'");
    else if (!RecvTy->isIntegral())
      error(S.Loc, "spawn receiver '" + S.Receiver +
                       "' must be an integral variable");

    const FuncDecl *Callee = P.findFunc(S.Callee);
    if (!Callee) {
      error(S.Loc, "spawn of unknown function '" + S.Callee + "'");
    } else {
      if (!Callee->IsCilk)
        error(S.Loc, "spawn target '" + S.Callee +
                         "' is not a cilk function");
      if (Callee->Params.size() != S.Args.size())
        error(S.Loc, "'" + S.Callee + "' expects " +
                         std::to_string(Callee->Params.size()) +
                         " arguments, got " +
                         std::to_string(S.Args.size()));
    }
    for (ExprPtr &Arg : S.Args)
      checkExpr(*Arg);
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  const Type *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->Vars.find(Name);
      if (Found != It->Vars.end())
        return &Found->second;
    }
    return nullptr;
  }

  Type intType() const {
    Type T;
    T.BaseKind = Type::Base::Int;
    return T;
  }

  void checkExpr(Expr &E) {
    switch (E.ExprKind) {
    case Expr::Kind::IntLit:
      E.Ty = intType();
      return;
    case Expr::Kind::VarRef: {
      auto *V = E.as<VarRefExpr>();
      if (const Type *T = lookup(V->Name)) {
        E.Ty = *T;
      } else {
        error(E.Loc, "unknown variable '" + V->Name + "'");
        E.Ty = intType();
      }
      return;
    }
    case Expr::Kind::Unary: {
      auto *U = E.as<UnaryExpr>();
      checkExpr(*U->Sub);
      switch (U->O) {
      case UnaryExpr::Op::Deref:
        if (!U->Sub->Ty.isPointer()) {
          error(E.Loc, "cannot dereference non-pointer of type " +
                           U->Sub->Ty.str());
          E.Ty = intType();
        } else {
          E.Ty = U->Sub->Ty.pointee();
        }
        return;
      case UnaryExpr::Op::AddrOf:
        E.Ty = U->Sub->Ty.pointerTo();
        return;
      default:
        E.Ty = U->Sub->Ty;
        return;
      }
    }
    case Expr::Kind::Binary: {
      auto *B = E.as<BinaryExpr>();
      checkExpr(*B->Lhs);
      checkExpr(*B->Rhs);
      // Pointer arithmetic keeps the pointer type; everything else is
      // integral.
      if (B->Lhs->Ty.isPointer() &&
          (B->O == BinaryExpr::Op::Add || B->O == BinaryExpr::Op::Sub))
        E.Ty = B->Lhs->Ty;
      else
        E.Ty = intType();
      return;
    }
    case Expr::Kind::Assign: {
      auto *A = E.as<AssignExpr>();
      checkExpr(*A->Lhs);
      checkExpr(*A->Rhs);
      if (!isLvalue(*A->Lhs))
        error(E.Loc, "left side of assignment is not assignable");
      E.Ty = A->Lhs->Ty;
      return;
    }
    case Expr::Kind::Call: {
      auto *C = E.as<CallExpr>();
      // print_long is the one builtin (diagnostic output).
      if (C->Callee == "print_long") {
        if (C->Args.size() != 1)
          error(E.Loc, "print_long expects 1 argument");
        for (ExprPtr &Arg : C->Args)
          checkExpr(*Arg);
        Type Void;
        Void.BaseKind = Type::Base::Void;
        E.Ty = Void;
        return;
      }
      const FuncDecl *Callee = P.findFunc(C->Callee);
      if (!Callee) {
        error(E.Loc, "call to unknown function '" + C->Callee + "'");
        E.Ty = intType();
      } else {
        // A cilk function may be *called* from non-cilk code (the root
        // task invocation); within cilk code it must be spawned.
        if (Callee->IsCilk && CurFunc && CurFunc->IsCilk)
          error(E.Loc, "cilk function '" + C->Callee +
                           "' must be invoked with spawn");
        if (Callee->Params.size() != C->Args.size())
          error(E.Loc, "'" + C->Callee + "' expects " +
                           std::to_string(Callee->Params.size()) +
                           " arguments, got " +
                           std::to_string(C->Args.size()));
        E.Ty = Callee->ReturnTy;
      }
      for (ExprPtr &Arg : C->Args)
        checkExpr(*Arg);
      return;
    }
    case Expr::Kind::Index: {
      auto *I = E.as<IndexExpr>();
      checkExpr(*I->Base);
      checkExpr(*I->Idx);
      if (!I->Base->Ty.isPointer()) {
        error(E.Loc, "cannot index non-pointer of type " +
                         I->Base->Ty.str());
        E.Ty = intType();
      } else {
        E.Ty = I->Base->Ty.pointee();
      }
      return;
    }
    case Expr::Kind::Member: {
      auto *M = E.as<MemberExpr>();
      checkExpr(*M->Base);
      Type BaseTy = M->Base->Ty;
      if (M->ThroughPointer) {
        if (!BaseTy.isPointer()) {
          error(E.Loc, "'->' on non-pointer of type " + BaseTy.str());
          E.Ty = intType();
          return;
        }
        BaseTy = BaseTy.pointee();
      }
      if (BaseTy.BaseKind != Type::Base::Struct || BaseTy.isPointer()) {
        error(E.Loc, "member access on non-struct type " + BaseTy.str());
        E.Ty = intType();
        return;
      }
      const StructDecl *S = P.findStruct(BaseTy.StructName);
      if (!S) {
        error(E.Loc, "unknown struct '" + BaseTy.StructName + "'");
        E.Ty = intType();
        return;
      }
      for (const FieldDecl &F : S->Fields)
        if (F.Name == M->Field) {
          E.Ty = F.ArraySize >= 0 ? F.Ty.pointerTo() : F.Ty;
          return;
        }
      error(E.Loc, "struct '" + S->Name + "' has no field '" + M->Field +
                       "'");
      E.Ty = intType();
      return;
    }
    case Expr::Kind::Sizeof: {
      auto *Sz = E.as<SizeofExpr>();
      checkTypeExists(Sz->Of, E.Loc);
      E.Ty = intType();
      return;
    }
    }
  }

  static bool isLvalue(const Expr &E) {
    switch (E.ExprKind) {
    case Expr::Kind::VarRef:
    case Expr::Kind::Index:
    case Expr::Kind::Member:
      return true;
    case Expr::Kind::Unary:
      return E.as<UnaryExpr>()->O == UnaryExpr::Op::Deref;
    default:
      return false;
    }
  }

  Program &P;
  std::vector<std::string> &Errors;
  FuncDecl *CurFunc = nullptr;
  std::vector<Scope> Scopes;
  int LoopDepth = 0;
  int NextSpawnId = 0;
};

} // namespace

bool atc::lang::analyze(Program &P, std::vector<std::string> &Errors) {
  SemaImpl Impl(P, Errors);
  return Impl.run();
}
