//===- lang/Sema.h - ATC language semantic analysis -------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for the ATC language: name resolution, light type
/// checking, and the Cilk/AdaptiveTC-specific rules:
///
///  * spawn and sync may only appear inside cilk functions;
///  * spawn targets must themselves be cilk functions;
///  * a cilk function must return an integral value (its result is
///    deposited into the receiver with an atomic add when the parent
///    task has been stolen — the accumulator protocol);
///  * the spawn receiver must be an integral local variable of the
///    spawning function;
///  * the taskprivate variable must be a pointer parameter of its
///    function ("Only parameters or local variables can be declared as
///    taskprivate, and taskprivate could be declared on a pointer or an
///    array");
///  * break/continue only inside loops; struct/field references resolve.
///
/// Sema also assigns each spawn statement its entry-point id (the saved
/// "PC" of the five-version code) and counts spawns per function.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_SEMA_H
#define ATC_LANG_SEMA_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace atc {
namespace lang {

/// Runs semantic analysis over \p P, mutating it (expression types,
/// spawn ids). Appends "line:col: message" diagnostics to \p Errors;
/// returns true when no errors were found.
bool analyze(Program &P, std::vector<std::string> &Errors);

} // namespace lang
} // namespace atc

#endif // ATC_LANG_SEMA_H
