//===- lang/Token.h - ATC language tokens -----------------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions for the ATC language — the paper's extended-Cilk
/// input language ("The parallel language is an extended Cilk ...
/// AdaptiveTC extends the Cilk language further by providing the
/// taskprivate keyword").
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_TOKEN_H
#define ATC_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace atc {
namespace lang {

/// Source location (1-based line/column).
struct SourceLoc {
  int Line = 1;
  int Col = 1;

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  CharLiteral,

  // Keywords.
  KwCilk,
  KwSpawn,
  KwSync,
  KwTaskprivate,
  KwInt,
  KwLong,
  KwChar,
  KwVoid,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Colon,
  Dot,
  Arrow, // ->

  Assign,     // =
  PlusAssign, // +=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,     // &
  AmpAmp,  // &&
  PipePipe, // ||
  Bang,    // !
  Less,
  Greater,
  LessEq,
  GreaterEq,
  EqEq,
  NotEq,
  PlusPlus,
  MinusMinus,

  Eof,
};

/// Returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;       ///< Identifier spelling.
  std::int64_t IntValue = 0; ///< For IntLiteral / CharLiteral.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace lang
} // namespace atc

#endif // ATC_LANG_TOKEN_H
