//===- lang/runtime/GenRuntime.h - ABI for atcc-generated code --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime hooks for code emitted by atcc (the ATC compiler). The
/// generated five-version functions call these for every scheduling
/// action: frame allocation, THE-protocol push/pop, special-task
/// operations, need_task polling, and workspace (taskprivate)
/// allocation.
///
/// This header implements the hooks for a *single-worker* executor with
/// full protocol fidelity: every push/pop/special operation runs against
/// a real deque and is counted, but pops never fail (there are no
/// thieves), so the slow-version resume paths are compiled yet not
/// exercised. The parallel execution of the AdaptiveTC strategy is the
/// core library's job (atc::FramePolicy over the scheduler kernel); the compiler exists to
/// demonstrate the paper's translation scheme end-to-end (see DESIGN.md).
///
/// Testing knob: setting forceNeedTaskEvery(N) makes needTask() report
/// true on every Nth poll, driving the check version through its
/// special-task transition (push special, fast_2 child with depth reset,
/// pop_specialtask, sync_specialtask) on a single worker.
///
/// Tracing knob: ATCGEN_TRACE=<path> arms the scheduler event tracer for
/// the whole process (one worker track; spawn, special-task, FSM and
/// need_task events) and writes a Chrome/Perfetto trace.json to <path>
/// when the Worker is destroyed. ATCGEN_TRACE_CAP overrides the ring
/// capacity (events; default 1M). Compiled out with ATC_TRACE=OFF builds
/// (-DATC_TRACE_ENABLED=0).
///
/// Deque knob: ATCGEN_DEQUE=the|atomic|chaselev mirrors every protocol
/// operation (push, pop, pushSpecial, popSpecial) into a real scheduler
/// deque of that kind, running alongside the shadow vector and asserted
/// to agree after every step — the single-worker executor becomes a
/// protocol-conformance harness for the deque layer, driving the exact
/// operation sequences atcc emits (including the special-task pushes the
/// forced-need_task mode provokes) through the same header-only deques
/// the core runtime schedules with. ATCGEN_DEQUE_CAP overrides the
/// (initial) capacity — with chaselev a tiny cap forces ring growth in
/// the middle of the run. Unset means shadow-only, unchanged behaviour.
///
/// Metrics knob: ATCGEN_METRICS=<path> writes a Prometheus text
/// exposition (0.0.4) of the run's protocol counters to <path> when the
/// Worker is destroyed — the same atc_* metric families the core
/// runtime's live registry exports (src/metrics), restricted to what a
/// single-worker executor can observe. Generated binaries link only
/// atc_lang/atc_support, so the writer here is self-contained rather
/// than routed through the atc_metrics library; MetricsTest round-trips
/// the output through the shared parser to pin the format. Compiled out
/// with ATC_METRICS=OFF builds (-DATC_METRICS_ENABLED=0).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_LANG_RUNTIME_GENRUNTIME_H
#define ATC_LANG_RUNTIME_GENRUNTIME_H

// The Figure 2 FSM shared with the core library and the simulator
// (self-contained header; generated code compiles with -I <repo>/src).
#include "core/kernel/FiveVersionFsm.h"
// Event tracing (header-only exporter included too: generated binaries
// write their own trace.json — see the ATCGEN_TRACE knob below).
#include "trace/TraceJson.h"
// The three scheduler deques (all header-only so generated code, which
// links nothing, can instantiate them — see the ATCGEN_DEQUE knob).
#include "deque/AtomicDeque.h"
#include "deque/ChaseLevDeque.h"
#include "deque/TheDeque.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

// Compile-time metrics gate (shared with src/metrics; the fallback is
// duplicated so generated code keeps compiling with only -I <repo>/src).
#ifndef ATC_METRICS_ENABLED
#define ATC_METRICS_ENABLED 1
#endif

namespace atcgen {

// Generated code names versions as atcgen::CodeVersion::Fast etc.
using atc::CodeVersion;
using atc::FsmCounters;

/// Common header of every generated task frame ("task_info").
struct TaskInfoBase {
  int Entry = 0;      ///< Saved "PC": the spawn id to resume after.
  int Dp = 0;         ///< Saved spawn depth (_adpTC_dp).
  bool Special = false;
  long Deposits = 0;  ///< Results deposited by stolen children.
  int Join = 0;       ///< Outstanding stolen children.
  void (*SlowFn)(struct Worker &, TaskInfoBase *) = nullptr;
};

/// Per-run protocol counters (inspected by tests and examples).
struct GenStats {
  std::uint64_t FramesAllocated = 0;
  std::uint64_t Pushes = 0;
  std::uint64_t Pops = 0;
  std::uint64_t SpecialPushes = 0;
  std::uint64_t SpecialPops = 0;
  std::uint64_t SpecialSyncs = 0;
  std::uint64_t Polls = 0;
  std::uint64_t NeedTaskHits = 0;
  std::uint64_t WorkspaceAllocs = 0;
  std::uint64_t WorkspaceBytes = 0;       ///< Declared workspace sizes.
  std::uint64_t WorkspaceCopiedBytes = 0; ///< Bytes actually memcpy'd
                                          ///< (<= WorkspaceBytes when a
                                          ///< live bound is declared).
  std::uint64_t WorkspaceReuses = 0;      ///< Allocs served by the freelist.
};

/// Type-erased adapter over the three scheduler deques for the
/// ATCGEN_DEQUE conformance mirror (see the file comment). Virtual
/// dispatch is fine here: the mirror is a validation knob, never the
/// measured path.
class DequeMirror {
public:
  virtual ~DequeMirror() = default;
  virtual const char *kind() const = 0;
  virtual void push(void *Frame, bool Special) = 0;
  virtual atc::PopResult pop() = 0;
  virtual atc::PopResult popSpecial() = 0;
  virtual int size() const = 0;
  virtual std::uint64_t growCount() const = 0;
};

template <class DequeT> class DequeMirrorOf final : public DequeMirror {
public:
  DequeMirrorOf(const char *Kind, int Capacity) : Kind(Kind), D(Capacity) {}
  const char *kind() const override { return Kind; }
  void push(void *Frame, bool Special) override {
    bool Ok = D.tryPush(Frame, Special);
    (void)Ok;
    assert(Ok && "ATCGEN_DEQUE mirror overflow: raise ATCGEN_DEQUE_CAP");
  }
  atc::PopResult pop() override { return D.pop(); }
  atc::PopResult popSpecial() override { return D.popSpecial(); }
  int size() const override { return D.size(); }
  std::uint64_t growCount() const override {
    if constexpr (requires { D.growCount(); })
      return D.growCount();
    else
      return 0;
  }

private:
  const char *Kind;
  DequeT D;
};

/// Single-worker executor implementing the generated-code ABI.
struct Worker {
  explicit Worker(int CutoffDepth = 0) : Fsm(CutoffDepth) {
#if ATC_TRACE_ENABLED
    if (const char *Path = std::getenv("ATCGEN_TRACE")) {
      std::size_t Cap = 1u << 20;
      if (const char *CapStr = std::getenv("ATCGEN_TRACE_CAP"))
        if (long V = std::atol(CapStr); V > 0)
          Cap = static_cast<std::size_t>(V);
      Trace = std::make_unique<atc::TraceLog>(1, Cap);
      Trace->Meta.Scheduler = "AdaptiveTC";
      Trace->Meta.Source = "genruntime";
      TracePath = Path;
      TB = &Trace->buffer(0);
    }
#endif
#if ATC_METRICS_ENABLED
    if (const char *Path = std::getenv("ATCGEN_METRICS"))
      MetricsPath = Path;
#endif
    if (const char *Kind = std::getenv("ATCGEN_DEQUE")) {
      int Cap = 8192;
      if (const char *CapStr = std::getenv("ATCGEN_DEQUE_CAP"))
        if (long V = std::atol(CapStr); V > 0)
          Cap = static_cast<int>(V);
      std::string K(Kind);
      if (K == "the")
        Mirror = std::make_unique<DequeMirrorOf<atc::TheDeque>>("the", Cap);
      else if (K == "atomic")
        Mirror =
            std::make_unique<DequeMirrorOf<atc::AtomicDeque>>("atomic", Cap);
      else if (K == "chaselev")
        Mirror = std::make_unique<DequeMirrorOf<atc::ChaseLevDeque>>(
            "chaselev", Cap);
      else {
        std::fprintf(stderr,
                     "atcgen: unknown ATCGEN_DEQUE kind '%s' "
                     "(expected the|atomic|chaselev)\n",
                     Kind);
        std::exit(2);
      }
    }
  }

  int cutoff() const { return Fsm.cutoff(); }

  /// Figure 2 dispatch for the generated spawn sites: returns the version
  /// the child of a spawn executing version \p Cur at spawn depth \p Dp
  /// runs under, per the shared FiveVersionFsm. Polls need_task exactly
  /// when Cur is the check version (one poll per spawn-site iteration,
  /// counted in Stats.Polls) and records the transition in FsmCounts.
  /// The generated code branches on the returned version; the depth
  /// expressions it passes to the child (_dp + 1, or 0 on the special
  /// transition) match the FSM's ChildDp by construction.
  CodeVersion dispatch(CodeVersion Cur, int Dp) {
    const bool NT = (Cur == CodeVersion::Check) && needTask();
    const atc::FsmTransition T = Fsm.child(Cur, Dp, NT);
    FsmCounts.record(Cur, T.Child);
    if (NT)
      ATC_TRACE_EVENT(TB, atc::TraceEventKind::NeedTaskObserve, 0,
                      static_cast<std::uint16_t>(Dp));
    if (T.Child != Cur)
      ATC_TRACE_EVENT(TB, atc::TraceEventKind::FsmTransition,
                      static_cast<std::uint32_t>(Cur),
                      static_cast<std::uint16_t>(T.Child));
#if ATC_TRACE_ENABLED
    // Approximate span attribution for the one-worker executor: the
    // mode follows each dispatch edge (there is no scope-exit hook in
    // the generated code to restore the parent's mode on return).
    if (TB)
      TB->setMode(atc::traceModeFor(T.Child));
#endif
    return T.Child;
  }

  /// need_task poll (the check version's per-iteration test).
  bool needTask() {
    ++Stats.Polls;
    if (ForceEvery > 0 && Stats.Polls % static_cast<std::uint64_t>(
                                            ForceEvery) == 0) {
      ++Stats.NeedTaskHits;
      return true;
    }
    return false;
  }

  /// Makes every Nth poll report need_task (0 disables). Testing knob.
  void forceNeedTaskEvery(int N) { ForceEvery = N; }

  //===--------------------------------------------------------------------===
  // Frames
  //===--------------------------------------------------------------------===

  TaskInfoBase *allocFrame(std::size_t Bytes,
                           void (*SlowFn)(Worker &, TaskInfoBase *)) {
    ++Stats.FramesAllocated;
    auto *F = static_cast<TaskInfoBase *>(::operator new(Bytes));
    std::memset(static_cast<void *>(F), 0, Bytes);
    F->SlowFn = SlowFn;
    return F;
  }

  void freeFrame(TaskInfoBase *F) { ::operator delete(F); }

  //===--------------------------------------------------------------------===
  // THE protocol (single-worker: pops always succeed)
  //===--------------------------------------------------------------------===

  void push(TaskInfoBase *F) {
    ++Stats.Pushes;
    ATC_TRACE_EVENT(TB, atc::TraceEventKind::SpawnReal, 0,
                    static_cast<std::uint16_t>(F->Dp));
    Deque.push_back(F);
    if (Mirror) {
      Mirror->push(F, /*Special=*/false);
      assertMirrorAgrees();
    }
  }

  /// Owner pop after a spawned child returns. \p ChildResult and
  /// \p ReceiverOffset identify the deposit target had the frame been
  /// stolen. Returns true on success (the caller keeps accumulating
  /// locally).
  bool pop(TaskInfoBase *F, long ChildResult, std::size_t ReceiverOffset) {
    (void)ChildResult;
    (void)ReceiverOffset;
    ++Stats.Pops;
    assert(!Deque.empty() && Deque.back() == F && "unbalanced THE pop");
    Deque.pop_back();
    if (Mirror) {
      atc::PopResult R = Mirror->pop();
      (void)R;
      assert(R == atc::PopResult::Success &&
             "mirror deque pop failed with no thieves");
      assertMirrorAgrees();
    }
    return true;
  }

  void pushSpecial(TaskInfoBase *F) {
    ++Stats.SpecialPushes;
    assert(F->Special && "pushSpecial of a non-special frame");
    ATC_TRACE_EVENT(TB, atc::TraceEventKind::SpecialPush, 0,
                    static_cast<std::uint16_t>(F->Dp));
    Deque.push_back(F);
    if (Mirror) {
      Mirror->push(F, /*Special=*/true);
      assertMirrorAgrees();
    }
  }

  /// pop_specialtask: true when the special's child was not stolen.
  bool popSpecial(TaskInfoBase *F) {
    ++Stats.SpecialPops;
    assert(!Deque.empty() && Deque.back() == F && "unbalanced special pop");
    ATC_TRACE_EVENT(TB, atc::TraceEventKind::SpecialPop, 0,
                    static_cast<std::uint16_t>(F->Dp));
    Deque.pop_back();
    if (Mirror) {
      atc::PopResult R = Mirror->popSpecial();
      (void)R;
      assert(R == atc::PopResult::Success &&
             "mirror pop_specialtask failed with no thieves");
      assertMirrorAgrees();
    }
    return true;
  }

  /// sync_specialtask: wait for the special's stolen children.
  void syncSpecial(TaskInfoBase *F) {
    ++Stats.SpecialSyncs;
    ATC_TRACE_EVENT(TB, atc::TraceEventKind::SpecialSyncBegin, 0,
                    static_cast<std::uint16_t>(F->Dp));
    assert(F->Join == 0 && "single worker cannot have stolen children");
    ATC_TRACE_EVENT(TB, atc::TraceEventKind::SpecialSyncEnd, 0,
                    static_cast<std::uint16_t>(F->Dp));
  }

  /// Sync point of a stolen (slow-version) task: true when all children
  /// have completed and execution may continue past the sync.
  bool syncSlow(TaskInfoBase *F) { return F->Join == 0; }

  /// Completion of a stolen task: deposit into the parent. Unreachable
  /// on a single worker.
  void completeSlow(TaskInfoBase *, long) {
    assert(false && "slow-version completion on a single worker");
  }

  //===--------------------------------------------------------------------===
  // Workspaces (taskprivate)
  //===--------------------------------------------------------------------===

  /// Workspace buffers are recycled through per-size freelists (the
  /// generated code's spawn/return pairing makes alloc/free strictly
  /// LIFO per size, so a handful of buckets absorbs nearly all traffic —
  /// the single-worker analogue of the core library's slab arenas).
  void *allocWorkspace(std::size_t Bytes) {
    ++Stats.WorkspaceAllocs;
    Stats.WorkspaceBytes += Bytes;
    for (WsBucket &B : WsBuckets)
      if (B.Bytes == Bytes && !B.Free.empty()) {
        void *P = B.Free.back();
        B.Free.pop_back();
        ++Stats.WorkspaceReuses;
        return P;
      }
    return ::operator new(Bytes);
  }

  void freeWorkspace(void *P, std::size_t Bytes) {
    for (WsBucket &B : WsBuckets)
      if (B.Bytes == Bytes) {
        if (B.Free.size() < MaxPooledPerBucket) {
          B.Free.push_back(P);
          return;
        }
        ::operator delete(P);
        return;
      }
    WsBuckets.push_back({Bytes, {P}});
  }

  /// Bounded taskprivate copy: copies only the live prefix of the
  /// workspace (the `taskprivate: (*x)(size, live)` clause), clamped to
  /// the declared size; counts the bytes actually moved.
  void copyWorkspace(void *Dst, const void *Src, std::size_t Bytes,
                     std::size_t LiveBytes) {
    if (LiveBytes > Bytes)
      LiveBytes = Bytes;
    std::memcpy(Dst, Src, LiveBytes);
    Stats.WorkspaceCopiedBytes += LiveBytes;
  }

  /// Writes the run's counters as a Prometheus text exposition to
  /// \p Path (see the ATCGEN_METRICS knob). Returns false on I/O error.
  bool writeMetricsFile(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    auto Counter = [&](const char *Name, const char *Help,
                       std::uint64_t V) {
      std::fprintf(F,
                   "# HELP atc_%s %s\n# TYPE atc_%s counter\n"
                   "atc_%s_total{worker=\"0\"} %llu\n",
                   Name, Help, Name, Name,
                   static_cast<unsigned long long>(V));
    };
    std::fprintf(F, "atc_run_info{scheduler=\"AdaptiveTC\","
                    "source=\"genruntime\"} 1\natc_workers 1\n");
    Counter("tasks_created", "Real task frames allocated",
            Stats.FramesAllocated);
    Counter("spawns", "Deque push/pop pairs performed", Stats.Pushes);
    Counter("special_tasks", "AdaptiveTC special tasks created",
            Stats.SpecialPushes);
    Counter("polls", "need_task / request-mailbox polls", Stats.Polls);
    Counter("need_task_hits", "Polls that observed need_task",
            Stats.NeedTaskHits);
    Counter("workspace_copies", "Workspace (taskprivate) copies",
            Stats.WorkspaceAllocs);
    Counter("copied_bytes", "Bytes memcpy'd for workspaces",
            Stats.WorkspaceCopiedBytes);
    Counter("workspace_reuses", "Allocs served by the freelist",
            Stats.WorkspaceReuses);
    bool Ok = std::fclose(F) == 0;
    return Ok;
  }

  ~Worker() {
    if (Mirror)
      std::fprintf(stderr,
                   "atcgen: deque mirror '%s' verified %llu pushes / %llu "
                   "pops / %llu special pairs (%llu ring growths)\n",
                   Mirror->kind(),
                   static_cast<unsigned long long>(Stats.Pushes),
                   static_cast<unsigned long long>(Stats.Pops),
                   static_cast<unsigned long long>(Stats.SpecialPops),
                   static_cast<unsigned long long>(Mirror->growCount()));
#if ATC_TRACE_ENABLED
    if (Trace && !atc::writeChromeTraceFile(*Trace, TracePath))
      std::fprintf(stderr, "atcgen: cannot write trace to %s\n",
                   TracePath.c_str());
#endif
#if ATC_METRICS_ENABLED
    if (!MetricsPath.empty() && !writeMetricsFile(MetricsPath))
      std::fprintf(stderr, "atcgen: cannot write metrics to %s\n",
                   MetricsPath.c_str());
#endif
    for (WsBucket &B : WsBuckets)
      for (void *P : B.Free)
        ::operator delete(P);
  }

  GenStats Stats;

  /// Figure 2 transition counts, one edge per dispatch() call.
  FsmCounters FsmCounts;

private:
  static constexpr std::size_t MaxPooledPerBucket = 4096;

  struct WsBucket {
    std::size_t Bytes;
    std::vector<void *> Free;
  };

  /// Shadow-vs-mirror agreement check (the mirror deque must hold exactly
  /// the shadow's entries after every protocol step; size is the strongest
  /// property observable without breaking the deques' encapsulation).
  void assertMirrorAgrees() const {
    assert(Mirror->size() == static_cast<int>(Deque.size()) &&
           "mirror deque diverged from the protocol shadow");
  }

  atc::FiveVersionFsm Fsm;
  int ForceEvery = 0;
  std::vector<TaskInfoBase *> Deque;
  std::vector<WsBucket> WsBuckets;

  /// ATCGEN_DEQUE support; null when the knob is unset (shadow-only).
  std::unique_ptr<DequeMirror> Mirror;

  /// ATCGEN_TRACE support; see the file comment. TB stays null when the
  /// knob is unset, so each emission site costs one predictable branch.
  std::unique_ptr<atc::TraceLog> Trace;
  std::string TracePath;
  atc::TraceBuffer *TB = nullptr;

  /// ATCGEN_METRICS support; empty when the knob is unset.
  std::string MetricsPath;
};

/// print_long builtin.
inline void print_long(Worker &, long V) { std::printf("%ld\n", V); }

} // namespace atcgen

#endif // ATC_LANG_RUNTIME_GENRUNTIME_H
