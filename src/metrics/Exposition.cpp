//===- metrics/Exposition.cpp - Prometheus / JSON exposition --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "metrics/Exposition.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace atc;

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string escapeLabel(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

/// Escapes a JSON string value.
std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Highest non-empty bucket index, or 0 when the histogram is empty.
unsigned lastUsedBucket(const HistogramCounts &H) {
  unsigned Last = 0;
  for (unsigned B = 0; B != NumLog2Buckets; ++B)
    if (H.Buckets[B] != 0)
      Last = B;
  return Last;
}

/// Emits one per-worker histogram in Prometheus histogram convention:
/// cumulative le buckets (trimmed after the last non-empty one), +Inf,
/// _sum and _count.
void renderHistogram(std::string &Out, const char *Name,
                     const HistogramCounts &H, int Worker) {
  unsigned Last = lastUsedBucket(H);
  std::uint64_t Cum = 0;
  for (unsigned B = 0; B <= Last; ++B) {
    Cum += H.Buckets[B];
    appendf(Out, "%s_bucket{worker=\"%d\",le=\"%llu\"} %llu\n", Name, Worker,
            static_cast<unsigned long long>(log2BucketUpperBound(B)),
            static_cast<unsigned long long>(Cum));
  }
  appendf(Out, "%s_bucket{worker=\"%d\",le=\"+Inf\"} %llu\n", Name, Worker,
          static_cast<unsigned long long>(H.Count));
  appendf(Out, "%s_sum{worker=\"%d\"} %llu\n", Name, Worker,
          static_cast<unsigned long long>(H.Sum));
  appendf(Out, "%s_count{worker=\"%d\"} %llu\n", Name, Worker,
          static_cast<unsigned long long>(H.Count));
}

struct HistogramDef {
  const char *Name;
  const char *Help;
  const HistogramCounts &(*Get)(const WorkerSample &);
};

const HistogramDef HistogramDefs[] = {
    {"atc_steal_latency_ns", "Idle-to-acquire latency per successful steal",
     [](const WorkerSample &W) -> const HistogramCounts & {
       return W.StealLatencyNs;
     }},
    {"atc_spawn_cost_ns", "Alloc+copy+push cost per real spawn",
     [](const WorkerSample &W) -> const HistogramCounts & {
       return W.SpawnCostNs;
     }},
    {"atc_deque_depth_hist", "Deque occupancy observed after each push",
     [](const WorkerSample &W) -> const HistogramCounts & {
       return W.DequeDepthHist;
     }},
    {"atc_reseed_interval_ns", "Interval between special-task publishes",
     [](const WorkerSample &W) -> const HistogramCounts & {
       return W.ReseedIntervalNs;
     }},
};

/// Appends one histogram's JSON summary (count, sum, p50/p90/p99).
void jsonHistogram(std::string &Out, const char *Key,
                   const HistogramCounts &H) {
  appendf(Out,
          "\"%s\": {\"count\": %llu, \"sum\": %llu, "
          "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f}",
          Key, static_cast<unsigned long long>(H.Count),
          static_cast<unsigned long long>(H.Sum), H.quantile(0.50),
          H.quantile(0.90), H.quantile(0.99));
}

} // namespace

std::string atc::renderPrometheus(const MetricsSnapshot &Snap,
                                  const MetricsMeta &Meta) {
  std::string Out;
  Out.reserve(16384);
  int NumWorkers = static_cast<int>(Snap.Workers.size());

  appendf(Out, "# atc metrics exposition (schema %d)\n", Meta.SchemaVersion);
  appendf(Out, "# HELP atc_run_info Run identity (value is always 1)\n");
  appendf(Out, "# TYPE atc_run_info gauge\n");
  appendf(Out,
          "atc_run_info{scheduler=\"%s\",source=\"%s\",workload=\"%s\"} 1\n",
          escapeLabel(Meta.Scheduler).c_str(),
          escapeLabel(Meta.Source).c_str(),
          escapeLabel(Meta.Workload).c_str());
  appendf(Out, "# TYPE atc_workers gauge\natc_workers %d\n", NumWorkers);
  appendf(Out, "# TYPE atc_snapshot_time_ns gauge\natc_snapshot_time_ns %llu\n",
          static_cast<unsigned long long>(Snap.TimeNs));
  appendf(Out, "# HELP atc_epoch Run epoch: registry reset count — ticks "
               "once per job on a server registry\n");
  appendf(Out, "# TYPE atc_epoch gauge\natc_epoch %llu\n",
          static_cast<unsigned long long>(Snap.Epoch));

  // Every SchedulerStats field, per worker, straight from the mirror.
  for (unsigned I = 0; I != NumStatFields; ++I) {
    auto F = static_cast<StatField>(I);
    bool Gauge = statFieldIsGauge(F);
    appendf(Out, "# HELP atc_%s %s\n", statFieldPromName(F), statFieldHelp(F));
    appendf(Out, "# TYPE atc_%s %s\n", statFieldPromName(F),
            Gauge ? "gauge" : "counter");
    for (int W = 0; W != NumWorkers; ++W)
      appendf(Out, "atc_%s%s{worker=\"%d\"} %llu\n", statFieldPromName(F),
              Gauge ? "" : "_total", W,
              static_cast<unsigned long long>(Snap.Workers[W].stat(F)));
  }

  // Live gauges.
  appendf(Out, "# HELP atc_deque_depth Current deque occupancy\n");
  appendf(Out, "# TYPE atc_deque_depth gauge\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_deque_depth{worker=\"%d\"} %lld\n", W,
            static_cast<long long>(Snap.Workers[W].DequeDepth));
  appendf(Out, "# HELP atc_worker_mode Current FSM mode (see mode label on "
               "atc_mode_ns_total)\n");
  appendf(Out, "# TYPE atc_worker_mode gauge\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_worker_mode{worker=\"%d\",mode=\"%s\"} %d\n", W,
            traceModeName(Snap.Workers[W].Mode),
            static_cast<int>(Snap.Workers[W].Mode));
  appendf(Out, "# HELP atc_need_task need_task flag (1 = a thief wants a "
               "special task from this worker)\n");
  appendf(Out, "# TYPE atc_need_task gauge\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_need_task{worker=\"%d\"} %d\n", W,
            Snap.Workers[W].NeedTask ? 1 : 0);

  // Live tuning knobs (core/tuning/TuningController.h). Always emitted
  // so the series schema is stable; all-zero on untuned runs, and
  // atc_tune_cutoff >= 1 marks a worker whose controller is armed.
  appendf(Out, "# HELP atc_tune_cutoff Live task-creation cut-off depth "
               "(0 = tuning off)\n");
  appendf(Out, "# TYPE atc_tune_cutoff gauge\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_tune_cutoff{worker=\"%d\"} %u\n", W,
            Snap.Workers[W].TuneCutoff);
  appendf(Out, "# HELP atc_tune_max_stolen_num Live failed-steal threshold "
               "before need_task is raised (0 = tuning off)\n");
  appendf(Out, "# TYPE atc_tune_max_stolen_num gauge\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_tune_max_stolen_num{worker=\"%d\"} %u\n", W,
            Snap.Workers[W].TuneMaxStolen);
  appendf(Out, "# HELP atc_tune_backoff_shift Live steal-backoff cap "
               "exponent (sleep cap = 1us << shift; 0 = tuning off)\n");
  appendf(Out, "# TYPE atc_tune_backoff_shift gauge\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_tune_backoff_shift{worker=\"%d\"} %u\n", W,
            Snap.Workers[W].TuneBackoffShift);
  appendf(Out, "# HELP atc_tune_adjustments Knob adjustments applied by "
               "the controller\n");
  appendf(Out, "# TYPE atc_tune_adjustments counter\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_tune_adjustments_total{worker=\"%d\"} %llu\n", W,
            static_cast<unsigned long long>(Snap.Workers[W].TuneAdjustments));
  appendf(Out, "# HELP atc_tune_windows Tuning rule windows evaluated\n");
  appendf(Out, "# TYPE atc_tune_windows counter\n");
  for (int W = 0; W != NumWorkers; ++W)
    appendf(Out, "atc_tune_windows_total{worker=\"%d\"} %llu\n", W,
            static_cast<unsigned long long>(Snap.Workers[W].TuneWindows));

  // Mode residency.
  appendf(Out, "# HELP atc_mode_ns Nanoseconds spent in each FSM mode\n");
  appendf(Out, "# TYPE atc_mode_ns counter\n");
  for (int W = 0; W != NumWorkers; ++W)
    for (int M = 0; M != NumTraceModes; ++M)
      appendf(Out, "atc_mode_ns_total{worker=\"%d\",mode=\"%s\"} %llu\n", W,
              traceModeName(static_cast<TraceMode>(M)),
              static_cast<unsigned long long>(Snap.Workers[W].ModeNs[M]));

  // Histograms.
  for (const HistogramDef &D : HistogramDefs) {
    appendf(Out, "# HELP %s %s\n", D.Name, D.Help);
    appendf(Out, "# TYPE %s histogram\n", D.Name);
    for (int W = 0; W != NumWorkers; ++W)
      renderHistogram(Out, D.Name, D.Get(Snap.Workers[W]), W);
  }
  return Out;
}

std::string atc::renderJsonSeries(const std::vector<MetricsSnapshot> &History,
                                  const MetricsMeta &Meta) {
  std::string Out;
  Out.reserve(16384);
  appendf(Out,
          "{\n\"schema_version\": %d,\n\"scheduler\": \"%s\",\n"
          "\"source\": \"%s\",\n\"workload\": \"%s\",\n\"snapshots\": [",
          Meta.SchemaVersion, escapeJson(Meta.Scheduler).c_str(),
          escapeJson(Meta.Source).c_str(), escapeJson(Meta.Workload).c_str());
  for (std::size_t S = 0; S != History.size(); ++S) {
    const MetricsSnapshot &Snap = History[S];
    appendf(Out, "%s\n{\"time_ns\": %llu, \"workers\": [", S ? "," : "",
            static_cast<unsigned long long>(Snap.TimeNs));
    for (std::size_t W = 0; W != Snap.Workers.size(); ++W) {
      const WorkerSample &Ws = Snap.Workers[W];
      appendf(Out, "%s\n  {\"id\": %d, \"mode\": \"%s\", \"need_task\": %s, "
                   "\"deque_depth\": %lld,\n   \"stats\": {",
              W ? "," : "", static_cast<int>(W), traceModeName(Ws.Mode),
              Ws.NeedTask ? "true" : "false",
              static_cast<long long>(Ws.DequeDepth));
      for (unsigned F = 0; F != NumStatFields; ++F)
        appendf(Out, "%s\"%s\": %llu", F ? ", " : "",
                statFieldPromName(static_cast<StatField>(F)),
                static_cast<unsigned long long>(
                    Ws.stat(static_cast<StatField>(F))));
      Out += "},\n   \"mode_ns\": {";
      for (int M = 0; M != NumTraceModes; ++M)
        appendf(Out, "%s\"%s\": %llu", M ? ", " : "",
                traceModeName(static_cast<TraceMode>(M)),
                static_cast<unsigned long long>(Ws.ModeNs[M]));
      appendf(Out,
              "},\n   \"tune\": {\"cutoff\": %u, \"max_stolen_num\": %u, "
              "\"backoff_shift\": %u, \"adjustments\": %llu, "
              "\"windows\": %llu",
              Ws.TuneCutoff, Ws.TuneMaxStolen, Ws.TuneBackoffShift,
              static_cast<unsigned long long>(Ws.TuneAdjustments),
              static_cast<unsigned long long>(Ws.TuneWindows));
      Out += "},\n   \"hist\": {";
      jsonHistogram(Out, "steal_latency_ns", Ws.StealLatencyNs);
      Out += ", ";
      jsonHistogram(Out, "spawn_cost_ns", Ws.SpawnCostNs);
      Out += ", ";
      jsonHistogram(Out, "deque_depth", Ws.DequeDepthHist);
      Out += ", ";
      jsonHistogram(Out, "reseed_interval_ns", Ws.ReseedIntervalNs);
      Out += "}}";
    }
    Out += "]}";
  }
  Out += "\n]\n}\n";
  return Out;
}

std::uint64_t PromSample::asU64() const {
  if (Raw.empty())
    return 0;
  for (char C : Raw)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return 0;
  return std::strtoull(Raw.c_str(), nullptr, 10);
}

std::vector<PromSample> atc::parsePrometheus(const std::string &Text) {
  std::vector<PromSample> Out;
  std::size_t Pos = 0;
  while (Pos < Text.size()) {
    std::size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty() || Line[0] == '#')
      continue;

    PromSample S;
    std::size_t I = 0;
    while (I < Line.size() && Line[I] != '{' && Line[I] != ' ')
      ++I;
    S.Name = Line.substr(0, I);
    if (S.Name.empty())
      continue;
    if (I < Line.size() && Line[I] == '{') {
      ++I;
      while (I < Line.size() && Line[I] != '}') {
        std::size_t Eq = Line.find('=', I);
        if (Eq == std::string::npos || Eq + 1 >= Line.size() ||
            Line[Eq + 1] != '"')
          break;
        std::string Key = Line.substr(I, Eq - I);
        std::string Val;
        std::size_t J = Eq + 2;
        while (J < Line.size() && Line[J] != '"') {
          if (Line[J] == '\\' && J + 1 < Line.size()) {
            ++J;
            Val += Line[J] == 'n' ? '\n' : Line[J];
          } else {
            Val += Line[J];
          }
          ++J;
        }
        S.Labels[Key] = Val;
        I = J + 1;
        if (I < Line.size() && Line[I] == ',')
          ++I;
      }
      I = Line.find('}', I);
      if (I == std::string::npos)
        continue;
      ++I;
    }
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    S.Raw = Line.substr(I);
    // Trim trailing whitespace / optional timestamp field.
    std::size_t Sp = S.Raw.find(' ');
    if (Sp != std::string::npos)
      S.Raw = S.Raw.substr(0, Sp);
    S.Value = std::strtod(S.Raw.c_str(), nullptr);
    Out.push_back(std::move(S));
  }
  return Out;
}

std::uint64_t atc::promTotal(const std::vector<PromSample> &Samples,
                             const std::string &Name, bool Gauge) {
  std::string Target = Gauge ? Name : Name + "_total";
  std::uint64_t T = 0;
  for (const PromSample &S : Samples) {
    if (S.Name != Target)
      continue;
    if (Gauge)
      T = T > S.asU64() ? T : S.asU64();
    else
      T += S.asU64();
  }
  return T;
}

bool atc::writeTextFileAtomic(const std::string &Path,
                              const std::string &Text) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Text;
    if (!Out.flush())
      return false;
  }
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}
