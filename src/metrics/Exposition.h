//===- metrics/Exposition.h - Prometheus / JSON exposition ------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders MetricsSnapshots as Prometheus text exposition (format 0.0.4:
/// what the sampler writes to --metrics file targets and serves on
/// --metrics-port) and as a JSON time series, plus a small Prometheus
/// text parser used by atc_top's file-tailing mode and the round-trip
/// tests. See docs/METRICS.md for the metric-by-metric reference.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_METRICS_EXPOSITION_H
#define ATC_METRICS_EXPOSITION_H

#include "metrics/MetricsRegistry.h"

#include <map>
#include <string>
#include <vector>

namespace atc {

/// Renders one snapshot as Prometheus text exposition: every
/// SchedulerStats field per worker (counters as atc_<name>_total,
/// high-water gauges as atc_<name>), the live gauges (deque depth, FSM
/// mode, need_task), per-mode residency seconds, and the four log2
/// histograms with cumulative le buckets.
std::string renderPrometheus(const MetricsSnapshot &Snap,
                             const MetricsMeta &Meta);

/// Renders the recorded snapshot series as one JSON document (meta
/// header + snapshots array with per-worker stats, gauges, residency,
/// and histogram quantiles).
std::string renderJsonSeries(const std::vector<MetricsSnapshot> &History,
                             const MetricsMeta &Meta);

/// One parsed exposition line: name, label set, and the value both raw
/// (exact for 64-bit counters) and as double.
struct PromSample {
  std::string Name;
  std::map<std::string, std::string> Labels;
  std::string Raw;
  double Value = 0;

  /// The raw value as an unsigned integer (0 if not integral).
  std::uint64_t asU64() const;
};

/// Parses Prometheus text exposition into its sample lines (comments and
/// blank lines skipped). Tolerant of anything renderPrometheus emits.
std::vector<PromSample> parsePrometheus(const std::string &Text);

/// Sums `<name>_total{worker=...}` samples (or maxes `<name>` gauges when
/// \p Gauge) across workers in \p Samples — the aggregate the CI metrics
/// smoke compares against SchedulerStats.
std::uint64_t promTotal(const std::vector<PromSample> &Samples,
                        const std::string &Name, bool Gauge = false);

/// Writes \p Text to \p Path atomically enough for a tailing reader
/// (write to Path + ".tmp", then rename). Returns false on I/O failure.
bool writeTextFileAtomic(const std::string &Path, const std::string &Text);

} // namespace atc

#endif // ATC_METRICS_EXPOSITION_H
