//===- metrics/Metrics.h - Per-worker live metric cells ---------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-metrics counterpart of the event-trace layer (docs/METRICS.md;
/// DESIGN.md presents the two as one observability story). Where a trace
/// records *events* for post-mortem timelines, a metric cell holds
/// *aggregates* — counters, gauges, log2-bucketed histograms — that a
/// sampler thread or dashboard can read while the run is still going.
///
/// Concurrency model: one WorkerMetricsCell per worker, cache-line
/// isolated. The owning worker publishes with relaxed atomic stores
/// (plain load-add-store, never fetch_add — there is exactly one writer
/// per field, so the RMW would buy nothing and cost a locked op); readers
/// (the sampler, atc_top) take relaxed loads from any thread. The only
/// cross-thread *writes* are the need_task gauge (raised by thieves, like
/// the NeedTask flag itself) and the deque-depth gauge (stores from
/// successful thieves) — both plain atomic stores.
///
/// Gates, mirroring trace/TraceEvent.h exactly: building with
/// -DATC_METRICS=OFF defines ATC_METRICS_ENABLED=0 and compiles every
/// emission site away; with metrics compiled in, the runtime gate is
/// SchedulerConfig::Metrics — off costs one predictable untaken branch on
/// a worker-local pointer per site.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_METRICS_METRICS_H
#define ATC_METRICS_METRICS_H

#include "core/SchedulerStats.h"
#include "metrics/Quantile.h"
#include "support/Compiler.h"
#include "support/Timer.h"
#include "trace/TraceEvent.h"

#include <atomic>
#include <cstdint>

// Compile-time metrics gate. The build defines ATC_METRICS_ENABLED=0|1
// via the ATC_METRICS CMake option; standalone consumers (atcc-generated
// code compiled with only -I <repo>/src) default to enabled.
#ifndef ATC_METRICS_ENABLED
#define ATC_METRICS_ENABLED 1
#endif

namespace atc {

/// Plain (non-atomic) histogram contents: the snapshot/merge/quantile
/// side of LogHistogram, also usable standalone in tests.
struct HistogramCounts {
  std::uint64_t Buckets[NumLog2Buckets] = {};
  std::uint64_t Count = 0;
  std::uint64_t Sum = 0;

  void record(std::uint64_t V) {
    ++Buckets[log2BucketFor(V)];
    ++Count;
    Sum += V;
  }

  void merge(const HistogramCounts &Other) {
    for (unsigned B = 0; B != NumLog2Buckets; ++B)
      Buckets[B] += Other.Buckets[B];
    Count += Other.Count;
    Sum += Other.Sum;
  }

  /// Interpolated quantile, Q in [0, 1]. 0 when empty.
  double quantile(double Q) const {
    return quantileFromLog2Buckets(Buckets, Count, Q);
  }

  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }
};

/// Single-writer log2-bucketed histogram: the recording side. record() is
/// wait-free (three relaxed load/store pairs, no RMW); snapshot() may run
/// concurrently from any thread and sees some recent consistent-enough
/// state (Count/Sum/bucket skew is bounded by writes in flight).
class LogHistogram {
public:
  void record(std::uint64_t V) {
    unsigned B = log2BucketFor(V);
    Buckets[B].store(Buckets[B].load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    Count.store(Count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    Sum.store(Sum.load(std::memory_order_relaxed) + V,
              std::memory_order_relaxed);
  }

  HistogramCounts snapshot() const {
    HistogramCounts C;
    for (unsigned B = 0; B != NumLog2Buckets; ++B)
      C.Buckets[B] = Buckets[B].load(std::memory_order_relaxed);
    C.Count = Count.load(std::memory_order_relaxed);
    C.Sum = Sum.load(std::memory_order_relaxed);
    return C;
  }

  void reset() {
    for (unsigned B = 0; B != NumLog2Buckets; ++B)
      Buckets[B].store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> Buckets[NumLog2Buckets] = {};
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> Sum{0};
};

/// One worker's live metrics (see the file comment for the concurrency
/// model). Padded to the interference line: the registry stores cells
/// contiguously and two workers publishing must not share a line.
class alignas(ATC_CACHE_LINE_SIZE) WorkerMetricsCell {
public:
  //===------------------------------------------------------------------===//
  // Owner-side publication
  //===------------------------------------------------------------------===//

  /// Mirrors the worker's whole SchedulerStats block into the atomic
  /// copy the sampler reads. Called at bounded-frequency flush points
  /// (steal-loop iterations, donation boundaries) and once exactly after
  /// the final aggregation, so a post-join snapshot equals the run's
  /// SchedulerStats field for field; mid-run mirrors may lag by one
  /// flush window (hot counters are batched in locals first).
  void publishStats(const SchedulerStats &S) {
    for (unsigned I = 0; I != NumStatFields; ++I)
      Stats[I].store(statFieldValue(S, static_cast<StatField>(I)),
                     std::memory_order_relaxed);
  }

  /// Zeroes every field with relaxed stores. Wait-free and safe against
  /// concurrent readers (they see a transient mix of old and zero values
  /// for one sample at worst); lets MetricsRegistry::reset reuse cells in
  /// place so cell pointers held by a live sampler stay valid.
  void reset() {
    for (auto &S : Stats)
      S.store(0, std::memory_order_relaxed);
    for (auto &M : ModeNs)
      M.store(0, std::memory_order_relaxed);
    ModeStartNs.store(0, std::memory_order_relaxed);
    ModeGauge.store(static_cast<std::uint32_t>(TraceMode::Idle),
                    std::memory_order_relaxed);
    NeedTaskGauge.store(0, std::memory_order_relaxed);
    DequeDepthGauge.store(0, std::memory_order_relaxed);
    LastReseedNs = 0;
    TuneCutoff.store(0, std::memory_order_relaxed);
    TuneMaxStolen.store(0, std::memory_order_relaxed);
    TuneBackoffShift.store(0, std::memory_order_relaxed);
    TuneAdjustments.store(0, std::memory_order_relaxed);
    TuneWindows.store(0, std::memory_order_relaxed);
    StealLatencyNs.reset();
    SpawnCostNs.reset();
    DequeDepth.reset();
    ReseedIntervalNs.reset();
  }

  /// Starts mode-residency accounting at \p TimeNs (arm time).
  void begin(std::uint64_t TimeNs) {
    ModeStartNs.store(TimeNs, std::memory_order_relaxed);
    ModeGauge.store(static_cast<std::uint32_t>(TraceMode::Idle),
                    std::memory_order_relaxed);
  }

  TraceMode mode() const {
    return static_cast<TraceMode>(ModeGauge.load(std::memory_order_relaxed));
  }

  /// Switches the worker's mode, folding the elapsed interval into the
  /// residency counter of the mode being left. No-op when the mode does
  /// not change (recursion within one mode), mirroring TraceBuffer.
  void setMode(TraceMode M) { setModeAt(nowNanos(), M); }

  /// setMode with an explicit (virtual) timestamp.
  void setModeAt(std::uint64_t TimeNs, TraceMode M) {
    auto Cur = mode();
    if (M == Cur)
      return;
    auto I = static_cast<unsigned>(Cur);
    std::uint64_t Start = ModeStartNs.load(std::memory_order_relaxed);
    if (TimeNs > Start)
      ModeNs[I].store(ModeNs[I].load(std::memory_order_relaxed) +
                          (TimeNs - Start),
                      std::memory_order_relaxed);
    ModeStartNs.store(TimeNs, std::memory_order_relaxed);
    ModeGauge.store(static_cast<std::uint32_t>(M), std::memory_order_relaxed);
  }

  /// Records a special-task publish at \p NowNs: feeds the reseed-interval
  /// histogram with the time since the previous publish (the paper's
  /// need_task reseeding cadence). First publish only sets the anchor.
  void recordReseed(std::uint64_t NowNs) {
    std::uint64_t Last = LastReseedNs;
    LastReseedNs = NowNs;
    if (Last != 0 && NowNs > Last)
      ReseedIntervalNs.record(NowNs - Last);
  }

  /// Mirrors the worker's TuningController knobs and counters into the
  /// atc_tune_* gauges (core/tuning/TuningController.h). All-zero on an
  /// untuned run — atc_tune_cutoff >= 1 is the "this worker is being
  /// tuned" signal dashboards key off.
  void publishTuning(std::uint32_t Cutoff, std::uint32_t MaxStolen,
                     std::uint32_t BackoffShift, std::uint64_t Adjustments,
                     std::uint64_t Windows) {
    TuneCutoff.store(Cutoff, std::memory_order_relaxed);
    TuneMaxStolen.store(MaxStolen, std::memory_order_relaxed);
    TuneBackoffShift.store(BackoffShift, std::memory_order_relaxed);
    TuneAdjustments.store(Adjustments, std::memory_order_relaxed);
    TuneWindows.store(Windows, std::memory_order_relaxed);
  }

  //===------------------------------------------------------------------===//
  // Cross-thread gauges
  //===------------------------------------------------------------------===//

  /// need_task gauge; written by the thief that raises the flag and
  /// cleared by the owner, exactly like the scheduling flag it mirrors.
  void setNeedTask(bool On) {
    NeedTaskGauge.store(On ? 1 : 0, std::memory_order_relaxed);
  }

  /// Deque depth gauge; the deques store into this directly via their
  /// attached pointer (attachDepthGauge), so thief-side steals update it
  /// too.
  std::atomic<std::int64_t> &dequeDepthGauge() { return DequeDepthGauge; }

  //===------------------------------------------------------------------===//
  // Reading (any thread, relaxed)
  //===------------------------------------------------------------------===//

  std::uint64_t stat(StatField F) const {
    return Stats[static_cast<unsigned>(F)].load(std::memory_order_relaxed);
  }
  std::int64_t dequeDepth() const {
    return DequeDepthGauge.load(std::memory_order_relaxed);
  }
  bool needTask() const {
    return NeedTaskGauge.load(std::memory_order_relaxed) != 0;
  }
  /// Residency accumulated for \p M up to the last mode transition.
  std::uint64_t modeNanos(TraceMode M) const {
    return ModeNs[static_cast<unsigned>(M)].load(std::memory_order_relaxed);
  }
  /// When the current mode began (for live-residency adjustment).
  std::uint64_t modeStartNanos() const {
    return ModeStartNs.load(std::memory_order_relaxed);
  }
  std::uint32_t tuneCutoff() const {
    return TuneCutoff.load(std::memory_order_relaxed);
  }
  std::uint32_t tuneMaxStolen() const {
    return TuneMaxStolen.load(std::memory_order_relaxed);
  }
  std::uint32_t tuneBackoffShift() const {
    return TuneBackoffShift.load(std::memory_order_relaxed);
  }
  std::uint64_t tuneAdjustments() const {
    return TuneAdjustments.load(std::memory_order_relaxed);
  }
  std::uint64_t tuneWindows() const {
    return TuneWindows.load(std::memory_order_relaxed);
  }

  LogHistogram StealLatencyNs;    ///< Idle-to-acquire, per successful steal.
  LogHistogram SpawnCostNs;       ///< Alloc+copy+push cost per real spawn.
  LogHistogram DequeDepth;        ///< Deque size observed after each push.
  LogHistogram ReseedIntervalNs;  ///< Gap between special-task publishes.

private:
  std::atomic<std::uint64_t> Stats[NumStatFields] = {};
  std::atomic<std::uint64_t> ModeNs[NumTraceModes] = {};
  std::atomic<std::uint64_t> ModeStartNs{0};
  std::atomic<std::uint32_t> ModeGauge{
      static_cast<std::uint32_t>(TraceMode::Idle)};
  std::atomic<std::uint32_t> NeedTaskGauge{0};
  std::atomic<std::int64_t> DequeDepthGauge{0};
  // Tuning-knob mirrors (publishTuning); all-zero when untuned.
  std::atomic<std::uint32_t> TuneCutoff{0};
  std::atomic<std::uint32_t> TuneMaxStolen{0};
  std::atomic<std::uint32_t> TuneBackoffShift{0};
  std::atomic<std::uint64_t> TuneAdjustments{0};
  std::atomic<std::uint64_t> TuneWindows{0};
  std::uint64_t LastReseedNs = 0; ///< Owner-only reseed anchor.
};

//===----------------------------------------------------------------------===//
// Emission macros — the only way runtime code should publish
//===----------------------------------------------------------------------===//
//
// With ATC_METRICS_ENABLED=0 these expand to nothing (the compile-time
// gate); otherwise they cost one predictable null test on the worker's
// cell pointer (the runtime gate: the pointer is null unless
// SchedulerConfig::Metrics armed the run).

#if ATC_METRICS_ENABLED
/// Invokes a member expression on the cell when armed:
///   ATC_METRIC(MC, StealLatencyNs.record(Ns));
#define ATC_METRIC(MC, ...)                                                  \
  do {                                                                       \
    if (ATC_UNLIKELY((MC) != nullptr))                                       \
      (MC)->__VA_ARGS__;                                                     \
  } while (false)
/// Reads the monotonic clock only when the cell is armed (0 otherwise);
/// pairs with a later ATC_METRIC(..., Hist.record(...)) at the same site.
#define ATC_METRIC_NOW(MC)                                                   \
  (ATC_UNLIKELY((MC) != nullptr) ? ::atc::nowNanos() : std::uint64_t{0})
#else
#define ATC_METRIC(MC, ...)                                                  \
  do {                                                                       \
    (void)(MC);                                                              \
  } while (false)
#define ATC_METRIC_NOW(MC) ((void)(MC), std::uint64_t{0})
#endif

/// RAII mode span for residency accounting: switches \p MC to \p M for
/// the scope, restoring the previous mode on every exit path. The exact
/// analogue of TraceModeScope; compiles to nothing when metrics are
/// compiled out.
class MetricsModeScope {
public:
#if ATC_METRICS_ENABLED
  MetricsModeScope(WorkerMetricsCell *MC, TraceMode M) : MC(MC) {
    if (ATC_UNLIKELY(MC != nullptr)) {
      Prev = MC->mode();
      MC->setMode(M);
    }
  }
  ~MetricsModeScope() {
    if (ATC_UNLIKELY(MC != nullptr))
      MC->setMode(Prev);
  }
  MetricsModeScope(const MetricsModeScope &) = delete;
  MetricsModeScope &operator=(const MetricsModeScope &) = delete;

private:
  WorkerMetricsCell *MC;
  TraceMode Prev = TraceMode::Idle;
#else
  MetricsModeScope(WorkerMetricsCell *, TraceMode) {}
  MetricsModeScope(const MetricsModeScope &) = delete;
  MetricsModeScope &operator=(const MetricsModeScope &) = delete;
#endif
};

} // namespace atc

#endif // ATC_METRICS_METRICS_H
