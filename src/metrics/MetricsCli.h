//===- metrics/MetricsCli.h - Shared metrics CLI plumbing -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flag set and arm/finish choreography every metrics-aware CLI
/// shares (examples and single-run bench harnesses), so each binary adds
/// live metrics with three calls:
///
/// \code
///   MetricsCliOptions MOpt;
///   addMetricsOptions(Opts, MOpt);          // --metrics, --metrics-file,
///   Opts.parse(argc, argv);                 // --metrics-port, --stats-json
///   MetricsCliSession Metrics;
///   Metrics.arm(Cfg, MOpt, "13-queens");    // before runProblem
///   auto R = runProblem(Prob, Root, Cfg);
///   Metrics.finish(R.Stats, MOpt);          // snapshot files + stats JSON
/// \endcode
///
/// arm() owns the registry and (when --metrics-file / --metrics-port is
/// given) the background sampler; the runtime reuses the registry through
/// SchedulerConfig::MetricsSink, keeping cells pointer-stable for the
/// concurrent sampler. finish() stops the sampler (whose final tick
/// captures the post-join exact state), writes the last Prometheus
/// snapshot, and handles --stats-json.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_METRICS_METRICSCLI_H
#define ATC_METRICS_METRICSCLI_H

#include "core/Scheduler.h"
#include "core/SchedulerStats.h"
#include "metrics/Exposition.h"
#include "metrics/MetricsRegistry.h"
#include "metrics/Sampler.h"
#include "support/Options.h"

#include <cstdio>
#include <string>

namespace atc {

/// Storage for the shared metrics/stats flags.
struct MetricsCliOptions {
  bool Metrics = false;        ///< --metrics: arm the in-process registry.
  std::string MetricsFile;     ///< --metrics-file: periodic Prometheus file.
  long long MetricsPort = -1;  ///< --metrics-port: loopback HTTP endpoint.
  long long PeriodMs = 100;    ///< --metrics-period-ms: sampler period.
  std::string StatsJson;       ///< --stats-json: final stats dump path.

  /// True when any knob asks for the registry to be armed.
  bool wantsMetrics() const {
    return Metrics || !MetricsFile.empty() || MetricsPort >= 0;
  }

  /// True when a background sampler is needed (periodic export target).
  bool wantsSampler() const {
    return !MetricsFile.empty() || MetricsPort >= 0;
  }
};

/// Registers the shared flags on \p Opts, storing into \p Storage.
inline void addMetricsOptions(OptionSet &Opts, MetricsCliOptions &Storage) {
  Opts.addFlag("metrics", &Storage.Metrics,
               "collect live per-worker scheduler metrics and print a "
               "Prometheus snapshot after the run");
  Opts.addString("metrics-file", &Storage.MetricsFile,
                 "write a Prometheus text snapshot to this file on every "
                 "sampler period (atomically replaced; implies --metrics)");
  Opts.addInt("metrics-port", &Storage.MetricsPort,
              "serve Prometheus snapshots over HTTP on this loopback "
              "port (0 picks a free port; implies --metrics)");
  Opts.addInt("metrics-period-ms", &Storage.PeriodMs,
              "metrics sampler period in milliseconds (default 100)");
  Opts.addString("stats-json", &Storage.StatsJson,
                 "write the run's final SchedulerStats (and the last "
                 "metrics snapshot when --metrics is on) as JSON to this "
                 "file");
}

/// Owns the registry + sampler for one CLI run.
class MetricsCliSession {
public:
  /// Arms \p Cfg for metrics per \p Opt: pre-sizes the registry to
  /// Cfg.NumWorkers, points Cfg.MetricsSink at it, and starts the
  /// background sampler when a periodic export target was requested.
  /// No-op when no metrics knob was given (or the build has them off).
  void arm(SchedulerConfig &Cfg, const MetricsCliOptions &Opt,
           const std::string &Workload) {
    if (!Opt.wantsMetrics())
      return;
#if !ATC_METRICS_ENABLED
    std::fprintf(stderr, "warning: built with ATC_METRICS=OFF; metrics "
                         "flags will produce empty snapshots\n");
#endif
    Reg.reset(Cfg.NumWorkers);
    // Meta belongs to the registry's owner: the runtime never touches an
    // external sink's Meta (a sampler may be reading it concurrently).
    Reg.Meta.Scheduler = schedulerKindName(Cfg.Kind);
    Reg.Meta.Source = "runtime";
    Reg.Meta.Workload = Workload;
    Cfg.Metrics = true;
    Cfg.MetricsSink = &Reg;
    Armed = true;
    if (Opt.wantsSampler()) {
      SamplerOptions SOpt;
      SOpt.PeriodMs = static_cast<int>(Opt.PeriodMs);
      SOpt.PromFile = Opt.MetricsFile;
      SOpt.HttpPort = static_cast<int>(Opt.MetricsPort);
      if (!Sampler.start(Reg, SOpt)) {
        std::fprintf(stderr, "error: cannot start metrics sampler "
                             "(port busy?)\n");
      } else if (Opt.MetricsPort >= 0) {
        std::printf("metrics: http://127.0.0.1:%d/metrics (period %lld "
                    "ms)\n",
                    Sampler.boundPort(), Opt.PeriodMs);
      }
    }
  }

  /// Post-run choreography: stop the sampler (its shutdown tick records
  /// the exact final state), write the final Prometheus file, handle
  /// --stats-json, and print a short pointer to what was produced.
  /// Returns false if a requested output file could not be written.
  bool finish(const SchedulerStats &Stats, const MetricsCliOptions &Opt) {
    bool Ok = true;
    MetricsSnapshot Final;
    if (Armed) {
      if (Sampler.running())
        Sampler.stop();
      Final = Reg.sample();
      if (!Opt.MetricsFile.empty()) {
        if (writeTextFileAtomic(Opt.MetricsFile,
                                renderPrometheus(Final, Reg.Meta))) {
          std::printf("metrics: final snapshot in %s (%d workers, %zu "
                      "samples kept)\n",
                      Opt.MetricsFile.c_str(),
                      static_cast<int>(Final.Workers.size()),
                      Reg.history().size());
        } else {
          std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                       Opt.MetricsFile.c_str());
          Ok = false;
        }
      } else if (Opt.Metrics) {
        // Bare --metrics: print the snapshot so the run is inspectable
        // without any file plumbing.
        std::fputs(renderPrometheus(Final, Reg.Meta).c_str(), stdout);
      }
    }
    if (!Opt.StatsJson.empty() &&
        !writeStatsJson(Opt.StatsJson, Stats, Armed ? &Final : nullptr,
                        Reg.Meta)) {
      std::fprintf(stderr, "error: cannot write stats to '%s'\n",
                   Opt.StatsJson.c_str());
      Ok = false;
    }
    return Ok;
  }

  /// Writes `{"stats": {...}, "metrics": {...}}` to \p Path. \p Final may
  /// be null (no metrics section). Standalone so harnesses that manage
  /// their own registries (e.g. the simulator CLIs) can reuse it.
  static bool writeStatsJson(const std::string &Path,
                             const SchedulerStats &Stats,
                             const MetricsSnapshot *Final,
                             const MetricsMeta &Meta = MetricsMeta()) {
    std::string Out = "{\n  \"stats\": " + Stats.json();
    if (Final) {
      // Reuse the series renderer for the single final snapshot: same
      // schema as --metrics-file's JSON sibling, one entry.
      std::vector<MetricsSnapshot> One(1, *Final);
      Out += ",\n  \"metrics\": " + renderJsonSeries(One, Meta);
    }
    Out += "\n}\n";
    return writeTextFileAtomic(Path, Out);
  }

  MetricsRegistry &registry() { return Reg; }
  bool armed() const { return Armed; }

private:
  MetricsRegistry Reg;
  MetricsSampler Sampler;
  bool Armed = false;
};

} // namespace atc

#endif // ATC_METRICS_METRICSCLI_H
