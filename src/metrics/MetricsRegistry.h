//===- metrics/MetricsRegistry.h - Whole-run metric registry ----*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-run metrics registry: one WorkerMetricsCell per worker plus
/// run metadata — the structural twin of trace/TraceLog.h. WorkerRuntime
/// arms one when SchedulerConfig::Metrics is set (its own, or the
/// externally owned SchedulerConfig::MetricsSink so a sampler thread or
/// atc_top can watch the run live) and hands each worker a pointer to its
/// cell; the simulator and the generated-code executor build their own.
/// RunResult carries the registry back to the CLI for the final snapshot.
///
/// sample() is safe to call from any thread at any time (all cell reads
/// are relaxed atomic loads); recorded snapshots form the JSON time
/// series the exposition layer renders.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_METRICS_METRICSREGISTRY_H
#define ATC_METRICS_METRICSREGISTRY_H

#include "metrics/Metrics.h"

#include <cassert>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace atc {

/// Run metadata embedded in every exposition (Prometheus labels, JSON
/// header) — same shape as TraceMeta so the two halves of the
/// observability story identify runs identically.
struct MetricsMeta {
  std::string Scheduler; ///< schedulerKindName of the run.
  std::string Source;    ///< "runtime", "sim", or "genruntime".
  std::string Workload;  ///< Free-form workload label ("nqueens-12", ...).
  int SchemaVersion = 1;
};

/// One worker's state in one snapshot: plain copies of everything the
/// cell publishes.
struct WorkerSample {
  std::uint64_t Stats[NumStatFields] = {};
  std::uint64_t ModeNs[NumTraceModes] = {};
  std::int64_t DequeDepth = 0;
  TraceMode Mode = TraceMode::Idle;
  bool NeedTask = false;
  // Tuning-knob mirrors (atc_tune_*); all-zero on an untuned run.
  std::uint32_t TuneCutoff = 0;
  std::uint32_t TuneMaxStolen = 0;
  std::uint32_t TuneBackoffShift = 0;
  std::uint64_t TuneAdjustments = 0;
  std::uint64_t TuneWindows = 0;
  HistogramCounts StealLatencyNs;
  HistogramCounts SpawnCostNs;
  HistogramCounts DequeDepthHist;
  HistogramCounts ReseedIntervalNs;

  std::uint64_t stat(StatField F) const {
    return Stats[static_cast<unsigned>(F)];
  }
};

/// A timestamped point-in-time view of every worker.
struct MetricsSnapshot {
  std::uint64_t TimeNs = 0;
  /// Which run epoch the snapshot belongs to (see MetricsRegistry::
  /// epoch()); lets a long-lived consumer tell "counter went backwards"
  /// (a new run re-armed the cells) from "counter is still climbing".
  std::uint64_t Epoch = 0;
  std::vector<WorkerSample> Workers;

  /// Sums (counters) / maxes (gauges) field \p F across workers — the
  /// aggregate the Prometheus totals and the coherence tests use.
  std::uint64_t total(StatField F) const {
    std::uint64_t T = 0;
    for (const WorkerSample &W : Workers)
      if (statFieldIsGauge(F))
        T = T > W.stat(F) ? T : W.stat(F);
      else
        T += W.stat(F);
    return T;
  }

  /// Reconstructs an aggregated SchedulerStats from the per-worker
  /// mirrors (exact after the final post-join publish).
  SchedulerStats toStats() const {
    SchedulerStats S;
    for (unsigned I = 0; I != NumStatFields; ++I)
      setStatFieldValue(S, static_cast<StatField>(I),
                        total(static_cast<StatField>(I)));
    return S;
  }
};

/// Per-run metric collection; see the file comment.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  explicit MetricsRegistry(int NumWorkers) { reset(NumWorkers); }

  /// (Re)sizes to \p NumWorkers cells and zeroes them, opening a new
  /// epoch. Not safe against a concurrent sampler when the size changes
  /// (cells are reallocated); pre-size the registry before starting one,
  /// and prefer rearm() below once a reader may be live.
  ///
  /// This is the per-run reset boundary (the runtime calls it — or
  /// rearm() for an external sink — at the top of every run()): cells
  /// always start a run from zero, so back-to-back runs against one
  /// registry (a server's SchedulerPool) aggregate exactly — no stats
  /// carry over from job to job. The epoch counter makes each reset
  /// observable to long-lived consumers.
  void reset(int NumWorkers) {
    assert(NumWorkers >= 1 && "metrics registry needs at least one worker");
    auto N = static_cast<std::size_t>(NumWorkers);
    if (Cells.size() != N) {
      Cells.clear();
      Cells.reserve(N);
      for (std::size_t I = 0; I != N; ++I)
        Cells.push_back(std::make_unique<WorkerMetricsCell>());
    } else {
      for (auto &C : Cells)
        C->reset();
    }
    EpochCounter.fetch_add(1, std::memory_order_relaxed);
    if (ClearHistoryOnReset) {
      std::lock_guard<std::mutex> Lock(HistoryMutex);
      History.clear();
    }
  }

  /// Per-run re-arm for an externally owned registry that may have a
  /// concurrent reader (a server's /metrics threads, a CLI sampler):
  /// zeroes every cell IN PLACE — never shrinks, so cell storage stays
  /// stable and sample()/cell() on another thread can never touch freed
  /// memory. Grows (reallocating, exactly like reset()) only when \p
  /// NumWorkers exceeds the current size, so owners with live readers
  /// must pre-size to their widest run before starting one. Opens a new
  /// epoch and applies ClearHistoryOnReset like reset().
  void rearm(int NumWorkers) {
    assert(NumWorkers >= 1 && "metrics registry needs at least one worker");
    if (static_cast<std::size_t>(NumWorkers) > Cells.size())
      return reset(NumWorkers);
    for (auto &C : Cells)
      C->reset();
    EpochCounter.fetch_add(1, std::memory_order_relaxed);
    if (ClearHistoryOnReset) {
      std::lock_guard<std::mutex> Lock(HistoryMutex);
      History.clear();
    }
  }

  /// Number of reset() calls so far — the run-epoch id. A one-shot CLI
  /// sees epoch 1 for its whole life; a server registry ticks once per
  /// job. Exposed as atc_epoch in the Prometheus rendering.
  std::uint64_t epoch() const {
    return EpochCounter.load(std::memory_order_relaxed);
  }

  int numWorkers() const { return static_cast<int>(Cells.size()); }

  WorkerMetricsCell &cell(int W) {
    return *Cells[static_cast<std::size_t>(W)];
  }
  const WorkerMetricsCell &cell(int W) const {
    return *Cells[static_cast<std::size_t>(W)];
  }

  /// Takes a snapshot of every cell, stamped with \p TimeNs (0 means
  /// "now" on the real clock; the simulator passes virtual time). Mode
  /// residency includes the still-open interval of the current mode so a
  /// worker parked in one long span still shows progress between polls.
  MetricsSnapshot sample(std::uint64_t TimeNs = 0) const {
    MetricsSnapshot Snap;
    Snap.TimeNs = TimeNs != 0 ? TimeNs : nowNanos();
    Snap.Epoch = epoch();
    Snap.Workers.resize(Cells.size());
    for (std::size_t I = 0; I != Cells.size(); ++I) {
      const WorkerMetricsCell &C = *Cells[I];
      WorkerSample &W = Snap.Workers[I];
      for (unsigned F = 0; F != NumStatFields; ++F)
        W.Stats[F] = C.stat(static_cast<StatField>(F));
      for (int M = 0; M != NumTraceModes; ++M)
        W.ModeNs[M] = C.modeNanos(static_cast<TraceMode>(M));
      W.Mode = C.mode();
      W.NeedTask = C.needTask();
      W.DequeDepth = C.dequeDepth();
      W.TuneCutoff = C.tuneCutoff();
      W.TuneMaxStolen = C.tuneMaxStolen();
      W.TuneBackoffShift = C.tuneBackoffShift();
      W.TuneAdjustments = C.tuneAdjustments();
      W.TuneWindows = C.tuneWindows();
      // Live adjustment: credit the open interval to the current mode.
      // Racy against a concurrent transition by design — the error is
      // bounded by one interval and self-corrects at the next sample.
      std::uint64_t Start = C.modeStartNanos();
      if (Start != 0 && Snap.TimeNs > Start)
        W.ModeNs[static_cast<unsigned>(W.Mode)] += Snap.TimeNs - Start;
      W.StealLatencyNs = C.StealLatencyNs.snapshot();
      W.SpawnCostNs = C.SpawnCostNs.snapshot();
      W.DequeDepthHist = C.DequeDepth.snapshot();
      W.ReseedIntervalNs = C.ReseedIntervalNs.snapshot();
    }
    return Snap;
  }

  /// Appends \p Snap to the bounded history (oldest dropped past the cap).
  void recordSnapshot(MetricsSnapshot Snap) {
    std::lock_guard<std::mutex> Lock(HistoryMutex);
    History.push_back(std::move(Snap));
    while (History.size() > HistoryCap)
      History.pop_front();
  }

  /// sample() + recordSnapshot() — the sampler thread's per-tick step.
  MetricsSnapshot sampleAndRecord(std::uint64_t TimeNs = 0) {
    MetricsSnapshot Snap = sample(TimeNs);
    recordSnapshot(Snap);
    return Snap;
  }

  /// Copies out the recorded series (cheap relative to exposition).
  std::vector<MetricsSnapshot> history() const {
    std::lock_guard<std::mutex> Lock(HistoryMutex);
    return {History.begin(), History.end()};
  }

  MetricsMeta Meta;

  /// Max snapshots retained (default one minute at the default 100 ms
  /// sampler period, ten at 6 s — bounded so an unattended sampler never
  /// grows without limit).
  std::size_t HistoryCap = 600;

  /// Whether reset() drops the recorded snapshot history. True (the
  /// default) matches the one-run-per-registry CLIs; a server flips it
  /// off so its sampler's time series spans job boundaries (snapshots
  /// stay distinguishable via their Epoch stamp).
  bool ClearHistoryOnReset = true;

private:
  std::vector<std::unique_ptr<WorkerMetricsCell>> Cells;
  std::atomic<std::uint64_t> EpochCounter{0};
  mutable std::mutex HistoryMutex;
  std::deque<MetricsSnapshot> History;
};

} // namespace atc

#endif // ATC_METRICS_METRICSREGISTRY_H
