//===- metrics/Quantile.h - Shared quantile / log2-bucket math --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Header-only quantile and log2-bucket math shared by the metrics layer
/// (LogHistogram quantiles, Prometheus bucket bounds) and the trace
/// summarizer (TraceSummary latency percentiles and its display
/// histogram). Keeping one copy means a percentile printed by atc_top and
/// one printed by trace_timeline over the same data agree exactly.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_METRICS_QUANTILE_H
#define ATC_METRICS_QUANTILE_H

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace atc {

/// Number of log2 buckets used by LogHistogram: bucket 0 holds value 0,
/// bucket B >= 1 holds values in [2^(B-1), 2^B). 64-bit values have at
/// most 64 significant bits, so bit_width <= 64 and 65 buckets cover the
/// full range with no clamping ambiguity at the top.
inline constexpr unsigned NumLog2Buckets = 65;

/// The log2 bucket index for \p V: 0 for V == 0, else bit_width(V)
/// (so 1 -> bucket 1, [2,3] -> 2, [4,7] -> 3, ...).
constexpr unsigned log2BucketFor(std::uint64_t V) {
  return static_cast<unsigned>(std::bit_width(V));
}

/// Smallest value that lands in bucket \p B (0 for the zero bucket).
constexpr std::uint64_t log2BucketLowerBound(unsigned B) {
  return B == 0 ? 0 : std::uint64_t{1} << (B - 1);
}

/// Largest value that lands in bucket \p B (inclusive).
constexpr std::uint64_t log2BucketUpperBound(unsigned B) {
  if (B == 0)
    return 0;
  if (B >= 64)
    return ~std::uint64_t{0};
  return (std::uint64_t{1} << B) - 1;
}

/// Percentile \p P (0..1) of an ascending-sorted \p Sorted, linearly
/// interpolated on index P * (N - 1) — the convention the trace
/// summarizer has always printed, now shared (callers sort once and ask
/// for as many percentiles as they like). Returns 0 on empty input.
inline double percentileSorted(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  double Idx = P * static_cast<double>(Sorted.size() - 1);
  std::size_t Lo = static_cast<std::size_t>(Idx);
  std::size_t Hi = Lo + 1 < Sorted.size() ? Lo + 1 : Sorted.size() - 1;
  double Frac = Idx - static_cast<double>(Lo);
  return Sorted[Lo] * (1 - Frac) + Sorted[Hi] * Frac;
}

/// Interpolated quantile \p Q (0..1) from log2 bucket counts: walks the
/// cumulative distribution to the bucket containing the target rank and
/// interpolates linearly inside it. Returns 0 when the histogram is
/// empty. \p Buckets must have NumLog2Buckets entries.
inline double quantileFromLog2Buckets(const std::uint64_t *Buckets,
                                      std::uint64_t Count, double Q) {
  if (Count == 0)
    return 0.0;
  double Target = Q * static_cast<double>(Count);
  std::uint64_t Seen = 0;
  for (unsigned B = 0; B != NumLog2Buckets; ++B) {
    if (Buckets[B] == 0)
      continue;
    double Before = static_cast<double>(Seen);
    Seen += Buckets[B];
    if (static_cast<double>(Seen) < Target)
      continue;
    double Lo = static_cast<double>(log2BucketLowerBound(B));
    double Hi = static_cast<double>(log2BucketUpperBound(B)) + 1.0;
    double Frac = (Target - Before) / static_cast<double>(Buckets[B]);
    return Lo + (Hi - Lo) * std::clamp(Frac, 0.0, 1.0);
  }
  return static_cast<double>(log2BucketUpperBound(NumLog2Buckets - 1));
}

} // namespace atc

#endif // ATC_METRICS_QUANTILE_H
