//===- metrics/Sampler.cpp - Background metrics sampler -------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "metrics/Sampler.h"

#include "metrics/Exposition.h"
#include "support/LoopbackHttp.h"

#include <unistd.h>

using namespace atc;

bool MetricsSampler::start(MetricsRegistry &Registry, SamplerOptions O) {
  if (running())
    return false;
  Reg = &Registry;
  Opts = std::move(O);
  if (Opts.PeriodMs < 1)
    Opts.PeriodMs = 1;
  if (Opts.HttpPort >= 0) {
    ListenFd = bindLoopbackListener(Opts.HttpPort, Port);
    if (ListenFd < 0)
      return false;
  }
  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { loop(); });
  return true;
}

void MetricsSampler::stop() {
  if (!running()) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  StopFlag.store(true, std::memory_order_release);
  if (Thread.joinable())
    Thread.join();
  tick(); // Final sample: the exact post-join state.
  if (ListenFd >= 0) {
    closeFd(ListenFd);
    ListenFd = -1;
    Port = -1;
  }
  Running.store(false, std::memory_order_release);
}

void MetricsSampler::tick() {
  MetricsSnapshot Snap = Reg->sampleAndRecord();
  std::string Text = renderPrometheus(Snap, Reg->Meta);
  {
    std::lock_guard<std::mutex> Lock(TextMutex);
    Latest = Text;
  }
  if (!Opts.PromFile.empty())
    writeTextFileAtomic(Opts.PromFile, Text);
}

void MetricsSampler::serveOnce(int TimeoutMs) {
  int Client = acceptOne(ListenFd, TimeoutMs);
  if (Client < 0)
    return;
  // Read (and discard) the request; any GET serves the latest
  // exposition, which is all a scraper needs.
  HttpRequest Req;
  (void)readHttpRequest(Client, Req);
  writeHttpResponse(Client, 200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    latestText());
  closeFd(Client);
}

void MetricsSampler::loop() {
  std::uint64_t NextTickNs = nowNanos();
  while (!StopFlag.load(std::memory_order_acquire)) {
    std::uint64_t Now = nowNanos();
    if (Now >= NextTickNs) {
      tick();
      NextTickNs =
          Now + static_cast<std::uint64_t>(Opts.PeriodMs) * 1000000ULL;
    }
    std::uint64_t AfterTick = nowNanos();
    int WaitMs =
        AfterTick >= NextTickNs
            ? 1
            : static_cast<int>((NextTickNs - AfterTick) / 1000000ULL) + 1;
    if (WaitMs > Opts.PeriodMs)
      WaitMs = Opts.PeriodMs;
    if (ListenFd >= 0) {
      serveOnce(WaitMs);
    } else {
      // Sleep in small slices so stop() stays responsive at long periods.
      int Slice = WaitMs > 20 ? 20 : WaitMs;
      ::usleep(static_cast<useconds_t>(Slice) * 1000);
    }
  }
}
