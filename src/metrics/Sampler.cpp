//===- metrics/Sampler.cpp - Background metrics sampler -------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "metrics/Sampler.h"

#include "metrics/Exposition.h"

#include <cstring>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace atc;

namespace {

/// Binds a loopback listen socket on \p Port (0 = ephemeral). Returns
/// the fd or -1; \p BoundPort receives the actual port.
int bindLoopback(int Port, int &BoundPort) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 8) != 0) {
    ::close(Fd);
    return -1;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  return Fd;
}

void writeAll(int Fd, const char *Data, std::size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N <= 0)
      return;
    Data += N;
    Len -= static_cast<std::size_t>(N);
  }
}

} // namespace

bool MetricsSampler::start(MetricsRegistry &Registry, SamplerOptions O) {
  if (running())
    return false;
  Reg = &Registry;
  Opts = std::move(O);
  if (Opts.PeriodMs < 1)
    Opts.PeriodMs = 1;
  if (Opts.HttpPort >= 0) {
    ListenFd = bindLoopback(Opts.HttpPort, Port);
    if (ListenFd < 0)
      return false;
  }
  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { loop(); });
  return true;
}

void MetricsSampler::stop() {
  if (!running()) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  StopFlag.store(true, std::memory_order_release);
  if (Thread.joinable())
    Thread.join();
  tick(); // Final sample: the exact post-join state.
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    Port = -1;
  }
  Running.store(false, std::memory_order_release);
}

void MetricsSampler::tick() {
  MetricsSnapshot Snap = Reg->sampleAndRecord();
  std::string Text = renderPrometheus(Snap, Reg->Meta);
  {
    std::lock_guard<std::mutex> Lock(TextMutex);
    Latest = Text;
  }
  if (!Opts.PromFile.empty())
    writeTextFileAtomic(Opts.PromFile, Text);
}

void MetricsSampler::serveOnce(int TimeoutMs) {
  pollfd Pfd{ListenFd, POLLIN, 0};
  if (::poll(&Pfd, 1, TimeoutMs) <= 0 || !(Pfd.revents & POLLIN))
    return;
  int Client = ::accept(ListenFd, nullptr, nullptr);
  if (Client < 0)
    return;
  // Read (and ignore) whatever request line arrived; any GET serves the
  // latest exposition, which is all a scraper needs.
  char Buf[1024];
  (void)::read(Client, Buf, sizeof(Buf));
  std::string Body = latestText();
  char Header[160];
  int HeaderLen = std::snprintf(
      Header, sizeof(Header),
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: %zu\r\nConnection: close\r\n\r\n",
      Body.size());
  writeAll(Client, Header, static_cast<std::size_t>(HeaderLen));
  writeAll(Client, Body.data(), Body.size());
  ::close(Client);
}

void MetricsSampler::loop() {
  std::uint64_t NextTickNs = nowNanos();
  while (!StopFlag.load(std::memory_order_acquire)) {
    std::uint64_t Now = nowNanos();
    if (Now >= NextTickNs) {
      tick();
      NextTickNs =
          Now + static_cast<std::uint64_t>(Opts.PeriodMs) * 1000000ULL;
    }
    std::uint64_t AfterTick = nowNanos();
    int WaitMs =
        AfterTick >= NextTickNs
            ? 1
            : static_cast<int>((NextTickNs - AfterTick) / 1000000ULL) + 1;
    if (WaitMs > Opts.PeriodMs)
      WaitMs = Opts.PeriodMs;
    if (ListenFd >= 0) {
      serveOnce(WaitMs);
    } else {
      // Sleep in small slices so stop() stays responsive at long periods.
      int Slice = WaitMs > 20 ? 20 : WaitMs;
      ::usleep(static_cast<useconds_t>(Slice) * 1000);
    }
  }
}
