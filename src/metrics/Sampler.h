//===- metrics/Sampler.h - Background metrics sampler -----------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The background sampler: a thread that snapshots a MetricsRegistry on a
/// configurable period, records the series into the registry history,
/// rewrites a Prometheus text file, and optionally serves the latest
/// exposition on a minimal HTTP endpoint (GET anything -> text/plain
/// 0.0.4), so a scrape target or `curl` can watch a run live.
///
/// The CLI owns the registry (SchedulerConfig::MetricsSink) and the
/// sampler's lifetime brackets the run: start() before runProblem,
/// stop() after — stop takes one final sample, so the file and history
/// always end with the exact post-join state.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_METRICS_SAMPLER_H
#define ATC_METRICS_SAMPLER_H

#include "metrics/MetricsRegistry.h"

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

namespace atc {

struct SamplerOptions {
  int PeriodMs = 100;   ///< Snapshot period.
  std::string PromFile; ///< Rewrite this file each tick (empty = none).
  int HttpPort = -1;    ///< Serve /metrics: -1 disabled, 0 ephemeral
                        ///  (see boundPort()), >0 fixed port (loopback).
};

/// Background sampler; see the file comment. Not copyable or movable
/// (owns a thread watching `this`).
class MetricsSampler {
public:
  MetricsSampler() = default;
  ~MetricsSampler() { stop(); }
  MetricsSampler(const MetricsSampler &) = delete;
  MetricsSampler &operator=(const MetricsSampler &) = delete;

  /// Starts sampling \p Reg. Returns false (started nothing) if already
  /// running or the HTTP socket could not be bound.
  bool start(MetricsRegistry &Reg, SamplerOptions Opts);

  /// Stops the thread, taking one final sample (and file/endpoint
  /// refresh) so consumers see the exact end-of-run state. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// The bound HTTP port (useful with HttpPort = 0), or -1 when disabled.
  int boundPort() const { return Port; }

  /// The most recently rendered exposition (what the endpoint serves).
  std::string latestText() const {
    std::lock_guard<std::mutex> Lock(TextMutex);
    return Latest;
  }

private:
  void loop();
  void tick();
  void serveOnce(int TimeoutMs);

  MetricsRegistry *Reg = nullptr;
  SamplerOptions Opts;
  std::thread Thread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  int ListenFd = -1;
  int Port = -1;
  mutable std::mutex TextMutex;
  std::string Latest;
};

} // namespace atc

#endif // ATC_METRICS_SAMPLER_H
