//===- problems/FibComp.h - Fib(n) and Comp(n) benchmarks -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two non-taskprivate benchmarks of Table 1:
///
///  * Fib(n):  "compute recursively the n-th Fibonacci number" — the
///             classic task-overhead stress test ("there is almost no
///             actual computation workload in each function").
///  * Comp(n): "compare array elements ai and bj for all 0 <= i, j < n" —
///             a divide-and-conquer sweep over the n x n index rectangle.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_PROBLEMS_FIBCOMP_H
#define ATC_PROBLEMS_FIBCOMP_H

#include "support/Prng.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace atc {

/// Recursive Fibonacci as a two-choice search tree: node n has children
/// n-1 and n-2; leaves (n < 2) contribute n. The sum over leaves is
/// fib(n).
class FibProblem {
public:
  struct State {
    int N;
  };
  using Result = long long;

  static State makeRoot(int N) {
    assert(N >= 0 && "fib of negative n");
    return {N};
  }

  bool isLeaf(const State &S, int) const { return S.N < 2; }
  Result leafResult(const State &S, int) const { return S.N; }
  int numChoices(const State &, int) const { return 2; }

  bool applyChoice(State &S, int, int K) const {
    S.N -= (K == 0 ? 1 : 2);
    return true;
  }

  void undoChoice(State &S, int, int K) const { S.N += (K == 0 ? 1 : 2); }

  /// Closed-form check value.
  static long long fibValue(int N) {
    long long A = 0, B = 1;
    for (int I = 0; I < N; ++I) {
      long long T = A + B;
      A = B;
      B = T;
    }
    return A;
  }
};

/// Comp(n): counts index pairs (i, j) with A[i] == B[j] by recursively
/// quartering/halving the n x n rectangle; rectangles at or below the leaf
/// area are compared element-wise. The workspace is a per-depth rectangle
/// stack (undo is a no-op: parent rectangles are never overwritten).
class CompProblem {
public:
  static constexpr int MaxDepth = 48;
  static constexpr int LeafArea = 1024;

  struct Rect {
    int I0, I1, J0, J1;
  };

  struct State {
    Rect R[MaxDepth]; ///< R[Depth] is the current rectangle.
  };
  using Result = long long;

  /// Builds arrays of \p N elements with values in [0, ValueRange).
  explicit CompProblem(int N, int ValueRange = 64,
                       std::uint64_t Seed = 0xC0117EED) {
    assert(N >= 1 && "empty comparison");
    A.reserve(static_cast<std::size_t>(N));
    B.reserve(static_cast<std::size_t>(N));
    SplitMix64 Rng(Seed);
    for (int I = 0; I < N; ++I)
      A.push_back(static_cast<int>(
          Rng.nextBelow(static_cast<std::uint64_t>(ValueRange))));
    for (int I = 0; I < N; ++I)
      B.push_back(static_cast<int>(
          Rng.nextBelow(static_cast<std::uint64_t>(ValueRange))));
  }

  State makeRoot() const {
    State S;
    std::memset(&S, 0, sizeof(S));
    S.R[0] = {0, static_cast<int>(A.size()), 0, static_cast<int>(B.size())};
    return S;
  }

  bool isLeaf(const State &S, int Depth) const {
    const Rect &R = S.R[Depth];
    long long Area = static_cast<long long>(R.I1 - R.I0) * (R.J1 - R.J0);
    return Area <= LeafArea || Depth + 1 >= MaxDepth;
  }

  Result leafResult(const State &S, int Depth) const {
    return countRect(S.R[Depth]);
  }

  int numChoices(const State &, int) const { return 2; }

  bool applyChoice(State &S, int Depth, int K) const {
    const Rect &R = S.R[Depth];
    Rect C = R;
    // Split the longer dimension; child K takes the low/high half.
    if (R.I1 - R.I0 >= R.J1 - R.J0) {
      int Mid = R.I0 + (R.I1 - R.I0) / 2;
      (K == 0 ? C.I1 : C.I0) = Mid;
    } else {
      int Mid = R.J0 + (R.J1 - R.J0) / 2;
      (K == 0 ? C.J1 : C.J0) = Mid;
    }
    if (C.I0 >= C.I1 || C.J0 >= C.J1)
      return false; // degenerate half (can only happen for tiny inputs)
    S.R[Depth + 1] = C;
    return true;
  }

  void undoChoice(State &, int, int) const {}

  /// O(n log n)-style reference count for validation.
  long long referenceCount() const {
    long long Count = 0;
    for (int X : A)
      for (int Y : B)
        Count += (X == Y);
    return Count;
  }

private:
  /// Kept out of line so every scheduler instantiation shares one copy of
  /// the hot comparison loop — leaf cost must not vary with the caller's
  /// code alignment when schedulers are compared against each other.
  __attribute__((noinline)) Result countRect(const Rect &R) const {
    long long Count = 0;
    for (int I = R.I0; I < R.I1; ++I)
      for (int J = R.J0; J < R.J1; ++J)
        Count += (A[static_cast<std::size_t>(I)] ==
                  B[static_cast<std::size_t>(J)]);
    return Count;
  }

  std::vector<int> A;
  std::vector<int> B;
};

} // namespace atc

#endif // ATC_PROBLEMS_FIBCOMP_H
