//===- problems/KnightsTour.h - Knight's tour enumeration -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Knight's Tour (Table 1): "find all solutions on a 6*6 chessboard. The
/// knight is placed on an empty chessboard and moving according to the
/// rules of the chess. It needs to visit each square on the chessboard
/// exactly once." Counts all open tours from a fixed start square. The
/// board size and start square are parameters so tests can use the 5x5
/// board whose corner-start tour count (304) is a classic oracle.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_PROBLEMS_KNIGHTSTOUR_H
#define ATC_PROBLEMS_KNIGHTSTOUR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace atc {

/// Open knight's tour enumeration on an N x N board, N <= 8.
class KnightsTour {
public:
  static constexpr int MaxN = 8;
  static constexpr int NumMoves = 8;

  struct State {
    int N;
    int Visited;          ///< Number of visited squares so far.
    int Row, Col;         ///< Current knight position.
    std::uint64_t Board;  ///< Visited-square bitmask (row * N + col).
    signed char PrevRow[MaxN * MaxN]; ///< Per-depth position for undo.
    signed char PrevCol[MaxN * MaxN];
  };
  using Result = long long;

  /// Root state with the knight placed at (\p StartRow, \p StartCol).
  static State makeRoot(int N, int StartRow = 0, int StartCol = 0) {
    assert(N >= 1 && N <= MaxN && "board size out of range");
    assert(StartRow >= 0 && StartRow < N && StartCol >= 0 && StartCol < N &&
           "start square out of range");
    State S;
    std::memset(&S, 0, sizeof(S));
    S.N = N;
    S.Visited = 1;
    S.Row = StartRow;
    S.Col = StartCol;
    S.Board = bit(N, StartRow, StartCol);
    return S;
  }

  bool isLeaf(const State &S, int) const { return S.Visited == S.N * S.N; }
  Result leafResult(const State &, int) const { return 1; }
  int numChoices(const State &, int) const { return NumMoves; }

  bool applyChoice(State &S, int Depth, int K) const {
    int R = S.Row + MoveR[K];
    int C = S.Col + MoveC[K];
    if (R < 0 || R >= S.N || C < 0 || C >= S.N)
      return false;
    std::uint64_t B = bit(S.N, R, C);
    if (S.Board & B)
      return false;
    S.PrevRow[Depth] = static_cast<signed char>(S.Row);
    S.PrevCol[Depth] = static_cast<signed char>(S.Col);
    S.Board |= B;
    S.Row = R;
    S.Col = C;
    ++S.Visited;
    return true;
  }

  void undoChoice(State &S, int Depth, int) const {
    S.Board &= ~bit(S.N, S.Row, S.Col);
    S.Row = S.PrevRow[Depth];
    S.Col = S.PrevCol[Depth];
    --S.Visited;
  }

  /// The undo trail (PrevRow/PrevCol) is written at a depth before it is
  /// read back there, and a search starting at Depth only touches entries
  /// >= Depth — so none of it needs to survive the workspace copy; the
  /// live prefix is the header (position, count, occupancy mask).
  std::size_t liveBytes(const State &, int) const {
    return offsetof(State, PrevRow);
  }

private:
  static std::uint64_t bit(int N, int R, int C) {
    return std::uint64_t(1) << (R * N + C);
  }

  static constexpr int MoveR[NumMoves] = {2, 1, -1, -2, -2, -1, 1, 2};
  static constexpr int MoveC[NumMoves] = {1, 2, 2, 1, -1, -2, -2, -1};
};

} // namespace atc

#endif // ATC_PROBLEMS_KNIGHTSTOUR_H
