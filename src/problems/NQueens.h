//===- problems/NQueens.h - n-queens benchmark problems ---------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two n-queens variants of the paper's Table 1:
///
///  * Nqueen-array:   "uses an array to record whether conflicts occur, and
///                     is more time efficient" — O(1) conflict tests via
///                     column/diagonal occupancy arrays.
///  * Nqueen-compute: "traverses the chessboard to find out whether
///                     conflicts occur, and is more memory efficient" —
///                     O(depth) conflict scan over the placed queens.
///
/// Both count all placements of N queens with no two sharing a row,
/// column, or diagonal. The scheduler depth is the row being filled; a
/// choice is the column for that row. The chessboard is the taskprivate
/// workspace (the paper's running example, Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_PROBLEMS_NQUEENS_H
#define ATC_PROBLEMS_NQUEENS_H

#include <cassert>
#include <cstring>

namespace atc {

/// Conflict-array n-queens ("Nqueen-array" in the paper).
class NQueensArray {
public:
  static constexpr int MaxN = 16;

  struct State {
    int N;
    signed char Col[MaxN];          ///< Queen column per row.
    signed char ColUsed[MaxN];      ///< Column occupancy.
    signed char Diag1[2 * MaxN];    ///< "/" diagonals, indexed by r + c.
    signed char Diag2[2 * MaxN];    ///< "\" diagonals, indexed r - c + N-1.
  };
  using Result = long long;

  /// Returns the root state for an \p N x \p N board (1 <= N <= MaxN).
  static State makeRoot(int N) {
    assert(N >= 1 && N <= MaxN && "board size out of range");
    State S;
    std::memset(&S, 0, sizeof(S));
    S.N = N;
    return S;
  }

  bool isLeaf(const State &S, int Depth) const { return Depth == S.N; }
  Result leafResult(const State &, int) const { return 1; }
  int numChoices(const State &S, int) const { return S.N; }

  bool applyChoice(State &S, int Depth, int K) const {
    if (S.ColUsed[K] || S.Diag1[Depth + K] || S.Diag2[Depth - K + S.N - 1])
      return false;
    S.ColUsed[K] = 1;
    S.Diag1[Depth + K] = 1;
    S.Diag2[Depth - K + S.N - 1] = 1;
    S.Col[Depth] = static_cast<signed char>(K);
    return true;
  }

  void undoChoice(State &S, int Depth, int K) const {
    S.ColUsed[K] = 0;
    S.Diag1[Depth + K] = 0;
    S.Diag2[Depth - K + S.N - 1] = 0;
  }

  // No liveBytes hint: the occupancy arrays are live at every depth
  // (conflict tests index them by column, not by row), so a sound bound
  // could only trim the Col record — a few bytes of a ~100-byte State.
  // That trade is a loss: a depth-dependent bound turns the spawn copy
  // from a compile-time-size memcpy into a variable-length one, which
  // measures ~20% slower per spawn on Cilk-SYNCHED than copying the
  // whole State (bench/micro_spawn.cpp, NQueens9).
};

/// Conflict-scan n-queens ("Nqueen-compute" in the paper).
class NQueensCompute {
public:
  static constexpr int MaxN = 16;

  struct State {
    int N;
    signed char X[MaxN]; ///< Queen column per row ("x[] is the chessboard").
  };
  using Result = long long;

  static State makeRoot(int N) {
    assert(N >= 1 && N <= MaxN && "board size out of range");
    State S;
    std::memset(&S, 0, sizeof(S));
    S.N = N;
    return S;
  }

  bool isLeaf(const State &S, int Depth) const { return Depth == S.N; }
  Result leafResult(const State &, int) const { return 1; }
  int numChoices(const State &S, int) const { return S.N; }

  bool applyChoice(State &S, int Depth, int K) const {
    for (int I = 0; I < Depth; ++I) {
      int D = S.X[I] - K;
      if (D == 0 || D == Depth - I || D == I - Depth)
        return false;
    }
    S.X[Depth] = static_cast<signed char>(K);
    return true;
  }

  void undoChoice(State &, int, int) const {}

  // No liveBytes hint: the conflict scan at depth d reads X[0..d-1]
  // only, so a bound would be sound — but the whole State is 20 bytes
  // and a variable-length copy costs more than it saves (see
  // NQueensArray above).
};

} // namespace atc

#endif // ATC_PROBLEMS_NQUEENS_H
