//===- problems/Pentomino.cpp - Pentomino exact-cover search --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "problems/Pentomino.h"
#include "support/Compiler.h"

#include <algorithm>
#include <array>
#include <set>

using namespace atc;

namespace {

using CellSet = std::array<std::pair<int, int>, Pentomino::CellsPerPiece>;

/// Base shapes of the 12 pentominoes in canonical F I L N P T U V W X Y Z
/// order, as (row, col) cell sets.
constexpr std::pair<int, int>
    BaseShapes[Pentomino::NumBasePieces][Pentomino::CellsPerPiece] = {
        {{0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 1}}, // F
        {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}, // I
        {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {3, 1}}, // L
        {{0, 1}, {1, 1}, {2, 0}, {2, 1}, {3, 0}}, // N
        {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}}, // P
        {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {2, 1}}, // T
        {{0, 0}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}, // U
        {{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}}, // V
        {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}}, // W
        {{0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}}, // X
        {{0, 1}, {1, 0}, {1, 1}, {2, 1}, {3, 1}}, // Y
        {{0, 0}, {0, 1}, {1, 1}, {2, 1}, {2, 2}}, // Z
};

constexpr const char *PieceNames[Pentomino::NumBasePieces] = {
    "F", "I", "L", "N", "P", "T", "U", "V", "W", "X", "Y", "Z"};

/// Normalizes a cell set: shifts to non-negative coordinates with min row
/// and min col at 0, then sorts row-major.
CellSet normalize(CellSet Cells) {
  int MinR = Cells[0].first, MinC = Cells[0].second;
  for (const auto &[R, C] : Cells) {
    MinR = std::min(MinR, R);
    MinC = std::min(MinC, C);
  }
  for (auto &[R, C] : Cells) {
    R -= MinR;
    C -= MinC;
  }
  std::sort(Cells.begin(), Cells.end());
  return Cells;
}

CellSet rotate90(const CellSet &Cells) {
  CellSet Out;
  for (std::size_t I = 0; I < Cells.size(); ++I)
    Out[I] = {Cells[I].second, -Cells[I].first};
  return normalize(Out);
}

CellSet reflect(const CellSet &Cells) {
  CellSet Out;
  for (std::size_t I = 0; I < Cells.size(); ++I)
    Out[I] = {Cells[I].first, -Cells[I].second};
  return normalize(Out);
}

/// All distinct orientations (rotations x reflections) of one base shape.
std::vector<CellSet> allOrientations(int Piece) {
  std::set<CellSet> Seen;
  CellSet Cur;
  for (int I = 0; I < Pentomino::CellsPerPiece; ++I)
    Cur[static_cast<std::size_t>(I)] = BaseShapes[Piece][I];
  Cur = normalize(Cur);
  for (int Mirror = 0; Mirror < 2; ++Mirror) {
    for (int Rot = 0; Rot < 4; ++Rot) {
      Seen.insert(Cur);
      Cur = rotate90(Cur);
    }
    Cur = reflect(Cur);
  }
  return {Seen.begin(), Seen.end()};
}

/// Converts a normalized cell set into an Orientation anchored at its
/// first cell in row-major order (offsets relative to that anchor; the
/// anchor offset is (0, 0) and all row offsets are non-negative).
Pentomino::Orientation makeOrientation(int Piece, const CellSet &Cells) {
  Pentomino::Orientation O;
  O.Piece = Piece;
  int AR = Cells[0].first, AC = Cells[0].second;
  for (std::size_t I = 0; I < Cells.size(); ++I) {
    O.DR[I] = static_cast<signed char>(Cells[I].first - AR);
    O.DC[I] = static_cast<signed char>(Cells[I].second - AC);
  }
  return O;
}

} // namespace

Pentomino::Pentomino(int Width, int Height, int NumPieces)
    : W(Width), H(Height), Pieces(NumPieces) {
  assert(W >= 1 && H >= 1 && "degenerate board");
  assert(Pieces >= 1 && Pieces <= MaxPieces && "piece count out of range");
  assert(W * H == CellsPerPiece * Pieces &&
         "board area must equal 5 * pieces");
  assert(W * H <= MaxCells && "board too large");

  for (int R = 0; R < H; ++R)
    for (int C = 0; C < W; ++C)
      FullMask.set(cellIndex(R, C));

  for (int Identity = 0; Identity < Pieces; ++Identity) {
    int Base = Identity % NumBasePieces;
    for (const CellSet &Cells : allOrientations(Base))
      Choices.push_back({Identity, makeOrientation(Base, Cells)});
  }
}

bool Pentomino::applyChoice(State &S, int Depth, int K) const {
  const Choice &Ch = Choices[static_cast<std::size_t>(K)];
  if (S.UsedPieces & (1u << Ch.PieceIdentity))
    return false;

  // The anchor must land on the first empty cell: exact cover in
  // first-cell order visits every tiling exactly once.
  BitBoard128 Empty = ~S.Occupied & FullMask;
  assert(Empty.any() && "applyChoice on a full board");
  int Anchor = Empty.firstSet();
  int AR = Anchor / W, AC = Anchor % W;

  BitBoard128 Placed;
  for (int I = 0; I < CellsPerPiece; ++I) {
    int R = AR + Ch.Shape.DR[I];
    int C = AC + Ch.Shape.DC[I];
    if (R >= H || C < 0 || C >= W)
      return false;
    int Cell = cellIndex(R, C);
    if (S.Occupied.test(Cell))
      return false;
    Placed.set(Cell);
  }

  S.Occupied = S.Occupied | Placed;
  S.UsedPieces |= 1u << Ch.PieceIdentity;
  S.PlacedMask[Depth] = Placed;
  return true;
}

void Pentomino::undoChoice(State &S, int Depth, int K) const {
  const Choice &Ch = Choices[static_cast<std::size_t>(K)];
  S.Occupied = S.Occupied & ~S.PlacedMask[Depth];
  S.UsedPieces &= ~(1u << Ch.PieceIdentity);
}

int Pentomino::orientationCount(int Piece) const {
  int Count = 0;
  for (const Choice &Ch : Choices)
    if (Ch.PieceIdentity == Piece)
      ++Count;
  return Count;
}

const char *Pentomino::pieceName(int Piece) {
  assert(Piece >= 0 && Piece < NumBasePieces && "piece id out of range");
  return PieceNames[Piece];
}
