//===- problems/Pentomino.h - Pentomino exact-cover search ------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pentomino (Table 1): "find all solutions to the Pentomino problem with
/// n pieces (using additional pieces and an expanded board for n > 12)."
///
/// The solver is the classic first-empty-cell exact-cover search: at each
/// node, the first empty board cell (row-major) must be covered; a choice
/// is one (piece, orientation) pair whose anchor cell (its first cell in
/// row-major order) lands there. Orientations are generated
/// programmatically from the 12 base shapes (rotations + reflections,
/// deduplicated), giving the classic 63 one-sided orientations.
///
/// Boards up to 128 cells are supported (Pentomino(13+) uses a 5 x n
/// board with duplicated pieces, following the paper's "additional pieces
/// and an expanded board").
///
//===----------------------------------------------------------------------===//

#ifndef ATC_PROBLEMS_PENTOMINO_H
#define ATC_PROBLEMS_PENTOMINO_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace atc {

/// 128-bit occupancy mask for boards larger than 64 cells.
struct BitBoard128 {
  std::uint64_t Lo = 0, Hi = 0;

  bool test(int I) const {
    return I < 64 ? (Lo >> I) & 1 : (Hi >> (I - 64)) & 1;
  }
  void set(int I) {
    if (I < 64)
      Lo |= std::uint64_t(1) << I;
    else
      Hi |= std::uint64_t(1) << (I - 64);
  }
  BitBoard128 operator|(const BitBoard128 &O) const {
    return {Lo | O.Lo, Hi | O.Hi};
  }
  BitBoard128 operator&(const BitBoard128 &O) const {
    return {Lo & O.Lo, Hi & O.Hi};
  }
  BitBoard128 operator~() const { return {~Lo, ~Hi}; }
  bool operator==(const BitBoard128 &O) const = default;
  bool any() const { return Lo || Hi; }

  /// Index of the lowest set bit; undefined when empty.
  int firstSet() const {
    return Lo ? __builtin_ctzll(Lo) : 64 + __builtin_ctzll(Hi);
  }
};

/// Pentomino tiling enumeration.
class Pentomino {
public:
  static constexpr int NumBasePieces = 12;
  static constexpr int CellsPerPiece = 5;
  static constexpr int MaxPieces = 24;
  static constexpr int MaxCells = 128;

  /// One concrete placement shape: a piece id plus cell offsets relative
  /// to the anchor (the shape's first cell in row-major order). DR[0] ==
  /// 0 and DC[0] == 0 by construction.
  struct Orientation {
    int Piece;
    signed char DR[CellsPerPiece];
    signed char DC[CellsPerPiece];
  };

  struct State {
    BitBoard128 Occupied;
    std::uint32_t UsedPieces;
    BitBoard128 PlacedMask[MaxPieces]; ///< Per-depth placed cells (undo).
  };
  using Result = long long;

  /// Builds a solver for a \p Width x \p Height board using \p NumPieces
  /// pieces. Pieces beyond the base 12 are duplicates (piece id mod 12)
  /// with distinct identities, following the paper's expanded setup.
  /// Requires Width * Height == 5 * NumPieces and at most MaxCells cells.
  Pentomino(int Width, int Height, int NumPieces = NumBasePieces);

  State makeRoot() const {
    State S;
    S.Occupied = BitBoard128();
    S.UsedPieces = 0;
    for (BitBoard128 &M : S.PlacedMask)
      M = BitBoard128();
    return S;
  }

  bool isLeaf(const State &S, int) const { return S.Occupied == FullMask; }
  Result leafResult(const State &, int) const { return 1; }
  int numChoices(const State &, int) const {
    return static_cast<int>(Choices.size());
  }

  bool applyChoice(State &S, int Depth, int K) const;
  void undoChoice(State &S, int Depth, int K) const;

  /// PlacedMask[d] is an undo record written by applyChoice at depth d
  /// before undoChoice reads it back at the same depth, so a child's
  /// subtree never observes entries below its start depth: the live
  /// prefix is just the occupancy state (~24 of ~408 bytes).
  std::size_t liveBytes(const State &, int) const {
    return offsetof(State, PlacedMask);
  }

  /// Number of one-sided orientations of base piece \p Piece (0..11).
  /// The classic counts are F:8 I:2 L:8 N:8 P:8 T:4 U:4 V:4 W:4 X:1 Y:8
  /// Z:4.
  int orientationCount(int Piece) const;

  /// Canonical piece names in id order: F I L N P T U V W X Y Z.
  static const char *pieceName(int Piece);

  int width() const { return W; }
  int height() const { return H; }
  int numPieces() const { return Pieces; }

private:
  /// A choice = (orientation, anchor-independent placement) for one
  /// concrete piece identity.
  struct Choice {
    int PieceIdentity; ///< 0 .. Pieces-1.
    Orientation Shape;
  };

  int W, H, Pieces;
  BitBoard128 FullMask;
  std::vector<Choice> Choices;

  int cellIndex(int R, int C) const { return R * W + C; }
};

} // namespace atc

#endif // ATC_PROBLEMS_PENTOMINO_H
