//===- problems/ProblemRegistry.cpp - Name-keyed problem factory ----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "problems/ProblemRegistry.h"

#include "problems/FibComp.h"
#include "problems/KnightsTour.h"
#include "problems/NQueens.h"
#include "problems/Pentomino.h"
#include "problems/Strimko.h"
#include "problems/Sudoku.h"

#include <cctype>
#include <memory>

using namespace atc;

namespace {

/// Canonicalizes a kind name: lower-case, '_' → '-'.
std::string canonicalKind(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name)
    Out += C == '_'
               ? '-'
               : static_cast<char>(
                     std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

/// Fills the two closures of \p R from a shared problem object and a
/// root state: the one type-erasure point for every kind below.
template <typename ProbT>
void bindRunner(ProblemRunner &R, std::shared_ptr<ProbT> Prob,
                typename ProbT::State Root) {
  R.Run = [Prob, Root](const SchedulerConfig &Cfg) {
    return runProblem(*Prob, Root, Cfg);
  };
  R.RunSequential = [Prob, Root]() {
    auto S = Root;
    return static_cast<long long>(runSequential(*Prob, S));
  };
}

struct KindDef {
  const char *Name;
  int DefaultSize;
  int MinSize;
  int MaxSize;
  void (*Build)(ProblemRunner &, int Size);
};

// Scaled defaults match bench/common/BenchCommon.cpp off paper scale, so
// a default-size job stream exercises the same tree shapes CI already
// times.
const KindDef Kinds[] = {
    {"nqueens-array", 11, 1, NQueensArray::MaxN,
     [](ProblemRunner &R, int Size) {
       bindRunner(R, std::make_shared<NQueensArray>(),
                  NQueensArray::makeRoot(Size));
     }},
    {"nqueens-compute", 11, 1, NQueensCompute::MaxN,
     [](ProblemRunner &R, int Size) {
       bindRunner(R, std::make_shared<NQueensCompute>(),
                  NQueensCompute::makeRoot(Size));
     }},
    {"fib", 27, 1, 45,
     [](ProblemRunner &R, int Size) {
       bindRunner(R, std::make_shared<FibProblem>(),
                  FibProblem::makeRoot(Size));
     }},
    {"comp", 6000, 1, 60000,
     [](ProblemRunner &R, int Size) {
       auto Prob = std::make_shared<CompProblem>(Size);
       auto Root = Prob->makeRoot();
       bindRunner(R, std::move(Prob), Root);
     }},
    {"knights", 5, 1, KnightsTour::MaxN,
     [](ProblemRunner &R, int Size) {
       bindRunner(R, std::make_shared<KnightsTour>(),
                  KnightsTour::makeRoot(Size, 0, 0));
     }},
    {"strimko", 5, 1, Strimko::MaxN,
     [](ProblemRunner &R, int Size) {
       bindRunner(R, std::make_shared<Strimko>(), Strimko::makeRoot(Size));
     }},
    // Sudoku instances are named, not sized: 1 = input1, 2 = input2,
    // anything else = the balanced paper instance.
    {"sudoku", 0, 0, 2,
     [](ProblemRunner &R, int Size) {
       const char *Inst =
           Size == 1 ? "input1" : Size == 2 ? "input2" : "balance";
       bindRunner(R, std::make_shared<Sudoku>(), Sudoku::makeInstance(Inst));
     }},
    // Size = piece count on a Size x 5 board (Width * Height == 5 *
    // Pieces holds by construction; 13 is the paper's expanded setup).
    {"pentomino", 6, 3, 13,
     [](ProblemRunner &R, int Size) {
       auto Prob = std::make_shared<Pentomino>(Size, 5, Size);
       auto Root = Prob->makeRoot();
       bindRunner(R, std::move(Prob), Root);
     }},
};

const KindDef *findKind(const std::string &Name) {
  std::string Canon = canonicalKind(Name);
  for (const KindDef &K : Kinds)
    if (Canon == K.Name)
      return &K;
  return nullptr;
}

} // namespace

bool atc::makeProblemRunner(const std::string &Kind, int Size,
                            ProblemRunner &Out, std::string &Error) {
  const KindDef *K = findKind(Kind);
  if (!K) {
    Error = "unknown problem kind '" + Kind + "' (known:";
    for (const std::string &Name : problemRegistryKinds())
      Error += " " + Name;
    Error += ")";
    return false;
  }
  if (Size == 0)
    Size = K->DefaultSize;
  if (Size < K->MinSize || Size > K->MaxSize) {
    Error = "size " + std::to_string(Size) + " out of range [" +
            std::to_string(K->MinSize) + ", " + std::to_string(K->MaxSize) +
            "] for problem kind '" + K->Name + "'";
    return false;
  }
  Out = ProblemRunner();
  Out.Kind = K->Name;
  Out.Size = Size;
  Out.Workload = std::string(K->Name) + "-" + std::to_string(Size);
  K->Build(Out, Size);
  return true;
}

const std::vector<std::string> &atc::problemRegistryKinds() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> V;
    for (const KindDef &K : Kinds)
      V.push_back(K.Name);
    return V;
  }();
  return Names;
}

int atc::problemDefaultSize(const std::string &Kind) {
  const KindDef *K = findKind(Kind);
  return K ? K->DefaultSize : -1;
}
