//===- problems/ProblemRegistry.h - Name-keyed problem factory --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A name → factory registry over every search problem in the tree, so
/// tools that pick workloads at runtime (the job server, atc_loadgen,
/// atc_top --demo) share one wiring instead of each hard-coding its own
/// switch over problem types. The registry type-erases the heterogeneous
/// problem classes behind two closures: run-under-a-config and the
/// sequential oracle.
///
/// \code
///   atc::ProblemRunner Runner;
///   std::string Err;
///   if (!atc::makeProblemRunner("nqueens-array", 11, Runner, Err))
///     atc::reportFatalError(Err);
///   auto R = Runner.Run(Cfg);              // RunResult<long long>
///   assert(R.Value == Runner.RunSequential());
/// \endcode
///
/// Size semantics are per kind (board size, fib index, array length,
/// piece count — see kind list in ProblemRegistry.cpp); 0 selects the
/// kind's scaled default, the same sizes the benchmark suite uses off
/// paper scale.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_PROBLEMS_PROBLEMREGISTRY_H
#define ATC_PROBLEMS_PROBLEMREGISTRY_H

#include "core/Runtime.h"

#include <functional>
#include <string>
#include <vector>

namespace atc {

/// A ready-to-run, type-erased problem instance. The closures share
/// ownership of the underlying problem object, so a ProblemRunner is
/// freely copyable and outlives the registry call that built it.
struct ProblemRunner {
  std::string Kind;     ///< Canonical kind name ("nqueens-array", ...).
  int Size = 0;         ///< Effective size after defaulting.
  std::string Workload; ///< Label for metrics/trace meta ("fib-27", ...).

  /// Runs the problem under \p Cfg through the full scheduler stack.
  std::function<RunResult<long long>(const SchedulerConfig &Cfg)> Run;

  /// The sequential oracle: the value every scheduled run must equal.
  std::function<long long()> RunSequential;
};

/// Builds a runner for \p Kind at \p Size (0 = the kind's default).
/// Returns false and sets \p Error for an unknown kind or out-of-range
/// size. Kind parsing is case-insensitive and "-"/"_" interchangeable,
/// like the scheduler-kind parsers.
bool makeProblemRunner(const std::string &Kind, int Size, ProblemRunner &Out,
                       std::string &Error);

/// Canonical kind names, in registry order.
const std::vector<std::string> &problemRegistryKinds();

/// The scaled default size for \p Kind (what Size = 0 resolves to), or
/// -1 for an unknown kind.
int problemDefaultSize(const std::string &Kind);

} // namespace atc

#endif // ATC_PROBLEMS_PROBLEMREGISTRY_H
