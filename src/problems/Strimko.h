//===- problems/Strimko.h - Strimko logic puzzle ----------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strimko (Table 1): "fill in the given 7*7 grid so that each column,
/// each row, and each stream contain the digits from 1 to 7 only once."
/// A stream is a connected partition class of the grid. The default
/// stream layout uses the broken diagonals ((c - r) mod N), which
/// partitions any N x N grid into N streams that intersect every row and
/// column exactly once; custom layouts and givens can be supplied.
///
/// Search order: free cells in row-major order (scheduler depth = index
/// into the free-cell list); a choice is the digit placed.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_PROBLEMS_STRIMKO_H
#define ATC_PROBLEMS_STRIMKO_H

#include <cassert>
#include <cstring>
#include <vector>

namespace atc {

/// Strimko solution counting on an N x N grid, N <= 7.
class Strimko {
public:
  static constexpr int MaxN = 7;
  static constexpr int MaxCells = MaxN * MaxN;

  /// A given: digit Digit (1-based) preplaced at (Row, Col).
  struct Given {
    int Row, Col, Digit;
  };

  struct State {
    int N;
    int NumFree;
    signed char Grid[MaxN][MaxN];      ///< 0 = empty, else digit 1..N.
    signed char StreamOf[MaxN][MaxN];  ///< Stream id per cell.
    unsigned char RowUsed[MaxN];       ///< Bitmask of digits used per row.
    unsigned char ColUsed[MaxN];
    unsigned char StreamUsed[MaxN];
    signed char FreeRow[MaxCells];     ///< Free cells in row-major order.
    signed char FreeCol[MaxCells];
  };
  using Result = long long;

  /// Builds a root state. \p StreamOf maps cells to stream ids 0..N-1;
  /// when null, the broken-diagonal layout is used. \p Givens preplaces
  /// digits; conflicting givens are a programming error (asserted).
  static State makeRoot(int N, const std::vector<Given> &Givens = {},
                        const signed char (*StreamOf)[MaxN] = nullptr) {
    assert(N >= 1 && N <= MaxN && "grid size out of range");
    State S;
    std::memset(&S, 0, sizeof(S));
    S.N = N;
    for (int R = 0; R < N; ++R)
      for (int C = 0; C < N; ++C)
        S.StreamOf[R][C] = StreamOf
                               ? StreamOf[R][C]
                               : static_cast<signed char>(((C - R) % N + N) %
                                                          N);
    for (const Given &G : Givens) {
      assert(G.Row >= 0 && G.Row < N && G.Col >= 0 && G.Col < N &&
             G.Digit >= 1 && G.Digit <= N && "given out of range");
      unsigned char Bit = static_cast<unsigned char>(1 << (G.Digit - 1));
      assert(!(S.RowUsed[G.Row] & Bit) && !(S.ColUsed[G.Col] & Bit) &&
             !(S.StreamUsed[S.StreamOf[G.Row][G.Col]] & Bit) &&
             "conflicting given");
      S.Grid[G.Row][G.Col] = static_cast<signed char>(G.Digit);
      S.RowUsed[G.Row] |= Bit;
      S.ColUsed[G.Col] |= Bit;
      S.StreamUsed[S.StreamOf[G.Row][G.Col]] |= Bit;
    }
    for (int R = 0; R < N; ++R)
      for (int C = 0; C < N; ++C)
        if (!S.Grid[R][C]) {
          S.FreeRow[S.NumFree] = static_cast<signed char>(R);
          S.FreeCol[S.NumFree] = static_cast<signed char>(C);
          ++S.NumFree;
        }
    return S;
  }

  bool isLeaf(const State &S, int Depth) const { return Depth == S.NumFree; }
  Result leafResult(const State &, int) const { return 1; }
  int numChoices(const State &S, int) const { return S.N; }

  bool applyChoice(State &S, int Depth, int K) const {
    int R = S.FreeRow[Depth];
    int C = S.FreeCol[Depth];
    int St = S.StreamOf[R][C];
    unsigned char Bit = static_cast<unsigned char>(1 << K);
    if ((S.RowUsed[R] | S.ColUsed[C] | S.StreamUsed[St]) & Bit)
      return false;
    S.Grid[R][C] = static_cast<signed char>(K + 1);
    S.RowUsed[R] |= Bit;
    S.ColUsed[C] |= Bit;
    S.StreamUsed[St] |= Bit;
    return true;
  }

  void undoChoice(State &S, int Depth, int K) const {
    int R = S.FreeRow[Depth];
    int C = S.FreeCol[Depth];
    int St = S.StreamOf[R][C];
    unsigned char Bit = static_cast<unsigned char>(~(1 << K));
    S.Grid[R][C] = 0;
    S.RowUsed[R] &= Bit;
    S.ColUsed[C] &= Bit;
    S.StreamUsed[St] &= Bit;
  }
};

} // namespace atc

#endif // ATC_PROBLEMS_STRIMKO_H
