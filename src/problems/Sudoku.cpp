//===- problems/Sudoku.cpp - Sudoku instances and parsing -----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "problems/Sudoku.h"
#include "support/Error.h"

using namespace atc;

/// A complete valid grid (the classic example grid); the named instances
/// below clear subsets of its cells, so every instance is satisfiable and
/// its search tree contains at least the original solution.
static const char SolvedGrid[] = "534678912"
                                 "672195348"
                                 "198342567"
                                 "859761423"
                                 "426853791"
                                 "713924856"
                                 "961537284"
                                 "287419635"
                                 "345286179";

Sudoku::State Sudoku::makeRoot(const std::string &Grid) {
  assert(Grid.size() == Cells && "grid string must have 81 characters");
  State S;
  std::memset(&S, 0, sizeof(S));
  for (int R = 0; R < N; ++R) {
    for (int C = 0; C < N; ++C) {
      char Ch = Grid[static_cast<std::size_t>(R * N + C)];
      if (Ch == '0' || Ch == '.')
        continue;
      assert(Ch >= '1' && Ch <= '9' && "grid cell must be 0-9 or '.'");
      int D = Ch - '1';
      int B = blockOf(R, C);
      std::uint16_t Bit = static_cast<std::uint16_t>(1 << D);
      assert(!((S.PlacedRow[R] | S.PlacedCol[C] | S.PlacedBlock[B]) & Bit) &&
             "inconsistent givens");
      S.Board[R][C] = static_cast<signed char>(D + 1);
      S.PlacedRow[R] |= Bit;
      S.PlacedCol[C] |= Bit;
      S.PlacedBlock[B] |= Bit;
    }
  }
  for (int R = 0; R < N; ++R)
    for (int C = 0; C < N; ++C)
      if (!S.Board[R][C]) {
        S.FreeRow[S.NumFree] = static_cast<signed char>(R);
        S.FreeCol[S.NumFree] = static_cast<signed char>(C);
        ++S.NumFree;
      }
  return S;
}

/// Clears the cells selected by \p Keep (returns false to clear) from the
/// solved grid.
template <typename KeepFn> static std::string clearCells(KeepFn Keep) {
  std::string Grid(SolvedGrid);
  for (int R = 0; R < Sudoku::N; ++R)
    for (int C = 0; C < Sudoku::N; ++C)
      if (!Keep(R, C))
        Grid[static_cast<std::size_t>(R * Sudoku::N + C)] = '0';
  return Grid;
}

const char *Sudoku::instanceGrid(const std::string &Name) {
  // The instance grids are materialized once; the strings stay alive for
  // the process lifetime.
  static const std::string Balance =
      // The bottom four rows are free: the completions spread evenly over
      // a bushy tree of ~56k nodes (1284 solutions) — the scaled
      // input_balance workload.
      clearCells([](int R, int) { return R < 5; });
  static const std::string BalanceLarge =
      // Bottom five rows free: ~25M nodes, 636960 solutions — the
      // paper-scale balanced workload.
      clearCells([](int R, int) { return R < 4; });
  static const std::string Input1 =
      // Free cells concentrated at the top-left: the first free cells
      // explored own almost the whole subtree (strongly unbalanced,
      // left-heavy — the Figure 8 workload).
      clearCells([](int R, int C) { return R >= 4 || (R == 3 && C >= 5); });
  static const std::string Input2 =
      // Mirror image of input1: free cells at the bottom-right, making
      // the tree right-heavy under row-major search order.
      clearCells([](int R, int C) { return R < 5 || (R == 5 && C < 4); });
  if (Name == "balance" || Name == "input_balance")
    return Balance.c_str();
  if (Name == "balance-large")
    return BalanceLarge.c_str();
  if (Name == "input1")
    return Input1.c_str();
  if (Name == "input2")
    return Input2.c_str();
  if (Name == "solved")
    return SolvedGrid;
  reportFatalError("unknown Sudoku instance '" + Name +
                   "' (expected balance, balance-large, input1, input2, or "
                   "solved)");
}

Sudoku::State Sudoku::makeInstance(const std::string &Name) {
  return makeRoot(instanceGrid(Name));
}
