//===- problems/Sudoku.h - Sudoku solution counting -------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sudoku (Table 1, Appendix A): "find all solutions for a given grid."
/// The state mirrors the paper's Status_t — the 9x9 board plus per-row /
/// per-column / per-block placement masks — and is the taskprivate
/// workspace of the paper's running Appendix example. Search fills free
/// cells in row-major order; a choice is the digit placed.
///
/// Named instances (input_balance / input1 / input2) reproduce the
/// paper's experimental inputs in spirit: input_balance yields a fairly
/// balanced search tree; input1 and input2 concentrate the free cells so
/// the tree is strongly unbalanced (input1 is the Figure 8 workload).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_PROBLEMS_SUDOKU_H
#define ATC_PROBLEMS_SUDOKU_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

namespace atc {

/// Sudoku solution counting.
class Sudoku {
public:
  static constexpr int N = 9;
  static constexpr int Cells = N * N;

  struct State {
    int NumFree;
    signed char Board[N][N];        ///< 0 = empty, else digit 1..9.
    std::uint16_t PlacedRow[N];     ///< Digit bitmasks.
    std::uint16_t PlacedCol[N];
    std::uint16_t PlacedBlock[N];
    signed char FreeRow[Cells];
    signed char FreeCol[Cells];
  };
  using Result = long long;

  /// Builds a root state from an 81-character grid string in row-major
  /// order; '0' or '.' denotes an empty cell. Inconsistent givens are a
  /// programming error (asserted).
  static State makeRoot(const std::string &Grid);

  /// Named paper-style instances: "balance" (scaled input_balance),
  /// "balance-large" (paper-scale), "input1", "input2", "solved" (no
  /// free cells). Unknown names are a fatal error.
  static State makeInstance(const std::string &Name);

  /// Returns the grid string of a named instance.
  static const char *instanceGrid(const std::string &Name);

  bool isLeaf(const State &S, int Depth) const { return Depth == S.NumFree; }
  Result leafResult(const State &, int) const { return 1; }
  int numChoices(const State &, int) const { return N; }

  bool applyChoice(State &S, int Depth, int K) const {
    int R = S.FreeRow[Depth];
    int C = S.FreeCol[Depth];
    int B = blockOf(R, C);
    std::uint16_t Bit = static_cast<std::uint16_t>(1 << K);
    if ((S.PlacedRow[R] | S.PlacedCol[C] | S.PlacedBlock[B]) & Bit)
      return false;
    S.Board[R][C] = static_cast<signed char>(K + 1);
    S.PlacedRow[R] |= Bit;
    S.PlacedCol[C] |= Bit;
    S.PlacedBlock[B] |= Bit;
    return true;
  }

  void undoChoice(State &S, int Depth, int K) const {
    int R = S.FreeRow[Depth];
    int C = S.FreeCol[Depth];
    int B = blockOf(R, C);
    std::uint16_t Bit = static_cast<std::uint16_t>(~(1 << K));
    S.Board[R][C] = 0;
    S.PlacedRow[R] &= Bit;
    S.PlacedCol[C] &= Bit;
    S.PlacedBlock[B] &= Bit;
  }

  static int blockOf(int R, int C) { return (R / 3) * 3 + C / 3; }
};

} // namespace atc

#endif // ATC_PROBLEMS_SUDOKU_H
