//===- server/Job.cpp - Job schema for the scheduler service --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Job.h"

#include "problems/ProblemRegistry.h"
#include "trace/Json.h"

#include <cmath>
#include <cstdio>

using namespace atc;

const char *atc::jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  case JobState::Shed:
    return "shed";
  case JobState::Expired:
    return "expired";
  }
  return "?";
}

namespace {

/// Reads an integral JSON field, rejecting non-integers.
bool intField(const json::Value &Obj, const char *Key, long long &Out,
              std::string &Error) {
  const json::Value &V = Obj[Key];
  if (V.isNull())
    return true;
  if (!V.isNumber() || V.asNumber() != std::floor(V.asNumber())) {
    Error = std::string("field '") + Key + "' must be an integer";
    return false;
  }
  Out = static_cast<long long>(V.asNumber());
  return true;
}

} // namespace

std::string atc::escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

bool atc::parseJobSpec(const std::string &JsonText, JobSpec &Out,
                       std::string &Error) {
  json::Value Doc;
  if (!json::parse(JsonText, Doc, Error))
    return false;
  if (!Doc.isObject()) {
    Error = "job body must be a JSON object";
    return false;
  }

  JobSpec Spec;
  Spec.Problem = Doc["problem"].stringOr("");
  if (Spec.Problem.empty()) {
    Error = "missing required field 'problem'";
    return false;
  }

  long long Size = 0, Workers = 0, Cutoff = -1, DeadlineMs = 0;
  if (!intField(Doc, "size", Size, Error) ||
      !intField(Doc, "workers", Workers, Error) ||
      !intField(Doc, "cutoff", Cutoff, Error) ||
      !intField(Doc, "deadline_ms", DeadlineMs, Error))
    return false;
  Spec.Size = static_cast<int>(Size);
  Spec.Workers = static_cast<int>(Workers);
  Spec.Cutoff = static_cast<int>(Cutoff);
  Spec.DeadlineMs = DeadlineMs;
  if (Spec.Workers < 0) {
    Error = "field 'workers' must be >= 0";
    return false;
  }
  if (Spec.DeadlineMs < 0) {
    Error = "field 'deadline_ms' must be >= 0";
    return false;
  }

  std::string Tenant = Doc["tenant"].stringOr("default");
  if (Tenant.empty())
    Tenant = "default";
  Spec.Tenant = Tenant;

  std::string S;
  S = Doc["scheduler"].stringOr("adaptivetc");
  if (!parseSchedulerKind(S, Spec.Kind)) {
    Error = "unknown scheduler kind '" + S + "'";
    return false;
  }
  S = Doc["deque"].stringOr("the");
  if (!parseDequeKind(S, Spec.Deque)) {
    Error = "unknown deque kind '" + S + "'";
    return false;
  }
  S = Doc["steal"].stringOr("one");
  if (!parseStealPolicy(S, Spec.Steal)) {
    Error = "unknown steal policy '" + S + "'";
    return false;
  }
  S = Doc["victim"].stringOr("affinity");
  if (!parseVictimPolicy(S, Spec.Victim)) {
    Error = "unknown victim policy '" + S + "'";
    return false;
  }

  // "tuning": "on"|"off" on the wire; a JSON bool is accepted too.
  const json::Value &Tuning = Doc["tuning"];
  if (Tuning.isBool()) {
    Spec.Tuning = Tuning.asBool();
  } else {
    S = Tuning.stringOr("off");
    if (S == "on" || S == "true") {
      Spec.Tuning = true;
    } else if (S == "off" || S == "false") {
      Spec.Tuning = false;
    } else {
      Error = "field 'tuning' must be \"on\" or \"off\"";
      return false;
    }
  }

  // Validate problem kind + size by building (and discarding) a runner
  // shell — cheap for every kind but comp, whose arrays we accept as the
  // cost of full validation at admission rather than at dispatch.
  ProblemRunner Probe;
  if (!makeProblemRunner(Spec.Problem, Spec.Size, Probe, Error))
    return false;
  Spec.Problem = Probe.Kind; // canonical spelling
  Spec.Size = Probe.Size;    // default applied

  Out = Spec;
  return true;
}

std::string atc::jobSpecJson(const JobSpec &Spec) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "{\"problem\": \"%s\", \"size\": %d, \"tenant\": \"%s\", "
                "\"scheduler\": \"%s\", \"workers\": %d, \"deque\": \"%s\", "
                "\"steal\": \"%s\", \"victim\": \"%s\", \"cutoff\": %d, "
                "\"tuning\": \"%s\", \"deadline_ms\": %lld}",
                escapeJson(Spec.Problem).c_str(), Spec.Size,
                escapeJson(Spec.Tenant).c_str(),
                schedulerKindName(Spec.Kind), Spec.Workers,
                dequeKindName(Spec.Deque), stealPolicyName(Spec.Steal),
                victimPolicyName(Spec.Victim), Spec.Cutoff,
                Spec.Tuning ? "on" : "off",
                static_cast<long long>(Spec.DeadlineMs));
  return Buf;
}

std::string atc::jobRecordJson(const JobRecord &R) {
  std::string Out;
  Out.reserve(1024);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "{\"id\": %llu, \"state\": \"%s\", ",
                static_cast<unsigned long long>(R.Id), jobStateName(R.State));
  Out += Buf;
  Out += "\"spec\": " + jobSpecJson(R.Spec) + ", ";
  std::snprintf(Buf, sizeof(Buf),
                "\"value\": %lld, \"error\": \"%s\", \"queue_ns\": %llu, "
                "\"latency_ns\": %llu",
                R.Value, escapeJson(R.Error).c_str(),
                static_cast<unsigned long long>(R.queueNs()),
                static_cast<unsigned long long>(R.latencyNs()));
  Out += Buf;
  if (R.State == JobState::Done)
    Out += ", \"stats\": " + R.Stats.json();
  Out += "}";
  return Out;
}
