//===- server/Job.h - Job schema for the scheduler service ------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job schema of the scheduler-as-a-service layer: what a client
/// submits (JobSpec — a problem plus the scheduler configuration to run
/// it under), what the server tracks (JobRecord — spec + lifecycle state
/// + result + timings), and the JSON round trip both travel through on
/// the HTTP API.
///
/// Wire form of a spec (all fields beyond "problem" optional):
///
/// \code{.json}
///   {"problem": "nqueens-array", "size": 11, "tenant": "alice",
///    "scheduler": "adaptivetc", "workers": 4, "deque": "chaselev",
///    "steal": "one", "victim": "affinity", "cutoff": -1,
///    "tuning": "off", "deadline_ms": 2000}
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SERVER_JOB_H
#define ATC_SERVER_JOB_H

#include "core/Scheduler.h"
#include "core/SchedulerStats.h"

#include <cstdint>
#include <string>

namespace atc {

/// What a client asks the service to run.
struct JobSpec {
  std::string Problem;  ///< Registry kind name (problems/ProblemRegistry.h).
  int Size = 0;         ///< Problem size; 0 = the kind's scaled default.
  std::string Tenant = "default"; ///< Fair-dispatch queue key.

  SchedulerKind Kind = SchedulerKind::AdaptiveTC;
  int Workers = 0; ///< Worker threads; 0 = the server pool's full width.
  DequeKind Deque = DequeKind::The;
  StealPolicy Steal = StealPolicy::One;
  VictimPolicy Victim = VictimPolicy::Affinity;
  int Cutoff = -1; ///< Task-creation cut-off; -1 = runtime default.

  /// Arm the online tuning layer (SchedulerConfig::Tuning) for the run:
  /// Cutoff / the runtime's MaxStolenNum become initial values the
  /// per-worker controllers adapt from. Wire form: "tuning": "on"|"off"
  /// (JSON true/false also accepted). No-op in ATC_TUNING=OFF builds.
  bool Tuning = false;

  /// Queue-residency budget in milliseconds: a job still queued this long
  /// after submission is dropped as Expired instead of run. 0 = no
  /// deadline.
  std::int64_t DeadlineMs = 0;
};

/// Lifecycle of a submitted job.
enum class JobState {
  Queued,   ///< Accepted, waiting for the pool.
  Running,  ///< On the pool right now.
  Done,     ///< Completed; Value and Stats are valid.
  Failed,   ///< Rejected at dispatch (bad spec reached the runner).
  Shed,     ///< Refused at admission (queue full / backpressure).
  Expired,  ///< Deadline passed while queued; never ran.
};

/// Display name ("queued", "running", "done", "failed", "shed",
/// "expired").
const char *jobStateName(JobState S);

/// Everything the server knows about one job.
struct JobRecord {
  std::uint64_t Id = 0;
  JobSpec Spec;
  JobState State = JobState::Queued;
  long long Value = 0;     ///< Problem result (valid when Done).
  SchedulerStats Stats;    ///< Run stats (valid when Done).
  std::string Error;       ///< Failure/shed reason (Failed/Shed/Expired).
  std::uint64_t SubmitNs = 0; ///< Admission timestamp.
  std::uint64_t StartNs = 0;  ///< Dispatch timestamp (0 if never ran).
  std::uint64_t EndNs = 0;    ///< Completion timestamp (0 while open).

  /// Queue wait in nanoseconds (submit → dispatch, or submit → end for
  /// jobs that never ran).
  std::uint64_t queueNs() const {
    std::uint64_t Until = StartNs != 0 ? StartNs : EndNs;
    return Until > SubmitNs ? Until - SubmitNs : 0;
  }
  /// End-to-end latency in nanoseconds (submit → end).
  std::uint64_t latencyNs() const {
    return EndNs > SubmitNs ? EndNs - SubmitNs : 0;
  }
};

/// Escapes \p S for embedding inside a JSON string literal (backslash,
/// quote, newline, tab). Shared by the record renderers below and by
/// the server's error responses, which echo client-controlled text.
std::string escapeJson(const std::string &S);

/// Parses a JSON job body into \p Out. Validates the problem kind /
/// size against the registry and every enum against its parser; returns
/// false with a message in \p Error on any violation.
bool parseJobSpec(const std::string &JsonText, JobSpec &Out,
                  std::string &Error);

/// Renders \p Spec back to its wire form (canonical field order).
std::string jobSpecJson(const JobSpec &Spec);

/// Renders a full record: {"id", "state", "spec", "value", "error",
/// "queue_ns", "latency_ns", "stats": {...}} — the GET /result payload.
std::string jobRecordJson(const JobRecord &R);

} // namespace atc

#endif // ATC_SERVER_JOB_H
