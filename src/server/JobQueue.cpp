//===- server/JobQueue.cpp - Bounded fair job queue -----------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/JobQueue.h"

using namespace atc;

bool JobQueue::push(const std::string &Tenant, std::uint64_t Id) {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    if (Closed || Count >= MaxQueued)
      return false;
    Lanes[Tenant].push_back(Id);
    ++Count;
  }
  NotEmpty.notify_one();
  return true;
}

bool JobQueue::pop(std::uint64_t &Id) {
  std::unique_lock<std::mutex> Guard(Lock);
  NotEmpty.wait(Guard, [&] { return Count > 0 || Closed; });
  if (Count == 0)
    return false;

  // Round-robin: serve the first non-empty lane strictly after the
  // cursor, wrapping; empty lanes are erased so the scan is over live
  // tenants only.
  auto It = Lanes.upper_bound(Cursor);
  if (It == Lanes.end())
    It = Lanes.begin();
  // All remaining lanes are non-empty by invariant (erased when drained).
  Id = It->second.front();
  It->second.pop_front();
  --Count;
  Cursor = It->first;
  if (It->second.empty())
    Lanes.erase(It);
  return true;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Closed = true;
  }
  NotEmpty.notify_all();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Count;
}

std::size_t JobQueue::activeTenants() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Lanes.size();
}
