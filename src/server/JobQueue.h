//===- server/JobQueue.h - Bounded fair job queue ---------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job server's front-end queue: bounded admission plus per-tenant
/// fair dispatch. Each tenant gets its own FIFO lane; pop() round-robins
/// across the non-empty lanes, so one tenant flooding the server cannot
/// starve another — a tenant submitting 1000 jobs and a tenant
/// submitting 10 interleave 1:1 until the small lane drains. Within a
/// lane, order is strict FIFO.
///
/// Admission here is only the hard capacity cap; the softer
/// backpressure decision (deque-depth watermark) lives in the server,
/// which can see the live metrics registry.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SERVER_JOBQUEUE_H
#define ATC_SERVER_JOBQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace atc {

/// Bounded multi-tenant FIFO of job ids; see the file comment. The queue
/// holds ids, not records — record storage and state transitions belong
/// to the server's results table.
class JobQueue {
public:
  /// \p MaxQueued is the hard admission cap across all tenants.
  explicit JobQueue(std::size_t MaxQueued) : MaxQueued(MaxQueued) {}

  /// Enqueues \p Id on \p Tenant's lane. Returns false (and drops
  /// nothing) when the queue is at capacity or already closed.
  bool push(const std::string &Tenant, std::uint64_t Id);

  /// Blocks until a job is available or the queue is closed. Returns
  /// false on close-and-drained; otherwise fills \p Id with the next job
  /// in round-robin tenant order.
  bool pop(std::uint64_t &Id);

  /// Wakes all poppers; pop() keeps draining queued jobs, then starts
  /// returning false. push() refuses new work immediately.
  void close();

  /// Jobs currently queued (all tenants).
  std::size_t size() const;

  /// Tenants with a non-empty lane right now.
  std::size_t activeTenants() const;

private:
  const std::size_t MaxQueued;

  mutable std::mutex Lock;
  std::condition_variable NotEmpty;
  /// Tenant lanes. std::map keeps tenant iteration order stable so the
  /// round-robin cursor (the tenant name last served) is well-defined.
  std::map<std::string, std::deque<std::uint64_t>> Lanes;
  std::string Cursor; ///< Tenant served last; pop starts after it.
  std::size_t Count = 0;
  bool Closed = false;
};

} // namespace atc

#endif // ATC_SERVER_JOBQUEUE_H
