//===- server/Server.cpp - The scheduler-as-a-service job server ----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "metrics/Exposition.h"
#include "problems/ProblemRegistry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace atc;

namespace {

/// Emits one no-label histogram in Prometheus convention (cumulative le
/// buckets trimmed after the last non-empty one, +Inf, _sum, _count).
void renderJobHistogram(std::string &Out, const char *Name, const char *Help,
                        const HistogramCounts &H) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "# HELP %s %s\n# TYPE %s histogram\n",
                Name, Help, Name);
  Out += Buf;
  unsigned Last = 0;
  for (unsigned B = 0; B != NumLog2Buckets; ++B)
    if (H.Buckets[B] != 0)
      Last = B;
  std::uint64_t Cum = 0;
  for (unsigned B = 0; B <= Last; ++B) {
    Cum += H.Buckets[B];
    std::snprintf(Buf, sizeof(Buf), "%s_bucket{le=\"%llu\"} %llu\n", Name,
                  static_cast<unsigned long long>(log2BucketUpperBound(B)),
                  static_cast<unsigned long long>(Cum));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                Name, static_cast<unsigned long long>(H.Count), Name,
                static_cast<unsigned long long>(H.Sum), Name,
                static_cast<unsigned long long>(H.Count));
  Out += Buf;
}

bool isTerminal(JobState S) {
  return S != JobState::Queued && S != JobState::Running;
}

} // namespace

JobServer::JobServer(JobServerOptions O)
    : Opts(O), Pool(O.PoolThreads < 1 ? 1 : O.PoolThreads),
      Queue(O.MaxQueuedJobs) {
  // Long-lived registry: pre-sized to the pool so a sampler can attach
  // before the first job, history kept across the per-job resets the
  // runtime performs, epochs making those resets observable.
  Registry.ClearHistoryOnReset = false;
  Registry.reset(Pool.size());
  Registry.Meta.Source = "server";
  Registry.Meta.Workload = "idle";
}

JobServer::~JobServer() { stop(); }

bool JobServer::start() {
  if (Started)
    return true;
  if (Opts.HttpPort >= 0) {
    ListenFd = bindLoopbackListener(Opts.HttpPort, Port);
    if (ListenFd < 0)
      return false;
  }
  StopFlag.store(false, std::memory_order_release);
  Dispatcher = std::thread([this] { dispatcherMain(); });
  if (ListenFd >= 0) {
    int N = Opts.HttpThreads < 1 ? 1 : Opts.HttpThreads;
    for (int I = 0; I < N; ++I)
      HttpWorkers.emplace_back([this] { httpMain(); });
  }
  Started = true;
  return true;
}

void JobServer::stop() {
  if (!Started)
    return;
  Queue.close();
  StopFlag.store(true, std::memory_order_release);
  if (Dispatcher.joinable())
    Dispatcher.join();
  for (std::thread &T : HttpWorkers)
    T.join();
  HttpWorkers.clear();
  if (ListenFd >= 0) {
    closeFd(ListenFd);
    ListenFd = -1;
    Port = -1;
  }
  Started = false;
}

JobServer::SubmitResult JobServer::submit(const JobSpec &Spec) {
  SubmitResult Res;
  JobRecord R;
  R.Spec = Spec;
  R.SubmitNs = nowNanos();

  // Backpressure: past the soft queue watermark, consult the live
  // deque-depth gauges — a deep deque means the running job is still
  // producing work faster than the pool drains it, so adding queue depth
  // only grows latency. Shed early instead.
  std::string ShedReason;
  if (Opts.DequeDepthWatermark > 0 &&
      Queue.size() >= Opts.QueueSoftWatermark) {
    std::int64_t MaxDepth = 0;
    for (int W = 0; W != Registry.numWorkers(); ++W) {
      std::int64_t D = Registry.cell(W).dequeDepth();
      MaxDepth = D > MaxDepth ? D : MaxDepth;
    }
    if (MaxDepth > Opts.DequeDepthWatermark)
      ShedReason = "backpressure";
  }

  // The record must be visible in the results table BEFORE the id is
  // queued: the dispatcher can pop an id the instant push() releases it.
  R.State = JobState::Queued;
  {
    std::lock_guard<std::mutex> Guard(ResultsLock);
    R.Id = NextId++;
    if (ShedReason.empty())
      Results[R.Id] = R;
  }
  Res.Id = R.Id;

  if (ShedReason.empty()) {
    if (Queue.push(Spec.Tenant, R.Id)) {
      std::lock_guard<std::mutex> Guard(JobStatsLock);
      ++Submitted;
      Res.Accepted = true;
      return Res;
    }
    ShedReason = "queue-full";
  }

  R.State = JobState::Shed;
  R.Error = ShedReason;
  R.EndNs = nowNanos();
  {
    std::lock_guard<std::mutex> Guard(JobStatsLock);
    ++Submitted;
    ++Shed;
  }
  finishJob(R.Id, R);
  Res.Accepted = false;
  Res.Reason = ShedReason;
  return Res;
}

void JobServer::finishJob(std::uint64_t Id, const JobRecord &Terminal) {
  {
    std::lock_guard<std::mutex> Guard(ResultsLock);
    Results[Id] = Terminal;
    EvictFifo.push_back(Id);
    while (EvictFifo.size() > Opts.ResultCap) {
      Results.erase(EvictFifo.front());
      EvictFifo.pop_front();
    }
  }
  ResultChanged.notify_all();
}

void JobServer::runJob(std::uint64_t Id) {
  JobRecord R;
  {
    std::lock_guard<std::mutex> Guard(ResultsLock);
    auto It = Results.find(Id);
    if (It == Results.end())
      return; // evicted while queued (result cap far below queue cap)
    R = It->second;
  }

  std::uint64_t Now = nowNanos();
  if (R.Spec.DeadlineMs > 0 &&
      Now - R.SubmitNs >
          static_cast<std::uint64_t>(R.Spec.DeadlineMs) * 1000000ULL) {
    R.State = JobState::Expired;
    R.Error = "deadline passed while queued";
    R.EndNs = Now;
    {
      std::lock_guard<std::mutex> Guard(JobStatsLock);
      ++Expired;
    }
    finishJob(Id, R);
    return;
  }

  ProblemRunner Runner;
  std::string Err;
  if (!makeProblemRunner(R.Spec.Problem, R.Spec.Size, Runner, Err)) {
    R.State = JobState::Failed;
    R.Error = Err;
    R.EndNs = nowNanos();
    {
      std::lock_guard<std::mutex> Guard(JobStatsLock);
      ++Failed;
    }
    finishJob(Id, R);
    return;
  }

  SchedulerConfig Cfg;
  Cfg.Kind = R.Spec.Kind;
  Cfg.NumWorkers = R.Spec.Workers <= 0 ? Pool.size() : R.Spec.Workers;
  if (Cfg.NumWorkers > Pool.size())
    Cfg.NumWorkers = Pool.size();
  Cfg.Deque = R.Spec.Deque;
  Cfg.Steal = R.Spec.Steal;
  Cfg.Victim = R.Spec.Victim;
  Cfg.Cutoff = R.Spec.Cutoff;
  Cfg.Tuning = R.Spec.Tuning;
  Cfg.Executor = &Pool;
  Cfg.MetricsSink = &Registry;

  R.State = JobState::Running;
  R.StartNs = nowNanos();
  {
    std::lock_guard<std::mutex> Guard(ResultsLock);
    auto It = Results.find(Id);
    if (It != Results.end())
      It->second = R;
    ++RunningCount;
  }
  {
    std::lock_guard<std::mutex> Guard(MetaLock);
    Registry.Meta.Scheduler = schedulerKindName(Cfg.Kind);
    Registry.Meta.Workload = Runner.Workload;
  }

  RunResult<long long> Run = Runner.Run(Cfg);

  R.Value = Run.Value;
  R.Stats = Run.Stats;
  R.State = JobState::Done;
  R.EndNs = nowNanos();
  {
    std::lock_guard<std::mutex> Guard(ResultsLock);
    --RunningCount;
  }
  {
    std::lock_guard<std::mutex> Guard(JobStatsLock);
    ++Completed;
    JobLatencyNs.record(R.latencyNs());
    JobQueueNs.record(R.queueNs());
    JobRunNs.record(R.EndNs - R.StartNs);
  }
  finishJob(Id, R);
}

void JobServer::dispatcherMain() {
  std::uint64_t Id;
  // pop() drains queued jobs even after close(), so stop() is a
  // graceful drain by construction.
  while (Queue.pop(Id))
    runJob(Id);
}

bool JobServer::getResult(std::uint64_t Id, JobRecord &Out) const {
  std::lock_guard<std::mutex> Guard(ResultsLock);
  auto It = Results.find(Id);
  if (It == Results.end())
    return false;
  Out = It->second;
  return true;
}

bool JobServer::waitResult(std::uint64_t Id, JobRecord &Out, int TimeoutMs) {
  std::unique_lock<std::mutex> Guard(ResultsLock);
  auto Terminal = [&]() -> bool {
    auto It = Results.find(Id);
    return It != Results.end() && isTerminal(It->second.State);
  };
  if (!ResultChanged.wait_for(Guard, std::chrono::milliseconds(TimeoutMs),
                              Terminal))
    return false;
  Out = Results[Id];
  return true;
}

JobServer::Totals JobServer::totals() const {
  Totals T;
  {
    std::lock_guard<std::mutex> Guard(JobStatsLock);
    T.Submitted = Submitted;
    T.Completed = Completed;
    T.Failed = Failed;
    T.Shed = Shed;
    T.Expired = Expired;
  }
  T.Queued = Queue.size();
  {
    std::lock_guard<std::mutex> Guard(ResultsLock);
    T.Running = RunningCount;
  }
  return T;
}

double JobServer::latencyQuantileNs(double Q) const {
  std::lock_guard<std::mutex> Guard(JobStatsLock);
  return JobLatencyNs.quantile(Q);
}

std::string JobServer::metricsText() const {
  // Worker-level exposition from a fresh registry sample (includes
  // atc_epoch, which ticks once per job on this server), then the job
  // layer on top.
  MetricsMeta Meta;
  {
    std::lock_guard<std::mutex> Guard(MetaLock);
    Meta = Registry.Meta;
  }
  std::string Out = renderPrometheus(Registry.sample(), Meta);

  Totals T = totals();
  char Buf[256];
  auto Counter = [&](const char *Name, const char *Help, std::uint64_t V) {
    std::snprintf(Buf, sizeof(Buf),
                  "# HELP %s %s\n# TYPE %s counter\n%s %llu\n", Name, Help,
                  Name, Name, static_cast<unsigned long long>(V));
    Out += Buf;
  };
  auto Gauge = [&](const char *Name, const char *Help, std::uint64_t V) {
    std::snprintf(Buf, sizeof(Buf),
                  "# HELP %s %s\n# TYPE %s gauge\n%s %llu\n", Name, Help,
                  Name, Name, static_cast<unsigned long long>(V));
    Out += Buf;
  };
  Counter("atc_jobs_submitted_total", "Jobs submitted (shed included)",
          T.Submitted);
  Counter("atc_jobs_completed_total", "Jobs run to completion", T.Completed);
  Counter("atc_jobs_failed_total", "Jobs rejected at dispatch", T.Failed);
  Counter("atc_jobs_shed_total", "Jobs refused at admission", T.Shed);
  Counter("atc_jobs_expired_total", "Jobs whose deadline passed while queued",
          T.Expired);
  Gauge("atc_jobs_queued", "Jobs waiting for the pool", T.Queued);
  Gauge("atc_jobs_running", "Jobs on the pool right now", T.Running);
  Gauge("atc_pool_threads", "Persistent pool width",
        static_cast<std::uint64_t>(Pool.size()));

  std::lock_guard<std::mutex> Guard(JobStatsLock);
  renderJobHistogram(Out, "atc_job_latency_ns",
                     "End-to-end job latency (submit to done)",
                     JobLatencyNs);
  renderJobHistogram(Out, "atc_job_queue_ns",
                     "Queue residency (submit to dispatch)", JobQueueNs);
  renderJobHistogram(Out, "atc_job_run_ns", "Execution time on the pool",
                     JobRunNs);
  return Out;
}

std::string JobServer::statsJson() const {
  Totals T = totals();
  double P50, P99;
  {
    std::lock_guard<std::mutex> Guard(JobStatsLock);
    P50 = JobLatencyNs.quantile(0.50);
    P99 = JobLatencyNs.quantile(0.99);
  }
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"submitted\": %llu, \"completed\": %llu, \"failed\": %llu, "
      "\"shed\": %llu, \"expired\": %llu, \"queued\": %zu, "
      "\"running\": %zu, \"pool_threads\": %d, \"jobs_dispatched\": %llu, "
      "\"epoch\": %llu, \"p50_latency_ns\": %.1f, \"p99_latency_ns\": %.1f}",
      static_cast<unsigned long long>(T.Submitted),
      static_cast<unsigned long long>(T.Completed),
      static_cast<unsigned long long>(T.Failed),
      static_cast<unsigned long long>(T.Shed),
      static_cast<unsigned long long>(T.Expired), T.Queued, T.Running,
      Pool.size(), static_cast<unsigned long long>(Pool.jobsRun()),
      static_cast<unsigned long long>(Registry.epoch()), P50, P99);
  return Buf;
}

std::string JobServer::handleRequest(const HttpRequest &Req, int &Status,
                                     std::string &ContentType) {
  Status = 200;
  ContentType = "application/json";

  if (Req.Method == "POST" && Req.Path == "/job") {
    JobSpec Spec;
    std::string Err;
    if (!parseJobSpec(Req.Body, Spec, Err)) {
      Status = 400;
      // Err can echo client input (unknown problem/scheduler names).
      return "{\"error\": \"" + escapeJson(Err) + "\"}";
    }
    SubmitResult R = submit(Spec);
    char Buf[160];
    if (R.Accepted) {
      std::snprintf(Buf, sizeof(Buf),
                    "{\"id\": %llu, \"state\": \"queued\"}",
                    static_cast<unsigned long long>(R.Id));
    } else {
      Status = 429;
      std::snprintf(Buf, sizeof(Buf),
                    "{\"id\": %llu, \"state\": \"shed\", \"reason\": "
                    "\"%s\"}",
                    static_cast<unsigned long long>(R.Id), R.Reason.c_str());
    }
    return Buf;
  }

  if (Req.Method == "GET" && Req.Path.rfind("/result/", 0) == 0) {
    std::string Rest = Req.Path.substr(8);
    long long WaitMs = 0;
    std::size_t Q = Rest.find('?');
    if (Q != std::string::npos) {
      std::string Query = Rest.substr(Q + 1);
      Rest = Rest.substr(0, Q);
      if (Query.rfind("wait=", 0) == 0)
        WaitMs = std::atoll(Query.c_str() + 5);
    }
    std::uint64_t Id = std::strtoull(Rest.c_str(), nullptr, 10);
    JobRecord R;
    if (WaitMs > 0) {
      if (!waitResult(Id, R, static_cast<int>(WaitMs)) &&
          !getResult(Id, R)) {
        Status = 404;
        return "{\"error\": \"unknown job id\"}";
      }
    } else if (!getResult(Id, R)) {
      Status = 404;
      return "{\"error\": \"unknown job id\"}";
    }
    return jobRecordJson(R);
  }

  if (Req.Method == "GET" && Req.Path == "/healthz") {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"ok\": true, \"pool_threads\": %d, \"queued\": %zu}",
                  Pool.size(), Queue.size());
    return Buf;
  }

  if (Req.Method == "GET" && Req.Path == "/metrics") {
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
    return metricsText();
  }

  if (Req.Method == "GET" && Req.Path == "/stats")
    return statsJson();

  if (Req.Method == "POST" && Req.Path == "/shutdown") {
    ShutdownFlag.store(true, std::memory_order_release);
    return "{\"ok\": true, \"state\": \"draining\"}";
  }

  Status = 404;
  return "{\"error\": \"no such endpoint\"}";
}

void JobServer::httpMain() {
  while (!StopFlag.load(std::memory_order_acquire)) {
    int Client = acceptOne(ListenFd, /*TimeoutMs=*/100);
    if (Client < 0)
      continue;
    HttpRequest Req;
    if (readHttpRequest(Client, Req)) {
      int Status;
      std::string ContentType;
      std::string Body = handleRequest(Req, Status, ContentType);
      writeHttpResponse(Client, Status, ContentType, Body);
    } else {
      writeHttpResponse(Client, 400, "application/json",
                        "{\"error\": \"malformed request\"}");
    }
    closeFd(Client);
  }
}
