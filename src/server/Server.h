//===- server/Server.h - The scheduler-as-a-service job server --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JobServer ties the service layer together: a persistent SchedulerPool
/// (core/SchedulerPool.h) executes jobs back-to-back on the same OS
/// threads, a JobQueue admits and fair-orders them, a long-lived
/// MetricsRegistry (history kept across jobs, epoch ticking once per
/// job) feeds the /metrics exposition, and an optional loopback HTTP
/// front end serves the wire API:
///
///   POST /job          submit a JobSpec (server/Job.h); 200 = accepted
///                      {"id": N}, 429 = shed, 400 = malformed
///   GET  /result/<id>  fetch a record; ?wait=<ms> long-polls until the
///                      job reaches a terminal state
///   GET  /healthz      liveness: {"ok": true, ...}
///   GET  /metrics      Prometheus exposition: worker registry + job
///                      counters + job latency histograms
///   GET  /stats        JSON totals incl. p50/p99 job latency
///   POST /shutdown     request a graceful stop (drain, then exit)
///
/// Admission control is two-layered: the queue's hard capacity cap
/// (shed reason "queue-full"), and a deque-depth watermark — when the
/// queue is already past its soft watermark AND the live per-worker
/// deque depth (read from the metrics registry, no extra plumbing)
/// exceeds DequeDepthWatermark, new jobs are shed as "backpressure"
/// before they ever queue. Shed jobs still get a record, so no
/// submission is ever silently lost.
///
/// Everything HTTP does goes through the in-process API (submit /
/// waitResult / totals), which tests and embedders call directly.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SERVER_SERVER_H
#define ATC_SERVER_SERVER_H

#include "core/SchedulerPool.h"
#include "metrics/Metrics.h"
#include "metrics/MetricsRegistry.h"
#include "server/Job.h"
#include "server/JobQueue.h"
#include "support/LoopbackHttp.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace atc {

/// Server sizing and policy knobs.
struct JobServerOptions {
  int PoolThreads = 4; ///< Width of the persistent worker pool.

  /// HTTP port: -1 = in-process API only, 0 = pick an ephemeral port
  /// (read it back with httpPort()), else bind exactly this port.
  int HttpPort = -1;

  /// HTTP serving threads. More than one because GET /result?wait=ms
  /// long-polls hold a connection open; a single serving thread would
  /// serialize every waiting client behind the slowest job.
  int HttpThreads = 8;

  std::size_t MaxQueuedJobs = 256; ///< Hard admission cap ("queue-full").

  /// Soft queue watermark: at or past this depth the deque-depth check
  /// below starts applying.
  std::size_t QueueSoftWatermark = 64;

  /// Live deque-depth watermark for backpressure shedding; 0 disables
  /// the check. See the file comment.
  std::int64_t DequeDepthWatermark = 0;

  /// Terminal job records retained before FIFO eviction.
  std::size_t ResultCap = 8192;
};

/// The job server; see the file comment.
class JobServer {
public:
  explicit JobServer(JobServerOptions Opts);

  /// Stops (drains) if still running.
  ~JobServer();

  JobServer(const JobServer &) = delete;
  JobServer &operator=(const JobServer &) = delete;

  /// Starts the dispatcher (and the HTTP listener when configured).
  /// Returns false if the HTTP port cannot be bound.
  bool start();

  /// Graceful drain: stops admitting, runs every already-queued job to
  /// completion, then joins the dispatcher and HTTP threads. Idempotent.
  void stop();

  /// The bound HTTP port, or -1 when HTTP is off / not started.
  int httpPort() const { return Port; }

  /// True once a client POSTed /shutdown (the serving tool's exit cue).
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_acquire);
  }

  /// Outcome of submit(): accepted with an id, or shed with a reason
  /// ("queue-full" / "backpressure"). Shed submissions also get an id
  /// and a terminal record.
  struct SubmitResult {
    bool Accepted = false;
    std::uint64_t Id = 0;
    std::string Reason;
  };

  /// In-process submission (what POST /job calls).
  SubmitResult submit(const JobSpec &Spec);

  /// Copies out job \p Id's record as it is right now. False = unknown
  /// id (never assigned or evicted).
  bool getResult(std::uint64_t Id, JobRecord &Out) const;

  /// Blocks until job \p Id reaches a terminal state, up to
  /// \p TimeoutMs. Returns false on unknown id or timeout.
  bool waitResult(std::uint64_t Id, JobRecord &Out, int TimeoutMs);

  /// Monotonic service totals.
  struct Totals {
    std::uint64_t Submitted = 0; ///< All submissions, shed included.
    std::uint64_t Completed = 0;
    std::uint64_t Failed = 0;
    std::uint64_t Shed = 0;
    std::uint64_t Expired = 0;
    std::size_t Queued = 0;  ///< Currently waiting.
    std::size_t Running = 0; ///< 0 or 1 (one pool, one team).
  };
  Totals totals() const;

  /// Latency quantile over completed jobs, in nanoseconds (Q in [0,1]).
  double latencyQuantileNs(double Q) const;

  /// The full Prometheus exposition (what GET /metrics serves).
  std::string metricsText() const;

  /// The JSON totals document (what GET /stats serves).
  std::string statsJson() const;

  SchedulerPool &pool() { return Pool; }
  MetricsRegistry &registry() { return Registry; }

private:
  void dispatcherMain();
  void httpMain();
  void runJob(std::uint64_t Id);
  void finishJob(std::uint64_t Id, const JobRecord &Terminal);
  std::string handleRequest(const HttpRequest &Req, int &Status,
                            std::string &ContentType);

  JobServerOptions Opts;
  SchedulerPool Pool;
  MetricsRegistry Registry;
  JobQueue Queue;

  std::thread Dispatcher;
  std::vector<std::thread> HttpWorkers;
  mutable std::mutex MetaLock; ///< Guards Registry.Meta (dispatcher writes
                               ///  per job, /metrics reads).
  int ListenFd = -1;
  int Port = -1;
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> ShutdownFlag{false};
  bool Started = false;

  mutable std::mutex ResultsLock;
  std::condition_variable ResultChanged;
  std::uint64_t NextId = 1;
  std::map<std::uint64_t, JobRecord> Results;
  std::deque<std::uint64_t> EvictFifo; ///< Terminal ids, oldest first.
  std::size_t RunningCount = 0;

  mutable std::mutex JobStatsLock;
  std::uint64_t Submitted = 0, Completed = 0, Failed = 0, Shed = 0,
                Expired = 0;
  HistogramCounts JobLatencyNs; ///< Submit → done, completed jobs only.
  HistogramCounts JobQueueNs;   ///< Submit → dispatch.
  HistogramCounts JobRunNs;     ///< Dispatch → done.
};

} // namespace atc

#endif // ATC_SERVER_SERVER_H
