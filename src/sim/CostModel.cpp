//===- sim/CostModel.cpp - Virtual-time cost model ------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CostModel.h"

#include "deque/TheDeque.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <memory>

using namespace atc;

std::string CostModel::describe() const {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "node=%.0fns task=%.0fns deque=%.0fns alloc=%.0fns "
                "copy=%.3fns/B state=%dB poll=%.0fns tascell_frame=%.0fns "
                "steal=%.0fns cas_steal=%.0fns steal_fail=%.0fns "
                "rtt=%.0fns backtrack=%.0fns sleep=%.0fns",
                NodeWorkNs, TaskCreateNs, DequeOpNs, AllocNs, CopyNsPerByte,
                StateBytes, PollNs, TascellFrameNs, StealNs, CasStealNs,
                StealFailNs, RequestRoundTripNs, BacktrackStepNs, SleepNs);
  return Buf;
}

namespace {

/// Times \p Fn over \p Iters iterations and returns ns per iteration.
template <typename FnT> double perIterationNs(int Iters, FnT &&Fn) {
  std::uint64_t Begin = nowNanos();
  for (int I = 0; I < Iters; ++I)
    Fn(I);
  return static_cast<double>(nowNanos() - Begin) /
         static_cast<double>(Iters);
}

} // namespace

CostModel CostModel::calibrate() {
  CostModel M;
  constexpr int Iters = 20000;

  // Frame-sized allocation + free (task creation).
  M.TaskCreateNs = perIterationNs(Iters, [](int) {
    void *P = ::operator new(192);
    // Touch so the allocation is not elided.
    static_cast<volatile char *>(P)[0] = 1;
    ::operator delete(P);
  });

  // THE deque push + pop pair.
  {
    TheDeque D(64);
    M.DequeOpNs = perIterationNs(Iters, [&D](int) {
      D.tryPush(&D);
      (void)D.pop();
    });
  }

  // Workspace allocation.
  M.AllocNs = perIterationNs(Iters, [](int) {
    void *P = ::operator new(128);
    static_cast<volatile char *>(P)[0] = 1;
    ::operator delete(P);
  });

  // memcpy per byte over a cache-resident 4 KiB buffer.
  {
    constexpr int Bytes = 4096;
    auto Src = std::make_unique<char[]>(Bytes);
    auto Dst = std::make_unique<char[]>(Bytes);
    std::memset(Src.get(), 1, Bytes);
    double PerCopy = perIterationNs(Iters, [&](int) {
      std::memcpy(Dst.get(), Src.get(), Bytes);
      static_cast<volatile char *>(Dst.get())[0] = Dst[0];
    });
    M.CopyNsPerByte = PerCopy / Bytes;
  }

  return M;
}
