//===- sim/CostModel.h - Virtual-time cost model ----------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-operation virtual-time costs charged by the simulator. The host
/// this reproduction runs on has a single core, so the paper's 8-thread
/// speedup figures cannot be observed in wall-clock time; the simulator
/// replays the scheduling policies over computation trees in virtual
/// time instead (see DESIGN.md, "Substitutions"). Defaults are in the
/// ballpark of the real runtime's measured single-thread costs;
/// calibrate() refines them against live micro-measurements so the
/// Table-2-style overhead ratios carry into the simulated figures.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SIM_COSTMODEL_H
#define ATC_SIM_COSTMODEL_H

#include <string>

namespace atc {

/// Virtual-time costs (nanoseconds).
struct CostModel {
  /// Compute per tree node (the benchmark's real work). The paper sets
  /// "the execution time of each node to the average time of the task in
  /// the benchmarks".
  double NodeWorkNs = 150;

  /// Task frame allocate + free + bookkeeping (every task in Cilk; only
  /// shallow tasks in AdaptiveTC/Cutoff).
  double TaskCreateNs = 70;

  /// One deque push + pop pair (THE protocol fast path).
  double DequeOpNs = 30;

  /// Fresh workspace allocation (Cilk's malloc/alloca per child; saved by
  /// SYNCHED's reuse and by AdaptiveTC's pooling).
  double AllocNs = 45;

  /// Workspace memcpy, per byte.
  double CopyNsPerByte = 0.06;

  /// Bytes in the taskprivate workspace (the chessboard / grid).
  int StateBytes = 64;

  /// One need_task poll (AdaptiveTC check version) or request-mailbox
  /// poll (Tascell) — a relaxed load plus a branch, plus the check
  /// version's bookkeeping around it (Table 2 puts AdaptiveTC's 1-thread
  /// overhead at 1.04-1.2x of sequential).
  double PollNs = 10;

  /// Tascell's per-call nested-function management (choice-point
  /// push/pop on the shadow stack). Table 2 measures Tascell's 1-thread
  /// overhead at 1.13-1.6x of sequential — substantially more than a bare
  /// poll.
  double TascellFrameNs = 40;

  /// Thief-side cost of a successful steal (lock + restore) on the THE
  /// deque.
  double StealNs = 400;

  /// Thief-side cost of a successful CAS-claim steal (the lock-free
  /// deques: atomic, chaselev). One seq_cst compare-exchange plus the
  /// frame restore — no lock round trip, so cheaper than StealNs
  /// (micro_deque's contended-steal benches are the ballpark source).
  double CasStealNs = 250;

  /// Thief-side cost of a failed steal attempt.
  double StealFailNs = 120;

  /// Tascell request/response round trip (victim notices at its next
  /// poll; the requester additionally pays wake-up latency).
  double RequestRoundTripNs = 20'000;

  /// Tascell temporary backtracking: one undo or redo step while
  /// reconstructing an ancestor workspace.
  double BacktrackStepNs = 35;

  /// Special-task creation (frame + push; AdaptiveTC check version).
  double SpecialTaskNs = 100;

  /// Sleep quantum used by waiting loops (the paper's usleep(100)).
  double SleepNs = 100'000;

  /// Renders the parameters for experiment logs.
  std::string describe() const;

  /// Measures TaskCreateNs / DequeOpNs / AllocNs / CopyNsPerByte on the
  /// live host with small timing loops and returns an adjusted model.
  /// NodeWorkNs and StateBytes are workload properties — set them from
  /// the benchmark being reproduced.
  static CostModel calibrate();
};

} // namespace atc

#endif // ATC_SIM_COSTMODEL_H
