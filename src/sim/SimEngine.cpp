//===- sim/SimEngine.cpp - Virtual-time scheduling simulator --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/SimEngine.h"
#include "core/kernel/TaskCreationPolicy.h"
#include "core/tuning/TuningController.h"
#include "metrics/MetricsRegistry.h"
#include "support/Compiler.h"
#include "support/Prng.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>

using namespace atc;

namespace {

// Frames dispatch (and cost) their children per the shared Figure 2 FSM:
// CodeVersion::Fast spawns tasks up to the cut-off, Fast2 up to the
// doubled cut-off, Check runs fake tasks that poll need_task, and
// Sequence covers plain recursion (and Tascell / Sequential, whose
// dispatchChild edge is always a non-spawning Sequence edge).

/// Completion-tracking job: counts unprocessed nodes of a donated /
/// special subtree so waiters know when their children are done.
struct Job {
  long long Remaining;
  Job *Parent;
};

/// One open loop level of a simulated worker.
struct SimFrame {
  std::vector<SimTreeNode> Kids;
  int Next = 0;
  int End = 0;
  CodeVersion Mode = CodeVersion::Sequence;
  int Dp = 0;             ///< Spawn depth of the node that owns this level.
  bool Stealable = false;
  bool SpecialMade = false;      ///< ATC: special task already created here.
  bool TraceWaiting = false;     ///< Trace: WaitChildrenBegin emitted.
  std::vector<Job *> WaitJobs;   ///< Jobs to await before popping.
  Job *NodeJob = nullptr;        ///< Innermost job the level's nodes count
                                 ///< against.
};

/// A Tascell donation in flight.
struct SimResponse {
  bool Deny = true;
  double ReadyAt = 0;
  SimFrame Frame; ///< Valid when !Deny.
};

struct SimWorker {
  explicit SimWorker(std::uint64_t Seed) : Rng(Seed) {}

  /// Virtual-time trace ring, or null when the sim run is untraced.
  TraceBuffer *TB = nullptr;

  /// Virtual-time metrics cell, or null when the sim run is unmetered.
  WorkerMetricsCell *MC = nullptr;

  /// Online tuning controller, or null when the sim run is untuned —
  /// the exact controller the real runtime uses, driven on this worker's
  /// virtual clock (SimOptions::Tuning).
  TuningController *Tune = nullptr;

  /// Per-worker counter mirror, kept in the runtime's SchedulerStats
  /// vocabulary so the metrics snapshot of a sim run carries the same
  /// fields as a real run (the SimReport globals are sums of these).
  SchedulerStats Stats;

  double Now = 0;
  double LastProductive = 0;
  double IdleStart = -1; ///< Virtual time this worker went idle, or -1.
  std::vector<SimFrame> Stack;
  SplitMix64 Rng;
  SimBreakdown B;

  // AdaptiveTC signalling.
  int StolenNum = 0;
  bool NeedTask = false;

  int FailStreak = 0;

  /// Last victim a steal (or donation) succeeded against, or -1; the
  /// Affinity victim policy retries it first, as in the runtime kernel.
  int LastVictim = -1;

  // Tascell.
  std::vector<int> Mailbox; ///< Requester ids, serviced one per poll.
  int WaitingOn = -1;       ///< Victim id while a request is pending.
  bool PendingAffine = false; ///< Pending request went to LastVictim.
  bool HasResponse = false;
  SimResponse Response;

  /// Count of stealable frames with untried siblings (deque pressure).
  int OpenStealable = 0;
};

/// The simulator proper.
class Simulator {
public:
  Simulator(const SimTree &Tree, const SimOptions &Opts,
            const CostModel &Costs, TraceLog *Log, MetricsRegistry *Metrics)
      : Tree(Tree), Opts(Opts), C(Costs), CutoffDepth(Opts.effectiveCutoff()) {
    for (int I = 0; I < Opts.NumWorkers; ++I)
      Workers.emplace_back(Opts.Seed + static_cast<std::uint64_t>(I));
#if ATC_TRACE_ENABLED
    if (Log && Log->numWorkers() >= Opts.NumWorkers) {
      Log->Meta.Scheduler = schedulerKindName(Opts.Kind);
      Log->Meta.Source = "sim";
      for (int I = 0; I < Opts.NumWorkers; ++I)
        Workers[static_cast<std::size_t>(I)].TB = &Log->buffer(I);
    }
#else
    (void)Log;
#endif
#if ATC_METRICS_ENABLED
#if ATC_TUNING_ENABLED
    // The controllers' only inputs are the metrics cells, so a tuned sim
    // with no caller-provided registry arms a private one.
    if (Opts.Tuning && !Metrics) {
      OwnReg = std::make_unique<MetricsRegistry>();
      Metrics = OwnReg.get();
    }
#endif
    if (Metrics) {
      Metrics->reset(Opts.NumWorkers);
      Metrics->Meta.Scheduler = schedulerKindName(Opts.Kind);
      Metrics->Meta.Source = "sim";
      for (int I = 0; I < Opts.NumWorkers; ++I) {
        WorkerMetricsCell &Cell = Metrics->cell(I);
        Cell.begin(0); // virtual clocks start at t = 0
        Workers[static_cast<std::size_t>(I)].MC = &Cell;
      }
#if ATC_TUNING_ENABLED
      if (Opts.Tuning) {
        for (int I = 0; I < Opts.NumWorkers; ++I) {
          auto T = std::make_unique<TuningController>();
          T->arm(CutoffDepth, Opts.MaxStolenNum, Opts.Tune);
          T->publishTo(Metrics->cell(I));
          Workers[static_cast<std::size_t>(I)].Tune = T.get();
          Tuners.push_back(std::move(T));
        }
      }
#endif
    }
#else
    (void)Metrics;
#endif
  }

  SimReport run();

private:
  bool isDequeKind() const {
    return Opts.Kind == SchedulerKind::Cilk ||
           Opts.Kind == SchedulerKind::CilkSynched ||
           Opts.Kind == SchedulerKind::Cutoff ||
           Opts.Kind == SchedulerKind::AdaptiveTC;
  }

  void step(int Wi);
  void visitChild(SimWorker &W);
  void frameEnd(SimWorker &W);
  void idleStep(int Wi);
  void dequeStealAttempt(int Wi);
  void tascellIdle(int Wi);
  void tascellPoll(int Wi);
  Job *newJob(long long Remaining, Job *Parent) {
    JobArena.push_back({Remaining, Parent});
    return &JobArena.back();
  }
  static bool jobsDone(const SimFrame &F) {
    for (const Job *J : F.WaitJobs)
      if (J->Remaining > 0)
        return false;
    return true;
  }
  void chargeSpawn(SimWorker &W, bool IsSpecial);
  int randomVictim(SimWorker &W, int Self);
  int pickVictim(SimWorker &W, int Self, bool &Affine);

  /// Thief-side cost of a successful claim for the configured deque kind
  /// (THE lock round trip vs lock-free CAS).
  double stealClaimNs() const {
    return Opts.Deque == DequeKind::The ? C.StealNs : C.CasStealNs;
  }

  /// Mirrors \p W's stealable-frame count into its metrics cell — the sim
  /// analogue of the deques' depth gauge — and tracks the high-water.
  void publishSimDepth(SimWorker &W) {
    if (W.OpenStealable > W.Stats.DequeHighWater)
      W.Stats.DequeHighWater = W.OpenStealable;
    ATC_METRIC(W.MC, dequeDepthGauge().store(W.OpenStealable,
                                             std::memory_order_relaxed));
  }

  /// Emits \p K on \p W's ring stamped with its virtual clock.
  void emit([[maybe_unused]] SimWorker &W,
            [[maybe_unused]] TraceEventKind K,
            [[maybe_unused]] std::uint32_t A = 0,
            [[maybe_unused]] std::uint16_t B = 0) {
    ATC_TRACE_EVENT_AT(W.TB, static_cast<std::uint64_t>(W.Now), K, A, B);
  }

  /// Re-derives \p W's mode from its stack top and records the change, if
  /// any, on both the trace ring and the metrics cell. Called once per
  /// step so virtual-time spans track the frame structure the way
  /// TraceModeScope tracks the real call structure.
  void syncTraceMode(SimWorker &W) {
#if ATC_TRACE_ENABLED || ATC_METRICS_ENABLED
    if (ATC_UNLIKELY(W.TB != nullptr || W.MC != nullptr)) {
      TraceMode M;
      if (W.Stack.empty()) {
        M = TraceMode::Idle;
      } else {
        const SimFrame &F = W.Stack.back();
        if (F.Next >= F.End && !F.WaitJobs.empty() && !jobsDone(F))
          M = TraceMode::SyncWait;
        else if (Opts.Kind == SchedulerKind::Tascell)
          M = TraceMode::Work;
        else
          M = traceModeFor(F.Mode);
      }
#if ATC_TRACE_ENABLED
      if (W.TB)
        W.TB->setModeAt(static_cast<std::uint64_t>(W.Now), M);
#endif
      ATC_METRIC(W.MC, setModeAt(static_cast<std::uint64_t>(W.Now), M));
    }
#else
    (void)W;
#endif
  }

  const SimTree &Tree;
  const SimOptions Opts;
  const CostModel &C;
  const int CutoffDepth;

  std::vector<SimWorker> Workers;
#if ATC_TUNING_ENABLED
  /// Per-worker controllers when Opts.Tuning armed the run; OwnReg backs
  /// them with cells when the caller passed no registry.
  std::vector<std::unique_ptr<TuningController>> Tuners;
  std::unique_ptr<MetricsRegistry> OwnReg;
#endif
  std::deque<Job> JobArena;
  std::vector<SimTreeNode> KidsScratch;

  long long Processed = 0;
  SimReport R;
};

int Simulator::randomVictim(SimWorker &W, int Self) {
  int V = static_cast<int>(
      W.Rng.nextBelow(static_cast<std::uint64_t>(Opts.NumWorkers - 1)));
  if (V >= Self)
    ++V;
  return V;
}

/// Same policy ladder as the runtime kernel's pickVictim
/// (core/kernel/WorkerRuntime.h): Affinity retries the last successful
/// victim, Partitioned confines the search to the worker's group until a
/// failure streak of twice the group span escalates it globally.
int Simulator::pickVictim(SimWorker &W, int Self, bool &Affine) {
  switch (Opts.Victim) {
  case VictimPolicy::Affinity: {
    int V = W.LastVictim;
    if (V >= 0 && V != Self) {
      Affine = true;
      return V;
    }
    return randomVictim(W, Self);
  }
  case VictimPolicy::Random:
    return randomVictim(W, Self);
  case VictimPolicy::Partitioned: {
    const int G = Opts.VictimGroupSize > 1 ? Opts.VictimGroupSize : 1;
    const int Lo = (Self / G) * G;
    const int Span = Lo + G <= Opts.NumWorkers ? G : Opts.NumWorkers - Lo;
    if (Span >= 2 && W.FailStreak < 2 * Span) {
      int V = Lo + static_cast<int>(W.Rng.nextBelow(
                       static_cast<std::uint64_t>(Span - 1)));
      if (V >= Self)
        ++V;
      return V;
    }
    return randomVictim(W, Self);
  }
  }
  ATC_UNREACHABLE("unhandled victim policy");
}

void Simulator::chargeSpawn(SimWorker &W, bool IsSpecial) {
  double Ns = C.TaskCreateNs + C.DequeOpNs +
              C.CopyNsPerByte * C.StateBytes;
  if (Opts.Kind == SchedulerKind::Cilk)
    Ns += C.AllocNs; // SYNCHED/pooled kinds reuse workspace memory
  if (IsSpecial)
    Ns += C.SpecialTaskNs;
  W.Now += Ns;
  W.B.OverheadNs += Ns;
  ++R.TasksCreated;
  ++R.Copies;
  ++W.Stats.TasksCreated;
  ++W.Stats.Spawns;
  ++W.Stats.WorkspaceCopies;
  W.Stats.CopiedBytes += static_cast<std::uint64_t>(C.StateBytes);
  ATC_METRIC(W.MC, SpawnCostNs.record(static_cast<std::uint64_t>(Ns)));
}

SimReport Simulator::run() {
  R = SimReport();
  R.PerWorker.assign(static_cast<std::size_t>(Opts.NumWorkers), {});
  R.SerialNs = static_cast<double>(Tree.spec().TotalNodes) * C.NodeWorkNs;

  // Worker 0 visits the root.
  {
    SimWorker &W = Workers[0];
    W.Now += C.NodeWorkNs;
    W.B.WorkNs += C.NodeWorkNs;
    ++Processed;
    SimTreeNode Root = Tree.root();
    Tree.children(Root, KidsScratch);
    if (!KidsScratch.empty()) {
      SimFrame F;
      F.Kids = KidsScratch;
      F.End = static_cast<int>(F.Kids.size());
      F.Dp = 0;
      switch (Opts.Kind) {
      case SchedulerKind::Cilk:
      case SchedulerKind::CilkSynched:
      case SchedulerKind::Cutoff:
      case SchedulerKind::AdaptiveTC:
        F.Mode = CodeVersion::Fast;
        F.Stealable = true;
        W.OpenStealable = 1;
        R.MaxStealableFrames = 1;
        publishSimDepth(W);
        chargeSpawn(W, false); // the root task itself
        emit(W, TraceEventKind::SpawnReal,
             static_cast<std::uint32_t>(F.Mode), 0);
        break;
      case SchedulerKind::Tascell:
      case SchedulerKind::Sequential:
        F.Mode = CodeVersion::Sequence;
        break;
      }
      W.Stack.push_back(std::move(F));
    }
    W.LastProductive = W.Now;
  }

  // Min-time stepping until every stack has drained.
  for (;;) {
    int Best = -1;
    double BestNow = std::numeric_limits<double>::max();
    for (int I = 0; I < Opts.NumWorkers; ++I) {
      SimWorker &W = Workers[I];
      bool Active = !W.Stack.empty() ||
                    (Processed < Tree.spec().TotalNodes) ||
                    W.WaitingOn != -1;
      if (Active && W.Now < BestNow) {
        BestNow = W.Now;
        Best = I;
      }
    }
    if (Best < 0)
      break;
#ifdef ATC_SIM_TRACE
    static long long StepCount = 0;
    if (++StepCount % 10000000 == 0) {
      std::fprintf(stderr, "steps=%lldM processed=%lld/%lld best=w%d now=%.0f stack=%zu\n",
                   StepCount/1000000, Processed, Tree.spec().TotalNodes, Best,
                   Workers[Best].Now, Workers[Best].Stack.size());
    }
#endif
    assert((Processed < Tree.spec().TotalNodes ||
            !Workers[static_cast<std::size_t>(Best)].Stack.empty() ||
            Workers[static_cast<std::size_t>(Best)].WaitingOn != -1) &&
           "active worker with nothing to do");
    step(Best);
  }
  assert(Processed == Tree.spec().TotalNodes &&
         "simulation lost track of nodes (tree sizes must partition)");

  for (int I = 0; I < Opts.NumWorkers; ++I) {
    SimWorker &W = Workers[static_cast<std::size_t>(I)];
    R.PerWorker[static_cast<std::size_t>(I)] = W.B;
    R.Total += W.B;
    R.MakespanNs = std::max(R.MakespanNs, W.LastProductive);
    // Final exact publish: after this the registry's aggregate equals the
    // SimReport counters (the same contract the real runtime keeps with
    // SchedulerStats).
    syncTraceMode(W);
    ATC_METRIC(W.MC, publishStats(W.Stats));
#if ATC_TUNING_ENABLED
    if (W.Tune) {
      W.Tune->publishTo(*W.MC); // final knob gauges match the report
      R.TuneAdjustments += W.Tune->adjustments();
      R.TuneWindows += W.Tune->windowsEvaluated();
      if (I == 0) {
        R.FinalCutoff = W.Tune->cutoff();
        R.FinalMaxStolen = W.Tune->maxStolenNum();
        R.FinalBackoffShift = W.Tune->backoffShift();
      }
    }
#endif
  }
  R.NodesProcessed = Processed;
  return R;
}

void Simulator::step(int Wi) {
  SimWorker &W = Workers[static_cast<std::size_t>(Wi)];
  if (W.Stack.empty()) {
    if (W.IdleStart < 0)
      W.IdleStart = W.Now;
    syncTraceMode(W); // idle span begins before the attempt's events
    idleStep(Wi);
    if (!W.Stack.empty() && W.IdleStart >= 0) {
      // Acquired work: the whole empty-stack span was steal latency.
      double Waited = W.Now - W.IdleStart;
      W.IdleStart = -1;
      W.Stats.StealWaitNs += static_cast<std::uint64_t>(Waited);
      ATC_METRIC(W.MC, StealLatencyNs.record(
                           static_cast<std::uint64_t>(Waited)));
      ATC_METRIC(W.MC, publishStats(W.Stats));
      // Thief-side tune point, mirroring the kernel steal loop's.
      ATC_TUNE(W.Tune,
               maybeTune(static_cast<std::uint64_t>(W.Now), *W.MC));
    }
    syncTraceMode(W);
    return;
  }
  if (Opts.Kind == SchedulerKind::Tascell)
    tascellPoll(Wi);
  SimFrame &F = W.Stack.back();
  if (F.Next < F.End)
    visitChild(W);
  else
    frameEnd(W);
  syncTraceMode(W);
}

void Simulator::visitChild(SimWorker &W) {
  SimFrame &F = W.Stack.back();
  SimTreeNode Node = F.Kids[static_cast<std::size_t>(F.Next++)];

  // Determine the child's dispatch (edge) from the parent frame's mode
  // via the shared FSM/policy table, then translate the transition into
  // the simulator's cost charges.
  // A tuned worker dispatches against its controller's live cut-off, the
  // exact analogue of FramePolicy::dispatchChild re-reading the knob.
  const FsmTransition T = dispatchChild(
      Opts.Kind, liveCutoff(W.Tune, CutoffDepth), F.Mode, F.Dp, W.NeedTask);
  const CodeVersion ChildMode = T.Child;
  const int ChildDp = T.ChildDp;
  const bool Spawned = T.SpawnTask;  // real task: frame + deque + copy
  const bool ChildStealable = Spawned && isDequeKind();
  bool Special = false;              // ATC special-task transition
  Job *ChildJob = F.NodeJob;

  // The FSM flags a poll on check-version edges; the fast version's
  // over-cutoff edge (Fast -> Check) also tests need_task once in the
  // generated code, so charge it too.
  const bool Polled =
      T.PolledNeedTask ||
      (F.Mode == CodeVersion::Fast && T.Child == CodeVersion::Check);

  if (T.SpecialPush) {
    // Publish: create a special task for this level (once) and run the
    // child through fast_2 with the spawn depth reset to 0. The child's
    // whole subtree is tracked by a job the special must await
    // (sync_specialtask).
    Special = !F.SpecialMade;
    F.SpecialMade = true;
    ChildJob = newJob(Node.Size - 1, F.NodeJob);
    F.WaitJobs.push_back(ChildJob);
    if (Special) {
      ++R.SpecialTasks;
      ++W.Stats.SpecialTasks;
      ATC_METRIC(W.MC, recordReseed(static_cast<std::uint64_t>(W.Now)));
      // Owner-side tune point, mirroring FramePolicy's reseed branch:
      // flush the mirror so the window the controller closes sees the
      // reseed it just recorded.
      ATC_METRIC(W.MC, publishStats(W.Stats));
      ATC_TUNE(W.Tune,
               maybeTune(static_cast<std::uint64_t>(W.Now), *W.MC));
      emit(W, TraceEventKind::NeedTaskObserve, 0,
           static_cast<std::uint16_t>(W.Stack.size()));
    }
    emit(W, TraceEventKind::SpecialPush, 0,
         static_cast<std::uint16_t>(W.Stack.size()));
  }

  if (Opts.Kind == SchedulerKind::Cutoff && !Spawned &&
      Opts.CutoffCopiesEverywhere) {
    // Cutoff-library: workspace copying is not elided below the cut-off
    // (no taskprivate support in the runtime).
    double Ns = C.AllocNs + C.CopyNsPerByte * C.StateBytes;
    W.Now += Ns;
    W.B.OverheadNs += Ns;
    ++R.Copies;
    ++W.Stats.WorkspaceCopies;
    W.Stats.CopiedBytes += static_cast<std::uint64_t>(C.StateBytes);
  }

  // Charge the node's work and the edge overheads.
  W.Now += C.NodeWorkNs;
  W.B.WorkNs += C.NodeWorkNs;
  if (Spawned) {
    chargeSpawn(W, Special);
    ATC_METRIC(W.MC, DequeDepth.record(
                         static_cast<std::uint64_t>(W.OpenStealable)));
    emit(W, TraceEventKind::SpawnReal,
         static_cast<std::uint32_t>(ChildMode),
         static_cast<std::uint16_t>(W.Stack.size()));
  } else {
    ++R.FakeNodes;
    ++W.Stats.FakeTasks;
    // As in the real runtime: one spawn-fake per fake-task subtree entry,
    // not per node (R.FakeNodes has the exact count).
    if (ChildMode == CodeVersion::Check && F.Mode != CodeVersion::Check)
      emit(W, TraceEventKind::SpawnFake, 0,
           static_cast<std::uint16_t>(W.Stack.size()));
  }
  if (Polled || Opts.Kind == SchedulerKind::Tascell) {
    W.Now += C.PollNs;
    W.B.PollNs += C.PollNs;
    ++W.Stats.Polls;
  }
  if (Opts.Kind == SchedulerKind::Tascell) {
    // Nested-function (choice point) management on the shadow stack.
    W.Now += C.TascellFrameNs;
    W.B.OverheadNs += C.TascellFrameNs;
  }

  // Account the node against its completion jobs. A job created here (an
  // ATC publish) was sized to the node's *descendants*, so the node
  // itself only counts against the enclosing chain.
  ++Processed;
  for (Job *J = F.NodeJob; J; J = J->Parent)
    --J->Remaining;

  W.LastProductive = W.Now;
  if (F.Stealable && F.Next == F.End) {
    --W.OpenStealable; // level exhausted: no longer steal material
    publishSimDepth(W);
  }

  // Expand and push the child's level.
  Tree.children(Node, KidsScratch);
  if (KidsScratch.empty())
    return;
  SimFrame NF;
  NF.Kids = KidsScratch;
  NF.End = static_cast<int>(NF.Kids.size());
  NF.Mode = ChildMode;
  NF.Dp = ChildDp;
  NF.Stealable = ChildStealable;
  NF.NodeJob = ChildJob;
  if (NF.Stealable) {
    ++W.OpenStealable;
    R.MaxStealableFrames = std::max(R.MaxStealableFrames, W.OpenStealable);
    publishSimDepth(W);
  }
  W.Stack.push_back(std::move(NF));
}

void Simulator::frameEnd(SimWorker &W) {
  SimFrame &F = W.Stack.back();
  if (!F.WaitJobs.empty() && !jobsDone(F)) {
    if (!F.TraceWaiting) {
      F.TraceWaiting = true;
      emit(W, TraceEventKind::WaitChildrenBegin, 0,
           static_cast<std::uint16_t>(W.Stack.size()));
    }
    // sync_specialtask / Tascell wait_children: cannot suspend; sleep and
    // re-check (usleep(100) in the real systems).
    W.Now += C.SleepNs;
    W.B.WaitChildrenNs += C.SleepNs;
    W.Stats.WaitChildrenNs += static_cast<std::uint64_t>(C.SleepNs);
    return;
  }
  if (F.TraceWaiting)
    emit(W, TraceEventKind::WaitChildrenEnd, 0,
         static_cast<std::uint16_t>(W.Stack.size()));
  if (!F.WaitJobs.empty())
    W.LastProductive = W.Now; // children joined: result materializes now
  W.Stack.pop_back();
}

void Simulator::idleStep(int Wi) {
  if (Opts.Kind == SchedulerKind::Tascell) {
    tascellIdle(Wi);
    return;
  }
  dequeStealAttempt(Wi);
}

void Simulator::dequeStealAttempt(int Wi) {
  SimWorker &W = Workers[static_cast<std::size_t>(Wi)];
  if (Opts.NumWorkers == 1) {
    W.Now += C.StealFailNs;
    return;
  }
  bool Affine = false;
  int Vi = pickVictim(W, Wi, Affine);
  SimWorker &V = Workers[static_cast<std::size_t>(Vi)];
  ++W.Stats.StealAttempts;
  emit(W, TraceEventKind::StealAttempt, static_cast<std::uint32_t>(Vi));

  // Oldest stealable frame with untried siblings. The victim's *top*
  // frame's next child is not stealable: in the real runtime the deque
  // entry is the continuation of an in-flight spawn, so the child the
  // victim is about to execute is never exposed (taking it would let two
  // idle workers ping-pong a continuation without ever running a node).
  SimFrame *Target = nullptr;
  int StealBegin = 0;
  for (std::size_t I = 0; I < V.Stack.size(); ++I) {
    SimFrame &F = V.Stack[I];
    bool IsTop = (I + 1 == V.Stack.size());
    int Begin = F.Next + (IsTop ? 1 : 0);
    if (F.Stealable && Begin < F.End) {
      Target = &F;
      StealBegin = Begin;
      break;
    }
  }

  if (!Target) {
    ++R.StealFails;
    ++W.Stats.StealFails;
    ++W.FailStreak;
    W.LastVictim = -1;
    // Light backoff only: Cilk-style thieves retry at memory-latency
    // timescales; aggressive sleeping would starve the need_task
    // signalling path (stolen_num accumulates per failed attempt). The
    // linear ramp's cap maps the runtime's backoff-shift knob onto the
    // sim's scale — (1 << shift) * 20 / 128 reproduces the historical
    // cap of 20 at the default shift of 7 exactly.
    double Ns = C.StealFailNs;
    if (W.FailStreak > 8) {
      const int RampCap =
          std::max(1, (1 << liveBackoffShift(W.Tune)) * 20 / 128);
      Ns += 100.0 * std::min(W.FailStreak - 8, RampCap);
    }
    W.Now += Ns;
    W.B.IdleNs += Ns;
    emit(W, TraceEventKind::StealFail, static_cast<std::uint32_t>(Vi));
#if ATC_TUNING_ENABLED
    if (W.Tune && (W.FailStreak & 15) == 0) {
      // Starving-thief tune point, mirroring the kernel steal loop's.
      ATC_METRIC(W.MC, publishStats(W.Stats));
      W.Tune->maybeTune(static_cast<std::uint64_t>(W.Now), *W.MC);
    }
#endif
    // The failed-steal threshold guards the *victim*, so a tuned
    // victim's live knob replaces the run constant (as in acquireOnce).
    const int Threshold = liveMaxStolen(V.Tune, Opts.MaxStolenNum);
    if (Opts.Kind == SchedulerKind::AdaptiveTC &&
        ++V.StolenNum > Threshold) {
      V.NeedTask = true;
      ATC_METRIC(V.MC, setNeedTask(true));
      if (V.StolenNum == Threshold + 1)
        emit(W, TraceEventKind::NeedTaskRaise,
             static_cast<std::uint32_t>(Vi));
    }
    return;
  }

  // Steal the continuation: the whole untried range moves to the thief.
  ++R.Steals;
  ++W.Stats.Steals;
  if (Affine)
    ++W.Stats.AffinityHits;
  W.FailStreak = 0;
  W.LastVictim = Vi;
  V.StolenNum = 0;
  V.NeedTask = false;
  ATC_METRIC(V.MC, setNeedTask(false));
  W.Now += stealClaimNs();
  W.B.IdleNs += stealClaimNs();
  emit(W, TraceEventKind::StealSuccess, static_cast<std::uint32_t>(Vi));

  /// Detaches the untried range [Begin, F.End) of the victim frame \p F
  /// as a fresh thief frame on \p W's stack.
  auto takeRange = [&](SimFrame &F, int Begin) {
    SimFrame TF;
    TF.Kids.assign(F.Kids.begin() + Begin, F.Kids.begin() + F.End);
    TF.End = static_cast<int>(TF.Kids.size());
    // The slow version dispatches children through the fast/check rule
    // regardless of which version originally spawned the task — so a
    // stolen fast_2 continuation re-enters poll-capable fast mode.
    TF.Mode = CodeVersion::Fast;
    TF.Dp = F.Dp;
    TF.Stealable = true;
    TF.NodeJob = F.NodeJob;
    F.End = Begin; // victim keeps only its in-flight child
    if (F.Next >= F.End) {
      --V.OpenStealable;
      publishSimDepth(V);
    }
    ++W.OpenStealable;
    R.MaxStealableFrames = std::max(R.MaxStealableFrames, W.OpenStealable);
    publishSimDepth(W);
    W.Stack.push_back(std::move(TF));
  };

  // Steal-half: in the same raid, claim up to half of the victim's other
  // stealable continuations (each one more CAS / deque op, no extra
  // victim-selection round), bounded by MaxStolenNum — the kernel's
  // FramePolicy::stealExtra. Claimed *before* the primary so the oldest
  // continuation ends on top of the thief's stack and runs first, the
  // extras waiting below exactly like the kernel's stash.
  if (Opts.Steal == StealPolicy::Half) {
    std::vector<std::size_t> Later;
    for (std::size_t I = 0; I < V.Stack.size(); ++I) {
      SimFrame &F = V.Stack[I];
      if (&F == Target)
        continue;
      bool IsTop = (I + 1 == V.Stack.size());
      if (F.Stealable && F.Next + (IsTop ? 1 : 0) < F.End)
        Later.push_back(I);
    }
    int Extra = static_cast<int>(Later.size()) / 2;
    // Thief's live knob bounds its own batch, as in stealExtra.
    const int MaxStolen = liveMaxStolen(W.Tune, Opts.MaxStolenNum);
    const int Cap = (MaxStolen > 1 ? MaxStolen : 1) - 1;
    if (Extra > Cap)
      Extra = Cap;
    // Youngest extras first so older continuations sit higher on the
    // thief's stack (it drains oldest-first).
    for (int I = 0; I < Extra; ++I) {
      std::size_t Idx = Later[Later.size() - 1 - static_cast<std::size_t>(I)];
      SimFrame &F = V.Stack[Idx];
      bool IsTop = (Idx + 1 == V.Stack.size());
      takeRange(F, F.Next + (IsTop ? 1 : 0));
      ++R.Steals;
      ++W.Stats.Steals;
      ++W.Stats.StealAttempts;
      ++W.Stats.BatchSteals;
      W.Now += C.DequeOpNs;
      W.B.IdleNs += C.DequeOpNs;
    }
  }

  takeRange(*Target, StealBegin);
  W.LastProductive = W.Now;
}

void Simulator::tascellIdle(int Wi) {
  SimWorker &W = Workers[static_cast<std::size_t>(Wi)];
  if (Opts.NumWorkers == 1) {
    W.Now += C.SleepNs;
    return;
  }

  // All work done: abandon any pending request so the run can terminate
  // (the real runtime's Done flag).
  if (Processed >= Tree.spec().TotalNodes) {
    W.WaitingOn = -1;
    return;
  }

  if (W.WaitingOn < 0) {
    // Post a request to a victim chosen by the configured policy.
    bool Affine = false;
    int Vi = pickVictim(W, Wi, Affine);
    Workers[static_cast<std::size_t>(Vi)].Mailbox.push_back(Wi);
    W.WaitingOn = Vi;
    W.PendingAffine = Affine;
    W.HasResponse = false;
    ++R.Requests;
    ++W.Stats.Requests;
    ++W.Stats.StealAttempts;
    W.Now += C.PollNs;
    emit(W, TraceEventKind::StealAttempt, static_cast<std::uint32_t>(Vi));
    return;
  }

  if (W.HasResponse && W.Now >= W.Response.ReadyAt) {
    int Vi = W.WaitingOn;
    W.WaitingOn = -1;
    if (W.Response.Deny) {
      ++R.StealFails;
      ++W.Stats.StealFails;
      ++W.FailStreak;
      W.LastVictim = -1;
      W.B.IdleNs += C.RequestRoundTripNs;
      W.Now += C.RequestRoundTripNs;
      emit(W, TraceEventKind::StealFail, static_cast<std::uint32_t>(Vi));
      return;
    }
    ++R.Steals;
    ++W.Stats.Steals;
    if (W.PendingAffine)
      ++W.Stats.AffinityHits;
    W.FailStreak = 0;
    W.LastVictim = Vi;
    W.Now = std::max(W.Now, W.Response.ReadyAt) + C.RequestRoundTripNs;
    W.B.IdleNs += C.RequestRoundTripNs;
    W.Stack.push_back(std::move(W.Response.Frame));
    W.LastProductive = W.Now;
    emit(W, TraceEventKind::StealSuccess, static_cast<std::uint32_t>(Vi));
    return;
  }

  // Still waiting: sleep-poll (also answer our own mailbox with denials
  // so idle workers do not deadlock on each other).
  for (int Req : W.Mailbox) {
    SimWorker &Rq = Workers[static_cast<std::size_t>(Req)];
    Rq.HasResponse = true;
    Rq.Response.Deny = true;
    Rq.Response.ReadyAt = W.Now;
    ++R.RequestsDenied;
    ++W.Stats.RequestsDenied;
  }
  W.Mailbox.clear();
  double Ns = C.SleepNs / 2;
  W.Now += Ns;
  W.B.IdleNs += Ns;
}

void Simulator::tascellPoll(int Wi) {
  SimWorker &W = Workers[static_cast<std::size_t>(Wi)];
  if (W.Mailbox.empty())
    return;
  int Req = W.Mailbox.back();
  W.Mailbox.pop_back();
  SimWorker &Rq = Workers[static_cast<std::size_t>(Req)];

  // Oldest level with untried choices.
  std::size_t Split = W.Stack.size();
  for (std::size_t I = 0; I < W.Stack.size(); ++I)
    if (W.Stack[I].Next < W.Stack[I].End) {
      Split = I;
      break;
    }
  if (Split == W.Stack.size()) {
    Rq.HasResponse = true;
    Rq.Response.Deny = true;
    Rq.Response.ReadyAt = W.Now;
    ++R.RequestsDenied;
    ++W.Stats.RequestsDenied;
    return;
  }

  SimFrame &F = W.Stack[Split];
  int Untried = F.End - F.Next;
  int Give = (Untried + 1) / 2;

  // Temporary backtracking: undo/redo down to the split level + one
  // workspace copy.
  double Cost = 2.0 * static_cast<double>(W.Stack.size() - Split) *
                    C.BacktrackStepNs +
                C.CopyNsPerByte * C.StateBytes;
  W.Now += Cost;
  W.B.OverheadNs += Cost;
  ++R.Copies;
  ++W.Stats.WorkspaceCopies;
  W.Stats.CopiedBytes += static_cast<std::uint64_t>(C.StateBytes);
  W.Stats.BacktrackSteps += 2 * (W.Stack.size() - Split);
  ATC_METRIC(W.MC, SpawnCostNs.record(static_cast<std::uint64_t>(Cost)));

  long long DonatedNodes = 0;
  SimFrame DF;
  DF.Kids.assign(F.Kids.begin() + (F.End - Give), F.Kids.begin() + F.End);
  for (const SimTreeNode &K : DF.Kids)
    DonatedNodes += K.Size;
  DF.End = static_cast<int>(DF.Kids.size());
  DF.Mode = CodeVersion::Sequence;
  Job *J = newJob(DonatedNodes, F.NodeJob);
  DF.NodeJob = J;
  F.WaitJobs.push_back(J);
  F.End -= Give;

  Rq.HasResponse = true;
  Rq.Response.Deny = false;
  Rq.Response.ReadyAt = W.Now;
  Rq.Response.Frame = std::move(DF);
  // Victim-side record, as in TascellPolicy::respond.
  emit(W, TraceEventKind::Donation, static_cast<std::uint32_t>(Req),
       static_cast<std::uint16_t>(Split));
}

} // namespace

SimReport atc::simulate(const SimTree &Tree, const SimOptions &Opts,
                        const CostModel &Costs, TraceLog *Log,
                        MetricsRegistry *Metrics) {
  Simulator S(Tree, Opts, Costs, Log, Metrics);
  return S.run();
}
