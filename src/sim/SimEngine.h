//===- sim/SimEngine.h - Virtual-time scheduling simulator ------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic discrete-event simulator that replays the paper's
/// scheduling systems (Cilk, Cilk-SYNCHED, Cutoff, AdaptiveTC, Tascell)
/// over implicit computation trees in virtual time. This is the
/// substitution (DESIGN.md) for the paper's 8-core testbed: the host here
/// has one core, so multi-thread speedups are computed from the policies'
/// virtual-time makespans instead of wall clock.
///
/// Model summary (one simulated event per tree node):
///  * Each virtual worker runs a depth-first traversal over an explicit
///    stack of frames (open loop levels). Visiting a node charges the
///    node's work plus the policy's per-spawn overhead (task creation,
///    deque ops, workspace copy, polling) from the CostModel.
///  * Deque policies steal the *continuation* of the oldest stealable
///    frame (the untried sibling range), exactly like the real
///    the frame engine. Tascell posts requests that the victim answers at its
///    next poll by temporarily backtracking and donating half of the
///    untried choices of its oldest open level.
///  * AdaptiveTC's check region polls a need_task flag set by repeatedly
///    failing thieves; a publish creates a special task whose subtree is
///    tracked by a completion job — the publisher must wait at the end of
///    the check level for stolen parts (sync_specialtask). Tascell choice
///    points similarly wait for their donations (it cannot suspend).
///  * Workers advance in min-virtual-time order. A thief acting at time t
///    observes the victim's current stack (which may reflect actions up
///    to the victim's own, later, clock) — a bounded anachronism that is
///    irrelevant at the timescales of the reproduced phenomena.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SIM_SIMENGINE_H
#define ATC_SIM_SIMENGINE_H

#include "core/Scheduler.h"
#include "core/tuning/TuningController.h"
#include "sim/CostModel.h"
#include "sim/TreeGen.h"
#include "trace/TraceLog.h"

#include <cstdint>
#include <vector>

namespace atc {

class MetricsRegistry;

/// Simulation parameters.
struct SimOptions {
  SchedulerKind Kind = SchedulerKind::AdaptiveTC;
  int NumWorkers = 8;

  /// Task-creation cut-off; -1 selects ceil(log2(NumWorkers)), as in the
  /// paper's runtime ("Cutoff-library"); a non-negative value plays the
  /// "Cutoff-programmer" role for Kind == Cutoff.
  int Cutoff = -1;

  /// Failed-steal threshold before need_task is raised (paper: 20).
  /// Also bounds a steal-half batch, as in SchedulerConfig::MaxStolenNum.
  int MaxStolenNum = 20;

  /// Deque kind the virtual workers are modelled with. The index
  /// protocol is invisible at this abstraction level; what carries into
  /// virtual time is the thief-side claim cost (CostModel::StealNs for
  /// the THE lock round trip, CostModel::CasStealNs for the lock-free
  /// CAS deques).
  DequeKind Deque = DequeKind::The;

  /// Steal-one vs steal-half (each extra continuation claimed in the
  /// same raid costs only a deque operation), as in
  /// SchedulerConfig::Steal. Deque-based kinds only; Tascell donations
  /// are always half-splits.
  StealPolicy Steal = StealPolicy::One;

  /// Victim ordering for idle workers, as in SchedulerConfig::Victim.
  /// The sim's historical default is uniform random (the committed
  /// fig6/fig8/fig10 records were produced with it), so Random stays the
  /// default here even though the real runtime defaults to Affinity.
  VictimPolicy Victim = VictimPolicy::Random;

  /// Group width for VictimPolicy::Partitioned.
  int VictimGroupSize = 4;

  /// Arm the online tuning layer: each virtual worker gets the same
  /// TuningController as the real runtime (core/tuning), driven on its
  /// *virtual* clock — Cutoff / MaxStolenNum above become initial values
  /// and the controller's rules are exercised deterministically. Needs a
  /// build with ATC_TUNING=ON and ATC_METRICS=ON (the controllers read
  /// the metrics cells; the simulator arms a private registry when the
  /// caller passed none); compiled-out builds ignore the flag.
  bool Tuning = false;

  /// Rule constants and knob bounds for the armed controllers; the
  /// defaults are the shipped TuningLimits. Lets experiments (and the
  /// ablation harness) sweep the rule space without rebuilding.
  TuningLimits Tune;

  /// Models the paper's "Cutoff-library" variant, where "the cost of
  /// workspace copying cannot be reduced": the runtime, lacking the
  /// taskprivate attribute, still allocates and copies the workspace for
  /// every call below the cut-off. Only meaningful for Kind == Cutoff.
  bool CutoffCopiesEverywhere = false;

  std::uint64_t Seed = 0x51D;

  int effectiveCutoff() const {
    if (Cutoff >= 0)
      return Cutoff;
    int Log = 0;
    while ((1 << Log) < NumWorkers)
      ++Log;
    return Log;
  }
};

/// Per-worker virtual-time breakdown (the paper's Figures 6 and 7).
struct SimBreakdown {
  double WorkNs = 0;         ///< Real node work.
  double OverheadNs = 0;     ///< Task creation + deque + copies.
  double PollNs = 0;         ///< need_task / mailbox polling.
  double IdleNs = 0;         ///< Failed stealing / waiting for responses.
  double WaitChildrenNs = 0; ///< Blocked on outstanding children.

  SimBreakdown &operator+=(const SimBreakdown &O) {
    WorkNs += O.WorkNs;
    OverheadNs += O.OverheadNs;
    PollNs += O.PollNs;
    IdleNs += O.IdleNs;
    WaitChildrenNs += O.WaitChildrenNs;
    return *this;
  }

  double totalNs() const {
    return WorkNs + OverheadNs + PollNs + IdleNs + WaitChildrenNs;
  }
};

/// Simulation outcome.
struct SimReport {
  double MakespanNs = 0;
  double SerialNs = 0; ///< TotalNodes * NodeWorkNs (the "serial C" time).
  long long NodesProcessed = 0;

  double speedup() const { return SerialNs / MakespanNs; }

  SimBreakdown Total;
  std::vector<SimBreakdown> PerWorker;

  std::uint64_t TasksCreated = 0;
  std::uint64_t FakeNodes = 0;
  std::uint64_t SpecialTasks = 0;
  std::uint64_t Steals = 0;
  std::uint64_t StealFails = 0;
  std::uint64_t Copies = 0;
  std::uint64_t Requests = 0;
  std::uint64_t RequestsDenied = 0;
  int MaxStealableFrames = 0; ///< Deque-pressure high-water mark.

  // Online-tuning outcome (zero unless SimOptions::Tuning armed
  // controllers): total knob adjustments and rule windows evaluated
  // across workers, and worker 0's final knob values — enough for the
  // ablation bench and the deterministic rule tests without a registry.
  std::uint64_t TuneAdjustments = 0;
  std::uint64_t TuneWindows = 0;
  int FinalCutoff = 0;
  int FinalMaxStolen = 0;
  int FinalBackoffShift = 0;
};

/// Runs the simulation of \p Opts.Kind over \p Tree with costs \p Costs.
/// Deterministic in (Tree, Opts, Costs).
///
/// When \p Log is non-null (and was built with Opts.NumWorkers buffers),
/// the simulated workers emit the same event schema as the real runtime
/// (trace/TraceEvent.h) stamped with their *virtual* clocks — paper-scale
/// multi-thread figures become loadable in Perfetto even though the sim
/// runs on one host core.
///
/// When \p Metrics is non-null, the simulated workers publish the same
/// live-metrics schema as the real runtime (metrics/MetricsRegistry.h)
/// stamped with their virtual clocks: the registry is reset to
/// Opts.NumWorkers cells and after the run each cell holds the worker's
/// exact counters, mode residencies, and histograms — so a Prometheus
/// snapshot of an 8-worker paper-scale run renders from a one-core host.
SimReport simulate(const SimTree &Tree, const SimOptions &Opts,
                   const CostModel &Costs, TraceLog *Log = nullptr,
                   MetricsRegistry *Metrics = nullptr);

} // namespace atc

#endif // ATC_SIM_SIMENGINE_H
