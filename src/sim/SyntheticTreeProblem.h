//===- sim/SyntheticTreeProblem.h - real-runtime tree workloads -*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the Section-5.3 unbalanced trees to the *real* threaded
/// runtime: a SearchProblem whose computation tree is a SimTree (the
/// implicit LCG-generated trees of Figure 8 / Table 3), with a
/// configurable spin per node standing in for the paper's "execution
/// time of each node". The result counts leaves, which is a pure
/// function of the tree — so every scheduler must agree, at any thread
/// count, on any tree shape.
///
/// The per-depth node stack is part of the State, so the workspace-copy
/// machinery (taskprivate) is exercised exactly as for the puzzle
/// benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SIM_SYNTHETICTREEPROBLEM_H
#define ATC_SIM_SYNTHETICTREEPROBLEM_H

#include "sim/TreeGen.h"

#include <cassert>
#include <cstring>

namespace atc {

/// SearchProblem over an implicit SimTree.
class SyntheticTreeProblem {
public:
  static constexpr int MaxDepth = 96;
  static constexpr int MaxFan = 16;

  struct State {
    /// Node[D] is the node whose children are being explored at depth D.
    SimTreeNode Node[MaxDepth];
  };
  using Result = long long;

  /// \p SpinPerNode: iterations of a side-effect-free spin charged at
  /// every node visit (0 = pure scheduling stress).
  explicit SyntheticTreeProblem(TreeSpec Spec, int SpinPerNode = 0)
      : Tree(Spec), Spin(SpinPerNode) {
    assert(Spec.MaxFanout <= MaxFan && "fanout above problem limit");
  }

  State makeRoot() const {
    State S;
    std::memset(&S, 0, sizeof(S));
    S.Node[0] = Tree.root();
    return S;
  }

  const SimTree &tree() const { return Tree; }

  bool isLeaf(const State &S, int Depth) const {
    return S.Node[Depth].Size <= 1;
  }

  Result leafResult(const State &S, int Depth) const {
    spin();
    (void)S;
    (void)Depth;
    return 1;
  }

  int numChoices(const State &S, int Depth) const {
    Tree.children(S.Node[Depth], scratch());
    return static_cast<int>(scratch().size());
  }

  bool applyChoice(State &S, int Depth, int K) const {
    assert(Depth + 1 < MaxDepth && "tree deeper than problem limit");
    // Regenerate deterministically; the scratch buffer may have been
    // clobbered by a sibling's recursion between numChoices and here.
    Tree.children(S.Node[Depth], scratch());
    S.Node[Depth + 1] = scratch()[static_cast<std::size_t>(K)];
    if (K == 0)
      spin(); // charge the internal node's work once, on its first child
    return true;
  }

  void undoChoice(State &, int, int) const {}

  /// Leaves of the whole tree (the oracle every run must produce).
  long long expectedLeaves() const { return Tree.walk().Leaves; }

private:
  void spin() const {
    volatile int Sink = 0;
    for (int I = 0; I < Spin; ++I)
      Sink = Sink + I;
  }

  /// Per-thread expansion buffer: the problem object is shared by all
  /// workers.
  static std::vector<SimTreeNode> &scratch() {
    thread_local std::vector<SimTreeNode> Buf;
    return Buf;
  }

  SimTree Tree;
  int Spin;
};

} // namespace atc

#endif // ATC_SIM_SYNTHETICTREEPROBLEM_H
