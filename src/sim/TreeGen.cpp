//===- sim/TreeGen.cpp - Deterministic implicit computation trees ---------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/TreeGen.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace atc;

void SimTree::children(const SimTreeNode &Node,
                       std::vector<SimTreeNode> &Out) const {
  Out.clear();
  if (Node.Size <= 1)
    return;

  Lcg Rng(Node.Seed);
  long long Budget = Node.Size - 1;

  // Depth-1 override: reproduce the published first-level splits. The
  // sizes must partition the budget exactly — the simulator's termination
  // condition counts every node of spec().TotalNodes.
  if (Node.Depth == 0 && !Spec.Depth1SharesPercent.empty()) {
    double Total = 0;
    for (double S : Spec.Depth1SharesPercent)
      Total += S;
    std::vector<long long> Sizes;
    long long Assigned = 0;
    for (double Share : Spec.Depth1SharesPercent) {
      long long Sz = static_cast<long long>(
          static_cast<double>(Budget) * Share / Total);
      Sz = std::min(Sz, Budget - Assigned);
      Sizes.push_back(Sz);
      Assigned += Sz;
    }
    // Rounding leftover goes to the largest child.
    if (Assigned < Budget && !Sizes.empty()) {
      std::size_t Largest = 0;
      for (std::size_t I = 1; I < Sizes.size(); ++I)
        if (Sizes[I] > Sizes[Largest])
          Largest = I;
      Sizes[Largest] += Budget - Assigned;
    }
    for (std::size_t I = 0; I < Sizes.size(); ++I)
      if (Sizes[I] >= 1)
        Out.push_back({mix64(Node.Seed + 0x9e37 * (I + 1)), Sizes[I], 1});
  } else {
    int Span = Spec.MaxFanout - Spec.MinFanout + 1;
    int Fanout = Spec.MinFanout +
                 static_cast<int>(Rng.nextBelow(
                     static_cast<std::uint64_t>(Span)));
    long long Remaining = Budget;
    for (int I = 0; I < Fanout && Remaining > 0; ++I) {
      long long Sz;
      if (I + 1 == Fanout) {
        Sz = Remaining;
      } else if (Spec.EvenSplit) {
        Sz = std::max<long long>(Budget / Fanout, 1);
        Sz = std::min(Sz, Remaining);
      } else {
        // Stick breaking: child I takes u^Skew of the remaining budget.
        double U = Rng.nextDouble();
        if (U <= 0)
          U = 1e-9;
        double Frac = std::pow(U, Spec.Skew);
        Sz = static_cast<long long>(
            static_cast<double>(Remaining) * Frac);
        Sz = std::max<long long>(Sz, 1);
        Sz = std::min(Sz, Remaining);
      }
      Remaining -= Sz;
      Out.push_back({mix64(Node.Seed + 0xA11CE * (I + 1)), Sz,
                     Node.Depth + 1});
    }
    // Largest-first by construction is only a tendency; enforce it so
    // Mirror gives a strict left/right-heavy pair.
    std::stable_sort(Out.begin(), Out.end(),
                     [](const SimTreeNode &A, const SimTreeNode &B) {
                       return A.Size > B.Size;
                     });
  }

  if (Spec.Mirror)
    std::reverse(Out.begin(), Out.end());
}

SimTree::WalkStats SimTree::walk() const {
  WalkStats Stats;
  std::vector<SimTreeNode> Stack{root()};
  std::vector<SimTreeNode> Kids;
  while (!Stack.empty()) {
    SimTreeNode N = Stack.back();
    Stack.pop_back();
    ++Stats.Nodes;
    Stats.MaxDepth = std::max(Stats.MaxDepth, N.Depth);
    children(N, Kids);
    if (Kids.empty())
      ++Stats.Leaves;
    for (const SimTreeNode &K : Kids)
      Stack.push_back(K);
  }
  return Stats;
}

std::vector<double> SimTree::depth1SharePercent() const {
  std::vector<SimTreeNode> Kids;
  children(root(), Kids);
  std::vector<double> Shares;
  Shares.reserve(Kids.size());
  for (const SimTreeNode &K : Kids)
    Shares.push_back(100.0 * static_cast<double>(K.Size) /
                     static_cast<double>(Spec.TotalNodes));
  return Shares;
}

TreeSpec SimTree::preset(const std::string &Name, long long TotalNodes) {
  TreeSpec Spec;
  Spec.TotalNodes = TotalNodes;

  // Published depth-1 percentages from Table 3 (left-heavy variants; the
  // R variants are mirrors) and Figure 8's Sudoku tree.
  const std::vector<double> Tree1 = {42.512, 25.362, 13.019, 4.936,
                                     0.416,  11.771, 1.984};
  const std::vector<double> Tree2 = {74.492, 20.791, 1.106, 2.732,
                                     0.637,  0.049,  0.193};
  const std::vector<double> Tree3 = {89.675, 6.891, 1.836, 0.819,
                                     0.645,  0.026, 0.108};
  const std::vector<double> Fig8 = {61.04, 27.99, 10.97};

  auto SortedDesc = [](std::vector<double> V) {
    std::sort(V.begin(), V.end(), std::greater<double>());
    return V;
  };

  if (Name == "tree1l" || Name == "tree1r") {
    Spec.Depth1SharesPercent = SortedDesc(Tree1);
    Spec.Skew = 0.8;
    Spec.Seed = 0x7331;
    Spec.Mirror = (Name == "tree1r");
    return Spec;
  }
  if (Name == "tree2l" || Name == "tree2r") {
    Spec.Depth1SharesPercent = SortedDesc(Tree2);
    Spec.Skew = 0.55;
    Spec.Seed = 0x7332;
    Spec.Mirror = (Name == "tree2r");
    return Spec;
  }
  if (Name == "tree3l" || Name == "tree3r") {
    Spec.Depth1SharesPercent = SortedDesc(Tree3);
    Spec.Skew = 0.4;
    Spec.Seed = 0x7333;
    Spec.Mirror = (Name == "tree3r");
    return Spec;
  }
  if (Name == "fig8" || Name == "input1" || Name == "input2") {
    // Figure 8's nested percentages imply a heavy-path retention of
    // roughly 0.5-0.8 per level; Skew = 0.8 lands in that band under
    // stick breaking and reproduces Figure 9's system ordering.
    Spec.Depth1SharesPercent = Fig8;
    Spec.Skew = 0.8;
    Spec.MaxFanout = 9;
    Spec.Seed = 0xF1608;
    Spec.Mirror = (Name == "input2");
    return Spec;
  }
  if (Name == "balanced") {
    Spec.EvenSplit = true;
    Spec.MinFanout = 4;
    Spec.MaxFanout = 9;
    Spec.Seed = 0xBA1A;
    return Spec;
  }
  reportFatalError("unknown tree preset '" + Name + "'");
}

std::vector<std::string> SimTree::presetNames() {
  return {"tree1l", "tree1r", "tree2l", "tree2r", "tree3l",
          "tree3r", "fig8",   "input1", "input2", "balanced"};
}
