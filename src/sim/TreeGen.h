//===- sim/TreeGen.h - Deterministic implicit computation trees -*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, implicitly-represented computation trees for the
/// simulator — the paper's Section 5.3 workloads. Following Table 3's
/// recipe: "We use a random function x_i = (x_{i-1} * A + C) mod M to
/// generate a fixed random sequence ... x_i is localized in each node and
/// is used to get the size of each sub-tree. When the tree size and the
/// initial seed are defined, the same unbalanced tree can be generated in
/// multiple executions."
///
/// A node is (seed, subtree size, depth); children are derived on demand
/// by stick-breaking the size budget with the node-local LCG stream, so a
/// two-billion-node tree needs no materialization. Presets reproduce the
/// published tree shapes (Tree1L/R .. Tree3L/R depth-1 percentages,
/// Figure 8's Sudoku tree) at a configurable scale; Tree*R is the
/// mirrored (right-heavy) variant, obtained by reversing child order.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SIM_TREEGEN_H
#define ATC_SIM_TREEGEN_H

#include "support/Prng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace atc {

/// One implicit tree node: everything below it regenerates from Seed.
struct SimTreeNode {
  std::uint64_t Seed;
  long long Size; ///< Nodes in the subtree rooted here (>= 1).
  int Depth;
};

/// Shape parameters of a generated tree.
struct TreeSpec {
  /// Total node count (the paper's trees have ~1.96e9; the default scale
  /// keeps simulation time bounded while preserving shape).
  long long TotalNodes = 2'000'000;

  std::uint64_t Seed = 0x7EEE5EED;

  /// Children per internal node are drawn from [MinFanout, MaxFanout].
  int MinFanout = 2;
  int MaxFanout = 7;

  /// Heaviness: each stick-breaking draw takes fraction u^Skew of the
  /// remaining budget (u uniform in (0,1)). Skew < 1 biases toward large
  /// first children (unbalanced trees); Skew = 1 is moderately uneven;
  /// large Skew approaches balanced-ish splits.
  double Skew = 1.0;

  /// When set, children are emitted in ascending-size order, making the
  /// tree right-heavy (the paper's Tree*R mirrors).
  bool Mirror = false;

  /// When set, the budget is split evenly among the children (balanced
  /// computation trees); Skew is ignored.
  bool EvenSplit = false;

  /// Optional explicit depth-1 size shares (percent, need not sum to
  /// 100; normalized). Reproduces Table 3's published first-level
  /// splits.
  std::vector<double> Depth1SharesPercent;
};

/// Implicit deterministic tree.
class SimTree {
public:
  explicit SimTree(TreeSpec Spec) : Spec(std::move(Spec)) {}

  const TreeSpec &spec() const { return Spec; }

  SimTreeNode root() const { return {Spec.Seed, Spec.TotalNodes, 0}; }

  /// Expands \p Node's children into \p Out (cleared first). Leaves
  /// (Size == 1) produce none. Deterministic in Node.Seed.
  void children(const SimTreeNode &Node, std::vector<SimTreeNode> &Out) const;

  /// Walks the whole tree, returning (nodes, leaves, max depth). O(size);
  /// intended for tests and for validating presets at small scales.
  struct WalkStats {
    long long Nodes = 0;
    long long Leaves = 0;
    int MaxDepth = 0;
  };
  WalkStats walk() const;

  /// Sizes of the depth-1 subtrees as percentages of the whole tree.
  std::vector<double> depth1SharePercent() const;

  /// Named presets at the given scale:
  ///   "tree1l".."tree3l"  - Table 3 left-heavy trees (published depth-1
  ///                         shares),
  ///   "tree1r".."tree3r"  - their right-heavy mirrors,
  ///   "fig8"/"input1"     - the Sudoku-derived unbalanced tree of Fig. 8,
  ///   "input2"            - its mirror,
  ///   "balanced"          - near-even splits (the balanced Sudoku tree).
  /// Unknown names are a fatal error.
  static TreeSpec preset(const std::string &Name,
                         long long TotalNodes = 2'000'000);

  /// Returns the list of preset names (for harness --help text).
  static std::vector<std::string> presetNames();

private:
  TreeSpec Spec;
};

} // namespace atc

#endif // ATC_SIM_TREEGEN_H
