//===- support/Arena.h - Per-worker slab allocators -------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-stride slab allocators for the spawn fast path. The owner-side
/// cost of a spawn is dominated by the workspace copy plus the frame /
/// workspace allocation; these arenas make the allocation part O(1) with
/// no global-heap traffic:
///
///  * One contiguous cache-line-aligned reservation of `Cap` chunks is
///    carved with a bump pointer (bulk carving: no per-chunk heap call,
///    chunks are address-ordered so sequential spawns touch consecutive
///    lines).
///  * Freed chunks go to an intrusive freelist (the chunk's first word is
///    the link while free), so alloc/free are O(1) pointer swaps.
///  * Frees from other workers (a thief completing a stolen frame chain)
///    are pushed onto a lock-free Treiber stack that the owner drains
///    when its local freelist runs dry — the owner's fast path never
///    synchronizes.
///  * Allocations beyond the cap fall back to the global heap and are
///    never recycled; the pointer-range test (one reservation, two
///    comparisons) tells the two kinds apart at free time, and
///    cap-overflow frees are counted (SchedulerStats::PoolOverflows).
///
/// SlabArena hands out raw storage (workspace buffers — trivially
/// copyable States). ObjectArena<T> layers object lifetime on top:
/// each slab chunk is placement-new'd exactly once when first carved,
/// recycled without running the destructor (the caller re-initializes via
/// its reset protocol), and destroyed when the arena dies — which is what
/// lets TaskFrames keep their std::mutex across reuses.
///
/// Ownership contract: alloc() may only be called by the owning worker;
/// free() by the owner, freeRemote() by anyone. While a chunk sits on a
/// freelist its first sizeof(void*) bytes hold the link, so the first
/// word of T must be data the caller unconditionally rewrites after
/// allocation (TaskFrame::StatePtr, a workspace's live prefix).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_ARENA_H
#define ATC_SUPPORT_ARENA_H

#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

namespace atc {

/// Accounting for one arena (aggregated into SchedulerStats per run).
struct ArenaStats {
  std::uint64_t SlabAllocs = 0;    ///< Chunks handed out from the slab.
  std::uint64_t HeapAllocs = 0;    ///< Cap-overflow heap allocations.
  std::uint64_t OverflowFrees = 0; ///< Frees of cap-overflow chunks.
  int Carved = 0;                  ///< Chunks bump-carved so far.
  int HighWater = 0;               ///< Max simultaneously-live slab chunks.
};

/// Raw fixed-stride slab allocator. See the file comment for the design
/// and the ownership contract.
class SlabArena {
public:
  /// Result of an allocation: \p Fresh distinguishes never-used storage
  /// (just carved, or heap fallback) from a recycled chunk.
  struct Alloc {
    void *Ptr;
    bool Fresh;
  };

  SlabArena(std::size_t ChunkBytes, int Cap)
      : Stride(roundToLine(ChunkBytes)), Cap(Cap < 1 ? 1 : Cap) {
    Base = static_cast<unsigned char *>(::operator new(
        static_cast<std::size_t>(this->Cap) * Stride,
        std::align_val_t(ATC_CACHE_LINE_SIZE)));
  }

  SlabArena(const SlabArena &) = delete;
  SlabArena &operator=(const SlabArena &) = delete;

  ~SlabArena() {
    ::operator delete(Base, std::align_val_t(ATC_CACHE_LINE_SIZE));
  }

  /// O(1) allocation (owner only). Local freelist first, then a drain of
  /// the remote-free stack, then bump carving, then the heap fallback.
  ATC_ALWAYS_INLINE Alloc alloc() {
    if (ATC_UNLIKELY(LocalFree == nullptr))
      refill();
    if (ATC_LIKELY(LocalFree != nullptr)) {
      void *P = LocalFree;
      LocalFree = *static_cast<void **>(P);
      bookkeepSlabAlloc();
      return {P, false};
    }
    if (St.Carved < Cap) {
      void *P = Base + static_cast<std::size_t>(St.Carved) * Stride;
      ++St.Carved;
      bookkeepSlabAlloc();
      return {P, true};
    }
    ++St.HeapAllocs;
    return {::operator new(Stride), true};
  }

  /// O(1) free (owner only). Cap-overflow chunks go back to the heap.
  ATC_ALWAYS_INLINE void free(void *P) {
    if (ATC_LIKELY(fromSlab(P))) {
      *static_cast<void **>(P) = LocalFree;
      LocalFree = P;
      --SlabLive;
      return;
    }
    ++St.OverflowFrees;
    ::operator delete(P);
  }

  /// Cross-worker free. Slab chunks ride the lock-free remote stack back
  /// to the owner (drained on its next freelist miss); cap-overflow heap
  /// chunks are released in place — operator delete is thread-safe — and
  /// counted atomically.
  void freeRemote(void *P) {
    if (ATC_UNLIKELY(!fromSlab(P))) {
      RemoteOverflowFrees.fetch_add(1, std::memory_order_relaxed);
      ::operator delete(P);
      return;
    }
    void *Head = RemoteFree.load(std::memory_order_relaxed);
    do {
      *static_cast<void **>(P) = Head;
    } while (!RemoteFree.compare_exchange_weak(
        Head, P, std::memory_order_release, std::memory_order_relaxed));
  }

  /// Whether \p P was carved from this arena's reservation.
  bool fromSlab(const void *P) const {
    const auto *C = static_cast<const unsigned char *>(P);
    return C >= Base && C < Base + static_cast<std::size_t>(Cap) * Stride;
  }

  /// The \p I-th carved chunk (I < stats().Carved). For typed teardown.
  void *carvedChunk(int I) const {
    assert(I >= 0 && I < St.Carved && "carved index out of range");
    return Base + static_cast<std::size_t>(I) * Stride;
  }

  std::size_t chunkBytes() const { return Stride; }
  const ArenaStats &stats() const { return St; }

  /// The stride an arena uses for chunks of \p Bytes (cache-line
  /// rounded). Public so non-arena workspace allocations (the Cilk
  /// fresh-per-child buffer, the root workspace) can pad identically and
  /// be valid operands of copyLiveLines below.
  static std::size_t strideFor(std::size_t Bytes) {
    return roundToLine(Bytes);
  }

  /// Cap-overflow frees performed by remote workers (owner-side ones are
  /// in stats().OverflowFrees).
  std::uint64_t remoteOverflowFrees() const {
    return RemoteOverflowFrees.load(std::memory_order_relaxed);
  }

private:
  static std::size_t roundToLine(std::size_t Bytes) {
    std::size_t Line = ATC_CACHE_LINE_SIZE;
    if (Bytes < sizeof(void *))
      Bytes = sizeof(void *);
    return (Bytes + Line - 1) / Line * Line;
  }

  void bookkeepSlabAlloc() {
    ++St.SlabAllocs;
    if (++SlabLive > St.HighWater)
      St.HighWater = SlabLive;
  }

  /// Moves every remotely-freed chunk onto the local freelist.
  ATC_NOINLINE void refill() {
    void *P = RemoteFree.exchange(nullptr, std::memory_order_acquire);
    while (P != nullptr) {
      void *Next = *static_cast<void **>(P);
      *static_cast<void **>(P) = LocalFree;
      LocalFree = P;
      --SlabLive;
      P = Next;
    }
  }

  std::size_t Stride;
  int Cap;
  unsigned char *Base = nullptr;
  void *LocalFree = nullptr; ///< Intrusive freelist (owner only).
  int SlabLive = 0;          ///< Live slab chunks (owner's view).
  ArenaStats St;

  /// Chunks freed by other workers; drained by the owner in refill().
  alignas(ATC_CACHE_LINE_SIZE) std::atomic<void *> RemoteFree{nullptr};
  std::atomic<std::uint64_t> RemoteOverflowFrees{0};
};

/// Copies the live prefix of a workspace as whole cache lines:
/// ceil(LiveBytes / line) fixed-size block moves. A depth-dependent live
/// bound makes the copy length vary per spawn, and a variable-length
/// memcpy pays its size-dispatch on every call — measurably more than it
/// saves for mid-size states. Fixed-size blocks inline to straight-line
/// vector moves behind one well-predicted loop branch.
///
/// Both buffers must extend to a cache-line multiple: slab chunks do by
/// construction (Stride), and every non-arena workspace allocation pads
/// with SlabArena::strideFor. Bytes past LiveBytes in the destination
/// are garbage afterwards — exactly the liveBytes contract (Problem.h).
inline void copyLiveLines(void *Dst, const void *Src,
                          std::size_t LiveBytes) {
  auto *D = static_cast<unsigned char *>(Dst);
  const auto *S = static_cast<const unsigned char *>(Src);
  for (std::size_t Off = 0; Off < LiveBytes; Off += ATC_CACHE_LINE_SIZE)
    std::memcpy(D + Off, S + Off, ATC_CACHE_LINE_SIZE);
}

/// Slab arena for objects of type \p T with construct-once / recycle /
/// destroy-at-teardown lifetime. The first member of T must be trivially
/// copyable data that the caller rewrites after every alloc() (it holds
/// the freelist link while the chunk is free).
template <typename T> class ObjectArena {
public:
  explicit ObjectArena(int Cap) : Raw(sizeof(T), Cap) {}

  ~ObjectArena() {
    for (int I = 0; I < Raw.stats().Carved; ++I)
      static_cast<T *>(Raw.carvedChunk(I))->~T();
  }

  /// Returns a default-constructed-or-recycled object (owner only). The
  /// caller must re-initialize it via its reset protocol either way.
  ATC_ALWAYS_INLINE T *alloc() {
    SlabArena::Alloc A = Raw.alloc();
    if (A.Fresh)
      return ::new (A.Ptr) T();
    return static_cast<T *>(A.Ptr);
  }

  /// Owner free: recycles without destruction (slab) or destroys
  /// (cap-overflow heap chunk).
  ATC_ALWAYS_INLINE void free(T *P) {
    if (ATC_LIKELY(Raw.fromSlab(P))) {
      Raw.free(P);
      return;
    }
    P->~T();
    Raw.free(P); // counts the overflow free, releases the storage
  }

  /// Cross-worker free (any thread). Heap-fallback chunks are destroyed
  /// and released in place; slab chunks ride the remote stack back to the
  /// owner without destruction.
  void freeRemote(T *P) {
    if (ATC_UNLIKELY(!Raw.fromSlab(P)))
      P->~T();
    Raw.freeRemote(P);
  }

  const ArenaStats &stats() const { return Raw.stats(); }

  /// Cap-overflow frees performed by remote workers (owner-side overflow
  /// frees are in stats().OverflowFrees).
  std::uint64_t remoteOverflowFrees() const {
    return Raw.remoteOverflowFrees();
  }

private:
  SlabArena Raw;
};

} // namespace atc

#endif // ATC_SUPPORT_ARENA_H
