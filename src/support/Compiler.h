//===- support/Compiler.h - Compiler abstraction macros ---------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small set of compiler abstraction macros used throughout the project.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_COMPILER_H
#define ATC_SUPPORT_COMPILER_H

#include <cstddef>

/// Branch prediction hints for hot scheduler paths.
#define ATC_LIKELY(x) (__builtin_expect(!!(x), 1))
#define ATC_UNLIKELY(x) (__builtin_expect(!!(x), 0))

/// Size of a destructive-interference cache line. Used to pad per-worker
/// state so that independent workers do not false-share.
#define ATC_CACHE_LINE_SIZE 64

/// Marks a point in the code that is never reached. In builds with
/// assertions this aborts with a message; otherwise it is an optimizer hint.
#if defined(NDEBUG)
#define ATC_UNREACHABLE(msg) __builtin_unreachable()
#else
#define ATC_UNREACHABLE(msg) ::atc::atc_unreachable_internal(msg, __FILE__, __LINE__)
#endif

namespace atc {

/// Prints \p Msg with source location and aborts. Implements the checked
/// flavour of ATC_UNREACHABLE.
[[noreturn]] void atc_unreachable_internal(const char *Msg, const char *File,
                                           unsigned Line);

} // namespace atc

#endif // ATC_SUPPORT_COMPILER_H
