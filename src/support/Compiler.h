//===- support/Compiler.h - Compiler abstraction macros ---------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small set of compiler abstraction macros used throughout the project.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_COMPILER_H
#define ATC_SUPPORT_COMPILER_H

#include <cstddef>
#include <new>

/// Branch prediction hints for hot scheduler paths.
#define ATC_LIKELY(x) (__builtin_expect(!!(x), 1))
#define ATC_UNLIKELY(x) (__builtin_expect(!!(x), 0))

/// Inlining control for the allocator fast/cold path split: the per-spawn
/// alloc/free fast paths must inline into the spawn loop (a call spills
/// the loop's live registers), while the cold refill/teardown paths must
/// stay out of line so they do not bloat the caller past the inliner's
/// budget.
#if defined(__GNUC__)
#define ATC_ALWAYS_INLINE inline __attribute__((always_inline))
#define ATC_NOINLINE __attribute__((noinline))
#else
#define ATC_ALWAYS_INLINE inline
#define ATC_NOINLINE
#endif

/// Size of a destructive-interference cache line. Used to pad per-worker
/// state so that independent workers do not false-share, and as the slab
/// arena's chunk alignment/stride unit (support/Arena.h).
///
/// Taken from the implementation when it reports one (a compile-time
/// constant — GCC warns that its value depends on -mtune, which is fine
/// here: it is an alignment floor, not an ABI contract, hence the local
/// diagnostic suppression at this single definition site).
#if defined(__cpp_lib_hardware_interference_size)
namespace atc {
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t CacheLineSize =
    std::hardware_destructive_interference_size < 64
        ? 64
        : std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
} // namespace atc
#define ATC_CACHE_LINE_SIZE (::atc::CacheLineSize)
#else
#define ATC_CACHE_LINE_SIZE 64
#endif

/// Marks a point in the code that is never reached. In builds with
/// assertions this aborts with a message; otherwise it is an optimizer hint.
#if defined(NDEBUG)
#define ATC_UNREACHABLE(msg) __builtin_unreachable()
#else
#define ATC_UNREACHABLE(msg) ::atc::atc_unreachable_internal(msg, __FILE__, __LINE__)
#endif

namespace atc {

/// Prints \p Msg with source location and aborts. Implements the checked
/// flavour of ATC_UNREACHABLE.
[[noreturn]] void atc_unreachable_internal(const char *Msg, const char *File,
                                           unsigned Line);

} // namespace atc

#endif // ATC_SUPPORT_COMPILER_H
