//===- support/Error.cpp - Fatal error reporting --------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Compiler.h"

#include <cstdio>
#include <cstdlib>

using namespace atc;

void atc::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg.c_str());
  std::abort();
}

void atc::reportWarning(const std::string &Msg) {
  std::fprintf(stderr, "warning: %s\n", Msg.c_str());
}

void atc::atc_unreachable_internal(const char *Msg, const char *File,
                                   unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Msg ? Msg : "");
  std::abort();
}
