//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting. The project does not use exceptions; unrecoverable
/// conditions (bad command-line input, internal invariant failures that must
/// survive release builds) call reportFatalError.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_ERROR_H
#define ATC_SUPPORT_ERROR_H

#include <string>

namespace atc {

/// Prints "fatal error: <Msg>" to stderr and terminates the process.
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Prints "warning: <Msg>" to stderr.
void reportWarning(const std::string &Msg);

} // namespace atc

#endif // ATC_SUPPORT_ERROR_H
