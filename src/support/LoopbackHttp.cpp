//===- support/LoopbackHttp.cpp - Minimal loopback HTTP plumbing ----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/LoopbackHttp.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace atc;

namespace {

constexpr std::size_t MaxBodyBytes = 1 << 20;

void writeAll(int Fd, const char *Data, std::size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N <= 0)
      return;
    Data += N;
    Len -= static_cast<std::size_t>(N);
  }
}

const char *reasonPhrase(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 202:
    return "Accepted";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 429:
    return "Too Many Requests";
  case 503:
    return "Service Unavailable";
  default:
    return "Response";
  }
}

/// Reads from \p Fd into \p Buf until \p Pred says the accumulated text
/// is complete, the peer closes, or the cap is hit.
template <typename PredT> bool readUntil(int Fd, std::string &Buf, PredT Pred) {
  char Chunk[4096];
  while (!Pred(Buf)) {
    if (Buf.size() > MaxBodyBytes + 8192)
      return false;
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      return Pred(Buf);
    Buf.append(Chunk, static_cast<std::size_t>(N));
  }
  return true;
}

/// Parses "Content-Length: N" out of a header block (case-insensitive
/// key, per RFC). Returns 0 when absent.
std::size_t contentLength(const std::string &Headers) {
  std::size_t Pos = 0;
  while (Pos < Headers.size()) {
    std::size_t End = Headers.find("\r\n", Pos);
    if (End == std::string::npos)
      End = Headers.size();
    std::string Line = Headers.substr(Pos, End - Pos);
    Pos = End + 2;
    std::size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    std::string Key = Line.substr(0, Colon);
    for (char &C : Key)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    if (Key != "content-length")
      continue;
    return static_cast<std::size_t>(
        std::strtoull(Line.c_str() + Colon + 1, nullptr, 10));
  }
  return 0;
}

/// Splits raw request/response text at the header/body boundary and
/// reads the rest of the body if Content-Length says more is coming.
bool finishMessage(int Fd, std::string &Raw, std::string &HeadText,
                   std::string &Body) {
  if (!readUntil(Fd, Raw, [](const std::string &B) {
        return B.find("\r\n\r\n") != std::string::npos;
      }))
    return false;
  std::size_t HeaderEnd = Raw.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos)
    return false;
  HeadText = Raw.substr(0, HeaderEnd);
  std::size_t Len = contentLength(HeadText);
  if (Len > MaxBodyBytes)
    return false;
  std::size_t BodyStart = HeaderEnd + 4;
  if (!readUntil(Fd, Raw, [&](const std::string &B) {
        return B.size() >= BodyStart + Len;
      }))
    return false;
  Body = Raw.substr(BodyStart, Len);
  return true;
}

} // namespace

int atc::bindLoopbackListener(int Port, int &BoundPort) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  // Non-blocking listener: several serving threads may poll() the same
  // fd, and one connection wakes them all. Only the ::accept() winner
  // gets a client; the losers must get EAGAIN back instead of blocking
  // inside accept() where they could never observe a stop flag.
  // (Accepted client fds do not inherit the flag.)
  ::fcntl(Fd, F_SETFL, ::fcntl(Fd, F_GETFL, 0) | O_NONBLOCK);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    ::close(Fd);
    return -1;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  return Fd;
}

int atc::acceptOne(int ListenFd, int TimeoutMs) {
  pollfd Pfd{ListenFd, POLLIN, 0};
  if (::poll(&Pfd, 1, TimeoutMs) <= 0 || !(Pfd.revents & POLLIN))
    return -1;
  return ::accept(ListenFd, nullptr, nullptr);
}

bool atc::readHttpRequest(int Fd, HttpRequest &Out) {
  std::string Raw, Head;
  if (!finishMessage(Fd, Raw, Head, Out.Body))
    return false;
  // Request line: METHOD SP target SP version.
  std::size_t LineEnd = Head.find("\r\n");
  std::string Line =
      LineEnd == std::string::npos ? Head : Head.substr(0, LineEnd);
  std::size_t Sp1 = Line.find(' ');
  if (Sp1 == std::string::npos)
    return false;
  std::size_t Sp2 = Line.find(' ', Sp1 + 1);
  Out.Method = Line.substr(0, Sp1);
  Out.Path = Sp2 == std::string::npos ? Line.substr(Sp1 + 1)
                                      : Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  return !Out.Method.empty() && !Out.Path.empty();
}

void atc::writeHttpResponse(int Fd, int Status, const std::string &ContentType,
                            const std::string &Body) {
  char Header[256];
  int HeaderLen = std::snprintf(Header, sizeof(Header),
                                "HTTP/1.0 %d %s\r\n"
                                "Content-Type: %s\r\n"
                                "Content-Length: %zu\r\n"
                                "Connection: close\r\n\r\n",
                                Status, reasonPhrase(Status),
                                ContentType.c_str(), Body.size());
  writeAll(Fd, Header, static_cast<std::size_t>(HeaderLen));
  writeAll(Fd, Body.data(), Body.size());
}

void atc::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

bool atc::httpRequest(int Port, const std::string &Method,
                      const std::string &Path, const std::string &Body,
                      int &Status, std::string &ResponseBody) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return false;
  }
  char Header[256];
  int HeaderLen = std::snprintf(Header, sizeof(Header),
                                "%s %s HTTP/1.0\r\n"
                                "Content-Length: %zu\r\n"
                                "Connection: close\r\n\r\n",
                                Method.c_str(), Path.c_str(), Body.size());
  writeAll(Fd, Header, static_cast<std::size_t>(HeaderLen));
  if (!Body.empty())
    writeAll(Fd, Body.data(), Body.size());

  std::string Raw, Head;
  bool Ok = finishMessage(Fd, Raw, Head, ResponseBody);
  ::close(Fd);
  if (!Ok)
    return false;
  // Status line: HTTP/x.y SP code SP phrase.
  std::size_t Sp = Head.find(' ');
  if (Sp == std::string::npos)
    return false;
  Status = std::atoi(Head.c_str() + Sp + 1);
  return Status != 0;
}
