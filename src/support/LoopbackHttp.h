//===- support/LoopbackHttp.h - Minimal loopback HTTP plumbing --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiny HTTP/1.0 plumbing shared by every loopback endpoint in the
/// tree: the metrics sampler's /metrics scrape port (metrics/Sampler.h),
/// the job server's API (server/Server.h), and the client sides in
/// atc_loadgen and atc_top. Deliberately minimal — loopback only, one
/// request per connection, Connection: close — because every consumer is
/// a local tool talking to a local process; this is not a general web
/// server.
///
/// Server side: bindLoopbackListener() + acceptOne() + readHttpRequest()
/// + writeHttpResponse(). Client side: httpRequest() does one whole
/// round trip.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_LOOPBACKHTTP_H
#define ATC_SUPPORT_LOOPBACKHTTP_H

#include <string>

namespace atc {

/// One parsed (or to-be-sent) HTTP request: just the triplet every
/// endpoint in the tree cares about.
struct HttpRequest {
  std::string Method; ///< "GET", "POST", ...
  std::string Path;   ///< Request target, e.g. "/job" or "/result/7".
  std::string Body;   ///< Raw body (Content-Length bytes).
};

/// Binds a loopback (127.0.0.1) listen socket on \p Port (0 = pick an
/// ephemeral port). Returns the listening fd, or -1 on failure;
/// \p BoundPort receives the actual port. The fd is non-blocking so
/// several threads can poll()+accept() it without any of them wedging
/// in accept() after losing the race for a connection; accepted client
/// fds are blocking as usual.
int bindLoopbackListener(int Port, int &BoundPort);

/// Waits up to \p TimeoutMs for a connection on \p ListenFd and accepts
/// it. Returns the client fd, or -1 on timeout/error — including losing
/// the accept race to another thread serving the same fd; callers just
/// loop.
int acceptOne(int ListenFd, int TimeoutMs);

/// Reads one HTTP request from \p Fd: request line, headers (only
/// Content-Length is interpreted), then the body. Returns false on a
/// malformed request or closed connection. Bodies are capped at 1 MiB.
bool readHttpRequest(int Fd, HttpRequest &Out);

/// Writes a complete HTTP/1.0 response (status line, Content-Type,
/// Content-Length, Connection: close, body) to \p Fd. \p Status is the
/// numeric code (200, 404, 429, ...); the reason phrase is derived.
void writeHttpResponse(int Fd, int Status, const std::string &ContentType,
                       const std::string &Body);

/// Closes \p Fd (thin wrapper so headers above stay socket-API-free).
void closeFd(int Fd);

/// Client side: one whole round trip against 127.0.0.1:\p Port. Sends
/// \p Method \p Path with \p Body (empty = no body), fills \p Status and
/// \p ResponseBody from the reply. Returns false on connect/IO failure.
bool httpRequest(int Port, const std::string &Method, const std::string &Path,
                 const std::string &Body, int &Status,
                 std::string &ResponseBody);

} // namespace atc

#endif // ATC_SUPPORT_LOOPBACKHTTP_H
