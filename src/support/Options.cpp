//===- support/Options.cpp - Tiny command-line parser ---------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "support/Compiler.h"
#include "support/Error.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace atc;

void OptionSet::addInt(const std::string &Name, long long *Storage,
                       const std::string &Help) {
  Options.push_back({Name, OptionKind::Int, Storage, Help});
}

void OptionSet::addDouble(const std::string &Name, double *Storage,
                          const std::string &Help) {
  Options.push_back({Name, OptionKind::Double, Storage, Help});
}

void OptionSet::addString(const std::string &Name, std::string *Storage,
                          const std::string &Help) {
  Options.push_back({Name, OptionKind::String, Storage, Help});
}

void OptionSet::addFlag(const std::string &Name, bool *Storage,
                        const std::string &Help) {
  Options.push_back({Name, OptionKind::Flag, Storage, Help});
}

const OptionSet::Option *OptionSet::find(const std::string &Name) const {
  for (const Option &Opt : Options)
    if (Opt.Name == Name)
      return &Opt;
  return nullptr;
}

void OptionSet::setValue(const Option &Opt, const std::string &Value) {
  switch (Opt.Kind) {
  case OptionKind::Int: {
    char *End = nullptr;
    long long V = std::strtoll(Value.c_str(), &End, 10);
    if (End == Value.c_str() || *End != '\0')
      reportFatalError("option --" + Opt.Name + " expects an integer, got '" +
                       Value + "'");
    *static_cast<long long *>(Opt.Storage) = V;
    return;
  }
  case OptionKind::Double: {
    char *End = nullptr;
    double V = std::strtod(Value.c_str(), &End);
    if (End == Value.c_str() || *End != '\0')
      reportFatalError("option --" + Opt.Name + " expects a number, got '" +
                       Value + "'");
    *static_cast<double *>(Opt.Storage) = V;
    return;
  }
  case OptionKind::String:
    *static_cast<std::string *>(Opt.Storage) = Value;
    return;
  case OptionKind::Flag:
    if (Value == "true" || Value == "1") {
      *static_cast<bool *>(Opt.Storage) = true;
    } else if (Value == "false" || Value == "0") {
      *static_cast<bool *>(Opt.Storage) = false;
    } else {
      reportFatalError("option --" + Opt.Name + " expects true/false, got '" +
                       Value + "'");
    }
    return;
  }
  ATC_UNREACHABLE("unhandled option kind");
}

void OptionSet::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::string Text = usage(Argv[0]);
      std::fwrite(Text.data(), 1, Text.size(), stdout);
      std::exit(0);
    }
    bool LongOpt = Arg.rfind("--", 0) == 0;
    bool ShortOpt = !LongOpt && Arg.size() >= 2 && Arg[0] == '-' &&
                    (std::isalpha(static_cast<unsigned char>(Arg[1])) != 0);
    if (!LongOpt && !ShortOpt) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(LongOpt ? 2 : 1);
    std::string Value;
    bool HasValue = false;
    if (std::size_t Eq = Body.find('='); Eq != std::string::npos) {
      Value = Body.substr(Eq + 1);
      Body = Body.substr(0, Eq);
      HasValue = true;
    }
    const Option *Opt = find(Body);
    if (!Opt)
      reportFatalError("unknown option --" + Body);
    if (Opt->Kind == OptionKind::Flag && !HasValue) {
      *static_cast<bool *>(Opt->Storage) = true;
      continue;
    }
    if (!HasValue) {
      if (I + 1 >= Argc)
        reportFatalError("option --" + Body + " expects a value");
      Value = Argv[++I];
    }
    setValue(*Opt, Value);
  }
}

std::string OptionSet::usage(const std::string &Argv0) const {
  std::string Out = "usage: " + Argv0 + " [options]\n";
  if (!Description.empty())
    Out += Description + "\n";
  Out += "options:\n";
  for (const Option &Opt : Options) {
    Out += "  --" + Opt.Name;
    switch (Opt.Kind) {
    case OptionKind::Int:
      Out += "=N";
      break;
    case OptionKind::Double:
      Out += "=X";
      break;
    case OptionKind::String:
      Out += "=STR";
      break;
    case OptionKind::Flag:
      break;
    }
    Out += "\n      " + Opt.Help + "\n";
  }
  Out += "  --help\n      print this help\n";
  return Out;
}
