//===- support/Options.h - Tiny command-line parser -------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny declarative command-line parser for the benchmark harnesses and
/// example programs: "--name=value", "--name value", "--flag", and
/// positional arguments. Unknown options are fatal errors so typos in
/// experiment sweeps do not silently fall back to defaults.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_OPTIONS_H
#define ATC_SUPPORT_OPTIONS_H

#include <string>
#include <vector>

namespace atc {

/// Declarative option set. Register options, then call parse().
class OptionSet {
public:
  explicit OptionSet(std::string ProgramDescription = "")
      : Description(std::move(ProgramDescription)) {}

  /// Registers an integer-valued option "--name=N".
  void addInt(const std::string &Name, long long *Storage,
              const std::string &Help);

  /// Registers a double-valued option "--name=X".
  void addDouble(const std::string &Name, double *Storage,
                 const std::string &Help);

  /// Registers a string-valued option "--name=str".
  void addString(const std::string &Name, std::string *Storage,
                 const std::string &Help);

  /// Registers a boolean flag "--name" (sets true; "--name=false" clears).
  void addFlag(const std::string &Name, bool *Storage,
               const std::string &Help);

  /// Parses argv. On "--help" prints usage and exits 0. On malformed or
  /// unknown options reports a fatal error. Positional arguments are
  /// collected in positionalArgs().
  void parse(int Argc, const char *const *Argv);

  const std::vector<std::string> &positionalArgs() const { return Positional; }

  /// Renders the usage/help text.
  std::string usage(const std::string &Argv0) const;

private:
  enum class OptionKind { Int, Double, String, Flag };

  struct Option {
    std::string Name;
    OptionKind Kind;
    void *Storage;
    std::string Help;
  };

  const Option *find(const std::string &Name) const;
  void setValue(const Option &Opt, const std::string &Value);

  std::string Description;
  std::vector<Option> Options;
  std::vector<std::string> Positional;
};

} // namespace atc

#endif // ATC_SUPPORT_OPTIONS_H
