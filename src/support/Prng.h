//===- support/Prng.h - Deterministic pseudo-random generators --*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generators.
///
/// The paper (Table 3) generates its unbalanced trees with a linear
/// congruential generator "x_i = (x_{i-1} * A + C) mod M" seeded per node so
/// that the same tree is regenerated on every execution. Lcg implements
/// exactly that recurrence. SplitMix64 is used wherever a better-mixed
/// deterministic stream is needed (victim selection, property tests).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_PRNG_H
#define ATC_SUPPORT_PRNG_H

#include <cstdint>

namespace atc {

/// Linear congruential generator with the classic Numerical Recipes
/// constants. Matches the paper's per-node tree-shaping recurrence.
class Lcg {
public:
  static constexpr std::uint64_t DefaultA = 6364136223846793005ULL;
  static constexpr std::uint64_t DefaultC = 1442695040888963407ULL;

  explicit Lcg(std::uint64_t Seed, std::uint64_t A = DefaultA,
               std::uint64_t C = DefaultC)
      : X(Seed), A(A), C(C) {}

  /// Advances the recurrence and returns the new state.
  std::uint64_t next() {
    X = X * A + C; // mod 2^64 by wraparound
    return X;
  }

  /// Returns a value in [0, Bound). \p Bound must be non-zero.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    // Use the high bits; low LCG bits have short periods.
    return (next() >> 16) % Bound;
  }

  /// Returns a double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  std::uint64_t state() const { return X; }

private:
  std::uint64_t X;
  std::uint64_t A;
  std::uint64_t C;
};

/// SplitMix64: tiny, fast, well-mixed generator. Suitable for seeding and
/// for randomized victim selection in the schedulers.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : X(Seed) {}

  std::uint64_t next() {
    std::uint64_t Z = (X += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value in [0, Bound). \p Bound must be non-zero.
  std::uint64_t nextBelow(std::uint64_t Bound) { return next() % Bound; }

private:
  std::uint64_t X;
};

/// Mixes a 64-bit value into a well-distributed hash. Stateless counterpart
/// of SplitMix64; used to derive per-node seeds from node ids.
inline std::uint64_t mix64(std::uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace atc

#endif // ATC_SUPPORT_PRNG_H
