//===- support/Stats.cpp - Small statistics helpers -----------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace atc;

double atc::median(std::vector<double> Values) {
  assert(!Values.empty() && "median of empty sample");
  std::sort(Values.begin(), Values.end());
  std::size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}

double atc::mean(const std::vector<double> &Values) {
  assert(!Values.empty() && "mean of empty sample");
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double atc::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Acc = 0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double atc::geomean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geomean of empty sample");
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}
