//===- support/Stats.h - Small statistics helpers ---------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics helpers used by the benchmark harnesses. The paper reports
/// "the median execution time of 3 successive executions"; median() is the
/// canonical entry point for that.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_STATS_H
#define ATC_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace atc {

/// Returns the median of \p Values. For an even count returns the mean of
/// the two middle elements. \p Values must be non-empty.
double median(std::vector<double> Values);

/// Arithmetic mean. \p Values must be non-empty.
double mean(const std::vector<double> &Values);

/// Sample standard deviation (N-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double> &Values);

/// Geometric mean. All values must be positive; \p Values must be non-empty.
double geomean(const std::vector<double> &Values);

/// Runs \p Fn \p Repeats times and returns the median of the measured
/// wall-clock seconds (the paper's measurement protocol with Repeats = 3).
template <typename FnT> double medianSeconds(FnT &&Fn, int Repeats = 3);

} // namespace atc

#include "support/Timer.h"

template <typename FnT> double atc::medianSeconds(FnT &&Fn, int Repeats) {
  std::vector<double> Times;
  Times.reserve(static_cast<std::size_t>(Repeats));
  for (int I = 0; I < Repeats; ++I)
    Times.push_back(timeSeconds(Fn));
  return median(std::move(Times));
}

#endif // ATC_SUPPORT_STATS_H
