//===- support/Table.cpp - Text table / CSV emission ----------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace atc;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

/// Escapes one CSV cell per RFC 4180.
static std::string csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

std::string TextTable::renderText() const {
  // Compute column widths over header + all rows.
  std::vector<std::size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (std::size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      Out += Cell;
      if (I + 1 == Widths.size())
        break;
      Out.append(Widths[I] - Cell.size() + 2, ' ');
    }
    Out += '\n';
  };
  if (!Header.empty()) {
    Emit(Header);
    std::size_t Total = 0;
    for (std::size_t W : Widths)
      Total += W + 2;
    Out.append(Total > 2 ? Total - 2 : Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

std::string TextTable::renderCsv() const {
  std::string Out;
  auto Emit = [&Out](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Cells.size(); ++I) {
      if (I)
        Out += ',';
      Out += csvEscape(Cells[I]);
    }
    Out += '\n';
  };
  if (!Header.empty())
    Emit(Header);
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

void TextTable::print(std::FILE *Out) const {
  std::string Text = renderText();
  std::fwrite(Text.data(), 1, Text.size(), Out);
}

std::string TextTable::fmt(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string TextTable::fmt(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  return Buf;
}
