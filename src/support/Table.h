//===- support/Table.h - Text table / CSV emission --------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TextTable renders rows of strings as an aligned plain-text table (the
/// format every figure/table harness prints) and optionally as CSV so the
/// series can be re-plotted.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_TABLE_H
#define ATC_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace atc {

/// Accumulates rows of cells and prints them with aligned columns.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row. Rows may have differing cell counts; short rows
  /// are padded with empty cells on output.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table with space-aligned columns.
  std::string renderText() const;

  /// Renders the table as CSV (header first). Cells containing commas or
  /// quotes are quoted per RFC 4180.
  std::string renderCsv() const;

  /// Prints renderText() to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  std::size_t numRows() const { return Rows.size(); }

  /// Formats a double with \p Digits fractional digits.
  static std::string fmt(double Value, int Digits = 2);

  /// Formats an integer value.
  static std::string fmt(long long Value);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace atc

#endif // ATC_SUPPORT_TABLE_H
