//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the benchmark harnesses and the
/// scheduler's overhead instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_SUPPORT_TIMER_H
#define ATC_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace atc {

/// Returns a monotonic timestamp in nanoseconds.
inline std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple start/stop stopwatch accumulating elapsed nanoseconds.
class Stopwatch {
public:
  void start() { StartNs = nowNanos(); }

  /// Stops the watch and adds the elapsed interval to the total.
  void stop() { TotalNs += nowNanos() - StartNs; }

  /// Total accumulated time in nanoseconds.
  std::uint64_t elapsedNanos() const { return TotalNs; }

  /// Total accumulated time in seconds.
  double elapsedSeconds() const { return static_cast<double>(TotalNs) * 1e-9; }

  void reset() { TotalNs = 0; }

private:
  std::uint64_t StartNs = 0;
  std::uint64_t TotalNs = 0;
};

/// Measures one invocation of \p Fn in seconds.
template <typename FnT> double timeSeconds(FnT &&Fn) {
  std::uint64_t Begin = nowNanos();
  Fn();
  return static_cast<double>(nowNanos() - Begin) * 1e-9;
}

} // namespace atc

#endif // ATC_SUPPORT_TIMER_H
