//===- trace/Json.cpp - Minimal JSON parser -------------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Json.h"

#include <cctype>
#include <cstdlib>

namespace atc {
namespace json {
namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  const std::string &Text;
  std::string &Error;
  std::size_t Pos = 0;

  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool eatWord(const char *W, std::size_t Len) {
    if (Text.compare(Pos, Len, W) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case 't':
      if (eatWord("true", 4)) {
        Out = Value(true);
        return true;
      }
      return fail("bad literal");
    case 'f':
      if (eatWord("false", 5)) {
        Out = Value(false);
        return true;
      }
      return fail("bad literal");
    case 'n':
      if (eatWord("null", 4)) {
        Out = Value();
        return true;
      }
      return fail("bad literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out) {
    ++Pos; // '{'
    Object O;
    skipWs();
    if (eat('}')) {
      Out = Value(std::move(O));
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!eat(':'))
        return fail("expected ':' in object");
      skipWs();
      Value V;
      if (!parseValue(V))
        return false;
      O.emplace(std::move(Key), std::move(V));
      skipWs();
      if (eat(','))
        continue;
      if (eat('}'))
        break;
      return fail("expected ',' or '}' in object");
    }
    Out = Value(std::move(O));
    return true;
  }

  bool parseArray(Value &Out) {
    ++Pos; // '['
    Array A;
    skipWs();
    if (eat(']')) {
      Out = Value(std::move(A));
      return true;
    }
    for (;;) {
      skipWs();
      Value V;
      if (!parseValue(V))
        return false;
      A.push_back(std::move(V));
      skipWs();
      if (eat(','))
        continue;
      if (eat(']'))
        break;
      return fail("expected ',' or ']' in array");
    }
    Out = Value(std::move(A));
    return true;
  }

  bool parseString(std::string &Out) {
    if (!eat('"'))
      return fail("expected string");
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // produced by our exporter; pass them through as-is).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    std::size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool SawDigit = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        SawDigit = true;
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '-' || C == '+') {
        ++Pos;
      } else {
        break;
      }
    }
    if (!SawDigit)
      return fail("expected a value");
    Out = Value(std::strtod(Text.c_str() + Start, nullptr));
    return true;
  }
};

} // namespace

bool parse(const std::string &Text, Value &Out, std::string &Error) {
  return Parser(Text, Error).run(Out);
}

} // namespace json
} // namespace atc
