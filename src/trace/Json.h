//===- trace/Json.h - Minimal JSON value and parser -------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser used by the trace reader
/// (TraceRead.h) and the trace tests to load exported trace.json files
/// back in. Deliberately minimal: full JSON syntax, no streaming, values
/// held as a tagged tree. Not for hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_TRACE_JSON_H
#define ATC_TRACE_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace atc {
namespace json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value. Numbers are kept as double (trace timestamps fit with
/// full precision at the microsecond scale the exporter writes).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : K(Kind::Null) {}
  explicit Value(bool B) : K(Kind::Bool), BoolV(B) {}
  explicit Value(double N) : K(Kind::Number), NumV(N) {}
  explicit Value(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  explicit Value(Array A)
      : K(Kind::Array), ArrV(std::make_shared<Array>(std::move(A))) {}
  explicit Value(Object O)
      : K(Kind::Object), ObjV(std::make_shared<Object>(std::move(O))) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolV; }
  double asNumber() const { return NumV; }
  const std::string &asString() const { return StrV; }
  const Array &asArray() const { return *ArrV; }
  const Object &asObject() const { return *ObjV; }

  /// Object member lookup; returns null Value when absent or not an
  /// object, so chained lookups degrade gracefully.
  const Value &operator[](const std::string &Key) const {
    static const Value Null;
    if (!isObject())
      return Null;
    auto It = ObjV->find(Key);
    return It == ObjV->end() ? Null : It->second;
  }

  /// Convenience accessors with defaults for schema-tolerant reading.
  double numberOr(double Default) const {
    return isNumber() ? NumV : Default;
  }
  std::string stringOr(const std::string &Default) const {
    return isString() ? StrV : Default;
  }

private:
  Kind K;
  bool BoolV = false;
  double NumV = 0;
  std::string StrV;
  std::shared_ptr<Array> ArrV;
  std::shared_ptr<Object> ObjV;
};

/// Parses \p Text as one JSON document. On failure returns false and
/// fills \p Error with a message carrying the byte offset.
bool parse(const std::string &Text, Value &Out, std::string &Error);

} // namespace json
} // namespace atc

#endif // ATC_TRACE_JSON_H
