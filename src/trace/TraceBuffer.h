//===- trace/TraceBuffer.h - Per-worker event ring buffer -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, single-writer event ring buffer — one per worker. The
/// storage is allocated once up front (TraceLog construction), so the
/// emission fast path never allocates: it stamps the clock, writes 16
/// bytes at Count % Capacity, and increments Count. There is no
/// synchronization anywhere — each worker writes only its own buffer, and
/// readers (the exporter, the summarizer, tests) run strictly after the
/// run's thread join.
///
/// Overflow semantics: the ring keeps the *newest* Capacity events; once
/// full, each emit overwrites the oldest retained record, and dropped()
/// reports how many were lost that way. Within the retained window,
/// events are in emission order (timestamps monotonic per worker).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_TRACE_TRACEBUFFER_H
#define ATC_TRACE_TRACEBUFFER_H

#include "support/Compiler.h"
#include "support/Timer.h"
#include "trace/TraceEvent.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace atc {

/// Per-worker event ring (see file comment). Padded to the interference
/// line: TraceLog stores these contiguously, and two workers emitting
/// must not share a line for their Count / write cursors.
class alignas(ATC_CACHE_LINE_SIZE) TraceBuffer {
public:
  TraceBuffer() = default;

  /// Allocates the ring. Called once, before the run's threads start.
  void init(std::size_t Capacity) {
    assert(Capacity > 0 && "trace ring needs at least one slot");
    Ev.assign(Capacity, TraceEvent{});
    Cap = Capacity;
    Count = 0;
    Mode = TraceMode::Idle;
  }

  std::size_t capacity() const { return Cap; }

  /// Records an event stamped with the real monotonic clock.
  void emit(TraceEventKind K, std::uint32_t A = 0, std::uint16_t B = 0) {
    emitAt(nowNanos(), K, A, B);
  }

  /// Records an event with an explicit timestamp (the simulator's
  /// virtual clock; also used by tests for deterministic rings).
  void emitAt(std::uint64_t TimeNs, TraceEventKind K, std::uint32_t A = 0,
              std::uint16_t B = 0) {
    TraceEvent &E = Ev[static_cast<std::size_t>(Count % Cap)];
    E.TimeNs = TimeNs;
    E.A = A;
    E.B = B;
    E.Kind = static_cast<std::uint8_t>(K);
    E.Pad = 0;
    ++Count;
  }

  /// The worker's current mode (the span the trace is inside).
  TraceMode mode() const { return Mode; }

  /// Switches the worker's mode, emitting a ModeBegin event only when the
  /// mode actually changes — recursion within one mode (check calling
  /// check, fast spawning fast) emits nothing.
  void setMode(TraceMode M) {
    if (M == Mode)
      return;
    Mode = M;
    emit(TraceEventKind::ModeBegin, static_cast<std::uint32_t>(M));
  }

  /// setMode with an explicit (virtual) timestamp.
  void setModeAt(std::uint64_t TimeNs, TraceMode M) {
    if (M == Mode)
      return;
    Mode = M;
    emitAt(TimeNs, TraceEventKind::ModeBegin, static_cast<std::uint32_t>(M));
  }

  //===--------------------------------------------------------------------===//
  // Reading (after the run)
  //===--------------------------------------------------------------------===//

  /// Number of events retained (<= capacity).
  std::size_t size() const {
    return static_cast<std::size_t>(Count < Cap ? Count : Cap);
  }

  /// Total events ever emitted.
  std::uint64_t totalEmitted() const { return Count; }

  /// Events lost to ring overflow (oldest-first).
  std::uint64_t dropped() const { return Count > Cap ? Count - Cap : 0; }

  /// The \p I-th oldest *retained* event (0 .. size()-1).
  const TraceEvent &at(std::size_t I) const {
    assert(I < size() && "trace read out of range");
    std::uint64_t First = Count > Cap ? Count - Cap : 0;
    return Ev[static_cast<std::size_t>((First + I) % Cap)];
  }

private:
  std::vector<TraceEvent> Ev;
  std::uint64_t Cap = 0;
  std::uint64_t Count = 0;
  TraceMode Mode = TraceMode::Idle;
};

//===----------------------------------------------------------------------===//
// Emission macros — the only way runtime code should emit
//===----------------------------------------------------------------------===//
//
// With ATC_TRACE_ENABLED=0 these expand to nothing (the compile-time
// gate); otherwise they cost one predictable null test on the worker's
// buffer pointer (the runtime gate: the pointer is null unless
// SchedulerConfig::Trace armed the run).

#if ATC_TRACE_ENABLED
#define ATC_TRACE_EVENT(TB, ...)                                             \
  do {                                                                       \
    if (ATC_UNLIKELY((TB) != nullptr))                                       \
      (TB)->emit(__VA_ARGS__);                                               \
  } while (false)
#define ATC_TRACE_EVENT_AT(TB, ...)                                          \
  do {                                                                       \
    if (ATC_UNLIKELY((TB) != nullptr))                                       \
      (TB)->emitAt(__VA_ARGS__);                                             \
  } while (false)
#define ATC_TRACE_MODE_AT(TB, ...)                                           \
  do {                                                                       \
    if (ATC_UNLIKELY((TB) != nullptr))                                       \
      (TB)->setModeAt(__VA_ARGS__);                                          \
  } while (false)
#else
#define ATC_TRACE_EVENT(TB, ...)                                             \
  do {                                                                       \
  } while (false)
#define ATC_TRACE_EVENT_AT(TB, ...)                                         \
  do {                                                                       \
  } while (false)
#define ATC_TRACE_MODE_AT(TB, ...)                                          \
  do {                                                                       \
  } while (false)
#endif

/// RAII mode span: switches \p TB to \p M for the scope, restoring the
/// previous mode on every exit path (taskBody's stolen-unwind returns
/// included). Compiles to nothing when tracing is compiled out.
class TraceModeScope {
public:
#if ATC_TRACE_ENABLED
  TraceModeScope(TraceBuffer *TB, TraceMode M) : TB(TB) {
    if (ATC_UNLIKELY(TB != nullptr)) {
      Prev = TB->mode();
      TB->setMode(M);
    }
  }
  ~TraceModeScope() {
    if (ATC_UNLIKELY(TB != nullptr))
      TB->setMode(Prev);
  }
  TraceModeScope(const TraceModeScope &) = delete;
  TraceModeScope &operator=(const TraceModeScope &) = delete;

private:
  TraceBuffer *TB;
  TraceMode Prev = TraceMode::Idle;
#else
  TraceModeScope(TraceBuffer *, TraceMode) {}
  TraceModeScope(const TraceModeScope &) = delete;
  TraceModeScope &operator=(const TraceModeScope &) = delete;
#endif
};

} // namespace atc

#endif // ATC_TRACE_TRACEBUFFER_H
