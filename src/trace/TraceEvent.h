//===- trace/TraceEvent.h - Scheduler trace event schema --------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler event-trace schema (see docs/TRACING.md for the
/// field-by-field documentation). One TraceEvent is one timestamped
/// scheduling action on one worker; every producer — the real runtime
/// (WorkerRuntime / FramePolicy / TascellPolicy), the virtual-time
/// simulator (SimEngine), and the atcc generated-code executor
/// (GenRuntime) — emits this same 16-byte record, so one exporter and one
/// summarizer serve them all.
///
/// The compile-time gate: building with -DATC_TRACE=OFF (CMake option)
/// defines ATC_TRACE_ENABLED=0 and compiles every emission site away
/// entirely (the ATC_TRACE_EVENT macros below expand to nothing). With
/// tracing compiled in, the runtime gate is SchedulerConfig::Trace — when
/// it is off, each emission site costs exactly one predictable
/// branch-not-taken on a worker-local pointer.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_TRACE_TRACEEVENT_H
#define ATC_TRACE_TRACEEVENT_H

#include "core/kernel/FiveVersionFsm.h"

#include <cstdint>

// Compile-time tracing gate. The build defines ATC_TRACE_ENABLED=0|1 via
// the ATC_TRACE CMake option; standalone consumers (atcc-generated code
// compiled with only -I <repo>/src) default to enabled.
#ifndef ATC_TRACE_ENABLED
#define ATC_TRACE_ENABLED 1
#endif

namespace atc {

/// What a worker is doing right now — the span material of a trace (one
/// colored block per mode interval on the worker's track in Perfetto).
/// Fast/Check/Fast2/Sequence/Slow mirror CodeVersion (the five compiled
/// code versions of the paper's Figure 2); the rest are scheduler states
/// outside the five-version FSM.
enum class TraceMode : std::uint8_t {
  Idle,     ///< In the steal loop, looking for work.
  Fast,     ///< Executing the fast version (real tasks).
  Check,    ///< Executing the check version (fake tasks, polling).
  Fast2,    ///< Executing fast_2 after a special-task publish.
  Sequence, ///< Plain recursion (no tasks, no polls).
  Slow,     ///< Executing a stolen continuation.
  SyncWait, ///< Waiting on outstanding children at a sync point.
  Work,     ///< Tascell: recursing over the live workspace.
};

inline constexpr int NumTraceModes = 8;

/// Display name used in the exported trace ("idle", "fast", ...).
constexpr const char *traceModeName(TraceMode M) {
  switch (M) {
  case TraceMode::Idle:
    return "idle";
  case TraceMode::Fast:
    return "fast";
  case TraceMode::Check:
    return "check";
  case TraceMode::Fast2:
    return "fast_2";
  case TraceMode::Sequence:
    return "sequence";
  case TraceMode::Slow:
    return "slow";
  case TraceMode::SyncWait:
    return "sync_wait";
  case TraceMode::Work:
    return "work";
  }
  return "?";
}

/// The trace mode a code version executes under (the span color on the
/// worker's Perfetto track). Shared by every producer so a fast_2 span
/// means the same thing in a real trace and a simulated one.
constexpr TraceMode traceModeFor(CodeVersion V) {
  switch (V) {
  case CodeVersion::Fast:
    return TraceMode::Fast;
  case CodeVersion::Check:
    return TraceMode::Check;
  case CodeVersion::Fast2:
    return TraceMode::Fast2;
  case CodeVersion::Sequence:
    return TraceMode::Sequence;
  case CodeVersion::Slow:
    return TraceMode::Slow;
  }
  return TraceMode::Work;
}

/// Event kinds. Per-event argument meaning (the A / B fields) is listed
/// beside each kind; docs/TRACING.md is the authoritative schema text.
enum class TraceEventKind : std::uint8_t {
  ModeBegin,          ///< Worker mode changed. A = TraceMode.
  SpawnReal,          ///< Real task spawned. A = child CodeVersion,
                      ///  B = tree depth of the child.
  SpawnFake,          ///< Fake task executed (check version). B = depth.
  StealAttempt,       ///< Acquire attempt begins. A = victim id.
  StealSuccess,       ///< Acquire succeeded. A = victim id.
  StealFail,          ///< Acquire failed. A = victim id.
  NeedTaskRaise,      ///< This thief set a victim's need_task flag
                      ///  (stolen_num crossed max_stolen_num). A = victim.
  NeedTaskObserve,    ///< Owner's check version observed its own
                      ///  need_task flag set. B = depth.
  SpecialPush,        ///< Special task pushed (check -> fast_2). B = depth.
  SpecialPop,         ///< pop_specialtask succeeded (child not stolen).
                      ///  B = depth.
  SpecialChildStolen, ///< pop_specialtask failed: a child of the special
                      ///  was stolen (owner-side, 1:1 with such steals).
                      ///  B = depth.
  SpecialSyncBegin,   ///< sync_specialtask wait begins. B = depth.
  SpecialSyncEnd,     ///< sync_specialtask wait ends. B = depth.
  WaitChildrenBegin,  ///< Tascell wait for outstanding donations begins.
                      ///  B = depth.
  WaitChildrenEnd,    ///< Tascell wait ends. B = depth.
  FsmTransition,      ///< Five-version FSM edge taken to a *different*
                      ///  version. A = from CodeVersion, B = to.
  Donation,           ///< Tascell victim donated work. A = requester id,
                      ///  B = split depth.
};

inline constexpr int NumTraceEventKinds = 17;

/// Display name used in the exported trace ("mode", "spawn-real", ...).
constexpr const char *traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::ModeBegin:
    return "mode";
  case TraceEventKind::SpawnReal:
    return "spawn-real";
  case TraceEventKind::SpawnFake:
    return "spawn-fake";
  case TraceEventKind::StealAttempt:
    return "steal-attempt";
  case TraceEventKind::StealSuccess:
    return "steal-success";
  case TraceEventKind::StealFail:
    return "steal-fail";
  case TraceEventKind::NeedTaskRaise:
    return "need_task-raise";
  case TraceEventKind::NeedTaskObserve:
    return "need_task-observe";
  case TraceEventKind::SpecialPush:
    return "special-push";
  case TraceEventKind::SpecialPop:
    return "special-pop";
  case TraceEventKind::SpecialChildStolen:
    return "special-child-stolen";
  case TraceEventKind::SpecialSyncBegin:
    return "special-sync-begin";
  case TraceEventKind::SpecialSyncEnd:
    return "special-sync-end";
  case TraceEventKind::WaitChildrenBegin:
    return "wait-children-begin";
  case TraceEventKind::WaitChildrenEnd:
    return "wait-children-end";
  case TraceEventKind::FsmTransition:
    return "fsm-transition";
  case TraceEventKind::Donation:
    return "donation";
  }
  return "?";
}

/// One trace record: 16 bytes, fixed layout, written only by the owning
/// worker into its own ring buffer (TraceBuffer.h).
struct TraceEvent {
  std::uint64_t TimeNs; ///< Monotonic wall clock (real runtime) or
                        ///  virtual time (simulator).
  std::uint32_t A;      ///< Kind-specific argument (see TraceEventKind).
  std::uint16_t B;      ///< Kind-specific argument, usually a depth.
  std::uint8_t Kind;    ///< TraceEventKind.
  std::uint8_t Pad;     ///< Zero.

  TraceEventKind kind() const { return static_cast<TraceEventKind>(Kind); }
};

static_assert(sizeof(TraceEvent) == 16, "trace events are 16 bytes");

} // namespace atc

#endif // ATC_TRACE_TRACEEVENT_H
