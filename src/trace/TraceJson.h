//===- trace/TraceJson.h - Chrome/Perfetto trace exporter -------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports a TraceLog as Chrome trace-event JSON, the format Perfetto
/// (https://ui.perfetto.dev) and chrome://tracing load directly. Layout:
/// one track (tid) per worker, the worker's mode intervals as complete
/// ("X") slices — so the five-version FSM reads as colored spans — every
/// other event as a thread-scoped instant ("i"), and each successful
/// steal as a flow arrow ("s" on the victim track, "f" on the thief)
/// so work movement is visible as arcs between tracks.
///
/// Header-only on purpose: atcc-generated programs compile standalone
/// with just `-I <repo>/src`, and they export their own traces.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_TRACE_TRACEJSON_H
#define ATC_TRACE_TRACEJSON_H

#include "trace/TraceLog.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace atc {
namespace trace_json_detail {

/// Escapes a string for embedding in a JSON literal. Metadata strings are
/// workload labels and scheduler names, so this only needs the basics.
inline std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) >= 0x20)
        Out += C;
    }
  }
  return Out;
}

/// Nanoseconds -> the Chrome format's microsecond field, keeping
/// sub-microsecond precision (the format accepts fractional ts).
inline double toMicros(std::uint64_t Ns) {
  return static_cast<double>(Ns) / 1000.0;
}

struct EventWriter {
  std::FILE *F;
  bool First = true;

  void sep() {
    if (!First)
      std::fputs(",\n", F);
    First = false;
  }

  void metaThreadName(int Tid, const std::string &Name) {
    sep();
    std::fprintf(F,
                 "  {\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 Tid, escape(Name).c_str());
  }

  void modeSlice(int Tid, TraceMode M, std::uint64_t BeginNs,
                 std::uint64_t EndNs) {
    sep();
    std::fprintf(F,
                 "  {\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"cat\":\"mode\","
                 "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                 Tid, traceModeName(M), toMicros(BeginNs),
                 toMicros(EndNs - BeginNs));
  }

  void instant(int Tid, const TraceEvent &E, std::uint64_t Ns) {
    sep();
    std::fprintf(F,
                 "  {\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"s\":\"t\","
                 "\"cat\":\"event\",\"name\":\"%s\",\"ts\":%.3f,"
                 "\"args\":{\"a\":%" PRIu32 ",\"b\":%u}}",
                 Tid, traceEventKindName(E.kind()), toMicros(Ns), E.A,
                 static_cast<unsigned>(E.B));
  }

  /// One steal (or donation) as a flow pair: "s" starts the arrow on
  /// \p FromTid, "f" with bp:"e" ends it on \p ToTid. Perfetto binds
  /// each endpoint to the enclosing slice, which the wall-to-wall mode
  /// spans guarantee exists.
  void flow(int Id, const char *Name, int FromTid, int ToTid,
            std::uint64_t Ns) {
    double Ts = toMicros(Ns);
    sep();
    std::fprintf(F,
                 "  {\"ph\":\"s\",\"pid\":0,\"tid\":%d,\"cat\":\"steal\","
                 "\"name\":\"%s\",\"id\":%d,\"ts\":%.3f}",
                 FromTid, Name, Id, Ts);
    sep();
    std::fprintf(F,
                 "  {\"ph\":\"f\",\"pid\":0,\"tid\":%d,\"cat\":\"steal\","
                 "\"name\":\"%s\",\"id\":%d,\"ts\":%.3f,\"bp\":\"e\"}",
                 ToTid, Name, Id, Ts);
  }
};

} // namespace trace_json_detail

/// Writes \p Log to \p F in Chrome trace-event JSON. Timestamps are
/// rebased so the earliest retained event across all workers is t=0.
inline void writeChromeTrace(const TraceLog &Log, std::FILE *F) {
  using namespace trace_json_detail;

  // Rebase: raw stamps are monotonic-clock (or virtual-time) absolutes.
  std::uint64_t T0 = UINT64_MAX;
  std::uint64_t TEnd = 0;
  for (int W = 0; W < Log.numWorkers(); ++W) {
    const TraceBuffer &B = Log.buffer(W);
    if (B.size() == 0)
      continue;
    if (B.at(0).TimeNs < T0)
      T0 = B.at(0).TimeNs;
    if (B.at(B.size() - 1).TimeNs > TEnd)
      TEnd = B.at(B.size() - 1).TimeNs;
  }
  if (T0 == UINT64_MAX)
    T0 = TEnd = 0;

  std::fputs("{\n\"displayTimeUnit\":\"ms\",\n", F);
  std::fprintf(F,
               "\"otherData\":{\"schemaVersion\":%d,\"scheduler\":\"%s\","
               "\"source\":\"%s\",\"workload\":\"%s\",\"workers\":%d,"
               "\"dropped\":%" PRIu64 "},\n",
               Log.Meta.SchemaVersion, escape(Log.Meta.Scheduler).c_str(),
               escape(Log.Meta.Source).c_str(),
               escape(Log.Meta.Workload).c_str(), Log.numWorkers(),
               Log.totalDropped());
  std::fputs("\"traceEvents\":[\n", F);

  EventWriter EW{F};
  int FlowId = 0;
  for (int W = 0; W < Log.numWorkers(); ++W) {
    const TraceBuffer &B = Log.buffer(W);
    EW.metaThreadName(W, "worker " + std::to_string(W));

    // Mode slices: each ModeBegin closes the previous interval. A ring
    // that overflowed may start mid-span with no ModeBegin in the
    // retained window; treat the window's first timestamp as the start
    // of an unknown-mode span only once a ModeBegin tells us the mode
    // changed (before that we have nothing to name, so we skip it).
    bool HaveMode = false;
    TraceMode Mode = TraceMode::Idle;
    std::uint64_t ModeSince = 0;
    for (std::size_t I = 0; I < B.size(); ++I) {
      const TraceEvent &E = B.at(I);
      std::uint64_t Ns = E.TimeNs - T0;
      switch (E.kind()) {
      case TraceEventKind::ModeBegin:
        if (HaveMode && Ns > ModeSince)
          EW.modeSlice(W, Mode, ModeSince, Ns);
        HaveMode = true;
        Mode = static_cast<TraceMode>(E.A);
        ModeSince = Ns;
        break;
      case TraceEventKind::StealSuccess:
        // Thief-side record; draw the arrow victim -> thief.
        EW.flow(FlowId++, "steal", static_cast<int>(E.A), W, Ns);
        EW.instant(W, E, Ns);
        break;
      case TraceEventKind::Donation:
        // Victim-side record; arrow victim -> requester.
        EW.flow(FlowId++, "donation", W, static_cast<int>(E.A), Ns);
        EW.instant(W, E, Ns);
        break;
      default:
        EW.instant(W, E, Ns);
        break;
      }
    }
    if (HaveMode && TEnd - T0 > ModeSince)
      EW.modeSlice(W, Mode, ModeSince, TEnd - T0);
  }

  std::fputs("\n]\n}\n", F);
}

/// writeChromeTrace to \p Path; returns false if the file can't be
/// opened.
inline bool writeChromeTraceFile(const TraceLog &Log,
                                 const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  writeChromeTrace(Log, F);
  std::fclose(F);
  return true;
}

} // namespace atc

#endif // ATC_TRACE_TRACEJSON_H
