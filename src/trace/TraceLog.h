//===- trace/TraceLog.h - Whole-run trace collection ------------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-run trace: one TraceBuffer per worker plus run metadata
/// (scheduler kind, producer, worker count). WorkerRuntime allocates one
/// when SchedulerConfig::Trace is set and hands each worker a pointer to
/// its buffer; the simulator and the generated-code executor build their
/// own. RunResult carries the log back to the CLI, which exports it with
/// writeChromeTraceFile (trace/TraceJson.h).
///
//===----------------------------------------------------------------------===//

#ifndef ATC_TRACE_TRACELOG_H
#define ATC_TRACE_TRACELOG_H

#include "trace/TraceBuffer.h"

#include <cassert>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace atc {

/// Run metadata embedded in the exported trace (otherData in the Chrome
/// JSON; round-trips through the reader).
struct TraceMeta {
  std::string Scheduler; ///< schedulerKindName of the traced run.
  std::string Source;    ///< "runtime", "sim", or "genruntime".
  std::string Workload;  ///< Free-form workload label ("nqueens-12", ...).
  int SchemaVersion = 1;
};

/// Per-run trace collection; see the file comment.
class TraceLog {
public:
  TraceLog(int NumWorkers, std::size_t CapacityPerWorker)
      : Buffers(static_cast<std::size_t>(NumWorkers)) {
    assert(NumWorkers >= 1 && "trace log needs at least one worker");
    for (TraceBuffer &B : Buffers)
      B.init(CapacityPerWorker);
  }

  int numWorkers() const { return static_cast<int>(Buffers.size()); }

  TraceBuffer &buffer(int W) {
    return Buffers[static_cast<std::size_t>(W)];
  }
  const TraceBuffer &buffer(int W) const {
    return Buffers[static_cast<std::size_t>(W)];
  }

  /// Total events dropped to ring overflow across all workers.
  std::uint64_t totalDropped() const {
    std::uint64_t D = 0;
    for (const TraceBuffer &B : Buffers)
      D += B.dropped();
    return D;
  }

  /// Total events retained across all workers.
  std::uint64_t totalRetained() const {
    std::uint64_t N = 0;
    for (const TraceBuffer &B : Buffers)
      N += B.size();
    return N;
  }

  TraceMeta Meta;

private:
  std::vector<TraceBuffer> Buffers;
};

} // namespace atc

#endif // ATC_TRACE_TRACELOG_H
