//===- trace/TraceRead.cpp - Load exported traces back in -----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceRead.h"

#include "trace/Json.h"

#include <cstdio>
#include <memory>

namespace atc {

std::vector<const ParsedEvent *> ParsedTrace::onWorker(int Tid,
                                                       char Ph) const {
  std::vector<const ParsedEvent *> Out;
  for (const ParsedEvent &E : Events)
    if (E.Tid == Tid && E.Phase == Ph)
      Out.push_back(&E);
  return Out;
}

bool readTrace(const std::string &JsonText, ParsedTrace &Out,
               std::string &Error) {
  json::Value Doc;
  if (!json::parse(JsonText, Doc, Error))
    return false;
  const json::Value &Events = Doc["traceEvents"];
  if (!Events.isArray()) {
    Error = "document has no traceEvents array";
    return false;
  }

  const json::Value &Meta = Doc["otherData"];
  Out.Scheduler = Meta["scheduler"].stringOr("");
  Out.Source = Meta["source"].stringOr("");
  Out.Workload = Meta["workload"].stringOr("");
  Out.SchemaVersion = static_cast<int>(Meta["schemaVersion"].numberOr(0));
  Out.Workers = static_cast<int>(Meta["workers"].numberOr(0));
  Out.Dropped = static_cast<std::uint64_t>(Meta["dropped"].numberOr(0));

  Out.Events.clear();
  Out.Events.reserve(Events.asArray().size());
  for (const json::Value &EV : Events.asArray()) {
    std::string Ph = EV["ph"].stringOr("?");
    ParsedEvent E;
    E.Phase = Ph.empty() ? '?' : Ph[0];
    if (E.Phase == 'M') // thread_name metadata carries no timing
      continue;
    E.Tid = static_cast<int>(EV["tid"].numberOr(0));
    E.TsUs = EV["ts"].numberOr(0);
    E.DurUs = EV["dur"].numberOr(0);
    E.Name = EV["name"].stringOr("");
    E.Cat = EV["cat"].stringOr("");
    const json::Value &Args = EV["args"];
    E.A = static_cast<std::uint32_t>(Args["a"].numberOr(0));
    E.B = static_cast<std::uint32_t>(Args["b"].numberOr(0));
    Out.Events.push_back(std::move(E));
  }
  return true;
}

bool readTraceFile(const std::string &Path, ParsedTrace &Out,
                   std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return readTrace(Text, Out, Error);
}

} // namespace atc
