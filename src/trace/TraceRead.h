//===- trace/TraceRead.h - Load exported traces back in ---------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads a trace.json produced by writeChromeTrace back into a flat
/// event list, for the text summarizer (tools/trace_timeline) and for
/// the round-trip tests. The reader is schema-tolerant: unknown fields
/// are ignored, and missing optional fields default, so hand-edited or
/// future-version traces still load.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_TRACE_TRACEREAD_H
#define ATC_TRACE_TRACEREAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace atc {

/// One Chrome trace event as read back from JSON.
struct ParsedEvent {
  char Phase = '?';  ///< "ph": X (slice), i (instant), s/f (flow), M.
  int Tid = 0;       ///< Worker id.
  double TsUs = 0;   ///< Timestamp, microseconds from trace start.
  double DurUs = 0;  ///< Slice duration (X events only).
  std::string Name;  ///< Mode name for slices, event kind for instants.
  std::string Cat;   ///< "mode", "event", or "steal".
  std::uint32_t A = 0; ///< args.a for instants.
  std::uint32_t B = 0; ///< args.b for instants.
};

/// A whole trace file: metadata plus events in file order. Within one
/// worker each phase is chronological; across phases the order can
/// interleave, because the exporter writes a mode slice (phase X) only
/// when the next mode begins, stamping it with the slice's *start* time.
struct ParsedTrace {
  std::string Scheduler;
  std::string Source;
  std::string Workload;
  int SchemaVersion = 0;
  int Workers = 0;
  std::uint64_t Dropped = 0;
  std::vector<ParsedEvent> Events;

  /// Events on worker \p Tid with phase \p Ph, in time order.
  std::vector<const ParsedEvent *> onWorker(int Tid, char Ph) const;
};

/// Parses Chrome trace JSON from a string. Returns false and sets
/// \p Error on malformed JSON or a document missing traceEvents.
bool readTrace(const std::string &JsonText, ParsedTrace &Out,
               std::string &Error);

/// readTrace over a file's contents.
bool readTraceFile(const std::string &Path, ParsedTrace &Out,
                   std::string &Error);

} // namespace atc

#endif // ATC_TRACE_TRACEREAD_H
