//===- trace/TraceSummary.cpp - Text summary of a trace -------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceSummary.h"

#include "metrics/Quantile.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace atc {
namespace {

/// Appends printf-formatted text to \p Out.
void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<std::size_t>(
                        std::min<int>(N, sizeof(Buf) - 1)));
}

} // namespace

TraceSummary summarizeTrace(const ParsedTrace &T) {
  TraceSummary S;
  S.Dropped = T.Dropped;
  S.Scheduler = T.Scheduler;
  S.Source = T.Source;
  S.Workload = T.Workload;

  // Pre-seed from the metadata worker count so workers that emitted no
  // events (e.g. they never left the launch path before termination in a
  // very short run) still appear, as all-zero rows.
  std::map<int, WorkerSummary> ByTid;
  for (int W = 0; W < T.Workers; ++W)
    ByTid[W].Tid = W;
  for (const ParsedEvent &E : T.Events) {
    S.SpanUs = std::max(S.SpanUs, E.TsUs + E.DurUs);
    WorkerSummary &W = ByTid[E.Tid];
    W.Tid = E.Tid;
    if (E.Phase == 'X' && E.Cat == "mode") {
      W.ModeUs[E.Name] += E.DurUs;
      if (E.Name == "idle")
        W.IdleUs += E.DurUs;
      else if (E.Name == "sync_wait")
        W.SyncUs += E.DurUs;
      else
        W.BusyUs += E.DurUs;
    } else if (E.Phase == 'i') {
      if (E.Name == "steal-success")
        ++W.Steals;
      else if (E.Name == "steal-fail")
        ++W.FailedSteals;
      else if (E.Name == "spawn-real")
        ++W.SpawnsReal;
      else if (E.Name == "spawn-fake")
        ++W.SpawnsFake;
      else if (E.Name == "special-push")
        ++W.SpecialPushes;
    }
  }
  for (auto &[Tid, W] : ByTid)
    S.Workers.push_back(W);

  // Steal latency: per worker, the first steal-attempt of an idle
  // episode opens a window that the next steal-success closes. Reseed
  // latency: need_task-observe opens, the next special-push closes.
  for (const WorkerSummary &W : S.Workers) {
    double AttemptAt = -1;
    double ObservedAt = -1;
    for (const ParsedEvent *E : T.onWorker(W.Tid, 'i')) {
      if (E->Name == "steal-attempt") {
        if (AttemptAt < 0)
          AttemptAt = E->TsUs;
      } else if (E->Name == "steal-success") {
        if (AttemptAt >= 0)
          S.StealLatenciesUs.push_back(E->TsUs - AttemptAt);
        AttemptAt = -1;
      } else if (E->Name == "need_task-observe") {
        if (ObservedAt < 0)
          ObservedAt = E->TsUs;
      } else if (E->Name == "special-push") {
        if (ObservedAt >= 0)
          S.ReseedLatenciesUs.push_back(E->TsUs - ObservedAt);
        ObservedAt = -1;
      }
    }
  }
  return S;
}

std::string formatSummary(const TraceSummary &S) {
  std::string Out;
  appendf(Out, "trace summary — scheduler=%s source=%s workload=%s\n",
          S.Scheduler.empty() ? "?" : S.Scheduler.c_str(),
          S.Source.empty() ? "?" : S.Source.c_str(),
          S.Workload.empty() ? "?" : S.Workload.c_str());
  appendf(Out, "span: %.3f ms   workers: %zu   dropped events: %llu\n\n",
          S.SpanUs / 1000.0, S.Workers.size(),
          static_cast<unsigned long long>(S.Dropped));

  appendf(Out, "%-8s %8s %8s %8s %8s %8s %8s %8s\n", "worker", "busy%",
          "idle%", "sync%", "steals", "fails", "real", "fake");
  for (const WorkerSummary &W : S.Workers) {
    double Total = W.BusyUs + W.IdleUs + W.SyncUs;
    double Scale = Total > 0 ? 100.0 / Total : 0;
    appendf(Out, "%-8d %7.1f%% %7.1f%% %7.1f%% %8llu %8llu %8llu %8llu\n",
            W.Tid, W.BusyUs * Scale, W.IdleUs * Scale, W.SyncUs * Scale,
            static_cast<unsigned long long>(W.Steals),
            static_cast<unsigned long long>(W.FailedSteals),
            static_cast<unsigned long long>(W.SpawnsReal),
            static_cast<unsigned long long>(W.SpawnsFake));
  }

  // Mode split across all workers.
  std::map<std::string, double> Modes;
  for (const WorkerSummary &W : S.Workers)
    for (const auto &[Name, Us] : W.ModeUs)
      Modes[Name] += Us;
  double ModeTotal = 0;
  for (const auto &[Name, Us] : Modes)
    ModeTotal += Us;
  if (ModeTotal > 0) {
    appendf(Out, "\nmode split (all workers):\n");
    for (const auto &[Name, Us] : Modes)
      appendf(Out, "  %-12s %7.1f%%  (%.3f ms)\n", Name.c_str(),
              100.0 * Us / ModeTotal, Us / 1000.0);
  }

  // Steal latency histogram, log2 microsecond buckets. Sorted once here;
  // each percentileSorted call is then a constant-time lookup (the old
  // helper took the vector by value and re-sorted per percentile).
  if (!S.StealLatenciesUs.empty()) {
    std::vector<double> Sorted = S.StealLatenciesUs;
    std::sort(Sorted.begin(), Sorted.end());
    appendf(Out, "\nsteal latency (idle-episode start -> success), n=%zu:\n",
            S.StealLatenciesUs.size());
    appendf(Out, "  p50 %.1f us   p90 %.1f us   p99 %.1f us\n",
            percentileSorted(Sorted, 0.50), percentileSorted(Sorted, 0.90),
            percentileSorted(Sorted, 0.99));
    constexpr int NumBuckets = 12; // <1us .. >=1s in log2 decades
    std::vector<std::uint64_t> Buckets(NumBuckets, 0);
    for (double L : S.StealLatenciesUs) {
      int B = L < 1 ? 0 : 1 + static_cast<int>(std::log2(L) / 2);
      ++Buckets[static_cast<std::size_t>(
          std::clamp(B, 0, NumBuckets - 1))];
    }
    std::uint64_t MaxCount = 1;
    for (std::uint64_t C : Buckets)
      MaxCount = std::max(MaxCount, C);
    for (int B = 0; B < NumBuckets; ++B) {
      if (!Buckets[static_cast<std::size_t>(B)])
        continue;
      double Lo = B == 0 ? 0 : std::pow(2.0, 2 * (B - 1));
      double Hi = std::pow(2.0, 2 * B);
      int Bar = static_cast<int>(
          40.0 * static_cast<double>(Buckets[static_cast<std::size_t>(B)]) /
          static_cast<double>(MaxCount));
      appendf(Out, "  [%8.0f, %8.0f) us %8llu %s\n", Lo, Hi,
              static_cast<unsigned long long>(
                  Buckets[static_cast<std::size_t>(B)]),
              std::string(static_cast<std::size_t>(std::max(Bar, 1)), '#')
                  .c_str());
    }
  }

  // Time-to-first-reseed: the adaptation latency the paper's special
  // tasks exist to minimize.
  if (!S.ReseedLatenciesUs.empty()) {
    std::vector<double> Sorted = S.ReseedLatenciesUs;
    std::sort(Sorted.begin(), Sorted.end());
    appendf(Out,
            "\nneed_task -> special-push (reseed latency), n=%zu:\n"
            "  min %.1f us   p50 %.1f us   max %.1f us\n",
            S.ReseedLatenciesUs.size(), Sorted.front(),
            percentileSorted(Sorted, 0.50), Sorted.back());
  }
  return Out;
}

} // namespace atc
