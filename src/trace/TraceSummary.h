//===- trace/TraceSummary.h - Text summary of a trace -----------*- C++ -*-===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates a ParsedTrace into the numbers a terminal can show
/// (tools/trace_timeline): per-worker utilization split by mode, a
/// steal-latency histogram (first attempt of an idle episode to the
/// success that ends it), and the time from each need_task observation
/// to the special-task push that re-seeds the system — the paper's
/// adaptation latency.
///
//===----------------------------------------------------------------------===//

#ifndef ATC_TRACE_TRACESUMMARY_H
#define ATC_TRACE_TRACESUMMARY_H

#include "trace/TraceRead.h"

#include <map>
#include <string>
#include <vector>

namespace atc {

/// Per-worker aggregate. "Busy" is every mode except idle and
/// sync_wait: executing any of the five code versions, or recursing
/// over a Tascell workspace.
struct WorkerSummary {
  int Tid = 0;
  double BusyUs = 0;
  double IdleUs = 0;
  double SyncUs = 0;
  std::map<std::string, double> ModeUs; ///< Time per mode name.
  std::uint64_t Steals = 0;       ///< steal-success count.
  std::uint64_t FailedSteals = 0; ///< steal-fail count.
  std::uint64_t SpawnsReal = 0;
  std::uint64_t SpawnsFake = 0;
  std::uint64_t SpecialPushes = 0;
};

struct TraceSummary {
  double SpanUs = 0; ///< Last event time (trace is rebased to t=0).
  std::vector<WorkerSummary> Workers;

  /// Steal latencies: per idle episode, first steal-attempt to the
  /// steal-success that ends it, in microseconds.
  std::vector<double> StealLatenciesUs;

  /// Adaptation latencies: need_task-observe to the next special-push
  /// on the same worker, in microseconds.
  std::vector<double> ReseedLatenciesUs;

  std::uint64_t Dropped = 0;
  std::string Scheduler;
  std::string Source;
  std::string Workload;
};

/// Computes the aggregates above from a loaded trace.
TraceSummary summarizeTrace(const ParsedTrace &T);

/// Renders \p S as the trace_timeline report (utilization table, mode
/// split, log2 steal-latency histogram, reseed latencies).
std::string formatSummary(const TraceSummary &S);

} // namespace atc

#endif // ATC_TRACE_TRACESUMMARY_H
