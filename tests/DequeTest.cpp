//===- tests/DequeTest.cpp - work-stealing deque unit tests ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Protocol tests shared by all three ready-deque implementations (the
/// mutex THE deque, the lock-free AtomicDeque, and the growable lock-free
/// ChaseLevDeque) run as a typed suite: the kinds must be behaviourally
/// indistinguishable to the engine, including the special-task H += 2 /
/// pop_specialtask reset protocol and exactly-once consumption under
/// owner-vs-many-thieves contention. The one sanctioned divergence is a
/// full deque: the fixed-array kinds reject the push while ChaseLev
/// grows, so that test branches on which counter the kind exposes.
/// Implementation-specific behaviour (locks, slot recycling, ring
/// growth) keeps its own tests at the bottom.
///
//===----------------------------------------------------------------------===//

#include "deque/AtomicDeque.h"
#include "deque/ChaseLevDeque.h"
#include "deque/TheDeque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace atc;

namespace {

void *ptr(std::uintptr_t V) { return reinterpret_cast<void *>(V); }

template <typename DequeT> class WsDeque : public ::testing::Test {};
using DequeKinds = ::testing::Types<TheDeque, AtomicDeque, ChaseLevDeque>;
TYPED_TEST_SUITE(WsDeque, DequeKinds);

TYPED_TEST(WsDeque, PushPopLifo) {
  TypeParam D(16);
  EXPECT_TRUE(D.tryPush(ptr(1)));
  EXPECT_TRUE(D.tryPush(ptr(2)));
  EXPECT_EQ(D.size(), 2);
  EXPECT_EQ(D.pop(), PopResult::Success);
  EXPECT_EQ(D.pop(), PopResult::Success);
  EXPECT_TRUE(D.empty());
}

TYPED_TEST(WsDeque, StealTakesHead) {
  TypeParam D(16);
  D.tryPush(ptr(1));
  D.tryPush(ptr(2));
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(1));
  R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(2));
  EXPECT_EQ(D.steal().Status, StealResult::Status::Empty);
}

TYPED_TEST(WsDeque, StealFromEmptyFails) {
  TypeParam D(16);
  EXPECT_EQ(D.steal().Status, StealResult::Status::Empty);
}

TYPED_TEST(WsDeque, PopAfterStealOfOnlyEntryFails) {
  TypeParam D(16);
  D.tryPush(ptr(1));
  ASSERT_EQ(D.steal().Status, StealResult::Status::Success);
  EXPECT_EQ(D.pop(), PopResult::Failure);
  // The deque must read as empty afterwards (indices restored).
  EXPECT_TRUE(D.empty());
  // And be reusable.
  EXPECT_TRUE(D.tryPush(ptr(2)));
  EXPECT_EQ(D.pop(), PopResult::Success);
}

TYPED_TEST(WsDeque, SpecialAtHeadIsSkippedByThief) {
  TypeParam D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  // Only the special present: nothing stealable.
  EXPECT_EQ(D.steal().Status, StealResult::Status::Empty);
  D.tryPush(ptr(11)); // the special's child
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(11)) << "thief must steal the special's child";
}

TYPED_TEST(WsDeque, PopSpecialSuccessWhenChildNotStolen) {
  TypeParam D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  EXPECT_EQ(D.popSpecial(), PopResult::Success);
  EXPECT_TRUE(D.empty());
}

TYPED_TEST(WsDeque, PopOwnChildThenPopSpecial) {
  // The no-steal round trip of the check version: the owner pops its own
  // child back and then retires the special. On the AtomicDeque the child
  // pop is the jump-claim arbitration path (CAS Head -> Head + 2, with
  // the special entry re-published at the new head).
  TypeParam D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  D.tryPush(ptr(11));
  EXPECT_EQ(D.pop(), PopResult::Success);
  EXPECT_EQ(D.popSpecial(), PopResult::Success);
  EXPECT_TRUE(D.empty());
}

TYPED_TEST(WsDeque, SpecialGuardsPushesAfterChildPop) {
  // Regression test: after the owner pops its own child back, the special
  // must still sit at the head guarding whatever the spawn loop pushes
  // next — a later child must be stolen through the H += 2 jump and show
  // up in popSpecial, not be taken as a plain entry. (An AtomicDeque
  // owner-pop that consumed the special without re-publishing it broke
  // exactly this, silently downgrading later steals to unaccounted
  // plain steals.)
  TypeParam D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  D.tryPush(ptr(11));
  ASSERT_EQ(D.pop(), PopResult::Success); // child back; special remains
  D.tryPush(ptr(12)); // next child in the same check-version round
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(12)) << "must be stolen as the special's child";
  EXPECT_EQ(D.pop(), PopResult::Failure);
  EXPECT_EQ(D.popSpecial(), PopResult::Failure);
  EXPECT_TRUE(D.empty());
}

TYPED_TEST(WsDeque, PopSpecialFailsAfterChildStolen) {
  TypeParam D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  D.tryPush(ptr(11));
  ASSERT_EQ(D.steal().Status, StealResult::Status::Success); // takes child
  // The child's own pop fails first (it was stolen)...
  EXPECT_EQ(D.pop(), PopResult::Failure);
  // ...then pop_specialtask reports the stolen child and resets H = T.
  EXPECT_EQ(D.popSpecial(), PopResult::Failure);
  EXPECT_TRUE(D.empty());
}

TYPED_TEST(WsDeque, NormalEntriesBelowSpecialStolenFirst) {
  TypeParam D(16);
  D.tryPush(ptr(1));
  D.tryPush(ptr(2), /*Special=*/true);
  D.tryPush(ptr(3));
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(1));
  R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(3)) << "special skipped, child stolen";
}

TYPED_TEST(WsDeque, FullDequeOverflowsOrGrows) {
  TypeParam D(2);
  EXPECT_TRUE(D.tryPush(ptr(1)));
  EXPECT_TRUE(D.tryPush(ptr(2)));
  if constexpr (requires { D.growCount(); }) {
    // Growable kind: the push past capacity succeeds by doubling the
    // ring; nothing is ever rejected.
    EXPECT_TRUE(D.tryPush(ptr(3)));
    EXPECT_EQ(D.growCount(), 1u);
    EXPECT_EQ(D.overflowCount(), 0u);
    EXPECT_EQ(D.size(), 3);
  } else {
    EXPECT_FALSE(D.tryPush(ptr(3)));
    EXPECT_EQ(D.overflowCount(), 1u);
    EXPECT_EQ(D.size(), 2);
  }
}

TYPED_TEST(WsDeque, OnStealCallbackRunsForEachSteal) {
  TypeParam D(16);
  D.tryPush(ptr(1));
  D.tryPush(ptr(2));
  int Count = 0;
  auto CB = [](void *, void *Ctx) { ++*static_cast<int *>(Ctx); };
  EXPECT_EQ(D.steal(CB, &Count).Status, StealResult::Status::Success);
  EXPECT_EQ(D.steal(CB, &Count).Status, StealResult::Status::Success);
  EXPECT_EQ(D.steal(CB, &Count).Status, StealResult::Status::Empty);
  EXPECT_EQ(Count, 2);
}

TYPED_TEST(WsDeque, HighWaterMarkTracksDepth) {
  TypeParam D(16);
  for (int I = 0; I < 5; ++I)
    D.tryPush(ptr(1));
  for (int I = 0; I < 5; ++I)
    D.pop();
  EXPECT_EQ(D.highWaterMark(), 5);
}

/// Owner-vs-N-thieves stress with exact-once accounting: the owner tracks
/// its own pops via a shadow stack (mirroring how the schedulers know
/// which frame they popped), so every token is attributed exactly once —
/// either to a successful owner pop or to exactly one thief. A pop
/// failure means the head passed the owner's Tail, i.e. everything still
/// in the shadow stack belongs to the thieves.
TYPED_TEST(WsDeque, ExactlyOnceOwnerVsManyThieves) {
  constexpr int NumTokens = 30000;
  constexpr int NumThieves = 3;
  // TheDeque indices are absolute (Head only climbs), so size the array
  // for the worst case of every token being stolen.
  TypeParam D(NumTokens + 8);
  std::atomic<bool> Stop{false};
  std::vector<std::atomic<int>> Seen(NumTokens + 1);

  std::vector<std::thread> Thieves;
  Thieves.reserve(NumThieves);
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        StealResult R = D.steal();
        if (R.Status == StealResult::Status::Success)
          Seen[reinterpret_cast<std::uintptr_t>(R.Frame)].fetch_add(1);
      }
    });

  std::vector<std::uintptr_t> Shadow;
  for (std::uintptr_t I = 1; I <= NumTokens; ++I) {
    ASSERT_TRUE(D.tryPush(ptr(I)));
    Shadow.push_back(I);
    if (I % 16 == 0)
      std::this_thread::yield(); // give the thieves a slice
    if (I % 2 == 0) {
      // Pop everything we believe is there; stop at first failure.
      while (!Shadow.empty()) {
        if (D.pop() == PopResult::Success) {
          Seen[Shadow.back()].fetch_add(1);
          Shadow.pop_back();
        } else {
          Shadow.clear();
          break;
        }
      }
    }
  }
  while (!Shadow.empty()) {
    if (D.pop() == PopResult::Success) {
      Seen[Shadow.back()].fetch_add(1);
      Shadow.pop_back();
    } else {
      Shadow.clear();
    }
  }
  // Let the thieves drain any remainder, then stop them.
  while (!D.empty())
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  for (int I = 1; I <= NumTokens; ++I)
    ASSERT_EQ(Seen[static_cast<std::size_t>(I)].load(), 1)
        << "token " << I;
}

/// The full AdaptiveTC special-task protocol under contention: every
/// round the owner publishes a special plus its child, then runs the
/// check-version epilogue (pop the child, pop_specialtask). Invariants:
/// the two results always agree (child kept -> special intact, child
/// stolen -> H = T reset), a special is never stolen, each child is
/// consumed exactly once, and the deque is empty between rounds.
TYPED_TEST(WsDeque, SpecialProtocolOwnerVsManyThieves) {
  constexpr int Rounds = 4000;
  constexpr int NumThieves = 3;
  // TheDeque's absolute indices climb by one per stolen round.
  TypeParam D(Rounds + 8);
  std::atomic<bool> Stop{false};
  // Children are 1..Rounds; specials are Rounds+1..2*Rounds.
  std::vector<std::atomic<int>> Seen(2 * Rounds + 1);

  std::vector<std::thread> Thieves;
  Thieves.reserve(NumThieves);
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        StealResult R = D.steal();
        if (R.Status == StealResult::Status::Success)
          Seen[reinterpret_cast<std::uintptr_t>(R.Frame)].fetch_add(1);
      }
    });

  int OwnerKept = 0, StolenRounds = 0;
  for (std::uintptr_t I = 1; I <= Rounds; ++I) {
    ASSERT_TRUE(D.tryPush(ptr(Rounds + I), /*Special=*/true));
    ASSERT_TRUE(D.tryPush(ptr(I)));
    if (I % 16 == 0)
      std::this_thread::yield(); // window for the thieves to jump in
    PopResult Child = D.pop();
    PopResult Special = D.popSpecial();
    ASSERT_EQ(Special, Child)
        << "round " << I
        << ": pop_specialtask must mirror the child pop result";
    if (Child == PopResult::Success) {
      Seen[I].fetch_add(1);
      ++OwnerKept;
    } else {
      ++StolenRounds;
    }
    ASSERT_TRUE(D.empty()) << "round " << I;
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  for (int I = 1; I <= Rounds; ++I)
    ASSERT_EQ(Seen[static_cast<std::size_t>(I)].load(), 1)
        << "child " << I << " (owner kept " << OwnerKept << ", stolen "
        << StolenRounds << ")";
  for (int I = Rounds + 1; I <= 2 * Rounds; ++I)
    ASSERT_EQ(Seen[static_cast<std::size_t>(I)].load(), 0)
        << "special " << I << " was stolen";
}

//===----------------------------------------------------------------------===//
// Implementation-specific behaviour
//===----------------------------------------------------------------------===//

TEST(TheDeque, EmptyProbeSkipsTheLock) {
  TheDeque D(16);
  EXPECT_EQ(D.steal().Status, StealResult::Status::Empty);
  EXPECT_EQ(D.lockAcquireCount(), 0u)
      << "an empty steal probe must not take the mutex";
  D.tryPush(ptr(1));
  EXPECT_EQ(D.steal().Status, StealResult::Status::Success);
  EXPECT_EQ(D.lockAcquireCount(), 1u);
}

TEST(AtomicDeque, NeverTakesALock) {
  AtomicDeque D(16);
  D.tryPush(ptr(1));
  EXPECT_EQ(D.steal().Status, StealResult::Status::Success);
  EXPECT_EQ(D.lockAcquireCount(), 0u);
}

TEST(AtomicDeque, CircularBufferRecyclesSlots) {
  // Unlike TheDeque's absolute indices, the AtomicDeque maps monotonic
  // indices onto a small circular buffer: steady-state churn far beyond
  // the capacity needs no reset.
  AtomicDeque D(4);
  for (std::uintptr_t I = 1; I <= 100; ++I) {
    ASSERT_TRUE(D.tryPush(ptr(I), /*Special=*/I % 5 == 0));
    ASSERT_TRUE(D.tryPush(ptr(1000 + I)));
    if (I % 2 == 0) {
      StealResult R = D.steal();
      ASSERT_EQ(R.Status, StealResult::Status::Success);
      // The head entry, or — every tenth round — the special's child.
      ASSERT_EQ(R.Frame, I % 5 == 0 ? ptr(1000 + I) : ptr(I));
      ASSERT_EQ(D.pop(), I % 5 == 0 ? PopResult::Failure
                                    : PopResult::Success);
      if (I % 5 == 0) {
        ASSERT_EQ(D.popSpecial(), PopResult::Failure);
      }
    } else {
      // Popping the child jump-claims the special when one sits below it
      // and re-publishes it; popSpecial then retires the re-published
      // entry instead of a second pop.
      ASSERT_EQ(D.pop(), PopResult::Success);
      if (I % 5 == 0) {
        ASSERT_EQ(D.popSpecial(), PopResult::Success);
      } else {
        ASSERT_EQ(D.pop(), PopResult::Success);
      }
    }
    ASSERT_TRUE(D.empty()) << "round " << I;
  }
  EXPECT_EQ(D.overflowCount(), 0u);
}

TEST(ChaseLev, NeverTakesALock) {
  ChaseLevDeque D(16);
  D.tryPush(ptr(1));
  EXPECT_EQ(D.steal().Status, StealResult::Status::Success);
  EXPECT_EQ(D.lockAcquireCount(), 0u);
}

TEST(ChaseLev, CapacityRoundsUpToPowerOfTwo) {
  ChaseLevDeque D(5);
  EXPECT_EQ(D.capacity(), 8);
}

TEST(ChaseLev, GrowsInsteadOfOverflowing) {
  ChaseLevDeque D(2);
  for (std::uintptr_t I = 1; I <= 100; ++I)
    ASSERT_TRUE(D.tryPush(ptr(I)));
  EXPECT_GT(D.growCount(), 0u);
  EXPECT_EQ(D.overflowCount(), 0u);
  EXPECT_GE(D.capacity(), 100);
  EXPECT_EQ(D.highWaterMark(), 100);
  // LIFO order survives the copies into successively larger rings.
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(D.pop(), PopResult::Success);
  EXPECT_TRUE(D.empty());
}

TEST(ChaseLev, GrowthPreservesSpecialProtocol) {
  // A special sitting at the head must guard its children across ring
  // growth: grow while the special is live, then check both epilogue
  // outcomes still hold.
  ChaseLevDeque D(2);
  ASSERT_TRUE(D.tryPush(ptr(100), /*Special=*/true));
  for (std::uintptr_t I = 1; I <= 9; ++I)
    ASSERT_TRUE(D.tryPush(ptr(I))); // forces at least two grows
  EXPECT_GT(D.growCount(), 0u);
  // A thief jump-claims the oldest child through the special.
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(1)) << "thief must steal the special's child";
  // The remaining children are plain entries again.
  for (std::uintptr_t I = 2; I <= 9; ++I) {
    R = D.steal();
    ASSERT_EQ(R.Status, StealResult::Status::Success);
    EXPECT_EQ(R.Frame, ptr(I));
  }
  EXPECT_EQ(D.pop(), PopResult::Failure);
  EXPECT_EQ(D.popSpecial(), PopResult::Failure);
  EXPECT_TRUE(D.empty());
}

/// Exactly-once accounting while the ring grows under live thieves: the
/// owner outruns its pops so the deque deepens past several doublings
/// with steals in flight — the ordering the grow publication (buffer
/// release-store before the Tail store that publishes into it) exists
/// for. Same shadow-stack attribution as the typed stress above.
TEST(ChaseLev, GrowsUnderContentionExactlyOnce) {
  constexpr int NumTokens = 50000;
  constexpr int NumThieves = 3;
  ChaseLevDeque D(8);
  std::atomic<bool> Stop{false};
  std::vector<std::atomic<int>> Seen(NumTokens + 1);

  std::vector<std::thread> Thieves;
  Thieves.reserve(NumThieves);
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        StealResult R = D.steal();
        if (R.Status == StealResult::Status::Success)
          Seen[reinterpret_cast<std::uintptr_t>(R.Frame)].fetch_add(1);
      }
    });

  std::vector<std::uintptr_t> Shadow;
  for (std::uintptr_t I = 1; I <= NumTokens; ++I) {
    ASSERT_TRUE(D.tryPush(ptr(I)));
    Shadow.push_back(I);
    // Pop rarely relative to pushes so depth (and the ring) keeps
    // growing while the thieves race.
    if (I % 64 == 0) {
      if (D.pop() == PopResult::Success) {
        Seen[Shadow.back()].fetch_add(1);
        Shadow.pop_back();
      } else {
        Shadow.clear();
      }
    }
  }
  while (!Shadow.empty()) {
    if (D.pop() == PopResult::Success) {
      Seen[Shadow.back()].fetch_add(1);
      Shadow.pop_back();
    } else {
      Shadow.clear();
    }
  }
  while (!D.empty())
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  EXPECT_GT(D.growCount(), 0u) << "stress never exercised growth";
  for (int I = 1; I <= NumTokens; ++I)
    ASSERT_EQ(Seen[static_cast<std::size_t>(I)].load(), 1)
        << "token " << I;
}

} // namespace
