//===- tests/DequeTest.cpp - work-stealing deque unit tests ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deque/ChaseLevDeque.h"
#include "deque/TheDeque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace atc;

namespace {

void *ptr(std::uintptr_t V) { return reinterpret_cast<void *>(V); }

TEST(TheDeque, PushPopLifo) {
  TheDeque D(16);
  EXPECT_TRUE(D.tryPush(ptr(1)));
  EXPECT_TRUE(D.tryPush(ptr(2)));
  EXPECT_EQ(D.size(), 2);
  EXPECT_EQ(D.pop(), PopResult::Success);
  EXPECT_EQ(D.pop(), PopResult::Success);
  EXPECT_TRUE(D.empty());
}

TEST(TheDeque, StealTakesHead) {
  TheDeque D(16);
  D.tryPush(ptr(1));
  D.tryPush(ptr(2));
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(1));
  R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(2));
  EXPECT_EQ(D.steal().Status, StealResult::Status::Empty);
}

TEST(TheDeque, StealFromEmptyFails) {
  TheDeque D(16);
  EXPECT_EQ(D.steal().Status, StealResult::Status::Empty);
}

TEST(TheDeque, PopAfterStealOfOnlyEntryFails) {
  TheDeque D(16);
  D.tryPush(ptr(1));
  ASSERT_EQ(D.steal().Status, StealResult::Status::Success);
  EXPECT_EQ(D.pop(), PopResult::Failure);
  // The deque must read as empty afterwards (indices restored).
  EXPECT_TRUE(D.empty());
  // And be reusable.
  EXPECT_TRUE(D.tryPush(ptr(2)));
  EXPECT_EQ(D.pop(), PopResult::Success);
}

TEST(TheDeque, SpecialAtHeadIsSkippedByThief) {
  TheDeque D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  // Only the special present: nothing stealable.
  EXPECT_EQ(D.steal().Status, StealResult::Status::Empty);
  D.tryPush(ptr(11)); // the special's child
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(11)) << "thief must steal the special's child";
}

TEST(TheDeque, PopSpecialSuccessWhenChildNotStolen) {
  TheDeque D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  EXPECT_EQ(D.popSpecial(), PopResult::Success);
  EXPECT_TRUE(D.empty());
}

TEST(TheDeque, PopSpecialFailsAfterChildStolen) {
  TheDeque D(16);
  D.tryPush(ptr(10), /*Special=*/true);
  D.tryPush(ptr(11));
  ASSERT_EQ(D.steal().Status, StealResult::Status::Success); // takes child
  // The child's own pop fails first (it was stolen)...
  EXPECT_EQ(D.pop(), PopResult::Failure);
  // ...then pop_specialtask reports the stolen child and resets H = T.
  EXPECT_EQ(D.popSpecial(), PopResult::Failure);
  EXPECT_TRUE(D.empty());
}

TEST(TheDeque, NormalEntriesBelowSpecialStolenFirst) {
  TheDeque D(16);
  D.tryPush(ptr(1));
  D.tryPush(ptr(2), /*Special=*/true);
  D.tryPush(ptr(3));
  StealResult R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(1));
  R = D.steal();
  ASSERT_EQ(R.Status, StealResult::Status::Success);
  EXPECT_EQ(R.Frame, ptr(3)) << "special skipped, child stolen";
}

TEST(TheDeque, OverflowReportedAndCounted) {
  TheDeque D(2);
  EXPECT_TRUE(D.tryPush(ptr(1)));
  EXPECT_TRUE(D.tryPush(ptr(2)));
  EXPECT_FALSE(D.tryPush(ptr(3)));
  EXPECT_EQ(D.overflowCount(), 1u);
  EXPECT_EQ(D.size(), 2);
}

TEST(TheDeque, OnStealCallbackRunsForEachSteal) {
  TheDeque D(16);
  D.tryPush(ptr(1));
  D.tryPush(ptr(2));
  int Count = 0;
  auto CB = [](void *, void *Ctx) { ++*static_cast<int *>(Ctx); };
  EXPECT_EQ(D.steal(CB, &Count).Status, StealResult::Status::Success);
  EXPECT_EQ(D.steal(CB, &Count).Status, StealResult::Status::Success);
  EXPECT_EQ(D.steal(CB, &Count).Status, StealResult::Status::Empty);
  EXPECT_EQ(Count, 2);
}

TEST(TheDeque, HighWaterMarkTracksDepth) {
  TheDeque D(16);
  for (int I = 0; I < 5; ++I)
    D.tryPush(ptr(1));
  for (int I = 0; I < 5; ++I)
    D.pop();
  EXPECT_EQ(D.highWaterMark(), 5);
}

/// Concurrency stress with exact-once accounting: the owner tracks its own
/// pops via a shadow stack (mirroring how the schedulers know which frame
/// they popped), so every token is attributed exactly once — either to a
/// successful owner pop or to the thief.
TEST(TheDeque, ExactlyOnceConsumption) {
  constexpr int NumTokens = 50000;
  TheDeque D(512);
  std::atomic<bool> Stop{false};
  std::vector<char> StolenSeen(NumTokens + 1, 0);
  std::vector<char> PoppedSeen(NumTokens + 1, 0);
  std::mutex StolenLock;

  std::thread Thief([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      StealResult R = D.steal();
      if (R.Status == StealResult::Status::Success) {
        std::lock_guard<std::mutex> G(StolenLock);
        StolenSeen[reinterpret_cast<std::uintptr_t>(R.Frame)] += 1;
      }
    }
  });

  std::vector<std::uintptr_t> Shadow;
  for (std::uintptr_t I = 1; I <= NumTokens; ++I) {
    while (!D.tryPush(ptr(I)))
      std::this_thread::yield();
    Shadow.push_back(I);
    if (I % 2 == 0) {
      // Pop everything we believe is there; stop at first failure.
      while (!Shadow.empty()) {
        if (D.pop() == PopResult::Success) {
          PoppedSeen[Shadow.back()] += 1;
          Shadow.pop_back();
        } else {
          // Stolen from under us: everything still in the shadow stack
          // belongs to the thief now.
          Shadow.clear();
          break;
        }
      }
    }
  }
  while (!Shadow.empty()) {
    if (D.pop() == PopResult::Success) {
      PoppedSeen[Shadow.back()] += 1;
      Shadow.pop_back();
    } else {
      Shadow.clear();
    }
  }
  // Give the thief a moment to drain any remainder, then stop it.
  while (!D.empty())
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  Thief.join();

  for (std::uintptr_t I = 1; I <= NumTokens; ++I) {
    int Total = StolenSeen[I] + PoppedSeen[I];
    ASSERT_EQ(Total, 1) << "token " << I << " consumed " << Total
                        << " times";
  }
}

TEST(ChaseLev, PushPopLifo) {
  ChaseLevDeque D;
  D.push(ptr(1));
  D.push(ptr(2));
  EXPECT_EQ(D.pop(), ptr(2));
  EXPECT_EQ(D.pop(), ptr(1));
  EXPECT_EQ(D.pop(), nullptr);
}

TEST(ChaseLev, StealTakesOldest) {
  ChaseLevDeque D;
  D.push(ptr(1));
  D.push(ptr(2));
  EXPECT_EQ(D.steal(), ptr(1));
  EXPECT_EQ(D.steal(), ptr(2));
  EXPECT_EQ(D.steal(), nullptr);
}

TEST(ChaseLev, GrowsInsteadOfOverflowing) {
  ChaseLevDeque D(2);
  for (std::uintptr_t I = 1; I <= 100; ++I)
    D.push(ptr(I));
  EXPECT_GT(D.growCount(), 0u);
  for (std::uintptr_t I = 100; I >= 1; --I)
    EXPECT_EQ(D.pop(), ptr(I));
}

TEST(ChaseLev, ExactlyOnceUnderContention) {
  constexpr int NumTokens = 50000;
  constexpr int NumThieves = 3;
  ChaseLevDeque D(8);
  std::atomic<bool> Stop{false};
  std::vector<std::atomic<int>> Seen(NumTokens + 1);

  std::vector<std::thread> Thieves;
  for (int T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        if (void *F = D.steal())
          Seen[reinterpret_cast<std::uintptr_t>(F)].fetch_add(1);
      }
    });

  for (std::uintptr_t I = 1; I <= NumTokens; ++I) {
    D.push(ptr(I));
    if (I % 4 == 0)
      if (void *F = D.pop())
        Seen[reinterpret_cast<std::uintptr_t>(F)].fetch_add(1);
  }
  while (void *F = D.pop())
    Seen[reinterpret_cast<std::uintptr_t>(F)].fetch_add(1);
  while (!D.empty())
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  for (int I = 1; I <= NumTokens; ++I)
    ASSERT_EQ(Seen[static_cast<std::size_t>(I)].load(), 1)
        << "token " << I;
}

} // namespace
