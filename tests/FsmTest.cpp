//===- tests/FsmTest.cpp - Figure 2 FSM and policy unit tests -------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-driven coverage of every Figure 2 transition of FiveVersionFsm,
/// the FsmCounters edge matrix, and the task-creation policy classes the
/// scheduler kernel is instantiated with (including the simulator's
/// runtime-kind frontend dispatchChild).
///
//===----------------------------------------------------------------------===//

#include "core/kernel/TaskCreationPolicy.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace atc;

namespace {

// Readable failure output for transition mismatches.
std::string describe(const FsmTransition &T) {
  std::ostringstream OS;
  OS << codeVersionName(T.Child) << " dp=" << T.ChildDp
     << (T.SpawnTask ? " spawn" : "") << (T.SpecialPush ? " special" : "")
     << (T.PolledNeedTask ? " polled" : "");
  return OS.str();
}

struct Edge {
  CodeVersion Cur;
  int Dp;
  bool NeedTask;
  FsmTransition Expect;
};

//===----------------------------------------------------------------------===//
// FiveVersionFsm: every Figure 2 edge at cutoff = 3
//===----------------------------------------------------------------------===//

TEST(FiveVersionFsm, Figure2TransitionTable) {
  constexpr int Cutoff = 3;
  const FiveVersionFsm Fsm(Cutoff);
  ASSERT_EQ(Fsm.cutoff(), Cutoff);

  const Edge Table[] = {
      // fast: spawn fast children while dp < cutoff...
      {CodeVersion::Fast, 0, false, {CodeVersion::Fast, 1, true, false, false}},
      {CodeVersion::Fast, 1, false, {CodeVersion::Fast, 2, true, false, false}},
      {CodeVersion::Fast, 2, false, {CodeVersion::Fast, 3, true, false, false}},
      // ...then hand off to check (no spawn, depth preserved).
      {CodeVersion::Fast, 3, false,
       {CodeVersion::Check, 3, false, false, false}},
      {CodeVersion::Fast, 7, false,
       {CodeVersion::Check, 7, false, false, false}},
      // need_task is not consulted outside check.
      {CodeVersion::Fast, 0, true, {CodeVersion::Fast, 1, true, false, false}},
      {CodeVersion::Fast, 3, true,
       {CodeVersion::Check, 3, false, false, false}},

      // slow (stolen continuation) dispatches exactly like fast.
      {CodeVersion::Slow, 0, false, {CodeVersion::Fast, 1, true, false, false}},
      {CodeVersion::Slow, 2, false, {CodeVersion::Fast, 3, true, false, false}},
      {CodeVersion::Slow, 3, false,
       {CodeVersion::Check, 3, false, false, false}},
      {CodeVersion::Slow, 3, true,
       {CodeVersion::Check, 3, false, false, false}},

      // check: fake task while need_task is clear; every edge polls.
      {CodeVersion::Check, 3, false,
       {CodeVersion::Check, 3, false, false, true}},
      {CodeVersion::Check, 0, false,
       {CodeVersion::Check, 0, false, false, true}},
      // need_task observed: publish a special task, re-enter fast_2, and
      // reset the spawn depth to 0 regardless of the current depth.
      {CodeVersion::Check, 3, true, {CodeVersion::Fast2, 0, true, true, true}},
      {CodeVersion::Check, 9, true, {CodeVersion::Fast2, 0, true, true, true}},

      // fast_2: doubled cut-off...
      {CodeVersion::Fast2, 0, false,
       {CodeVersion::Fast2, 1, true, false, false}},
      {CodeVersion::Fast2, 5, false,
       {CodeVersion::Fast2, 6, true, false, false}},
      // ...then sequence, never check again.
      {CodeVersion::Fast2, 6, false,
       {CodeVersion::Sequence, 6, false, false, false}},
      {CodeVersion::Fast2, 6, true,
       {CodeVersion::Sequence, 6, false, false, false}},

      // sequence is absorbing.
      {CodeVersion::Sequence, 0, false,
       {CodeVersion::Sequence, 0, false, false, false}},
      {CodeVersion::Sequence, 6, true,
       {CodeVersion::Sequence, 6, false, false, false}},
  };

  for (const Edge &E : Table) {
    const FsmTransition Got = Fsm.child(E.Cur, E.Dp, E.NeedTask);
    EXPECT_TRUE(Got == E.Expect)
        << codeVersionName(E.Cur) << " dp=" << E.Dp
        << " need_task=" << E.NeedTask << ": got [" << describe(Got)
        << "], want [" << describe(E.Expect) << "]";
  }
}

TEST(FiveVersionFsm, IsConstexprEvaluable) {
  // The FSM must fold at compile time so the frame engine's per-policy
  // instantiations can dead-code-eliminate unreachable branches.
  constexpr FiveVersionFsm Fsm(2);
  static_assert(Fsm.child(CodeVersion::Fast, 0, false).SpawnTask);
  static_assert(Fsm.child(CodeVersion::Fast, 2, false).Child ==
                CodeVersion::Check);
  static_assert(Fsm.child(CodeVersion::Check, 2, true).ChildDp == 0);
  static_assert(Fsm.child(CodeVersion::Check, 2, true).SpecialPush);
  static_assert(Fsm.child(CodeVersion::Fast2, 4, false).Child ==
                CodeVersion::Sequence);
  static_assert(!Fsm.child(CodeVersion::Sequence, 0, true).SpawnTask);
}

TEST(FiveVersionFsm, ZeroCutoffGoesStraightToCheck) {
  // NumWorkers = 1 gives cutoff = log2(1) = 0: the root's children
  // immediately run as fake tasks.
  const FiveVersionFsm Fsm(0);
  const FsmTransition T = Fsm.child(CodeVersion::Fast, 0, false);
  EXPECT_EQ(T.Child, CodeVersion::Check);
  EXPECT_FALSE(T.SpawnTask);
  // And fast_2 (2 * 0 = 0) degrades straight to sequence.
  EXPECT_EQ(Fsm.child(CodeVersion::Fast2, 0, false).Child,
            CodeVersion::Sequence);
}

TEST(FiveVersionFsm, VersionNames) {
  EXPECT_STREQ(codeVersionName(CodeVersion::Fast), "fast");
  EXPECT_STREQ(codeVersionName(CodeVersion::Check), "check");
  EXPECT_STREQ(codeVersionName(CodeVersion::Fast2), "fast_2");
  EXPECT_STREQ(codeVersionName(CodeVersion::Sequence), "sequence");
  EXPECT_STREQ(codeVersionName(CodeVersion::Slow), "slow");
}

//===----------------------------------------------------------------------===//
// FsmCounters
//===----------------------------------------------------------------------===//

TEST(FsmCounters, RecordsEdgesAndAggregates) {
  FsmCounters A;
  EXPECT_EQ(A.total(), 0u);
  A.record(CodeVersion::Fast, CodeVersion::Fast);
  A.record(CodeVersion::Fast, CodeVersion::Fast);
  A.record(CodeVersion::Fast, CodeVersion::Check);
  A.record(CodeVersion::Check, CodeVersion::Fast2);
  EXPECT_EQ(A.edge(CodeVersion::Fast, CodeVersion::Fast), 2u);
  EXPECT_EQ(A.edge(CodeVersion::Fast, CodeVersion::Check), 1u);
  EXPECT_EQ(A.edge(CodeVersion::Check, CodeVersion::Fast2), 1u);
  EXPECT_EQ(A.edge(CodeVersion::Fast2, CodeVersion::Sequence), 0u);
  EXPECT_EQ(A.total(), 4u);

  FsmCounters B;
  B.record(CodeVersion::Fast, CodeVersion::Fast);
  B.record(CodeVersion::Slow, CodeVersion::Fast);
  A += B;
  EXPECT_EQ(A.edge(CodeVersion::Fast, CodeVersion::Fast), 3u);
  EXPECT_EQ(A.edge(CodeVersion::Slow, CodeVersion::Fast), 1u);
  EXPECT_EQ(A.total(), 6u);
}

//===----------------------------------------------------------------------===//
// Task-creation policies
//===----------------------------------------------------------------------===//

TEST(TaskPolicies, TraitsMatchTheirKinds) {
  static_assert(CilkTaskPolicy::Kind == SchedulerKind::Cilk);
  static_assert(CilkSynchedTaskPolicy::Kind == SchedulerKind::CilkSynched);
  static_assert(CutoffTaskPolicy::Kind == SchedulerKind::Cutoff);
  static_assert(AdaptiveTCTaskPolicy::Kind == SchedulerKind::AdaptiveTC);
  // Only Cilk models a fresh heap workspace per child.
  static_assert(!CilkTaskPolicy::PooledWorkspace);
  static_assert(CilkSynchedTaskPolicy::PooledWorkspace);
  static_assert(CutoffTaskPolicy::PooledWorkspace);
  static_assert(AdaptiveTCTaskPolicy::PooledWorkspace);
}

TEST(TaskPolicies, CilkAlwaysSpawns) {
  const CilkTaskPolicy Cilk(3);
  const CilkSynchedTaskPolicy Synched(3);
  for (CodeVersion Cur : {CodeVersion::Fast, CodeVersion::Check,
                          CodeVersion::Fast2, CodeVersion::Sequence,
                          CodeVersion::Slow})
    for (int Dp : {0, 3, 100})
      for (bool NT : {false, true}) {
        const FsmTransition Expect = {CodeVersion::Fast, Dp + 1, true, false,
                                      false};
        EXPECT_TRUE(Cilk.child(Cur, Dp, NT) == Expect);
        EXPECT_TRUE(Synched.child(Cur, Dp, NT) == Expect);
      }
}

TEST(TaskPolicies, CutoffIsStickySequence) {
  const CutoffTaskPolicy Pol(3);
  // Above the cut-off: real fast tasks.
  EXPECT_TRUE(Pol.child(CodeVersion::Fast, 0, false) ==
              FsmTransition({CodeVersion::Fast, 1, true, false, false}));
  EXPECT_TRUE(Pol.child(CodeVersion::Fast, 2, true) ==
              FsmTransition({CodeVersion::Fast, 3, true, false, false}));
  // Beyond it: sequence, and sequence never re-enters task mode even if
  // the depth expression would allow it (stolen subtrees keep their dp).
  EXPECT_TRUE(Pol.child(CodeVersion::Fast, 3, false) ==
              FsmTransition({CodeVersion::Sequence, 3, false, false, false}));
  EXPECT_TRUE(Pol.child(CodeVersion::Sequence, 0, false) ==
              FsmTransition({CodeVersion::Sequence, 0, false, false, false}));
}

TEST(TaskPolicies, AdaptiveTCDelegatesToTheFsm) {
  const AdaptiveTCTaskPolicy Pol(4);
  const FiveVersionFsm Fsm(4);
  for (CodeVersion Cur : {CodeVersion::Fast, CodeVersion::Check,
                          CodeVersion::Fast2, CodeVersion::Sequence,
                          CodeVersion::Slow})
    for (int Dp : {0, 3, 4, 7, 8})
      for (bool NT : {false, true})
        EXPECT_TRUE(Pol.child(Cur, Dp, NT) == Fsm.child(Cur, Dp, NT))
            << codeVersionName(Cur) << " dp=" << Dp << " need_task=" << NT;
}

TEST(TaskPolicies, DispatchChildMatchesStaticPolicies) {
  constexpr int Cutoff = 3;
  const CilkTaskPolicy Cilk(Cutoff);
  const CilkSynchedTaskPolicy Synched(Cutoff);
  const CutoffTaskPolicy Cut(Cutoff);
  const AdaptiveTCTaskPolicy Atc(Cutoff);
  for (CodeVersion Cur : {CodeVersion::Fast, CodeVersion::Check,
                          CodeVersion::Fast2, CodeVersion::Sequence,
                          CodeVersion::Slow})
    for (int Dp : {0, 2, 3, 6, 9})
      for (bool NT : {false, true}) {
        EXPECT_TRUE(dispatchChild(SchedulerKind::Cilk, Cutoff, Cur, Dp, NT) ==
                    Cilk.child(Cur, Dp, NT));
        EXPECT_TRUE(dispatchChild(SchedulerKind::CilkSynched, Cutoff, Cur, Dp,
                                  NT) == Synched.child(Cur, Dp, NT));
        EXPECT_TRUE(dispatchChild(SchedulerKind::Cutoff, Cutoff, Cur, Dp,
                                  NT) == Cut.child(Cur, Dp, NT));
        EXPECT_TRUE(dispatchChild(SchedulerKind::AdaptiveTC, Cutoff, Cur, Dp,
                                  NT) == Atc.child(Cur, Dp, NT));
        // Kinds without deque spawn sites take a non-spawning sequence
        // edge unconditionally.
        for (SchedulerKind K :
             {SchedulerKind::Sequential, SchedulerKind::Tascell}) {
          const FsmTransition T = dispatchChild(K, Cutoff, Cur, Dp, NT);
          EXPECT_EQ(T.Child, CodeVersion::Sequence);
          EXPECT_FALSE(T.SpawnTask);
          EXPECT_FALSE(T.SpecialPush);
          EXPECT_FALSE(T.PolledNeedTask);
        }
      }
}

} // namespace
