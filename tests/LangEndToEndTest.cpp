//===- tests/LangEndToEndTest.cpp - compile-and-run pipeline tests --------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the atcc pipeline: ATC source -> generated C++ ->
/// host compiler -> executed binary -> verified output. These prove the
/// five-version translation computes correct results through the real
/// protocol hooks (GenRuntime), including the forced-need_task mode that
/// drives the check version's special-task transition.
///
//===----------------------------------------------------------------------===//

#include "lang/Compile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef ATC_SOURCE_DIR
#error "ATC_SOURCE_DIR must be defined by the build"
#endif

using namespace atc;
using namespace atc::lang;

namespace {

/// Compiles ATC source, builds it with the host compiler, runs it with
/// \p Env prefixes, and returns captured stdout. Fails the test on any
/// pipeline error.
std::string compileAndRun(const std::string &AtcSource,
                          const std::string &Env = "") {
  CompileResult R = compileAtc(AtcSource);
  EXPECT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  if (!R.Success)
    return "";

  std::string Base =
      ::testing::TempDir() + "atcgen_" +
      std::to_string(reinterpret_cast<std::uintptr_t>(&R) ^
                     static_cast<std::uintptr_t>(::getpid()));
  std::string CppPath = Base + ".cpp";
  std::string BinPath = Base + ".bin";
  {
    std::ofstream Out(CppPath);
    Out << R.Cpp;
  }

  std::string Compile = "g++ -std=c++20 -O1 -I " ATC_SOURCE_DIR "/src " +
                        CppPath + " -o " + BinPath + " 2>&1";
  {
    std::FILE *P = ::popen(Compile.c_str(), "r");
    EXPECT_NE(P, nullptr);
    std::string CompilerOut;
    char Buf[512];
    while (std::fgets(Buf, sizeof(Buf), P))
      CompilerOut += Buf;
    int Status = ::pclose(P);
    EXPECT_EQ(Status, 0) << "host compile failed:\n" << CompilerOut;
    if (Status != 0)
      return "";
  }

  std::string Run = Env + " " + BinPath;
  std::FILE *P = ::popen(Run.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Output;
  char Buf[512];
  while (std::fgets(Buf, sizeof(Buf), P))
    Output += Buf;
  int Status = ::pclose(P);
  EXPECT_EQ(Status, 0) << "generated binary failed";
  std::remove(CppPath.c_str());
  std::remove(BinPath.c_str());
  return Output;
}

const char *NQueensSrc = R"(
  int ok(int depth, char *x, int j) {
    for (int i = 0; i < depth; i = i + 1) {
      int d = x[i] - j;
      if (d == 0 || d == depth - i || d == i - depth) return 0;
    }
    return 1;
  }
  cilk int nqueens(int depth, int n, char *x)
  taskprivate: (*x) (n * sizeof(char));
  {
    long sn = 0;
    if (depth == n) return 1;
    for (int j = 0; j < n; j = j + 1) {
      if (ok(depth, x, j)) {
        x[depth] = j;
        sn += spawn nqueens(depth + 1, n, x);
      }
    }
    sync;
    return sn;
  }
  int main() {
    char board[16];
    print_long(nqueens(0, 8, board));
    return 0;
  }
)";

TEST(LangEndToEnd, NQueens8Counts92) {
  EXPECT_EQ(compileAndRun(NQueensSrc), "92\n");
}

TEST(LangEndToEnd, NQueensCorrectUnderForcedSpecialTasks) {
  // Force need_task on every 3rd poll: the check version repeatedly
  // creates special tasks and runs children through fast_2 with depth
  // reset — the result must not change.
  EXPECT_EQ(compileAndRun(NQueensSrc, "ATCGEN_FORCE_NEEDTASK=3"), "92\n");
}

TEST(LangEndToEnd, NQueensCorrectAcrossCutoffs) {
  for (int Cutoff : {0, 1, 5, 30}) {
    std::string Env = "ATCGEN_CUTOFF=" + std::to_string(Cutoff);
    EXPECT_EQ(compileAndRun(NQueensSrc, Env), "92\n") << Env;
  }
}

TEST(LangEndToEnd, NQueensCorrectWithDequeMirror) {
  // ATCGEN_DEQUE mirrors every protocol operation into a real scheduler
  // deque with step-by-step agreement asserts; an abort (protocol
  // divergence) fails the exit-status check inside compileAndRun.
  for (const char *Kind : {"the", "atomic", "chaselev"})
    EXPECT_EQ(compileAndRun(NQueensSrc, std::string("ATCGEN_DEQUE=") + Kind),
              "92\n")
        << Kind;
}

TEST(LangEndToEnd, DequeMirrorComposesWithForcedSpecialTasks) {
  // Forced need_task drives pushSpecial/popSpecial through the mirror;
  // a 2-entry initial capacity forces ChaseLev ring growth mid-run (the
  // fixed-capacity kinds get the same protocol at default capacity).
  EXPECT_EQ(compileAndRun(NQueensSrc, "ATCGEN_DEQUE=chaselev "
                                      "ATCGEN_DEQUE_CAP=2 "
                                      "ATCGEN_FORCE_NEEDTASK=3"),
            "92\n");
  EXPECT_EQ(compileAndRun(NQueensSrc,
                          "ATCGEN_DEQUE=atomic ATCGEN_FORCE_NEEDTASK=3"),
            "92\n");
  EXPECT_EQ(compileAndRun(NQueensSrc,
                          "ATCGEN_DEQUE=the ATCGEN_FORCE_NEEDTASK=3"),
            "92\n");
}

TEST(LangEndToEnd, FibComputesCorrectly) {
  const char *Src = R"(
    cilk long fib(int n) {
      long a = 0;
      long b = 0;
      if (n < 2) return n;
      a += spawn fib(n - 1);
      b += spawn fib(n - 2);
      sync;
      return a + b;
    }
    int main() { print_long(fib(20)); return 0; }
  )";
  EXPECT_EQ(compileAndRun(Src), "6765\n");
}

TEST(LangEndToEnd, StructWorkspaceProgram) {
  // A miniature Sudoku-flavoured program: a struct workspace passed as
  // taskprivate, mutated in place by fake tasks and copied for tasks.
  const char *Src = R"(
    struct Grid {
      int cells[4];
      int used;
    };
    int bit(int v) {
      int b = 1;
      for (int i = 0; i < v; i = i + 1)
        b = b * 2;
      return b;
    }
    cilk int fill(int pos, struct Grid *g)
    taskprivate: (*g) (sizeof(struct Grid));
    {
      long sn = 0;
      if (pos == 4) return 1;
      for (int v = 0; v < 4; v = v + 1) {
        if (!(g->used / bit(v) % 2)) {
          g->cells[pos] = v;
          g->used = g->used + bit(v);
          sn += spawn fill(pos + 1, g);
          g->used = g->used - bit(v);
        }
      }
      sync;
      return sn;
    }
    int main() {
      struct Grid g;
      g.used = 0;
      print_long(fill(0, &g));
      return 0;
    }
  )";
  // Permutations of 4 values: 4! = 24.
  EXPECT_EQ(compileAndRun(Src), "24\n");
  EXPECT_EQ(compileAndRun(Src, "ATCGEN_FORCE_NEEDTASK=2"), "24\n");
}

TEST(LangEndToEnd, AppendixASudokuProgramFromFile) {
  // The paper's Appendix A workload, 4x4 variant: an empty grid has
  // exactly 288 solutions.
  std::ifstream In(ATC_SOURCE_DIR "/examples/atc/sudoku4.atc");
  ASSERT_TRUE(In.good()) << "examples/atc/sudoku4.atc missing";
  std::string Src((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(compileAndRun(Src), "288\n");
  EXPECT_EQ(compileAndRun(Src, "ATCGEN_FORCE_NEEDTASK=4"), "288\n");
}

TEST(LangEndToEnd, ShippedExamplesCompile) {
  for (const char *Name : {"nqueens.atc", "fib.atc", "sudoku4.atc"}) {
    std::ifstream In(std::string(ATC_SOURCE_DIR "/examples/atc/") + Name);
    ASSERT_TRUE(In.good()) << Name;
    std::string Src((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
    CompileResult R = compileAtc(Src);
    EXPECT_TRUE(R.Success) << Name << ": "
                           << (R.Errors.empty() ? "" : R.Errors[0]);
  }
}

TEST(LangEndToEnd, WhileLoopsBreakContinue) {
  const char *Src = R"(
    int main() {
      long s = 0;
      int i = 0;
      while (1) {
        i = i + 1;
        if (i > 10) break;
        if (i % 2 == 0) continue;
        s = s + i;
      }
      for (int j = 0; j < 5; j = j + 1) {
        if (j == 2) continue;
        s = s + 100;
      }
      print_long(s);
      return 0;
    }
  )";
  // 1+3+5+7+9 = 25, plus 4 * 100 = 425.
  EXPECT_EQ(compileAndRun(Src), "425\n");
}

} // namespace
