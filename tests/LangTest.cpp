//===- tests/LangTest.cpp - ATC compiler unit tests -----------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Compile.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace atc;
using namespace atc::lang;

namespace {

std::vector<Token> lex(const std::string &Src) {
  std::vector<std::string> Errors;
  auto Tokens = Lexer::tokenize(Src, Errors);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors[0]);
  return Tokens;
}

/// Compiles and returns the error list (empty = accepted).
std::vector<std::string> errorsOf(const std::string &Src) {
  return compileAtc(Src).Errors;
}

bool hasErrorContaining(const std::vector<std::string> &Errors,
                        const std::string &Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, KeywordsAndIdentifiers) {
  auto T = lex("cilk spawn sync taskprivate foo _bar");
  ASSERT_EQ(T.size(), 7u); // + Eof
  EXPECT_EQ(T[0].Kind, TokenKind::KwCilk);
  EXPECT_EQ(T[1].Kind, TokenKind::KwSpawn);
  EXPECT_EQ(T[2].Kind, TokenKind::KwSync);
  EXPECT_EQ(T[3].Kind, TokenKind::KwTaskprivate);
  EXPECT_EQ(T[4].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[4].Text, "foo");
  EXPECT_EQ(T[5].Text, "_bar");
}

TEST(Lexer, IntAndHexLiterals) {
  auto T = lex("42 0x2A 0");
  EXPECT_EQ(T[0].IntValue, 42);
  EXPECT_EQ(T[1].IntValue, 42);
  EXPECT_EQ(T[2].IntValue, 0);
}

TEST(Lexer, CharLiteralsWithEscapes) {
  auto T = lex("'a' '\\n' '\\0'");
  EXPECT_EQ(T[0].IntValue, 'a');
  EXPECT_EQ(T[1].IntValue, '\n');
  EXPECT_EQ(T[2].IntValue, 0);
}

TEST(Lexer, MultiCharOperators) {
  auto T = lex("+= -> && || == != <= >= ++ --");
  EXPECT_EQ(T[0].Kind, TokenKind::PlusAssign);
  EXPECT_EQ(T[1].Kind, TokenKind::Arrow);
  EXPECT_EQ(T[2].Kind, TokenKind::AmpAmp);
  EXPECT_EQ(T[3].Kind, TokenKind::PipePipe);
  EXPECT_EQ(T[4].Kind, TokenKind::EqEq);
  EXPECT_EQ(T[5].Kind, TokenKind::NotEq);
  EXPECT_EQ(T[6].Kind, TokenKind::LessEq);
  EXPECT_EQ(T[7].Kind, TokenKind::GreaterEq);
  EXPECT_EQ(T[8].Kind, TokenKind::PlusPlus);
  EXPECT_EQ(T[9].Kind, TokenKind::MinusMinus);
}

TEST(Lexer, CommentsAreSkipped) {
  auto T = lex("a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(Lexer, TracksLineAndColumn) {
  auto T = lex("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1);
  EXPECT_EQ(T[0].Loc.Col, 1);
  EXPECT_EQ(T[1].Loc.Line, 2);
  EXPECT_EQ(T[1].Loc.Col, 3);
}

TEST(Lexer, ReportsBadCharacters) {
  std::vector<std::string> Errors;
  Lexer::tokenize("int a = @;", Errors);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("unexpected character"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, ParsesMinimalProgram) {
  auto R = compileAtc("int main() { return 0; }");
  EXPECT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  ASSERT_EQ(R.Ast.Funcs.size(), 1u);
  EXPECT_EQ(R.Ast.Funcs[0]->Name, "main");
}

TEST(Parser, ParsesTaskprivateClause) {
  auto R = compileAtc("cilk int f(int n, char *x)\n"
                      "taskprivate: (*x) (n * sizeof(char));\n"
                      "{ sync; return 0; }\n"
                      "int main() { return 0; }");
  ASSERT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  const FuncDecl *F = R.Ast.findFunc("f");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->IsCilk);
  EXPECT_TRUE(F->Taskprivate.Present);
  EXPECT_EQ(F->Taskprivate.VarName, "x");
}

TEST(Parser, ParsesStructsAndMemberAccess) {
  auto R = compileAtc("struct P { int x; int y[4]; };\n"
                      "int get(struct P *p) { return p->x + p->y[1]; }\n"
                      "int main() { struct P p; p.x = 3; p.y[1] = 4;\n"
                      "  return get(&p); }");
  EXPECT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  ASSERT_EQ(R.Ast.Structs.size(), 1u);
  EXPECT_EQ(R.Ast.Structs[0].Fields.size(), 2u);
}

TEST(Parser, PrecedenceInDump) {
  auto R = compileAtc("int f(int a, int b) { return a + b * 2; }\n"
                      "int main() { return 0; }");
  ASSERT_TRUE(R.Success);
  std::string Dump = dumpProgram(R.Ast);
  // a + (b * 2): Add is the root with Mul nested under it.
  std::size_t Add = Dump.find("Binary Add");
  std::size_t Mul = Dump.find("Binary Mul");
  ASSERT_NE(Add, std::string::npos);
  ASSERT_NE(Mul, std::string::npos);
  EXPECT_LT(Add, Mul);
}

TEST(Parser, SpawnMustBeAccumulatorForm) {
  auto Errors = errorsOf("cilk int f(int n) { if (n) { spawn f(n - 1); } "
                         "return 0; }\n"
                         "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "spawn must appear as"));
}

TEST(Parser, ReportsMissingSemicolon) {
  auto Errors = errorsOf("int main() { return 0 }");
  EXPECT_TRUE(hasErrorContaining(Errors, "expected ';'"));
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  auto Errors = errorsOf("int main() { int a = ; int b = ; return 0; }");
  EXPECT_GE(Errors.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(Sema, AcceptsTheNQueensExample) {
  const char *Src = R"(
    int ok(int depth, char *x, int j) {
      for (int i = 0; i < depth; i = i + 1) {
        int d = x[i] - j;
        if (d == 0 || d == depth - i || d == i - depth) return 0;
      }
      return 1;
    }
    cilk int nqueens(int depth, int n, char *x)
    taskprivate: (*x) (n * sizeof(char));
    {
      long sn = 0;
      if (depth == n) return 1;
      for (int j = 0; j < n; j = j + 1) {
        if (ok(depth, x, j)) { x[depth] = j;
          sn += spawn nqueens(depth + 1, n, x); } }
      sync;
      return sn;
    }
    int main() { char b[16]; long c = nqueens(0, 8, b);
      print_long(c); return 0; }
  )";
  auto R = compileAtc(Src);
  EXPECT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  EXPECT_EQ(R.Ast.findFunc("nqueens")->NumSpawns, 1);
}

TEST(Sema, SpawnOutsideCilkRejected) {
  auto Errors =
      errorsOf("cilk int f(int n) { return n; }\n"
               "int g() { long s = 0; s += spawn f(1); return 0; }\n"
               "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "spawn outside of a cilk"));
}

TEST(Sema, SyncOutsideCilkRejected) {
  auto Errors = errorsOf("int main() { sync; return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "sync outside of a cilk"));
}

TEST(Sema, SpawnOfNonCilkRejected) {
  auto Errors = errorsOf("int g(int n) { return n; }\n"
                         "cilk int f(int n) { long s = 0; "
                         "s += spawn g(n); sync; return s; }\n"
                         "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "is not a cilk function"));
}

TEST(Sema, CilkCallInsideCilkRejected) {
  auto Errors = errorsOf("cilk int f(int n) { return n; }\n"
                         "cilk int g(int n) { return f(n); }\n"
                         "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "must be invoked with spawn"));
}

TEST(Sema, CilkCallFromMainAllowed) {
  auto R = compileAtc("cilk int f(int n) { return n; }\n"
                      "int main() { return f(3); }");
  EXPECT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
}

TEST(Sema, TaskprivateMustBePointerParameter) {
  auto Errors = errorsOf("cilk int f(int n)\n"
                         "taskprivate: (*n) (4);\n"
                         "{ return n; }\n"
                         "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "must be a pointer"));

  Errors = errorsOf("cilk int f(int n)\n"
                    "taskprivate: (*y) (4);\n"
                    "{ return n; }\n"
                    "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "is not a parameter"));
}

TEST(Sema, CilkFunctionMustReturnIntegral) {
  auto Errors = errorsOf("cilk char *f(char *p) { return p; }\n"
                         "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "must return an integral"));
}

TEST(Sema, ArrayLocalsInCilkRejected) {
  auto Errors = errorsOf("cilk int f(int n) { char buf[8]; return n; }\n"
                         "int main() { return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "array locals are not supported"));
}

TEST(Sema, UnknownVariableRejected) {
  auto Errors = errorsOf("int main() { return nope; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "unknown variable 'nope'"));
}

TEST(Sema, ArityMismatchRejected) {
  auto Errors = errorsOf("int f(int a, int b) { return a + b; }\n"
                         "int main() { return f(1); }");
  EXPECT_TRUE(hasErrorContaining(Errors, "expects 2 arguments, got 1"));
}

TEST(Sema, BreakOutsideLoopRejected) {
  auto Errors = errorsOf("int main() { break; return 0; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "break outside of a loop"));
}

TEST(Sema, MemberOfUnknownFieldRejected) {
  auto Errors = errorsOf("struct P { int x; };\n"
                         "int main() { struct P p; return p.z; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "has no field 'z'"));
}

TEST(Sema, DerefNonPointerRejected) {
  auto Errors = errorsOf("int main() { int a = 0; return *a; }");
  EXPECT_TRUE(hasErrorContaining(Errors, "cannot dereference"));
}

//===----------------------------------------------------------------------===//
// CodeGen: structural golden checks
//===----------------------------------------------------------------------===//

TEST(CodeGen, EmitsAllFiveVersionsAndFrame) {
  auto R = compileAtc("cilk int f(int n) { long s = 0;\n"
                      "  if (n < 2) return n;\n"
                      "  s += spawn f(n - 1); s += spawn f(n - 2);\n"
                      "  sync; return s; }\n"
                      "int main() { return f(5); }");
  ASSERT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  for (const char *Needle :
       {"struct f_frame : atcgen::TaskInfoBase", "long f_fast(",
        "long f_fast2(", "long f_check(", "long f_seq(", "void f_slow(",
        "_w.push(_f);", "_w.pushSpecial(_f);",
        "_w.dispatch(atcgen::CodeVersion::Check, 0)",
        "case 0: goto _resume_0;", "case 1: goto _resume_1;",
        "_resume_0: ;",
        "if (_w.dispatch(atcgen::CodeVersion::Fast, _dp) == "
        "atcgen::CodeVersion::Fast)",
        "if (_w.dispatch(atcgen::CodeVersion::Fast2, _dp) == "
        "atcgen::CodeVersion::Fast2)",
        "if (_w.dispatch(atcgen::CodeVersion::Slow, _dp) == "
        "atcgen::CodeVersion::Fast)"})
    EXPECT_NE(R.Cpp.find(Needle), std::string::npos)
        << "missing in generated code: " << Needle;
}

TEST(CodeGen, TaskprivateCopyOnlyInTaskVersions) {
  auto R = compileAtc("cilk int f(int n, char *x)\n"
                      "taskprivate: (*x) (n * sizeof(char));\n"
                      "{ long s = 0; if (n < 1) return 1;\n"
                      "  s += spawn f(n - 1, x); sync; return s; }\n"
                      "int main() { char b[4]; return f(3, b); }");
  ASSERT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  // The sequence version shares the parent workspace: it must contain a
  // plain recursive call and no workspace allocation.
  // Skip the forward declarations: locate the *definitions*.
  std::size_t SeqBegin =
      R.Cpp.find("long f_seq(", R.Cpp.find("long f_seq(") + 1);
  std::size_t SeqEnd =
      R.Cpp.find("long f_check(", R.Cpp.find("long f_check(") + 1);
  ASSERT_NE(SeqBegin, std::string::npos);
  ASSERT_NE(SeqEnd, std::string::npos);
  std::string Seq = R.Cpp.substr(SeqBegin, SeqEnd - SeqBegin);
  EXPECT_EQ(Seq.find("allocWorkspace"), std::string::npos);
  EXPECT_NE(Seq.find("f_seq(_w, (n - 1), x)"), std::string::npos);
  // The task versions allocate + copy; with no declared live bound the
  // copy length equals the declared workspace size.
  EXPECT_NE(R.Cpp.find("allocWorkspace"), std::string::npos);
  EXPECT_NE(R.Cpp.find("_w.copyWorkspace(_tp0, (const void *)(x), "
                       "(size_t)(((n - 1) * (long)sizeof(char))), "
                       "(size_t)(((n - 1) * (long)sizeof(char))));"),
            std::string::npos);
}

TEST(CodeGen, TaskprivateLiveBoundLimitsCopy) {
  // With a `(size, live)` clause, the emitted copyWorkspace call passes
  // the substituted live expression (spawn-site arguments, i.e. the
  // child's invocation) as the copy bound while the allocation keeps the
  // full declared size.
  auto R = compileAtc("cilk int f(int d, int n, char *x)\n"
                      "taskprivate: (*x) (n * sizeof(char), "
                      "d * sizeof(char));\n"
                      "{ long s = 0; if (d == n) return 1;\n"
                      "  s += spawn f(d + 1, n, x); sync; return s; }\n"
                      "int main() { char b[4]; return f(0, 3, b); }");
  ASSERT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  EXPECT_NE(
      R.Cpp.find("allocWorkspace((size_t)((n * (long)sizeof(char))))"),
      std::string::npos);
  EXPECT_NE(R.Cpp.find("_w.copyWorkspace(_tp0, (const void *)(x), "
                       "(size_t)((n * (long)sizeof(char))), "
                       "(size_t)(((d + 1) * (long)sizeof(char))));"),
            std::string::npos);
}

TEST(CodeGen, HoistsShadowedLocalsWithUniqueNames) {
  auto R = compileAtc("cilk int f(int n) {\n"
                      "  long s = 0;\n"
                      "  if (n > 0) { int t = 1; s = s + t; }\n"
                      "  if (n > 1) { int t = 2; s = s + t; }\n"
                      "  return s; }\n"
                      "int main() { return f(2); }");
  ASSERT_TRUE(R.Success) << (R.Errors.empty() ? "" : R.Errors[0]);
  EXPECT_NE(R.Cpp.find("int t;"), std::string::npos);
  EXPECT_NE(R.Cpp.find("int t_1;"), std::string::npos);
}

TEST(CodeGen, UserMainIsWrapped) {
  auto R = compileAtc("int main() { return 7; }");
  ASSERT_TRUE(R.Success);
  EXPECT_NE(R.Cpp.find("atc_user_main"), std::string::npos);
  EXPECT_NE(R.Cpp.find("int main()"), std::string::npos);
  EXPECT_NE(R.Cpp.find("ATCGEN_CUTOFF"), std::string::npos);
}

} // namespace
