//===- tests/MetricsTest.cpp - live metrics subsystem tests ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-metrics subsystem (src/metrics): histogram and quantile math,
/// the coherence contract (a post-join registry snapshot aggregates to
/// exactly the run's SchedulerStats, for every scheduler kind and for the
/// simulator), the Prometheus exposition round-trip including the
/// generated-code runtime's standalone writer, and the compile-time gate.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "lang/runtime/GenRuntime.h"
#include "metrics/Exposition.h"
#include "metrics/Metrics.h"
#include "metrics/MetricsRegistry.h"
#include "metrics/Quantile.h"
#include "problems/NQueens.h"
#include "sim/SimEngine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace atc;

namespace {

//===----------------------------------------------------------------------===//
// Quantile / bucket math
//===----------------------------------------------------------------------===//

TEST(Quantile, PercentileSortedInterpolates) {
  EXPECT_EQ(percentileSorted({}, 0.5), 0.0);
  EXPECT_EQ(percentileSorted({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentileSorted({7.0}, 1.0), 7.0);
  std::vector<double> V = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentileSorted(V, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentileSorted(V, 1.0), 40.0);
  // Index 0.5 * 3 = 1.5: halfway between 20 and 30.
  EXPECT_DOUBLE_EQ(percentileSorted(V, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentileSorted(V, 0.9), 37.0);
}

TEST(Quantile, Log2BucketBoundsRoundTrip) {
  EXPECT_EQ(log2BucketFor(0), 0u);
  EXPECT_EQ(log2BucketFor(1), 1u);
  EXPECT_EQ(log2BucketFor(2), 2u);
  EXPECT_EQ(log2BucketFor(3), 2u);
  EXPECT_EQ(log2BucketFor(4), 3u);
  for (unsigned B = 0; B != NumLog2Buckets; ++B) {
    EXPECT_EQ(log2BucketFor(log2BucketLowerBound(B)), B) << "bucket " << B;
    EXPECT_EQ(log2BucketFor(log2BucketUpperBound(B)), B) << "bucket " << B;
  }
  EXPECT_EQ(log2BucketUpperBound(NumLog2Buckets - 1), ~std::uint64_t{0});
}

TEST(Quantile, HistogramQuantilesLandInTheRightBucket) {
  HistogramCounts H;
  for (std::uint64_t V = 1; V <= 100; ++V)
    H.record(V);
  EXPECT_EQ(H.Count, 100u);
  EXPECT_EQ(H.Sum, 5050u);
  EXPECT_DOUBLE_EQ(H.mean(), 50.5);
  double Q50 = H.quantile(0.50);
  double Q90 = H.quantile(0.90);
  double Q99 = H.quantile(0.99);
  EXPECT_LE(Q50, Q90);
  EXPECT_LE(Q90, Q99);
  // True p50 is 50 (bucket [32, 63]); interpolation stays inside it.
  EXPECT_GE(Q50, 32.0);
  EXPECT_LE(Q50, 64.0);
  // True p99 is 99 (bucket [64, 127]).
  EXPECT_GE(Q99, 64.0);
  EXPECT_LE(Q99, 128.0);
  EXPECT_EQ(HistogramCounts().quantile(0.5), 0.0);
}

TEST(Quantile, MergeMatchesCombinedRecording) {
  HistogramCounts A, B, Combined;
  for (std::uint64_t V = 0; V != 50; ++V) {
    A.record(V * 3);
    Combined.record(V * 3);
  }
  for (std::uint64_t V = 0; V != 70; ++V) {
    B.record(V * 17 + 1);
    Combined.record(V * 17 + 1);
  }
  A.merge(B);
  EXPECT_EQ(A.Count, Combined.Count);
  EXPECT_EQ(A.Sum, Combined.Sum);
  for (unsigned I = 0; I != NumLog2Buckets; ++I)
    EXPECT_EQ(A.Buckets[I], Combined.Buckets[I]) << "bucket " << I;
}

TEST(Quantile, LogHistogramSnapshotMatchesPlainCounts) {
  LogHistogram L;
  HistogramCounts Plain;
  for (std::uint64_t V : {0ull, 1ull, 5ull, 1024ull, 999999ull, 3ull}) {
    L.record(V);
    Plain.record(V);
  }
  HistogramCounts Snap = L.snapshot();
  EXPECT_EQ(Snap.Count, Plain.Count);
  EXPECT_EQ(Snap.Sum, Plain.Sum);
  for (unsigned I = 0; I != NumLog2Buckets; ++I)
    EXPECT_EQ(Snap.Buckets[I], Plain.Buckets[I]) << "bucket " << I;
  L.reset();
  EXPECT_EQ(L.snapshot().Count, 0u);
}

//===----------------------------------------------------------------------===//
// Cell semantics
//===----------------------------------------------------------------------===//

TEST(MetricsCell, ModeResidencyFoldsOnTransition) {
  WorkerMetricsCell C;
  C.begin(100);
  EXPECT_EQ(C.mode(), TraceMode::Idle);
  C.setModeAt(250, TraceMode::Fast);
  EXPECT_EQ(C.modeNanos(TraceMode::Idle), 150u);
  C.setModeAt(300, TraceMode::Fast); // no-op: same mode
  C.setModeAt(600, TraceMode::Check);
  EXPECT_EQ(C.modeNanos(TraceMode::Fast), 350u);
  C.setModeAt(700, TraceMode::Idle);
  EXPECT_EQ(C.modeNanos(TraceMode::Check), 100u);
  EXPECT_EQ(C.mode(), TraceMode::Idle);
}

TEST(MetricsCell, ReseedIntervalAnchorsOnFirstPublish) {
  WorkerMetricsCell C;
  C.recordReseed(1000); // anchor only
  EXPECT_EQ(C.ReseedIntervalNs.snapshot().Count, 0u);
  C.recordReseed(1600);
  C.recordReseed(1850);
  HistogramCounts H = C.ReseedIntervalNs.snapshot();
  EXPECT_EQ(H.Count, 2u);
  EXPECT_EQ(H.Sum, 600u + 250u);
}

TEST(MetricsCell, PublishStatsMirrorsEveryField) {
  WorkerMetricsCell C;
  SchedulerStats S;
  for (unsigned I = 0; I != NumStatFields; ++I)
    setStatFieldValue(S, static_cast<StatField>(I), I * 7 + 1);
  C.publishStats(S);
  for (unsigned I = 0; I != NumStatFields; ++I)
    EXPECT_EQ(C.stat(static_cast<StatField>(I)), I * 7 + 1)
        << statFieldName(static_cast<StatField>(I));
  C.reset();
  for (unsigned I = 0; I != NumStatFields; ++I)
    EXPECT_EQ(C.stat(static_cast<StatField>(I)), 0u);
}

//===----------------------------------------------------------------------===//
// Snapshot-vs-SchedulerStats coherence (the CI metrics-smoke contract)
//===----------------------------------------------------------------------===//

#if ATC_METRICS_ENABLED

struct CoherenceCase {
  SchedulerKind Kind;
  DequeKind Deque = DequeKind::The;
};

class MetricsCoherence : public ::testing::TestWithParam<CoherenceCase> {};

TEST_P(MetricsCoherence, FinalSnapshotEqualsRunStats) {
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(8);
  SchedulerConfig Cfg;
  Cfg.Kind = GetParam().Kind;
  Cfg.Deque = GetParam().Deque;
  Cfg.NumWorkers = 4;
  Cfg.Metrics = true;
  RunResult<long long> R = runProblem(Prob, Root, Cfg);
  EXPECT_EQ(R.Value, 92);
  ASSERT_NE(R.Metrics, nullptr);
  EXPECT_EQ(R.Metrics->numWorkers(), 4);
  EXPECT_EQ(R.Metrics->Meta.Source, "runtime");

  MetricsSnapshot Snap = R.Metrics->sample();
  SchedulerStats FromCells = Snap.toStats();
  for (unsigned I = 0; I != NumStatFields; ++I) {
    auto F = static_cast<StatField>(I);
    EXPECT_EQ(statFieldValue(FromCells, F), statFieldValue(R.Stats, F))
        << statFieldName(F);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MetricsCoherence,
    ::testing::Values(CoherenceCase{SchedulerKind::Cilk},
                      CoherenceCase{SchedulerKind::CilkSynched},
                      CoherenceCase{SchedulerKind::Cutoff},
                      CoherenceCase{SchedulerKind::AdaptiveTC},
                      CoherenceCase{SchedulerKind::AdaptiveTC,
                                    DequeKind::Atomic},
                      CoherenceCase{SchedulerKind::Tascell}),
    [](const ::testing::TestParamInfo<CoherenceCase> &Info) {
      std::string Name = schedulerKindName(Info.param.Kind);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      if (Info.param.Deque != DequeKind::The)
        Name += std::string("_") + dequeKindName(Info.param.Deque);
      return Name;
    });

TEST(MetricsSim, RegistryAggregateMatchesSimReport) {
  SimTree Tree(SimTree::preset("fig8", 20'000));
  SimOptions Opts;
  Opts.Kind = SchedulerKind::AdaptiveTC;
  Opts.NumWorkers = 4;
  CostModel Costs;
  MetricsRegistry Reg;
  SimReport Rep = simulate(Tree, Opts, Costs, nullptr, &Reg);

  EXPECT_EQ(Reg.Meta.Source, "sim");
  EXPECT_EQ(Reg.numWorkers(), 4);
  MetricsSnapshot Snap =
      Reg.sample(static_cast<std::uint64_t>(Rep.MakespanNs));
  EXPECT_EQ(Snap.total(StatField::TasksCreated), Rep.TasksCreated);
  EXPECT_EQ(Snap.total(StatField::FakeTasks), Rep.FakeNodes);
  EXPECT_EQ(Snap.total(StatField::SpecialTasks), Rep.SpecialTasks);
  EXPECT_EQ(Snap.total(StatField::Steals), Rep.Steals);
  EXPECT_EQ(Snap.total(StatField::StealFails), Rep.StealFails);
  // Virtual clocks: the snapshot is stamped with sim time, not wall time.
  EXPECT_EQ(Snap.TimeNs, static_cast<std::uint64_t>(Rep.MakespanNs));
}

TEST(MetricsSim, StealHalfAndAffinityCountersSurfaceInSnapshot) {
  // The policy knobs' dedicated counters (batch extras, affinity-retry
  // hits) travel the same publishStats path as every other stat.
  SimTree Tree(SimTree::preset("tree2l", 40'000));
  SimOptions Opts;
  Opts.Kind = SchedulerKind::Cilk;
  Opts.NumWorkers = 8;
  Opts.Deque = DequeKind::ChaseLev;
  Opts.Steal = StealPolicy::Half;
  Opts.Victim = VictimPolicy::Affinity;
  CostModel Costs;
  MetricsRegistry Reg;
  SimReport Rep = simulate(Tree, Opts, Costs, nullptr, &Reg);
  MetricsSnapshot Snap =
      Reg.sample(static_cast<std::uint64_t>(Rep.MakespanNs));
  EXPECT_EQ(Snap.total(StatField::Steals), Rep.Steals);
  EXPECT_GT(Snap.total(StatField::BatchSteals), 0u);
  EXPECT_GE(Snap.total(StatField::Steals), Snap.total(StatField::BatchSteals));
  EXPECT_GT(Snap.total(StatField::AffinityHits), 0u);
  // The steal-accounting identity survives batching.
  EXPECT_EQ(Snap.total(StatField::StealAttempts),
            Snap.total(StatField::Steals) + Snap.total(StatField::StealFails));
}

#endif // ATC_METRICS_ENABLED

//===----------------------------------------------------------------------===//
// Prometheus exposition round-trip
//===----------------------------------------------------------------------===//

// Fills a registry with hand-written per-worker values; independent of
// the compile-time gate (cells and the exposition layer always exist).
void fillRegistry(MetricsRegistry &Reg) {
  Reg.reset(2);
  Reg.Meta.Scheduler = "AdaptiveTC";
  Reg.Meta.Source = "runtime";
  Reg.Meta.Workload = "unit-test";
  for (int W = 0; W != 2; ++W) {
    WorkerMetricsCell &C = Reg.cell(W);
    SchedulerStats S;
    for (unsigned I = 0; I != NumStatFields; ++I)
      setStatFieldValue(S, static_cast<StatField>(I),
                        (I + 1) * 10 + static_cast<unsigned>(W));
    C.publishStats(S);
    C.begin(1000);
    C.setModeAt(1500 + static_cast<std::uint64_t>(W) * 100, TraceMode::Work);
    C.setNeedTask(W == 1);
    C.dequeDepthGauge().store(3 + W, std::memory_order_relaxed);
    for (std::uint64_t V = 1; V <= 20; ++V) {
      C.StealLatencyNs.record(V * 100);
      C.SpawnCostNs.record(V);
    }
    C.DequeDepth.record(4);
    C.ReseedIntervalNs.record(1 << W);
  }
}

TEST(Exposition, PrometheusRoundTripPreservesTotals) {
  MetricsRegistry Reg;
  fillRegistry(Reg);
  MetricsSnapshot Snap = Reg.sample(999999);
  std::string Text = renderPrometheus(Snap, Reg.Meta);
  std::vector<PromSample> Samples = parsePrometheus(Text);
  ASSERT_FALSE(Samples.empty());

  EXPECT_EQ(promTotal(Samples, "atc_workers", /*Gauge=*/true), 2u);
  for (unsigned I = 0; I != NumStatFields; ++I) {
    auto F = static_cast<StatField>(I);
    std::string Name = std::string("atc_") + statFieldPromName(F);
    EXPECT_EQ(promTotal(Samples, Name, statFieldIsGauge(F)), Snap.total(F))
        << Name;
  }

  // Histogram series: _count and _sum match the snapshot, and the
  // cumulative le buckets are non-decreasing up to _count.
  std::uint64_t WantCount = 0, WantSum = 0;
  for (const WorkerSample &W : Snap.Workers) {
    WantCount += W.StealLatencyNs.Count;
    WantSum += W.StealLatencyNs.Sum;
  }
  // _count/_sum carry no _total suffix; sum the per-worker series here.
  std::uint64_t GotCount = 0, GotSum = 0;
  for (const PromSample &S : Samples) {
    if (S.Name == "atc_steal_latency_ns_count")
      GotCount += S.asU64();
    if (S.Name == "atc_steal_latency_ns_sum")
      GotSum += S.asU64();
  }
  EXPECT_EQ(GotCount, WantCount);
  EXPECT_EQ(GotSum, WantSum);
  std::uint64_t PrevLe = 0;
  bool SawBucket = false;
  for (const PromSample &S : Samples)
    if (S.Name == "atc_steal_latency_ns_bucket" &&
        S.Labels.count("worker") && S.Labels.at("worker") == "0") {
      SawBucket = true;
      EXPECT_GE(S.asU64(), PrevLe) << "le=" << S.Labels.at("le");
      PrevLe = S.asU64();
    }
  EXPECT_TRUE(SawBucket);
  EXPECT_EQ(PrevLe, Snap.Workers[0].StealLatencyNs.Count);

  // Run identity labels survive the round trip.
  bool SawInfo = false;
  for (const PromSample &S : Samples)
    if (S.Name == "atc_run_info") {
      SawInfo = true;
      EXPECT_EQ(S.Labels.at("scheduler"), "AdaptiveTC");
      EXPECT_EQ(S.Labels.at("workload"), "unit-test");
    }
  EXPECT_TRUE(SawInfo);
}

TEST(Exposition, JsonSeriesCarriesMetaAndSnapshots) {
  MetricsRegistry Reg;
  fillRegistry(Reg);
  Reg.sampleAndRecord(1000);
  Reg.sampleAndRecord(2000);
  std::string Json = renderJsonSeries(Reg.history(), Reg.Meta);
  EXPECT_NE(Json.find("\"scheduler\": \"AdaptiveTC\""), std::string::npos);
  EXPECT_NE(Json.find("\"workload\": \"unit-test\""), std::string::npos);
  EXPECT_NE(Json.find("\"tasks_created\""), std::string::npos);
  // Two snapshots recorded, both present.
  EXPECT_NE(Json.find("\"time_ns\": 1000"), std::string::npos);
  EXPECT_NE(Json.find("\"time_ns\": 2000"), std::string::npos);
}

TEST(Exposition, WriteTextFileAtomicLeavesNoTemp) {
  std::string Path = ::testing::TempDir() + "atc_metrics_test.prom";
  ASSERT_TRUE(writeTextFileAtomic(Path, "atc_workers 1\n"));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), "atc_workers 1\n");
  std::ifstream Tmp(Path + ".tmp");
  EXPECT_FALSE(Tmp.good());
  std::remove(Path.c_str());
}

TEST(Exposition, GenRuntimeMetricsFileParses) {
  // The generated-code runtime writes its Prometheus file with a
  // self-contained printf-based writer (no atc_metrics dependency); it
  // must stay parseable by the shared parser and use the shared names.
  atcgen::Worker W(4);
  W.Stats.FramesAllocated = 12;
  W.Stats.Pushes = 34;
  W.Stats.SpecialPushes = 5;
  W.Stats.Polls = 99;
  W.Stats.WorkspaceCopiedBytes = 4096;
  std::string Path = ::testing::TempDir() + "atcgen_metrics_test.prom";
  ASSERT_TRUE(W.writeMetricsFile(Path));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::vector<PromSample> Samples = parsePrometheus(Buf.str());
  EXPECT_EQ(promTotal(Samples, "atc_tasks_created"), 12u);
  EXPECT_EQ(promTotal(Samples, "atc_spawns"), 34u);
  EXPECT_EQ(promTotal(Samples, "atc_special_tasks"), 5u);
  EXPECT_EQ(promTotal(Samples, "atc_polls"), 99u);
  EXPECT_EQ(promTotal(Samples, "atc_copied_bytes"), 4096u);
  bool SawInfo = false;
  for (const PromSample &S : Samples)
    if (S.Name == "atc_run_info") {
      SawInfo = true;
      EXPECT_EQ(S.Labels.at("source"), "genruntime");
    }
  EXPECT_TRUE(SawInfo);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Compile-time gate
//===----------------------------------------------------------------------===//

TEST(MetricsGate, CompileTimeGate) {
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(8);
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 2;
  Cfg.Metrics = true;
  RunResult<long long> R = runProblem(Prob, Root, Cfg);
  EXPECT_EQ(R.Value, 92);
#if !ATC_METRICS_ENABLED
  // Built with -DATC_METRICS=OFF: asking for metrics must yield none.
  EXPECT_EQ(R.Metrics, nullptr);
#else
  ASSERT_NE(R.Metrics, nullptr);
  EXPECT_GT(R.Metrics->sample().total(StatField::TasksCreated), 0u);
#endif
}

} // namespace
