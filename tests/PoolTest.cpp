//===- tests/PoolTest.cpp - persistent worker-pool reuse tests ------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler-as-a-service substrate contract: a SchedulerPool runs
/// many back-to-back jobs — every scheduler kind over every deque — on
/// the same OS threads, with no thread respawn (ids stable, index-aligned
/// with worker ids) and exact per-job isolation of both SchedulerStats
/// and the metrics registry (epoch ticks once per job, cells restart from
/// zero). Plus the MetricsRegistry reset/epoch regression tests the
/// server layer leans on.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "core/SchedulerPool.h"
#include "metrics/Exposition.h"
#include "metrics/MetricsRegistry.h"
#include "problems/NQueens.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace atc;

namespace {

/// Forwards to a SchedulerPool while recording which OS thread executed
/// each worker id, per job — the respawn detector.
struct RecordingExecutor : WorkerExecutor {
  explicit RecordingExecutor(SchedulerPool &Pool) : Pool(Pool) {}

  void dispatch(int NumWorkers,
                const std::function<void(int)> &Body) override {
    // Workers write disjoint slots; no lock needed.
    std::vector<std::thread::id> ByWorker(
        static_cast<std::size_t>(NumWorkers));
    Pool.dispatch(NumWorkers, [&](int I) {
      ByWorker[static_cast<std::size_t>(I)] = std::this_thread::get_id();
      Body(I);
    });
    Jobs.push_back(std::move(ByWorker));
  }

  int capacity() const override { return Pool.capacity(); }

  SchedulerPool &Pool;
  std::vector<std::vector<std::thread::id>> Jobs;
};

//===----------------------------------------------------------------------===//
// SchedulerPool mechanics
//===----------------------------------------------------------------------===//

TEST(SchedulerPool, DispatchRunsEveryWorkerExactlyOnce) {
  SchedulerPool Pool(4);
  EXPECT_EQ(Pool.size(), 4);
  EXPECT_EQ(Pool.capacity(), 4);
  std::atomic<int> Ran[4] = {};
  Pool.dispatch(4, [&](int I) { Ran[I].fetch_add(1); });
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Ran[I].load(), 1) << "worker " << I;
  EXPECT_EQ(Pool.jobsRun(), 1u);
}

TEST(SchedulerPool, PartialDispatchUsesThreadPrefix) {
  SchedulerPool Pool(4);
  std::vector<std::thread::id> Ids = Pool.threadIds();
  ASSERT_EQ(Ids.size(), 4u);
  std::vector<std::thread::id> ByWorker(2);
  Pool.dispatch(2, [&](int I) {
    ByWorker[static_cast<std::size_t>(I)] = std::this_thread::get_id();
  });
  // Worker i of a narrower job runs on pool thread i; threads [2,4)
  // stay parked.
  EXPECT_EQ(ByWorker[0], Ids[0]);
  EXPECT_EQ(ByWorker[1], Ids[1]);
}

TEST(SchedulerPool, BackToBackDispatchesCountEpochs) {
  SchedulerPool Pool(2);
  std::atomic<int> Total{0};
  for (int Job = 0; Job != 16; ++Job)
    Pool.dispatch(2, [&](int) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 32);
  EXPECT_EQ(Pool.jobsRun(), 16u);
}

//===----------------------------------------------------------------------===//
// Pool reuse across the full scheduler matrix
//===----------------------------------------------------------------------===//

// One pool, every scheduler kind over every deque, two jobs each: every
// job computes the right answer, its stats partition the tree exactly
// (proof the counters are this job's alone, not an accumulation), and
// every worker loop ran on the same index-aligned pool threads — no
// respawn anywhere in the stream.
TEST(PoolReuse, AllKindsAllDequesOnOnePool) {
  NQueensArray Prob;
  const auto Root = NQueensArray::makeRoot(9);
  long long Expected;
  TreeProfile Profile;
  {
    auto S = Root;
    Expected = runSequential(Prob, S);
    S = Root;
    profileTree(Prob, S, Profile);
  }

  SchedulerPool Pool(4);
  const std::vector<std::thread::id> Ids = Pool.threadIds();
  RecordingExecutor Exec(Pool);

  const SchedulerKind Kinds[] = {
      SchedulerKind::Cilk, SchedulerKind::CilkSynched, SchedulerKind::Cutoff,
      SchedulerKind::AdaptiveTC, SchedulerKind::Tascell};
  const DequeKind Deques[] = {DequeKind::The, DequeKind::Atomic,
                              DequeKind::ChaseLev};

  int Jobs = 0;
  for (SchedulerKind Kind : Kinds)
    for (DequeKind DQ : Deques) {
      std::uint64_t FirstRepNodes = 0;
      for (int Rep = 0; Rep != 2; ++Rep) {
        SchedulerConfig Cfg;
        Cfg.Kind = Kind;
        Cfg.Deque = DQ;
        Cfg.NumWorkers = 4;
        Cfg.Executor = &Exec;
        const std::string What = std::string(schedulerKindName(Kind)) + "/" +
                                 dequeKindName(DQ) + " rep " +
                                 std::to_string(Rep);
        RunResult<long long> R = runProblem(Prob, Root, Cfg);
        ++Jobs;
        EXPECT_EQ(R.Value, Expected) << What;
        std::uint64_t NodeCount = R.Stats.TasksCreated + R.Stats.FakeTasks;
        if (Kind != SchedulerKind::Tascell) {
          // Deque-based kinds partition the tree exactly.
          EXPECT_EQ(NodeCount, static_cast<std::uint64_t>(Profile.Nodes))
              << What << ": stats leaked across pool jobs";
        } else if (Rep == 0) {
          // Tascell's task accounting has its own (deterministic)
          // semantics; cross-rep equality is the leak detector there.
          FirstRepNodes = NodeCount;
        } else {
          EXPECT_EQ(NodeCount, FirstRepNodes)
              << What << ": stats leaked across pool jobs";
        }
      }
    }

  // No thread was ever respawned: the id vector is bit-identical, and
  // every job's worker i ran on pool thread i.
  EXPECT_EQ(Pool.threadIds(), Ids);
  EXPECT_EQ(Pool.jobsRun(), static_cast<std::uint64_t>(Jobs));
  ASSERT_EQ(Exec.Jobs.size(), static_cast<std::size_t>(Jobs));
  for (std::size_t J = 0; J != Exec.Jobs.size(); ++J) {
    ASSERT_EQ(Exec.Jobs[J].size(), 4u);
    for (std::size_t W = 0; W != 4; ++W)
      EXPECT_EQ(Exec.Jobs[J][W], Ids[W])
          << "job " << J << " worker " << W << " migrated off its thread";
  }
}

// Narrower jobs share the same pool: a stream mixing 2-worker and
// 4-worker jobs still reuses the one team.
TEST(PoolReuse, MixedWidthJobsShareOnePool) {
  NQueensArray Prob;
  const auto Root = NQueensArray::makeRoot(8);
  long long Expected;
  {
    auto S = Root;
    Expected = runSequential(Prob, S);
  }
  SchedulerPool Pool(4);
  const std::vector<std::thread::id> Ids = Pool.threadIds();
  for (int Job = 0; Job != 6; ++Job) {
    SchedulerConfig Cfg;
    Cfg.Kind = SchedulerKind::AdaptiveTC;
    Cfg.NumWorkers = Job % 2 == 0 ? 2 : 4;
    Cfg.Executor = &Pool;
    RunResult<long long> R = runProblem(Prob, Root, Cfg);
    EXPECT_EQ(R.Value, Expected) << "job " << Job;
  }
  EXPECT_EQ(Pool.threadIds(), Ids);
}

#if ATC_METRICS_ENABLED

// A long-lived registry shared across pool jobs: the runtime re-arms it
// at the top of every run, so the epoch ticks once per job and the
// post-run cells mirror exactly that job's stats — the isolation the
// server's /metrics exposition depends on.
TEST(PoolReuse, SharedRegistryTicksEpochAndIsolatesStats) {
  NQueensArray Prob;
  const auto Root = NQueensArray::makeRoot(9);
  SchedulerPool Pool(2);
  MetricsRegistry Reg;
  Reg.ClearHistoryOnReset = false;

  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 2;
  Cfg.Executor = &Pool;
  Cfg.MetricsSink = &Reg;

  for (int Job = 0; Job != 3; ++Job) {
    std::uint64_t Before = Reg.epoch();
    RunResult<long long> R = runProblem(Prob, Root, Cfg);
    EXPECT_EQ(Reg.epoch(), Before + 1) << "job " << Job;
    SchedulerStats S = Reg.sample().toStats();
    EXPECT_EQ(S.TasksCreated, R.Stats.TasksCreated) << "job " << Job;
    EXPECT_EQ(S.FakeTasks, R.Stats.FakeTasks) << "job " << Job;
    EXPECT_EQ(S.Steals, R.Stats.Steals) << "job " << Job;
    EXPECT_EQ(S.Spawns, R.Stats.Spawns) << "job " << Job;
  }
}

#endif // ATC_METRICS_ENABLED

//===----------------------------------------------------------------------===//
// SchedulerStats / MetricsRegistry reset and epoch regression
//===----------------------------------------------------------------------===//

TEST(SchedulerStatsReset, EveryFieldReturnsToZero) {
  SchedulerStats S;
  for (unsigned F = 0; F != NumStatFields; ++F)
    setStatFieldValue(S, static_cast<StatField>(F), F + 1);
  S.reset();
  for (unsigned F = 0; F != NumStatFields; ++F)
    EXPECT_EQ(statFieldValue(S, static_cast<StatField>(F)), 0u)
        << statFieldName(static_cast<StatField>(F));
}

TEST(MetricsEpoch, RearmZeroesInPlaceAndNeverShrinks) {
  MetricsRegistry Reg;
  Reg.reset(4);
  const std::uint64_t E = Reg.epoch();
  Reg.cell(3).dequeDepthGauge().store(7, std::memory_order_relaxed);
  // Narrower re-arm: cells are zeroed in place (concurrent-reader safe:
  // no reallocation), the width stays, the epoch still ticks.
  Reg.rearm(2);
  EXPECT_EQ(Reg.numWorkers(), 4);
  EXPECT_EQ(Reg.epoch(), E + 1);
  EXPECT_EQ(Reg.cell(3).dequeDepth(), 0) << "stale cells must be zeroed";
  // Wider re-arm grows exactly like reset().
  Reg.rearm(6);
  EXPECT_EQ(Reg.numWorkers(), 6);
  EXPECT_EQ(Reg.epoch(), E + 2);
}

TEST(MetricsEpoch, ResetBumpsEpochAndStampsSnapshots) {
  MetricsRegistry Reg;
  EXPECT_EQ(Reg.epoch(), 0u);
  Reg.reset(2);
  EXPECT_EQ(Reg.epoch(), 1u);
  EXPECT_EQ(Reg.sample().Epoch, 1u);
  Reg.reset(2);
  Reg.reset(2);
  EXPECT_EQ(Reg.epoch(), 3u);
  EXPECT_EQ(Reg.sample().Epoch, 3u);
  // The epoch rides along in the Prometheus exposition.
  std::string Text = renderPrometheus(Reg.sample(), Reg.Meta);
  EXPECT_NE(Text.find("atc_epoch 3\n"), std::string::npos) << Text;
}

TEST(MetricsEpoch, HistoryClearPolicyFollowsTheFlag) {
  MetricsRegistry Reg;
  Reg.reset(1);
  Reg.sampleAndRecord();
  ASSERT_EQ(Reg.history().size(), 1u);
  // Default (one-shot CLI): reset drops history.
  Reg.reset(1);
  EXPECT_TRUE(Reg.history().empty());
  // Server mode: history spans job boundaries, distinguished by Epoch.
  Reg.ClearHistoryOnReset = false;
  Reg.sampleAndRecord();
  Reg.reset(1);
  Reg.sampleAndRecord();
  std::vector<MetricsSnapshot> H = Reg.history();
  ASSERT_EQ(H.size(), 2u);
  EXPECT_EQ(H[0].Epoch + 1, H[1].Epoch);
}

} // namespace
