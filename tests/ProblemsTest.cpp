//===- tests/ProblemsTest.cpp - benchmark problem unit tests --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Problem.h"
#include "problems/FibComp.h"
#include "problems/KnightsTour.h"
#include "problems/NQueens.h"
#include "problems/Pentomino.h"
#include "problems/Strimko.h"
#include "problems/Sudoku.h"

#include <gtest/gtest.h>

using namespace atc;

namespace {

/// Runs the reference sequential interpreter from a fresh root.
template <typename P, typename S> long long seq(P &Prob, S Root) {
  return runSequential(Prob, Root);
}

//===----------------------------------------------------------------------===//
// n-queens
//===----------------------------------------------------------------------===//

/// Known n-queens solution counts (OEIS A000170).
struct QueensCase {
  int N;
  long long Count;
};
class NQueensKnown : public ::testing::TestWithParam<QueensCase> {};

TEST_P(NQueensKnown, ArrayVariantMatchesOeis) {
  NQueensArray Prob;
  EXPECT_EQ(seq(Prob, NQueensArray::makeRoot(GetParam().N)),
            GetParam().Count);
}

TEST_P(NQueensKnown, ComputeVariantMatchesOeis) {
  NQueensCompute Prob;
  EXPECT_EQ(seq(Prob, NQueensCompute::makeRoot(GetParam().N)),
            GetParam().Count);
}

INSTANTIATE_TEST_SUITE_P(Small, NQueensKnown,
                         ::testing::Values(QueensCase{1, 1}, QueensCase{2, 0},
                                           QueensCase{3, 0}, QueensCase{4, 2},
                                           QueensCase{5, 10}, QueensCase{6, 4},
                                           QueensCase{7, 40}, QueensCase{8, 92},
                                           QueensCase{9, 352},
                                           QueensCase{10, 724}));

TEST(NQueens, VariantsAgreeOnLargerBoard) {
  NQueensArray A;
  NQueensCompute C;
  EXPECT_EQ(seq(A, NQueensArray::makeRoot(11)),
            seq(C, NQueensCompute::makeRoot(11)));
}

TEST(NQueens, UndoRestoresStateBitExactly) {
  NQueensArray Prob;
  auto S = NQueensArray::makeRoot(8);
  auto Before = S;
  ASSERT_TRUE(Prob.applyChoice(S, 0, 3));
  Prob.undoChoice(S, 0, 3);
  // Col[] keeps the scratch placement; conflict arrays must be restored.
  EXPECT_EQ(std::memcmp(S.ColUsed, Before.ColUsed, sizeof(S.ColUsed)), 0);
  EXPECT_EQ(std::memcmp(S.Diag1, Before.Diag1, sizeof(S.Diag1)), 0);
  EXPECT_EQ(std::memcmp(S.Diag2, Before.Diag2, sizeof(S.Diag2)), 0);
}

TEST(NQueens, ConflictingChoiceRejected) {
  NQueensArray Prob;
  auto S = NQueensArray::makeRoot(8);
  ASSERT_TRUE(Prob.applyChoice(S, 0, 0));
  EXPECT_FALSE(Prob.applyChoice(S, 1, 0)) << "same column";
  EXPECT_FALSE(Prob.applyChoice(S, 1, 1)) << "adjacent diagonal";
  EXPECT_TRUE(Prob.applyChoice(S, 1, 2));
}

//===----------------------------------------------------------------------===//
// Fib / Comp
//===----------------------------------------------------------------------===//

class FibKnown : public ::testing::TestWithParam<int> {};

TEST_P(FibKnown, MatchesClosedForm) {
  FibProblem Prob;
  EXPECT_EQ(seq(Prob, FibProblem::makeRoot(GetParam())),
            FibProblem::fibValue(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(UpTo22, FibKnown,
                         ::testing::Values(0, 1, 2, 3, 5, 10, 15, 20, 22));

TEST(Fib, ClosedFormSanity) {
  EXPECT_EQ(FibProblem::fibValue(10), 55);
  EXPECT_EQ(FibProblem::fibValue(45), 1134903170LL);
}

TEST(Comp, MatchesBruteForceReference) {
  CompProblem Prob(500, /*ValueRange=*/16);
  EXPECT_EQ(seq(Prob, Prob.makeRoot()), Prob.referenceCount());
}

TEST(Comp, AllEqualArraysCountNSquared) {
  CompProblem Prob(200, /*ValueRange=*/1);
  EXPECT_EQ(seq(Prob, Prob.makeRoot()), 200LL * 200LL);
}

TEST(Comp, SingleElement) {
  CompProblem Prob(1, /*ValueRange=*/1);
  EXPECT_EQ(seq(Prob, Prob.makeRoot()), 1);
}

//===----------------------------------------------------------------------===//
// Knight's tour
//===----------------------------------------------------------------------===//

TEST(KnightsTour, CornerStart5x5HasClassic304Tours) {
  KnightsTour Prob;
  EXPECT_EQ(seq(Prob, KnightsTour::makeRoot(5, 0, 0)), 304);
}

TEST(KnightsTour, CenterStart5x5HasClassic64Tours) {
  KnightsTour Prob;
  EXPECT_EQ(seq(Prob, KnightsTour::makeRoot(5, 2, 2)), 64);
}

TEST(KnightsTour, ParityMakesOffCornerStartsImpossibleOn5x5) {
  // On a 5x5 board a tour must start on the majority colour; (0, 1) is a
  // minority-colour square, so no tours exist.
  KnightsTour Prob;
  EXPECT_EQ(seq(Prob, KnightsTour::makeRoot(5, 0, 1)), 0);
}

TEST(KnightsTour, TinyBoardsHaveNoTours) {
  KnightsTour Prob;
  EXPECT_EQ(seq(Prob, KnightsTour::makeRoot(2, 0, 0)), 0);
  EXPECT_EQ(seq(Prob, KnightsTour::makeRoot(3, 0, 0)), 0);
  EXPECT_EQ(seq(Prob, KnightsTour::makeRoot(4, 0, 0)), 0);
}

TEST(KnightsTour, TrivialBoard) {
  KnightsTour Prob;
  EXPECT_EQ(seq(Prob, KnightsTour::makeRoot(1, 0, 0)), 1);
}

TEST(KnightsTour, UndoRestoresPosition) {
  KnightsTour Prob;
  auto S = KnightsTour::makeRoot(5, 0, 0);
  auto Before = S;
  ASSERT_TRUE(Prob.applyChoice(S, 0, 0));
  Prob.undoChoice(S, 0, 0);
  EXPECT_EQ(S.Row, Before.Row);
  EXPECT_EQ(S.Col, Before.Col);
  EXPECT_EQ(S.Board, Before.Board);
  EXPECT_EQ(S.Visited, Before.Visited);
}

//===----------------------------------------------------------------------===//
// Strimko
//===----------------------------------------------------------------------===//

TEST(Strimko, Order2WithDiagonalStreamsIsInfeasible) {
  // Both 2x2 latin squares repeat a digit on a broken diagonal.
  Strimko Prob;
  EXPECT_EQ(seq(Prob, Strimko::makeRoot(2)), 0);
}

TEST(Strimko, Order3HasCyclicSolutions) {
  Strimko Prob;
  EXPECT_GT(seq(Prob, Strimko::makeRoot(3)), 0);
}

TEST(Strimko, GivensPruneSolutions) {
  Strimko Prob;
  long long Free = seq(Prob, Strimko::makeRoot(5));
  long long Pinned = seq(Prob, Strimko::makeRoot(5, {{0, 0, 1}}));
  EXPECT_GT(Free, 0);
  EXPECT_LT(Pinned, Free);
  // By digit-relabeling symmetry, pinning one cell keeps exactly 1/N of
  // the solutions.
  EXPECT_EQ(Pinned * 5, Free);
}

TEST(Strimko, FullyGivenGridIsOneSolution) {
  // A valid order-3 grid: L(r,c) = (r + c) mod 3 + 1 has distinct rows,
  // columns, and broken diagonals (along c - r = s the value is 2r + s,
  // and 2 is invertible mod 3).
  std::vector<Strimko::Given> Givens;
  for (int R = 0; R < 3; ++R)
    for (int C = 0; C < 3; ++C)
      Givens.push_back({R, C, (R + C) % 3 + 1});
  Strimko Prob;
  EXPECT_EQ(seq(Prob, Strimko::makeRoot(3, Givens)), 1);
}

//===----------------------------------------------------------------------===//
// Sudoku
//===----------------------------------------------------------------------===//

TEST(Sudoku, SolvedGridHasExactlyOneSolution) {
  Sudoku Prob;
  EXPECT_EQ(seq(Prob, Sudoku::makeInstance("solved")), 1);
}

TEST(Sudoku, OneClearedCellHasExactlyOneSolution) {
  std::string Grid = Sudoku::instanceGrid("solved");
  Grid[40] = '0';
  Sudoku Prob;
  EXPECT_EQ(seq(Prob, Sudoku::makeRoot(Grid)), 1);
}

TEST(Sudoku, ClearedBandStillContainsOriginalSolution) {
  Sudoku Prob;
  EXPECT_GE(seq(Prob, Sudoku::makeInstance("balance")), 1);
}

TEST(Sudoku, InstancesHaveExpectedFreeCellCounts) {
  EXPECT_EQ(Sudoku::makeInstance("solved").NumFree, 0);
  EXPECT_EQ(Sudoku::makeInstance("balance").NumFree, 36);
  EXPECT_EQ(Sudoku::makeInstance("balance-large").NumFree, 45);
  EXPECT_EQ(Sudoku::makeInstance("input1").NumFree, 32);
  EXPECT_EQ(Sudoku::makeInstance("input2").NumFree, 32);
}

TEST(Sudoku, UndoRestoresMasks) {
  Sudoku Prob;
  auto S = Sudoku::makeInstance("balance");
  auto Before = S;
  int Digit = -1;
  for (int K = 0; K < 9; ++K)
    if (Prob.applyChoice(S, 0, K)) {
      Digit = K;
      break;
    }
  ASSERT_GE(Digit, 0);
  Prob.undoChoice(S, 0, Digit);
  EXPECT_EQ(std::memcmp(&S, &Before, sizeof(S)), 0);
}

//===----------------------------------------------------------------------===//
// Pentomino
//===----------------------------------------------------------------------===//

TEST(Pentomino, ClassicOrientationCounts) {
  // F:8 I:2 L:8 N:8 P:8 T:4 U:4 V:4 W:4 X:1 Y:8 Z:4 — 63 total.
  Pentomino Prob(10, 6, 12);
  const int Expected[12] = {8, 2, 8, 8, 8, 4, 4, 4, 4, 1, 8, 4};
  int Total = 0;
  for (int Piece = 0; Piece < 12; ++Piece) {
    EXPECT_EQ(Prob.orientationCount(Piece), Expected[Piece])
        << "piece " << Pentomino::pieceName(Piece);
    Total += Prob.orientationCount(Piece);
  }
  EXPECT_EQ(Total, 63);
  EXPECT_EQ(Prob.numChoices(Prob.makeRoot(), 0), 63);
}

TEST(Pentomino, UndoRestoresBoard) {
  Pentomino Prob(10, 6, 12);
  auto S = Prob.makeRoot();
  int K = -1;
  for (int I = 0; I < Prob.numChoices(S, 0); ++I)
    if (Prob.applyChoice(S, 0, I)) {
      K = I;
      break;
    }
  ASSERT_GE(K, 0);
  EXPECT_TRUE(S.Occupied.any());
  Prob.undoChoice(S, 0, K);
  EXPECT_FALSE(S.Occupied.any());
  EXPECT_EQ(S.UsedPieces, 0u);
}

TEST(Pentomino, PieceCannotBeReused) {
  Pentomino Prob(10, 6, 12);
  auto S = Prob.makeRoot();
  // Find a first placement, then verify every same-piece choice fails.
  int K = -1;
  for (int I = 0; I < Prob.numChoices(S, 0); ++I)
    if (Prob.applyChoice(S, 0, I)) {
      K = I;
      break;
    }
  ASSERT_GE(K, 0);
  int Rejected = 0;
  for (int I = 0; I < Prob.numChoices(S, 1); ++I) {
    auto Copy = S;
    if (!Prob.applyChoice(Copy, 1, I))
      ++Rejected;
  }
  EXPECT_GT(Rejected, 0);
}

TEST(Pentomino, BitBoard128CrossesWordBoundary) {
  BitBoard128 B;
  B.set(63);
  B.set(64);
  EXPECT_TRUE(B.test(63));
  EXPECT_TRUE(B.test(64));
  EXPECT_FALSE(B.test(62));
  EXPECT_EQ(B.firstSet(), 63);
  BitBoard128 HiOnly;
  HiOnly.set(100);
  EXPECT_EQ(HiOnly.firstSet(), 100);
}

TEST(Pentomino, SmallBoardSearchTerminates) {
  // 5x5 board with 5 pieces: whatever the count, the search must agree
  // with itself and terminate quickly; record the exact-cover property
  // that every solution uses each piece identity at most once (implied by
  // the masks; here we just pin the count as a regression value).
  Pentomino Prob(5, 5, 5);
  long long Count = seq(Prob, Prob.makeRoot());
  EXPECT_GE(Count, 0);
  EXPECT_EQ(Count, seq(Prob, Prob.makeRoot())) << "deterministic";
}

//===----------------------------------------------------------------------===//
// Tree profiling
//===----------------------------------------------------------------------===//

TEST(TreeProfile, CountsNodesOfTinyFib) {
  // fib(3) tree: nodes 3,2,1,1,0 -> 5 nodes, 3 leaves, depth 2.
  FibProblem Prob;
  auto S = FibProblem::makeRoot(3);
  TreeProfile Profile;
  profileTree(Prob, S, Profile);
  EXPECT_EQ(Profile.Nodes, 5);
  EXPECT_EQ(Profile.Leaves, 3);
  EXPECT_EQ(Profile.MaxDepth, 2);
}

TEST(TreeProfile, QueensPrunesCounted) {
  NQueensArray Prob;
  auto S = NQueensArray::makeRoot(5);
  TreeProfile Profile;
  profileTree(Prob, S, Profile);
  EXPECT_EQ(Profile.Leaves, 10); // the 10 solutions
  EXPECT_GT(Profile.Pruned, 0);
}

} // namespace
