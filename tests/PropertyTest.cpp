//===- tests/PropertyTest.cpp - cross-module property tests ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps over the invariants the runtime relies on:
///
///  * the undo discipline — after applyChoice / subtree / undoChoice the
///    State is bit-identical — for every benchmark problem, along many
///    randomly chosen paths (this is what makes workspace sharing in
///    fake tasks and continuation resume in stolen tasks sound);
///  * scheduler-result invariance across seeds, cut-offs, deque sizes
///    and max_stolen_num (schedules differ wildly; results may not);
///  * the real threaded runtime on the paper's unbalanced trees
///    (SyntheticTreeProblem): every scheduler, thread count and tree
///    shape must agree with the tree's leaf count.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "problems/FibComp.h"
#include "problems/KnightsTour.h"
#include "problems/NQueens.h"
#include "problems/Pentomino.h"
#include "problems/Strimko.h"
#include "problems/Sudoku.h"
#include "sim/SyntheticTreeProblem.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace atc;

namespace {

//===----------------------------------------------------------------------===//
// Undo discipline
//===----------------------------------------------------------------------===//

/// Walks random root-to-leaf paths; at every step "churns" the state by
/// applying and undoing every viable choice, then verifies the churned
/// state explores the exact same subtree as the un-churned one. Problems
/// may keep write-before-read scratch (e.g. NQueensArray's Col[] record,
/// the knight's per-depth position log), so a bitwise comparison is too
/// strong — subtree-equivalence is the invariant the runtime needs: fake
/// tasks share the parent workspace across apply/undo cycles, and stolen
/// continuations resume from a snapshot taken mid-loop.
template <typename P, typename State>
void checkUndoDiscipline(P &Prob, const State &Root, int Paths,
                         std::uint64_t Seed, int MaxCompareDepth = 64) {
  SplitMix64 Rng(Seed);
  for (int Path = 0; Path < Paths; ++Path) {
    State S = Root;
    int Depth = 0;
    while (!Prob.isLeaf(S, Depth) && Depth < 64) {
      int N = Prob.numChoices(S, Depth);
      ASSERT_GT(N, 0);
      State Churned = S;
      int Viable = -1;
      for (int K = 0; K < N; ++K) {
        if (Prob.applyChoice(Churned, Depth, K)) {
          Prob.undoChoice(Churned, Depth, K);
          Viable = K;
        }
      }
      if (Depth <= MaxCompareDepth) {
        State A = S, B = Churned;
        ASSERT_EQ(runSequential(Prob, A, Depth),
                  runSequential(Prob, B, Depth))
            << "churned state explores a different subtree at depth "
            << Depth;
      }
      if (Viable < 0)
        break; // dead end: all choices pruned
      // Descend through a random viable choice.
      int K;
      do {
        K = static_cast<int>(Rng.nextBelow(static_cast<std::uint64_t>(N)));
      } while (!Prob.applyChoice(S, Depth, K));
      ++Depth;
    }
  }
}

TEST(UndoDiscipline, NQueensArray) {
  NQueensArray Prob;
  checkUndoDiscipline(Prob, NQueensArray::makeRoot(8), 20, 1);
}

TEST(UndoDiscipline, NQueensCompute) {
  NQueensCompute Prob;
  checkUndoDiscipline(Prob, NQueensCompute::makeRoot(8), 20, 2);
}

TEST(UndoDiscipline, Strimko) {
  Strimko Prob;
  checkUndoDiscipline(Prob, Strimko::makeRoot(4), 20, 3);
}

TEST(UndoDiscipline, KnightsTour) {
  KnightsTour Prob;
  checkUndoDiscipline(Prob, KnightsTour::makeRoot(4, 0, 0), 20, 4);
}

TEST(UndoDiscipline, Sudoku) {
  // Compare subtrees only from depth 20 on (the full balance tree has
  // 56k nodes; deep subtrees are small).
  Sudoku Prob;
  auto Root = Sudoku::makeInstance("balance");
  SplitMix64 Rng(5);
  for (int Path = 0; Path < 10; ++Path) {
    auto S = Root;
    int Depth = 0;
    while (!Prob.isLeaf(S, Depth) && Depth < 36) {
      if (Depth >= 20) {
        auto Churned = S;
        for (int K = 0; K < 9; ++K)
          if (Prob.applyChoice(Churned, Depth, K))
            Prob.undoChoice(Churned, Depth, K);
        auto A = S, B = Churned;
        ASSERT_EQ(runSequential(Prob, A, Depth),
                  runSequential(Prob, B, Depth));
      }
      int K = -1;
      for (int Try = 0; Try < 32; ++Try) {
        int Cand = static_cast<int>(Rng.nextBelow(9));
        if (Prob.applyChoice(S, Depth, Cand)) {
          K = Cand;
          break;
        }
      }
      if (K < 0)
        break;
      ++Depth;
    }
  }
}

TEST(UndoDiscipline, Fib) {
  FibProblem Prob;
  checkUndoDiscipline(Prob, FibProblem::makeRoot(18), 10, 6);
}

TEST(UndoDiscipline, SyntheticTree) {
  SyntheticTreeProblem Prob(SimTree::preset("tree2l", 2000));
  checkUndoDiscipline(Prob, Prob.makeRoot(), 10, 7);
}

TEST(UndoDiscipline, Pentomino) {
  Pentomino Prob(5, 4, 4);
  checkUndoDiscipline(Prob, Prob.makeRoot(), 10, 8);
}

//===----------------------------------------------------------------------===//
// liveBytes prefix-liveness contract
//===----------------------------------------------------------------------===//

/// Replays the spawn-site copy along random root-to-leaf paths: at every
/// node, for every viable choice, builds the child state the scheduler
/// would hand a thief — only the live prefix preserved, the suffix
/// poisoned (the arena stores freelist links in recycled buffers, so
/// recycled workspaces really do carry garbage there) — and verifies it
/// explores the bit-for-bit identical subtree as a full copy: same
/// result, same node / leaf / pruned counts, same max depth.
template <typename P>
void checkLiveBytesContract(P &Prob, const typename P::State &Root,
                            int Paths, std::uint64_t Seed) {
  static_assert(HasLiveBytes<P>,
                "contract check only applies to hinted problems");
  using State = typename P::State;
  SplitMix64 Rng(Seed);
  for (int Path = 0; Path < Paths; ++Path) {
    State S = Root;
    int Depth = 0;
    while (!Prob.isLeaf(S, Depth) && Depth < 64) {
      int N = Prob.numChoices(S, Depth);
      int Viable = -1;
      for (int K = 0; K < N; ++K) {
        if (!Prob.applyChoice(S, Depth, K))
          continue;
        Viable = K;
        // What the frame engine copies for this spawn: the post-applyChoice
        // state, bounded to the prefix live at the child's depth.
        const std::size_t Live = liveStateBytes(Prob, S, Depth + 1);
        ASSERT_LE(Live, sizeof(State));
        State Prefix = S;
        std::memset(reinterpret_cast<unsigned char *>(&Prefix) + Live,
                    0x5A, sizeof(State) - Live);
        State Full = S;
        TreeProfile FullProf{}, PrefixProf{};
        profileTree(Prob, Full, FullProf, Depth + 1);
        profileTree(Prob, Prefix, PrefixProf, Depth + 1);
        ASSERT_EQ(FullProf.Nodes, PrefixProf.Nodes)
            << "depth " << Depth << " choice " << K << " live " << Live;
        ASSERT_EQ(FullProf.Leaves, PrefixProf.Leaves);
        ASSERT_EQ(FullProf.MaxDepth, PrefixProf.MaxDepth);
        ASSERT_EQ(FullProf.Pruned, PrefixProf.Pruned);
        State FullR = S, PrefixR = S;
        std::memset(reinterpret_cast<unsigned char *>(&PrefixR) + Live,
                    0x5A, sizeof(State) - Live);
        ASSERT_EQ(runSequential(Prob, FullR, Depth + 1),
                  runSequential(Prob, PrefixR, Depth + 1))
            << "depth " << Depth << " choice " << K << " live " << Live;
        Prob.undoChoice(S, Depth, K);
      }
      if (Viable < 0)
        break; // dead end: all choices pruned
      int K;
      do {
        K = static_cast<int>(Rng.nextBelow(static_cast<std::uint64_t>(N)));
      } while (!Prob.applyChoice(S, Depth, K));
      ++Depth;
    }
  }
}

TEST(LiveBytes, KnightsTourPrefixSufficient) {
  KnightsTour Prob;
  checkLiveBytesContract(Prob, KnightsTour::makeRoot(4, 0, 0), 10, 13);
}

TEST(LiveBytes, PentominoPrefixSufficient) {
  Pentomino Prob(5, 4, 4);
  checkLiveBytesContract(Prob, Prob.makeRoot(), 5, 14);
}

TEST(LiveBytes, HintsAreMeaningfullySmallerThanTheState) {
  // The point of the hint is a substantially smaller copy (a marginal
  // bound is a net loss — it trades a compile-time-size memcpy for a
  // variable-length one, which is why the n-queens problems declare no
  // hint). The trail-heavy problems must cut deep.
  Pentomino Pent(5, 4, 4);
  auto PentRoot = Pent.makeRoot();
  EXPECT_LT(liveStateBytes(Pent, PentRoot, 1),
            sizeof(Pentomino::State) / 4);
  KnightsTour KT;
  auto KTRoot = KnightsTour::makeRoot(5, 0, 0);
  EXPECT_LT(liveStateBytes(KT, KTRoot, 1), sizeof(KnightsTour::State));
}

//===----------------------------------------------------------------------===//
// Result invariance across scheduler parameters
//===----------------------------------------------------------------------===//

struct ParamCase {
  std::uint64_t Seed;
  int Cutoff;
  int MaxStolenNum;
  int DequeCapacity;
};

class ParamSweep : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ParamSweep, AdaptiveTCResultInvariant) {
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 4;
  Cfg.Seed = GetParam().Seed;
  Cfg.Cutoff = GetParam().Cutoff;
  Cfg.MaxStolenNum = GetParam().MaxStolenNum;
  Cfg.DequeCapacity = GetParam().DequeCapacity;
  auto R = runProblem(Prob, NQueensArray::makeRoot(9), Cfg);
  EXPECT_EQ(R.Value, 352);
}

TEST_P(ParamSweep, CilkResultInvariant) {
  CompProblem Prob(400, /*ValueRange=*/8);
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Cilk;
  Cfg.NumWorkers = 4;
  Cfg.Seed = GetParam().Seed;
  Cfg.DequeCapacity = GetParam().DequeCapacity;
  auto R = runProblem(Prob, Prob.makeRoot(), Cfg);
  EXPECT_EQ(R.Value, Prob.referenceCount());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParamSweep,
    ::testing::Values(ParamCase{1, -1, 20, 8192},   // paper defaults
                      ParamCase{2, 0, 20, 8192},    // no initial tasks
                      ParamCase{3, 6, 20, 8192},    // deep cut-off
                      ParamCase{4, -1, 1, 8192},    // hyper-eager publish
                      ParamCase{5, -1, 500, 8192},  // reluctant publish
                      ParamCase{6, -1, 20, 64},     // small deque
                      ParamCase{7, 10, 20, 32},     // deep + tiny deque
                      ParamCase{8, -1, 20, 8192}),
    [](const ::testing::TestParamInfo<ParamCase> &Info) {
      const ParamCase &C = Info.param;
      return "seed" + std::to_string(C.Seed) + "_cut" +
             (C.Cutoff < 0 ? "log" : std::to_string(C.Cutoff)) + "_msn" +
             std::to_string(C.MaxStolenNum) + "_dq" +
             std::to_string(C.DequeCapacity);
    });

//===----------------------------------------------------------------------===//
// Real runtime on the paper's unbalanced trees
//===----------------------------------------------------------------------===//

struct TreeRunCase {
  const char *Preset;
  SchedulerKind Kind;
  int Threads;
};

class UnbalancedTreeRuns : public ::testing::TestWithParam<TreeRunCase> {};

TEST_P(UnbalancedTreeRuns, LeafCountMatchesOracle) {
  SyntheticTreeProblem Prob(SimTree::preset(GetParam().Preset, 30'000));
  long long Expected = Prob.expectedLeaves();
  SchedulerConfig Cfg;
  Cfg.Kind = GetParam().Kind;
  Cfg.NumWorkers = GetParam().Threads;
  auto R = runProblem(Prob, Prob.makeRoot(), Cfg);
  EXPECT_EQ(R.Value, Expected);
}

INSTANTIATE_TEST_SUITE_P(
    TreesBySystem, UnbalancedTreeRuns,
    ::testing::Values(
        TreeRunCase{"tree1l", SchedulerKind::AdaptiveTC, 4},
        TreeRunCase{"tree1r", SchedulerKind::AdaptiveTC, 4},
        TreeRunCase{"tree3l", SchedulerKind::AdaptiveTC, 8},
        TreeRunCase{"tree3r", SchedulerKind::AdaptiveTC, 8},
        TreeRunCase{"fig8", SchedulerKind::AdaptiveTC, 4},
        TreeRunCase{"tree2l", SchedulerKind::Cilk, 4},
        TreeRunCase{"tree2r", SchedulerKind::CilkSynched, 4},
        TreeRunCase{"tree3l", SchedulerKind::Tascell, 4},
        TreeRunCase{"tree3r", SchedulerKind::Tascell, 4},
        TreeRunCase{"balanced", SchedulerKind::Cutoff, 4},
        TreeRunCase{"fig8", SchedulerKind::Sequential, 1}),
    [](const ::testing::TestParamInfo<TreeRunCase> &Info) {
      std::string Name = schedulerKindName(Info.param.Kind);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return std::string(Info.param.Preset) + "_" + Name + "_t" +
             std::to_string(Info.param.Threads);
    });

TEST(UnbalancedTreeRuns, SpinWorkDoesNotChangeResults) {
  SyntheticTreeProblem Plain(SimTree::preset("tree2l", 10'000), 0);
  SyntheticTreeProblem Spinning(SimTree::preset("tree2l", 10'000), 50);
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 4;
  auto A = runProblem(Plain, Plain.makeRoot(), Cfg);
  auto B = runProblem(Spinning, Spinning.makeRoot(), Cfg);
  EXPECT_EQ(A.Value, B.Value);
  EXPECT_EQ(A.Value, Plain.expectedLeaves());
}

//===----------------------------------------------------------------------===//
// Join-protocol stress
//===----------------------------------------------------------------------===//

/// Fib at 8 workers with near-zero grain maximizes steal density, which
/// is what exercises the suspension / deposit / resume-by-last-depositor
/// paths of the join protocol. Repeated runs with different seeds sample
/// different interleavings (on a time-sliced single core, preemption
/// points move every run).
TEST(JoinProtocolStress, FibUnderMaximalStealPressure) {
  FibProblem Prob;
  long long Expected = FibProblem::fibValue(21);
  for (int Rep = 0; Rep < 15; ++Rep) {
    SchedulerConfig Cfg;
    Cfg.Kind = (Rep % 2 == 0) ? SchedulerKind::Cilk
                              : SchedulerKind::AdaptiveTC;
    Cfg.NumWorkers = 8;
    Cfg.MaxStolenNum = Rep % 3; // eager need_task arming
    Cfg.Seed = 0xABC + static_cast<std::uint64_t>(Rep);
    auto R = runProblem(Prob, FibProblem::makeRoot(21), Cfg);
    ASSERT_EQ(R.Value, Expected)
        << schedulerKindName(Cfg.Kind) << " rep " << Rep;
  }
}

TEST(JoinProtocolStress, SuspensionsObservedAndResolved) {
  // Accumulate scheduler stats over repeated contended runs: at least
  // one run should suspend a stolen task at its sync point and resume it
  // via the last depositor (the run would hang or miscount otherwise).
  FibProblem Prob;
  std::uint64_t Suspensions = 0;
  for (int Rep = 0; Rep < 10; ++Rep) {
    SchedulerConfig Cfg;
    Cfg.Kind = SchedulerKind::Cilk;
    Cfg.NumWorkers = 8;
    Cfg.Seed = 0x5115 + static_cast<std::uint64_t>(Rep);
    auto R = runProblem(Prob, FibProblem::makeRoot(22), Cfg);
    ASSERT_EQ(R.Value, FibProblem::fibValue(22));
    Suspensions += R.Stats.Suspensions;
  }
  EXPECT_GT(Suspensions, 0u) << "no suspension path was ever exercised";
}

//===----------------------------------------------------------------------===//
// Deque-overflow degradation
//===----------------------------------------------------------------------===//

TEST(Overflow, TinyDequeStillProducesCorrectResults) {
  // With a 4-entry deque, Cilk's every-spawn pushing overflows
  // constantly; the engine degrades those spawns to plain calls and must
  // still be correct. The overflow count is reported (the paper: fixed
  // arrays are "prone to overflow").
  FibProblem Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Cilk;
  Cfg.NumWorkers = 4;
  Cfg.DequeCapacity = 4;
  auto R = runProblem(Prob, FibProblem::makeRoot(20), Cfg);
  EXPECT_EQ(R.Value, FibProblem::fibValue(20));
  EXPECT_GT(R.Stats.DequeOverflows, 0u);
}

TEST(Overflow, AdaptiveTCAvoidsOverflowWhereCilkOverflows) {
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.NumWorkers = 4;
  Cfg.DequeCapacity = 64;

  Cfg.Kind = SchedulerKind::Cilk;
  auto Cilk = runProblem(Prob, NQueensArray::makeRoot(10), Cfg);
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  auto Atc = runProblem(Prob, NQueensArray::makeRoot(10), Cfg);

  EXPECT_EQ(Cilk.Value, Atc.Value);
  EXPECT_GT(Cilk.Stats.DequeHighWater, Atc.Stats.DequeHighWater)
      << "AdaptiveTC pushes fewer tasks, so it is less prone to overflow";
  EXPECT_EQ(Atc.Stats.DequeOverflows, 0u);
}

} // namespace
